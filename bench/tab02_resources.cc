// Table 2: FPGA resource usage (logic / BRAM / DSP) of the partitioner
// circuit per tuple-width configuration, from the structural resource
// model, against the paper's synthesis results.
#include <cstdio>

#include "bench/bench_util.h"
#include "fpga/resource_model.h"
#include "model/paper_constants.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("tab02_resources", "Table 2");
  std::printf("%-12s | %18s | %18s | %18s\n", "tuple width", "logic units",
              "BRAM", "DSP blocks");
  std::printf("%-12s | %8s %9s | %8s %9s | %8s %9s\n", "", "model", "paper",
              "model", "paper", "model", "paper");
  for (const auto& row : paper::kTab2) {
    ResourceUsage usage = EstimateResources(row.width, 8192);
    std::printf("%9d B  | %7.0f%% %8d%% | %7.0f%% %8d%% | %7.0f%% %8d%%\n",
                row.width, usage.logic_pct, row.logic_pct, usage.bram_pct,
                row.bram_pct, usage.dsp_pct, row.dsp_pct);
  }
  std::printf(
      "\nStructure: BRAM is dominated by the K×K write-combiner banks "
      "(halving with\neach width doubling); DSPs by the murmur multipliers; "
      "logic by the combiner\nsteering, which shrinks quadratically in K.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
