// google-benchmark micro-benchmarks of the hashing primitives: the cost
// the CPU pays per partitioning attribute (and the FPGA does not —
// Section 3.2's robustness/throughput trade-off in isolation).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/zipf.h"
#include "datagen/workloads.h"
#include "hash/hash_function.h"
#include "hash/murmur.h"

namespace fpart {
namespace {

void BM_Murmur32(benchmark::State& state) {
  uint32_t key = 0x9e3779b9;
  for (auto _ : state) {
    key = Murmur32(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_Murmur32);

void BM_Murmur64(benchmark::State& state) {
  uint64_t key = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    key = Murmur64(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_Murmur64);

void BM_Crc32c(benchmark::State& state) {
  uint64_t key = 1;
  for (auto _ : state) {
    key += Crc32c64(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_Crc32c);

void BM_PartitionFn(benchmark::State& state) {
  PartitionFn fn(static_cast<HashMethod>(state.range(0)), 8192);
  uint32_t key = 12345;
  for (auto _ : state) {
    key += fn(key);
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_PartitionFn)
    ->Arg(static_cast<int>(HashMethod::kRadix))
    ->Arg(static_cast<int>(HashMethod::kMurmur))
    ->Arg(static_cast<int>(HashMethod::kMultiplicative))
    ->Arg(static_cast<int>(HashMethod::kCrc32));

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1 << 20, state.range(0) / 100.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
}
BENCHMARK(BM_ZipfSample)->Arg(0)->Arg(50)->Arg(100)->Arg(175);

void BM_Feistel32(benchmark::State& state) {
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Feistel32(++i, 42));
  }
}
BENCHMARK(BM_Feistel32);

void BM_KeyGenerator(benchmark::State& state) {
  KeyGenerator gen(static_cast<KeyDistribution>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_KeyGenerator)
    ->Arg(static_cast<int>(KeyDistribution::kLinear))
    ->Arg(static_cast<int>(KeyDistribution::kRandom))
    ->Arg(static_cast<int>(KeyDistribution::kGrid))
    ->Arg(static_cast<int>(KeyDistribution::kReverseGrid));

}  // namespace
}  // namespace fpart

BENCHMARK_MAIN();
