// Figure 12: join time on workloads C (random), D (grid) and E (reverse
// grid) after radix vs hash partitioning — CPU both ways, FPGA with hash
// partitioning (free on the circuit). 8192 partitions.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/cpu_model.h"

namespace fpart {
namespace {

void RunWorkload(WorkloadId id, double scale, size_t threads,
                 ThreadPool* pool) {
  auto input = GenerateWorkload(GetWorkloadSpec(id, scale), 7);
  if (!input.ok()) return;
  std::printf("--- Workload %s (%s keys), %zu-threaded\n", input->spec.name,
              KeyDistributionName(input->spec.dist), threads);
  std::printf("%-24s | %9s %9s %9s\n", "configuration", "part", "b+p",
              "total");

  CpuJoinConfig cpu;
  cpu.fanout = 8192;
  cpu.num_threads = threads;
  cpu.pool = pool;

  cpu.hash = HashMethod::kRadix;
  auto radix = CpuRadixJoin(cpu, input->r, input->s);
  if (radix.ok()) {
    std::printf("%-24s | %9.3f %9.3f %9.3f\n", "CPU radix part.",
                radix->partition_seconds, radix->build_probe_seconds,
                radix->total_seconds);
  }

  cpu.hash = HashMethod::kMurmur;
  auto hash = CpuRadixJoin(cpu, input->r, input->s);
  if (hash.ok()) {
    std::printf("%-24s | %9.3f %9.3f %9.3f\n", "CPU hash part.",
                hash->partition_seconds, hash->build_probe_seconds,
                hash->total_seconds);
  }

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 8192;
  hybrid.fpga.output_mode = OutputMode::kPad;
  hybrid.fpga.hash = HashMethod::kMurmur;
  hybrid.num_threads = threads;
  hybrid.pool = pool;
  auto fpga = HybridJoin(hybrid, input->r, input->s);
  if (fpga.ok()) {
    std::printf("%-24s | %9.3f %9.3f %9.3f\n", "FPGA (PAD/RID) hash",
                fpga->partition_seconds, fpga->build_probe_seconds,
                fpga->total_seconds);
  } else {
    std::printf("%-24s | %s\n", "FPGA (PAD/RID) hash",
                fpga.status().ToString().c_str());
  }

  if (radix.ok() && hash.ok()) {
    double gain = (radix->build_probe_seconds - hash->build_probe_seconds) /
                  radix->build_probe_seconds * 100.0;
    std::printf("build+probe improvement from hash partitioning: %+.1f%% "
                "(paper: ~0%% C, 11%% D, 35%% E)\n",
                gain);
  }
  std::printf("\n");
}

int Run() {
  bench::Banner("fig12_distributions", "Figure 12a/12b/12c");
  const double scale = BenchScale() / 8.0;
  const size_t threads = BenchMaxThreads();
  ThreadPool pool(threads);
  RunWorkload(WorkloadId::kC, scale, threads, &pool);
  RunWorkload(WorkloadId::kD, scale, threads, &pool);
  RunWorkload(WorkloadId::kE, scale, threads, &pool);
  std::printf(
      "Expected shape (paper): for the grid distributions radix "
      "partitioning leaves\npartitions unbalanced, slowing build+probe; "
      "hash partitioning fixes that but\nslows *CPU* partitioning at few "
      "threads — on the FPGA the robust hash is free.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
