// Extension (Section 7 context, Schuh et al. [31]): partitioned radix hash
// join vs non-partitioned hash join vs sort-merge join on workload A, plus
// the hybrid join.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_join_algorithms", "Section 7 / [31] comparison context");
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) return 1;
  const size_t threads = BenchMaxThreads();
  std::printf("workload A, |R| = |S| = %zu, %zu threads\n\n",
              input->r.size(), threads);
  std::printf("%-26s | %9s %9s %9s | %10s\n", "algorithm", "phase1",
              "phase2", "total", "Mtuples/s");

  auto report = [&](const char* name, const Result<JoinResult>& r) {
    if (!r.ok()) {
      std::printf("%-26s | %s\n", name, r.status().ToString().c_str());
      return;
    }
    std::printf("%-26s | %9.3f %9.3f %9.3f | %10.0f\n", name,
                r->partition_seconds, r->build_probe_seconds,
                r->total_seconds, r->mtuples_per_sec);
    if (r->matches != input->s.size()) std::printf("   !! wrong matches\n");
  };

  ThreadPool pool(threads);

  CpuJoinConfig cpu;
  cpu.fanout = 8192;
  cpu.num_threads = threads;
  cpu.pool = &pool;
  report("CPU radix join", CpuRadixJoin(cpu, input->r, input->s));

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 8192;
  hybrid.num_threads = threads;
  hybrid.pool = &pool;
  report("hybrid CPU+FPGA join", HybridJoin(hybrid, input->r, input->s));

  // Same join, but S's (simulated) partitioning runs concurrently with the
  // CPU build over R's partitions. Simulated seconds are unchanged — only
  // the host-side wall clock shrinks.
  hybrid.overlap_partitioning = true;
  report("hybrid join (overlapped)", HybridJoin(hybrid, input->r, input->s));

  report("non-partitioned hash join",
         NoPartitionJoin(threads, input->r, input->s, &pool));
  report("sort-merge join", SortMergeJoin(threads, input->r, input->s, &pool));

  std::printf(
      "\nExpected shape ([31], Section 3.3): the partitioned radix join "
      "wins on large\nunskewed relations; the non-partitioned join pays a "
      "cache/TLB miss per probe;\nsort-based joins trail hash-based "
      "ones.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
