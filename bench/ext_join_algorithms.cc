// Extension (Section 7 context, Schuh et al. [31]): partitioned radix hash
// join vs non-partitioned hash join vs sort-merge join on workload A, plus
// the hybrid join.
//
// `--json` prints the same comparison as a machine-readable object
// (consumed by scripts/bench_cpu.sh), adding a scalar-path CPU radix join
// (use_simd off) so the fused SIMD speedup is visible end to end.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/cpu_features.h"
#include "core/fpart.h"
#include "obs/report.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_join_algorithms", "Section 7 / [31] comparison context");
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) return 1;
  const size_t threads = BenchMaxThreads();
  std::printf("workload A, |R| = |S| = %zu, %zu threads\n\n",
              input->r.size(), threads);
  std::printf("%-26s | %9s %9s %9s | %10s\n", "algorithm", "phase1",
              "phase2", "total", "Mtuples/s");

  auto report = [&](const char* name, const Result<JoinResult>& r) {
    if (!r.ok()) {
      std::printf("%-26s | %s\n", name, r.status().ToString().c_str());
      return;
    }
    std::printf("%-26s | %9.3f %9.3f %9.3f | %10.0f\n", name,
                r->partition_seconds, r->build_probe_seconds,
                r->total_seconds, r->mtuples_per_sec);
    if (r->matches != input->s.size()) std::printf("   !! wrong matches\n");
  };

  ThreadPool pool(threads);

  CpuJoinConfig cpu;
  cpu.fanout = 8192;
  cpu.num_threads = threads;
  cpu.pool = &pool;
  report("CPU radix join", CpuRadixJoin(cpu, input->r, input->s));

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 8192;
  hybrid.num_threads = threads;
  hybrid.pool = &pool;
  report("hybrid CPU+FPGA join", HybridJoin(hybrid, input->r, input->s));

  // Same join, but S's (simulated) partitioning runs concurrently with the
  // CPU build over R's partitions. Simulated seconds are unchanged — only
  // the host-side wall clock shrinks.
  hybrid.overlap_partitioning = true;
  report("hybrid join (overlapped)", HybridJoin(hybrid, input->r, input->s));

  report("non-partitioned hash join",
         NoPartitionJoin(threads, input->r, input->s, &pool));
  report("sort-merge join", SortMergeJoin(threads, input->r, input->s, &pool));

  std::printf(
      "\nExpected shape ([31], Section 3.3): the partitioned radix join "
      "wins on large\nunskewed relations; the non-partitioned join pays a "
      "cache/TLB miss per probe;\nsort-based joins trail hash-based "
      "ones.\n");
  return 0;
}

int JsonMain() {
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) {
    std::fprintf(stderr, "datagen failed\n");
    return 1;
  }
  const size_t threads = BenchMaxThreads();
  ThreadPool pool(threads);

  CpuJoinConfig cpu;
  cpu.fanout = 8192;
  cpu.num_threads = threads;
  cpu.pool = &pool;

  // Interleaved best-of-3 per algorithm.
  constexpr int kRuns = 3;
  double radix_scalar = 0, radix_fused = 0, np = 0;
  uint64_t expected = input->s.size();
  bool ok = true;
  for (int r = 0; r < kRuns; ++r) {
    cpu.use_simd = false;
    auto a = CpuRadixJoin(cpu, input->r, input->s);
    cpu.use_simd = true;
    auto b = CpuRadixJoin(cpu, input->r, input->s);
    auto c = NoPartitionJoin(threads, input->r, input->s, &pool);
    if (!a.ok() || !b.ok() || !c.ok() || a->matches != expected ||
        b->matches != expected || c->matches != expected) {
      ok = false;
      break;
    }
    if (r == 0 || a->total_seconds < radix_scalar)
      radix_scalar = a->total_seconds;
    if (r == 0 || b->total_seconds < radix_fused)
      radix_fused = b->total_seconds;
    if (r == 0 || c->total_seconds < np) np = c->total_seconds;
  }
  if (!ok) {
    std::fprintf(stderr, "a join run failed or lost matches\n");
    return 1;
  }

  const double total = static_cast<double>(input->r.size() + input->s.size());
  auto mtps = [total](double s) { return s > 0 ? total / s / 1e6 : 0.0; };
  obs::BenchReport report("ext_join_algorithms");
  report.ConfigStr("workload", "A");
  report.ConfigUInt("n_tuples", static_cast<uint64_t>(total));
  report.ConfigUInt("fanout", 8192);
  report.ConfigUInt("num_threads", threads);
  report.ConfigStr("simd_level", SimdLevelName(ActiveSimdLevel()));
  report.Result("radix_join_scalar", {{"seconds", radix_scalar},
                                      {"mtuples_per_sec", mtps(radix_scalar)}});
  report.Result("radix_join_fused_simd",
                {{"seconds", radix_fused},
                 {"mtuples_per_sec", mtps(radix_fused)}});
  report.Result("no_partition_join",
                {{"seconds", np}, {"mtuples_per_sec", mtps(np)}});
  report.ResultDouble("speedup",
                      radix_fused > 0 ? radix_scalar / radix_fused : 0.0);
  report.Print();
  return 0;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return fpart::JsonMain();
  }
  return fpart::Run();
}
