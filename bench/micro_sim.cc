// google-benchmark micro-benchmarks of the cycle-simulation kernel — the
// cost of simulating one FPGA clock cycle, which bounds how fast the
// circuit simulator can run large workloads.
//
// `--json [n]` switches to a whole-simulator throughput report instead:
// one RID/PAD partitioning run (default 10M tuples) under both execution
// engines, printed as a JSON object with host-side sim-cycles/s and the
// reference→fast speedup (see scripts/bench_sim.sh).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "fpga/hash_lane.h"
#include "fpga/partitioner.h"
#include "fpga/write_combiner.h"
#include "obs/report.h"
#include "sim/bram.h"
#include "sim/fifo.h"

namespace fpart {
namespace {

void BM_FifoPushPop(benchmark::State& state) {
  Fifo<uint64_t> fifo(64);
  uint64_t v = 0;
  for (auto _ : state) {
    fifo.Push(++v);
    benchmark::DoNotOptimize(fifo.Pop());
  }
}
BENCHMARK(BM_FifoPushPop);

void BM_BramCycle(benchmark::State& state) {
  Bram<uint64_t> bram(8192, 2);
  uint64_t addr = 0;
  for (auto _ : state) {
    bram.IssueRead(addr & 8191);
    bram.Write((addr + 7) & 8191, addr);
    bram.Tick();
    benchmark::DoNotOptimize(bram.read_ready());
    ++addr;
  }
}
BENCHMARK(BM_BramCycle);

void BM_HashLaneCycle(benchmark::State& state) {
  PartitionFn fn(HashMethod::kMurmur, 8192);
  Fifo<HashedTuple<Tuple8>> out(1 << 20);
  HashLane<Tuple8> lane(fn, 5, &out);
  uint32_t i = 0;
  for (auto _ : state) {
    lane.Tick(Tuple8{++i, i});
    if (out.size() > (1u << 19)) {
      state.PauseTiming();
      while (out.Pop()) {
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_HashLaneCycle);

void BM_WriteCombinerCycle(benchmark::State& state) {
  WriteCombiner<Tuple8> comb(8192, 16, 8);
  Rng rng(5);
  uint32_t i = 0;
  for (auto _ : state) {
    if (!comb.input().full()) {
      comb.input().Push(
          HashedTuple<Tuple8>{rng.Next32() & 8191, Tuple8{++i, i}});
    }
    comb.Tick();
    while (comb.output().Pop()) {
    }
  }
}
BENCHMARK(BM_WriteCombinerCycle);

// One timed end-to-end simulator run; returns host wall seconds via *out.
int RunEngine(const std::vector<Tuple8>& tuples, SimMode mode,
              double* host_seconds, FpgaRunResult<Tuple8>* result) {
  FpgaPartitionerConfig config;
  config.fanout = 8192;
  config.output_mode = OutputMode::kPad;
  config.layout = LayoutMode::kRid;
  config.sim_mode = mode;
  FpgaPartitioner<Tuple8> partitioner(config);
  Timer timer;
  auto run = partitioner.Partition(tuples.data(), tuples.size());
  *host_seconds = timer.Seconds();
  if (!run.ok()) {
    std::fprintf(stderr, "%s run failed: %s\n", SimModeName(mode),
                 run.status().ToString().c_str());
    return 1;
  }
  *result = std::move(*run);
  return 0;
}

int JsonMain(size_t n) {
  std::vector<Tuple8> tuples(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    tuples[i] = Tuple8{rng.Next32() & 0x7fffffffu, static_cast<uint32_t>(i)};
  }

  // Interleaved best-of-3: each engine's reported time is its fastest of
  // three runs, which filters scheduler noise without favouring either
  // engine (both see the same machine conditions).
  constexpr int kRuns = 3;
  double ref_host = 0, fast_host = 0, ana_host = 0;
  FpgaRunResult<Tuple8> ref, fast, ana;
  for (int r = 0; r < kRuns; ++r) {
    double rh = 0, fh = 0, ah = 0;
    if (RunEngine(tuples, SimMode::kReference, &rh, &ref) != 0) return 1;
    if (RunEngine(tuples, SimMode::kFast, &fh, &fast) != 0) return 1;
    if (RunEngine(tuples, SimMode::kAnalytical, &ah, &ana) != 0) return 1;
    if (r == 0 || rh < ref_host) ref_host = rh;
    if (r == 0 || fh < fast_host) fast_host = fh;
    if (r == 0 || ah < ana_host) ana_host = ah;
  }

  if (ref.stats.cycles != fast.stats.cycles) {
    std::fprintf(stderr, "cycle mismatch: reference=%llu fast=%llu\n",
                 static_cast<unsigned long long>(ref.stats.cycles),
                 static_cast<unsigned long long>(fast.stats.cycles));
    return 1;
  }
  // The analytical engine predicts its cycles (no equality assert), but
  // output bytes must stay identical to the cycle engines.
  if (ana.output.total_cls() != fast.output.total_cls() ||
      std::memcmp(ana.output.line(0), fast.output.line(0),
                  fast.output.total_cls() * kCacheLineSize) != 0) {
    std::fprintf(stderr, "analytical output bytes diverged from fast\n");
    return 1;
  }
  const double cycle_error =
      fast.stats.cycles > 0
          ? (static_cast<double>(ana.stats.cycles) -
             static_cast<double>(fast.stats.cycles)) /
                static_cast<double>(fast.stats.cycles)
          : 0.0;

  auto cycles_per_sec = [](uint64_t cycles, double seconds) {
    return seconds > 0 ? cycles / seconds : 0.0;
  };
  obs::BenchReport report("micro_sim");
  report.ConfigUInt("n_tuples", n);
  report.ConfigUInt("fanout", 8192);
  report.ConfigStr("output_mode", "pad");
  report.ConfigStr("layout", "rid");
  report.ConfigStr("tuple", "Tuple8");
  report.Result("simulated",
                {{"cycles", static_cast<double>(fast.stats.cycles)},
                 {"seconds", fast.seconds},
                 {"mtuples_per_sec", fast.mtuples_per_sec}});
  report.Result("reference_engine",
                {{"host_seconds", ref_host},
                 {"sim_cycles_per_sec",
                  cycles_per_sec(ref.stats.cycles, ref_host)}});
  report.Result("fast_engine",
                {{"host_seconds", fast_host},
                 {"sim_cycles_per_sec",
                  cycles_per_sec(fast.stats.cycles, fast_host)}});
  // The analytical column rates the engine in *replaced* simulated cycles
  // per host second (the fast engine's exact cycle count over the
  // analytical wall time), since its own cycle counter is a prediction.
  report.Result("analytical_engine",
                {{"host_seconds", ana_host},
                 {"sim_cycles_per_sec",
                  cycles_per_sec(fast.stats.cycles, ana_host)},
                 {"predicted_cycles",
                  static_cast<double>(ana.stats.cycles)},
                 {"cycle_error_pct", cycle_error * 100.0}});
  report.ResultDouble("speedup",
                      fast_host > 0 ? ref_host / fast_host : 0.0);
  report.ResultDouble("speedup_analytical",
                      ana_host > 0 ? fast_host / ana_host : 0.0);
  report.Print();
  return 0;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      size_t n = 10'000'000;
      if (i + 1 < argc) n = std::strtoull(argv[i + 1], nullptr, 10);
      if (n == 0) n = 10'000'000;
      return fpart::JsonMain(n);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
