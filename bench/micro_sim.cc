// google-benchmark micro-benchmarks of the cycle-simulation kernel — the
// cost of simulating one FPGA clock cycle, which bounds how fast the
// circuit simulator can run large workloads.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fpga/hash_lane.h"
#include "fpga/write_combiner.h"
#include "sim/bram.h"
#include "sim/fifo.h"

namespace fpart {
namespace {

void BM_FifoPushPop(benchmark::State& state) {
  Fifo<uint64_t> fifo(64);
  uint64_t v = 0;
  for (auto _ : state) {
    fifo.Push(++v);
    benchmark::DoNotOptimize(fifo.Pop());
  }
}
BENCHMARK(BM_FifoPushPop);

void BM_BramCycle(benchmark::State& state) {
  Bram<uint64_t> bram(8192, 2);
  uint64_t addr = 0;
  for (auto _ : state) {
    bram.IssueRead(addr & 8191);
    bram.Write((addr + 7) & 8191, addr);
    bram.Tick();
    benchmark::DoNotOptimize(bram.read_ready());
    ++addr;
  }
}
BENCHMARK(BM_BramCycle);

void BM_HashLaneCycle(benchmark::State& state) {
  PartitionFn fn(HashMethod::kMurmur, 8192);
  Fifo<HashedTuple<Tuple8>> out(1 << 20);
  HashLane<Tuple8> lane(fn, 5, &out);
  uint32_t i = 0;
  for (auto _ : state) {
    lane.Tick(Tuple8{++i, i});
    if (out.size() > (1u << 19)) {
      state.PauseTiming();
      while (out.Pop()) {
      }
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_HashLaneCycle);

void BM_WriteCombinerCycle(benchmark::State& state) {
  WriteCombiner<Tuple8> comb(8192, 16, 8);
  Rng rng(5);
  uint32_t i = 0;
  for (auto _ : state) {
    if (!comb.input().full()) {
      comb.input().Push(
          HashedTuple<Tuple8>{rng.Next32() & 8191, Tuple8{++i, i}});
    }
    comb.Tick();
    while (comb.output().Pop()) {
    }
  }
}
BENCHMARK(BM_WriteCombinerCycle);

}  // namespace
}  // namespace fpart

BENCHMARK_MAIN();
