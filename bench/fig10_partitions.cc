// Figure 10: radix-join time on workload A for an increasing number of
// partitions — single-threaded (10a) and 10-threaded (10b) — split into
// partitioning and build+probe, for the pure CPU join and the hybrid
// (FPGA-partitioned) join, with model predictions.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/cpu_model.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("fig10_partitions", "Figure 10a/10b");
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  const uint64_t total = input->r.size() + input->s.size();
  const size_t host_max = BenchMaxThreads();
  const uint32_t parts[] = {256, 512, 1024, 2048, 4096, 8192};
  // One worker pool for the whole sweep; per-iteration pool construction
  // used to dominate the short single-threaded runs.
  ThreadPool pool(host_max);

  bool first_pass = true;
  for (size_t threads : {size_t{1}, host_max}) {
    if (!first_pass && threads == 1) break;  // 1-core host: one table only
    first_pass = false;
    std::printf("--- %zu-threaded build+probe (Figure 10%s)%s\n", threads,
                threads == 1 ? "a" : "b",
                threads == host_max && host_max < 10
                    ? " [host has fewer cores than the paper's 10]"
                    : "");
    std::printf("%6s | %9s %9s %9s | %9s %9s %9s | %12s %12s\n", "parts",
                "CPUpart", "CPUb+p", "CPUtotal", "FPGApart", "hyb b+p",
                "hyb total", "XeonModelTot", "FPGAmodel");
    for (uint32_t fanout : parts) {
      CpuJoinConfig cpu;
      cpu.fanout = fanout;
      cpu.num_threads = threads;
      cpu.pool = &pool;
      auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);

      HybridJoinConfig hybrid;
      hybrid.fpga.fanout = fanout;
      hybrid.fpga.output_mode = OutputMode::kPad;
      hybrid.num_threads = threads;
      hybrid.pool = &pool;
      auto hybrid_result = HybridJoin(hybrid, input->r, input->s);

      FpgaCostModel fpga_model(8, fanout);
      double fpga_pred =
          fpga_model.PredictSeconds(input->r.size(), OutputMode::kPad,
                                    LayoutMode::kRid, LinkKind::kXeonFpga) +
          fpga_model.PredictSeconds(input->s.size(), OutputMode::kPad,
                                    LayoutMode::kRid, LinkKind::kXeonFpga);
      double xeon_pred = CpuCostModel::JoinSeconds(
          input->r.size(), input->s.size(), fanout, threads,
          HashMethod::kRadix);

      if (cpu_result.ok() && hybrid_result.ok()) {
        std::printf(
            "%6u | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f | %12.3f %12.3f\n",
            fanout, cpu_result->partition_seconds,
            cpu_result->build_probe_seconds, cpu_result->total_seconds,
            hybrid_result->partition_seconds,
            hybrid_result->build_probe_seconds, hybrid_result->total_seconds,
            xeon_pred, fpga_pred);
        if (cpu_result->matches != input->s.size() ||
            hybrid_result->matches != input->s.size()) {
          std::printf("    !! match-count mismatch\n");
        }
      } else {
        std::printf("%6u | error: %s / %s\n", fanout,
                    cpu_result.ok() ? "ok"
                                    : cpu_result.status().ToString().c_str(),
                    hybrid_result.ok()
                        ? "ok"
                        : hybrid_result.status().ToString().c_str());
      }
    }
    std::printf("\n");
  }
  std::printf("total tuples joined per run: %llu\n",
              static_cast<unsigned long long>(total));
  std::printf(
      "Expected shape (paper): CPU partitioning time grows with the "
      "partition count\n(single-threaded) while FPGA partitioning stays "
      "flat; build+probe shrinks as\npartitions become cache-resident; "
      "hybrid build+probe is slowed by the\ncoherence penalty "
      "(Section 2.2).\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
