// Extension (Section 6): partitioning compressed columns. "Decompression
// ... can be done for free on the FPGA as the first step of a processing
// pipeline" — the circuit unpacks FOR frames inline, so the QPI reads
// shrink by the compression ratio while the CPU path must decompress
// first (or pay the same partitioning cost on decompressed data).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/fpart.h"
#include "cpu/partitioner.h"

namespace fpart {
namespace {

std::vector<uint32_t> WanderingKeys(size_t n, uint32_t spread) {
  std::vector<uint32_t> keys(n);
  Rng rng(spread);
  uint32_t value = 1;
  for (size_t i = 0; i < n; ++i) {
    value += static_cast<uint32_t>(rng.Below(spread));
    keys[i] = value;
  }
  return keys;
}

int Run() {
  bench::Banner("ext_compression", "Section 6 (compressed columns)");
  const size_t n = static_cast<size_t>(16e6 * BenchScale());

  std::printf("%10s %7s | %12s %12s | %18s\n", "delta", "ratio",
              "VRID Mt/s", "compr. Mt/s", "CPU decompress(s)");
  for (uint32_t spread : {2u, 64u, 1024u, 65536u, 1u << 24}) {
    auto keys = WanderingKeys(n, spread);
    auto column = CompressedColumn::Compress(keys.data(), keys.size());
    if (!column.ok()) return 1;

    FpgaPartitionerConfig config;
    config.fanout = 8192;
    config.output_mode = OutputMode::kPad;

    config.layout = LayoutMode::kVrid;
    FpgaPartitioner<Tuple8> vrid(config);
    auto vrid_run = vrid.PartitionColumn(keys.data(), n);

    config.layout = LayoutMode::kCompressed;
    FpgaPartitioner<Tuple8> compressed(config);
    auto comp_run = compressed.PartitionCompressed(*column);

    // CPU path: decompress first, then partition (decompression cost only;
    // the partitioning itself is Figure 4's story).
    Timer timer;
    auto decompressed = column->DecompressAll();
    double decompress_seconds = timer.Seconds();
    if (decompressed != keys) std::printf("  !! codec mismatch\n");

    std::printf("%10u %6.2fx | %12.0f %12.0f | %18.3f\n", spread,
                column->ratio(),
                vrid_run.ok() ? vrid_run->mtuples_per_sec : -1.0,
                comp_run.ok() ? comp_run->mtuples_per_sec : -1.0,
                decompress_seconds);
  }
  std::printf(
      "\nExpected shape: the more compressible the column, the fewer QPI "
      "reads the\ncircuit issues and the higher its end-to-end rate — "
      "while the CPU pays a\nfull decompression pass before it can even "
      "start partitioning.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
