// Extension (Section 2.1, Figure 2's "interfered" series): FPGA
// partitioning while the CPU hammers the shared memory. The QPI link model
// switches to the interfered bandwidth curve; the bench quantifies the
// slowdown per mode.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_interference", "Figure 2 interference series");
  const size_t n = static_cast<size_t>(16e6 * BenchScale());
  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) return 1;
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = (*rel)[i].key;

  std::printf("%-12s | %12s %12s | %9s\n", "mode", "alone Mt/s",
              "interf. Mt/s", "slowdown");
  struct Cfg {
    const char* name;
    OutputMode mode;
    LayoutMode layout;
  };
  for (const Cfg& cfg :
       {Cfg{"HIST/RID", OutputMode::kHist, LayoutMode::kRid},
        Cfg{"PAD/RID", OutputMode::kPad, LayoutMode::kRid},
        Cfg{"PAD/VRID", OutputMode::kPad, LayoutMode::kVrid}}) {
    double rates[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      FpgaPartitionerConfig config;
      config.fanout = 8192;
      config.output_mode = cfg.mode;
      config.layout = cfg.layout;
      config.interference =
          i == 0 ? Interference::kAlone : Interference::kInterfered;
      FpgaPartitioner<Tuple8> part(config);
      auto run = cfg.layout == LayoutMode::kVrid
                     ? part.PartitionColumn(keys.data(), n)
                     : part.Partition(rel->data(), n);
      if (run.ok()) rates[i] = run->mtuples_per_sec;
    }
    std::printf("%-12s | %12.0f %12.0f | %8.2fx\n", cfg.name, rates[0],
                rates[1], rates[1] > 0 ? rates[0] / rates[1] : 0.0);
  }
  std::printf(
      "\nExpected shape (Figure 2): concurrent CPU traffic costs the FPGA "
      "~30%% of its\nQPI bandwidth, and since the partitioner is bandwidth "
      "bound, throughput drops\nby the same factor in every mode.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
