// Extension (Section 2.1, Figure 2's "interfered" series): FPGA
// partitioning while the CPU hammers the shared memory.
//
// Phase 1 reproduces the model curve: the QPI link switched to the
// interfered bandwidth, per output mode.
//
// Phase 2 produces the same effect through the svc runtime: a stream of
// FPGA-pinned partition jobs runs against a stream of CPU-pinned
// contending jobs on one Scheduler with adaptive interference enabled.
// Whenever a device job executes while CPU workers are busy, the
// scheduler marks its run link-interfered — so the reported slowdown is a
// property of the *arbitrated* system, not of a toggled flag.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "svc/scheduler.h"

namespace fpart {
namespace {

// Phase 1: the Figure 2 model curves, directly.
void ModelCurves(const Relation<Tuple8>& rel,
                 const std::vector<uint32_t>& keys) {
  const size_t n = rel.size();
  std::printf("%-12s | %12s %12s | %9s\n", "mode", "alone Mt/s",
              "interf. Mt/s", "slowdown");
  struct Cfg {
    const char* name;
    OutputMode mode;
    LayoutMode layout;
  };
  for (const Cfg& cfg :
       {Cfg{"HIST/RID", OutputMode::kHist, LayoutMode::kRid},
        Cfg{"PAD/RID", OutputMode::kPad, LayoutMode::kRid},
        Cfg{"PAD/VRID", OutputMode::kPad, LayoutMode::kVrid}}) {
    double rates[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      FpgaPartitionerConfig config;
      config.fanout = 8192;
      config.output_mode = cfg.mode;
      config.layout = cfg.layout;
      config.interference =
          i == 0 ? Interference::kAlone : Interference::kInterfered;
      FpgaPartitioner<Tuple8> part(config);
      auto run = cfg.layout == LayoutMode::kVrid
                     ? part.PartitionColumn(keys.data(), n)
                     : part.Partition(rel.data(), n);
      if (run.ok()) rates[i] = run->mtuples_per_sec;
    }
    std::printf("%-12s | %12.0f %12.0f | %8.2fx\n", cfg.name, rates[0],
                rates[1], rates[1] > 0 ? rates[0] / rates[1] : 0.0);
  }
}

// One scheduler run: `fpga_jobs` FPGA-pinned partitions of `rel`, with
// `cpu_jobs` CPU-pinned contenders in flight when contended != 0. Returns
// the mean simulated FPGA throughput (Mt/s) across the device jobs.
double ServiceRun(const Relation<Tuple8>& rel,
                  const Relation<Tuple8>& contender_rel, int fpga_jobs,
                  int cpu_jobs) {
  svc::SchedulerConfig config;
  config.num_workers = 3;  // 1 device job + contenders in parallel
  config.adaptive_interference = true;
  config.name = "intf";
  svc::Scheduler scheduler(config);

  // Interleave the two streams (the queue dispatches FIFO): each device
  // job then runs while the workers around it are chewing on contenders,
  // which is what makes the adaptive-interference sampling fire.
  std::vector<svc::JobHandle> contenders;
  std::vector<svc::JobHandle> device;
  svc::JobOptions cpu_opts;
  cpu_opts.pinned = svc::Backend::kCpu;
  svc::JobOptions fpga_opts;
  fpga_opts.pinned = svc::Backend::kFpga;
  const int per_device = fpga_jobs > 0 ? cpu_jobs / fpga_jobs : 0;
  for (int d = 0; d < fpga_jobs; ++d) {
    for (int i = 0; i < per_device; ++i) {
      svc::PartitionJobSpec spec;
      spec.input = &contender_rel;
      spec.request.fanout = 8192;
      spec.request.hash = HashMethod::kMurmur;
      auto h = scheduler.Submit(spec, cpu_opts);
      if (h.ok()) contenders.push_back(std::move(h).ValueUnsafe());
    }
    svc::PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 8192;
    spec.request.hash = HashMethod::kMurmur;
    spec.request.output_mode = OutputMode::kPad;
    auto h = scheduler.Submit(spec, fpga_opts);
    if (h.ok()) device.push_back(std::move(h).ValueUnsafe());
  }

  double sum_mtps = 0.0;
  int ok = 0;
  for (const svc::JobHandle& h : device) {
    const svc::JobOutcome& out = h.Wait();
    if (out.state == svc::JobState::kCompleted && out.device_seconds > 0) {
      sum_mtps += rel.size() / out.device_seconds / 1e6;
      ++ok;
    }
  }
  for (const svc::JobHandle& h : contenders) h.Wait();
  scheduler.Shutdown();
  return ok > 0 ? sum_mtps / ok : 0.0;
}

int Run() {
  bench::Banner("ext_interference", "Figure 2 interference series");
  const size_t n = static_cast<size_t>(16e6 * BenchScale());
  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) return 1;
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = (*rel)[i].key;

  std::printf("-- model curves (link toggled directly) --\n");
  ModelCurves(*rel, keys);

  std::printf("\n-- through the svc scheduler (arbitrated contention) --\n");
  // Contenders partition a 4x larger relation: each CPU job runs several
  // times longer than a device job, so the workers stay busy across the
  // whole device stream instead of leaving sampling gaps.
  auto big = GenerateUniqueRelation(4 * n, KeyDistribution::kRandom, 11);
  if (!big.ok()) return 1;
  const int kFpgaJobs = 6;
  const double alone = ServiceRun(*rel, *big, kFpgaJobs, /*cpu_jobs=*/0);
  const double contended = ServiceRun(*rel, *big, kFpgaJobs, /*cpu_jobs=*/12);
  std::printf("%-12s | %12.0f %12.0f | %8.2fx\n", "PAD/RID svc", alone,
              contended, contended > 0 ? alone / contended : 0.0);

  std::printf(
      "\nExpected shape (Figure 2): concurrent CPU traffic costs the FPGA "
      "~30%% of its\nQPI bandwidth, and since the partitioner is bandwidth "
      "bound, throughput drops\nby the same factor in every mode. The svc "
      "row shows the same slowdown arising\nfrom real arbitration: device "
      "jobs only see the interfered link while CPU\nworkers are actually "
      "busy.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
