// Ablation (Section 4.2, Code 4): the fill-rate forwarding registers. A
// naive circuit must stall the pipeline whenever consecutive tuples hit
// the same partition (a BRAM read-after-write hazard); the forwarding
// registers remove every stall. We compare cycles on the raw wrapper so
// the circuit — not the QPI link — is the bottleneck.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/relation.h"
#include "fpga/partitioner.h"

namespace fpart {
namespace {

struct Outcome {
  uint64_t cycles;
  uint64_t stalls;
  double mtuples;
};

Outcome RunOnce(const Relation<Tuple8>& rel, uint32_t fanout,
                HazardPolicy policy) {
  FpgaPartitionerConfig config;
  config.fanout = fanout;
  config.output_mode = OutputMode::kPad;
  config.pad_fraction = 2.0;
  config.hash = HashMethod::kRadix;
  config.link = LinkKind::kRawWrapper;
  FpgaPartitioner<Tuple8> part(config);
  part.set_hazard_policy(policy);
  auto run = part.Partition(rel.data(), rel.size());
  if (!run.ok()) return {0, 0, 0};
  return {run->stats.cycles, run->stats.internal_stall_cycles,
          run->mtuples_per_sec};
}

int Run() {
  bench::Banner("ablation_forwarding", "Section 4.2 (no-stall claim)");
  const size_t n = static_cast<size_t>(4e6 * BenchScale());

  struct Case {
    const char* name;
    uint32_t fanout;
    bool clustered;
  };
  const Case cases[] = {
      {"uniform keys, 8192 parts", 8192, false},
      {"uniform keys, 64 parts", 64, false},
      {"clustered keys, 64 parts", 64, true},
      {"clustered keys, 16 parts", 16, true},
  };

  std::printf("%-28s | %12s %8s | %12s %8s | %8s\n", "input",
              "fwd cycles", "Mt/s", "stall cycles", "Mt/s", "slowdown");
  for (const Case& c : cases) {
    auto rel = Relation<Tuple8>::Allocate(n);
    if (!rel.ok()) return 1;
    Rng rng(5);
    for (size_t i = 0; i < n; ++i) {
      uint32_t key = c.clustered
                         ? static_cast<uint32_t>((i / 256) % c.fanout)
                         : rng.Next32() & 0x7fffffffu;
      (*rel)[i] = Tuple8{key, static_cast<uint32_t>(i)};
    }
    Outcome fwd = RunOnce(*rel, c.fanout, HazardPolicy::kForward);
    Outcome stall = RunOnce(*rel, c.fanout, HazardPolicy::kStall);
    std::printf("%-28s | %12llu %8.0f | %12llu %8.0f | %7.2fx\n", c.name,
                static_cast<unsigned long long>(fwd.cycles), fwd.mtuples,
                static_cast<unsigned long long>(stall.stalls), stall.mtuples,
                fwd.mtuples > 0 ? fwd.mtuples / stall.mtuples : 0.0);
    if (fwd.stalls != 0) std::printf("  !! forwarding circuit stalled\n");
  }
  std::printf(
      "\nExpected shape: the forwarding circuit never stalls (the paper's "
      "headline\nproperty); the naive circuit loses up to ~2/3 of its "
      "throughput on\nsame-partition runs, which any low-fan-out or "
      "clustered input produces.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
