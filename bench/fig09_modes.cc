// Figure 9 + Section 4.8: end-to-end partitioning throughput of the four
// FPGA operation modes vs the 10-threaded CPU partitioner, plus the raw
// (25.6 GB/s wrapper) circuit throughput and the analytical model's
// predictions. 8 B tuples, 8192 partitions.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/paper_constants.h"

namespace fpart {
namespace {

struct Row {
  const char* name;
  double measured;
  double paper;
  double model;
};

int Run() {
  bench::Banner("fig09_modes", "Figure 9 and Section 4.8 (model validation)");
  const size_t n =
      static_cast<size_t>(128e6 * BenchScale() / 8.0);  // default 16e6
  const uint32_t fanout = 8192;

  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 rel.status().ToString().c_str());
    return 1;
  }
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = (*rel)[i].key;

  FpgaCostModel model(8, fanout);
  std::vector<Row> rows;
  rows.push_back({"[27] (32 cores)", 0, paper::kFig9Polychroniou32Cores, 0});
  rows.push_back({"[37] (FPGA)", 0, paper::kFig9WangFpga, 0});

  auto run_fpga = [&](const char* name, OutputMode mode, LayoutMode layout,
                      LinkKind link, double paper_num) {
    FpgaPartitionerConfig config;
    config.fanout = fanout;
    config.output_mode = mode;
    config.layout = layout;
    config.link = link;
    FpgaPartitioner<Tuple8> part(config);
    auto result = layout == LayoutMode::kVrid
                      ? part.PartitionColumn(keys.data(), n)
                      : part.Partition(rel->data(), n);
    double measured = result.ok() ? result->mtuples_per_sec : -1;
    double predicted =
        model.TotalRateTuplesPerSec(n, mode, layout, link) / 1e6;
    rows.push_back({name, measured, paper_num, predicted});
  };

  run_fpga("HIST/RID", OutputMode::kHist, LayoutMode::kRid,
           LinkKind::kXeonFpga, paper::kFig9HistRid);
  run_fpga("HIST/VRID", OutputMode::kHist, LayoutMode::kVrid,
           LinkKind::kXeonFpga, paper::kFig9HistVrid);
  run_fpga("PAD/RID", OutputMode::kPad, LayoutMode::kRid, LinkKind::kXeonFpga,
           paper::kFig9PadRid);
  run_fpga("PAD/VRID", OutputMode::kPad, LayoutMode::kVrid,
           LinkKind::kXeonFpga, paper::kFig9PadVrid);

  {
    ThreadPool pool(BenchMaxThreads());
    CpuPartitionerConfig config;
    config.fanout = fanout;
    config.hash = HashMethod::kRadix;
    config.num_threads = BenchMaxThreads();
    config.pool = &pool;
    auto result = CpuPartition(config, rel->data(), n);
    rows.push_back({"CPU (10 cores)",
                    result.ok() ? result->mtuples_per_sec : -1,
                    paper::kFig9Cpu10Cores, 0});
  }

  run_fpga("Raw FPGA (HIST)", OutputMode::kHist, LayoutMode::kRid,
           LinkKind::kRawWrapper, paper::kFig9RawHist);
  run_fpga("Raw FPGA (PAD)", OutputMode::kPad, LayoutMode::kRid,
           LinkKind::kRawWrapper, paper::kFig9RawPad);

  std::printf("%-18s %12s %12s %12s %8s\n", "configuration",
              "measured Mt/s", "paper Mt/s", "model Mt/s", "Δpaper");
  for (const Row& row : rows) {
    if (row.measured <= 0 && row.model <= 0) {
      std::printf("%-18s %12s %12.0f %12s %8s\n", row.name, "-", row.paper,
                  "-", "-");
    } else {
      std::printf("%-18s %12.0f %12.0f %12.0f %+7.1f%%\n", row.name,
                  row.measured, row.paper, row.model,
                  bench::DeltaPct(row.measured, row.paper));
    }
  }

  std::printf("\nSection 4.8 model validation (N=%zu, W=8B):\n", n);
  std::printf("  HIST/RID  r=2.0: model %4.0f Mt/s (paper derives 294)\n",
              model.TotalRateTuplesPerSec(n, OutputMode::kHist,
                                          LayoutMode::kRid,
                                          LinkKind::kXeonFpga) /
                  1e6);
  std::printf("  PAD/RID   r=1.0: model %4.0f Mt/s (paper derives 435)\n",
              model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                          LayoutMode::kRid,
                                          LinkKind::kXeonFpga) /
                  1e6);
  std::printf("  PAD/VRID  r=0.5: model %4.0f Mt/s (paper derives 495)\n",
              model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                          LayoutMode::kVrid,
                                          LinkKind::kXeonFpga) /
                  1e6);
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
