// Figure 13: join time on workload A when relation S is Zipf-skewed, for
// factors 0.25–1.75. The FPGA partitions in HIST/RID mode (PAD overflows
// beyond z ≈ 0.25); the CPU join handles skew natively via its histogram.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/cpu_model.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("fig13_skew", "Figure 13");
  const double scale = BenchScale() / 8.0;
  const size_t threads = BenchMaxThreads();
  const uint32_t fanout = 8192;
  ThreadPool pool(threads);

  std::printf("%6s | %9s %9s %9s | %9s %9s %9s | %9s | %5s\n", "zipf",
              "CPU part", "CPU b+p", "CPU tot", "FPGA part", "hyb b+p",
              "hyb tot", "FPGAmodel", "PADok");
  FpgaCostModel model(8, fanout);
  for (double z : {0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75}) {
    WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, scale);
    spec.zipf = z;
    auto input = GenerateWorkload(spec, 7);
    if (!input.ok()) return 1;

    CpuJoinConfig cpu;
    cpu.fanout = fanout;
    cpu.num_threads = threads;
    cpu.pool = &pool;
    auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);

    // Does PAD survive this skew? (Paper: fails for z > 0.25.)
    HybridJoinConfig pad;
    pad.fpga.fanout = fanout;
    pad.fpga.output_mode = OutputMode::kPad;
    pad.num_threads = 1;
    bool pad_ok = HybridJoin(pad, input->r, input->s).ok();

    HybridJoinConfig hist = pad;
    hist.fpga.output_mode = OutputMode::kHist;
    hist.num_threads = threads;
    hist.pool = &pool;
    auto hybrid_result = HybridJoin(hist, input->r, input->s);

    double fpga_pred =
        model.PredictSeconds(input->r.size(), OutputMode::kHist,
                             LayoutMode::kRid, LinkKind::kXeonFpga) +
        model.PredictSeconds(input->s.size(), OutputMode::kHist,
                             LayoutMode::kRid, LinkKind::kXeonFpga);

    if (cpu_result.ok() && hybrid_result.ok()) {
      std::printf(
          "%6.2f | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f | %9.3f | %5s\n", z,
          cpu_result->partition_seconds, cpu_result->build_probe_seconds,
          cpu_result->total_seconds, hybrid_result->partition_seconds,
          hybrid_result->build_probe_seconds, hybrid_result->total_seconds,
          fpga_pred, pad_ok ? "yes" : "no");
    } else {
      std::printf("%6.2f | error: %s\n", z,
                  cpu_result.ok() ? hybrid_result.status().ToString().c_str()
                                  : cpu_result.status().ToString().c_str());
    }
  }
  std::printf(
      "\nExpected shape (paper): HIST/RID partitioning is ~constant across "
      "skews but\nslower than the 10-core CPU (it scans twice over the "
      "bandwidth-starved QPI);\nbuild+probe shrinks with skew as probes hit "
      "hot, cached keys. PAD mode\noverflows for z > 0.25.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
