// Figure 11: join time on workloads A (equal relations) and B (small build,
// large probe) for an increasing number of build+probe threads; the CPU
// join vs the hybrid join in PAD/RID and PAD/VRID modes. 8192 partitions.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/cpu_model.h"

namespace fpart {
namespace {

void RunWorkload(WorkloadId id, double scale, size_t host_max,
                 ThreadPool* pool) {
  auto input = GenerateWorkload(GetWorkloadSpec(id, scale), 7);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return;
  }
  const uint32_t fanout = 8192;
  std::printf("--- Workload %s: |R|=%zu |S|=%zu\n", input->spec.name,
              input->r.size(), input->s.size());

  // FPGA partitioning time does not depend on the CPU thread count; run
  // each layout's simulation once.
  auto hybrid_once = [&](LayoutMode layout, size_t threads) {
    HybridJoinConfig config;
    config.fpga.fanout = fanout;
    config.fpga.output_mode = OutputMode::kPad;
    config.fpga.layout = layout;
    config.num_threads = threads;
    config.pool = pool;
    return HybridJoin(config, input->r, input->s);
  };

  std::printf("%8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "threads",
              "CPU part", "CPU tot", "RID part", "RID tot", "VRID part",
              "VRID tot", "XeonModel", "FPGAmodel");
  FpgaCostModel model(8, fanout);
  const double fpga_pred =
      model.PredictSeconds(input->r.size(), OutputMode::kPad,
                           LayoutMode::kRid, LinkKind::kXeonFpga) +
      model.PredictSeconds(input->s.size(), OutputMode::kPad,
                           LayoutMode::kRid, LinkKind::kXeonFpga);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{10}}) {
    if (threads > host_max) continue;
    CpuJoinConfig cpu;
    cpu.fanout = fanout;
    cpu.num_threads = threads;
    cpu.pool = pool;
    auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);
    auto rid = hybrid_once(LayoutMode::kRid, threads);
    auto vrid = hybrid_once(LayoutMode::kVrid, threads);
    if (!cpu_result.ok() || !rid.ok() || !vrid.ok()) {
      std::printf("%8zu | error\n", threads);
      continue;
    }
    std::printf(
        "%8zu | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f\n",
        threads, cpu_result->partition_seconds, cpu_result->total_seconds,
        rid->partition_seconds, rid->total_seconds, vrid->partition_seconds,
        vrid->total_seconds,
        CpuCostModel::JoinSeconds(input->r.size(), input->s.size(), fanout,
                                  threads, HashMethod::kRadix),
        fpga_pred);
  }
  std::printf("\n");
}

int Run() {
  bench::Banner("fig11_threads", "Figure 11a/11b");
  const double scale = BenchScale() / 8.0;
  const size_t host_max = BenchMaxThreads();
  // Shared across both workloads and every thread count; ParallelFor(n)
  // with n below the pool size simply leaves workers idle.
  ThreadPool pool(host_max);
  RunWorkload(WorkloadId::kA, scale, host_max, &pool);
  RunWorkload(WorkloadId::kB, scale, host_max, &pool);
  std::printf(
      "Expected shape (paper): VRID partitions fastest (half the reads); "
      "with 10\nthreads the CPU join edges out the hybrid because "
      "build+probe after FPGA\npartitioning pays the snoop penalty.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
