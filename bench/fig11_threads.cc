// Figure 11: join time on workloads A (equal relations) and B (small build,
// large probe) for an increasing number of build+probe threads; the CPU
// join vs the hybrid join in PAD/RID and PAD/VRID modes. 8192 partitions.
//
// `--json` emits the fpart.obs.v1 CPU-join thread sweep on workload A
// instead, one row per thread count per affinity setting (unpinned vs
// pinned pool), with the partitioning-phase `hw.*` counter deltas when
// perf events are available.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "core/fpart.h"
#include "model/cpu_model.h"
#include "obs/report.h"

namespace fpart {
namespace {

void RunWorkload(WorkloadId id, double scale, size_t host_max,
                 ThreadPool* pool) {
  auto input = GenerateWorkload(GetWorkloadSpec(id, scale), 7);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return;
  }
  const uint32_t fanout = 8192;
  std::printf("--- Workload %s: |R|=%zu |S|=%zu\n", input->spec.name,
              input->r.size(), input->s.size());

  // FPGA partitioning time does not depend on the CPU thread count; run
  // each layout's simulation once.
  auto hybrid_once = [&](LayoutMode layout, size_t threads) {
    HybridJoinConfig config;
    config.fpga.fanout = fanout;
    config.fpga.output_mode = OutputMode::kPad;
    config.fpga.layout = layout;
    config.num_threads = threads;
    config.pool = pool;
    return HybridJoin(config, input->r, input->s);
  };

  std::printf("%8s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "threads",
              "CPU part", "CPU tot", "RID part", "RID tot", "VRID part",
              "VRID tot", "XeonModel", "FPGAmodel");
  FpgaCostModel model(8, fanout);
  const double fpga_pred =
      model.PredictSeconds(input->r.size(), OutputMode::kPad,
                           LayoutMode::kRid, LinkKind::kXeonFpga) +
      model.PredictSeconds(input->s.size(), OutputMode::kPad,
                           LayoutMode::kRid, LinkKind::kXeonFpga);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{10}}) {
    if (threads > host_max) continue;
    CpuJoinConfig cpu;
    cpu.fanout = fanout;
    cpu.num_threads = threads;
    cpu.pool = pool;
    auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);
    auto rid = hybrid_once(LayoutMode::kRid, threads);
    auto vrid = hybrid_once(LayoutMode::kVrid, threads);
    if (!cpu_result.ok() || !rid.ok() || !vrid.ok()) {
      std::printf("%8zu | error\n", threads);
      continue;
    }
    std::printf(
        "%8zu | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f\n",
        threads, cpu_result->partition_seconds, cpu_result->total_seconds,
        rid->partition_seconds, rid->total_seconds, vrid->partition_seconds,
        vrid->total_seconds,
        CpuCostModel::JoinSeconds(input->r.size(), input->s.size(), fanout,
                                  threads, HashMethod::kRadix),
        fpga_pred);
  }
  std::printf("\n");
}

/// The "affinity on" policy of the sweep (see fig04): FPART_AFFINITY when
/// set, else numa-local on multi-node hosts, compact on single-node ones.
AffinityPolicy OnPolicy() {
  const AffinityPolicy env = AffinityPolicyFromEnv();
  if (env != AffinityPolicy::kNone) return env;
  return Topology::Host().num_nodes() > 1 ? AffinityPolicy::kNumaLocal
                                          : AffinityPolicy::kCompact;
}

int JsonMain() {
  const double scale = BenchScale() / 8.0;
  const size_t host_max = BenchMaxThreads();
  const uint32_t fanout = 8192;
  const AffinityPolicy on = OnPolicy();

  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  obs::BenchReport report("fig11_threads");
  report.ConfigStr("workload", input->spec.name);
  report.ConfigUInt("r_tuples", input->r.size());
  report.ConfigUInt("s_tuples", input->s.size());
  report.ConfigUInt("fanout", fanout);
  report.ConfigStr("affinity", AffinityPolicyName(on));
  report.ConfigUInt("max_threads", host_max);
  report.ConfigUInt("num_nodes", Topology::Host().num_nodes());
  report.ConfigStr("hw_counters",
                   obs::HwCountersSupported() ? "available" : "unavailable");

  // One pool per affinity setting, shared across the thread sweep the way
  // the text mode shares its pool.
  ThreadPool pool_off(host_max, "fpart-wkr", AffinityPolicy::kNone);
  ThreadPool pool_on(host_max, "fpart-wkr", on);
  for (size_t t : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{10}}) {
    if (t > host_max) continue;
    for (const AffinityPolicy policy : {AffinityPolicy::kNone, on}) {
      CpuJoinConfig cpu;
      cpu.fanout = fanout;
      cpu.num_threads = t;
      cpu.pool = policy == AffinityPolicy::kNone ? &pool_off : &pool_on;
      const bench::HwUsage hw_before = bench::HwUsage::Now();
      auto run = CpuRadixJoin(cpu, input->r, input->s);
      if (!run.ok()) {
        std::fprintf(stderr, "join failed: %s\n",
                     run.status().ToString().c_str());
        return 1;
      }
      auto fields = bench::HwUsage::Now().FieldsSince(hw_before);
      fields.emplace_back("partition_seconds", run->partition_seconds);
      fields.emplace_back("build_probe_seconds", run->build_probe_seconds);
      fields.emplace_back("total_seconds", run->total_seconds);
      fields.emplace_back("mtuples_per_sec", run->mtuples_per_sec);
      char row[64];
      std::snprintf(row, sizeof(row), "cpu_join_t%zu_affinity_%s", t,
                    AffinityPolicyName(policy));
      report.Result(row, fields);
    }
  }
  report.Print();
  return 0;
}

int Run() {
  bench::Banner("fig11_threads", "Figure 11a/11b");
  const double scale = BenchScale() / 8.0;
  const size_t host_max = BenchMaxThreads();
  // Shared across both workloads and every thread count; ParallelFor(n)
  // with n below the pool size simply leaves workers idle.
  ThreadPool pool(host_max);
  RunWorkload(WorkloadId::kA, scale, host_max, &pool);
  RunWorkload(WorkloadId::kB, scale, host_max, &pool);
  std::printf(
      "Expected shape (paper): VRID partitions fastest (half the reads); "
      "with 10\nthreads the CPU join edges out the hybrid because "
      "build+probe after FPGA\npartitioning pays the snoop penalty.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return fpart::JsonMain();
  }
  return fpart::Run();
}
