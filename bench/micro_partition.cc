// google-benchmark micro-benchmarks of the partitioners themselves:
// CPU variants per tuple and the simulated-FPGA cycles per tuple.
#include <benchmark/benchmark.h>

#include "cpu/partitioner.h"
#include "datagen/workloads.h"
#include "fpga/partitioner.h"

namespace fpart {
namespace {

void BM_CpuPartition(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  CpuPartitionerConfig config;
  config.fanout = static_cast<uint32_t>(state.range(0));
  config.use_buffers = state.range(1) != 0;
  for (auto _ : state) {
    auto run = CpuPartition(config, rel->data(), rel->size());
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuPartition)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

void BM_FpgaSimPartition(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  FpgaPartitionerConfig config;
  config.fanout = static_cast<uint32_t>(state.range(0));
  config.link = LinkKind::kRawWrapper;
  for (auto _ : state) {
    FpgaPartitioner<Tuple8> part(config);
    auto run = part.Partition(rel->data(), rel->size());
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FpgaSimPartition)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace fpart

BENCHMARK_MAIN();
