// google-benchmark micro-benchmarks of the partitioners themselves:
// CPU variants per tuple and the simulated-FPGA cycles per tuple.
//
// `--json [n]` switches to a CPU-partitioner throughput report instead:
// single-threaded radix partitioning (the Figure 4 config: fanout 8192,
// 8 B tuples) under the PR-1 scalar path and the fused SIMD+prefetch
// path, printed as a JSON object (see scripts/bench_cpu.sh).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "common/cpu_features.h"
#include "common/timer.h"
#include "cpu/partitioner.h"
#include "datagen/workloads.h"
#include "fpga/partitioner.h"
#include "obs/report.h"

namespace fpart {
namespace {

void BM_CpuPartition(benchmark::State& state) {
  const size_t n = 1 << 20;
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  CpuPartitionerConfig config;
  config.fanout = static_cast<uint32_t>(state.range(0));
  config.use_buffers = state.range(1) != 0;
  config.use_simd = state.range(2) != 0;
  for (auto _ : state) {
    auto run = CpuPartition(config, rel->data(), rel->size());
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CpuPartition)
    ->Args({1024, 0, 0})
    ->Args({1024, 1, 0})
    ->Args({1024, 1, 1})
    ->Args({8192, 0, 0})
    ->Args({8192, 0, 1})
    ->Args({8192, 1, 0})
    ->Args({8192, 1, 1});

void BM_FpgaSimPartition(benchmark::State& state) {
  const size_t n = 1 << 18;
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  FpgaPartitionerConfig config;
  config.fanout = static_cast<uint32_t>(state.range(0));
  config.link = LinkKind::kRawWrapper;
  for (auto _ : state) {
    FpgaPartitioner<Tuple8> part(config);
    auto run = part.Partition(rel->data(), rel->size());
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FpgaSimPartition)->Arg(1024)->Arg(8192);

struct PhaseTimes {
  double total = 0.0;
  double histogram = 0.0;
  double scatter = 0.0;
};

// One timed partitioning run; returns false on error.
bool RunOnce(const Relation<Tuple8>& rel, bool use_simd, PhaseTimes* out) {
  CpuPartitionerConfig config;
  config.fanout = 8192;
  config.hash = HashMethod::kRadix;
  config.num_threads = 1;
  config.use_simd = use_simd;
  auto run = CpuPartition(config, rel.data(), rel.size());
  if (!run.ok()) {
    std::fprintf(stderr, "partition run failed: %s\n",
                 run.status().ToString().c_str());
    return false;
  }
  out->total = run->seconds;
  out->histogram = run->histogram_seconds;
  out->scatter = run->scatter_seconds;
  return true;
}

int JsonMain(size_t n) {
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) {
    std::fprintf(stderr, "datagen failed\n");
    return 1;
  }

  // Interleaved best-of-5: each path's reported time is its fastest run,
  // which filters scheduler noise without favouring either path. The hw.*
  // counters accumulate over each path's five runs and are reported as
  // per-run averages next to the best-of timings.
  constexpr int kRuns = 5;
  PhaseTimes scalar, fused;
  bench::HwUsage scalar_acc, fused_acc;  // per-path counter accumulators
  for (int r = 0; r < kRuns; ++r) {
    PhaseTimes ss, fs;
    const bench::HwUsage m0 = bench::HwUsage::Now();
    if (!RunOnce(*rel, /*use_simd=*/false, &ss)) return 1;
    const bench::HwUsage m1 = bench::HwUsage::Now();
    if (!RunOnce(*rel, /*use_simd=*/true, &fs)) return 1;
    const bench::HwUsage m2 = bench::HwUsage::Now();
    scalar_acc.AddDelta(m0, m1);
    fused_acc.AddDelta(m1, m2);
    if (r == 0 || ss.total < scalar.total) scalar = ss;
    if (r == 0 || fs.total < fused.total) fused = fs;
  }

  auto mtps = [n](double s) { return s > 0 ? n / s / 1e6 : 0.0; };
  obs::BenchReport report("micro_partition");
  report.ConfigUInt("n_tuples", n);
  report.ConfigUInt("fanout", 8192);
  report.ConfigStr("hash", "radix");
  report.ConfigStr("tuple", "Tuple8");
  report.ConfigUInt("num_threads", 1);
  report.ConfigStr("simd_level", SimdLevelName(ActiveSimdLevel()));
  report.ConfigStr("affinity", AffinityPolicyName(AffinityPolicyFromEnv()));
  report.ConfigStr("hw_counters",
                   obs::HwCountersSupported() ? "available" : "unavailable");
  auto row = [&](const char* name, const PhaseTimes& t,
                 std::vector<std::pair<std::string, double>> hw) {
    for (auto& [key, value] : hw) value /= kRuns;
    hw.emplace_back("seconds", t.total);
    hw.emplace_back("mtuples_per_sec", mtps(t.total));
    hw.emplace_back("histogram_seconds", t.histogram);
    hw.emplace_back("scatter_seconds", t.scatter);
    report.Result(name, hw);
  };
  row("scalar", scalar, scalar_acc.FieldsSince(bench::HwUsage()));
  row("fused_simd", fused, fused_acc.FieldsSince(bench::HwUsage()));
  report.ResultDouble("speedup",
                      fused.total > 0 ? scalar.total / fused.total : 0.0);
  report.Print();
  return 0;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      size_t n = 16'000'000;
      if (i + 1 < argc) n = std::strtoull(argv[i + 1], nullptr, 10);
      if (n == 0) n = 16'000'000;
      return fpart::JsonMain(n);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
