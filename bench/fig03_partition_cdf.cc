// Figure 3: distribution of tuples across 8192 partitions under radix vs
// hash partitioning for the four key distributions, rendered as a CDF
// table (number of partitions with at most X tuples).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/workloads.h"
#include "hash/hash_function.h"

namespace fpart {
namespace {

std::vector<uint64_t> Histogram(const Relation<Tuple8>& rel, HashMethod method,
                                uint32_t fanout) {
  PartitionFn fn(method, fanout);
  std::vector<uint64_t> hist(fanout, 0);
  for (const auto& t : rel) ++hist[fn(t.key)];
  return hist;
}

int Run() {
  bench::Banner("fig03_partition_cdf", "Figure 3a/3b");
  const uint32_t fanout = 8192;
  const size_t n = static_cast<size_t>(64e6 * BenchScale() / 8.0);
  const double avg = static_cast<double>(n) / fanout;

  const KeyDistribution dists[] = {
      KeyDistribution::kLinear, KeyDistribution::kRandom,
      KeyDistribution::kGrid, KeyDistribution::kReverseGrid};

  // CDF sampling points as multiples of the average partition size (the
  // paper's x-axis 0..65536 corresponds to 0..4x the 16384 average).
  const double points[] = {0.0, 0.5, 1.0, 1.5, 2.0, 4.0};

  for (HashMethod method : {HashMethod::kRadix, HashMethod::kMurmur}) {
    std::printf("--- %s partitioning (Figure 3%s), %u partitions, %zu keys\n",
                method == HashMethod::kRadix ? "Radix" : "Hash (murmur)",
                method == HashMethod::kRadix ? "a" : "b", fanout, n);
    std::printf("%-10s | CDF: #partitions with ≤ k·avg tuples (avg=%.0f)\n",
                "dist", avg);
    std::printf("%-10s |", "");
    for (double p : points) std::printf(" %7.1fx", p);
    std::printf("  %9s %9s\n", "max", "empty");
    for (KeyDistribution dist : dists) {
      auto rel = GenerateRawRelation(n, dist, 7);
      if (!rel.ok()) return 1;
      auto hist = Histogram(*rel, method, fanout);
      std::printf("%-10s |", KeyDistributionName(dist));
      for (double p : points) {
        uint64_t limit = static_cast<uint64_t>(p * avg);
        size_t count = 0;
        for (uint64_t h : hist) count += (h <= limit);
        std::printf(" %8zu", count);
      }
      uint64_t max = *std::max_element(hist.begin(), hist.end());
      size_t empty = 0;
      for (uint64_t h : hist) empty += (h == 0);
      std::printf("  %9llu %9zu\n", static_cast<unsigned long long>(max),
                  empty);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): radix is balanced only for linear/random; "
      "grid distributions\ncollapse onto few partitions. Murmur hashing is "
      "balanced for all four.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
