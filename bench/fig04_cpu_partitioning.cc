// Figure 4: CPU partitioning throughput (8 B tuples, 8192 partitions) for
// 1–10 threads, radix partitioning on the four key distributions vs
// murmur hash partitioning.
//
// Host columns are measured on this machine (a single-core host serializes
// the thread sweep); the "Xeon-10" column is the calibrated model of the
// paper's machine, which carries the figure's shape: hash partitioning
// starts ~2x slower but both saturate at the same memory bound.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cpu/partitioner.h"
#include "datagen/workloads.h"
#include "model/cpu_model.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("fig04_cpu_partitioning", "Figure 4");
  const uint32_t fanout = 8192;
  const size_t n = static_cast<size_t>(128e6 * BenchScale() / 8.0);
  const size_t threads[] = {1, 2, 4, 8, 10};
  const size_t host_max = BenchMaxThreads();

  const KeyDistribution dists[] = {
      KeyDistribution::kLinear, KeyDistribution::kRandom,
      KeyDistribution::kGrid, KeyDistribution::kReverseGrid};

  std::printf("Measured on host (Mtuples/s), n=%zu:\n", n);
  std::printf("%8s", "threads");
  for (KeyDistribution d : dists) std::printf(" %14s", KeyDistributionName(d));
  // The last column re-runs kRandom radix with the fused-SIMD fast path
  // off — the PR-1 scalar two-pass baseline — so the fig04 table doubles
  // as the ablation for DESIGN.md "CPU fast paths".
  std::printf(" %14s %14s\n", "hash(all)", "radix-scalar");
  for (size_t t : threads) {
    if (t > host_max) continue;
    std::printf("%8zu", t);
    for (KeyDistribution d : dists) {
      auto rel = GenerateRawRelation(n, d, 7);
      if (!rel.ok()) return 1;
      CpuPartitionerConfig config;
      config.fanout = fanout;
      config.hash = HashMethod::kRadix;
      config.num_threads = t;
      auto run = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f", run.ok() ? run->mtuples_per_sec : -1.0);
    }
    {
      auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
      CpuPartitionerConfig config;
      config.fanout = fanout;
      config.hash = HashMethod::kMurmur;
      config.num_threads = t;
      auto run = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f", run.ok() ? run->mtuples_per_sec : -1.0);
      config.hash = HashMethod::kRadix;
      config.use_simd = false;
      auto scalar = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f\n",
                  scalar.ok() ? scalar->mtuples_per_sec : -1.0);
    }
  }

  std::printf("\nCalibrated Xeon E5-2680 v2 model (Mtuples/s), the Figure 4 "
              "shape:\n");
  std::printf("%8s %14s %14s\n", "threads", "radix", "hash");
  for (size_t t : threads) {
    std::printf("%8zu %14.0f %14.0f\n", t,
                CpuCostModel::PartitionRateTuplesPerSec(t,
                                                        HashMethod::kRadix) /
                    1e6,
                CpuCostModel::PartitionRateTuplesPerSec(t,
                                                        HashMethod::kMurmur) /
                    1e6);
  }
  std::printf("\nExpected shape (paper): radix delivers the same throughput "
              "for every distribution;\nhash partitioning is slower at few "
              "threads and catches up once memory bound.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
