// Figure 4: CPU partitioning throughput (8 B tuples, 8192 partitions) for
// 1–10 threads, radix partitioning on the four key distributions vs
// murmur hash partitioning.
//
// Host columns are measured on this machine (a single-core host serializes
// the thread sweep); the "Xeon-10" column is the calibrated model of the
// paper's machine, which carries the figure's shape: hash partitioning
// starts ~2x slower but both saturate at the same memory bound.
//
// `--json [n]` emits the fpart.obs.v1 thread-scaling sweep instead: for
// every thread count, one row per affinity setting (`affinity_none` = OS
// placement vs `affinity_<policy>` = pinned workers), each with the phase
// split and — when perf events are available — the `hw.*` cache/TLB
// counter deltas of that run. See docs/observability.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "cpu/partitioner.h"
#include "datagen/workloads.h"
#include "model/cpu_model.h"
#include "obs/report.h"

namespace fpart {
namespace {

/// The "affinity on" policy of the sweep: FPART_AFFINITY when it names a
/// real policy, otherwise numa-local on multi-node hosts and compact on
/// single-node ones (where compact-vs-none is the measurable effect).
AffinityPolicy OnPolicy() {
  const AffinityPolicy env = AffinityPolicyFromEnv();
  if (env != AffinityPolicy::kNone) return env;
  return Topology::Host().num_nodes() > 1 ? AffinityPolicy::kNumaLocal
                                          : AffinityPolicy::kCompact;
}

int JsonMain(size_t n) {
  const uint32_t fanout = 8192;
  const size_t host_max = BenchMaxThreads();
  const AffinityPolicy on = OnPolicy();

  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) {
    std::fprintf(stderr, "datagen failed\n");
    return 1;
  }

  obs::BenchReport report("fig04_cpu_partitioning");
  report.ConfigUInt("n_tuples", n);
  report.ConfigUInt("fanout", fanout);
  report.ConfigStr("hash", "radix");
  report.ConfigStr("tuple", "Tuple8");
  report.ConfigStr("affinity", AffinityPolicyName(on));
  report.ConfigUInt("max_threads", host_max);
  report.ConfigUInt("num_nodes", Topology::Host().num_nodes());
  report.ConfigStr("hw_counters",
                   obs::HwCountersSupported() ? "available" : "unavailable");

  for (size_t t : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{10}}) {
    if (t > host_max) continue;
    for (const AffinityPolicy policy : {AffinityPolicy::kNone, on}) {
      CpuPartitionerConfig config;
      config.fanout = fanout;
      config.hash = HashMethod::kRadix;
      config.num_threads = t;
      config.affinity = policy;
      // Best-of-3 to filter scheduler noise; hw deltas accumulate over
      // every run of the row (misses per tuple stay comparable because
      // each row runs the same tuple count).
      constexpr int kRuns = 3;
      const bench::HwUsage hw_before = bench::HwUsage::Now();
      double best = -1.0, best_hist = 0.0, best_scatter = 0.0;
      for (int r = 0; r < kRuns; ++r) {
        auto run = CpuPartition(config, rel->data(), rel->size());
        if (!run.ok()) {
          std::fprintf(stderr, "partition run failed: %s\n",
                       run.status().ToString().c_str());
          return 1;
        }
        if (best < 0 || run->seconds < best) {
          best = run->seconds;
          best_hist = run->histogram_seconds;
          best_scatter = run->scatter_seconds;
        }
      }
      auto fields = bench::HwUsage::Now().FieldsSince(hw_before);
      // Normalize the accumulated counters to one run's worth.
      for (auto& [key, value] : fields) value /= kRuns;
      fields.emplace_back("seconds", best);
      fields.emplace_back("mtuples_per_sec", best > 0 ? n / best / 1e6 : 0.0);
      fields.emplace_back("histogram_seconds", best_hist);
      fields.emplace_back("scatter_seconds", best_scatter);
      char row[64];
      std::snprintf(row, sizeof(row), "radix_t%zu_affinity_%s", t,
                    AffinityPolicyName(policy));
      report.Result(row, fields);
    }
  }
  report.Print();
  return 0;
}

int Run() {
  bench::Banner("fig04_cpu_partitioning", "Figure 4");
  const uint32_t fanout = 8192;
  const size_t n = static_cast<size_t>(128e6 * BenchScale() / 8.0);
  const size_t threads[] = {1, 2, 4, 8, 10};
  const size_t host_max = BenchMaxThreads();

  const KeyDistribution dists[] = {
      KeyDistribution::kLinear, KeyDistribution::kRandom,
      KeyDistribution::kGrid, KeyDistribution::kReverseGrid};

  std::printf("Measured on host (Mtuples/s), n=%zu:\n", n);
  std::printf("%8s", "threads");
  for (KeyDistribution d : dists) std::printf(" %14s", KeyDistributionName(d));
  // The last column re-runs kRandom radix with the fused-SIMD fast path
  // off — the PR-1 scalar two-pass baseline — so the fig04 table doubles
  // as the ablation for DESIGN.md "CPU fast paths".
  std::printf(" %14s %14s\n", "hash(all)", "radix-scalar");
  for (size_t t : threads) {
    if (t > host_max) continue;
    std::printf("%8zu", t);
    for (KeyDistribution d : dists) {
      auto rel = GenerateRawRelation(n, d, 7);
      if (!rel.ok()) return 1;
      CpuPartitionerConfig config;
      config.fanout = fanout;
      config.hash = HashMethod::kRadix;
      config.num_threads = t;
      auto run = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f", run.ok() ? run->mtuples_per_sec : -1.0);
    }
    {
      auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
      CpuPartitionerConfig config;
      config.fanout = fanout;
      config.hash = HashMethod::kMurmur;
      config.num_threads = t;
      auto run = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f", run.ok() ? run->mtuples_per_sec : -1.0);
      config.hash = HashMethod::kRadix;
      config.use_simd = false;
      auto scalar = CpuPartition(config, rel->data(), rel->size());
      std::printf(" %14.0f\n",
                  scalar.ok() ? scalar->mtuples_per_sec : -1.0);
    }
  }

  std::printf("\nCalibrated Xeon E5-2680 v2 model (Mtuples/s), the Figure 4 "
              "shape:\n");
  std::printf("%8s %14s %14s\n", "threads", "radix", "hash");
  for (size_t t : threads) {
    std::printf("%8zu %14.0f %14.0f\n", t,
                CpuCostModel::PartitionRateTuplesPerSec(t,
                                                        HashMethod::kRadix) /
                    1e6,
                CpuCostModel::PartitionRateTuplesPerSec(t,
                                                        HashMethod::kMurmur) /
                    1e6);
  }
  std::printf("\nExpected shape (paper): radix delivers the same throughput "
              "for every distribution;\nhash partitioning is slower at few "
              "threads and catches up once memory bound.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      size_t n = 16'000'000;
      if (i + 1 < argc) n = std::strtoull(argv[i + 1], nullptr, 10);
      if (n == 0) n = 16'000'000;
      return fpart::JsonMain(n);
    }
  }
  return fpart::Run();
}
