// Ablation (Section 4.2): the value of write combining. Without it, every
// tuple read-modify-writes its destination cache line ((64+64)·T bytes);
// with it, writes shrink to 64·T/K bytes — a 16x reduction of the shuffle
// traffic for 8 B tuples. We report the analytic traffic, the simulated
// circuit's actual traffic (including flush padding), and the resulting
// throughput bound on the QPI link.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/relation.h"
#include "fpga/partitioner.h"
#include "qpi/bandwidth_model.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ablation_write_combiner", "Section 4.2 (16x traffic claim)");
  const size_t n = static_cast<size_t>(16e6 * BenchScale());
  const uint32_t fanout = 8192;

  auto rel = Relation<Tuple8>::Allocate(n);
  if (!rel.ok()) return 1;
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    (*rel)[i] = Tuple8{rng.Next32() & 0x7fffffffu, static_cast<uint32_t>(i)};
  }
  FpgaPartitionerConfig config;
  config.fanout = fanout;
  config.output_mode = OutputMode::kPad;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel->data(), n);
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  const double in_gb = static_cast<double>(n) * 8 / 1e9;
  const double wc_write_gb = run->stats.output_lines * 64.0 / 1e9;
  const double nowc_write_gb = static_cast<double>(n) * (64 + 64) / 1e9;

  std::printf("n = %zu 8 B tuples, %u partitions\n\n", n, fanout);
  std::printf("%-34s %10.3f GB\n", "input scan (both designs)", in_gb);
  std::printf("%-34s %10.3f GB  (ideal 64·T/8 = %.3f GB)\n",
              "shuffle traffic WITH combiner", wc_write_gb, in_gb);
  std::printf("%-34s %10.3f GB\n", "shuffle traffic WITHOUT combiner",
              nowc_write_gb);
  std::printf("%-34s %10.1fx\n", "write-traffic reduction",
              nowc_write_gb / wc_write_gb);
  std::printf("%-34s %10.2f %%\n", "flush padding overhead",
              (wc_write_gb - in_gb) / in_gb * 100.0);

  // Throughput bound on the QPI link in both designs.
  const double with_rate = run->mtuples_per_sec;
  // Without combining: 8 B read + 64 B fetch + 64 B write per tuple; the
  // fetch/write mix is random, i.e. the unfavourable end of Figure 2.
  const double bpt = 8.0 + 64.0 + 64.0;
  const double read_fraction = (8.0 + 64.0) / bpt;
  const double nowc_rate =
      MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone,
                         read_fraction) *
      1e9 / bpt / 1e6;
  std::printf("\n%-34s %10.0f Mtuples/s (simulated)\n",
              "throughput WITH combiner", with_rate);
  std::printf("%-34s %10.0f Mtuples/s (bandwidth bound)\n",
              "throughput WITHOUT combiner", nowc_rate);
  std::printf("%-34s %10.1fx\n", "speedup from write combining",
              with_rate / nowc_rate);
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
