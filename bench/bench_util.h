// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"

namespace fpart {
namespace bench {

/// Print the standard experiment banner with the active scale factor.
inline void Banner(const char* experiment, const char* paper_ref) {
  std::printf("=== %s — reproduces %s ===\n", experiment, paper_ref);
  std::printf("(FPART_SCALE=%.4g of paper size; FPART_THREADS up to %zu)\n\n",
              BenchScale(), BenchMaxThreads());
}

/// Relative deviation in percent (measured vs paper), for the
/// paper-vs-measured columns.
inline double DeltaPct(double measured, double paper) {
  return paper != 0 ? (measured - paper) / paper * 100.0 : 0.0;
}

/// \brief Snapshot of the cumulative `hw.<phase>.*` registry counters that
/// HwPhaseScope accumulates, so a bench can attribute counter deltas to a
/// single run. When hardware counters are unsupported (no PMU, CI
/// container, FPART_HW_COUNTERS=0) FieldsSince returns an empty list and
/// the `hw.*` columns are simply absent from the report.
struct HwUsage {
  static constexpr const char* kPhases[] = {"histogram", "scatter"};
  static constexpr size_t kNumPhases = 2;
  uint64_t v[kNumPhases][obs::kNumHwEvents] = {};

  static HwUsage Now() {
    HwUsage u;
    if (!obs::HwCountersSupported()) return u;
    for (size_t p = 0; p < kNumPhases; ++p) {
      for (size_t e = 0; e < obs::kNumHwEvents; ++e) {
        u.v[p][e] = obs::HwPhaseCounter(kPhases[p], e)->Value();
      }
    }
    return u;
  }

  /// Accumulate the counter movement of one interval into this snapshot
  /// (for benches interleaving runs of different variants, so each
  /// variant only sums its own intervals).
  void AddDelta(const HwUsage& before, const HwUsage& after) {
    for (size_t p = 0; p < kNumPhases; ++p) {
      for (size_t e = 0; e < obs::kNumHwEvents; ++e) {
        v[p][e] += after.v[p][e] - before.v[p][e];
      }
    }
  }

  /// "hw.<phase>.<event>" delta fields accumulated since `before`.
  std::vector<std::pair<std::string, double>> FieldsSince(
      const HwUsage& before) const {
    std::vector<std::pair<std::string, double>> fields;
    if (!obs::HwCountersSupported()) return fields;
    for (size_t p = 0; p < kNumPhases; ++p) {
      for (size_t e = 0; e < obs::kNumHwEvents; ++e) {
        fields.emplace_back(
            std::string("hw.") + kPhases[p] + "." + obs::kHwEventNames[e],
            static_cast<double>(v[p][e] - before.v[p][e]));
      }
    }
    return fields;
  }
};

}  // namespace bench
}  // namespace fpart
