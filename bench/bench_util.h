// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "common/env.h"

namespace fpart {
namespace bench {

/// Print the standard experiment banner with the active scale factor.
inline void Banner(const char* experiment, const char* paper_ref) {
  std::printf("=== %s — reproduces %s ===\n", experiment, paper_ref);
  std::printf("(FPART_SCALE=%.4g of paper size; FPART_THREADS up to %zu)\n\n",
              BenchScale(), BenchMaxThreads());
}

/// Relative deviation in percent (measured vs paper), for the
/// paper-vs-measured columns.
inline double DeltaPct(double measured, double paper) {
  return paper != 0 ? (measured - paper) / paper * 100.0 : 0.0;
}

}  // namespace bench
}  // namespace fpart
