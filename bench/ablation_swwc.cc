// Ablation (Section 3.1): software-managed write-combining buffers on the
// CPU — Code 1 (direct scatter) vs Code 2 (cache-resident buffers) vs
// Code 2 with non-temporal streaming stores, across fan-outs.
#include <cstdio>

#include "bench/bench_util.h"
#include "cpu/partitioner.h"
#include "datagen/workloads.h"

namespace fpart {
namespace {

double Throughput(const Relation<Tuple8>& rel, uint32_t fanout,
                  bool use_buffers, bool non_temporal,
                  bool use_simd = true) {
  CpuPartitionerConfig config;
  config.fanout = fanout;
  config.hash = HashMethod::kRadix;
  config.num_threads = 1;
  config.use_buffers = use_buffers;
  config.non_temporal = non_temporal;
  config.use_simd = use_simd;
  // Best of three runs, as partitioning microbenchmarks usually report.
  double best = 0;
  for (int i = 0; i < 3; ++i) {
    auto run = CpuPartition(config, rel.data(), rel.size());
    if (run.ok() && run->mtuples_per_sec > best) best = run->mtuples_per_sec;
  }
  return best;
}

int Run() {
  bench::Banner("ablation_swwc", "Section 3.1 (Code 1 vs Code 2 vs NT)");
  const size_t n = static_cast<size_t>(32e6 * BenchScale() / 8.0);
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, 7);
  if (!rel.ok()) return 1;

  std::printf("single-threaded radix partitioning of %zu tuples "
              "(Mtuples/s):\n\n", n);
  std::printf("%8s | %14s %14s %14s %14s\n", "fanout", "naive (Code 1)",
              "buffers(Code 2)", "buffers + NT", "NT, scalar");
  for (uint32_t fanout : {64u, 512u, 1024u, 4096u, 8192u}) {
    std::printf("%8u | %14.0f %14.0f %14.0f %14.0f\n", fanout,
                Throughput(*rel, fanout, false, false),
                Throughput(*rel, fanout, true, false),
                Throughput(*rel, fanout, true, true),
                Throughput(*rel, fanout, true, true, false));
  }
  std::printf(
      "\nExpected shape: the naive scatter collapses at high fan-out "
      "(one TLB/cache\nmiss per tuple); software-managed buffers keep "
      "single-pass partitioning fast,\nand non-temporal stores add a "
      "further margin by avoiding read-for-ownership.\nThe last column "
      "disables the fused single-hash SIMD path (use_simd=false),\n"
      "the PR-1 two-pass scalar baseline of DESIGN.md \"CPU fast "
      "paths\".\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
