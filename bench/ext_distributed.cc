// Extension (Section 6 / Barthels et al. [6,7]): scaling the hybrid join
// out over an RDMA fabric — the FPGA partitioner on every node splits its
// slice by destination, the fabric shuffles, nodes join locally. Sweeps
// the node count and the link bandwidth.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_distributed", "Section 6 (RDMA-distributed join)");
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) return 1;
  std::printf("workload A, |R| = |S| = %zu, FDR fabric (6.8 GB/s/link)\n\n",
              input->r.size());
  std::printf("%6s | %10s %10s %10s %10s | %11s\n", "nodes", "part (s)",
              "shuffle", "local join", "total", "Mtuples/s");
  for (size_t nodes : {1, 2, 4, 8, 16}) {
    DistributedJoinConfig config;
    config.num_nodes = nodes;
    config.local_fanout = 8192 / static_cast<uint32_t>(nodes);
    config.threads_per_node = 1;
    auto result = DistributedJoin(config, input->r, input->s);
    if (!result.ok()) {
      std::printf("%6zu | %s\n", nodes, result.status().ToString().c_str());
      continue;
    }
    std::printf("%6zu | %10.3f %10.3f %10.3f %10.3f | %11.0f\n", nodes,
                result->partition_seconds, result->shuffle_seconds,
                result->local_join_seconds, result->total_seconds,
                result->mtuples_per_sec);
    if (result->matches != input->s.size()) std::printf("  !! mismatch\n");
  }

  std::printf("\nslower fabric (1 GB/s links):\n");
  for (size_t nodes : {2, 8}) {
    DistributedJoinConfig config;
    config.num_nodes = nodes;
    config.local_fanout = 1024;
    config.network.link_gbs = 1.0;
    auto result = DistributedJoin(config, input->r, input->s);
    if (result.ok()) {
      std::printf("%6zu | shuffle %.3fs, total %.3fs\n", nodes,
                  result->shuffle_seconds, result->total_seconds);
    }
  }
  std::printf(
      "\nExpected shape ([6,7]): every phase shrinks with the node count "
      "under strong\nscaling — per-node slices get smaller — but the "
      "shuffle shrinks slower than\nthe compute phases (each node still "
      "ships (nodes-1)/nodes of its slice), so\nspeed-up bends away from "
      "linear as the fabric share grows; a slower fabric\nbends it "
      "earlier.\n");

  // The same scale-out story through the cluster service API
  // (dist/cluster.h): instead of the analytic one-shot model above, a
  // stream of partition jobs is shard-routed across N federated service
  // nodes and replayed on the virtual clock. The closed-loop version of
  // this experiment — Poisson arrivals, hot keys, migration on/off — is
  // bench/ext_cluster (scripts/bench_cluster.sh, docs/distributed.md);
  // this section is the minimal bridge from the legacy sweep.
  std::printf("\nvia the cluster service API (dist/cluster.h):\n");
  const size_t job_tuples =
      std::max<size_t>(4096, static_cast<size_t>(65536 * scale));
  auto table =
      GenerateRawRelation(job_tuples, KeyDistribution::kRandom, 11);
  if (!table.ok()) return 1;
  const uint64_t cluster_jobs = 32;
  std::printf("%6s | %12s %12s | %11s\n", "nodes", "makespan (s)",
              "remote share", "Mtuples/s");
  for (size_t nodes : {1, 2, 4}) {
    dist::ClusterConfig cc;
    cc.nodes = nodes;
    cc.node.deterministic = true;
    cc.node.num_workers = 1;
    cc.node.queue_capacity = cluster_jobs;
    dist::Cluster cluster(cc);
    bool ok = true;
    std::vector<dist::ClusterSubmission> subs;
    subs.reserve(cluster_jobs);
    for (uint64_t i = 0; i < cluster_jobs; ++i) {
      svc::PartitionJobSpec spec;
      spec.input = &*table;
      spec.request.fanout = 2048;
      spec.request.hash = HashMethod::kMurmur;
      spec.request.output_mode = OutputMode::kHist;
      svc::JobOptions jopts;
      jopts.arrival_seq = i;
      auto sub = cluster.Submit(/*shard_key=*/i, /*origin_node=*/i % nodes,
                                spec, jopts);
      if (!sub.ok()) {
        std::printf("%6zu | submit failed: %s\n", nodes,
                    sub.status().ToString().c_str());
        ok = false;
        break;
      }
      subs.push_back(std::move(sub).ValueUnsafe());
    }
    cluster.Shutdown();
    if (!ok) continue;
    uint64_t remote = 0;
    for (const auto& sub : subs) {
      if (sub.handle.Wait().state != svc::JobState::kCompleted) ok = false;
      if (sub.remote) ++remote;
    }
    if (!ok) {
      std::printf("%6zu | job failed\n", nodes);
      continue;
    }
    const double makespan = cluster.virtual_makespan_seconds();
    const double tuples =
        static_cast<double>(cluster_jobs) * table->size();
    std::printf("%6zu | %12.4f %12.2f | %11.0f\n", nodes, makespan,
                static_cast<double>(remote) / cluster_jobs,
                makespan > 0 ? tuples / makespan / 1e6 : 0.0);
  }
  std::printf(
      "\nThe virtual makespan shrinks near-linearly with the node count "
      "(each node\nbrings its own workers and device pool); the remote "
      "share is the price of\nhash routing from a random origin — "
      "(nodes-1)/nodes of submissions pay one\nfabric hop.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
