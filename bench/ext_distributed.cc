// Extension (Section 6 / Barthels et al. [6,7]): scaling the hybrid join
// out over an RDMA fabric — the FPGA partitioner on every node splits its
// slice by destination, the fabric shuffles, nodes join locally. Sweeps
// the node count and the link bandwidth.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_distributed", "Section 6 (RDMA-distributed join)");
  const double scale = BenchScale() / 8.0;
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), 7);
  if (!input.ok()) return 1;
  std::printf("workload A, |R| = |S| = %zu, FDR fabric (6.8 GB/s/link)\n\n",
              input->r.size());
  std::printf("%6s | %10s %10s %10s %10s | %11s\n", "nodes", "part (s)",
              "shuffle", "local join", "total", "Mtuples/s");
  for (size_t nodes : {1, 2, 4, 8, 16}) {
    DistributedJoinConfig config;
    config.num_nodes = nodes;
    config.local_fanout = 8192 / static_cast<uint32_t>(nodes);
    config.threads_per_node = 1;
    auto result = DistributedJoin(config, input->r, input->s);
    if (!result.ok()) {
      std::printf("%6zu | %s\n", nodes, result.status().ToString().c_str());
      continue;
    }
    std::printf("%6zu | %10.3f %10.3f %10.3f %10.3f | %11.0f\n", nodes,
                result->partition_seconds, result->shuffle_seconds,
                result->local_join_seconds, result->total_seconds,
                result->mtuples_per_sec);
    if (result->matches != input->s.size()) std::printf("  !! mismatch\n");
  }

  std::printf("\nslower fabric (1 GB/s links):\n");
  for (size_t nodes : {2, 8}) {
    DistributedJoinConfig config;
    config.num_nodes = nodes;
    config.local_fanout = 1024;
    config.network.link_gbs = 1.0;
    auto result = DistributedJoin(config, input->r, input->s);
    if (result.ok()) {
      std::printf("%6zu | shuffle %.3fs, total %.3fs\n", nodes,
                  result->shuffle_seconds, result->total_seconds);
    }
  }
  std::printf(
      "\nExpected shape ([6,7]): every phase shrinks with the node count "
      "under strong\nscaling — per-node slices get smaller — but the "
      "shuffle shrinks slower than\nthe compute phases (each node still "
      "ships (nodes-1)/nodes of its slice), so\nspeed-up bends away from "
      "linear as the fabric share grows; a slower fabric\nbends it "
      "earlier.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
