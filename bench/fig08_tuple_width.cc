// Figure 8: simulated partitioner throughput in tuples/s and total data
// processed in GB/s for 8/16/32/64 B tuples (HIST/RID mode, 8192
// partitions), with the Section 4.6 model predictions.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "datagen/relation.h"
#include "fpga/partitioner.h"
#include "model/cost_model.h"

namespace fpart {
namespace {

template <typename T>
void RunWidth(size_t bytes_budget) {
  const size_t n = bytes_budget / sizeof(T);
  auto rel = Relation<T>::Allocate(n);
  if (!rel.ok()) return;
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) {
    T t{};
    TupleTraits<T>::SetKey(&t, rng.Next() & 0x7fffffffu);
    SetPayloadId(&t, i);
    (*rel)[i] = t;
  }
  FpgaPartitionerConfig config;
  config.fanout = 8192;
  config.output_mode = OutputMode::kHist;
  FpgaPartitioner<T> part(config);
  auto run = part.Partition(rel->data(), n);
  if (!run.ok()) {
    std::printf("%9zu B  | run failed: %s\n", sizeof(T),
                run.status().ToString().c_str());
    return;
  }
  // Total data processed: r=2 reads plus one write per tuple byte.
  const double gbs = 3.0 * n * sizeof(T) / run->seconds / 1e9;
  FpgaCostModel model(sizeof(T), config.fanout);
  const double predicted =
      model.TotalRateTuplesPerSec(n, config.output_mode, config.layout,
                                  config.link) /
      1e6;
  std::printf("%9zu B  | %12.1f %12.1f | %10.2f | %8.0f\n", sizeof(T),
              run->mtuples_per_sec, predicted, gbs,
              run->stats.cycles / 1e3);
}

int Run() {
  bench::Banner("fig08_tuple_width", "Figure 8 (HIST/RID)");
  const size_t bytes = static_cast<size_t>(1e9 * BenchScale() / 8.0);
  std::printf("%-12s | %12s %12s | %10s | %8s\n", "tuple width",
              "Mtuples/s", "model Mt/s", "GB/s", "kcycles");
  RunWidth<Tuple8>(bytes);
  RunWidth<Tuple16>(bytes);
  RunWidth<Tuple32>(bytes);
  RunWidth<Tuple64>(bytes);
  std::printf(
      "\nExpected shape (paper): tuples/s halves with each width doubling "
      "while the\ntotal GB/s stays flat (~7 GB/s at r=2) — the circuit "
      "consumes and produces\ncache lines at the same, bandwidth-bound "
      "rate regardless of tuple width.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
