// Figure 2: memory throughput available to the CPU and QPI throughput
// available to the FPGA as a function of the sequential-read to
// random-write mix, alone and under mutual interference.
//
// The platform curves are the calibrated model (the Xeon+FPGA machine is
// unavailable); a host microbenchmark measures the same mix sweep on this
// machine's memory system for reference.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "qpi/bandwidth_model.h"

namespace fpart {
namespace {

// Host: stream `read_lines` sequential cache lines and scatter
// `write_lines` random cache lines over a buffer; returns GB/s.
double HostMixGBs(double read_share, size_t total_mb) {
  const size_t lines = total_mb * (1 << 20) / kCacheLineSize;
  const size_t read_lines = static_cast<size_t>(lines * read_share);
  const size_t write_lines = lines - read_lines;
  auto src = AlignedBuffer::Allocate(lines * kCacheLineSize);
  auto dst = AlignedBuffer::Allocate(lines * kCacheLineSize);
  if (!src.ok() || !dst.ok()) return 0.0;
  // Touch once to fault pages in.
  volatile uint64_t sink = 0;
  auto* s64 = src->data_as<uint64_t>();
  auto* d64 = dst->mutable_data_as<uint64_t>();
  Rng rng(7);

  Timer timer;
  uint64_t acc = 0;
  for (size_t i = 0; i < read_lines; ++i) {
    // One 64 B line = 8 sequential loads.
    const uint64_t* line = s64 + i * 8;
    for (int w = 0; w < 8; ++w) acc += line[w];
  }
  for (size_t i = 0; i < write_lines; ++i) {
    uint64_t* line = d64 + rng.Below(lines) * 8;
    for (int w = 0; w < 8; ++w) line[w] = acc + w;
  }
  double seconds = timer.Seconds();
  sink = acc;
  (void)sink;
  return lines * kCacheLineSize / seconds / 1e9;
}

int Run() {
  bench::Banner("fig02_bandwidth", "Figure 2");
  const size_t mb = static_cast<size_t>(256 * BenchScale());

  std::printf("%-10s %12s %12s %12s %12s %14s\n", "read/write",
              "CPU alone", "FPGA alone", "CPU interf.", "FPGA interf.",
              "host measured");
  std::printf("%-10s %12s %12s %12s %12s %14s\n", "(mix)", "GB/s (model)",
              "GB/s (model)", "GB/s (model)", "GB/s (model)", "GB/s");
  for (int i = 10; i >= 0; --i) {
    double f = i / 10.0;
    std::printf("%4.1f/%-4.1f  %12.2f %12.2f %12.2f %12.2f %14.2f\n", f,
                1.0 - f,
                MemoryBandwidthGBs(MemoryAgent::kCpu, Interference::kAlone, f),
                MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone,
                                   f),
                MemoryBandwidthGBs(MemoryAgent::kCpu,
                                   Interference::kInterfered, f),
                MemoryBandwidthGBs(MemoryAgent::kFpga,
                                   Interference::kInterfered, f),
                HostMixGBs(f, mb));
  }
  std::printf(
      "\nCalibration anchors (Section 4.8): B(r=2)=%.2f  B(r=1)=%.2f  "
      "B(r=0.5)=%.2f GB/s\n",
      QpiBandwidthForRatio(2.0), QpiBandwidthForRatio(1.0),
      QpiBandwidthForRatio(0.5));
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
