// Closed-loop driver of the cluster layer (docs/distributed.md): N client
// threads submit a Poisson stream of partitioning jobs (plus an optional
// join mix) against a federation of --nodes partitioning-service nodes
// behind one shard map. Every job carries a Zipf-skewed shard key
// (--zipf), so a hot key concentrates load on one bucket — the workload
// hot-bucket migration (--migration on) exists to spread.
//
// `--json` emits one fpart.obs.v1 document with p50/p95/p99 latencies
// (virtual-clock in the default deterministic mode: network hop + queue
// wait + modeled service time, noise-free on a 1-core host), the
// remote-submission share and shipped bytes, the migration/epoch account,
// per-node job counts and virtual makespans, and a cluster-wide
// determinism hash over (job index, key, bucket, owner, epoch, backend,
// checksum). In deterministic mode the hash is bit-identical across runs
// for fixed flags no matter how client threads interleave — including
// runs that migrate buckets mid-stream, because rebalance points are
// count-driven. The driver exits non-zero if any job is lost, failed, or
// stamped with a route that disagrees with the migration log
// (owner != OwnerAt(bucket, epoch)).
//
// Flags (both `--flag N` and `--flag=N` spellings):
//   --jobs N            total jobs to replay          (default 4000)
//   --clients N         submitting client threads     (default 4)
//   --nodes N           service nodes in the cluster  (default 2)
//   --workers N         worker threads per node       (default 2)
//   --fpga_devices N    simulated FPGA devices/node   (default 1)
//   --buckets N         logical shard buckets         (default 64)
//   --keys N            shard-key universe size       (default 4096)
//   --zipf Z            shard-key skew                (default 1.0)
//   --seed N            workload seed                 (default 42)
//   --rate R            Poisson arrival rate, jobs/s  (default 5000)
//   --queue N           per-node admission bound (0 = auto: jobs when
//                       deterministic, 256 otherwise)
//   --deterministic B   1 = virtual-time replay (default), 0 = live
//   --migration M       on|off|1|0: hot-bucket rebalancing (default off)
//   --rebalance-every K rebalance scan cadence in routed jobs
//                       (default 512)
//   --top-k K           max buckets migrated per scan (default 4)
//   --join-every K      every K-th job is an equi-join (0 = off,
//                       default 64)
//   --policy P          adaptive|cpu|fpga|round-robin (default adaptive)
//   --sim_mode M        reference|fast|analytical     (default fast)
//   --sim_cache B       1 = memoize device run results (default 0)
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "dist/cluster.h"
#include "obs/report.h"
#include "svc/scheduler.h"

namespace fpart {
namespace {

struct Options {
  uint64_t jobs = 4000;
  size_t clients = 4;
  size_t nodes = 2;
  size_t workers = 2;
  size_t fpga_devices = 1;
  size_t buckets = 64;
  uint64_t keys = 4096;
  double zipf = 1.0;
  uint64_t seed = 42;
  double rate = 5000.0;
  size_t queue = 0;
  bool deterministic = true;
  bool migration = false;
  uint64_t rebalance_every = 512;
  size_t top_k = 4;
  uint64_t join_every = 64;
  svc::PlacementPolicy policy = svc::PlacementPolicy::kAdaptive;
  SimMode sim_mode = SimMode::kFast;
  bool sim_cache = false;
};

// The eight job size classes (tuples), scaled by FPART_SCALE — same shape
// as ext_service: many small requests, few huge ones.
std::vector<size_t> SizeClasses() {
  const double scale = BenchScale();
  std::vector<size_t> classes;
  for (size_t base = 4096; base <= 524288; base *= 2) {
    classes.push_back(
        std::max<size_t>(512, static_cast<size_t>(base * scale)));
  }
  return classes;
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

int Run(const Options& opt) {
  const std::vector<size_t> classes = SizeClasses();

  // Resident tables: one relation per size class, plus a unique-key pair
  // per class for the join jobs.
  std::vector<Relation<Tuple8>> tables;
  std::vector<Relation<Tuple8>> join_r, join_s;
  for (size_t c = 0; c < classes.size(); ++c) {
    auto rel = GenerateRawRelation(classes[c], KeyDistribution::kRandom,
                                   opt.seed + c);
    if (!rel.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n",
                   rel.status().ToString().c_str());
      return 1;
    }
    tables.push_back(std::move(rel).ValueUnsafe());
    if (opt.join_every > 0) {
      auto r = GenerateUniqueRelation(classes[c], KeyDistribution::kRandom,
                                      opt.seed + 100 + c);
      auto s = GenerateUniqueRelation(classes[c], KeyDistribution::kRandom,
                                      opt.seed + 100 + c);
      if (!r.ok() || !s.ok()) {
        std::fprintf(stderr, "join datagen failed\n");
        return 1;
      }
      join_r.push_back(std::move(r).ValueUnsafe());
      join_s.push_back(std::move(s).ValueUnsafe());
    }
  }

  // Precomputed workload: per-job size class, shard key, origin node and
  // Poisson arrival time — all derived only from --seed, so every replay
  // sees the same stream. Shard keys are Zipf ranks (rank 1 hottest).
  std::vector<size_t> job_class(opt.jobs);
  std::vector<uint64_t> job_key(opt.jobs);
  std::vector<size_t> job_origin(opt.jobs);
  std::vector<double> arrival(opt.jobs);
  {
    ZipfSampler size_zipf(classes.size(), 0.9, opt.seed);
    ZipfSampler key_zipf(opt.keys, opt.zipf, opt.seed ^ 0x5eedULL);
    Rng rng(opt.seed ^ 0xa5a5a5a5ULL);
    double t = 0.0;
    for (uint64_t i = 0; i < opt.jobs; ++i) {
      job_class[i] = static_cast<size_t>(size_zipf.Next() - 1);
      job_key[i] = key_zipf.Next();
      job_origin[i] = static_cast<size_t>(i % opt.nodes);
      double u = rng.NextDouble();
      if (u <= 0.0) u = 1e-12;
      t += -std::log(u) / opt.rate;
      arrival[i] = t;
    }
  }

  dist::ClusterConfig config;
  config.nodes = opt.nodes;
  config.shard_buckets = opt.buckets;
  config.migration = opt.migration;
  config.rebalance_every = opt.rebalance_every;
  config.rebalance_top_k = opt.top_k;
  config.node.deterministic = opt.deterministic;
  config.node.num_workers = opt.workers;
  config.node.fpga_devices = opt.fpga_devices;
  config.node.policy = opt.policy;
  config.node.queue_capacity =
      opt.queue > 0 ? opt.queue : (opt.deterministic ? opt.jobs : 256);
  config.node.sim_mode = opt.sim_mode;
  config.node.sim_cache = opt.sim_cache;
  dist::Cluster cluster(config);

  // One submission slot per job, each written by exactly one client
  // thread.
  std::vector<dist::ClusterSubmission> subs(opt.jobs);
  std::vector<uint8_t> submitted(opt.jobs, 0);
  std::vector<uint8_t> shed(opt.jobs, 0);

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  for (size_t c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      for (uint64_t i = c; i < opt.jobs; i += opt.clients) {
        if (!opt.deterministic) {
          std::this_thread::sleep_until(
              wall0 + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(arrival[i])));
        }
        svc::JobOptions jopts;
        jopts.arrival_seq = i;  // cluster-wide sequence
        jopts.virtual_arrival_seconds = arrival[i];
        Result<dist::ClusterSubmission> sub =
            [&]() -> Result<dist::ClusterSubmission> {
          if (opt.join_every > 0 && (i + 1) % opt.join_every == 0) {
            svc::JoinJobSpec join;
            join.r = &join_r[job_class[i]];
            join.s = &join_s[job_class[i]];
            join.fanout = 2048;
            return cluster.Submit(job_key[i], job_origin[i], join, jopts);
          }
          svc::PartitionJobSpec spec;
          spec.input = &tables[job_class[i]];
          spec.request.fanout = 2048;
          spec.request.hash = HashMethod::kMurmur;
          spec.request.output_mode = OutputMode::kHist;
          spec.request.sim_mode = opt.sim_mode;
          spec.request.sim_cache = opt.sim_cache;
          return cluster.Submit(job_key[i], job_origin[i], spec, jopts);
        }();
        if (sub.ok()) {
          subs[i] = std::move(sub).ValueUnsafe();
          submitted[i] = 1;
        } else if (sub.status().IsCapacityError()) {
          shed[i] = 1;
        } else {
          std::fprintf(stderr, "submit %llu failed: %s\n",
                       static_cast<unsigned long long>(i),
                       sub.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  cluster.Shutdown();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // Account every job exactly once, audit every stamped route against the
  // migration log, and fold the determinism hash.
  uint64_t completed = 0, failed = 0, cancelled = 0, shed_count = 0,
           lost = 0, epoch_violations = 0, remote_jobs = 0;
  std::vector<double> latencies, remote_hops;
  latencies.reserve(opt.jobs);
  uint64_t determinism_hash = 0xcbf29ce484222325ULL;
  for (uint64_t i = 0; i < opt.jobs; ++i) {
    if (shed[i] != 0) {
      ++shed_count;
      continue;
    }
    if (submitted[i] == 0 || !subs[i].handle.valid()) {
      ++lost;
      continue;
    }
    const dist::ShardRoute& route = subs[i].route;
    if (cluster.shard_map().OwnerAt(route.bucket, route.epoch) !=
        route.owner) {
      ++epoch_violations;
    }
    auto outcome = subs[i].handle.TryGet();
    if (!outcome.has_value()) {
      ++lost;
      continue;
    }
    switch (outcome->state) {
      case svc::JobState::kCompleted:
        ++completed;
        break;
      case svc::JobState::kFailed:
        ++failed;
        std::fprintf(stderr, "job %llu failed: %s\n",
                     static_cast<unsigned long long>(i),
                     outcome->status.ToString().c_str());
        break;
      case svc::JobState::kCancelled:
        ++cancelled;
        break;
      case svc::JobState::kShed:
        ++shed_count;
        continue;
      default:
        ++lost;
        continue;
    }
    if (subs[i].remote) {
      ++remote_jobs;
      remote_hops.push_back(subs[i].hop_seconds);
    }
    // Latency from arrival at the *origin* node: the network hop plus
    // queue wait plus service time — on the virtual clock when replaying
    // (noise-free), on the wall clock live.
    const double latency =
        subs[i].hop_seconds +
        (opt.deterministic
             ? outcome->virtual_queue_seconds + outcome->virtual_run_seconds
             : outcome->queue_seconds + outcome->run_seconds);
    latencies.push_back(latency);
    determinism_hash = Fnv1a(determinism_hash, i);
    determinism_hash = Fnv1a(determinism_hash, job_key[i]);
    determinism_hash = Fnv1a(determinism_hash, route.bucket);
    determinism_hash = Fnv1a(determinism_hash, route.owner);
    determinism_hash = Fnv1a(determinism_hash, route.epoch);
    determinism_hash =
        Fnv1a(determinism_hash, static_cast<uint64_t>(outcome->backend));
    determinism_hash = Fnv1a(determinism_hash, outcome->checksum);
  }

  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (latencies.size() - 1));
    return latencies[idx] * 1e6;
  };
  double mean_us = 0.0;
  for (double l : latencies) mean_us += l;
  mean_us = latencies.empty() ? 0.0 : mean_us / latencies.size() * 1e6;
  double mean_hop_us = 0.0;
  for (double h : remote_hops) mean_hop_us += h;
  mean_hop_us =
      remote_hops.empty() ? 0.0 : mean_hop_us / remote_hops.size() * 1e6;

  obs::BenchReport report("ext_cluster");
  report.ConfigUInt("jobs", opt.jobs);
  report.ConfigUInt("clients", opt.clients);
  report.ConfigUInt("nodes", opt.nodes);
  report.ConfigUInt("workers_per_node", opt.workers);
  report.ConfigUInt("fpga_devices_per_node", opt.fpga_devices);
  report.ConfigUInt("buckets", opt.buckets);
  report.ConfigUInt("keys", opt.keys);
  report.ConfigDouble("zipf", opt.zipf);
  report.ConfigUInt("seed", opt.seed);
  report.ConfigDouble("rate_jobs_per_sec", opt.rate);
  report.ConfigUInt("queue_capacity", config.node.queue_capacity);
  report.ConfigUInt("deterministic", opt.deterministic ? 1 : 0);
  report.ConfigUInt("migration", opt.migration ? 1 : 0);
  report.ConfigUInt("rebalance_every", opt.rebalance_every);
  report.ConfigUInt("rebalance_top_k", opt.top_k);
  report.ConfigUInt("join_every", opt.join_every);
  report.ConfigStr("policy", svc::PlacementPolicyName(opt.policy));
  report.ConfigStr("sim_mode", SimModeName(opt.sim_mode));
  report.ConfigUInt("sim_cache", opt.sim_cache ? 1 : 0);
  report.ConfigDouble("link_gbs", config.network.link_gbs);
  report.ConfigDouble("scale", BenchScale());
  report.Result("latency", {{"p50_us", pct(0.50)},
                            {"p95_us", pct(0.95)},
                            {"p99_us", pct(0.99)},
                            {"mean_us", mean_us}});
  report.Result(
      "remote",
      {{"submitted", static_cast<double>(cluster.remote_submitted())},
       {"completed", static_cast<double>(cluster.remote_completed())},
       {"bytes", static_cast<double>(cluster.remote_bytes())},
       {"share", opt.jobs > 0 ? static_cast<double>(remote_jobs) /
                                    static_cast<double>(opt.jobs)
                              : 0.0},
       {"mean_hop_us", mean_hop_us}});
  report.Result(
      "migration",
      {{"migrations", static_cast<double>(cluster.migrations())},
       {"rebalances", static_cast<double>(cluster.rebalances())},
       {"epoch", static_cast<double>(cluster.shard_map().epoch())},
       {"load_imbalance", cluster.load_imbalance()}});
  for (size_t n = 0; n < cluster.num_nodes(); ++n) {
    report.Result(
        "node_" + std::to_string(n),
        {{"jobs", static_cast<double>(cluster.node_jobs(n))},
         {"remote_jobs", static_cast<double>(cluster.node_remote_jobs(n))},
         {"load", cluster.node_load(n)},
         {"virtual_makespan_seconds",
          cluster.node_virtual_makespan_seconds(n)}});
  }
  report.Result("jobs_accounted",
                {{"completed", static_cast<double>(completed)},
                 {"failed", static_cast<double>(failed)},
                 {"cancelled", static_cast<double>(cancelled)},
                 {"shed", static_cast<double>(shed_count)},
                 {"lost", static_cast<double>(lost)},
                 {"epoch_violations",
                  static_cast<double>(epoch_violations)}});
  report.ResultDouble("wall_seconds", wall_seconds);
  report.ResultDouble("jobs_per_sec",
                      wall_seconds > 0 ? opt.jobs / wall_seconds : 0.0);
  if (opt.deterministic) {
    // Model-time throughput: the cluster makespan is the latest node's
    // virtual clock — it shrinks as --nodes grows even when all the
    // simulated nodes are squeezed onto one host core.
    const double makespan = cluster.virtual_makespan_seconds();
    report.ResultDouble("virtual_makespan_seconds", makespan);
    report.ResultDouble("virtual_jobs_per_sec",
                        makespan > 0 ? opt.jobs / makespan : 0.0);
  }
  report.ResultUInt("determinism_hash", determinism_hash);
  report.Print();

  const uint64_t accounted = completed + failed + cancelled + shed_count;
  if (lost != 0 || accounted != opt.jobs) {
    std::fprintf(stderr,
                 "job accounting broken: %llu accounted of %llu (%llu "
                 "lost)\n",
                 static_cast<unsigned long long>(accounted),
                 static_cast<unsigned long long>(opt.jobs),
                 static_cast<unsigned long long>(lost));
    return 1;
  }
  if (epoch_violations != 0) {
    std::fprintf(stderr,
                 "epoch audit failed: %llu routes disagree with the "
                 "migration log\n",
                 static_cast<unsigned long long>(epoch_violations));
    return 1;
  }
  if (failed != 0) return 1;
  return 0;
}

// Accept both "--flag value" and "--flag=value".
bool ParseFlag(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, len) != 0) return false;
  if (argv[*i][len] == '=') {
    *value = argv[*i] + len + 1;
    return true;
  }
  if (argv[*i][len] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  fpart::Options opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (fpart::ParseFlag(argc, argv, &i, "--jobs", &v)) {
      opt.jobs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--clients", &v)) {
      opt.clients = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--nodes", &v)) {
      opt.nodes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--workers", &v)) {
      opt.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--fpga_devices", &v)) {
      opt.fpga_devices = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--buckets", &v)) {
      opt.buckets = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--keys", &v)) {
      opt.keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--zipf", &v)) {
      opt.zipf = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--rate", &v)) {
      opt.rate = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--queue", &v)) {
      opt.queue = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--deterministic", &v)) {
      opt.deterministic = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--migration", &v)) {
      if (v == "on" || v == "1") {
        opt.migration = true;
      } else if (v == "off" || v == "0") {
        opt.migration = false;
      } else {
        std::fprintf(stderr, "--migration must be on|off|1|0\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--rebalance-every", &v)) {
      opt.rebalance_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--top-k", &v)) {
      opt.top_k = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--join-every", &v)) {
      opt.join_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--policy", &v)) {
      if (v == "adaptive") {
        opt.policy = fpart::svc::PlacementPolicy::kAdaptive;
      } else if (v == "cpu") {
        opt.policy = fpart::svc::PlacementPolicy::kCpuOnly;
      } else if (v == "fpga") {
        opt.policy = fpart::svc::PlacementPolicy::kFpgaOnly;
      } else if (v == "round-robin") {
        opt.policy = fpart::svc::PlacementPolicy::kRoundRobin;
      } else {
        std::fprintf(stderr,
                     "--policy must be adaptive|cpu|fpga|round-robin\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_mode", &v)) {
      if (!fpart::ParseSimMode(v, &opt.sim_mode)) {
        std::fprintf(stderr,
                     "--sim_mode must be reference|fast|analytical\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_cache", &v)) {
      opt.sim_cache = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.jobs == 0 || opt.clients == 0) {
    std::fprintf(stderr, "--jobs and --clients must be positive\n");
    return 2;
  }
  if (opt.nodes == 0) opt.nodes = 1;
  if (opt.keys == 0) opt.keys = 1;
  if (opt.rate <= 0) opt.rate = 5000.0;
  (void)json;  // the report is always JSON; --json kept for script parity
  return fpart::Run(opt);
}
