// Closed-loop driver of the svc runtime (docs/architecture.md, svc layer):
// N client threads submit a Poisson stream of partitioning jobs (sizes
// drawn Zipf-style from eight classes, small jobs most frequent, plus an
// optional join mix) against one Scheduler arbitrating a pool of
// simulated FPGA devices.
//
// Every job carries a priority class (interactive/batch/best-effort,
// assigned deterministically from --seed); live-mode dispatch splits
// service by weighted fair queueing over --classes weights.
//
// `--json` emits one fpart.obs.v1 document with exact p50/p95/p99 wall
// latencies (overall and per priority class), the per-backend placement
// mix, the per-device grant/busy utilization mix, the virtual-clock
// makespan/throughput (deterministic mode — the model-time numbers that
// scale with --fpga_devices regardless of host core count), and a
// determinism hash over (job index, class, backend, checksum). In the default
// deterministic mode the hash is bit-identical across runs for a fixed
// --seed and --fpga_devices no matter how the client threads interleave;
// the driver exits non-zero if any job is lost, duplicated, or failed.
//
// Flags (both `--flag N` and `--flag=N` spellings):
//   --jobs N           total jobs to replay        (default 10000)
//   --clients N        submitting client threads   (default 8)
//   --workers N        scheduler worker threads    (default 4)
//   --fpga_devices N   simulated FPGA devices      (default 1)
//   --classes W,W,W    WFQ weights interactive,batch,besteffort
//                      (default 8,3,1)
//   --seed N           workload seed               (default 42)
//   --rate R           Poisson arrival rate, jobs/s (default 5000)
//   --queue N          admission queue bound (0 = auto: jobs when
//                      deterministic, 256 otherwise)
//   --deterministic B  1 = virtual-time replay (default), 0 = live wall
//                      clock with real arrival sleeps and shedding
//   --join-every K     every K-th job is an equi-join (0 = off, default 64)
//   --policy P         adaptive|cpu|fpga|round-robin (default adaptive);
//                      `fpga` pins every job to the device pool — the
//                      device-bound load that shows pool throughput
//                      scaling with --fpga_devices
//   --sim_mode M       reference|fast|analytical simulator backend for
//                      every device run (default fast)
//   --sim_cache B      1 = memoize device run results keyed by
//                      config+input digest (default 0)
//   --sim_cache_warmup B  1 = pre-run every distinct device-run shape in
//                      the job mix once before the timed window, so the
//                      measured throughput sees a hot sim cache instead
//                      of the cold first-run cost per shape (requires
//                      --sim_cache 1; default 0)
//   --xcheck F         analytical only: fraction of device runs
//                      re-executed on the fast engine to cross-check
//                      outputs and predicted cycles (default 0)
//   --affinity P       none|compact|scatter|numa-local worker pinning
//                      (default: FPART_AFFINITY or none). Pinning changes
//                      only where threads run — the deterministic replay
//                      hash is unaffected.
//   --admission B      1 = SLO-aware admission control (svc/admission.h):
//                      jobs predicted to miss their class SLO are rejected
//                      with SloError instead of queued (default 0)
//   --slo I,B,E        per-class latency SLO seconds
//                      interactive,batch,besteffort; 0 disables that
//                      class's SLO (default 0.5,2,8; only applied with
//                      --admission 1)
//   --autoscale B      1 = live mode only: a monitor thread polls the
//                      svc.slo.pressure signal and applies its recommended
//                      worker delta via SetActiveWorkers (default 0)
//   --max_workers N    autoscaling headroom: worker threads created but
//                      parked beyond --workers (0 = no headroom)
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/topology.h"
#include "core/engine.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "join/hybrid_join.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "svc/scheduler.h"

namespace fpart {
namespace {

struct Options {
  uint64_t jobs = 10000;
  size_t clients = 8;
  size_t workers = 4;
  size_t fpga_devices = 1;
  std::array<double, svc::kNumJobClasses> class_weights =
      svc::kDefaultClassWeights;
  uint64_t seed = 42;
  double rate = 5000.0;
  size_t queue = 0;
  bool deterministic = true;
  uint64_t join_every = 64;
  svc::PlacementPolicy policy = svc::PlacementPolicy::kAdaptive;
  SimMode sim_mode = SimMode::kFast;
  bool sim_cache = false;
  bool sim_cache_warmup = false;
  double xcheck = 0.0;
  AffinityPolicy affinity = AffinityPolicyFromEnv();
  bool admission = false;
  std::array<double, svc::kNumJobClasses> slo_seconds = {0.5, 2.0, 8.0};
  bool autoscale = false;
  size_t max_workers = 0;
};

// Deterministic per-job priority class: a service sees a few interactive
// tenants, a broad batch tier, and a best-effort tail.
svc::JobClass DrawClass(Rng* rng) {
  const double u = rng->NextDouble();
  if (u < 0.25) return svc::JobClass::kInteractive;
  if (u < 0.65) return svc::JobClass::kBatch;
  return svc::JobClass::kBestEffort;
}

// The eight job size classes (tuples), scaled by FPART_SCALE. Zipf rank 1
// maps to the smallest class: a service sees many small requests and few
// huge ones.
std::vector<size_t> SizeClasses() {
  const double scale = BenchScale();
  std::vector<size_t> classes;
  for (size_t base = 4096; base <= 524288; base *= 2) {
    classes.push_back(
        std::max<size_t>(512, static_cast<size_t>(base * scale)));
  }
  return classes;
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

int Run(const Options& opt) {
  const std::vector<size_t> classes = SizeClasses();

  // Resident tables: one relation per size class, plus a unique-key pair
  // per class for the join jobs (every S key matches).
  std::vector<Relation<Tuple8>> tables;
  std::vector<Relation<Tuple8>> join_r, join_s;
  for (size_t c = 0; c < classes.size(); ++c) {
    auto rel = GenerateRawRelation(classes[c], KeyDistribution::kRandom,
                                   opt.seed + c);
    if (!rel.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n",
                   rel.status().ToString().c_str());
      return 1;
    }
    tables.push_back(std::move(rel).ValueUnsafe());
    if (opt.join_every > 0) {
      // Same seed for both sides: identical key sets, so every S tuple
      // matches and the join checksum is a strong cross-backend signal.
      auto r = GenerateUniqueRelation(classes[c], KeyDistribution::kRandom,
                                      opt.seed + 100 + c);
      auto s = GenerateUniqueRelation(classes[c], KeyDistribution::kRandom,
                                      opt.seed + 100 + c);
      if (!r.ok() || !s.ok()) {
        std::fprintf(stderr, "join datagen failed\n");
        return 1;
      }
      join_r.push_back(std::move(r).ValueUnsafe());
      join_s.push_back(std::move(s).ValueUnsafe());
    }
  }

  // Precomputed workload: per-job size class, priority class and Poisson
  // arrival time. All derive only from --seed, so every replay sees the
  // same stream.
  std::vector<size_t> job_class(opt.jobs);
  std::vector<svc::JobClass> job_prio(opt.jobs);
  std::vector<double> arrival(opt.jobs);
  {
    ZipfSampler zipf(classes.size(), 0.9, opt.seed);
    Rng rng(opt.seed ^ 0xa5a5a5a5ULL);
    Rng prio_rng(opt.seed ^ 0xc1a55e5ULL);
    double t = 0.0;
    for (uint64_t i = 0; i < opt.jobs; ++i) {
      job_class[i] = static_cast<size_t>(zipf.Next() - 1);
      job_prio[i] = DrawClass(&prio_rng);
      double u = rng.NextDouble();
      if (u <= 0.0) u = 1e-12;
      t += -std::log(u) / opt.rate;  // exponential inter-arrival
      arrival[i] = t;
    }
  }

  // Optional sim-cache warmup: run every distinct device-run shape in the
  // job mix once, outside the timed window. The cache key is a digest of
  // (config knobs, input bytes), so the warmup must rebuild the exact
  // request shapes the scheduler's device paths use — a partition job's
  // PartitionRequest and a hybrid join's FpgaPartitionerConfig per side.
  uint64_t warmup_runs = 0;
  double warmup_seconds = 0.0;
  if (opt.sim_cache_warmup && opt.sim_cache) {
    const auto warm0 = std::chrono::steady_clock::now();
    std::vector<uint8_t> part_seen(classes.size(), 0);
    std::vector<uint8_t> join_seen(classes.size(), 0);
    for (uint64_t i = 0; i < opt.jobs; ++i) {
      const bool is_join =
          opt.join_every > 0 && (i + 1) % opt.join_every == 0;
      (is_join ? join_seen : part_seen)[job_class[i]] = 1;
    }
    for (size_t c = 0; c < classes.size(); ++c) {
      if (part_seen[c] != 0) {
        PartitionRequest req;  // mirrors Scheduler::RunPartitionJob (FPGA)
        req.engine = Engine::kFpgaSim;
        req.fanout = 2048;
        req.hash = HashMethod::kMurmur;
        req.output_mode = OutputMode::kHist;
        req.sim_mode = opt.sim_mode;
        req.sim_cache = opt.sim_cache;
        req.xcheck = opt.xcheck;
        auto r = RunPartition<Tuple8>(req, tables[c]);
        if (!r.ok()) {
          std::fprintf(stderr, "warmup partition failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        ++warmup_runs;
      }
      if (join_seen[c] != 0 && opt.join_every > 0) {
        FpgaPartitionerConfig fpga;  // mirrors Scheduler::RunJoinJob
        fpga.fanout = 2048;
        fpga.hash = HashMethod::kMurmur;
        fpga.output_mode = OutputMode::kHist;
        fpga.layout = LayoutMode::kRid;
        fpga.link = LinkKind::kXeonFpga;
        fpga.sim_mode = opt.sim_mode;
        fpga.sim_cache = opt.sim_cache;
        fpga.xcheck = opt.xcheck;
        for (const Relation<Tuple8>* side : {&join_r[c], &join_s[c]}) {
          auto r = internal::HybridPartition(fpga, *side);
          if (!r.ok()) {
            std::fprintf(stderr, "warmup join failed: %s\n",
                         r.status().ToString().c_str());
            return 1;
          }
          ++warmup_runs;
        }
      }
    }
    warmup_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      warm0)
            .count();
  }

  svc::SchedulerConfig config;
  config.deterministic = opt.deterministic;
  config.num_workers = opt.workers;
  config.fpga_devices = opt.fpga_devices;
  config.class_weights = opt.class_weights;
  config.policy = opt.policy;
  config.queue_capacity =
      opt.queue > 0 ? opt.queue : (opt.deterministic ? opt.jobs : 256);
  config.sim_mode = opt.sim_mode;
  config.sim_cache = opt.sim_cache;
  config.xcheck = opt.xcheck;
  config.affinity = opt.affinity;
  config.name = "svc";
  config.slo.enabled = opt.admission;
  if (opt.admission) config.slo.class_slo_seconds = opt.slo_seconds;
  config.max_workers = opt.max_workers;
  svc::Scheduler scheduler(config);

  // One handle slot per job, each written by exactly one client thread.
  std::vector<svc::JobHandle> handles(opt.jobs);
  std::vector<uint8_t> shed(opt.jobs, 0);
  // Live-mode SLO rejections surface synchronously at Submit; deterministic
  // mode delivers them as kRejected outcomes instead.
  std::vector<uint8_t> slo_rejected(opt.jobs, 0);

  // Autoscaling monitor (live mode): poll the pressure signal and apply
  // its recommended worker delta. This is the closed loop the
  // svc.slo.recommended_worker_delta gauge exists for.
  std::atomic<bool> autoscale_stop{false};
  std::atomic<uint64_t> autoscale_events{0};
  std::thread autoscaler;
  const bool autoscale_on = opt.autoscale && !opt.deterministic;
  if (autoscale_on) {
    autoscaler = std::thread([&] {
      while (!autoscale_stop.load(std::memory_order_acquire)) {
        const auto p = scheduler.slo_pressure();
        if (p.worker_delta != 0) {
          const size_t now = scheduler.active_workers();
          const long long want =
              static_cast<long long>(now) + p.worker_delta;
          if (want >= 1 &&
              scheduler.SetActiveWorkers(static_cast<size_t>(want)) &&
              scheduler.active_workers() != now) {
            autoscale_events.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  for (size_t c = 0; c < opt.clients; ++c) {
    clients.emplace_back([&, c] {
      for (uint64_t i = c; i < opt.jobs; i += opt.clients) {
        if (!opt.deterministic) {
          // Live mode: honour the Poisson arrival times for real.
          std::this_thread::sleep_until(
              wall0 + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(arrival[i])));
        }
        svc::JobOptions jopts;
        jopts.arrival_seq = i;
        jopts.virtual_arrival_seconds = arrival[i];
        jopts.job_class = job_prio[i];
        Result<svc::JobHandle> handle = [&]() -> Result<svc::JobHandle> {
          if (opt.join_every > 0 && (i + 1) % opt.join_every == 0) {
            svc::JoinJobSpec join;
            join.r = &join_r[job_class[i]];
            join.s = &join_s[job_class[i]];
            join.fanout = 2048;
            return scheduler.Submit(join, jopts);
          }
          svc::PartitionJobSpec spec;
          spec.input = &tables[job_class[i]];
          spec.request.fanout = 2048;
          spec.request.hash = HashMethod::kMurmur;
          spec.request.output_mode = OutputMode::kHist;
          spec.request.sim_mode = opt.sim_mode;
          spec.request.sim_cache = opt.sim_cache;
          spec.request.xcheck = opt.xcheck;
          return scheduler.Submit(spec, jopts);
        }();
        if (handle.ok()) {
          handles[i] = std::move(handle).ValueUnsafe();
        } else if (handle.status().IsCapacityError()) {
          shed[i] = 1;  // live-mode backpressure
        } else if (handle.status().IsSloError()) {
          slo_rejected[i] = 1;  // live-mode admission rejection
        } else {
          std::fprintf(stderr, "submit %llu failed: %s\n",
                       static_cast<unsigned long long>(i),
                       handle.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  if (autoscale_on) {
    autoscale_stop.store(true, std::memory_order_release);
    autoscaler.join();
  }
  scheduler.Shutdown();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // Account every job exactly once; a slot that is neither shed nor done
  // is a lost job (and a hard failure of the run).
  uint64_t completed = 0, failed = 0, cancelled = 0, shed_count = 0,
           lost = 0, rejected_count = 0, missed_after_admit = 0;
  uint64_t placed_cpu = 0, placed_fpga = 0, placed_hybrid = 0;
  std::vector<double> latencies;
  latencies.reserve(opt.jobs);
  std::array<std::vector<double>, svc::kNumJobClasses> class_latencies;
  // The latency the SLO is judged on: the virtual (model-clock) latency in
  // deterministic mode — the quantity the admission prediction is exact
  // for — and the wall latency in live mode.
  std::array<std::vector<double>, svc::kNumJobClasses> class_slo_lat;
  std::array<uint64_t, svc::kNumJobClasses> class_within_slo{};
  uint64_t determinism_hash = 0xcbf29ce484222325ULL;
  for (uint64_t i = 0; i < opt.jobs; ++i) {
    if (shed[i] != 0) {
      ++shed_count;
      continue;
    }
    if (slo_rejected[i] != 0) {
      ++rejected_count;
      continue;
    }
    if (!handles[i].valid()) {
      ++lost;
      continue;
    }
    auto outcome = handles[i].TryGet();
    if (!outcome.has_value()) {
      ++lost;  // still "running" after drain: the scheduler lost it
      continue;
    }
    switch (outcome->state) {
      case svc::JobState::kCompleted:
        ++completed;
        break;
      case svc::JobState::kFailed:
        ++failed;
        std::fprintf(stderr, "job %llu failed: %s\n",
                     static_cast<unsigned long long>(i),
                     outcome->status.ToString().c_str());
        break;
      case svc::JobState::kCancelled:
        ++cancelled;
        break;
      case svc::JobState::kShed:
        ++shed_count;
        continue;
      case svc::JobState::kRejected:
        // Rejected jobs never fold into the determinism hash — which is
        // exactly why the hash is admission-policy-invariant whenever the
        // controller rejects nothing (the low-load CI gate).
        ++rejected_count;
        continue;
      default:
        ++lost;
        continue;
    }
    switch (outcome->backend) {
      case svc::Backend::kCpu:
        ++placed_cpu;
        break;
      case svc::Backend::kFpga:
        ++placed_fpga;
        break;
      case svc::Backend::kHybrid:
        ++placed_hybrid;
        break;
    }
    const double latency = outcome->queue_seconds + outcome->run_seconds;
    const size_t prio = static_cast<size_t>(job_prio[i]);
    latencies.push_back(latency);
    class_latencies[prio].push_back(latency);
    if (opt.admission && outcome->state == svc::JobState::kCompleted) {
      const double slo_latency =
          opt.deterministic ? outcome->virtual_queue_seconds +
                                  outcome->virtual_run_seconds
                            : latency;
      class_slo_lat[prio].push_back(slo_latency);
      const double slo = opt.slo_seconds[prio];
      if (slo <= 0.0 || slo_latency <= slo) ++class_within_slo[prio];
      if (outcome->admit_budget_seconds > 0.0 &&
          slo_latency > outcome->admit_budget_seconds) {
        ++missed_after_admit;
      }
    }
    determinism_hash = Fnv1a(determinism_hash, i);
    determinism_hash = Fnv1a(
        determinism_hash, static_cast<uint64_t>(job_prio[i]));
    determinism_hash = Fnv1a(
        determinism_hash, static_cast<uint64_t>(outcome->backend));
    determinism_hash = Fnv1a(determinism_hash, outcome->checksum);
  }

  auto pct_of = [](std::vector<double>& v, double p) {
    if (v.empty()) return 0.0;
    size_t idx = static_cast<size_t>(p * (v.size() - 1));
    return v[idx] * 1e6;
  };
  std::sort(latencies.begin(), latencies.end());
  for (auto& v : class_latencies) std::sort(v.begin(), v.end());
  auto pct = [&](double p) { return pct_of(latencies, p); };
  double mean_us = 0.0;
  for (double l : latencies) mean_us += l;
  mean_us = latencies.empty() ? 0.0 : mean_us / latencies.size() * 1e6;

  obs::BenchReport report("ext_service");
  report.ConfigUInt("jobs", opt.jobs);
  report.ConfigUInt("clients", opt.clients);
  report.ConfigUInt("workers", opt.workers);
  report.ConfigUInt("fpga_devices", opt.fpga_devices);
  {
    std::string w;
    for (size_t c = 0; c < svc::kNumJobClasses; ++c) {
      if (c > 0) w += ",";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", opt.class_weights[c]);
      w += buf;
    }
    report.ConfigStr("class_weights", w);
  }
  report.ConfigUInt("seed", opt.seed);
  report.ConfigDouble("rate_jobs_per_sec", opt.rate);
  report.ConfigUInt("queue_capacity", config.queue_capacity);
  report.ConfigUInt("deterministic", opt.deterministic ? 1 : 0);
  report.ConfigUInt("join_every", opt.join_every);
  report.ConfigStr("policy",
                   svc::PlacementPolicyName(config.policy));
  report.ConfigStr("sim_mode", SimModeName(opt.sim_mode));
  report.ConfigUInt("sim_cache", opt.sim_cache ? 1 : 0);
  report.ConfigUInt("sim_cache_warmup",
                    (opt.sim_cache_warmup && opt.sim_cache) ? 1 : 0);
  report.ConfigDouble("xcheck", opt.xcheck);
  report.ConfigStr("affinity", AffinityPolicyName(opt.affinity));
  report.ConfigUInt("admission", opt.admission ? 1 : 0);
  {
    std::string s;
    for (size_t c = 0; c < svc::kNumJobClasses; ++c) {
      if (c > 0) s += ",";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", opt.slo_seconds[c]);
      s += buf;
    }
    report.ConfigStr("slo_seconds", s);
  }
  report.ConfigUInt("autoscale", autoscale_on ? 1 : 0);
  report.ConfigUInt("max_workers", scheduler.config().max_workers);
  report.ConfigDouble("scale", BenchScale());
  report.Result("latency", {{"p50_us", pct(0.50)},
                            {"p95_us", pct(0.95)},
                            {"p99_us", pct(0.99)},
                            {"mean_us", mean_us}});
  report.Result("placement",
                {{"cpu", static_cast<double>(placed_cpu)},
                 {"fpga", static_cast<double>(placed_fpga)},
                 {"hybrid", static_cast<double>(placed_hybrid)}});
  // Per priority class: tail latencies plus the observed WFQ service
  // shares. contended_share is measured only while every class had
  // backlog — the window over which the ±5% weight guarantee holds.
  {
    double weight_sum = 0.0, served_sum = 0.0, contended_sum = 0.0;
    for (size_t c = 0; c < svc::kNumJobClasses; ++c) {
      const auto cls = static_cast<svc::JobClass>(c);
      weight_sum += opt.class_weights[c];
      served_sum += scheduler.class_served_cost(cls);
      contended_sum += scheduler.class_contended_cost(cls);
    }
    for (size_t c = 0; c < svc::kNumJobClasses; ++c) {
      const auto cls = static_cast<svc::JobClass>(c);
      auto& v = class_latencies[c];
      const std::string name =
          std::string("class_") + svc::JobClassName(cls);
      report.Result(
          name,
          {{"count", static_cast<double>(v.size())},
           {"p50_us", pct_of(v, 0.50)},
           {"p95_us", pct_of(v, 0.95)},
           {"p99_us", pct_of(v, 0.99)},
           {"weight_share", opt.class_weights[c] / weight_sum},
           {"served_share",
            served_sum > 0 ? scheduler.class_served_cost(cls) / served_sum
                           : 0.0},
           {"contended_share",
            contended_sum > 0
                ? scheduler.class_contended_cost(cls) / contended_sum
                : 0.0}});
      if (opt.admission) {
        auto& sv = class_slo_lat[c];
        std::sort(sv.begin(), sv.end());
        const double done = static_cast<double>(sv.size());
        report.Result(
            std::string("slo_") + svc::JobClassName(cls),
            {{"slo_us", opt.slo_seconds[c] * 1e6},
             {"completed", done},
             {"within_slo", static_cast<double>(class_within_slo[c])},
             {"attainment",
              done > 0 ? static_cast<double>(class_within_slo[c]) / done
                       : 1.0},
             {"p99_us", pct_of(sv, 0.99)},
             {"rejected",
              static_cast<double>(scheduler.admission().rejected(cls))}});
      }
    }
  }
  // Per-device utilization mix of the FPGA pool.
  {
    const svc::DevicePool& pool = scheduler.device_pool();
    auto& reg = obs::Registry::Global();
    double busy_sum = 0.0;
    std::vector<double> busy(pool.num_devices());
    for (size_t i = 0; i < pool.num_devices(); ++i) {
      busy[i] = static_cast<double>(
          reg.GetCounter("svc.device." + std::to_string(i) + ".busy_us")
              ->Value());
      busy_sum += busy[i];
    }
    for (size_t i = 0; i < pool.num_devices(); ++i) {
      report.Result(
          "device_" + std::to_string(i),
          {{"grants", static_cast<double>(pool.device_grants(i))},
           {"busy_us", busy[i]},
           {"util_share", busy_sum > 0 ? busy[i] / busy_sum : 0.0}});
    }
  }
  report.Result("jobs_accounted",
                {{"completed", static_cast<double>(completed)},
                 {"failed", static_cast<double>(failed)},
                 {"cancelled", static_cast<double>(cancelled)},
                 {"shed", static_cast<double>(shed_count)},
                 {"rejected", static_cast<double>(rejected_count)},
                 {"lost", static_cast<double>(lost)}});
  if (opt.admission) {
    const svc::AdmissionController& adm = scheduler.admission();
    report.Result(
        "admission",
        {{"considered", static_cast<double>(adm.considered())},
         {"admitted", static_cast<double>(adm.admitted())},
         {"rejected", static_cast<double>(rejected_count)},
         {"rejected_slo", static_cast<double>(adm.rejected_slo())},
         {"rejected_deadline", static_cast<double>(adm.rejected_deadline())},
         {"missed_after_admit", static_cast<double>(missed_after_admit)}});
  }
  if (autoscale_on) {
    report.Result(
        "autoscale",
        {{"events", static_cast<double>(
              autoscale_events.load(std::memory_order_relaxed))},
         {"final_workers",
          static_cast<double>(scheduler.active_workers())}});
  }
  if (opt.sim_cache_warmup && opt.sim_cache) {
    report.Result("warmup",
                  {{"runs", static_cast<double>(warmup_runs)},
                   {"seconds", warmup_seconds}});
  }
  report.ResultDouble("wall_seconds", wall_seconds);
  report.ResultDouble("jobs_per_sec",
                      wall_seconds > 0 ? opt.jobs / wall_seconds : 0.0);
  if (opt.deterministic) {
    // Model-time throughput: the virtual makespan is what a real device
    // pool would deliver — it shrinks with --fpga_devices even when the
    // simulator itself is squeezed onto a single host core.
    const double makespan = scheduler.virtual_makespan_seconds();
    report.ResultDouble("virtual_makespan_seconds", makespan);
    report.ResultDouble("virtual_jobs_per_sec",
                        makespan > 0 ? opt.jobs / makespan : 0.0);
  }
  report.ResultUInt("determinism_hash", determinism_hash);
  report.Print();

  const uint64_t accounted =
      completed + failed + cancelled + shed_count + rejected_count;
  if (lost != 0 || accounted != opt.jobs) {
    std::fprintf(stderr,
                 "job accounting broken: %llu accounted of %llu (%llu lost)\n",
                 static_cast<unsigned long long>(accounted),
                 static_cast<unsigned long long>(opt.jobs),
                 static_cast<unsigned long long>(lost));
    return 1;
  }
  if (failed != 0) return 1;
  if (opt.admission && opt.deterministic && missed_after_admit != 0) {
    // In deterministic mode the admission prediction equals the virtual
    // latency exactly, so an admitted-then-missed job is a scheduler bug.
    std::fprintf(stderr,
                 "%llu admitted jobs missed their budget in deterministic "
                 "mode (must be 0)\n",
                 static_cast<unsigned long long>(missed_after_admit));
    return 1;
  }
  return 0;
}

// Accept both "--flag value" and "--flag=value".
bool ParseFlag(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, len) != 0) return false;
  if (argv[*i][len] == '=') {
    *value = argv[*i] + len + 1;
    return true;
  }
  if (argv[*i][len] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  fpart::Options opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (fpart::ParseFlag(argc, argv, &i, "--jobs", &v)) {
      opt.jobs = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--clients", &v)) {
      opt.clients = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--workers", &v)) {
      opt.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--fpga_devices", &v)) {
      opt.fpga_devices = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--classes", &v)) {
      char* cursor = v.data();
      for (size_t c = 0; c < fpart::svc::kNumJobClasses; ++c) {
        opt.class_weights[c] = std::strtod(cursor, &cursor);
        if (*cursor == ',') ++cursor;
        if (opt.class_weights[c] <= 0.0) {
          std::fprintf(stderr, "--classes needs 3 positive weights\n");
          return 2;
        }
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--rate", &v)) {
      opt.rate = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--queue", &v)) {
      opt.queue = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--deterministic", &v)) {
      opt.deterministic = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--join-every", &v)) {
      opt.join_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--policy", &v)) {
      if (v == "adaptive") {
        opt.policy = fpart::svc::PlacementPolicy::kAdaptive;
      } else if (v == "cpu") {
        opt.policy = fpart::svc::PlacementPolicy::kCpuOnly;
      } else if (v == "fpga") {
        opt.policy = fpart::svc::PlacementPolicy::kFpgaOnly;
      } else if (v == "round-robin") {
        opt.policy = fpart::svc::PlacementPolicy::kRoundRobin;
      } else {
        std::fprintf(stderr,
                     "--policy must be adaptive|cpu|fpga|round-robin\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_mode", &v)) {
      if (!fpart::ParseSimMode(v, &opt.sim_mode)) {
        std::fprintf(stderr,
                     "--sim_mode must be reference|fast|analytical\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_cache_warmup", &v)) {
      opt.sim_cache_warmup = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_cache", &v)) {
      opt.sim_cache = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--affinity", &v)) {
      if (!fpart::ParseAffinityPolicy(v, &opt.affinity)) {
        std::fprintf(stderr,
                     "--affinity must be none|compact|scatter|numa-local\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--xcheck", &v)) {
      opt.xcheck = std::strtod(v.c_str(), nullptr);
      if (opt.xcheck < 0.0 || opt.xcheck > 1.0) {
        std::fprintf(stderr, "--xcheck must be in [0, 1]\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--admission", &v)) {
      opt.admission = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--slo", &v)) {
      char* cursor = v.data();
      for (size_t c = 0; c < fpart::svc::kNumJobClasses; ++c) {
        opt.slo_seconds[c] = std::strtod(cursor, &cursor);
        if (*cursor == ',') ++cursor;
        if (opt.slo_seconds[c] < 0.0) {
          std::fprintf(stderr, "--slo needs 3 non-negative seconds\n");
          return 2;
        }
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--autoscale", &v)) {
      opt.autoscale = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--max_workers", &v)) {
      opt.max_workers = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.jobs == 0 || opt.clients == 0) {
    std::fprintf(stderr, "--jobs and --clients must be positive\n");
    return 2;
  }
  if (opt.fpga_devices == 0) opt.fpga_devices = 1;
  if (opt.rate <= 0) opt.rate = 5000.0;
  (void)json;  // the report is always JSON; --json kept for script parity
  return fpart::Run(opt);
}
