// Table 1: memory access behaviour depending on which socket last wrote a
// 512 MB region. The FPGA-writer rows cannot be measured without the
// Xeon+FPGA machine; they are produced by applying the paper's snoop
// penalty factors to the host-measured CPU-writer baselines, which is
// exactly how the hybrid join accounts for the effect (Section 2.2).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "model/paper_constants.h"
#include "qpi/coherence.h"

namespace fpart {
namespace {

struct Measured {
  double seq_seconds;
  double rand_seconds;
};

Measured HostReadBench(size_t mb) {
  const size_t words = mb * (1 << 20) / sizeof(uint64_t);
  auto buf = AlignedBuffer::Allocate(words * sizeof(uint64_t));
  if (!buf.ok()) return {0, 0};
  auto* data = buf->mutable_data_as<uint64_t>();
  for (size_t i = 0; i < words; ++i) data[i] = i;  // CPU writes the region

  volatile uint64_t sink = 0;
  uint64_t acc = 0;
  Timer seq;
  for (size_t i = 0; i < words; ++i) acc += data[i];
  double seq_seconds = seq.Seconds();

  // Random reads at cache-line stride, like the probe phase.
  Rng rng(3);
  const size_t lines = words / 8;
  Timer rnd;
  for (size_t i = 0; i < lines; ++i) acc += data[rng.Below(lines) * 8];
  double rand_seconds = rnd.Seconds();
  sink = acc;
  (void)sink;
  return {seq_seconds, rand_seconds};
}

int Run() {
  bench::Banner("tab01_coherence", "Table 1");
  const size_t mb = static_cast<size_t>(512 * BenchScale());
  Measured host = HostReadBench(mb);

  const double seq_factor = CoherenceModel::SequentialReadFactor(
      LastWriter::kFpga);
  const double rand_factor = CoherenceModel::RandomReadFactor(
      LastWriter::kFpga);

  std::printf("host region: %zu MB (scale with FPART_SCALE)\n\n", mb);
  std::printf("%-14s %18s %18s\n", "", "CPU reads seq.", "CPU reads rand.");
  std::printf("%-14s %11.4f s host %11.4f s host\n", "CPU writes",
              host.seq_seconds, host.rand_seconds);
  std::printf("%-14s %11.4f s mod. %11.4f s mod.   (host × Table 1 factor)\n",
              "FPGA writes", host.seq_seconds * seq_factor,
              host.rand_seconds * rand_factor);
  std::printf("\npaper (512 MB, Xeon E5-2680 v2):\n");
  std::printf("%-14s %11.4f s      %11.4f s\n", "CPU writes",
              paper::kTab1CpuWroteSeq, paper::kTab1CpuWroteRand);
  std::printf("%-14s %11.4f s      %11.4f s\n", "FPGA writes",
              paper::kTab1FpgaWroteSeq, paper::kTab1FpgaWroteRand);
  std::printf("\nderived snoop factors: sequential ×%.3f, random ×%.3f\n",
              seq_factor, rand_factor);
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
