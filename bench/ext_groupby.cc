// Extension (Section 6): partitioned GROUP BY aggregation — FPGA-partition
// vs CPU-partition vs single-pass hash aggregation, sweeping the number of
// distinct groups.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

int Run() {
  bench::Banner("ext_groupby", "Section 6 (group-by use case)");
  const size_t n = static_cast<size_t>(32e6 * BenchScale() / 8.0);
  const size_t threads = BenchMaxThreads();

  std::printf("%10s | %22s | %22s | %10s\n", "groups",
              "FPGA part + agg (s)", "CPU part + agg (s)", "hash agg");
  for (uint32_t groups : {1000u, 100000u, 1000000u, 4000000u}) {
    auto rel = Relation<Tuple8>::Allocate(n);
    if (!rel.ok()) return 1;
    Rng rng(groups);
    for (size_t i = 0; i < n; ++i) {
      (*rel)[i] = Tuple8{static_cast<uint32_t>(1 + rng.Below(groups)),
                         static_cast<uint32_t>(rng.Below(1000))};
    }
    GroupByConfig config;
    config.fanout = 8192;
    config.output_mode = OutputMode::kHist;
    config.num_threads = threads;

    config.engine = Engine::kFpgaSim;
    auto fpga = PartitionedGroupBy(config, *rel);
    config.engine = Engine::kCpu;
    auto cpu = PartitionedGroupBy(config, *rel);
    auto hash = HashGroupBy(*rel);
    if (!fpga.ok() || !cpu.ok() || !hash.ok()) {
      std::printf("%10u | error\n", groups);
      continue;
    }
    std::printf("%10u | %9.3f + %9.3f | %9.3f + %9.3f | %10.3f\n", groups,
                fpga->partition_seconds, fpga->aggregate_seconds,
                cpu->partition_seconds, cpu->aggregate_seconds,
                hash->total_seconds);
    if (fpga->groups != hash->groups || cpu->groups != hash->groups) {
      std::printf("    !! aggregation mismatch\n");
    }
  }
  std::printf(
      "\nExpected shape: with few groups the single-pass hash table stays "
      "cached and\nwins; with millions of groups the partitioned plans win "
      "and the FPGA removes\nthe partitioning cost from the CPU "
      "entirely.\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
