// Extension (Sections 4.8 and 6 discussion): what the partitioner does on
// future platforms. The paper argues that (a) with ~25.6 GB/s the circuit
// becomes compute bound at 1.6 Gtuples/s — 45% above the best 4-socket CPU
// number [27]; (b) hardened on the CPU die at GHz clocks, or placed near
// memory, it would go further. This bench sweeps link bandwidth and clock
// frequency through the validated cost model and cross-checks two points
// against the cycle simulator.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/fpart.h"

namespace fpart {
namespace {

// P_total (eq. 7) for an arbitrary clock/bandwidth point: the model's
// circuit rate scales linearly with the clock.
double RateAt(double clock_hz, double bandwidth_gbs, OutputMode mode,
              uint64_t n) {
  FpgaCostModel model(8, 8192);
  double circuit = model.CircuitRateTuplesPerSec() * (clock_hz / kFpgaClockHz);
  double process =
      1.0 / (FpgaCostModel::ModeFactor(mode) *
             (1.0 / circuit + model.LatencySeconds() *
                                  (kFpgaClockHz / clock_hz) / n));
  double r = FpgaCostModel::ReadWriteRatio(mode, LayoutMode::kRid);
  double mem = model.MemRateTuplesPerSec(r, bandwidth_gbs);
  return process < mem ? process : mem;
}

int Run() {
  bench::Banner("ext_future_platforms",
                "Sections 4.8/6: bandwidth and clock projections");
  const uint64_t n = 128000000;

  std::printf("PAD/RID partitioning rate (Mtuples/s, 8 B tuples, model):\n\n");
  std::printf("%14s |", "clock \\ BW");
  const double bws[] = {6.97, 12.8, 25.6, 51.2, 102.4};
  for (double bw : bws) std::printf(" %8.1fGB", bw);
  std::printf("\n");
  for (double mhz : {200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    std::printf("%11.0f MHz |", mhz);
    for (double bw : bws) {
      std::printf(" %10.0f", RateAt(mhz * 1e6, bw, OutputMode::kPad, n) / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\nReference points:\n");
  std::printf("  %-46s %8.0f Mt/s\n",
              "paper: best 64-thread CPU partitioning [27]", 1100.0);
  std::printf("  %-46s %8.0f Mt/s\n",
              "model: 200 MHz circuit @ 25.6 GB/s (raw wrapper)",
              RateAt(200e6, 25.6, OutputMode::kPad, n) / 1e6);

  // Cross-check the projection against the cycle simulator at two points.
  auto rel = GenerateUniqueRelation(
      static_cast<size_t>(16e6 * BenchScale()), KeyDistribution::kRandom, 7);
  if (rel.ok()) {
    for (LinkKind link : {LinkKind::kXeonFpga, LinkKind::kRawWrapper}) {
      FpgaPartitionerConfig config;
      config.fanout = 8192;
      config.output_mode = OutputMode::kPad;
      config.link = link;
      FpgaPartitioner<Tuple8> part(config);
      auto run = part.Partition(rel->data(), rel->size());
      if (run.ok()) {
        double bw = link == LinkKind::kRawWrapper ? 25.6 : 6.97;
        std::printf("  simulator @ %4.1f GB/s: %8.0f Mt/s (model %0.0f)\n",
                    bw, run->mtuples_per_sec,
                    RateAt(200e6, bw, OutputMode::kPad, rel->size()) / 1e6);
      }
    }
  }
  std::printf(
      "\nReading: at QPI bandwidth the circuit is memory bound (Figure 9); "
      "from\n~25.6 GB/s it is compute bound at 1.6 Gt/s — 45%% above the "
      "best reported CPU\nnumber; a hardened GHz-class macro would scale "
      "toward near-memory rates\n(Mirzadeh et al. [22]).\n");
  return 0;
}

}  // namespace
}  // namespace fpart

int main() { return fpart::Run(); }
