// Closed-loop driver of the streaming subsystem (docs/streaming.md): N
// client threads replay a precomputed op stream — ingest batches and
// point reads whose keys follow a *drifting* Zipf distribution (exponent
// ramp theta0 -> theta1 over a shift window, optional hot-set rotation) —
// against one StreamStore, while a RepartitionManager (--repartition on)
// splits hot buckets and merges cold buddies through a svc scheduler's
// kRebalance jobs. Every --foreground-every-th op additionally submits a
// small partition job, so rebalance work visibly competes in the WFQ.
//
// The headline A/B: with --repartition on, read p99 in the post-shift
// window should be measurably below the off arm, because the skewed-hot
// bucket is repeatedly isolated down to (asymptotically) just the hot
// key's own tuples. Read cost is reported as *scanned tuples* — exact and
// replay-stable — alongside wall microseconds.
//
// In --deterministic 1 (default) the whole run is a bit-stable replay:
// ops apply in one global order (OpSequencer), detector ticks are
// count-driven, epoch flips commit at tick barriers, and the determinism
// hash folds every op's (key, matches, scanned, epoch), every flip log
// entry and the final store checksum — identical across --clients counts
// (a CI gate). The driver exits non-zero if any ingested key is lost or
// duplicated (order-independent fingerprint audit) or a foreground job
// fails.
//
// Flags (both `--flag N` and `--flag=N` spellings):
//   --ops N              total ops                     (default 20000)
//   --batch N            tuples per ingest op (scaled by FPART_SCALE,
//                        default 256)
//   --clients N          client threads                (default 3)
//   --read-frac F        fraction of ops that are reads (default 0.5)
//   --keys N             key universe size             (default 65536)
//   --theta0 F           pre-shift Zipf exponent       (default 0.5)
//   --theta1 F           post-shift Zipf exponent      (default 1.2)
//   --shift-start F      shift window start, fraction of ops (default 0.4)
//   --shift-end F        shift window end, fraction of ops   (default 0.6)
//   --rotate-every N     rotate the hot-key set every N ops (0 = off)
//   --seed N             workload seed                 (default 42)
//   --deterministic B    1 = sequenced replay (default), 0 = live
//   --repartition M      on|off|1|0                    (default on)
//   --tick-every N       detector tick cadence, drains (default 4)
//   --flip-delay N       deterministic flip barrier, ticks (default 1)
//   --split-min N        split floor, tuples (scaled; default 4096)
//   --hysteresis N       consecutive ticks before an action (default 2)
//   --cooldown N         post-flip immunity, ticks     (default 4)
//   --initial-depth N    log2 initial buckets          (default 4)
//   --max-depth N        log2 bucket ceiling           (default 12)
//   --buffer N           ingest buffer bound, tuples (scaled; default 2048)
//   --workers N          svc worker threads            (default 2)
//   --queue N            svc admission bound (0 = auto)
//   --rate R             virtual Poisson arrival rate, ops/s (default 20000)
//   --foreground-every N every N-th op submits a partition job (0 = off,
//                        default 64)
//   --windows N          read-latency time buckets     (default 20)
//   --drain-engine E     cpu|fpga                      (default cpu)
//   --sim_mode M         reference|fast|analytical (FPGA drains;
//                        default analytical)
//   --sim_cache B        memoize FPGA drain runs       (default 1)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "obs/report.h"
#include "stream/repartition.h"
#include "svc/scheduler.h"

namespace fpart {
namespace {

struct Options {
  uint64_t ops = 20000;
  size_t batch = 256;
  size_t clients = 3;
  double read_frac = 0.5;
  uint64_t keys = 65536;
  double theta0 = 0.5;
  double theta1 = 1.2;
  double shift_start = 0.4;
  double shift_end = 0.6;
  uint64_t rotate_every = 0;
  uint64_t seed = 42;
  bool deterministic = true;
  bool repartition = true;
  uint64_t tick_every = 4;
  uint64_t flip_delay = 1;
  uint64_t split_min = 4096;
  int hysteresis = 2;
  int cooldown = 4;
  uint32_t initial_depth = 4;
  uint32_t max_depth = 12;
  size_t buffer = 2048;
  size_t workers = 2;
  size_t queue = 0;
  double rate = 20000.0;
  uint64_t foreground_every = 64;
  size_t windows = 20;
  Engine drain_engine = Engine::kCpu;
  SimMode sim_mode = SimMode::kAnalytical;
  bool sim_cache = true;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

double Percentile(std::vector<uint64_t>* v, double q) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(v->size() - 1) + 0.5);
  return static_cast<double>((*v)[std::min(idx, v->size() - 1)]);
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One op of the precomputed stream.
enum class OpKind : uint8_t { kIngest, kRead };

struct Workload {
  std::vector<OpKind> kinds;
  std::vector<uint32_t> ordinal;     // per-op: ingest# or read#
  std::vector<Tuple8> ingest;        // flat: ingest# i -> [i*batch, ...)
  std::vector<uint32_t> read_keys;   // read# -> key
  std::vector<double> arrivals;      // virtual arrival seconds per op
  uint64_t ingest_fingerprint = 0;   // sum of KeyFingerprint over ingest
  uint64_t ingest_tuples = 0;
};

Workload BuildWorkload(const Options& opt, size_t batch) {
  Workload w;
  w.kinds.resize(opt.ops);
  w.ordinal.resize(opt.ops);
  w.arrivals.resize(opt.ops);

  ZipfDriftSchedule sched;
  sched.theta0 = opt.theta0;
  sched.theta1 = opt.theta1;
  sched.shift_start = static_cast<uint64_t>(
      opt.shift_start * static_cast<double>(opt.ops));
  sched.shift_end =
      static_cast<uint64_t>(opt.shift_end * static_cast<double>(opt.ops));
  sched.rotate_every = opt.rotate_every;
  sched.seed = opt.seed;
  // Writers and readers share the logical clock (the op index), so their
  // hot sets stay aligned through the theta ramp and rotations.
  DriftingZipfSampler write_keys(opt.keys, sched);
  DriftingZipfSampler read_keys(opt.keys, sched);

  Rng mix_rng(opt.seed ^ 0x6d697865722d6f70ULL);
  Rng arrival_rng(opt.seed ^ 0x6172726976616c73ULL);
  double t_virt = 0.0;
  uint32_t next_ingest = 0, next_read = 0;
  uint32_t payload = 0;
  for (uint64_t i = 0; i < opt.ops; ++i) {
    t_virt += -std::log(1.0 - arrival_rng.NextDouble()) / opt.rate;
    w.arrivals[i] = t_virt;
    const bool read = mix_rng.NextDouble() < opt.read_frac;
    if (read) {
      w.kinds[i] = OpKind::kRead;
      w.ordinal[i] = next_read++;
      w.read_keys.push_back(
          static_cast<uint32_t>(read_keys.NextAt(i)));
    } else {
      w.kinds[i] = OpKind::kIngest;
      w.ordinal[i] = next_ingest++;
      for (size_t t = 0; t < batch; ++t) {
        Tuple8 tup;
        tup.key = static_cast<uint32_t>(write_keys.NextAt(i));
        tup.payload = payload++;
        w.ingest.push_back(tup);
        w.ingest_fingerprint += stream::StreamStore::KeyFingerprint(tup.key);
      }
    }
  }
  w.ingest_tuples = w.ingest.size();
  return w;
}

// Per-phase / per-window read latency accumulators (merged across
// clients after the join; the multisets are partition-stable, so the
// percentiles are independent of the client count).
struct ReadStats {
  std::vector<std::vector<uint64_t>> phase_scan{3};
  std::vector<std::vector<uint64_t>> phase_us{3};
  std::vector<std::vector<uint64_t>> window_scan;
  std::vector<std::vector<uint64_t>> window_us;
  uint64_t reads = 0;

  explicit ReadStats(size_t windows)
      : window_scan(windows), window_us(windows) {}
};

int Run(const Options& opt) {
  const double scale = BenchScale();
  const size_t batch =
      std::max<size_t>(32, static_cast<size_t>(opt.batch * scale));
  const uint64_t split_min = std::max<uint64_t>(
      64, static_cast<uint64_t>(static_cast<double>(opt.split_min) * scale));
  const size_t buffer = std::max<size_t>(
      batch, static_cast<size_t>(static_cast<double>(opt.buffer) * scale));

  const Workload w = BuildWorkload(opt, batch);
  const uint64_t shift_start_op = static_cast<uint64_t>(
      opt.shift_start * static_cast<double>(opt.ops));
  const uint64_t shift_end_op =
      static_cast<uint64_t>(opt.shift_end * static_cast<double>(opt.ops));
  const uint64_t window_ops =
      std::max<uint64_t>(1, (opt.ops + opt.windows - 1) / opt.windows);

  // -- The system under test -------------------------------------------
  stream::StreamStoreConfig store_cfg;
  store_cfg.initial_depth = opt.initial_depth;
  store_cfg.max_depth = opt.max_depth;
  store_cfg.drain_engine = opt.drain_engine;
  store_cfg.sim_mode = opt.sim_mode;
  store_cfg.sim_cache = opt.sim_cache;
  store_cfg.buffer_tuples = buffer;
  stream::StreamStore store(store_cfg);

  svc::SchedulerConfig sched_cfg;
  sched_cfg.num_workers = opt.workers;
  sched_cfg.deterministic = opt.deterministic;
  sched_cfg.queue_capacity =
      opt.queue > 0 ? opt.queue : (opt.deterministic ? opt.ops + 16 : 1024);
  sched_cfg.sim_mode = opt.sim_mode;
  sched_cfg.sim_cache = opt.sim_cache;
  sched_cfg.name = "stream";
  svc::Scheduler scheduler(sched_cfg);

  std::atomic<uint64_t> arrival_seq{0};
  // The op currently executing stamps its virtual arrival here. In
  // deterministic mode every access happens inside the sequenced region;
  // in live mode the stamps are concurrent (and unread — the virtual_now
  // callback is only installed for deterministic runs), so the cell must
  // still be atomic to keep the racing dead stores defined.
  std::atomic<double> virt_now{0.0};

  stream::RepartitionConfig mgr_cfg;
  mgr_cfg.enabled = opt.repartition;
  mgr_cfg.tick_every_drains = opt.tick_every;
  mgr_cfg.flip_delay_ticks = opt.flip_delay;
  mgr_cfg.deterministic = opt.deterministic;
  mgr_cfg.detector.split_min_tuples = split_min;
  mgr_cfg.detector.hysteresis_ticks = opt.hysteresis;
  mgr_cfg.detector.cooldown_ticks = opt.cooldown;
  mgr_cfg.detector.max_depth = opt.max_depth;
  mgr_cfg.detector.min_depth = store.config().min_depth;
  if (opt.deterministic) {
    mgr_cfg.next_arrival_seq = [&arrival_seq] {
      return arrival_seq.fetch_add(1, std::memory_order_relaxed);
    };
    mgr_cfg.virtual_now = [&virt_now] {
      return virt_now.load(std::memory_order_relaxed);
    };
  }
  stream::RepartitionManager manager(&store, &scheduler, mgr_cfg);

  // Foreground competition: one small resident table, partitioned again
  // and again through the same scheduler/WFQ the rebalance jobs use.
  Relation<Tuple8> fg_table;
  if (opt.foreground_every > 0) {
    auto rel = GenerateRawRelation(
        std::max<size_t>(512, static_cast<size_t>(16384 * scale)),
        KeyDistribution::kRandom, opt.seed + 17);
    if (!rel.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n",
                   rel.status().message().c_str());
      return 1;
    }
    fg_table = std::move(rel).ValueUnsafe();
  }

  stream::OpSequencer sequencer;
  std::mutex fg_mu;
  std::vector<svc::JobHandle> fg_handles;
  uint64_t det_hash = 0xcbf29ce484222325ULL;  // sequenced-region access only
  std::atomic<uint64_t> ingest_failures{0};

  std::vector<ReadStats> stats(opt.clients, ReadStats(opt.windows));
  const uint64_t wall0 = NowNs();

  auto client_fn = [&](size_t c) {
    ReadStats& st = stats[c];
    for (uint64_t i = c; i < opt.ops; i += opt.clients) {
      if (opt.deterministic) sequencer.Enter(i);
      virt_now.store(w.arrivals[i], std::memory_order_relaxed);
      if (w.kinds[i] == OpKind::kIngest) {
        const Tuple8* tuples =
            w.ingest.data() + static_cast<size_t>(w.ordinal[i]) * batch;
        const uint64_t drains_before = store.drains();
        Status s = store.Ingest(tuples, batch);
        if (!s.ok()) ingest_failures.fetch_add(1, std::memory_order_relaxed);
        for (uint64_t d = drains_before; d < store.drains(); ++d) {
          manager.OnDrain();
        }
        if (opt.deterministic) {
          det_hash = Fnv1a(det_hash, i);
          det_hash = Fnv1a(det_hash, store.drains());
          det_hash = Fnv1a(det_hash, store.epoch());
        }
      } else {
        const uint32_t key = w.read_keys[w.ordinal[i]];
        const uint64_t t0 = NowNs();
        const stream::ReadResult r = store.Read(key);
        const uint64_t us = (NowNs() - t0) / 1000;
        const size_t phase =
            i < shift_start_op ? 0 : (i < shift_end_op ? 1 : 2);
        const size_t win =
            std::min(static_cast<size_t>(i / window_ops), opt.windows - 1);
        st.phase_scan[phase].push_back(r.scanned);
        st.phase_us[phase].push_back(us);
        st.window_scan[win].push_back(r.scanned);
        st.window_us[win].push_back(us);
        ++st.reads;
        if (opt.deterministic) {
          det_hash = Fnv1a(det_hash, i);
          det_hash = Fnv1a(det_hash, key);
          det_hash = Fnv1a(det_hash, r.matches);
          det_hash = Fnv1a(det_hash, r.scanned);
          det_hash = Fnv1a(det_hash, r.epoch);
        }
      }
      if (opt.foreground_every > 0 && i > 0 &&
          i % opt.foreground_every == 0) {
        svc::PartitionJobSpec spec;
        spec.input = &fg_table;
        spec.request.fanout = 512;
        spec.request.hash = HashMethod::kMurmur;
        svc::JobOptions jopts;
        jopts.job_class = svc::JobClass::kBatch;
        jopts.pinned = svc::Backend::kCpu;
        if (opt.deterministic) {
          jopts.arrival_seq =
              arrival_seq.fetch_add(1, std::memory_order_relaxed);
          jopts.virtual_arrival_seconds = w.arrivals[i];
        }
        auto handle = scheduler.Submit(spec, jopts);
        if (handle.ok()) {
          std::lock_guard<std::mutex> lock(fg_mu);
          fg_handles.push_back(std::move(handle).ValueUnsafe());
        }
      }
      if (opt.deterministic) sequencer.Exit();
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(opt.clients);
  for (size_t c = 0; c < opt.clients; ++c) clients.emplace_back(client_fn, c);
  for (auto& t : clients) t.join();

  // Tail: drain the buffer, let pending rebuilds land, stop the service.
  Status flush = store.Flush();
  if (!flush.ok()) {
    std::fprintf(stderr, "final flush failed: %s\n",
                 flush.message().c_str());
    return 1;
  }
  manager.Quiesce();
  uint64_t fg_completed = 0, fg_failed = 0;
  for (const auto& h : fg_handles) {
    const svc::JobOutcome& out = h.Wait();
    if (out.state == svc::JobState::kCompleted) {
      ++fg_completed;
      if (opt.deterministic) {
        det_hash = Fnv1a(det_hash, static_cast<uint64_t>(out.backend));
        det_hash = Fnv1a(det_hash, out.checksum);
      }
    } else {
      ++fg_failed;
    }
  }
  scheduler.Shutdown();
  const double wall_seconds =
      static_cast<double>(NowNs() - wall0) * 1e-9;

  // -- Audit: zero lost / duplicated keys across every epoch flip -------
  const uint64_t resident = store.total_tuples();
  const uint64_t lost =
      w.ingest_tuples > resident ? w.ingest_tuples - resident : 0;
  const uint64_t duplicated =
      resident > w.ingest_tuples ? resident - w.ingest_tuples : 0;
  const bool checksum_ok = store.KeyChecksum() == w.ingest_fingerprint;
  const auto flips = store.FlipLog();
  uint64_t splits = 0, merges = 0;
  for (const auto& f : flips) {
    (f.split ? splits : merges)++;
    if (opt.deterministic) {
      det_hash = Fnv1a(det_hash, f.epoch);
      det_hash = Fnv1a(det_hash, f.split ? 1 : 0);
      det_hash = Fnv1a(det_hash, f.pattern);
      det_hash = Fnv1a(det_hash, f.depth);
      det_hash = Fnv1a(det_hash, f.watermark);
    }
  }
  if (opt.deterministic) {
    det_hash = Fnv1a(det_hash, store.KeyChecksum());
    det_hash = Fnv1a(det_hash, resident);
    det_hash = Fnv1a(det_hash, store.epoch());
  }

  // -- Merge per-client read stats --------------------------------------
  ReadStats merged(opt.windows);
  for (auto& st : stats) {
    merged.reads += st.reads;
    for (size_t p = 0; p < 3; ++p) {
      merged.phase_scan[p].insert(merged.phase_scan[p].end(),
                                  st.phase_scan[p].begin(),
                                  st.phase_scan[p].end());
      merged.phase_us[p].insert(merged.phase_us[p].end(),
                                st.phase_us[p].begin(),
                                st.phase_us[p].end());
    }
    for (size_t v = 0; v < opt.windows; ++v) {
      merged.window_scan[v].insert(merged.window_scan[v].end(),
                                   st.window_scan[v].begin(),
                                   st.window_scan[v].end());
      merged.window_us[v].insert(merged.window_us[v].end(),
                                 st.window_us[v].begin(),
                                 st.window_us[v].end());
    }
  }

  // -- Report -----------------------------------------------------------
  obs::BenchReport report("ext_stream");
  report.ConfigUInt("ops", opt.ops);
  report.ConfigUInt("batch", batch);
  report.ConfigUInt("clients", opt.clients);
  report.ConfigDouble("read_frac", opt.read_frac);
  report.ConfigUInt("keys", opt.keys);
  report.ConfigDouble("theta0", opt.theta0);
  report.ConfigDouble("theta1", opt.theta1);
  report.ConfigUInt("shift_start_op", shift_start_op);
  report.ConfigUInt("shift_end_op", shift_end_op);
  report.ConfigUInt("rotate_every", opt.rotate_every);
  report.ConfigUInt("seed", opt.seed);
  report.ConfigUInt("deterministic", opt.deterministic ? 1 : 0);
  report.ConfigUInt("repartition", opt.repartition ? 1 : 0);
  report.ConfigUInt("tick_every_drains", opt.tick_every);
  report.ConfigUInt("flip_delay_ticks", opt.flip_delay);
  report.ConfigUInt("split_min_tuples", split_min);
  report.ConfigUInt("hysteresis_ticks",
                    static_cast<uint64_t>(opt.hysteresis));
  report.ConfigUInt("cooldown_ticks", static_cast<uint64_t>(opt.cooldown));
  report.ConfigUInt("initial_depth", opt.initial_depth);
  report.ConfigUInt("max_depth", opt.max_depth);
  report.ConfigUInt("buffer_tuples", buffer);
  report.ConfigUInt("workers", opt.workers);
  report.ConfigUInt("queue_capacity", sched_cfg.queue_capacity);
  report.ConfigDouble("rate_ops_per_sec", opt.rate);
  report.ConfigUInt("foreground_every", opt.foreground_every);
  report.ConfigUInt("windows", opt.windows);
  report.ConfigStr("drain_engine",
                   opt.drain_engine == Engine::kCpu ? "cpu" : "fpga");
  report.ConfigStr("sim_mode", SimModeName(opt.sim_mode));
  report.ConfigUInt("sim_cache", opt.sim_cache ? 1 : 0);
  report.ConfigDouble("scale", scale);

  report.Result("ingest",
                {{"tuples", static_cast<double>(w.ingest_tuples)},
                 {"batches", static_cast<double>(store.drains())},
                 {"tuples_per_sec",
                  static_cast<double>(w.ingest_tuples) / wall_seconds}});
  report.Result("store",
                {{"buckets", static_cast<double>(store.num_buckets())},
                 {"depth", static_cast<double>(store.global_depth())},
                 {"epoch", static_cast<double>(store.epoch())},
                 {"imbalance", store.imbalance()}});
  report.Result(
      "rebalance",
      {{"jobs", static_cast<double>(manager.jobs_submitted())},
       {"splits", static_cast<double>(splits)},
       {"merges", static_cast<double>(merges)},
       {"stale", static_cast<double>(store.stale_commits())},
       {"abandoned", static_cast<double>(manager.jobs_abandoned())},
       {"ticks", static_cast<double>(manager.ticks())}});

  const char* phase_names[3] = {"phase_pre", "phase_shift", "phase_post"};
  for (size_t p = 0; p < 3; ++p) {
    report.Result(phase_names[p],
                  {{"reads",
                    static_cast<double>(merged.phase_scan[p].size())},
                   {"scan_p50", Percentile(&merged.phase_scan[p], 0.50)},
                   {"scan_p95", Percentile(&merged.phase_scan[p], 0.95)},
                   {"scan_p99", Percentile(&merged.phase_scan[p], 0.99)},
                   {"p99_us", Percentile(&merged.phase_us[p], 0.99)}});
  }
  for (size_t v = 0; v < opt.windows; ++v) {
    char name[32];
    std::snprintf(name, sizeof(name), "window_%02zu", v);
    report.Result(name,
                  {{"op_lo", static_cast<double>(v * window_ops)},
                   {"reads",
                    static_cast<double>(merged.window_scan[v].size())},
                   {"scan_p50", Percentile(&merged.window_scan[v], 0.50)},
                   {"scan_p99", Percentile(&merged.window_scan[v], 0.99)},
                   {"p99_us", Percentile(&merged.window_us[v], 0.99)}});
  }
  report.Result("keys_accounted",
                {{"ingested", static_cast<double>(w.ingest_tuples)},
                 {"resident", static_cast<double>(resident)},
                 {"lost", static_cast<double>(lost)},
                 {"duplicated", static_cast<double>(duplicated)},
                 {"checksum_ok", checksum_ok ? 1.0 : 0.0}});
  report.Result("foreground",
                {{"jobs", static_cast<double>(fg_handles.size())},
                 {"completed", static_cast<double>(fg_completed)},
                 {"failed", static_cast<double>(fg_failed)}});
  report.ResultDouble("wall_seconds", wall_seconds);
  report.ResultDouble("reads_per_sec",
                      static_cast<double>(merged.reads) / wall_seconds);
  if (opt.deterministic) {
    report.ResultUInt("determinism_hash", det_hash);
    report.ResultDouble("virtual_makespan_seconds",
                        scheduler.virtual_makespan_seconds());
  }
  report.Print();

  if (ingest_failures.load() != 0) {
    std::fprintf(stderr, "%llu ingest calls failed\n",
                 static_cast<unsigned long long>(ingest_failures.load()));
    return 1;
  }
  if (lost != 0 || duplicated != 0 || !checksum_ok) {
    std::fprintf(stderr,
                 "key audit failed: lost=%llu duplicated=%llu "
                 "checksum_ok=%d\n",
                 static_cast<unsigned long long>(lost),
                 static_cast<unsigned long long>(duplicated),
                 checksum_ok ? 1 : 0);
    return 1;
  }
  if (fg_failed != 0) {
    std::fprintf(stderr, "%llu foreground jobs failed\n",
                 static_cast<unsigned long long>(fg_failed));
    return 1;
  }
  return 0;
}

// Accept both "--flag value" and "--flag=value".
bool ParseFlag(int argc, char** argv, int* i, const char* flag,
               std::string* value) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(argv[*i], flag, len) != 0) return false;
  if (argv[*i][len] == '=') {
    *value = argv[*i] + len + 1;
    return true;
  }
  if (argv[*i][len] == '\0' && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

}  // namespace
}  // namespace fpart

int main(int argc, char** argv) {
  fpart::obs::TraceSession trace(&argc, argv);
  fpart::Options opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (fpart::ParseFlag(argc, argv, &i, "--ops", &v)) {
      opt.ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--batch", &v)) {
      opt.batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--clients", &v)) {
      opt.clients = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--read-frac", &v)) {
      opt.read_frac = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--keys", &v)) {
      opt.keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--theta0", &v)) {
      opt.theta0 = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--theta1", &v)) {
      opt.theta1 = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--shift-start", &v)) {
      opt.shift_start = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--shift-end", &v)) {
      opt.shift_end = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--rotate-every", &v)) {
      opt.rotate_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--seed", &v)) {
      opt.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--deterministic", &v)) {
      opt.deterministic = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else if (fpart::ParseFlag(argc, argv, &i, "--repartition", &v)) {
      if (v == "on" || v == "1") {
        opt.repartition = true;
      } else if (v == "off" || v == "0") {
        opt.repartition = false;
      } else {
        std::fprintf(stderr, "--repartition must be on|off|1|0\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--tick-every", &v)) {
      opt.tick_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--flip-delay", &v)) {
      opt.flip_delay = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--split-min", &v)) {
      opt.split_min = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--hysteresis", &v)) {
      opt.hysteresis = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else if (fpart::ParseFlag(argc, argv, &i, "--cooldown", &v)) {
      opt.cooldown = static_cast<int>(std::strtol(v.c_str(), nullptr, 10));
    } else if (fpart::ParseFlag(argc, argv, &i, "--initial-depth", &v)) {
      opt.initial_depth =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (fpart::ParseFlag(argc, argv, &i, "--max-depth", &v)) {
      opt.max_depth =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (fpart::ParseFlag(argc, argv, &i, "--buffer", &v)) {
      opt.buffer = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--workers", &v)) {
      opt.workers = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--queue", &v)) {
      opt.queue = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--rate", &v)) {
      opt.rate = std::strtod(v.c_str(), nullptr);
    } else if (fpart::ParseFlag(argc, argv, &i, "--foreground-every", &v)) {
      opt.foreground_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--windows", &v)) {
      opt.windows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (fpart::ParseFlag(argc, argv, &i, "--drain-engine", &v)) {
      if (v == "cpu") {
        opt.drain_engine = fpart::Engine::kCpu;
      } else if (v == "fpga") {
        opt.drain_engine = fpart::Engine::kFpgaSim;
      } else {
        std::fprintf(stderr, "--drain-engine must be cpu|fpga\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_mode", &v)) {
      if (!fpart::ParseSimMode(v, &opt.sim_mode)) {
        std::fprintf(stderr,
                     "--sim_mode must be reference|fast|analytical\n");
        return 2;
      }
    } else if (fpart::ParseFlag(argc, argv, &i, "--sim_cache", &v)) {
      opt.sim_cache = std::strtoull(v.c_str(), nullptr, 10) != 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (opt.ops == 0 || opt.clients == 0) {
    std::fprintf(stderr, "--ops and --clients must be positive\n");
    return 2;
  }
  if (opt.keys == 0) opt.keys = 1;
  if (opt.rate <= 0) opt.rate = 20000.0;
  if (opt.windows == 0) opt.windows = 1;
  if (opt.shift_end < opt.shift_start) opt.shift_end = opt.shift_start;
  (void)json;  // the report is always JSON; --json kept for script parity
  return fpart::Run(opt);
}
