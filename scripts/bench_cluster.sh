#!/usr/bin/env sh
# Replay a closed-loop Zipf-keyed job stream through the sharded cluster
# layer (bench/ext_cluster: N federated service nodes behind one shard
# map, docs/distributed.md) and record the results as BENCH_cluster.json
# at the repo root. The document is a JSON object wrapping one
# fpart.obs.v1 envelope per configuration:
#   n1 / n2 / n4              node-count sweep at a saturating arrival
#                             rate (uniform-ish keys, migration off)
#   n4_skew_migration_off/on  4 nodes under a hot-key workload
#                             (--zipf 1.2), without and with hot-bucket
#                             migration — the tail-latency comparison
# Flatten with scripts/bench_to_csv.py (it unpacks wrapper objects).
# Usage: scripts/bench_cluster.sh [build_dir] [jobs] [extra flags...]
# e.g. scripts/bench_cluster.sh build 4000 --sim_mode analytical --sim_cache 1
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=${2:-4000}
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift

if [ ! -x "$build_dir/bench/ext_cluster" ]; then
  echo "building ext_cluster in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target ext_cluster -j >&2
fi

out="$repo_root/BENCH_cluster.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Saturating rate: arrivals far faster than one node can drain, so the
# virtual makespan measures capacity, not the arrival span. Caller flags
# come last and win.
for n in 1 2 4; do
  "$build_dir/bench/ext_cluster" --json --jobs "$jobs" --nodes "$n" \
    --rate 500000 "$@" > "$tmp/n$n.json"
done
for mig in off on; do
  "$build_dir/bench/ext_cluster" --json --jobs "$jobs" --nodes 4 \
    --rate 500000 --zipf 1.2 --migration "$mig" --rebalance-every 200 \
    "$@" > "$tmp/mig_$mig.json"
done

{
  printf '{\n"n1": '
  cat "$tmp/n1.json"
  printf ',\n"n2": '
  cat "$tmp/n2.json"
  printf ',\n"n4": '
  cat "$tmp/n4.json"
  printf ',\n"n4_skew_migration_off": '
  cat "$tmp/mig_off.json"
  printf ',\n"n4_skew_migration_on": '
  cat "$tmp/mig_on.json"
  printf '}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
