#!/usr/bin/env sh
# Measure host-side simulator throughput (reference vs fast vs analytical
# execution engine) on a 10M-tuple RID/PAD run and record it as
# BENCH_sim.json at the repo root. The analytical column also reports its
# predicted-cycle error against the fast engine's exact count. The
# document follows the fpart.obs.v1 schema (docs/observability.md);
# flatten with scripts/bench_to_csv.py.
# Usage: scripts/bench_sim.sh [build_dir] [n_tuples]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
n_tuples=${2:-10000000}

if [ ! -x "$build_dir/bench/micro_sim" ]; then
  echo "building micro_sim in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target micro_sim -j >&2
fi

out="$repo_root/BENCH_sim.json"
"$build_dir/bench/micro_sim" --json "$n_tuples" > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
