#!/usr/bin/env python3
"""Validate that the bench binaries' --json output follows the documented
fpart.obs.v1 envelope (docs/observability.md).

Runs micro_sim, micro_partition, ext_join_algorithms and ext_service in
--json mode (small workloads) and asserts, for each document:

* the envelope keys schema/benchmark/config/results/metrics, with
  schema == "fpart.obs.v1";
* every metrics entry carries type + unit, counters a "value", histograms
  count/sum/min/max/mean/p50/p99;
* the metric names each binary is documented to emit are present.

Usage: python3 scripts/check_bench_schema.py [--bindir build/bench]
"""
import argparse
import json
import os
import subprocess
import sys

ENVELOPE_KEYS = ["schema", "benchmark", "config", "results", "metrics"]

EXT_SERVICE_METRICS = [
    "svc.jobs.submitted", "svc.jobs.completed",
    "svc.placed.cpu", "svc.placed.fpga",
    "svc.job.queue_us", "svc.job.total_us",
    "svc.fpga.lease_wait_us",
    "svc.device.0.grants", "svc.device.0.busy_us",
    "svc.device.1.grants", "svc.device.1.busy_us",
    "svc.class.interactive.submitted",
    "svc.class.interactive.completed",
    "svc.class.interactive.total_us",
    "svc.class.batch.completed",
    "svc.class.besteffort.completed",
]

# (case name, binary, args, metric names the run must publish,
#  config keys the document must carry).
CASES = [
    ("micro_sim", "micro_sim", ["--json", "200000"],
     ["sim.runs", "sim.cycles", "sim.flush_drain_cycles",
      "sim.hash_lane.input_lines",
      "sim.write_combiner.stall_cycles",
      "sim.write_back.dummy_tuples", "qpi.read_lines",
      "qpi.write_lines", "qpi.read_stall_cycles",
      "qpi.write_stall_cycles", "qpi.bytes"],
     []),
    ("micro_partition", "micro_partition", ["--json", "1000000"],
     ["cpu.partition.runs", "cpu.partition.tuples",
      "cpu.partition.histogram_us",
      "cpu.partition.scatter_us"],
     []),
    ("ext_join_algorithms", "ext_join_algorithms", ["--json"],
     ["join.radix.runs", "join.matches",
      "cpu.partition.runs"],
     []),
    ("ext_service", "ext_service",
     ["--json", "--jobs", "2000", "--clients", "4",
      "--fpga_devices", "2", "--classes", "8,3,1"],
     EXT_SERVICE_METRICS,
     ["sim_mode", "sim_cache", "xcheck"]),
    # The analytical backend with memoization and cross-checking: the run
    # must additionally publish the cache counters and the model-error
    # histogram (xcheck = 1 so the sample is never empty).
    ("ext_service_analytical", "ext_service",
     ["--json", "--jobs", "2000", "--clients", "4",
      "--fpga_devices", "2", "--classes", "8,3,1",
      "--sim_mode", "analytical", "--sim_cache", "1", "--xcheck", "1"],
     EXT_SERVICE_METRICS + ["sim.cache.hits", "sim.cache.misses",
                            "sim.cache.entries", "sim.cache.bytes",
                            "sim.analytical.error_pct"],
     ["sim_mode", "sim_cache", "xcheck"]),
]

# Result-object keys ext_service must report per priority class and per
# device (the per-class latency percentiles and the utilization mix).
EXT_SERVICE_RESULT_KEYS = [
    "class_interactive", "class_batch", "class_besteffort",
    "device_0", "device_1",
]

HISTOGRAM_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p99"]


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(name: str, doc: dict, expected_metrics,
             expected_config=()) -> None:
    for key in ENVELOPE_KEYS:
        if key not in doc:
            fail(f"{name}: envelope key '{key}' missing")
    if doc["schema"] != "fpart.obs.v1":
        fail(f"{name}: schema is {doc['schema']!r}, not 'fpart.obs.v1'")
    if not isinstance(doc["config"], dict) or not doc["config"]:
        fail(f"{name}: config must be a non-empty object")
    if not isinstance(doc["results"], dict) or not doc["results"]:
        fail(f"{name}: results must be a non-empty object")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(f"{name}: metrics must be an object")
    for mname, m in metrics.items():
        if "type" not in m or "unit" not in m:
            fail(f"{name}: metric {mname} lacks type/unit")
        if m["type"] in ("counter",) and "value" not in m:
            fail(f"{name}: counter {mname} lacks value")
        if m["type"] == "histogram":
            for field in HISTOGRAM_FIELDS:
                if field not in m:
                    fail(f"{name}: histogram {mname} lacks {field}")
    for mname in expected_metrics:
        if mname not in metrics:
            fail(f"{name}: documented metric '{mname}' missing "
                 f"(have: {sorted(metrics)})")
    for ckey in expected_config:
        if ckey not in doc["config"]:
            fail(f"{name}: documented config key '{ckey}' missing "
                 f"(have: {sorted(doc['config'])})")
    if name.startswith("ext_service"):
        for rkey in EXT_SERVICE_RESULT_KEYS:
            if rkey not in doc["results"]:
                fail(f"{name}: result object '{rkey}' missing "
                     f"(have: {sorted(doc['results'])})")
        for cls in ("interactive", "batch", "besteffort"):
            obj = doc["results"][f"class_{cls}"]
            for field in ("count", "p50_us", "p95_us", "p99_us",
                          "weight_share"):
                if field not in obj:
                    fail(f"{name}: class_{cls} lacks '{field}'")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--bindir", default="build/bench")
    args = parser.parse_args()

    env = dict(os.environ)
    # Small join workload so the check stays fast.
    env.setdefault("FPART_SCALE", "0.0625")

    checked = 0
    for case, binary, argv, expected, expected_config in CASES:
        path = os.path.join(args.bindir, binary)
        if not os.path.exists(path):
            fail(f"{path} not built")
        proc = subprocess.run([path] + argv, capture_output=True, text=True,
                              env=env, timeout=600)
        if proc.returncode != 0:
            fail(f"{case} exited {proc.returncode}: {proc.stderr}")
        try:
            doc = json.loads(proc.stdout)
        except ValueError as e:
            fail(f"{case}: output is not valid JSON ({e}):\n{proc.stdout}")
        validate(case, doc, expected, expected_config)
        checked += 1
    print(f"OK: {checked} bench JSON documents match fpart.obs.v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
