#!/usr/bin/env python3
"""Validate that the bench binaries' --json output follows the documented
fpart.obs.v1 envelope (docs/observability.md).

Runs micro_sim, micro_partition, ext_join_algorithms and ext_service in
--json mode (small workloads) and asserts, for each document:

* the envelope keys schema/benchmark/config/results/metrics, with
  schema == "fpart.obs.v1";
* every metrics entry carries type + unit, counters a "value", histograms
  count/sum/min/max/mean/p50/p99;
* the metric names each binary is documented to emit are present.

Usage: python3 scripts/check_bench_schema.py [--bindir build/bench]
"""
import argparse
import json
import os
import re
import subprocess
import sys

ENVELOPE_KEYS = ["schema", "benchmark", "config", "results", "metrics"]

# The pinning policies ParseAffinityPolicy accepts (canonical spellings —
# AffinityPolicyName output). Any other value in a config "affinity" field
# is a bug in the emitting bench.
VALID_AFFINITY = {"none", "compact", "scatter", "numa-local"}

# Hardware counter keys (obs/perf_counters.h): per-phase perf_event deltas.
# They appear both as registry metrics and as per-row result fields, and
# only when the host exposes a PMU — absence is fine, garbage names are not.
HW_KEY_RE = re.compile(
    r"^hw\.(histogram|scatter)\."
    r"(cycles|instructions|llc_misses|dtlb_misses)$")

EXT_SERVICE_METRICS = [
    "svc.jobs.submitted", "svc.jobs.completed",
    "svc.placed.cpu", "svc.placed.fpga",
    "svc.job.queue_us", "svc.job.total_us",
    "svc.fpga.lease_wait_us",
    "svc.device.0.grants", "svc.device.0.busy_us",
    "svc.device.1.grants", "svc.device.1.busy_us",
    "svc.class.interactive.submitted",
    "svc.class.interactive.completed",
    "svc.class.interactive.total_us",
    "svc.class.batch.completed",
    "svc.class.besteffort.completed",
]

# Cluster-layer metrics ext_cluster must publish (docs/observability.md:
# shard.* is the routing/migration account, svc.remote.* the cross-node
# traffic). All are registered at cluster construction, so they are
# present — possibly zero — in every document.
EXT_CLUSTER_METRICS = [
    "shard.lookups", "shard.migrations", "shard.rebalances",
    "shard.epoch", "shard.imbalance",
    "svc.remote.submitted", "svc.remote.completed",
    "svc.remote.bytes", "svc.remote.hop_us",
    "svc.jobs.submitted", "svc.jobs.completed",
]

# Streaming-store metrics ext_stream must publish (docs/streaming.md).
# The stream.store/ingest/read families are registered at store
# construction, so they are present in every arm; the hotspot/rebalance
# job counters only exist once the repartition loop actually ran, so the
# --repartition off arm checks the base set only.
EXT_STREAM_METRICS = [
    "stream.ingest.tuples", "stream.ingest.batches",
    "stream.ingest.drain_us", "stream.ingest.buffered",
    "stream.read.ops", "stream.read.scan_tuples", "stream.read.us",
    "stream.store.buckets", "stream.store.depth", "stream.store.epoch",
    "stream.store.tuples", "stream.store.imbalance",
    "stream.rebalance.splits", "stream.rebalance.merges",
    "stream.rebalance.stale", "stream.rebalance.moved_tuples",
    "svc.jobs.submitted", "svc.jobs.completed",
    "svc.place.err_pct.cpu.small",
]
EXT_STREAM_METRICS_ON = EXT_STREAM_METRICS + [
    "stream.hotspot.ticks", "stream.hotspot.split_decisions",
    "stream.hotspot.merge_decisions", "stream.rebalance.jobs",
]

# The drift-schedule + repartition knobs every ext_stream document must
# carry (the A/B arms are distinguished by config, not by shape).
EXT_STREAM_CONFIG_KEYS = [
    "ops", "batch", "clients", "read_frac", "keys",
    "theta0", "theta1", "shift_start_op", "shift_end_op", "rotate_every",
    "seed", "deterministic", "repartition", "tick_every_drains",
    "flip_delay_ticks", "split_min_tuples", "windows",
    "drain_engine", "sim_mode",
]

# Result-object keys ext_stream must report, and the fields each carries.
EXT_STREAM_RESULT_KEYS = {
    "ingest": ["tuples", "batches", "tuples_per_sec"],
    "store": ["buckets", "depth", "epoch", "imbalance"],
    "rebalance": ["jobs", "splits", "merges", "stale", "abandoned",
                  "ticks"],
    "phase_pre": ["reads", "scan_p50", "scan_p95", "scan_p99", "p99_us"],
    "phase_shift": ["reads", "scan_p50", "scan_p95", "scan_p99", "p99_us"],
    "phase_post": ["reads", "scan_p50", "scan_p95", "scan_p99", "p99_us"],
    "keys_accounted": ["ingested", "resident", "lost", "duplicated",
                       "checksum_ok"],
    "foreground": ["jobs", "completed", "failed"],
}

# Result-object keys ext_cluster must report, and the fields each carries.
EXT_CLUSTER_RESULT_KEYS = {
    "latency": ["p50_us", "p95_us", "p99_us", "mean_us"],
    "remote": ["submitted", "completed", "bytes", "share", "mean_hop_us"],
    "migration": ["migrations", "rebalances", "epoch", "load_imbalance"],
    "jobs_accounted": ["completed", "failed", "shed", "lost",
                       "epoch_violations"],
}

# (case name, binary, args, metric names the run must publish,
#  config keys the document must carry).
CASES = [
    ("micro_sim", "micro_sim", ["--json", "200000"],
     ["sim.runs", "sim.cycles", "sim.flush_drain_cycles",
      "sim.hash_lane.input_lines",
      "sim.write_combiner.stall_cycles",
      "sim.write_back.dummy_tuples", "qpi.read_lines",
      "qpi.write_lines", "qpi.read_stall_cycles",
      "qpi.write_stall_cycles", "qpi.bytes"],
     []),
    ("micro_partition", "micro_partition", ["--json", "1000000"],
     ["cpu.partition.runs", "cpu.partition.tuples",
      "cpu.partition.histogram_us",
      "cpu.partition.scatter_us"],
     ["affinity", "hw_counters"]),
    # Affinity sweep benches: every row carries an affinity_none vs
    # affinity_<policy> variant; hw.* fields ride along when a PMU exists.
    ("fig04_cpu_partitioning", "fig04_cpu_partitioning",
     ["--json", "400000"],
     ["cpu.partition.runs", "cpu.partition.histogram_us",
      "cpu.partition.scatter_us"],
     ["affinity", "hw_counters", "num_nodes"]),
    ("fig11_threads", "fig11_threads", ["--json"],
     ["join.radix.runs", "join.matches", "cpu.partition.runs"],
     ["affinity", "hw_counters", "num_nodes"]),
    ("ext_join_algorithms", "ext_join_algorithms", ["--json"],
     ["join.radix.runs", "join.matches",
      "cpu.partition.runs"],
     []),
    ("ext_service", "ext_service",
     ["--json", "--jobs", "2000", "--clients", "4",
      "--fpga_devices", "2", "--classes", "8,3,1"],
     EXT_SERVICE_METRICS,
     ["sim_mode", "sim_cache", "sim_cache_warmup", "xcheck", "affinity"]),
    # The analytical backend with memoization and cross-checking: the run
    # must additionally publish the cache counters and the model-error
    # histogram (xcheck = 1 so the sample is never empty). Warmup pre-runs
    # every job shape, so the "warmup" result row must be present.
    ("ext_service_analytical", "ext_service",
     ["--json", "--jobs", "2000", "--clients", "4",
      "--fpga_devices", "2", "--classes", "8,3,1",
      "--sim_mode", "analytical", "--sim_cache", "1", "--xcheck", "1",
      "--sim_cache_warmup", "1"],
     EXT_SERVICE_METRICS + ["sim.cache.hits", "sim.cache.misses",
                            "sim.cache.entries", "sim.cache.bytes",
                            "sim.analytical.error_pct"],
     ["sim_mode", "sim_cache", "sim_cache_warmup", "xcheck", "affinity"]),
    # SLO-aware admission control (svc/admission.h): the run must publish
    # the svc.adm.*/svc.slo.* account, the per-class slo_* attainment rows
    # and the "admission" result row; deterministic mode additionally
    # proves zero admitted-then-missed (the binary exits non-zero
    # otherwise, which the returncode check above already enforces).
    ("ext_service_admission", "ext_service",
     ["--json", "--jobs", "2000", "--clients", "4",
      "--fpga_devices", "2", "--classes", "8,3,1",
      "--sim_mode", "analytical", "--sim_cache", "1",
      "--deterministic", "1", "--rate", "16000",
      "--admission", "1", "--slo", "0.5,2,8"],
     EXT_SERVICE_METRICS + ["svc.adm.considered", "svc.adm.admitted",
                            "svc.adm.rejected.slo",
                            "svc.adm.rejected.deadline",
                            "svc.adm.predicted_us",
                            "svc.slo.rejected.interactive",
                            "svc.slo.rejected.batch",
                            "svc.slo.rejected.besteffort",
                            "svc.slo.pressure",
                            "svc.slo.recommended_worker_delta",
                            "svc.slo.recommended_device_delta",
                            "svc.adm.correction.cpu.small",
                            "svc.adm.correction.fpga.large"],
     ["sim_mode", "sim_cache", "admission", "slo_seconds", "autoscale",
      "max_workers"]),
    # The cluster bench (docs/distributed.md): shard-routed federation of
    # service nodes, migration off ...
    ("ext_cluster", "ext_cluster",
     ["--json", "--jobs", "600", "--clients", "4", "--nodes", "2"],
     EXT_CLUSTER_METRICS,
     ["nodes", "buckets", "keys", "zipf", "migration", "rebalance_every",
      "rebalance_top_k", "link_gbs", "sim_mode"]),
    # ... and migration on under a hot-key workload: the rebalance cadence
    # must have fired and every epoch must trace to the migration log.
    ("ext_cluster_migration", "ext_cluster",
     ["--json", "--jobs", "600", "--clients", "4", "--nodes", "4",
      "--zipf", "1.2", "--migration", "on", "--rebalance-every", "100"],
     EXT_CLUSTER_METRICS,
     ["nodes", "buckets", "keys", "zipf", "migration", "rebalance_every",
      "rebalance_top_k", "link_gbs", "sim_mode"]),
    # The streaming store (docs/streaming.md): drifting-Zipf ingest with
    # online repartitioning on ...
    ("ext_stream", "ext_stream",
     ["--json", "--ops", "2000", "--clients", "3"],
     EXT_STREAM_METRICS_ON, EXT_STREAM_CONFIG_KEYS),
    # ... and the A/B control arm with repartitioning off: same envelope,
    # zero rebalance jobs, and the key audit must still hold.
    ("ext_stream_off", "ext_stream",
     ["--json", "--ops", "2000", "--clients", "3", "--repartition", "off"],
     EXT_STREAM_METRICS, EXT_STREAM_CONFIG_KEYS),
]

# Result-object keys ext_service must report per priority class and per
# device (the per-class latency percentiles and the utilization mix).
EXT_SERVICE_RESULT_KEYS = [
    "class_interactive", "class_batch", "class_besteffort",
    "device_0", "device_1",
]

HISTOGRAM_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p99"]


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(name: str, doc: dict, expected_metrics,
             expected_config=()) -> None:
    for key in ENVELOPE_KEYS:
        if key not in doc:
            fail(f"{name}: envelope key '{key}' missing")
    if doc["schema"] != "fpart.obs.v1":
        fail(f"{name}: schema is {doc['schema']!r}, not 'fpart.obs.v1'")
    if not isinstance(doc["config"], dict) or not doc["config"]:
        fail(f"{name}: config must be a non-empty object")
    if not isinstance(doc["results"], dict) or not doc["results"]:
        fail(f"{name}: results must be a non-empty object")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(f"{name}: metrics must be an object")
    for mname, m in metrics.items():
        if "type" not in m or "unit" not in m:
            fail(f"{name}: metric {mname} lacks type/unit")
        if m["type"] in ("counter",) and "value" not in m:
            fail(f"{name}: counter {mname} lacks value")
        if m["type"] == "histogram":
            for field in HISTOGRAM_FIELDS:
                if field not in m:
                    fail(f"{name}: histogram {mname} lacks {field}")
    for mname in expected_metrics:
        if mname not in metrics:
            fail(f"{name}: documented metric '{mname}' missing "
                 f"(have: {sorted(metrics)})")
    for ckey in expected_config:
        if ckey not in doc["config"]:
            fail(f"{name}: documented config key '{ckey}' missing "
                 f"(have: {sorted(doc['config'])})")
    # Affinity and hw.* validation applies to every document that carries
    # them, whichever bench emitted it.
    affinity = doc["config"].get("affinity")
    if affinity is not None and affinity not in VALID_AFFINITY:
        fail(f"{name}: unknown affinity value {affinity!r} "
             f"(expected one of {sorted(VALID_AFFINITY)})")
    hw_cfg = doc["config"].get("hw_counters")
    if hw_cfg is not None and hw_cfg not in ("available", "unavailable"):
        fail(f"{name}: hw_counters must be available|unavailable, "
             f"got {hw_cfg!r}")
    hw_fields = 0
    for rname, robj in doc["results"].items():
        if not isinstance(robj, dict):
            continue
        for fkey, fval in robj.items():
            if not fkey.startswith("hw."):
                continue
            if not HW_KEY_RE.match(fkey):
                fail(f"{name}: result {rname} has malformed hw key "
                     f"'{fkey}'")
            if not isinstance(fval, (int, float)) or fval < 0:
                fail(f"{name}: result {rname} hw key '{fkey}' must be a "
                     f"non-negative number, got {fval!r}")
            hw_fields += 1
    for mname in metrics:
        if mname.startswith("hw.") and not HW_KEY_RE.match(mname):
            fail(f"{name}: malformed hw metric name '{mname}'")
    # Counters absent when the PMU is absent, present when it is not —
    # never half-emitted.
    if hw_cfg == "unavailable" and hw_fields > 0:
        fail(f"{name}: hw_counters=unavailable but {hw_fields} hw.* "
             f"result fields present")
    if name.startswith("ext_service"):
        for rkey in EXT_SERVICE_RESULT_KEYS:
            if rkey not in doc["results"]:
                fail(f"{name}: result object '{rkey}' missing "
                     f"(have: {sorted(doc['results'])})")
        for cls in ("interactive", "batch", "besteffort"):
            obj = doc["results"][f"class_{cls}"]
            for field in ("count", "p50_us", "p95_us", "p99_us",
                          "weight_share"):
                if field not in obj:
                    fail(f"{name}: class_{cls} lacks '{field}'")
        if doc["config"].get("sim_cache_warmup") == 1:
            warm = doc["results"].get("warmup")
            if not isinstance(warm, dict) or "runs" not in warm:
                fail(f"{name}: sim_cache_warmup=1 but no warmup result "
                     f"row with a 'runs' field")
        if doc["config"].get("admission") == 1:
            adm = doc["results"].get("admission")
            if not isinstance(adm, dict):
                fail(f"{name}: admission=1 but no 'admission' result row")
            for field in ("considered", "admitted", "rejected",
                          "rejected_slo", "rejected_deadline",
                          "missed_after_admit"):
                if field not in adm:
                    fail(f"{name}: admission row lacks '{field}'")
            # The tentpole invariant: an admitted job never finishes past
            # the budget its (deterministic-mode exact) prediction fit.
            if doc["config"].get("deterministic") == 1 and \
                    adm["missed_after_admit"] != 0:
                fail(f"{name}: {adm['missed_after_admit']} admitted jobs "
                     f"missed their budget in deterministic mode")
            if adm["considered"] < adm["admitted"]:
                fail(f"{name}: considered {adm['considered']} < admitted "
                     f"{adm['admitted']}")
            for cls in ("interactive", "batch", "besteffort"):
                row = doc["results"].get(f"slo_{cls}")
                if not isinstance(row, dict):
                    fail(f"{name}: admission=1 but no 'slo_{cls}' row")
                for field in ("slo_us", "completed", "within_slo",
                              "attainment", "p99_us", "rejected"):
                    if field not in row:
                        fail(f"{name}: slo_{cls} lacks '{field}'")
    if name.startswith("ext_cluster"):
        for rkey, fields in EXT_CLUSTER_RESULT_KEYS.items():
            obj = doc["results"].get(rkey)
            if not isinstance(obj, dict):
                fail(f"{name}: result object '{rkey}' missing "
                     f"(have: {sorted(doc['results'])})")
            for field in fields:
                if field not in obj:
                    fail(f"{name}: result '{rkey}' lacks '{field}'")
        for n in range(int(doc["config"]["nodes"])):
            obj = doc["results"].get(f"node_{n}")
            if not isinstance(obj, dict):
                fail(f"{name}: per-node result 'node_{n}' missing")
            for field in ("jobs", "remote_jobs", "load",
                          "virtual_makespan_seconds"):
                if field not in obj:
                    fail(f"{name}: node_{n} lacks '{field}'")
        if "determinism_hash" not in doc["results"]:
            fail(f"{name}: determinism_hash missing")
        acct = doc["results"]["jobs_accounted"]
        if acct["lost"] != 0 or acct["epoch_violations"] != 0:
            fail(f"{name}: {acct['lost']} lost jobs, "
                 f"{acct['epoch_violations']} epoch violations")
        mig = doc["results"]["migration"]
        if mig["epoch"] != mig["migrations"]:
            fail(f"{name}: epoch {mig['epoch']} != migrations "
                 f"{mig['migrations']} (one migration == one epoch)")
        if doc["config"].get("migration") == 1 and mig["rebalances"] == 0:
            fail(f"{name}: migration on but no rebalance scan ran")
    if name.startswith("ext_stream"):
        for rkey, fields in EXT_STREAM_RESULT_KEYS.items():
            obj = doc["results"].get(rkey)
            if not isinstance(obj, dict):
                fail(f"{name}: result object '{rkey}' missing "
                     f"(have: {sorted(doc['results'])})")
            for field in fields:
                if field not in obj:
                    fail(f"{name}: result '{rkey}' lacks '{field}'")
        for w in range(int(doc["config"]["windows"])):
            obj = doc["results"].get(f"window_{w:02d}")
            if not isinstance(obj, dict):
                fail(f"{name}: time-series row 'window_{w:02d}' missing")
            for field in ("op_lo", "reads", "scan_p50", "scan_p99",
                          "p99_us"):
                if field not in obj:
                    fail(f"{name}: window_{w:02d} lacks '{field}'")
        acct = doc["results"]["keys_accounted"]
        if acct["lost"] != 0 or acct["duplicated"] != 0:
            fail(f"{name}: {acct['lost']} lost / {acct['duplicated']} "
                 f"duplicated keys across epoch flips")
        if acct["checksum_ok"] != 1:
            fail(f"{name}: key fingerprint checksum mismatch")
        if doc["config"].get("deterministic") == 1 and \
                "determinism_hash" not in doc["results"]:
            fail(f"{name}: deterministic run without determinism_hash")
        if doc["config"].get("repartition") == 0 and \
                doc["results"]["rebalance"]["jobs"] != 0:
            fail(f"{name}: repartition off but rebalance jobs ran")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--bindir", default="build/bench")
    args = parser.parse_args()

    env = dict(os.environ)
    # Small join workload so the check stays fast.
    env.setdefault("FPART_SCALE", "0.0625")

    checked = 0
    for case, binary, argv, expected, expected_config in CASES:
        path = os.path.join(args.bindir, binary)
        if not os.path.exists(path):
            fail(f"{path} not built")
        proc = subprocess.run([path] + argv, capture_output=True, text=True,
                              env=env, timeout=600)
        if proc.returncode != 0:
            fail(f"{case} exited {proc.returncode}: {proc.stderr}")
        try:
            doc = json.loads(proc.stdout)
        except ValueError as e:
            fail(f"{case}: output is not valid JSON ({e}):\n{proc.stdout}")
        validate(case, doc, expected, expected_config)
        checked += 1
    print(f"OK: {checked} bench JSON documents match fpart.obs.v1")
    return 0


if __name__ == "__main__":
    sys.exit(main())
