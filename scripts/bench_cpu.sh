#!/usr/bin/env sh
# Measure the CPU fast paths (fused single-hash SIMD partitioning vs the
# scalar two-pass baseline, plus the downstream radix join) and the
# affinity on/off thread-scaling sweeps (fig04 partitioning, fig11 join;
# each row has affinity_none vs affinity_<policy> variants with hw.*
# cache/TLB counter deltas when the host exposes a PMU), and record the
# result as BENCH_cpu.json at the repo root. The partition config is the
# fig04 radix setup: fanout 8192, Tuple8. All nested documents follow the
# fpart.obs.v1 schema (docs/observability.md); flatten with
# scripts/bench_to_csv.py.
# Usage: scripts/bench_cpu.sh [build_dir] [n_tuples]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
n_tuples=${2:-16000000}

for target in micro_partition ext_join_algorithms fig04_cpu_partitioning \
              fig11_threads; do
  if [ ! -x "$build_dir/bench/$target" ]; then
    echo "building $target in $build_dir ..." >&2
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
    cmake --build "$build_dir" --target "$target" -j >&2
  fi
done

out="$repo_root/BENCH_cpu.json"
{
  printf '{\n"partition":\n'
  "$build_dir/bench/micro_partition" --json "$n_tuples"
  printf ',\n"join":\n'
  "$build_dir/bench/ext_join_algorithms" --json
  printf ',\n"fig04_affinity":\n'
  "$build_dir/bench/fig04_cpu_partitioning" --json "$n_tuples"
  printf ',\n"fig11_affinity":\n'
  "$build_dir/bench/fig11_threads" --json
  printf '}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
