#!/usr/bin/env sh
# Measure the CPU fast paths (fused single-hash SIMD partitioning vs the
# scalar two-pass baseline, plus the downstream radix join) and record the
# result as BENCH_cpu.json at the repo root. The partition config is the
# fig04 radix setup: fanout 8192, Tuple8, one thread. Both nested documents
# follow the fpart.obs.v1 schema (docs/observability.md); flatten with
# scripts/bench_to_csv.py.
# Usage: scripts/bench_cpu.sh [build_dir] [n_tuples]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
n_tuples=${2:-16000000}

for target in micro_partition ext_join_algorithms; do
  if [ ! -x "$build_dir/bench/$target" ]; then
    echo "building $target in $build_dir ..." >&2
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
    cmake --build "$build_dir" --target "$target" -j >&2
  fi
done

out="$repo_root/BENCH_cpu.json"
{
  printf '{\n"partition":\n'
  "$build_dir/bench/micro_partition" --json "$n_tuples"
  printf ',\n"join":\n'
  "$build_dir/bench/ext_join_algorithms" --json
  printf '}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
