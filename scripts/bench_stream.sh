#!/usr/bin/env sh
# Drive the continuous-ingest store (bench/ext_stream: drifting-Zipf
# ingest + point reads with online split/merge repartitioning,
# docs/streaming.md) and record the results as BENCH_stream.json at the
# repo root. The document is a JSON object wrapping one fpart.obs.v1
# envelope per configuration:
#   drift_repartition_off/on  the headline A/B — Zipf theta 0.5 -> 1.2
#                             over the middle of the run, reads served
#                             throughout; `phase_post.scan_p99` is the
#                             gated comparison, `window_NN` rows are the
#                             time series (bench_to_csv.py --series)
#   drift_rotate_on           same drift plus a mid-run hot-set rotation
#   skew_overprovisioned      steady Zipf 1.2 into 2^7 initial buckets —
#                             the detector splits the hot range *and*
#                             merges cold buddies back down
#   live                      wall-clock arm (--deterministic 0): real
#                             threads racing ingest/reads/repartition,
#                             sustained tuples_per_sec + p99_us
# Flatten with scripts/bench_to_csv.py (it unpacks wrapper objects).
# Usage: scripts/bench_stream.sh [build_dir] [ops] [extra flags...]
# e.g. scripts/bench_stream.sh build 20000 --sim_mode analytical
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
ops=${2:-20000}
[ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift

if [ ! -x "$build_dir/bench/ext_stream" ]; then
  echo "building ext_stream in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target ext_stream -j >&2
fi

out="$repo_root/BENCH_stream.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The A/B pair differs only in --repartition; both replay the identical
# op stream (same seed), so the post-shift p99 gap is attributable to the
# split/merge machinery alone. Caller flags come last and win.
for r in off on; do
  "$build_dir/bench/ext_stream" --json --ops "$ops" --repartition "$r" \
    "$@" > "$tmp/drift_$r.json"
done
"$build_dir/bench/ext_stream" --json --ops "$ops" --repartition on \
  --rotate-every $((ops / 2)) "$@" > "$tmp/rotate.json"
"$build_dir/bench/ext_stream" --json --ops "$ops" --repartition on \
  --initial-depth 7 --theta0 1.2 --theta1 1.2 "$@" > "$tmp/overprov.json"
"$build_dir/bench/ext_stream" --json --ops "$ops" --repartition on \
  --deterministic 0 "$@" > "$tmp/live.json"

{
  printf '{\n"drift_repartition_off": '
  cat "$tmp/drift_off.json"
  printf ',\n"drift_repartition_on": '
  cat "$tmp/drift_on.json"
  printf ',\n"drift_rotate_on": '
  cat "$tmp/rotate.json"
  printf ',\n"skew_overprovisioned": '
  cat "$tmp/overprov.json"
  printf ',\n"live": '
  cat "$tmp/live.json"
  printf '}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
