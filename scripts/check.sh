#!/usr/bin/env sh
# Full correctness gate for the CPU fast paths: builds and runs the test
# suite under the default (baseline-ISA) flags, under ASan+UBSan, and with
# -march=native, and repeats the suite with FPART_SIMD forcing each
# dispatch fallback tier — so the scalar, AVX2 and (where present) AVX-512
# paths are all exercised regardless of the build host.
#
# The tsan suite builds with ThreadSanitizer and runs the concurrency-
# heavy binaries (svc_test, svc_property_test, svc_admission_test,
# cluster_test, stream_test, common_test, obs_test, sim_analytical_test's
# concurrent sim-cache races, plus ext_service, ext_cluster and ext_stream
# smoke replays) directly — the full ctest matrix is too slow under TSan
# to be a useful gate.
#
# Each run_suite pass also re-runs the `svc_admission` ctest label on its
# own: the label groups the SLO-admission and property tests, and the
# dedicated pass keeps "did admission regress?" answerable from the log
# without digging through the full matrix.
#
# Usage: scripts/check.sh [jobs] [suite...]
#   suite: any of default, asan, tsan, native (default/asan/native when
#   omitted; tsan is opt-in locally, always on in CI).
#   CI runs one suite per matrix job: scripts/check.sh "" default
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
jobs=${1:-}
[ -n "$jobs" ] || jobs=$(nproc 2>/dev/null || echo 4)
[ $# -gt 0 ] && shift
suites=${*:-"default asan native"}

run_suite() {
  build_dir=$1
  shift
  echo "=== configure $build_dir ($*) ===" >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release \
    -DFPART_BUILD_BENCHMARKS=OFF -DFPART_BUILD_EXAMPLES=OFF "$@" >&2
  cmake --build "$build_dir" -j "$jobs" >&2
  for level in default scalar avx2; do
    echo "=== ctest $build_dir [FPART_SIMD=$level] ===" >&2
    if [ "$level" = default ]; then
      (cd "$build_dir" && ctest --output-on-failure -j "$jobs")
    else
      (cd "$build_dir" && FPART_SIMD=$level ctest --output-on-failure \
        -j "$jobs")
    fi
  done
  echo "=== ctest $build_dir [-L svc_admission] ===" >&2
  (cd "$build_dir" && ctest --output-on-failure -j "$jobs" -L svc_admission)
}

run_tsan_suite() {
  build_dir=$1
  echo "=== configure $build_dir (-DFPART_SANITIZE_THREAD=ON) ===" >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFPART_SANITIZE_THREAD=ON -DFPART_BUILD_BENCHMARKS=ON \
    -DFPART_BUILD_EXAMPLES=OFF >&2
  cmake --build "$build_dir" -j "$jobs" \
    --target svc_test svc_property_test svc_admission_test cluster_test \
    stream_test common_test obs_test sim_analytical_test ext_service \
    ext_cluster ext_stream >&2
  for bin in svc_test svc_property_test svc_admission_test cluster_test \
             stream_test common_test obs_test; do
    echo "=== tsan $bin ===" >&2
    FPART_SCALE=0.0625 "$build_dir/tests/$bin"
  done
  echo "=== tsan sim-cache concurrency ===" >&2
  "$build_dir/tests/sim_analytical_test" \
    --gtest_filter='SimAnalyticalTest.Cache*:SimAnalyticalTest.Concurrent*'
  echo "=== tsan ext_service smoke (2-device pool) ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_service" --json \
    --jobs 1500 --clients 8 --workers 4 --fpga_devices 2 > /dev/null
  echo "=== tsan ext_service analytical+cache smoke ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_service" --json \
    --jobs 1500 --clients 8 --workers 4 --fpga_devices 2 \
    --sim_mode analytical --sim_cache 1 --xcheck 0.05 > /dev/null
  echo "=== tsan ext_service pinned-workers + warmup smoke ===" >&2
  FPART_SCALE=0.0625 FPART_AFFINITY=compact \
    "$build_dir/bench/ext_service" --json \
    --jobs 1500 --clients 8 --workers 4 --fpga_devices 2 \
    --sim_mode analytical --sim_cache 1 --sim_cache_warmup 1 > /dev/null
  echo "=== tsan ext_service admission+autoscale smoke ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_service" --json \
    --jobs 1500 --clients 8 --workers 4 --fpga_devices 2 \
    --admission 1 --slo 0.5,2,8 --autoscale 1 --max_workers 6 > /dev/null
  echo "=== tsan ext_cluster smoke (4 nodes, migration on) ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_cluster" --json \
    --jobs 1000 --clients 4 --nodes 4 --zipf 1.2 \
    --migration on --rebalance-every 200 > /dev/null
  echo "=== tsan ext_cluster live-mode smoke ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_cluster" --json \
    --jobs 600 --clients 4 --nodes 2 --deterministic 0 \
    --rate 20000 > /dev/null
  echo "=== tsan ext_stream deterministic smoke (sequenced replay) ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_stream" --json \
    --ops 1500 --clients 4 --workers 2 > /dev/null
  echo "=== tsan ext_stream live-mode smoke (raced repartition) ===" >&2
  FPART_SCALE=0.0625 "$build_dir/bench/ext_stream" --json \
    --ops 1500 --clients 4 --workers 2 --deterministic 0 > /dev/null
}

for suite in $suites; do
  case "$suite" in
    default) run_suite "$repo_root/build-check" ;;
    asan)    run_suite "$repo_root/build-check-asan" -DFPART_SANITIZE=ON ;;
    tsan)    run_tsan_suite "$repo_root/build-check-tsan" ;;
    native)  run_suite "$repo_root/build-check-native" -DFPART_MARCH_NATIVE=ON ;;
    *) echo "unknown suite '$suite' (default|asan|tsan|native)" >&2; exit 2 ;;
  esac
done

echo "check.sh: suites passed: $suites"
