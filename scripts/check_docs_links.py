#!/usr/bin/env python3
"""Check that every relative markdown link in docs/ and the top-level .md
files points at a file that exists.

External links (http/https/mailto) are skipped — CI must not depend on the
network. Pure anchors (#section) are skipped too; anchors on relative
links are checked for the file part only.

Usage: python3 scripts/check_docs_links.py [repo_root]
Exit status: 0 when every link resolves, 1 otherwise (each breakage is
printed as file:line: message).
"""
import glob
import os
import re
import sys

# [text](target) — excluding images' extra '!' matters not for existence.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(md_path: str, repo_root: str):
    errors = []
    base = os.path.dirname(md_path)
    in_code_fence = False
    for lineno, line in enumerate(
            open(md_path, encoding="utf-8", errors="replace"), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(
                os.path.join(repo_root, path[1:]) if path.startswith("/")
                else os.path.join(base, path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md_path, repo_root)
                errors.append(f"{rel}:{lineno}: broken link '{target}' "
                              f"(resolved to {resolved})")
    return errors


def main() -> int:
    repo_root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1 else
        os.path.join(os.path.dirname(__file__), ".."))
    md_files = sorted(
        glob.glob(os.path.join(repo_root, "*.md")) +
        glob.glob(os.path.join(repo_root, "docs", "**", "*.md"),
                  recursive=True))
    if not md_files:
        print("no markdown files found", file=sys.stderr)
        return 1
    errors = []
    for md in md_files:
        errors.extend(check_file(md, repo_root))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(md_files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
