#!/usr/bin/env python3
"""Flatten bench outputs into CSV files for plotting.

Two input formats are recognized automatically:

* fpart.obs.v1 JSON (BENCH_cpu.json / BENCH_sim.json, or any bench's
  `--json` output; see docs/observability.md). Every document becomes
  <outdir>/<benchmark>.csv with the columns

      section,name,field,value,threads,affinity

  where section is config/results/metrics, name the knob / measurement /
  metric name, and field the sub-field (e.g. "seconds", "p99",
  "hw.scatter.llc_misses", or "" for scalars). For the affinity-sweep
  result rows (named like "radix_t4_affinity_numa-local") the trailing
  threads/affinity columns carry the decomposed thread count and pinning
  policy so plots can pivot on them directly; they are empty elsewhere.
  Wrapper objects that nest several documents (bench_cpu.sh emits
  {"partition": {...}, "join": {...}, "fig04_affinity": {...}, ...}) are
  unpacked, each under its wrapper key (so BENCH_stream.json's
  drift_repartition_on/off arms land in separate files).

  Documents carrying time-bucketed result rows named "window_NN" (the
  streaming bench's read-latency series, docs/streaming.md) additionally
  get a pivoted <outdir>/<label>_series.csv with one row per window —
  columns window,op_lo,reads,scan_p50,scan_p99,p99_us — ready to plot
  p99-over-time without any reshaping.

* Legacy text tables from `for b in build/bench/*; do $b; done`: each
  `======== <name>` section is written to <outdir>/<name>.txt verbatim and
  table-looking lines are normalized into <outdir>/<name>.csv.

Usage:
    python3 scripts/bench_to_csv.py BENCH_cpu.json [outdir]
    python3 scripts/bench_to_csv.py bench_output.txt [outdir]
"""
import json
import os
import re
import sys


def normalize_row(line: str):
    """Split a printf-table row into fields; None if not table-like."""
    stripped = line.strip()
    if not stripped or stripped.startswith(("===", "---", "(", "Expected")):
        return None
    if "|" in stripped:
        cells = []
        for part in stripped.split("|"):
            cells.extend(re.split(r"\s{2,}", part.strip()))
        cells = [c for c in cells if c]
        return cells if len(cells) >= 2 else None
    cells = re.split(r"\s{2,}", stripped)
    return cells if len(cells) >= 3 else None


def iter_obs_documents(doc):
    """Yield (label, document) for every fpart.obs.v1 document in `doc`."""
    if not isinstance(doc, dict):
        return
    if doc.get("schema") == "fpart.obs.v1":
        yield doc.get("benchmark", "bench"), doc
        return
    for key, value in doc.items():
        if isinstance(value, dict) and value.get("schema") == "fpart.obs.v1":
            # The wrapper key, not the benchmark name: several arms of one
            # bench (repartition on/off, n1/n2/n4) must not clobber each
            # other's files.
            yield key, value


# Affinity-sweep row names: "<variant>_t<threads>_affinity_<policy>".
AFFINITY_ROW_RE = re.compile(r"_t(\d+)_affinity_([a-z_-]+)$")

# Streaming time-series row names: "window_00", "window_01", ...
WINDOW_ROW_RE = re.compile(r"^window_(\d+)$")

SERIES_FIELDS = ["op_lo", "reads", "scan_p50", "scan_p99", "p99_us"]


def write_series_csv(label, doc, outdir):
    """Pivot a doc's window_NN result rows into <label>_series.csv; returns
    True if the doc carried a time series."""
    windows = []
    for name, value in doc.get("results", {}).items():
        m = WINDOW_ROW_RE.match(name)
        if m and isinstance(value, dict):
            windows.append((int(m.group(1)), value))
    if not windows:
        return False
    windows.sort()
    with open(os.path.join(outdir, f"{label}_series.csv"), "w") as f:
        f.write("window," + ",".join(SERIES_FIELDS) + "\n")
        for idx, row in windows:
            f.write(",".join([str(idx)] +
                             [str(row.get(field, "")) for field in
                              SERIES_FIELDS]) + "\n")
    return True


def flatten_obs(doc):
    """Yield (section, name, field, value, threads, affinity) rows of one
    fpart.obs.v1 doc. threads/affinity are decomposed from affinity-sweep
    result row names and empty everywhere else."""
    for name, value in doc.get("config", {}).items():
        yield "config", name, "", value, "", ""
    for name, value in doc.get("results", {}).items():
        m = AFFINITY_ROW_RE.search(name)
        threads = m.group(1) if m else ""
        affinity = m.group(2) if m else ""
        if isinstance(value, dict):
            for field, v in value.items():
                yield "results", name, field, v, threads, affinity
        else:
            yield "results", name, "", value, threads, affinity
    for name, value in doc.get("metrics", {}).items():
        if not isinstance(value, dict):
            continue
        for field, v in value.items():
            if field in ("type", "unit"):
                continue
            yield "metrics", name, field, v, "", ""


def write_obs_csv(docs, outdir):
    written = 0
    for label, doc in docs:
        path = os.path.join(outdir, f"{label}.csv")
        with open(path, "w") as f:
            f.write("section,name,field,value,threads,affinity\n")
            for section, name, field, value, threads, aff in flatten_obs(doc):
                f.write(f"{section},{name},{field},{value},{threads},{aff}\n")
        written += 1
        if write_series_csv(label, doc, outdir):
            written += 1
    return written


def write_text_sections(src, outdir):
    sections = {}
    name = "preamble"
    for line in open(src, encoding="utf-8", errors="replace"):
        m = re.match(r"^=+\s*(\S+)", line)
        if m and line.startswith("========"):
            name = m.group(1)
            sections.setdefault(name, [])
            continue
        sections.setdefault(name, []).append(line)

    written = 0
    for name, lines in sections.items():
        if name == "preamble" and not any(l.strip() for l in lines):
            continue
        with open(os.path.join(outdir, f"{name}.txt"), "w") as f:
            f.writelines(lines)
        rows = [r for r in (normalize_row(l) for l in lines) if r]
        if rows:
            width = max(len(r) for r in rows)
            with open(os.path.join(outdir, f"{name}.csv"), "w") as f:
                for r in rows:
                    f.write(",".join(c.replace(",", ";") for c in r +
                                     [""] * (width - len(r))) + "\n")
        written += 1
    return written


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    src = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    os.makedirs(outdir, exist_ok=True)

    text = open(src, encoding="utf-8", errors="replace").read()
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None

    if doc is not None:
        docs = list(iter_obs_documents(doc))
        if not docs:
            print(f"{src}: JSON but no fpart.obs.v1 documents found",
                  file=sys.stderr)
            return 1
        written = write_obs_csv(docs, outdir)
    else:
        written = write_text_sections(src, outdir)
    print(f"wrote {written} sections to {outdir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
