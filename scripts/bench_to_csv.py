#!/usr/bin/env python3
"""Split a bench_output.txt produced by `for b in build/bench/*; do $b; done`
into one CSV-ish .txt per experiment, for plotting.

Usage:
    python3 scripts/bench_to_csv.py bench_output.txt [outdir]

Each `======== <name>` section is written to <outdir>/<name>.txt verbatim;
table-looking lines (those containing '|' or runs of 2+ spaces between
fields) are additionally normalized into <outdir>/<name>.csv with
comma-separated fields.
"""
import os
import re
import sys


def normalize_row(line: str):
    """Split a printf-table row into fields; None if not table-like."""
    stripped = line.strip()
    if not stripped or stripped.startswith(("===", "---", "(", "Expected")):
        return None
    if "|" in stripped:
        cells = []
        for part in stripped.split("|"):
            cells.extend(re.split(r"\s{2,}", part.strip()))
        cells = [c for c in cells if c]
        return cells if len(cells) >= 2 else None
    cells = re.split(r"\s{2,}", stripped)
    return cells if len(cells) >= 3 else None


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    src = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    os.makedirs(outdir, exist_ok=True)

    sections = {}
    name = "preamble"
    for line in open(src, encoding="utf-8", errors="replace"):
        m = re.match(r"^=+\s*(\S+)", line)
        if m and line.startswith("========"):
            name = m.group(1)
            sections.setdefault(name, [])
            continue
        sections.setdefault(name, []).append(line)

    written = 0
    for name, lines in sections.items():
        if name == "preamble" and not any(l.strip() for l in lines):
            continue
        with open(os.path.join(outdir, f"{name}.txt"), "w") as f:
            f.writelines(lines)
        rows = [r for r in (normalize_row(l) for l in lines) if r]
        if rows:
            width = max(len(r) for r in rows)
            with open(os.path.join(outdir, f"{name}.csv"), "w") as f:
                for r in rows:
                    f.write(",".join(c.replace(",", ";") for c in r +
                                     [""] * (width - len(r))) + "\n")
        written += 1
    print(f"wrote {written} sections to {outdir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
