#!/usr/bin/env sh
# Replay a closed-loop multi-tenant job stream through the svc scheduler
# (bench/ext_service: Poisson arrivals, Zipf job sizes, adaptive CPU/FPGA
# placement) and record the result as BENCH_service.json at the repo root.
# The document is a single fpart.obs.v1 envelope (docs/observability.md)
# with tail latency percentiles, the placement mix, and the svc.* metric
# snapshot; flatten with scripts/bench_to_csv.py.
# Usage: scripts/bench_service.sh [build_dir] [jobs] [clients] [devices]
#                                 [extra ext_service flags...]
# e.g. scripts/bench_service.sh build 10000 8 2 \
#        --sim_mode analytical --sim_cache 1 --xcheck 0.01
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=${2:-10000}
clients=${3:-8}
devices=${4:-1}
[ $# -gt 0 ] && shift; [ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift; [ $# -gt 0 ] && shift

if [ ! -x "$build_dir/bench/ext_service" ]; then
  echo "building ext_service in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target ext_service -j >&2
fi

out="$repo_root/BENCH_service.json"
"$build_dir/bench/ext_service" --json --jobs "$jobs" --clients "$clients" \
  --fpga_devices "$devices" "$@" > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
