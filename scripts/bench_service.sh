#!/usr/bin/env sh
# Replay a closed-loop multi-tenant job stream through the svc scheduler
# (bench/ext_service: Poisson arrivals, Zipf job sizes, adaptive CPU/FPGA
# placement) and record the results as BENCH_service.json at the repo
# root. The document is a JSON object wrapping one fpart.obs.v1 envelope
# per configuration (docs/observability.md):
#   base                  the historical default run ([jobs] [clients]
#                         [devices] and any extra flags)
#   sat_r<rate>_q<queue>  100k-job saturation sweep on the analytical
#                         simulator with memoized device runs: offered
#                         load (virtual arrivals/s) x admission bound.
#                         The shed/completed split and the per-class p99s
#                         show where admission control starts paying.
#   adm_r<rate>_q8192     the same offered loads with SLO-aware admission
#                         control on (--admission 1 --slo 0.5,2,8): the
#                         "admission" result row records the
#                         considered/admitted/rejected split, and
#                         missed_after_admit must be 0 — the controller's
#                         deterministic predictions are exact, so an
#                         admitted job never finishes past its budget.
#                         Compare against sat_r<rate>_q8192 (admission
#                         off) for the attainment-vs-throughput trade.
# Flatten with scripts/bench_to_csv.py (it unpacks wrapper objects).
# Usage: scripts/bench_service.sh [build_dir] [jobs] [clients] [devices]
#                                 [extra ext_service flags...]
# e.g. scripts/bench_service.sh build 10000 8 2 \
#        --sim_mode analytical --sim_cache 1 --xcheck 0.01
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
jobs=${2:-10000}
clients=${3:-8}
devices=${4:-1}
[ $# -gt 0 ] && shift; [ $# -gt 0 ] && shift
[ $# -gt 0 ] && shift; [ $# -gt 0 ] && shift

if [ ! -x "$build_dir/bench/ext_service" ]; then
  echo "building ext_service in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >&2
  cmake --build "$build_dir" --target ext_service -j >&2
fi

out="$repo_root/BENCH_service.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$build_dir/bench/ext_service" --json --jobs "$jobs" --clients "$clients" \
  --fpga_devices "$devices" "$@" > "$tmp/base.json"

# Saturation sweep: 100k jobs per cell is cheap on the analytical backend
# with the sim cache warmed — the device runs memoize per job shape.
sat_jobs=100000
sweep_keys=""
for rate in 4000 16000 64000; do
  for queue in 256 8192; do
    "$build_dir/bench/ext_service" --json --jobs "$sat_jobs" \
      --clients "$clients" --fpga_devices 2 \
      --sim_mode analytical --sim_cache 1 --sim_cache_warmup 1 \
      --rate "$rate" --queue "$queue" "$@" \
      > "$tmp/sat_r${rate}_q${queue}.json"
    sweep_keys="$sweep_keys sat_r${rate}_q${queue}"
  done
done

# Admission A/B at the same offered loads: wide queue so capacity shedding
# stays out of the picture and the SLO controller is the only gate.
for rate in 4000 16000 64000; do
  "$build_dir/bench/ext_service" --json --jobs "$sat_jobs" \
    --clients "$clients" --fpga_devices 2 \
    --sim_mode analytical --sim_cache 1 --sim_cache_warmup 1 \
    --rate "$rate" --queue 8192 \
    --admission 1 --slo 0.5,2,8 "$@" \
    > "$tmp/adm_r${rate}_q8192.json"
  sweep_keys="$sweep_keys adm_r${rate}_q8192"
done

{
  printf '{\n"base": '
  cat "$tmp/base.json"
  for key in $sweep_keys; do
    printf ',\n"%s": ' "$key"
    cat "$tmp/$key.json"
  done
  printf '}\n'
} > "$out.tmp"
mv "$out.tmp" "$out"
cat "$out"
