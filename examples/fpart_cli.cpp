// fpart_cli: command-line driver for the library — partition, join, or
// query the analytical model without writing any code.
//
//   fpart_cli partition --engine=fpga --mode=hist --layout=rid \
//             --hash=murmur --fanout=8192 --n=8000000 --dist=random
//   fpart_cli join --workload=A --scale=0.01 --threads=4 --zipf=0.75
//   fpart_cli model --n=128000000 --width=8
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/fpart.h"

namespace {

using namespace fpart;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "1";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string Flag(const std::map<std::string, std::string>& flags,
                 const char* name, const char* def) {
  auto it = flags.find(name);
  return it == flags.end() ? def : it->second;
}

HashMethod ParseHash(const std::string& s) {
  if (s == "radix") return HashMethod::kRadix;
  if (s == "multiplicative") return HashMethod::kMultiplicative;
  if (s == "crc32") return HashMethod::kCrc32;
  return HashMethod::kMurmur;
}

KeyDistribution ParseDist(const std::string& s) {
  if (s == "linear") return KeyDistribution::kLinear;
  if (s == "grid") return KeyDistribution::kGrid;
  if (s == "rev-grid") return KeyDistribution::kReverseGrid;
  return KeyDistribution::kRandom;
}

int CmdPartition(const std::map<std::string, std::string>& flags) {
  const size_t n = std::strtoull(Flag(flags, "n", "8000000").c_str(),
                                 nullptr, 10);
  PartitionRequest request;
  request.engine =
      Flag(flags, "engine", "fpga") == "cpu" ? Engine::kCpu : Engine::kFpgaSim;
  request.fanout = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "fanout", "8192").c_str(), nullptr, 10));
  request.hash = ParseHash(Flag(flags, "hash", "murmur"));
  request.output_mode =
      Flag(flags, "mode", "pad") == "hist" ? OutputMode::kHist
                                           : OutputMode::kPad;
  request.link = Flag(flags, "link", "qpi") == "raw" ? LinkKind::kRawWrapper
                                                     : LinkKind::kXeonFpga;
  request.num_threads =
      std::strtoull(Flag(flags, "threads", "1").c_str(), nullptr, 10);

  auto rel = GenerateUniqueRelation(n, ParseDist(Flag(flags, "dist",
                                                      "random")));
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }
  auto report = RunPartition(request, *rel);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("engine=%s n=%zu fanout=%u: %.3f ms, %.0f Mtuples/s\n",
              EngineName(request.engine), n, request.fanout,
              report->seconds * 1e3, report->mtuples_per_sec);
  if (request.engine == Engine::kFpgaSim) {
    std::printf("cycles=%llu read_lines=%llu output_lines=%llu "
                "backpressure=%llu dummies=%llu stalls=%llu\n",
                static_cast<unsigned long long>(report->stats.cycles),
                static_cast<unsigned long long>(report->stats.read_lines),
                static_cast<unsigned long long>(report->stats.output_lines),
                static_cast<unsigned long long>(
                    report->stats.backpressure_cycles),
                static_cast<unsigned long long>(report->stats.dummy_tuples),
                static_cast<unsigned long long>(
                    report->stats.internal_stall_cycles));
  }
  return 0;
}

int CmdJoin(const std::map<std::string, std::string>& flags) {
  const std::string w = Flag(flags, "workload", "A");
  WorkloadId id = WorkloadId::kA;
  if (w == "B") id = WorkloadId::kB;
  if (w == "C") id = WorkloadId::kC;
  if (w == "D") id = WorkloadId::kD;
  if (w == "E") id = WorkloadId::kE;
  WorkloadSpec spec = GetWorkloadSpec(
      id, std::strtod(Flag(flags, "scale", "0.01").c_str(), nullptr));
  spec.zipf = std::strtod(Flag(flags, "zipf", "0").c_str(), nullptr);
  auto input = GenerateWorkload(spec);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }
  const size_t threads =
      std::strtoull(Flag(flags, "threads", "1").c_str(), nullptr, 10);
  const uint32_t fanout = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "fanout", "8192").c_str(), nullptr, 10));

  CpuJoinConfig cpu;
  cpu.fanout = fanout;
  cpu.num_threads = threads;
  cpu.hash = ParseHash(Flag(flags, "hash", "radix"));
  auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = fanout;
  hybrid.fpga.hash = HashMethod::kMurmur;
  hybrid.num_threads = threads;
  bool fell_back = false;
  auto hybrid_result =
      HybridJoinWithFallback(hybrid, input->r, input->s, &fell_back);

  std::printf("workload %s |R|=%zu |S|=%zu zipf=%.2f threads=%zu\n",
              spec.name, input->r.size(), input->s.size(), spec.zipf,
              threads);
  if (cpu_result.ok()) {
    std::printf("cpu    : %.3fs part + %.3fs b+p = %.3fs (%llu matches)\n",
                cpu_result->partition_seconds,
                cpu_result->build_probe_seconds, cpu_result->total_seconds,
                static_cast<unsigned long long>(cpu_result->matches));
  }
  if (hybrid_result.ok()) {
    std::printf("hybrid : %.3fs part + %.3fs b+p = %.3fs (%llu matches)%s\n",
                hybrid_result->partition_seconds,
                hybrid_result->build_probe_seconds,
                hybrid_result->total_seconds,
                static_cast<unsigned long long>(hybrid_result->matches),
                fell_back ? " [PAD overflowed; used HIST]" : "");
  } else {
    std::printf("hybrid : %s\n", hybrid_result.status().ToString().c_str());
  }
  return 0;
}

int CmdModel(const std::map<std::string, std::string>& flags) {
  const uint64_t n = std::strtoull(Flag(flags, "n", "128000000").c_str(),
                                   nullptr, 10);
  const int width = std::atoi(Flag(flags, "width", "8").c_str());
  const uint32_t fanout = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "fanout", "8192").c_str(), nullptr, 10));
  FpgaCostModel model(width, fanout);
  std::printf("cost model: N=%llu W=%dB fanout=%u (Section 4.6)\n\n",
              static_cast<unsigned long long>(n), width, fanout);
  std::printf("circuit rate: %.0f Mtuples/s, latency: %.1f us\n",
              model.CircuitRateTuplesPerSec() / 1e6,
              model.LatencySeconds() * 1e6);
  std::printf("%-12s %-6s %8s %14s\n", "mode", "r", "B(r)", "P_total Mt/s");
  struct Cfg {
    const char* name;
    OutputMode mode;
    LayoutMode layout;
  };
  for (const Cfg& cfg :
       {Cfg{"HIST/RID", OutputMode::kHist, LayoutMode::kRid},
        Cfg{"HIST/VRID", OutputMode::kHist, LayoutMode::kVrid},
        Cfg{"PAD/RID", OutputMode::kPad, LayoutMode::kRid},
        Cfg{"PAD/VRID", OutputMode::kPad, LayoutMode::kVrid}}) {
    double r = FpgaCostModel::ReadWriteRatio(cfg.mode, cfg.layout);
    std::printf("%-12s %-6.2f %8.2f %14.0f\n", cfg.name, r,
                QpiBandwidthForRatio(r),
                model.TotalRateTuplesPerSec(n, cfg.mode, cfg.layout,
                                            LinkKind::kXeonFpga) /
                    1e6);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf(
        "usage: fpart_cli <partition|join|model> [--flag=value ...]\n"
        "  partition --engine=cpu|fpga --mode=pad|hist --hash=murmur|radix\n"
        "            --fanout=N --n=N --dist=linear|random|grid|rev-grid\n"
        "            --link=qpi|raw --threads=N\n"
        "  join      --workload=A..E --scale=F --zipf=F --threads=N "
        "--fanout=N\n"
        "  model     --n=N --width=8|16|32|64 --fanout=N\n");
    return 1;
  }
  auto flags = ParseFlags(argc, argv);
  std::string cmd = argv[1];
  if (cmd == "partition") return CmdPartition(flags);
  if (cmd == "join") return CmdJoin(flags);
  if (cmd == "model") return CmdModel(flags);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 1;
}
