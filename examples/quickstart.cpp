// Quickstart: partition a relation on the simulated FPGA and on the CPU,
// and compare.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/fpart.h"

int main() {
  using namespace fpart;
  std::printf("%s\n\n", Version().c_str());

  // 1. Generate a relation of 1M <4B key, 4B payload> tuples.
  auto rel = GenerateUniqueRelation(1'000'000, KeyDistribution::kRandom);
  if (!rel.ok()) {
    std::fprintf(stderr, "%s\n", rel.status().ToString().c_str());
    return 1;
  }

  // 2. Partition it on the simulated FPGA (PAD mode, murmur hashing).
  PartitionRequest request;
  request.engine = Engine::kFpgaSim;
  request.fanout = 1024;
  request.hash = HashMethod::kMurmur;
  auto fpga = RunPartition(request, *rel);
  if (!fpga.ok()) {
    std::fprintf(stderr, "%s\n", fpga.status().ToString().c_str());
    return 1;
  }
  std::printf("FPGA (simulated): %.0f Mtuples/s, %llu cycles, %llu dummy pads\n",
              fpga->mtuples_per_sec,
              static_cast<unsigned long long>(fpga->stats.cycles),
              static_cast<unsigned long long>(fpga->stats.dummy_tuples));

  // 3. The same partitioning on the CPU baseline (4 threads).
  request.engine = Engine::kCpu;
  request.num_threads = 4;
  auto cpu = RunPartition(request, *rel);
  if (!cpu.ok()) {
    std::fprintf(stderr, "%s\n", cpu.status().ToString().c_str());
    return 1;
  }
  std::printf("CPU  (measured) : %.0f Mtuples/s\n", cpu->mtuples_per_sec);

  // 4. Partition sizes agree between engines.
  uint64_t diff = 0;
  for (size_t p = 0; p < request.fanout; ++p) {
    diff += fpga->output.part(p).num_tuples != cpu->output.part(p).num_tuples;
  }
  std::printf("partitions with differing sizes: %llu (expect 0)\n",
              static_cast<unsigned long long>(diff));
  return diff == 0 ? 0 : 1;
}
