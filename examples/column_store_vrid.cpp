// VRID mode for column stores (Section 4.5): the FPGA reads only the key
// column, appends virtual record ids in hardware, and the application
// materializes full tuples afterwards — trading a later gather for half
// the QPI read traffic during partitioning.
//
//   ./build/examples/column_store_vrid
#include <cstdio>
#include <vector>

#include "core/fpart.h"

int main() {
  using namespace fpart;
  const size_t n = 4'000'000;

  // A column-store relation: keys and payloads live in separate arrays.
  auto columns = ColumnRelation<uint32_t>::Allocate(n);
  if (!columns.ok()) return 1;
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    columns->keys()[i] = rng.Next32() & 0x7fffffffu;
    columns->payloads()[i] = static_cast<uint32_t>(i * 3);
  }

  // RID comparison input: the same data materialized as rows.
  auto rows = Relation<Tuple8>::Allocate(n);
  if (!rows.ok()) return 1;
  for (size_t i = 0; i < n; ++i) {
    (*rows)[i] = Tuple8{columns->keys()[i], columns->payloads()[i]};
  }

  FpgaPartitionerConfig config;
  config.fanout = 8192;
  config.output_mode = OutputMode::kPad;

  config.layout = LayoutMode::kRid;
  FpgaPartitioner<Tuple8> rid(config);
  auto rid_run = rid.Partition(rows->data(), n);

  config.layout = LayoutMode::kVrid;
  FpgaPartitioner<Tuple8> vrid(config);
  auto vrid_run = vrid.PartitionColumn(columns->keys(), n);

  if (!rid_run.ok() || !vrid_run.ok()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  std::printf("RID : %6.0f Mtuples/s, %llu lines read over QPI\n",
              rid_run->mtuples_per_sec,
              static_cast<unsigned long long>(rid_run->stats.read_lines));
  std::printf("VRID: %6.0f Mtuples/s, %llu lines read over QPI "
              "(half: keys only)\n",
              vrid_run->mtuples_per_sec,
              static_cast<unsigned long long>(vrid_run->stats.read_lines));

  // Materialize the first non-empty partition: VRID payloads index the
  // payload column.
  for (size_t p = 0; p < vrid_run->output.num_partitions(); ++p) {
    if (vrid_run->output.part(p).num_tuples == 0) continue;
    const Tuple8* data = vrid_run->output.partition_data(p);
    size_t shown = 0;
    std::printf("\npartition %zu, first tuples materialized via VRID:\n", p);
    for (size_t i = 0; i < vrid_run->output.partition_slots(p) && shown < 4;
         ++i) {
      if (IsDummy(data[i])) continue;
      uint32_t vrid_id = data[i].payload;
      std::printf("  key=%10u  vrid=%8u  ->  payload=%10u\n", data[i].key,
                  vrid_id, columns->payloads()[vrid_id]);
      if (columns->keys()[vrid_id] != data[i].key) {
        std::printf("  ERROR: vrid does not map back to the key!\n");
        return 1;
      }
      ++shown;
    }
    break;
  }
  std::printf("\nVRID round trip verified.\n");
  return 0;
}
