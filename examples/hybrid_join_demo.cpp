// End-to-end hybrid join demo: the FPGA circuit partitions both relations
// while the CPU executes the cache-resident build+probe — the paper's
// headline experiment (Section 5) on a workload-A-style input.
//
//   ./build/examples/hybrid_join_demo [million_tuples_per_relation]
#include <cstdio>
#include <cstdlib>

#include "core/fpart.h"

int main(int argc, char** argv) {
  using namespace fpart;
  double millions = argc > 1 ? std::atof(argv[1]) : 4.0;
  if (millions <= 0) millions = 4.0;

  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, millions * 1e6 / 128e6);
  std::printf("Generating workload A at |R| = |S| = %zu tuples...\n",
              spec.num_r);
  auto input = GenerateWorkload(spec);
  if (!input.ok()) {
    std::fprintf(stderr, "%s\n", input.status().ToString().c_str());
    return 1;
  }

  const size_t threads = BenchMaxThreads();
  std::printf("build+probe threads: %zu\n\n", threads);

  // Pure CPU radix join.
  CpuJoinConfig cpu;
  cpu.fanout = 8192;
  cpu.num_threads = threads;
  auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);
  if (!cpu_result.ok()) {
    std::fprintf(stderr, "%s\n", cpu_result.status().ToString().c_str());
    return 1;
  }

  // Hybrid join, PAD/RID.
  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 8192;
  hybrid.fpga.output_mode = OutputMode::kPad;
  hybrid.num_threads = threads;
  auto hybrid_result = HybridJoin(hybrid, input->r, input->s);
  if (!hybrid_result.ok()) {
    std::fprintf(stderr, "%s\n", hybrid_result.status().ToString().c_str());
    return 1;
  }

  auto report = [&](const char* name, const JoinResult& r) {
    std::printf("%-22s partition %.3fs + build/probe %.3fs = %.3fs  "
                "(%.0f Mtuples/s, %llu matches)\n",
                name, r.partition_seconds, r.build_probe_seconds,
                r.total_seconds, r.mtuples_per_sec,
                static_cast<unsigned long long>(r.matches));
  };
  report("CPU radix join:", *cpu_result);
  report("Hybrid CPU+FPGA join:", *hybrid_result);

  if (cpu_result->matches != hybrid_result->matches ||
      cpu_result->checksum != hybrid_result->checksum) {
    std::printf("\nERROR: joins disagree!\n");
    return 1;
  }
  std::printf("\nBoth joins agree (%llu matches, checksum %llu). The FPGA "
              "partitioning time is\nsimulated circuit time (cycles x 5ns); "
              "build+probe after the FPGA includes the\nTable 1 coherence "
              "penalty.\n",
              static_cast<unsigned long long>(cpu_result->matches),
              static_cast<unsigned long long>(cpu_result->checksum));
  return 0;
}
