// Partitioned GROUP BY aggregation (the Section 6 use case): partition on
// the group key with the FPGA circuit, aggregate each cache-resident
// partition on the CPU, and compare against single-pass hash aggregation.
//
//   ./build/examples/groupby_aggregation
#include <cstdio>

#include "core/fpart.h"

int main() {
  using namespace fpart;
  const size_t n = 8'000'000;
  const uint32_t groups = 2'000'000;  // many groups: hash agg thrashes

  auto rel = Relation<Tuple8>::Allocate(n);
  if (!rel.ok()) return 1;
  Rng rng(23);
  for (size_t i = 0; i < n; ++i) {
    (*rel)[i] = Tuple8{static_cast<uint32_t>(1 + rng.Below(groups)),
                       static_cast<uint32_t>(rng.Below(1000))};
  }
  std::printf("SELECT key, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY "
              "key\n%zu rows, ~%u distinct keys\n\n", n, groups);

  GroupByConfig config;
  config.engine = Engine::kFpgaSim;
  config.fanout = 8192;
  config.output_mode = OutputMode::kHist;
  config.num_threads = BenchMaxThreads();
  auto fpga = PartitionedGroupBy(config, *rel);
  if (!fpga.ok()) {
    std::fprintf(stderr, "%s\n", fpga.status().ToString().c_str());
    return 1;
  }

  config.engine = Engine::kCpu;
  auto cpu = PartitionedGroupBy(config, *rel);
  auto baseline = HashGroupBy(*rel);
  if (!cpu.ok() || !baseline.ok()) return 1;

  std::printf("%-28s %10s %10s %10s %9s\n", "plan", "part (s)", "agg (s)",
              "total (s)", "groups");
  std::printf("%-28s %10.3f %10.3f %10.3f %9zu\n",
              "FPGA partition + CPU agg", fpga->partition_seconds,
              fpga->aggregate_seconds, fpga->total_seconds,
              fpga->groups.size());
  std::printf("%-28s %10.3f %10.3f %10.3f %9zu\n",
              "CPU partition + CPU agg", cpu->partition_seconds,
              cpu->aggregate_seconds, cpu->total_seconds,
              cpu->groups.size());
  std::printf("%-28s %10.3f %10.3f %10.3f %9zu\n",
              "single-pass hash aggregation", 0.0,
              baseline->aggregate_seconds, baseline->total_seconds,
              baseline->groups.size());

  if (fpga->groups != baseline->groups || cpu->groups != baseline->groups) {
    std::printf("\nERROR: plans disagree!\n");
    return 1;
  }
  std::printf("\nall three plans produced identical aggregates.\n");
  return 0;
}
