// Skew handling (Section 5.4): PAD mode aborts with a partition overflow
// on Zipf-skewed data; the runtime falls back to the two-pass HIST mode,
// which handles any skew because partition sizes are known before writing.
//
//   ./build/examples/skew_handling [zipf_factor]
#include <cstdio>
#include <cstdlib>

#include "core/fpart.h"

int main(int argc, char** argv) {
  using namespace fpart;
  double zipf = argc > 1 ? std::atof(argv[1]) : 0.75;

  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 2e6 / 128e6);
  spec.zipf = zipf;
  std::printf("workload A with Zipf(%.2f)-skewed S, |R| = |S| = %zu\n\n",
              zipf, spec.num_r);
  auto input = GenerateWorkload(spec);
  if (!input.ok()) return 1;

  HybridJoinConfig config;
  config.fpga.fanout = 8192;
  config.fpga.output_mode = OutputMode::kPad;
  config.num_threads = BenchMaxThreads();

  std::printf("attempt 1: PAD mode (single pass, fixed-size partitions)\n");
  auto pad = HybridJoin(config, input->r, input->s);
  if (pad.ok()) {
    std::printf("  PAD succeeded: %.3fs partition + %.3fs build/probe "
                "(skew was mild)\n",
                pad->partition_seconds, pad->build_probe_seconds);
    return 0;
  }
  std::printf("  PAD failed: %s\n", pad.status().ToString().c_str());
  if (!pad.status().IsPartitionOverflow()) return 1;

  std::printf("\nattempt 2: automatic HIST fallback "
              "(HybridJoinWithFallback)\n");
  bool fell_back = false;
  auto result = HybridJoinWithFallback(config, input->r, input->s,
                                       &fell_back);
  if (!result.ok()) {
    std::fprintf(stderr, "  %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("  fell back to HIST: %s\n", fell_back ? "yes" : "no");
  std::printf("  joined: %.3fs partition + %.3fs build/probe, %llu matches\n",
              result->partition_seconds, result->build_probe_seconds,
              static_cast<unsigned long long>(result->matches));
  std::printf("\nHIST scans the data twice (histogram, then scatter with an "
              "exact prefix sum),\nso it is slower than PAD but immune to "
              "skew — exactly Figure 13's regime.\n");
  return result->matches == input->s.size() ? 0 : 1;
}
