// A small analytics pipeline composed from the library's operators — the
// kind of query the paper's introduction motivates:
//
//   SELECT o.customer, COUNT(*), SUM(l.amount)
//   FROM orders o JOIN lineitems l ON o.order_id = l.order_id
//   GROUP BY o.customer
//
// executed as: FPGA-partition both tables on order_id → CPU build+probe
// with materialization → GROUP BY customer (partitioned aggregation).
//
//   ./build/examples/analytics_pipeline
#include <cstdio>
#include <unordered_map>

#include "core/fpart.h"
#include "join/materialize.h"

int main() {
  using namespace fpart;
  const size_t num_orders = 1'000'000;
  const size_t num_lineitems = 4'000'000;
  const uint32_t num_customers = 50'000;

  // orders(order_id -> customer): key = order_id, payload = customer.
  auto orders = Relation<Tuple8>::Allocate(num_orders);
  // lineitems(order_id -> amount): key = order_id, payload = amount.
  auto lineitems = Relation<Tuple8>::Allocate(num_lineitems);
  if (!orders.ok() || !lineitems.ok()) return 1;
  Rng rng(31);
  for (size_t i = 0; i < num_orders; ++i) {
    (*orders)[i] = Tuple8{static_cast<uint32_t>(i + 1),
                          static_cast<uint32_t>(1 + rng.Below(num_customers))};
  }
  for (size_t i = 0; i < num_lineitems; ++i) {
    (*lineitems)[i] =
        Tuple8{static_cast<uint32_t>(1 + rng.Below(num_orders)),
               static_cast<uint32_t>(1 + rng.Below(500))};  // amount
  }

  // --- Stage 1: FPGA partitions both tables on order_id.
  FpgaPartitionerConfig pc;
  pc.fanout = 4096;
  pc.output_mode = OutputMode::kHist;
  FpgaPartitioner<Tuple8> partitioner(pc);
  auto po = partitioner.Partition(orders->data(), orders->size());
  auto pl = partitioner.Partition(lineitems->data(), lineitems->size());
  if (!po.ok() || !pl.ok()) {
    std::fprintf(stderr, "partitioning failed\n");
    return 1;
  }
  std::printf("stage 1 (FPGA partition): %.3f s simulated (%llu cycles)\n",
              po->seconds + pl->seconds,
              static_cast<unsigned long long>(po->stats.cycles +
                                              pl->stats.cycles));

  // --- Stage 2: materializing join. r_payload = customer,
  // s_payload = amount (payloads carry the original values here).
  MaterializedJoin joined = MaterializeJoin(
      po->output, pl->output, BenchMaxThreads(),
      static_cast<const Tuple8*>(nullptr));
  std::printf("stage 2 (join+materialize): %.3f s, %zu joined rows\n",
              joined.build_probe_seconds, joined.rows.size());

  // --- Stage 3: GROUP BY customer over the joined rows.
  auto grouped = Relation<Tuple8>::Allocate(joined.rows.size());
  if (!grouped.ok()) return 1;
  for (size_t i = 0; i < joined.rows.size(); ++i) {
    (*grouped)[i] = Tuple8{static_cast<uint32_t>(joined.rows[i].r_payload),
                           static_cast<uint32_t>(joined.rows[i].s_payload)};
  }
  GroupByConfig gc;
  gc.engine = Engine::kFpgaSim;
  gc.fanout = 4096;
  gc.num_threads = BenchMaxThreads();
  auto agg = PartitionedGroupBy(gc, *grouped);
  if (!agg.ok()) {
    std::fprintf(stderr, "%s\n", agg.status().ToString().c_str());
    return 1;
  }
  std::printf("stage 3 (group by): %.3f s, %zu customer groups\n\n",
              agg->total_seconds, agg->groups.size());

  // Verify against a straightforward single-pass computation.
  std::unordered_map<uint32_t, uint32_t> order_customer;
  order_customer.reserve(num_orders);
  for (const auto& o : *orders) order_customer[o.key] = o.payload;
  std::unordered_map<uint32_t, std::pair<uint64_t, uint64_t>> expect;
  for (const auto& l : *lineitems) {
    auto it = order_customer.find(l.key);
    if (it == order_customer.end()) continue;
    auto& [count, sum] = expect[it->second];
    ++count;
    sum += l.payload;
  }
  size_t mismatches = expect.size() != agg->groups.size();
  for (const auto& g : agg->groups) {
    auto it = expect.find(g.key);
    if (it == expect.end() || it->second.first != g.count ||
        it->second.second != g.sum) {
      ++mismatches;
    }
  }
  std::printf("verification against single-pass reference: %s\n",
              mismatches == 0 ? "OK" : "MISMATCH");

  // Show the top answer rows.
  std::printf("\ncustomer   count        sum(amount)\n");
  for (size_t i = 0; i < 5 && i < agg->groups.size(); ++i) {
    std::printf("%8u %7llu %18llu\n", agg->groups[i].key,
                static_cast<unsigned long long>(agg->groups[i].count),
                static_cast<unsigned long long>(agg->groups[i].sum));
  }
  return mismatches == 0 ? 0 : 1;
}
