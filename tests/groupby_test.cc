// Tests of the partitioned GROUP BY operator (the Section 6 use case).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "datagen/relation.h"
#include "groupby/group_by.h"

namespace fpart {
namespace {

// n tuples over `groups` distinct keys; payload = i so aggregates are
// predictable.
Relation<Tuple8> MakeGrouped(size_t n, uint32_t groups, uint64_t seed) {
  auto rel = Relation<Tuple8>::Allocate(n);
  EXPECT_TRUE(rel.ok());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    (*rel)[i] = Tuple8{static_cast<uint32_t>(1 + rng.Below(groups)),
                       static_cast<uint32_t>(i)};
  }
  return std::move(*rel);
}

struct EngineParam {
  Engine engine;
  OutputMode mode;
};

class GroupByEngineTest : public ::testing::TestWithParam<EngineParam> {};

TEST_P(GroupByEngineTest, MatchesHashBaseline) {
  auto rel = MakeGrouped(50000, 700, 3);
  GroupByConfig config;
  config.engine = GetParam().engine;
  config.output_mode = GetParam().mode;
  config.fanout = 64;
  config.pad_fraction = 2.0;  // group keys cluster: pad generously
  config.num_threads = 2;
  auto part = PartitionedGroupBy(config, rel);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  auto reference = HashGroupBy(rel);
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(part->groups.size(), reference->groups.size());
  for (size_t i = 0; i < part->groups.size(); ++i) {
    EXPECT_EQ(part->groups[i], reference->groups[i]) << "group " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, GroupByEngineTest,
    ::testing::Values(EngineParam{Engine::kCpu, OutputMode::kHist},
                      EngineParam{Engine::kFpgaSim, OutputMode::kHist},
                      EngineParam{Engine::kFpgaSim, OutputMode::kPad}),
    [](const auto& info) {
      return std::string(info.param.engine == Engine::kCpu ? "cpu"
                                                           : "fpga") +
             std::string("_") + OutputModeName(info.param.mode);
    });

TEST(GroupByTest, AggregatesAreExact) {
  // 3 keys with hand-computable aggregates.
  auto rel = Relation<Tuple8>::Allocate(6);
  ASSERT_TRUE(rel.ok());
  (*rel)[0] = {10, 5};
  (*rel)[1] = {20, 1};
  (*rel)[2] = {10, 7};
  (*rel)[3] = {30, 100};
  (*rel)[4] = {10, 3};
  (*rel)[5] = {20, 9};
  GroupByConfig config;
  config.engine = Engine::kFpgaSim;
  config.fanout = 16;
  auto out = PartitionedGroupBy(config, *rel);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->groups.size(), 3u);
  EXPECT_EQ(out->groups[0], (GroupResult{10, 3, 15, 3, 7}));
  EXPECT_EQ(out->groups[1], (GroupResult{20, 2, 10, 1, 9}));
  EXPECT_EQ(out->groups[2], (GroupResult{30, 1, 100, 100, 100}));
}

TEST(GroupByTest, SingleGroup) {
  auto rel = MakeGrouped(10000, 1, 5);
  GroupByConfig config;
  config.engine = Engine::kFpgaSim;
  config.fanout = 16;
  auto out = PartitionedGroupBy(config, rel);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->groups.size(), 1u);
  EXPECT_EQ(out->groups[0].count, 10000u);
  // payloads 0..9999: sum = n(n-1)/2.
  EXPECT_EQ(out->groups[0].sum, 10000ull * 9999 / 2);
  EXPECT_EQ(out->groups[0].min, 0u);
  EXPECT_EQ(out->groups[0].max, 9999u);
}

TEST(GroupByTest, EveryKeyDistinct) {
  auto rel = Relation<Tuple8>::Allocate(5000);
  ASSERT_TRUE(rel.ok());
  for (size_t i = 0; i < rel->size(); ++i) {
    (*rel)[i] = Tuple8{static_cast<uint32_t>(i + 1),
                       static_cast<uint32_t>(2 * i)};
  }
  GroupByConfig config;
  config.engine = Engine::kCpu;
  config.fanout = 128;
  auto out = PartitionedGroupBy(config, *rel);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->groups.size(), 5000u);
  for (size_t i = 0; i < out->groups.size(); ++i) {
    EXPECT_EQ(out->groups[i].key, i + 1);
    EXPECT_EQ(out->groups[i].count, 1u);
  }
}

TEST(GroupByTest, CoherencePenaltyOnlyAfterFpga) {
  auto rel = MakeGrouped(20000, 100, 7);
  GroupByConfig config;
  config.engine = Engine::kFpgaSim;
  config.fanout = 64;
  config.coherence_penalty = true;
  auto with = PartitionedGroupBy(config, rel);
  ASSERT_TRUE(with.ok());
  EXPECT_GT(with->partition_seconds, 0.0);
  EXPECT_GT(with->aggregate_seconds, 0.0);
  EXPECT_NEAR(with->total_seconds,
              with->partition_seconds + with->aggregate_seconds, 1e-12);
}

TEST(GroupByTest, TimingFieldsPopulated) {
  auto rel = MakeGrouped(10000, 50, 9);
  auto reference = HashGroupBy(rel);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(reference->partition_seconds, 0.0);
  EXPECT_GT(reference->aggregate_seconds, 0.0);
  EXPECT_EQ(reference->groups.size(), 50u);
}

}  // namespace
}  // namespace fpart
