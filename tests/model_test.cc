// Tests of the analytical cost model (Section 4.6) and its validation
// against the paper's reported numbers (Section 4.8).
#include <gtest/gtest.h>

#include "model/cost_model.h"
#include "model/paper_constants.h"

namespace fpart {
namespace {

TEST(CostModelTest, CircuitRateIsOneCacheLinePerCycle) {
  EXPECT_DOUBLE_EQ(FpgaCostModel(8, 8192).CircuitRateTuplesPerSec(), 1.6e9);
  EXPECT_DOUBLE_EQ(FpgaCostModel(16, 8192).CircuitRateTuplesPerSec(), 0.8e9);
  EXPECT_DOUBLE_EQ(FpgaCostModel(64, 8192).CircuitRateTuplesPerSec(), 0.2e9);
}

TEST(CostModelTest, LatencyMatchesTable3) {
  // Table 3: c_hashing=5, c_writecomb=65540, c_fifos=4 at 8 B / 8192 parts.
  FpgaCostModel model(8, 8192);
  EXPECT_NEAR(model.LatencySeconds(), (5 + 65540 + 4) * 5e-9, 1e-12);
}

TEST(CostModelTest, ModeFactorAndRatios) {
  EXPECT_DOUBLE_EQ(FpgaCostModel::ModeFactor(OutputMode::kHist), 2.0);
  EXPECT_DOUBLE_EQ(FpgaCostModel::ModeFactor(OutputMode::kPad), 1.0);
  EXPECT_DOUBLE_EQ(
      FpgaCostModel::ReadWriteRatio(OutputMode::kHist, LayoutMode::kRid), 2.0);
  EXPECT_DOUBLE_EQ(
      FpgaCostModel::ReadWriteRatio(OutputMode::kHist, LayoutMode::kVrid),
      1.0);
  EXPECT_DOUBLE_EQ(
      FpgaCostModel::ReadWriteRatio(OutputMode::kPad, LayoutMode::kRid), 1.0);
  EXPECT_DOUBLE_EQ(
      FpgaCostModel::ReadWriteRatio(OutputMode::kPad, LayoutMode::kVrid),
      0.5);
}

TEST(CostModelTest, Section48ValidationNumbers) {
  // The three derivations of Section 4.8 (N = 128e6, W = 8 B).
  FpgaCostModel model(8, 8192);
  const uint64_t n = 128000000;
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kHist,
                                          LayoutMode::kRid,
                                          LinkKind::kXeonFpga) /
                  1e6,
              paper::kModelHistRid, paper::kModelHistRid * 0.02);
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                          LayoutMode::kRid,
                                          LinkKind::kXeonFpga) /
                  1e6,
              paper::kModelMidModes, paper::kModelMidModes * 0.02);
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kHist,
                                          LayoutMode::kVrid,
                                          LinkKind::kXeonFpga) /
                  1e6,
              paper::kModelMidModes, paper::kModelMidModes * 0.02);
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                          LayoutMode::kVrid,
                                          LinkKind::kXeonFpga) /
                  1e6,
              paper::kModelPadVrid, paper::kModelPadVrid * 0.02);
}

TEST(CostModelTest, RawWrapperIsCircuitBound) {
  // With 25.6 GB/s the first term of eq. 7 dominates: 1.6e9 tuples/s PAD,
  // 0.8e9 HIST (Section 4.7's raw numbers).
  FpgaCostModel model(8, 8192);
  const uint64_t n = 128000000;
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                          LayoutMode::kRid,
                                          LinkKind::kRawWrapper),
              1.597e9, 0.01e9);
  EXPECT_NEAR(model.TotalRateTuplesPerSec(n, OutputMode::kHist,
                                          LayoutMode::kRid,
                                          LinkKind::kRawWrapper),
              0.799e9, 0.005e9);
}

TEST(CostModelTest, LatencyHiddenForLargeN) {
  // For large N the latency term vanishes (Section 4.6): the rate
  // converges to the N→∞ limit.
  FpgaCostModel model(8, 8192);
  double small = model.ProcessRateTuplesPerSec(100000, OutputMode::kPad);
  double large = model.ProcessRateTuplesPerSec(1u << 30, OutputMode::kPad);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large, 1.6e9, 0.01e9);
}

TEST(CostModelTest, WiderTuplesSameBytesFewerTuples) {
  // Figure 8: tuples/s halves with doubling width; GB/s stays flat.
  const uint64_t n = 1u << 26;
  double prev_rate = 1e18;
  for (int w : {8, 16, 32, 64}) {
    FpgaCostModel model(w, 8192);
    double rate = model.TotalRateTuplesPerSec(n, OutputMode::kHist,
                                              LayoutMode::kRid,
                                              LinkKind::kXeonFpga);
    double gbs = rate * w * 3.0 / 1e9;  // r=2: 3 bytes moved per byte written
    EXPECT_LT(rate, prev_rate);
    EXPECT_NEAR(gbs, 7.05, 0.1);
    prev_rate = rate;
  }
}

TEST(CostModelTest, PredictSecondsInvertsRate) {
  FpgaCostModel model(8, 8192);
  const uint64_t n = 10000000;
  double rate = model.TotalRateTuplesPerSec(n, OutputMode::kPad,
                                            LayoutMode::kRid,
                                            LinkKind::kXeonFpga);
  EXPECT_NEAR(model.PredictSeconds(n, OutputMode::kPad, LayoutMode::kRid,
                                   LinkKind::kXeonFpga),
              n / rate, 1e-9);
}

TEST(CostModelTest, PoolLatencyQueuesOnLeastBackloggedDevice) {
  FpgaCostModel model(8, 8192);
  const uint64_t n = 1u << 22;
  const double backlogs[] = {0.75, 0.10, 0.40};
  // The job lands on the least-backlogged device of the pool, so the
  // end-to-end estimate equals the single-device estimate with the
  // minimum backlog as queueing delay.
  EXPECT_NEAR(model.PredictPoolLatencySeconds(n, OutputMode::kPad,
                                              LayoutMode::kRid,
                                              LinkKind::kXeonFpga, backlogs,
                                              3),
              model.PredictLatencySeconds(n, OutputMode::kPad,
                                          LayoutMode::kRid,
                                          LinkKind::kXeonFpga, 0.10),
              1e-12);
  // Empty pool: pure service time, no queueing delay.
  EXPECT_NEAR(model.PredictPoolLatencySeconds(n, OutputMode::kPad,
                                              LayoutMode::kRid,
                                              LinkKind::kXeonFpga, nullptr,
                                              0),
              model.PredictSeconds(n, OutputMode::kPad, LayoutMode::kRid,
                                   LinkKind::kXeonFpga),
              1e-12);
}

TEST(CostModelTest, InterferenceLowersPrediction) {
  FpgaCostModel model(8, 8192);
  const uint64_t n = 1u << 26;
  EXPECT_LT(model.TotalRateTuplesPerSec(n, OutputMode::kPad, LayoutMode::kRid,
                                        LinkKind::kXeonFpga,
                                        Interference::kInterfered),
            model.TotalRateTuplesPerSec(n, OutputMode::kPad, LayoutMode::kRid,
                                        LinkKind::kXeonFpga,
                                        Interference::kAlone));
}

}  // namespace
}  // namespace fpart
