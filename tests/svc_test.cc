// Tests of the svc runtime: placement policy (including boundary
// conditions), admission control, the multi-FPGA device pool (lease
// exclusivity, least-backlogged grants, cancellation handoff),
// deterministic replay across device counts, stress under racing
// submitters and cancellations, and cross-backend result parity.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "obs/metrics.h"
#include "svc/fpga_arbiter.h"
#include "svc/job_queue.h"
#include "svc/placement.h"
#include "svc/scheduler.h"

namespace fpart::svc {
namespace {

Relation<Tuple8> MakeRelation(size_t n, uint64_t seed = 7) {
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, seed);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).ValueUnsafe();
}

// ---------------------------------------------------------------- placement

TEST(PlacementTest, FpgaWinsWithEmptyQueues) {
  // A large partition job: the device streams at QPI bandwidth while one
  // CPU thread runs an order of magnitude slower.
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 22;
  in.cpu_threads = 1;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kFpga);
  EXPECT_LT(d.est_fpga_seconds, d.est_cpu_seconds);
  EXPECT_DOUBLE_EQ(d.device_seconds, d.est_fpga_seconds);
}

TEST(PlacementTest, BacklogExceedingCpuEstimateFallsBackToCpu) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  ASSERT_EQ(base.backend, Backend::kFpga);
  // Pile enough queued device work onto the arbiter that waiting it out
  // costs more than just running on the host.
  in.fpga_backlog_seconds = base.est_cpu_seconds * 2.0;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kCpu);
  EXPECT_GT(d.fpga_latency_seconds, d.cpu_latency_seconds);
}

TEST(PlacementTest, TieWithinEpsilonPrefersFpga) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  // Backlog tuned so the device path is nominally slower, but within the
  // tie epsilon: the device still wins because it frees the host cores.
  const double gap = base.est_cpu_seconds - base.est_fpga_seconds;
  in.fpga_backlog_seconds =
      gap + 0.5 * kPlacementTieEpsilon * base.est_cpu_seconds;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kFpga);
  EXPECT_TRUE(d.tie);
  EXPECT_GT(d.fpga_latency_seconds, d.cpu_latency_seconds);
}

TEST(PlacementTest, JoinChoosesHybridOrCpuNeverPlainFpga) {
  PlacementInput in;
  in.kind = JobKind::kJoin;
  in.r_tuples = 1 << 20;
  in.s_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision fast = DecidePlacement(in);
  EXPECT_EQ(fast.backend, Backend::kHybrid);
  EXPECT_LT(fast.device_seconds, fast.est_fpga_seconds)
      << "hybrid estimate must include the CPU build+probe share";
  in.fpga_backlog_seconds = fast.est_cpu_seconds * 3.0;
  PlacementDecision slow = DecidePlacement(in);
  EXPECT_EQ(slow.backend, Backend::kCpu);
}

TEST(PlacementTest, IsPureAndDeterministic) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 123456;
  in.cpu_threads = 3;
  in.fpga_backlog_seconds = 0.001;
  in.cpu_backlog_seconds = 0.0005;
  PlacementDecision a = DecidePlacement(in);
  PlacementDecision b = DecidePlacement(in);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_DOUBLE_EQ(a.fpga_latency_seconds, b.fpga_latency_seconds);
  EXPECT_DOUBLE_EQ(a.cpu_latency_seconds, b.cpu_latency_seconds);
}

// ------------------------------------------- placement boundary conditions

TEST(PlacementTest, TieEpsilonEdgeIsInclusive) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  ASSERT_EQ(base.backend, Backend::kFpga);
  const double gap = base.est_cpu_seconds - base.est_fpga_seconds;
  // At the margin: fpga_latency - cpu_latency == eps * fpga_latency solves
  // to backlog = gap + eps/(1-eps) * cpu_latency; the <= comparison keeps
  // the FPGA there. Shave one part in 10^3 off so float rounding in the
  // margin product cannot tip the exact-equality case either way.
  const double eps = kPlacementTieEpsilon;
  in.fpga_backlog_seconds =
      (gap + eps / (1.0 - eps) * base.est_cpu_seconds) * 0.999;
  PlacementDecision at_edge = DecidePlacement(in);
  EXPECT_EQ(at_edge.backend, Backend::kFpga);
  EXPECT_TRUE(at_edge.tie);
  // Nudged past the margin: the CPU wins.
  in.fpga_backlog_seconds *= 1.01;
  PlacementDecision past_edge = DecidePlacement(in);
  EXPECT_EQ(past_edge.backend, Backend::kCpu);
  EXPECT_FALSE(past_edge.tie);
}

TEST(PlacementTest, ZeroTupleJobsRunOnCpuWithFiniteEstimates) {
  for (JobKind kind : {JobKind::kPartition, JobKind::kJoin}) {
    PlacementInput in;
    in.kind = kind;
    in.n_tuples = 0;
    in.r_tuples = 0;
    in.s_tuples = 0;
    PlacementDecision d = DecidePlacement(in);
    EXPECT_EQ(d.backend, Backend::kCpu);
    EXPECT_FALSE(std::isnan(d.est_fpga_seconds));
    EXPECT_FALSE(std::isnan(d.est_cpu_seconds));
    EXPECT_FALSE(std::isnan(d.fpga_latency_seconds));
    EXPECT_FALSE(std::isnan(d.cpu_latency_seconds));
    EXPECT_DOUBLE_EQ(d.est_cpu_seconds, 0.0);
    EXPECT_DOUBLE_EQ(d.device_seconds, 0.0);
  }
}

TEST(PlacementTest, SaturatedPoolSpillsToCpuUntilADeviceFrees) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  ASSERT_EQ(base.backend, Backend::kFpga);
  // Every device clock saturated past the CPU estimate: spill to CPU.
  const double saturated = base.est_cpu_seconds * 4.0;
  double backlogs[4] = {saturated, saturated, saturated, saturated};
  in.device_backlogs = backlogs;
  in.fpga_devices = 4;
  EXPECT_EQ(DecidePlacement(in).backend, Backend::kCpu);
  // One device drains: the pool minimum rules and the FPGA wins again.
  backlogs[2] = 0.0;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kFpga);
  EXPECT_DOUBLE_EQ(EffectiveFpgaBacklogSeconds(in), 0.0);
}

// ---------------------------------------------------------------- job queue

TEST(JobQueueTest, PopsInDeadlineThenFifoOrder) {
  JobQueue queue(16, /*strict_seq=*/false);
  auto make = [](uint64_t seq, double deadline_key) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    rec->deadline_key = deadline_key;
    return rec;
  };
  ASSERT_TRUE(queue.Push(make(0, 5.0)).ok());
  ASSERT_TRUE(queue.Push(make(1, 1.0)).ok());
  ASSERT_TRUE(
      queue.Push(make(2, std::numeric_limits<double>::infinity())).ok());
  ASSERT_TRUE(queue.Push(make(3, 1.0)).ok());
  EXPECT_EQ(queue.Pop()->seq, 1u);  // earliest deadline
  EXPECT_EQ(queue.Pop()->seq, 3u);  // same deadline, FIFO
  EXPECT_EQ(queue.Pop()->seq, 0u);
  EXPECT_EQ(queue.Pop()->seq, 2u);  // no deadline last
}

TEST(JobQueueTest, StrictSeqPopsInArrivalOrderAcrossInterleaving) {
  JobQueue queue(16, /*strict_seq=*/true);
  auto make = [](uint64_t seq) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    return rec;
  };
  // Out-of-order push (any client interleaving) still pops 0,1,2,3.
  ASSERT_TRUE(queue.Push(make(2)).ok());
  ASSERT_TRUE(queue.Push(make(0)).ok());
  ASSERT_TRUE(queue.Push(make(3)).ok());
  ASSERT_TRUE(queue.Push(make(1)).ok());
  for (uint64_t want = 0; want < 4; ++want) {
    EXPECT_EQ(queue.Pop()->seq, want);
  }
}

TEST(JobQueueTest, FullQueueShedsWithCapacityError) {
  JobQueue queue(2, /*strict_seq=*/false);
  auto make = [](uint64_t seq) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    return rec;
  };
  ASSERT_TRUE(queue.Push(make(0)).ok());
  ASSERT_TRUE(queue.Push(make(1)).ok());
  Status st = queue.Push(make(2));
  EXPECT_TRUE(st.IsCapacityError());
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.pushed(), 2u);
}

// ------------------------------------------------------------- device pool

TEST(DevicePoolTest, SingleDeviceLeaseIsExclusive) {
  DevicePool pool(1);
  JobRecord a, b;
  a.seq = 0;
  b.seq = 1;
  ASSERT_TRUE(pool.Acquire(&a).ok());
  EXPECT_EQ(a.device, 0);
  std::atomic<bool> b_granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(pool.Acquire(&b).ok());
    b_granted.store(true);
    pool.Release(&b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(b_granted.load()) << "lease must be exclusive";
  pool.Release(&a);
  waiter.join();
  EXPECT_TRUE(b_granted.load());
  EXPECT_EQ(pool.grants(), 2u);
}

TEST(DevicePoolTest, TwoDevicesServeTwoHoldersConcurrently) {
  DevicePool pool(2);
  JobRecord a, b, c;
  a.seq = 0;
  b.seq = 1;
  c.seq = 2;
  ASSERT_TRUE(pool.Acquire(&a).ok());
  ASSERT_TRUE(pool.Acquire(&b).ok());
  // Both devices held, and they are distinct.
  EXPECT_NE(a.device, b.device);
  std::atomic<bool> c_granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(pool.Acquire(&c).ok());
    c_granted.store(true);
    pool.Release(&c);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(c_granted.load()) << "pool of 2 cannot grant a third lease";
  pool.Release(&a);
  waiter.join();
  EXPECT_TRUE(c_granted.load());
  pool.Release(&b);
  EXPECT_EQ(pool.grants(), 3u);
}

TEST(DevicePoolTest, GrantPicksLeastBackloggedFreeDevice) {
  DevicePool pool(3);
  // Load the per-device backlog clocks unevenly: device 1 is lightest.
  EXPECT_EQ(pool.ChargeLeastLoaded(0.5), 0);   // dev0 = 0.5
  EXPECT_EQ(pool.ChargeLeastLoaded(0.2), 1);   // dev1 = 0.2
  EXPECT_EQ(pool.ChargeLeastLoaded(0.4), 2);   // dev2 = 0.4
  JobRecord a;
  a.seq = 0;
  ASSERT_TRUE(pool.Acquire(&a).ok());
  EXPECT_EQ(a.device, 1);
  // With device 1 held, the next grant takes device 2 (0.4 < 0.5).
  JobRecord b;
  b.seq = 1;
  ASSERT_TRUE(pool.Acquire(&b).ok());
  EXPECT_EQ(b.device, 2);
  pool.Release(&a);
  pool.Release(&b);
}

TEST(DevicePoolTest, OwnChargeIsDiscountedWhenPickingADevice) {
  DevicePool pool(2);
  JobRecord a;
  a.seq = 0;
  // The job's own estimate was charged to device 0; without the discount
  // the charge would repel the job onto device 1.
  a.charged_device = pool.ChargeLeastLoaded(0.5);
  a.placed_estimate_seconds = 0.5;
  ASSERT_EQ(a.charged_device, 0);
  ASSERT_TRUE(pool.Acquire(&a).ok());
  EXPECT_EQ(a.device, 0);
  pool.Release(&a);
  pool.Credit(a.charged_device, 0.5);
  EXPECT_DOUBLE_EQ(pool.total_backlog_seconds(), 0.0);
}

TEST(DevicePoolTest, CancelledWaiterHandsLeaseToNextPerDevice) {
  DevicePool pool(2);
  JobRecord a, a2, b, c;
  a.seq = 0;
  a2.seq = 1;
  b.seq = 2;
  c.seq = 3;
  ASSERT_TRUE(pool.Acquire(&a).ok());
  ASSERT_TRUE(pool.Acquire(&a2).ok());  // both devices held

  Status b_status, c_status;
  std::thread tb([&] { b_status = pool.Acquire(&b); });
  std::thread tc([&] {
    c_status = pool.Acquire(&c);
    if (c_status.ok()) pool.Release(&c);
  });
  // Wait until both are registered waiters, then cancel B while it waits.
  while (pool.waiters() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  b.cancel.store(true);
  pool.NotifyCancelled();
  tb.join();
  EXPECT_TRUE(b_status.IsCancelled());

  // One device frees; its lease must go to C (B is gone), not stall.
  pool.Release(&a);
  tc.join();
  EXPECT_TRUE(c_status.ok());
  pool.Release(&a2);
  EXPECT_EQ(pool.grants(), 3u);  // A, A2 and C; B never held a device
}

TEST(DevicePoolTest, PerDeviceBacklogAccounting) {
  DevicePool pool(2);
  EXPECT_EQ(pool.ChargeLeastLoaded(0.25), 0);
  EXPECT_EQ(pool.ChargeLeastLoaded(0.5), 1);
  EXPECT_EQ(pool.ChargeLeastLoaded(0.25), 0);  // dev0 = 0.5, dev1 = 0.5
  EXPECT_DOUBLE_EQ(pool.device_backlog_seconds(0), 0.5);
  EXPECT_DOUBLE_EQ(pool.device_backlog_seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(pool.total_backlog_seconds(), 1.0);
  pool.Credit(1, 0.5);
  EXPECT_DOUBLE_EQ(pool.backlog_seconds(), 0.0);  // pool minimum
  EXPECT_DOUBLE_EQ(pool.device_backlog_seconds(0), 0.5);
  pool.Credit(0, 10.0);  // never negative
  EXPECT_DOUBLE_EQ(pool.device_backlog_seconds(0), 0.0);
  pool.Credit(-1, 1.0);  // CPU placements carry no device charge: no-op
  EXPECT_DOUBLE_EQ(pool.total_backlog_seconds(), 0.0);
  std::vector<double> snap;
  pool.SnapshotBacklogs(&snap);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap[0], 0.0);
  EXPECT_DOUBLE_EQ(snap[1], 0.0);
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerTest, PartitionJobChecksumMatchesDirectRun) {
  Relation<Tuple8> rel = MakeRelation(1 << 15);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 512;
  spec.request.hash = HashMethod::kMurmur;
  spec.request.output_mode = OutputMode::kHist;

  // Reference: run the same request directly on both engines.
  PartitionRequest direct = spec.request;
  direct.engine = Engine::kCpu;
  auto cpu_run = RunPartition<Tuple8>(direct, rel);
  ASSERT_TRUE(cpu_run.ok());
  std::vector<uint64_t> counts(cpu_run->output.num_partitions());
  for (size_t p = 0; p < counts.size(); ++p) {
    counts[p] = cpu_run->output.part(p).num_tuples;
  }
  const uint64_t want = HistogramChecksum(counts.data(), counts.size());

  SchedulerConfig config;
  config.num_workers = 2;
  Scheduler scheduler(config);
  JobOptions cpu_pin, fpga_pin;
  cpu_pin.pinned = Backend::kCpu;
  fpga_pin.pinned = Backend::kFpga;
  auto on_cpu = scheduler.Submit(spec, cpu_pin);
  auto on_fpga = scheduler.Submit(spec, fpga_pin);
  ASSERT_TRUE(on_cpu.ok());
  ASSERT_TRUE(on_fpga.ok());
  const JobOutcome& cpu_out = on_cpu->Wait();
  const JobOutcome& fpga_out = on_fpga->Wait();
  EXPECT_EQ(cpu_out.state, JobState::kCompleted);
  EXPECT_EQ(fpga_out.state, JobState::kCompleted);
  EXPECT_EQ(cpu_out.backend, Backend::kCpu);
  EXPECT_EQ(fpga_out.backend, Backend::kFpga);
  // Same fanout + hash => same histogram on either backend.
  EXPECT_EQ(cpu_out.checksum, want);
  EXPECT_EQ(fpga_out.checksum, want);
  EXPECT_GT(fpga_out.device_seconds, 0.0);
  EXPECT_EQ(cpu_out.device_seconds, 0.0);
}

TEST(SchedulerTest, JoinJobMatchesOnBothBackends) {
  auto r = GenerateUniqueRelation(1 << 13, KeyDistribution::kRandom, 3);
  auto s = GenerateUniqueRelation(1 << 13, KeyDistribution::kRandom, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  JoinJobSpec spec;
  spec.r = &*r;
  spec.s = &*s;
  spec.fanout = 256;

  SchedulerConfig config;
  config.num_workers = 2;
  Scheduler scheduler(config);
  JobOptions cpu_pin, hybrid_pin;
  cpu_pin.pinned = Backend::kCpu;
  hybrid_pin.pinned = Backend::kHybrid;
  auto on_cpu = scheduler.Submit(spec, cpu_pin);
  auto on_hybrid = scheduler.Submit(spec, hybrid_pin);
  ASSERT_TRUE(on_cpu.ok());
  ASSERT_TRUE(on_hybrid.ok());
  const JobOutcome& cpu_out = on_cpu->Wait();
  const JobOutcome& hybrid_out = on_hybrid->Wait();
  ASSERT_EQ(cpu_out.state, JobState::kCompleted) << cpu_out.status.ToString();
  ASSERT_EQ(hybrid_out.state, JobState::kCompleted)
      << hybrid_out.status.ToString();
  // Identical unique key sets: every tuple matches, on either backend.
  EXPECT_EQ(cpu_out.matches, r->size());
  EXPECT_EQ(hybrid_out.matches, r->size());
  EXPECT_EQ(cpu_out.checksum, hybrid_out.checksum);
  EXPECT_GT(hybrid_out.device_seconds, 0.0);
}

// ------------------------------------------------------------- failpoints

TEST(SchedulerTest, DeviceRunFailpointFailsTheJobAndReleasesTheLease) {
  Relation<Tuple8> rel = MakeRelation(1 << 14);
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  reg.Arm("svc.device.run", 1);

  SchedulerConfig config;
  config.num_workers = 1;
  config.fpga_devices = 1;
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 512;
  spec.request.output_mode = OutputMode::kHist;
  JobOptions opts;
  opts.pinned = Backend::kFpga;

  auto failed = scheduler.Submit(spec, opts);
  ASSERT_TRUE(failed.ok());
  JobHandle failed_handle = std::move(failed).ValueUnsafe();
  const JobOutcome& bad = failed_handle.Wait();
  EXPECT_EQ(bad.state, JobState::kFailed);
  EXPECT_FALSE(bad.status.ok());
  EXPECT_NE(bad.status.ToString().find("failpoint"), std::string::npos);
  EXPECT_EQ(reg.fired("svc.device.run"), 1u);

  // The budget is spent, and — critically — the lease was released on the
  // forced-failure path: the next device job acquires and completes.
  auto ok = scheduler.Submit(spec, opts);
  ASSERT_TRUE(ok.ok());
  JobHandle ok_handle = std::move(ok).ValueUnsafe();
  const JobOutcome& good = ok_handle.Wait();
  EXPECT_EQ(good.state, JobState::kCompleted) << good.status.ToString();
  EXPECT_EQ(good.backend, Backend::kFpga);
  scheduler.Shutdown();
  EXPECT_EQ(scheduler.device_pool().grants(), 2u);
  EXPECT_EQ(scheduler.device_pool().waiters(), 0u);
  reg.ClearAll();
}

TEST(SchedulerTest, QueueFullFailpointForcesTheShedPath) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();

  SchedulerConfig config;
  config.queue_capacity = 1024;  // plenty of room: only the failpoint sheds
  config.num_workers = 1;
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 64;

  reg.Arm("svc.queue.full", 2);
  for (int i = 0; i < 2; ++i) {
    auto h = scheduler.Submit(spec);
    ASSERT_FALSE(h.ok());
    EXPECT_TRUE(h.status().IsCapacityError()) << h.status().ToString();
  }
  EXPECT_EQ(scheduler.jobs_shed(), 2u);
  // Budget exhausted: submissions flow again.
  auto h = scheduler.Submit(spec);
  ASSERT_TRUE(h.ok());
  JobHandle flowing = std::move(h).ValueUnsafe();
  EXPECT_EQ(flowing.Wait().state, JobState::kCompleted);
  scheduler.Shutdown();
  reg.ClearAll();
}

TEST(JobQueueTest, PerClassRejectCountersPopulatedInBothModes) {
  // Regression: the svc.q.rejected.<class> counters (and the queue's own
  // per-class shed tallies) must be bumped on every shed path — live WFQ
  // and deterministic strict-seq alike.
  auto& interactive_rejects = *obs::Registry::Global().GetCounter(
      "svc.q.rejected.interactive");
  for (int deterministic = 0; deterministic < 2; ++deterministic) {
    const uint64_t before = interactive_rejects.Value();
    JobQueue queue(/*capacity=*/1, /*strict_seq=*/deterministic == 1);
    uint64_t seq = 0;
    auto push = [&](JobClass cls) {
      auto rec = std::make_shared<JobRecord>();
      rec->cls = cls;
      rec->wfq_cost = 1.0;
      rec->seq = seq++;
      return queue.Push(rec);
    };
    EXPECT_TRUE(push(JobClass::kBatch).ok());
    for (int i = 0; i < 3; ++i) {
      Status st = push(JobClass::kInteractive);
      EXPECT_TRUE(st.IsCapacityError());
    }
    EXPECT_EQ(queue.shed(), 3u) << "deterministic=" << deterministic;
    EXPECT_EQ(queue.shed(JobClass::kInteractive), 3u);
    EXPECT_EQ(queue.shed(JobClass::kBatch), 0u);
    EXPECT_EQ(queue.shed(JobClass::kBestEffort), 0u);
    EXPECT_EQ(interactive_rejects.Value(), before + 3)
        << "deterministic=" << deterministic;
  }
}

TEST(SchedulerTest, FullQueueShedsAndReportsCapacityError) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  auto& shed_counter = *obs::Registry::Global().GetCounter("svc.jobs.shed");
  const uint64_t shed_before = shed_counter.Value();

  SchedulerConfig config;
  config.queue_capacity = 2;
  config.num_workers = 1;
  config.start_paused = true;  // nothing drains until Resume
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 64;

  std::vector<JobHandle> admitted;
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    auto h = scheduler.Submit(spec);
    if (h.ok()) {
      admitted.push_back(std::move(h).ValueUnsafe());
    } else {
      EXPECT_TRUE(h.status().IsCapacityError()) << h.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(scheduler.jobs_shed(), 3u);
  EXPECT_EQ(shed_counter.Value(), shed_before + 3);

  scheduler.Resume();
  for (const JobHandle& h : admitted) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  scheduler.Shutdown();
}

TEST(SchedulerTest, CancelQueuedJobCompletesAsCancelled) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  SchedulerConfig config;
  config.num_workers = 1;
  config.start_paused = true;
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 64;
  auto h = scheduler.Submit(spec);
  ASSERT_TRUE(h.ok());
  scheduler.Cancel(*h);
  scheduler.Resume();
  const JobOutcome& out = h->Wait();
  EXPECT_EQ(out.state, JobState::kCancelled);
  EXPECT_TRUE(out.status.IsCancelled());
}

TEST(SchedulerTest, PlacementPoliciesPinBackends) {
  Relation<Tuple8> rel = MakeRelation(1 << 13);
  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 256;
  spec.request.output_mode = OutputMode::kHist;

  {
    SchedulerConfig config;
    config.policy = PlacementPolicy::kCpuOnly;
    Scheduler scheduler(config);
    auto h = scheduler.Submit(spec);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->Wait().backend, Backend::kCpu);
  }
  {
    SchedulerConfig config;
    config.policy = PlacementPolicy::kFpgaOnly;
    Scheduler scheduler(config);
    auto h = scheduler.Submit(spec);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->Wait().backend, Backend::kFpga);
  }
}

// The acceptance property of deterministic mode: the same Zipf job stream
// submitted from several racing client threads lands on identical
// backends (and produces identical checksums) on every replay.
TEST(SchedulerTest, DeterministicPlacementUnderConcurrentSubmission) {
  const size_t kClasses = 4;
  const uint64_t kJobs = 200;
  const size_t kClients = 4;
  std::vector<Relation<Tuple8>> tables;
  for (size_t c = 0; c < kClasses; ++c) {
    tables.push_back(MakeRelation(size_t{1} << (11 + c), 50 + c));
  }
  ZipfSampler zipf(kClasses, 0.9, 99);
  std::vector<size_t> job_class(kJobs);
  for (auto& jc : job_class) jc = static_cast<size_t>(zipf.Next() - 1);

  auto replay = [&] {
    SchedulerConfig config;
    config.deterministic = true;
    config.num_workers = 2;
    config.queue_capacity = kJobs;
    Scheduler scheduler(config);
    std::vector<JobHandle> handles(kJobs);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (uint64_t i = c; i < kJobs; i += kClients) {
          PartitionJobSpec spec;
          spec.input = &tables[job_class[i]];
          spec.request.fanout = 256;
          spec.request.output_mode = OutputMode::kHist;
          JobOptions opts;
          opts.arrival_seq = i;
          opts.virtual_arrival_seconds = i * 1e-5;
          auto h = scheduler.Submit(spec, opts);
          ASSERT_TRUE(h.ok());
          handles[i] = std::move(h).ValueUnsafe();
        }
      });
    }
    for (auto& t : clients) t.join();
    scheduler.Shutdown();
    std::vector<std::pair<Backend, uint64_t>> out(kJobs);
    for (uint64_t i = 0; i < kJobs; ++i) {
      auto outcome = handles[i].TryGet();
      EXPECT_TRUE(outcome.has_value());
      EXPECT_EQ(outcome->state, JobState::kCompleted);
      out[i] = {outcome->backend, outcome->checksum};
    }
    return out;
  };

  auto first = replay();
  auto second = replay();
  ASSERT_EQ(first.size(), second.size());
  size_t on_cpu = 0, on_fpga = 0;
  for (uint64_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << "job " << i;
    EXPECT_EQ(first[i].second, second[i].second) << "job " << i;
    (first[i].first == Backend::kCpu ? on_cpu : on_fpga) += 1;
  }
  // The stream is fast enough that the device backlogs: both backends
  // must actually be exercised for the test to mean anything.
  EXPECT_GT(on_cpu, 0u);
  EXPECT_GT(on_fpga, 0u);
}

TEST(SchedulerTest, DrainsOnShutdownWithManyClients) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  SchedulerConfig config;
  config.num_workers = 3;
  config.queue_capacity = 1024;
  Scheduler scheduler(config);
  std::vector<JobHandle> handles;
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 128;
        spec.request.output_mode = OutputMode::kHist;
        auto h = scheduler.Submit(spec);
        if (h.ok()) {
          std::unique_lock<std::mutex> lock(mu);
          handles.push_back(std::move(h).ValueUnsafe());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  scheduler.Shutdown();
  EXPECT_EQ(handles.size(), 100u);
  for (const JobHandle& h : handles) {
    auto out = h.TryGet();
    ASSERT_TRUE(out.has_value()) << "job not drained by Shutdown";
    EXPECT_EQ(out->state, JobState::kCompleted);
  }
}

// Stress the device pool under TSan: racing submitters firing device-pinned
// jobs of every priority class at a 2-device pool while randomly cancelling
// a third of them in flight. Every job must reach a terminal state and the
// pool's backlog accounting must balance back to zero.
TEST(SchedulerTest, StressRacingSubmittersAndCancellationsOnDevicePool) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  const size_t kClients = 4;
  const size_t kJobsPerClient = 40;

  SchedulerConfig config;
  config.fpga_devices = 2;
  config.num_workers = 4;
  config.queue_capacity = kClients * kJobsPerClient;
  Scheduler scheduler(config);

  std::vector<JobHandle> handles(kClients * kJobsPerClient);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x57e55ULL * (c + 1));
      for (size_t i = 0; i < kJobsPerClient; ++i) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 64;
        spec.request.output_mode = OutputMode::kHist;
        JobOptions opts;
        // Everything goes through the device pool; classes and deadlines
        // exercise the WFQ queue and the pool's deadline-ordered waiters.
        opts.pinned = Backend::kFpga;
        opts.job_class = static_cast<JobClass>(rng.Below(kNumJobClasses));
        if (rng.NextDouble() < 0.5) {
          opts.deadline_seconds = 0.001 + rng.NextDouble() * 0.05;
        }
        auto h = scheduler.Submit(spec, opts);
        ASSERT_TRUE(h.ok());
        handles[c * kJobsPerClient + i] = std::move(h).ValueUnsafe();
        if (rng.NextDouble() < 0.33) {
          // Race the cancel against admission, placement, the lease wait
          // and execution — all four interleavings happen across seeds.
          scheduler.Cancel(handles[c * kJobsPerClient + i]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  scheduler.Shutdown();

  size_t completed = 0, cancelled = 0;
  for (const JobHandle& h : handles) {
    auto out = h.TryGet();
    ASSERT_TRUE(out.has_value()) << "job not drained by Shutdown";
    ASSERT_TRUE(out->state == JobState::kCompleted ||
                out->state == JobState::kCancelled)
        << JobStateName(out->state) << ": " << out->status.ToString();
    (out->state == JobState::kCompleted ? completed : cancelled) += 1;
  }
  // With a 33% cancel rate both outcomes must actually occur.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(cancelled, 0u);

  const DevicePool& pool = scheduler.device_pool();
  EXPECT_EQ(pool.waiters(), 0u);
  // Every placement charge was credited back on completion/cancellation.
  EXPECT_NEAR(pool.total_backlog_seconds(), 0.0, 1e-9);
  uint64_t device_grants = 0;
  for (size_t i = 0; i < pool.num_devices(); ++i) {
    device_grants += pool.device_grants(i);
  }
  EXPECT_EQ(device_grants, pool.grants());
  EXPECT_LE(pool.grants(), completed + cancelled);
}

// Determinism regression across pool sizes: for each device count the
// fixed-seed job stream must replay to a bit-identical placement trace
// (backend + checksum per job, folded into one FNV hash), regardless of
// how many client threads race the submissions.
TEST(SchedulerTest, DeterministicTraceHashStableAcrossDeviceCounts) {
  const size_t kTables = 4;
  const uint64_t kJobs = 160;
  std::vector<Relation<Tuple8>> tables;
  for (size_t c = 0; c < kTables; ++c) {
    tables.push_back(MakeRelation(size_t{1} << (11 + c), 90 + c));
  }
  ZipfSampler zipf(kTables, 0.9, 1234);
  std::vector<size_t> table_of(kJobs);
  for (auto& t : table_of) t = static_cast<size_t>(zipf.Next() - 1);
  Rng class_rng(0xdecaf);
  std::vector<JobClass> class_of(kJobs);
  for (auto& cls : class_of) {
    cls = static_cast<JobClass>(class_rng.Below(kNumJobClasses));
  }

  auto trace_hash = [&](size_t devices, size_t clients) {
    SchedulerConfig config;
    config.deterministic = true;
    config.fpga_devices = devices;
    config.num_workers = 2;  // worker virtual clocks are part of the model
    config.queue_capacity = kJobs;
    Scheduler scheduler(config);
    std::vector<JobHandle> handles(kJobs);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (uint64_t i = c; i < kJobs; i += clients) {
          PartitionJobSpec spec;
          spec.input = &tables[table_of[i]];
          spec.request.fanout = 256;
          spec.request.output_mode = OutputMode::kHist;
          JobOptions opts;
          opts.arrival_seq = i;
          opts.virtual_arrival_seconds = i * 1e-5;
          opts.job_class = class_of[i];
          auto h = scheduler.Submit(spec, opts);
          ASSERT_TRUE(h.ok());
          handles[i] = std::move(h).ValueUnsafe();
        }
      });
    }
    for (auto& t : threads) t.join();
    scheduler.Shutdown();
    uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](uint64_t v) {
      for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xff;
        h *= 0x100000001b3ULL;
      }
    };
    for (uint64_t i = 0; i < kJobs; ++i) {
      auto out = handles[i].TryGet();
      EXPECT_TRUE(out.has_value());
      EXPECT_EQ(out->state, JobState::kCompleted);
      fold(static_cast<uint64_t>(out->backend));
      fold(out->checksum);
    }
    return h;
  };

  for (size_t devices : {size_t{1}, size_t{2}, size_t{4}}) {
    const uint64_t solo = trace_hash(devices, 1);
    const uint64_t replay = trace_hash(devices, 1);
    const uint64_t racing = trace_hash(devices, 4);
    EXPECT_EQ(solo, replay) << devices << " devices: replay diverged";
    EXPECT_EQ(solo, racing)
        << devices << " devices: client interleaving changed the trace";
  }
}

}  // namespace
}  // namespace fpart::svc
