// Tests of the svc runtime: placement policy, admission control, the FPGA
// lease arbiter (including cancellation handoff), deterministic replay,
// and cross-backend result parity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "obs/metrics.h"
#include "svc/fpga_arbiter.h"
#include "svc/job_queue.h"
#include "svc/placement.h"
#include "svc/scheduler.h"

namespace fpart::svc {
namespace {

Relation<Tuple8> MakeRelation(size_t n, uint64_t seed = 7) {
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, seed);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).ValueUnsafe();
}

// ---------------------------------------------------------------- placement

TEST(PlacementTest, FpgaWinsWithEmptyQueues) {
  // A large partition job: the device streams at QPI bandwidth while one
  // CPU thread runs an order of magnitude slower.
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 22;
  in.cpu_threads = 1;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kFpga);
  EXPECT_LT(d.est_fpga_seconds, d.est_cpu_seconds);
  EXPECT_DOUBLE_EQ(d.device_seconds, d.est_fpga_seconds);
}

TEST(PlacementTest, BacklogExceedingCpuEstimateFallsBackToCpu) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  ASSERT_EQ(base.backend, Backend::kFpga);
  // Pile enough queued device work onto the arbiter that waiting it out
  // costs more than just running on the host.
  in.fpga_backlog_seconds = base.est_cpu_seconds * 2.0;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kCpu);
  EXPECT_GT(d.fpga_latency_seconds, d.cpu_latency_seconds);
}

TEST(PlacementTest, TieWithinEpsilonPrefersFpga) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision base = DecidePlacement(in);
  // Backlog tuned so the device path is nominally slower, but within the
  // tie epsilon: the device still wins because it frees the host cores.
  const double gap = base.est_cpu_seconds - base.est_fpga_seconds;
  in.fpga_backlog_seconds =
      gap + 0.5 * kPlacementTieEpsilon * base.est_cpu_seconds;
  PlacementDecision d = DecidePlacement(in);
  EXPECT_EQ(d.backend, Backend::kFpga);
  EXPECT_TRUE(d.tie);
  EXPECT_GT(d.fpga_latency_seconds, d.cpu_latency_seconds);
}

TEST(PlacementTest, JoinChoosesHybridOrCpuNeverPlainFpga) {
  PlacementInput in;
  in.kind = JobKind::kJoin;
  in.r_tuples = 1 << 20;
  in.s_tuples = 1 << 20;
  in.cpu_threads = 1;
  PlacementDecision fast = DecidePlacement(in);
  EXPECT_EQ(fast.backend, Backend::kHybrid);
  EXPECT_LT(fast.device_seconds, fast.est_fpga_seconds)
      << "hybrid estimate must include the CPU build+probe share";
  in.fpga_backlog_seconds = fast.est_cpu_seconds * 3.0;
  PlacementDecision slow = DecidePlacement(in);
  EXPECT_EQ(slow.backend, Backend::kCpu);
}

TEST(PlacementTest, IsPureAndDeterministic) {
  PlacementInput in;
  in.kind = JobKind::kPartition;
  in.n_tuples = 123456;
  in.cpu_threads = 3;
  in.fpga_backlog_seconds = 0.001;
  in.cpu_backlog_seconds = 0.0005;
  PlacementDecision a = DecidePlacement(in);
  PlacementDecision b = DecidePlacement(in);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_DOUBLE_EQ(a.fpga_latency_seconds, b.fpga_latency_seconds);
  EXPECT_DOUBLE_EQ(a.cpu_latency_seconds, b.cpu_latency_seconds);
}

// ---------------------------------------------------------------- job queue

TEST(JobQueueTest, PopsInDeadlineThenFifoOrder) {
  JobQueue queue(16, /*strict_seq=*/false);
  auto make = [](uint64_t seq, double deadline_key) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    rec->deadline_key = deadline_key;
    return rec;
  };
  ASSERT_TRUE(queue.Push(make(0, 5.0)).ok());
  ASSERT_TRUE(queue.Push(make(1, 1.0)).ok());
  ASSERT_TRUE(
      queue.Push(make(2, std::numeric_limits<double>::infinity())).ok());
  ASSERT_TRUE(queue.Push(make(3, 1.0)).ok());
  EXPECT_EQ(queue.Pop()->seq, 1u);  // earliest deadline
  EXPECT_EQ(queue.Pop()->seq, 3u);  // same deadline, FIFO
  EXPECT_EQ(queue.Pop()->seq, 0u);
  EXPECT_EQ(queue.Pop()->seq, 2u);  // no deadline last
}

TEST(JobQueueTest, StrictSeqPopsInArrivalOrderAcrossInterleaving) {
  JobQueue queue(16, /*strict_seq=*/true);
  auto make = [](uint64_t seq) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    return rec;
  };
  // Out-of-order push (any client interleaving) still pops 0,1,2,3.
  ASSERT_TRUE(queue.Push(make(2)).ok());
  ASSERT_TRUE(queue.Push(make(0)).ok());
  ASSERT_TRUE(queue.Push(make(3)).ok());
  ASSERT_TRUE(queue.Push(make(1)).ok());
  for (uint64_t want = 0; want < 4; ++want) {
    EXPECT_EQ(queue.Pop()->seq, want);
  }
}

TEST(JobQueueTest, FullQueueShedsWithCapacityError) {
  JobQueue queue(2, /*strict_seq=*/false);
  auto make = [](uint64_t seq) {
    auto rec = std::make_shared<JobRecord>();
    rec->seq = seq;
    return rec;
  };
  ASSERT_TRUE(queue.Push(make(0)).ok());
  ASSERT_TRUE(queue.Push(make(1)).ok());
  Status st = queue.Push(make(2));
  EXPECT_TRUE(st.IsCapacityError());
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.pushed(), 2u);
}

// ------------------------------------------------------------ FPGA arbiter

TEST(FpgaArbiterTest, ExclusiveLease) {
  FpgaArbiter arbiter;
  JobRecord a, b;
  a.seq = 0;
  b.seq = 1;
  ASSERT_TRUE(arbiter.Acquire(&a).ok());
  std::atomic<bool> b_granted{false};
  std::thread waiter([&] {
    ASSERT_TRUE(arbiter.Acquire(&b).ok());
    b_granted.store(true);
    arbiter.Release(&b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(b_granted.load()) << "lease must be exclusive";
  arbiter.Release(&a);
  waiter.join();
  EXPECT_TRUE(b_granted.load());
  EXPECT_EQ(arbiter.grants(), 2u);
}

TEST(FpgaArbiterTest, CancelledWaiterHandsLeaseToNext) {
  FpgaArbiter arbiter;
  JobRecord a, b, c;
  a.seq = 0;
  b.seq = 1;
  c.seq = 2;
  ASSERT_TRUE(arbiter.Acquire(&a).ok());

  Status b_status, c_status;
  std::thread tb([&] { b_status = arbiter.Acquire(&b); });
  std::thread tc([&] {
    c_status = arbiter.Acquire(&c);
    if (c_status.ok()) arbiter.Release(&c);
  });
  // Wait until both are registered waiters, then cancel B while it waits.
  while (arbiter.waiters() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  b.cancel.store(true);
  arbiter.NotifyCancelled();
  tb.join();
  EXPECT_TRUE(b_status.IsCancelled());

  // A releases; the lease must go to C (B is gone), not stall.
  arbiter.Release(&a);
  tc.join();
  EXPECT_TRUE(c_status.ok());
  EXPECT_EQ(arbiter.grants(), 2u);  // A and C; B never held it
}

TEST(FpgaArbiterTest, BacklogAccounting) {
  FpgaArbiter arbiter;
  arbiter.AddBacklog(0.25);
  arbiter.AddBacklog(0.5);
  EXPECT_DOUBLE_EQ(arbiter.backlog_seconds(), 0.75);
  arbiter.SubBacklog(0.25);
  EXPECT_DOUBLE_EQ(arbiter.backlog_seconds(), 0.5);
  arbiter.SubBacklog(10.0);  // never negative
  EXPECT_DOUBLE_EQ(arbiter.backlog_seconds(), 0.0);
}

// --------------------------------------------------------------- scheduler

TEST(SchedulerTest, PartitionJobChecksumMatchesDirectRun) {
  Relation<Tuple8> rel = MakeRelation(1 << 15);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 512;
  spec.request.hash = HashMethod::kMurmur;
  spec.request.output_mode = OutputMode::kHist;

  // Reference: run the same request directly on both engines.
  PartitionRequest direct = spec.request;
  direct.engine = Engine::kCpu;
  auto cpu_run = RunPartition<Tuple8>(direct, rel);
  ASSERT_TRUE(cpu_run.ok());
  std::vector<uint64_t> counts(cpu_run->output.num_partitions());
  for (size_t p = 0; p < counts.size(); ++p) {
    counts[p] = cpu_run->output.part(p).num_tuples;
  }
  const uint64_t want = HistogramChecksum(counts.data(), counts.size());

  SchedulerConfig config;
  config.num_workers = 2;
  Scheduler scheduler(config);
  JobOptions cpu_pin, fpga_pin;
  cpu_pin.pinned = Backend::kCpu;
  fpga_pin.pinned = Backend::kFpga;
  auto on_cpu = scheduler.Submit(spec, cpu_pin);
  auto on_fpga = scheduler.Submit(spec, fpga_pin);
  ASSERT_TRUE(on_cpu.ok());
  ASSERT_TRUE(on_fpga.ok());
  const JobOutcome& cpu_out = on_cpu->Wait();
  const JobOutcome& fpga_out = on_fpga->Wait();
  EXPECT_EQ(cpu_out.state, JobState::kCompleted);
  EXPECT_EQ(fpga_out.state, JobState::kCompleted);
  EXPECT_EQ(cpu_out.backend, Backend::kCpu);
  EXPECT_EQ(fpga_out.backend, Backend::kFpga);
  // Same fanout + hash => same histogram on either backend.
  EXPECT_EQ(cpu_out.checksum, want);
  EXPECT_EQ(fpga_out.checksum, want);
  EXPECT_GT(fpga_out.device_seconds, 0.0);
  EXPECT_EQ(cpu_out.device_seconds, 0.0);
}

TEST(SchedulerTest, JoinJobMatchesOnBothBackends) {
  auto r = GenerateUniqueRelation(1 << 13, KeyDistribution::kRandom, 3);
  auto s = GenerateUniqueRelation(1 << 13, KeyDistribution::kRandom, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());

  JoinJobSpec spec;
  spec.r = &*r;
  spec.s = &*s;
  spec.fanout = 256;

  SchedulerConfig config;
  config.num_workers = 2;
  Scheduler scheduler(config);
  JobOptions cpu_pin, hybrid_pin;
  cpu_pin.pinned = Backend::kCpu;
  hybrid_pin.pinned = Backend::kHybrid;
  auto on_cpu = scheduler.Submit(spec, cpu_pin);
  auto on_hybrid = scheduler.Submit(spec, hybrid_pin);
  ASSERT_TRUE(on_cpu.ok());
  ASSERT_TRUE(on_hybrid.ok());
  const JobOutcome& cpu_out = on_cpu->Wait();
  const JobOutcome& hybrid_out = on_hybrid->Wait();
  ASSERT_EQ(cpu_out.state, JobState::kCompleted) << cpu_out.status.ToString();
  ASSERT_EQ(hybrid_out.state, JobState::kCompleted)
      << hybrid_out.status.ToString();
  // Identical unique key sets: every tuple matches, on either backend.
  EXPECT_EQ(cpu_out.matches, r->size());
  EXPECT_EQ(hybrid_out.matches, r->size());
  EXPECT_EQ(cpu_out.checksum, hybrid_out.checksum);
  EXPECT_GT(hybrid_out.device_seconds, 0.0);
}

TEST(SchedulerTest, FullQueueShedsAndReportsCapacityError) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  auto& shed_counter = *obs::Registry::Global().GetCounter("svc.jobs.shed");
  const uint64_t shed_before = shed_counter.Value();

  SchedulerConfig config;
  config.queue_capacity = 2;
  config.num_workers = 1;
  config.start_paused = true;  // nothing drains until Resume
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 64;

  std::vector<JobHandle> admitted;
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    auto h = scheduler.Submit(spec);
    if (h.ok()) {
      admitted.push_back(std::move(h).ValueUnsafe());
    } else {
      EXPECT_TRUE(h.status().IsCapacityError()) << h.status().ToString();
      ++shed;
    }
  }
  EXPECT_EQ(admitted.size(), 2u);
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(scheduler.jobs_shed(), 3u);
  EXPECT_EQ(shed_counter.Value(), shed_before + 3);

  scheduler.Resume();
  for (const JobHandle& h : admitted) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  scheduler.Shutdown();
}

TEST(SchedulerTest, CancelQueuedJobCompletesAsCancelled) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  SchedulerConfig config;
  config.num_workers = 1;
  config.start_paused = true;
  Scheduler scheduler(config);

  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 64;
  auto h = scheduler.Submit(spec);
  ASSERT_TRUE(h.ok());
  scheduler.Cancel(*h);
  scheduler.Resume();
  const JobOutcome& out = h->Wait();
  EXPECT_EQ(out.state, JobState::kCancelled);
  EXPECT_TRUE(out.status.IsCancelled());
}

TEST(SchedulerTest, PlacementPoliciesPinBackends) {
  Relation<Tuple8> rel = MakeRelation(1 << 13);
  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 256;
  spec.request.output_mode = OutputMode::kHist;

  {
    SchedulerConfig config;
    config.policy = PlacementPolicy::kCpuOnly;
    Scheduler scheduler(config);
    auto h = scheduler.Submit(spec);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->Wait().backend, Backend::kCpu);
  }
  {
    SchedulerConfig config;
    config.policy = PlacementPolicy::kFpgaOnly;
    Scheduler scheduler(config);
    auto h = scheduler.Submit(spec);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h->Wait().backend, Backend::kFpga);
  }
}

// The acceptance property of deterministic mode: the same Zipf job stream
// submitted from several racing client threads lands on identical
// backends (and produces identical checksums) on every replay.
TEST(SchedulerTest, DeterministicPlacementUnderConcurrentSubmission) {
  const size_t kClasses = 4;
  const uint64_t kJobs = 200;
  const size_t kClients = 4;
  std::vector<Relation<Tuple8>> tables;
  for (size_t c = 0; c < kClasses; ++c) {
    tables.push_back(MakeRelation(size_t{1} << (11 + c), 50 + c));
  }
  ZipfSampler zipf(kClasses, 0.9, 99);
  std::vector<size_t> job_class(kJobs);
  for (auto& jc : job_class) jc = static_cast<size_t>(zipf.Next() - 1);

  auto replay = [&] {
    SchedulerConfig config;
    config.deterministic = true;
    config.num_workers = 2;
    config.queue_capacity = kJobs;
    Scheduler scheduler(config);
    std::vector<JobHandle> handles(kJobs);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (uint64_t i = c; i < kJobs; i += kClients) {
          PartitionJobSpec spec;
          spec.input = &tables[job_class[i]];
          spec.request.fanout = 256;
          spec.request.output_mode = OutputMode::kHist;
          JobOptions opts;
          opts.arrival_seq = i;
          opts.virtual_arrival_seconds = i * 1e-5;
          auto h = scheduler.Submit(spec, opts);
          ASSERT_TRUE(h.ok());
          handles[i] = std::move(h).ValueUnsafe();
        }
      });
    }
    for (auto& t : clients) t.join();
    scheduler.Shutdown();
    std::vector<std::pair<Backend, uint64_t>> out(kJobs);
    for (uint64_t i = 0; i < kJobs; ++i) {
      auto outcome = handles[i].TryGet();
      EXPECT_TRUE(outcome.has_value());
      EXPECT_EQ(outcome->state, JobState::kCompleted);
      out[i] = {outcome->backend, outcome->checksum};
    }
    return out;
  };

  auto first = replay();
  auto second = replay();
  ASSERT_EQ(first.size(), second.size());
  size_t on_cpu = 0, on_fpga = 0;
  for (uint64_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << "job " << i;
    EXPECT_EQ(first[i].second, second[i].second) << "job " << i;
    (first[i].first == Backend::kCpu ? on_cpu : on_fpga) += 1;
  }
  // The stream is fast enough that the device backlogs: both backends
  // must actually be exercised for the test to mean anything.
  EXPECT_GT(on_cpu, 0u);
  EXPECT_GT(on_fpga, 0u);
}

TEST(SchedulerTest, DrainsOnShutdownWithManyClients) {
  Relation<Tuple8> rel = MakeRelation(1 << 12);
  SchedulerConfig config;
  config.num_workers = 3;
  config.queue_capacity = 1024;
  Scheduler scheduler(config);
  std::vector<JobHandle> handles;
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 128;
        spec.request.output_mode = OutputMode::kHist;
        auto h = scheduler.Submit(spec);
        if (h.ok()) {
          std::unique_lock<std::mutex> lock(mu);
          handles.push_back(std::move(h).ValueUnsafe());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  scheduler.Shutdown();
  EXPECT_EQ(handles.size(), 100u);
  for (const JobHandle& h : handles) {
    auto out = h.TryGet();
    ASSERT_TRUE(out.has_value()) << "job not drained by Shutdown";
    EXPECT_EQ(out->state, JobState::kCompleted);
  }
}

}  // namespace
}  // namespace fpart::svc
