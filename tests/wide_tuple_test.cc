// End-to-end coverage of the wider tuple configurations (Section 4.4):
// joins and hybrid pipelines over 16/32/64 B tuples.
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "core/fpart.h"

namespace fpart {
namespace {

template <typename T>
struct WideInput {
  Relation<T> r;
  Relation<T> s;
};

template <typename T>
WideInput<T> MakeJoinInput(size_t nr, size_t ns, uint64_t seed) {
  WideInput<T> input;
  auto r = Relation<T>::Allocate(nr);
  auto s = Relation<T>::Allocate(ns);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(s.ok());
  input.r = std::move(*r);
  input.s = std::move(*s);
  Rng rng(seed);
  for (size_t i = 0; i < nr; ++i) {
    T t{};
    // Unique 64-bit keys via a large odd multiplier (bijective mod 2^64).
    TupleTraits<T>::SetKey(&t, (i + 1) * 0x9e3779b97f4a7c15ULL);
    SetPayloadId(&t, i);
    input.r[i] = t;
  }
  for (size_t j = 0; j < ns; ++j) {
    T t{};
    TupleTraits<T>::SetKey(&t, (1 + rng.Below(nr)) * 0x9e3779b97f4a7c15ULL);
    SetPayloadId(&t, j);
    input.s[j] = t;
  }
  return input;
}

template <typename T>
class WideTupleTest : public ::testing::Test {};
using WideTypes = ::testing::Types<Tuple16, Tuple32, Tuple64>;
TYPED_TEST_SUITE(WideTupleTest, WideTypes);

TYPED_TEST(WideTupleTest, CpuRadixJoinIsExact) {
  auto input = MakeJoinInput<TypeParam>(4000, 12000, 5);
  CpuJoinConfig config;
  config.fanout = 64;
  config.hash = HashMethod::kMurmur;
  config.num_threads = 2;
  auto result = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, input.s.size());
}

TYPED_TEST(WideTupleTest, HybridJoinIsExact) {
  auto input = MakeJoinInput<TypeParam>(4000, 8000, 7);
  HybridJoinConfig config;
  config.fpga.fanout = 32;
  config.fpga.output_mode = OutputMode::kHist;
  config.num_threads = 2;
  auto result = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, input.s.size());
}

TYPED_TEST(WideTupleTest, VridModeRoundTrips) {
  const size_t n = 5000;
  std::vector<uint64_t> keys(n);
  Rng rng(9);
  for (auto& k : keys) k = rng.Next() | 1;  // nonzero, never the dummy
  FpgaPartitionerConfig config;
  config.fanout = 32;
  config.layout = LayoutMode::kVrid;
  config.output_mode = OutputMode::kHist;
  FpgaPartitioner<TypeParam> part(config);
  auto run = part.PartitionColumn(keys.data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.total_tuples(), n);
  size_t seen = 0;
  for (size_t p = 0; p < run->output.num_partitions(); ++p) {
    const TypeParam* data = run->output.partition_data(p);
    for (size_t i = 0; i < run->output.partition_slots(p); ++i) {
      if (IsDummy(data[i])) continue;
      uint64_t vrid = GetPayloadId(data[i]);
      ASSERT_LT(vrid, n);
      EXPECT_EQ(data[i].key, keys[vrid]);
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TYPED_TEST(WideTupleTest, SortMergeAgreesWithRadix) {
  auto input = MakeJoinInput<TypeParam>(3000, 6000, 11);
  auto sm = SortMergeJoin(2, input.r, input.s);
  ASSERT_TRUE(sm.ok());
  CpuJoinConfig config;
  config.fanout = 32;
  auto radix = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(sm->matches, radix->matches);
  EXPECT_EQ(sm->checksum, radix->checksum);
}

TYPED_TEST(WideTupleTest, RawThroughputScalesWithWidth) {
  // One cache line per cycle: tuples/s = 1.6e9 / (width/8).
  auto input = MakeJoinInput<TypeParam>(1 << 17, 1, 13);
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.output_mode = OutputMode::kPad;
  config.link = LinkKind::kRawWrapper;
  FpgaPartitioner<TypeParam> part(config);
  auto run = part.Partition(input.r.data(), input.r.size());
  ASSERT_TRUE(run.ok());
  const double expect =
      1600.0 / (sizeof(TypeParam) / 8.0);  // Mtuples/s ceiling
  EXPECT_GT(run->mtuples_per_sec, expect * 0.85);
  EXPECT_LE(run->mtuples_per_sec, expect * 1.01);
}

}  // namespace
}  // namespace fpart
