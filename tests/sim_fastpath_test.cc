// Differential tests of the fast simulation path (SimMode::kFast).
//
// The fast engine (src/fpga/fast_engine.h) must be indistinguishable from
// the reference per-module Tick() loop: identical cycle counts, identical
// CycleStats, identical histograms and bit-identical output buffers —
// across every layout, output mode, hazard policy and key distribution,
// including the PAD overflow abort. The property test additionally
// randomizes the config knobs (fanout, FIFO depths, pad_fraction, link)
// and asserts the two engines never diverge.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "compress/for_codec.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"
#include "datagen/zipf.h"
#include "fpga/partitioner.h"

namespace fpart {
namespace {

enum class KeyDist { kUniform, kZipf };

const char* DistName(KeyDist d) {
  return d == KeyDist::kUniform ? "uniform" : "zipf";
}

std::vector<uint32_t> MakeKeys(size_t n, KeyDist dist, uint64_t seed,
                               double z = 1.1) {
  std::vector<uint32_t> keys(n);
  if (dist == KeyDist::kUniform) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(rng.Next()) & 0x7fffffffu;
    }
  } else {
    ZipfSampler zipf(1 << 20, z, seed);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(zipf.Next()) & 0x7fffffffu;
    }
  }
  return keys;
}

std::vector<Tuple8> MakeTuples(const std::vector<uint32_t>& keys) {
  std::vector<Tuple8> tuples(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tuples[i] = Tuple8{keys[i], static_cast<uint32_t>(i)};
  }
  return tuples;
}

/// Run one partitioning job in the given engine.
Result<FpgaRunResult<Tuple8>> RunOne(FpgaPartitionerConfig config,
                                     SimMode mode, HazardPolicy hazard,
                                     const std::vector<Tuple8>& tuples,
                                     const std::vector<uint32_t>& keys,
                                     const CompressedColumn* column) {
  config.sim_mode = mode;
  FpgaPartitioner<Tuple8> part(config);
  part.set_hazard_policy(hazard);
  switch (config.layout) {
    case LayoutMode::kVrid:
      return part.PartitionColumn(keys.data(), keys.size());
    case LayoutMode::kCompressed:
      return part.PartitionCompressed(*column);
    case LayoutMode::kRid:
      break;
  }
  return part.Partition(tuples.data(), tuples.size());
}

/// The core assertion: both engines produced *identical* runs.
void ExpectIdenticalRuns(const Result<FpgaRunResult<Tuple8>>& ref,
                         const Result<FpgaRunResult<Tuple8>>& fast,
                         const std::string& label) {
  ASSERT_EQ(ref.ok(), fast.ok())
      << label << ": ref=" << ref.status().ToString()
      << " fast=" << fast.status().ToString();
  if (!ref.ok()) {
    // Both aborted (e.g. PAD overflow): same code, same message, which
    // includes the overflowing partition index.
    EXPECT_EQ(ref.status().ToString(), fast.status().ToString()) << label;
    return;
  }
  const FpgaRunResult<Tuple8>& a = *ref;
  const FpgaRunResult<Tuple8>& b = *fast;
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << label;
  EXPECT_EQ(a.stats.input_lines, b.stats.input_lines) << label;
  EXPECT_EQ(a.stats.output_lines, b.stats.output_lines) << label;
  EXPECT_EQ(a.stats.read_lines, b.stats.read_lines) << label;
  EXPECT_EQ(a.stats.backpressure_cycles, b.stats.backpressure_cycles) << label;
  EXPECT_EQ(a.stats.read_stall_cycles, b.stats.read_stall_cycles) << label;
  EXPECT_EQ(a.stats.write_stall_cycles, b.stats.write_stall_cycles) << label;
  EXPECT_EQ(a.stats.read_stall_cycles + a.stats.write_stall_cycles,
            a.stats.backpressure_cycles)
      << label;
  EXPECT_EQ(a.stats.internal_stall_cycles, b.stats.internal_stall_cycles)
      << label;
  EXPECT_EQ(a.stats.histogram_cycles, b.stats.histogram_cycles) << label;
  EXPECT_EQ(a.stats.flush_cycles, b.stats.flush_cycles) << label;
  EXPECT_EQ(a.stats.dummy_tuples, b.stats.dummy_tuples) << label;
  EXPECT_EQ(a.seconds, b.seconds) << label;
  EXPECT_EQ(a.read_write_ratio, b.read_write_ratio) << label;
  EXPECT_EQ(a.histogram, b.histogram) << label;

  ASSERT_EQ(a.output.num_partitions(), b.output.num_partitions()) << label;
  ASSERT_EQ(a.output.total_cls(), b.output.total_cls()) << label;
  for (size_t p = 0; p < a.output.num_partitions(); ++p) {
    EXPECT_EQ(a.output.part(p).base_cl, b.output.part(p).base_cl) << label;
    EXPECT_EQ(a.output.part(p).capacity_cls, b.output.part(p).capacity_cls)
        << label;
    EXPECT_EQ(a.output.part(p).written_cls, b.output.part(p).written_cls)
        << label;
    EXPECT_EQ(a.output.part(p).num_tuples, b.output.part(p).num_tuples)
        << label;
  }
  // Bit-identical output bytes, dummy padding included (AlignedBuffer is
  // zero-initialized, so unwritten lines compare equal too).
  EXPECT_EQ(0, std::memcmp(a.output.line(0), b.output.line(0),
                           a.output.total_cls() * kCacheLineSize))
      << label;
}

void RunDifferential(FpgaPartitionerConfig config, HazardPolicy hazard,
                     KeyDist dist, size_t n, const std::string& label,
                     uint64_t seed = 7) {
  auto keys = MakeKeys(n, dist, seed);
  auto tuples = MakeTuples(keys);
  CompressedColumn column;
  if (config.layout == LayoutMode::kCompressed) {
    auto compressed = CompressedColumn::Compress(keys.data(), keys.size());
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    column = std::move(*compressed);
  }
  auto ref = RunOne(config, SimMode::kReference, hazard, tuples, keys, &column);
  auto fast = RunOne(config, SimMode::kFast, hazard, tuples, keys, &column);
  ExpectIdenticalRuns(ref, fast, label);
}

// ---------------------------------------------------------------------------
// The full differential matrix: layout × output mode × hazard × distribution.

TEST(SimFastPathTest, FullMatrix) {
  const LayoutMode layouts[] = {LayoutMode::kRid, LayoutMode::kVrid,
                                LayoutMode::kCompressed};
  const OutputMode modes[] = {OutputMode::kPad, OutputMode::kHist};
  const HazardPolicy hazards[] = {HazardPolicy::kForward, HazardPolicy::kStall};
  const KeyDist dists[] = {KeyDist::kUniform, KeyDist::kZipf};
  for (LayoutMode layout : layouts) {
    for (OutputMode mode : modes) {
      for (HazardPolicy hazard : hazards) {
        for (KeyDist dist : dists) {
          FpgaPartitionerConfig config;
          config.fanout = 256;
          config.layout = layout;
          config.output_mode = mode;
          config.pad_fraction = 1.0;
          std::string label =
              std::string(LayoutModeName(layout)) + "/" +
              OutputModeName(mode) + "/" +
              (hazard == HazardPolicy::kForward ? "forward" : "stall") + "/" +
              DistName(dist);
          RunDifferential(config, hazard, dist, 6000, label);
        }
      }
    }
  }
}

TEST(SimFastPathTest, TinyInputsAndPartialLines) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                   size_t{63}, size_t{64}, size_t{100}}) {
    for (OutputMode mode : {OutputMode::kPad, OutputMode::kHist}) {
      FpgaPartitionerConfig config;
      config.fanout = 16;
      config.output_mode = mode;
      RunDifferential(config, HazardPolicy::kForward, KeyDist::kUniform, n,
                      "tiny n=" + std::to_string(n) + " " +
                          OutputModeName(mode));
    }
  }
}

TEST(SimFastPathTest, RawWrapperLinkAndInterference) {
  FpgaPartitionerConfig config;
  config.fanout = 512;
  config.link = LinkKind::kRawWrapper;
  RunDifferential(config, HazardPolicy::kForward, KeyDist::kUniform, 10000,
                  "raw wrapper");
  FpgaPartitionerConfig interfered;
  interfered.fanout = 512;
  interfered.interference = Interference::kInterfered;
  RunDifferential(interfered, HazardPolicy::kForward, KeyDist::kUniform, 10000,
                  "interfered");
}

TEST(SimFastPathTest, RadixHashAndRangePartitioning) {
  FpgaPartitionerConfig radix;
  radix.fanout = 128;
  radix.hash = HashMethod::kRadix;
  RunDifferential(radix, HazardPolicy::kForward, KeyDist::kUniform, 8000,
                  "radix");

  FpgaPartitionerConfig range;
  range.fanout = 64;
  range.hash = HashMethod::kRange;
  range.range_splitters.resize(63);
  for (size_t i = 0; i < range.range_splitters.size(); ++i) {
    range.range_splitters[i] = (i + 1) * (0x80000000ull / 64);
  }
  RunDifferential(range, HazardPolicy::kForward, KeyDist::kUniform, 8000,
                  "range");
}

TEST(SimFastPathTest, PadOverflowAbortsIdentically) {
  // Heavy skew into a tightly padded PAD run overflows; the abort must
  // happen at the same cycle with the same partition in both engines.
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.pad_fraction = 0.01;
  auto keys = MakeKeys(20000, KeyDist::kZipf, 3, /*z=*/1.4);
  auto tuples = MakeTuples(keys);
  auto ref = RunOne(config, SimMode::kReference, HazardPolicy::kForward,
                    tuples, keys, nullptr);
  auto fast = RunOne(config, SimMode::kFast, HazardPolicy::kForward, tuples,
                     keys, nullptr);
  ASSERT_FALSE(ref.ok());
  ASSERT_TRUE(ref.status().IsPartitionOverflow());
  ExpectIdenticalRuns(ref, fast, "pad overflow");
}

// ---------------------------------------------------------------------------
// Property test: randomized config knobs never diverge the two engines.

TEST(SimFastPathTest, RandomizedKnobsNeverDiverge) {
  std::mt19937_64 rng(0xF457F457ull);
  for (int iter = 0; iter < 24; ++iter) {
    FpgaPartitionerConfig config;
    config.fanout = 1u << (1 + rng() % 9);  // 2 .. 512
    config.output_mode = rng() % 2 ? OutputMode::kPad : OutputMode::kHist;
    config.layout = std::array<LayoutMode, 3>{
        LayoutMode::kRid, LayoutMode::kVrid,
        LayoutMode::kCompressed}[rng() % 3];
    config.hash = rng() % 2 ? HashMethod::kMurmur : HashMethod::kRadix;
    config.lane_fifo_depth =
        static_cast<uint32_t>(config.hash_latency() + 2 + rng() % 12);
    config.output_fifo_depth = 2 + rng() % 10;
    config.pad_fraction = 0.05 + static_cast<double>(rng() % 100) / 100.0;
    if (rng() % 4 == 0) config.link = LinkKind::kRawWrapper;
    HazardPolicy hazard =
        rng() % 2 ? HazardPolicy::kForward : HazardPolicy::kStall;
    KeyDist dist = rng() % 2 ? KeyDist::kUniform : KeyDist::kZipf;
    size_t n = 500 + rng() % 20000;
    std::string label = "iter " + std::to_string(iter) + " fanout=" +
                        std::to_string(config.fanout) + " n=" +
                        std::to_string(n);
    RunDifferential(config, hazard, dist, n, label, /*seed=*/rng());
  }
}

}  // namespace
}  // namespace fpart
