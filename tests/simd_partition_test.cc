// End-to-end parity of the fused SIMD partitioning path: CpuPartition with
// use_simd on must produce byte-identical PartitionedOutput (including the
// dummy padding of each partition's last cache line) to the PR-1 scalar
// path, across fanouts, tuple widths, thread counts, both scatter codes
// (Code 1 direct / Code 2 buffered), and prefetch distances.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cpu/partitioner.h"
#include "datagen/relation.h"

namespace fpart {
namespace {

template <typename T>
Relation<T> MakeRelation(size_t n, uint64_t seed) {
  auto rel = Relation<T>::Allocate(n);
  EXPECT_TRUE(rel.ok());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    T t{};
    TupleTraits<T>::SetKey(&t, rng.Next() & 0x7fffffffu);
    SetPayloadId(&t, i);
    (*rel)[i] = t;
  }
  return std::move(*rel);
}

// Assert the two runs are observationally identical: same histogram, same
// partition metadata, and the same bytes in every written slot (real
// tuples and dummy padding alike).
template <typename T>
void ExpectIdenticalOutput(const CpuRunResult<T>& a, const CpuRunResult<T>& b) {
  ASSERT_EQ(a.histogram, b.histogram);
  ASSERT_EQ(a.output.num_partitions(), b.output.num_partitions());
  ASSERT_EQ(a.output.total_cls(), b.output.total_cls());
  for (size_t p = 0; p < a.output.num_partitions(); ++p) {
    ASSERT_EQ(a.output.part(p).base_cl, b.output.part(p).base_cl) << p;
    ASSERT_EQ(a.output.part(p).written_cls, b.output.part(p).written_cls) << p;
    ASSERT_EQ(a.output.part(p).num_tuples, b.output.part(p).num_tuples) << p;
    ASSERT_EQ(a.output.partition_slots(p), b.output.partition_slots(p)) << p;
    ASSERT_EQ(std::memcmp(a.output.partition_data(p),
                          b.output.partition_data(p),
                          a.output.partition_slots(p) * sizeof(T)),
              0)
        << "partition " << p << " bytes differ";
  }
}

struct ParityParam {
  uint32_t fanout;
  size_t threads;
  bool use_buffers;
  HashMethod hash;
};

template <typename T>
void RunParity(const ParityParam& param) {
  auto rel = MakeRelation<T>(120000, 23 + param.fanout);
  CpuPartitionerConfig scalar;
  scalar.fanout = param.fanout;
  scalar.hash = param.hash;
  scalar.num_threads = param.threads;
  scalar.use_buffers = param.use_buffers;
  scalar.use_simd = false;
  CpuPartitionerConfig fused = scalar;
  fused.use_simd = true;
  auto a = CpuPartition(scalar, rel.data(), rel.size());
  auto b = CpuPartition(fused, rel.data(), rel.size());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdenticalOutput(*a, *b);
  ASSERT_EQ(b->output.total_tuples(), rel.size());
}

class SimdPartitionParityTest : public ::testing::TestWithParam<ParityParam> {
};

TEST_P(SimdPartitionParityTest, Tuple8ByteIdentical) {
  RunParity<Tuple8>(GetParam());
}

TEST_P(SimdPartitionParityTest, Tuple16ByteIdentical) {
  RunParity<Tuple16>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdPartitionParityTest,
    ::testing::Values(
        // The acceptance fanouts, both scatter codes, single and multi
        // threaded (multi-thread exercises the mid-line cursor re-align).
        ParityParam{64, 1, true, HashMethod::kRadix},
        ParityParam{64, 4, true, HashMethod::kRadix},
        ParityParam{8192, 1, true, HashMethod::kRadix},
        ParityParam{8192, 4, true, HashMethod::kRadix},
        ParityParam{8192, 1, false, HashMethod::kRadix},
        ParityParam{8192, 4, false, HashMethod::kRadix},
        ParityParam{64, 4, false, HashMethod::kMurmur},
        ParityParam{8192, 4, true, HashMethod::kMurmur},
        ParityParam{1024, 3, true, HashMethod::kCrc32},
        ParityParam{1024, 2, true, HashMethod::kMultiplicative}),
    [](const auto& info) {
      return std::string(HashMethodName(info.param.hash)) + "_f" +
             std::to_string(info.param.fanout) + "_t" +
             std::to_string(info.param.threads) +
             (info.param.use_buffers ? "_buf" : "_direct");
    });

TEST(SimdPartitionTest, PrefetchDistanceDoesNotChangeOutput) {
  auto rel = MakeRelation<Tuple8>(60000, 91);
  CpuPartitionerConfig config;
  config.fanout = 512;
  config.num_threads = 2;
  Result<CpuRunResult<Tuple8>> reference =
      CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(reference.ok());
  for (uint32_t dist : {0u, 1u, 4u, 64u, 1000u}) {
    config.prefetch_distance = dist;
    auto run = CpuPartition(config, rel.data(), rel.size());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ExpectIdenticalOutput(*reference, *run);
  }
}

TEST(SimdPartitionTest, RangePartitioningWithSimdEnabled) {
  // kRange has no vector kernel; use_simd must still give correct output
  // through the fused path's scalar batch fallback.
  auto rel = MakeRelation<Tuple8>(40000, 7);
  CpuPartitionerConfig config;
  config.fanout = 8;
  config.hash = HashMethod::kRange;
  config.range_splitters = {0x10000000, 0x20000000, 0x30000000, 0x40000000,
                            0x50000000, 0x60000000, 0x70000000};
  config.num_threads = 2;
  config.use_simd = false;
  auto a = CpuPartition(config, rel.data(), rel.size());
  config.use_simd = true;
  auto b = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdenticalOutput(*a, *b);
}

TEST(SimdPartitionTest, WideFanoutUsesWideIndices) {
  // Fanout above 2^16 switches the index scratch from uint16_t to
  // uint32_t; pin that path against the scalar reference too.
  auto rel = MakeRelation<Tuple8>(80000, 41);
  CpuPartitionerConfig config;
  config.fanout = uint32_t{1} << 17;
  config.num_threads = 2;
  config.use_simd = false;
  auto a = CpuPartition(config, rel.data(), rel.size());
  config.use_simd = true;
  auto b = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdenticalOutput(*a, *b);
}

TEST(SimdPartitionTest, TinyAndEmptyInputs) {
  CpuPartitionerConfig config;
  config.fanout = 8192;
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{1023},
                   size_t{1025}}) {
    auto rel = MakeRelation<Tuple8>(n, 3 + n);
    config.use_simd = false;
    auto a = CpuPartition(config, rel.data(), rel.size());
    config.use_simd = true;
    auto b = CpuPartition(config, rel.data(), rel.size());
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectIdenticalOutput(*a, *b);
    ASSERT_EQ(b->output.total_tuples(), n);
  }
}

}  // namespace
}  // namespace fpart
