// Unit tests for common/topology: policy parsing, synthetic and detected
// topologies, pin-plan construction per policy, self-pinning, and the
// thread-local worker context.
#include "common/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

namespace fpart {
namespace {

TEST(AffinityPolicyTest, ParseAcceptsCanonicalNames) {
  AffinityPolicy p = AffinityPolicy::kNone;
  EXPECT_TRUE(ParseAffinityPolicy("none", &p));
  EXPECT_EQ(p, AffinityPolicy::kNone);
  EXPECT_TRUE(ParseAffinityPolicy("compact", &p));
  EXPECT_EQ(p, AffinityPolicy::kCompact);
  EXPECT_TRUE(ParseAffinityPolicy("scatter", &p));
  EXPECT_EQ(p, AffinityPolicy::kScatter);
  EXPECT_TRUE(ParseAffinityPolicy("numa-local", &p));
  EXPECT_EQ(p, AffinityPolicy::kNumaLocal);
}

TEST(AffinityPolicyTest, ParseAcceptsUnderscoreAlias) {
  AffinityPolicy p = AffinityPolicy::kNone;
  EXPECT_TRUE(ParseAffinityPolicy("numa_local", &p));
  EXPECT_EQ(p, AffinityPolicy::kNumaLocal);
}

TEST(AffinityPolicyTest, ParseRejectsUnknownLeavingValueUntouched) {
  AffinityPolicy p = AffinityPolicy::kScatter;
  EXPECT_FALSE(ParseAffinityPolicy("turbo", &p));
  EXPECT_EQ(p, AffinityPolicy::kScatter);
  EXPECT_FALSE(ParseAffinityPolicy("", &p));
  EXPECT_EQ(p, AffinityPolicy::kScatter);
}

TEST(AffinityPolicyTest, NameParsesBack) {
  for (AffinityPolicy p :
       {AffinityPolicy::kNone, AffinityPolicy::kCompact,
        AffinityPolicy::kScatter, AffinityPolicy::kNumaLocal}) {
    AffinityPolicy back = AffinityPolicy::kNone;
    ASSERT_TRUE(ParseAffinityPolicy(AffinityPolicyName(p), &back));
    EXPECT_EQ(back, p);
  }
}

TEST(TopologyTest, SyntheticCounts) {
  // 2 nodes x 4 logical CPUs, 2-way SMT: 4 physical cores total.
  Topology topo = Topology::Synthetic(2, 4, 2);
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_cores(), 4u);
  // Linux-style enumeration: node 0 owns cpus 0..3, node 1 owns 4..7.
  for (int cpu = 0; cpu < 8; ++cpu) {
    EXPECT_EQ(topo.NodeOfCpu(cpu), cpu / 4) << "cpu " << cpu;
  }
}

TEST(TopologyTest, SyntheticSmtSiblingsShareCore) {
  Topology topo = Topology::Synthetic(1, 4, 2);  // cores 0,1; siblings +2
  const auto& cpus = topo.cpus();
  ASSERT_EQ(cpus.size(), 4u);
  EXPECT_EQ(cpus[0].core, cpus[2].core);  // cpu0 and cpu2 are siblings
  EXPECT_EQ(cpus[0].smt, 0);
  EXPECT_EQ(cpus[2].smt, 1);
  EXPECT_EQ(cpus[1].core, cpus[3].core);
}

TEST(TopologyTest, PinPlanNoneLeavesEveryWorkerUnpinned) {
  Topology topo = Topology::Synthetic(2, 4, 2);
  auto plan = topo.PinPlan(AffinityPolicy::kNone, 6);
  ASSERT_EQ(plan.size(), 6u);
  for (const auto& pin : plan) {
    EXPECT_EQ(pin.cpu, -1);
    EXPECT_EQ(pin.node, 0);
  }
}

TEST(TopologyTest, PinPlanCompactPacksSiblingsFirst) {
  // Synthetic(2, 4, 2): node 0 = cpus {0,1,2,3}, cores {0,1,0,1},
  // smt {0,0,1,1}. Compact fills core 0's siblings (cpu 0, cpu 2)
  // before core 1.
  Topology topo = Topology::Synthetic(2, 4, 2);
  auto plan = topo.PinPlan(AffinityPolicy::kCompact, 4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0].cpu, 0);
  EXPECT_EQ(plan[1].cpu, 2);  // hyperthread sibling of cpu 0
  EXPECT_EQ(plan[2].cpu, 1);
  EXPECT_EQ(plan[3].cpu, 3);
  for (const auto& pin : plan) EXPECT_EQ(pin.node, 0);  // all on node 0
}

TEST(TopologyTest, PinPlanScatterOnePerCoreBeforeSiblings) {
  // Scatter crosses packages before touching any smt-1 sibling: the
  // first four workers land on the four distinct physical cores.
  Topology topo = Topology::Synthetic(2, 4, 2);
  auto plan = topo.PinPlan(AffinityPolicy::kScatter, 8);
  ASSERT_EQ(plan.size(), 8u);
  EXPECT_EQ(plan[0].cpu, 0);
  EXPECT_EQ(plan[1].cpu, 1);
  EXPECT_EQ(plan[2].cpu, 4);
  EXPECT_EQ(plan[3].cpu, 5);
  // Only then the siblings.
  EXPECT_EQ(plan[4].cpu, 2);
  EXPECT_EQ(plan[5].cpu, 3);
  EXPECT_EQ(plan[6].cpu, 6);
  EXPECT_EQ(plan[7].cpu, 7);
}

TEST(TopologyTest, PinPlanNumaLocalIsNodeMajorContiguous) {
  // The ParallelForNodeChunks contract: workers of one node occupy one
  // contiguous index block.
  Topology topo = Topology::Synthetic(2, 4, 2);
  auto plan = topo.PinPlan(AffinityPolicy::kNumaLocal, 8);
  ASSERT_EQ(plan.size(), 8u);
  for (size_t t = 0; t < 4; ++t) EXPECT_EQ(plan[t].node, 0) << t;
  for (size_t t = 4; t < 8; ++t) EXPECT_EQ(plan[t].node, 1) << t;
  // Within a node: cores before siblings (scatter order).
  EXPECT_EQ(plan[0].cpu, 0);
  EXPECT_EQ(plan[1].cpu, 1);
  EXPECT_EQ(plan[2].cpu, 2);
  EXPECT_EQ(plan[3].cpu, 3);
}

TEST(TopologyTest, PinPlanAssignsEachCpuOnce) {
  Topology topo = Topology::Synthetic(2, 4, 2);
  for (AffinityPolicy p : {AffinityPolicy::kCompact, AffinityPolicy::kScatter,
                           AffinityPolicy::kNumaLocal}) {
    auto plan = topo.PinPlan(p, 8);
    std::set<int> cpus;
    for (const auto& pin : plan) {
      EXPECT_GE(pin.cpu, 0);
      EXPECT_TRUE(cpus.insert(pin.cpu).second)
          << "cpu " << pin.cpu << " pinned twice under "
          << AffinityPolicyName(p);
    }
    EXPECT_EQ(cpus.size(), 8u);
  }
}

TEST(TopologyTest, PinPlanOversubscribedWorkersStayUnpinned) {
  Topology topo = Topology::Synthetic(1, 2, 1);
  auto plan = topo.PinPlan(AffinityPolicy::kCompact, 5);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_GE(plan[0].cpu, 0);
  EXPECT_GE(plan[1].cpu, 0);
  for (size_t t = 2; t < 5; ++t) {
    EXPECT_EQ(plan[t].cpu, -1) << "overflow worker " << t;
    EXPECT_EQ(plan[t].node, 0);  // round-robin node tag on a 1-node host
  }
}

TEST(TopologyTest, DetectProducesConsistentHost) {
  // Whatever this host looks like (full sysfs or the fallback), the
  // detected topology must be internally consistent.
  Topology topo = Topology::Detect();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_nodes(), 1u);
  EXPECT_GE(topo.num_cores(), 1u);
  EXPECT_LE(topo.num_cores(), topo.num_cpus());
  for (const CpuSlot& s : topo.cpus()) {
    EXPECT_GE(s.cpu, 0);
    EXPECT_GE(s.node, 0);
    EXPECT_LT(static_cast<size_t>(s.node), topo.num_nodes());
    EXPECT_EQ(topo.NodeOfCpu(s.cpu), s.node);
  }
  // Host() is the cached singleton of the same detection.
  EXPECT_EQ(Topology::Host().num_cpus(), Topology::Host().num_cpus());
}

TEST(TopologyTest, HostPinPlanIsDeterministic) {
  const Topology& host = Topology::Host();
  auto a = host.PinPlan(AffinityPolicy::kNumaLocal, 7);
  auto b = host.PinPlan(AffinityPolicy::kNumaLocal, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].cpu, b[t].cpu);
    EXPECT_EQ(a[t].node, b[t].node);
  }
}

TEST(PinThreadTest, NegativeCpuIsRejected) {
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
}

#if defined(__linux__)
TEST(PinThreadTest, SelfPinIsVisibleInAffinityMask) {
  // Pin a scratch thread (not the test runner) to the first online CPU
  // and read the mask back. If the kernel rejects the pin (restricted
  // cpuset), false is the documented non-fatal answer.
  const Topology& host = Topology::Host();
  ASSERT_GE(host.num_cpus(), 1u);
  const int cpu = host.cpus()[0].cpu;
  bool pinned = false;
  bool mask_ok = false;
  std::thread t([&] {
    pinned = PinCurrentThreadToCpu(cpu);
    if (!pinned) return;
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
      mask_ok = CPU_COUNT(&set) == 1 &&
                CPU_ISSET(static_cast<unsigned>(cpu), &set);
    }
  });
  t.join();
  if (pinned) {
    EXPECT_TRUE(mask_ok);
  }
}
#endif

TEST(WorkerContextTest, DefaultIsOutsideAnyPool) {
  const WorkerContext& ctx = CurrentWorkerContext();
  EXPECT_EQ(ctx.worker, -1);
  EXPECT_EQ(ctx.pool, nullptr);
}

TEST(WorkerContextTest, SetIsThreadLocal) {
  WorkerContext ctx;
  ctx.worker = 3;
  ctx.node = 1;
  ctx.cpu = 5;
  std::thread t([&] {
    SetCurrentWorkerContext(ctx);
    EXPECT_EQ(CurrentWorkerContext().worker, 3);
    EXPECT_EQ(CurrentWorkerContext().node, 1);
    EXPECT_EQ(CurrentWorkerContext().cpu, 5);
  });
  t.join();
  // The setter ran in another thread; this thread stays untouched.
  EXPECT_EQ(CurrentWorkerContext().worker, -1);
}

}  // namespace
}  // namespace fpart
