// Tests of SLO-aware admission control (svc/admission.h): the EWMA
// cost-model correction (including the learn-against-the-raw-model
// invariant), budget/verdict typing (SloError vs CapacityError), the
// pending-work ledger, the backlog-pressure autoscaling signal, and the
// scheduler integration — deterministic-mode exactness (no admitted job
// ever misses the budget its prediction fit), live-mode synchronous
// rejection, parked-worker autoscaling, and replay-hash invariance.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "datagen/workloads.h"
#include "obs/metrics.h"
#include "svc/admission.h"
#include "svc/scheduler.h"

namespace fpart::svc {
namespace {

Relation<Tuple8> MakeRelation(size_t n, uint64_t seed = 7) {
  auto rel = GenerateRawRelation(n, KeyDistribution::kRandom, seed);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).ValueUnsafe();
}

SloConfig EnabledConfig() {
  SloConfig cfg;
  cfg.enabled = true;
  return cfg;
}

// --------------------------------------------------------- size classes

TEST(SizeClassTest, BucketsMatchThePlaceErrHistogramAxes) {
  EXPECT_EQ(SizeClassOf(0.0), 0u);
  EXPECT_EQ(SizeClassOf(64.0 * 1024 - 1), 0u);
  EXPECT_EQ(SizeClassOf(64.0 * 1024), 1u);
  EXPECT_EQ(SizeClassOf(1024.0 * 1024 - 1), 1u);
  EXPECT_EQ(SizeClassOf(1024.0 * 1024), 2u);
  EXPECT_EQ(SizeClassOf(1e12), 2u);
}

TEST(SizeClassTest, NamesCoverEveryClass) {
  EXPECT_STREQ(SizeClassName(0), "small");
  EXPECT_STREQ(SizeClassName(1), "medium");
  EXPECT_STREQ(SizeClassName(2), "large");
  EXPECT_STREQ(SizeClassName(99), "unknown");
}

// ------------------------------------------------------- EWMA correction

TEST(AdmissionControllerTest, CorrectionStartsAtUnityEverywhere) {
  AdmissionController adm(EnabledConfig(), 2, 1);
  for (size_t b = 0; b < kNumBackends; ++b) {
    for (size_t s = 0; s < kNumSizeClasses; ++s) {
      EXPECT_DOUBLE_EQ(adm.correction(static_cast<Backend>(b), s), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(adm.Correct(Backend::kCpu, 100.0, 0.5), 0.5);
}

TEST(AdmissionControllerTest, EwmaConvergesToTheObservedRatio) {
  SloConfig cfg = EnabledConfig();
  cfg.ewma_alpha = 0.3;
  AdmissionController adm(cfg, 2, 1);
  // A model that is consistently 2x too optimistic.
  for (int i = 0; i < 100; ++i) {
    adm.ObserveRun(Backend::kCpu, /*demand_tuples=*/1000.0,
                   /*model_est_seconds=*/1.0,
                   /*placed_est_seconds=*/adm.correction(Backend::kCpu, 0),
                   /*actual_seconds=*/2.0, /*learn=*/true);
  }
  EXPECT_NEAR(adm.correction(Backend::kCpu, 0), 2.0, 1e-3);
}

TEST(AdmissionControllerTest, EwmaLearnsAgainstTheRawModelNotItsOwnOutput) {
  // The trap this API shape exists to avoid: learning from the ratio
  // actual / corrected_estimate has fixed point sqrt(k), not k. Feed the
  // scheduler's actual loop — placed = model x correction — and require
  // convergence to the full factor.
  SloConfig cfg = EnabledConfig();
  cfg.ewma_alpha = 0.3;
  AdmissionController adm(cfg, 2, 1);
  const double k = 2.0;
  for (int i = 0; i < 200; ++i) {
    const double model = 1.0;
    const double placed = model * adm.correction(Backend::kFpga, 2);
    adm.ObserveRun(Backend::kFpga, /*demand_tuples=*/2e6, model, placed,
                   /*actual_seconds=*/k * model, /*learn=*/true);
  }
  EXPECT_GT(adm.correction(Backend::kFpga, 2), 1.9);  // not sqrt(2)=1.41
  EXPECT_NEAR(adm.correction(Backend::kFpga, 2), k, 1e-3);
}

TEST(AdmissionControllerTest, CorrectionIsClampedToConfiguredBand) {
  SloConfig cfg = EnabledConfig();
  cfg.ewma_alpha = 1.0;  // jump straight to the sample
  AdmissionController adm(cfg, 2, 1);
  adm.ObserveRun(Backend::kCpu, 1.0, 1.0, 1.0, 100.0, true);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kCpu, 0), cfg.correction_cap);
  adm.ObserveRun(Backend::kCpu, 1.0, 1.0, 1.0, 1e-6, true);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kCpu, 0), cfg.correction_floor);
}

TEST(AdmissionControllerTest, DisabledControllerNeverLearns) {
  SloConfig off;  // enabled = false
  AdmissionController adm(off, 2, 1);
  adm.ObserveRun(Backend::kCpu, 1.0, 1.0, 1.0, 3.0, true);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kCpu, 0), 1.0);
}

TEST(AdmissionControllerTest, LearnFlagFalseSuppressesTheUpdate) {
  // The deterministic-mode path: corrections must stay at 1.0 so replays
  // are bit-identical to an admission-off run.
  AdmissionController adm(EnabledConfig(), 2, 1);
  adm.ObserveRun(Backend::kCpu, 1.0, 1.0, 1.0, 3.0, /*learn=*/false);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kCpu, 0), 1.0);
}

TEST(AdmissionControllerTest, CellsAreIndependentPerBackendAndSize) {
  SloConfig cfg = EnabledConfig();
  cfg.ewma_alpha = 1.0;
  AdmissionController adm(cfg, 2, 1);
  adm.ObserveRun(Backend::kFpga, /*demand=*/2e6, 1.0, 1.0, 2.0, true);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kFpga, 2), 2.0);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kFpga, 0), 1.0);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kCpu, 2), 1.0);
  EXPECT_DOUBLE_EQ(adm.correction(Backend::kHybrid, 2), 1.0);
}

// --------------------------------------------------------- budget & verdict

TEST(AdmissionControllerTest, BudgetIsTheTighterOfDeadlineAndClassSlo) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 2.0, 0.0};
  AdmissionController adm(cfg, 2, 1);
  EXPECT_DOUBLE_EQ(adm.BudgetSeconds(JobClass::kInteractive, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(adm.BudgetSeconds(JobClass::kInteractive, 0.2), 0.2);
  EXPECT_DOUBLE_EQ(adm.BudgetSeconds(JobClass::kInteractive, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(adm.BudgetSeconds(JobClass::kBestEffort, 1.0), 1.0);
  EXPECT_TRUE(std::isinf(adm.BudgetSeconds(JobClass::kBestEffort, 0.0)));
}

TEST(AdmissionControllerTest, JudgeAdmitsWithinBudgetAndCounts) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 2.0, 8.0};
  AdmissionController adm(cfg, 2, 1);
  const auto v = adm.Judge(JobClass::kBatch, 0.0, 1.5);
  EXPECT_TRUE(v.admit);
  EXPECT_TRUE(v.status.ok());
  EXPECT_DOUBLE_EQ(v.budget_seconds, 2.0);
  EXPECT_EQ(adm.considered(), 1u);
  EXPECT_EQ(adm.admitted(), 1u);
  EXPECT_EQ(adm.rejected_slo(), 0u);
}

TEST(AdmissionControllerTest, SloRejectionIsTypedAndPerClassCounted) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 2.0, 8.0};
  AdmissionController adm(cfg, 2, 1);
  const auto v = adm.Judge(JobClass::kInteractive, 0.0, 1.0);
  EXPECT_FALSE(v.admit);
  EXPECT_TRUE(v.status.IsSloError());
  EXPECT_FALSE(v.status.IsCapacityError());
  EXPECT_FALSE(v.deadline_bound);
  EXPECT_EQ(adm.rejected_slo(), 1u);
  EXPECT_EQ(adm.rejected_deadline(), 0u);
  EXPECT_EQ(adm.rejected(JobClass::kInteractive), 1u);
  EXPECT_EQ(adm.rejected(JobClass::kBatch), 0u);
}

TEST(AdmissionControllerTest, DeadlineRejectionIsDistinguishedFromSlo) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 2.0, 8.0};
  AdmissionController adm(cfg, 2, 1);
  // Deadline 0.1 s is tighter than the 2 s batch SLO: the deadline binds.
  const auto v = adm.Judge(JobClass::kBatch, 0.1, 1.0);
  EXPECT_FALSE(v.admit);
  EXPECT_TRUE(v.deadline_bound);
  EXPECT_EQ(adm.rejected_deadline(), 1u);
  EXPECT_EQ(adm.rejected_slo(), 0u);
  EXPECT_NE(v.status.ToString().find("deadline"), std::string::npos);
}

TEST(AdmissionControllerTest, UnconstrainedJobsAlwaysAdmit) {
  AdmissionController adm(EnabledConfig(), 2, 1);  // no SLOs, no deadline
  const auto v = adm.Judge(JobClass::kBestEffort, 0.0, 1e9);
  EXPECT_TRUE(v.admit);
}

// ----------------------------------------------------------- pending ledger

TEST(AdmissionControllerTest, PendingLedgerAddsSubsAndFloorsAtZero) {
  AdmissionController adm(EnabledConfig(), 2, 1);
  adm.AddPending(1.5);
  adm.AddPending(0.5);
  EXPECT_DOUBLE_EQ(adm.pending_seconds(), 2.0);
  adm.SubPending(1.5);
  EXPECT_DOUBLE_EQ(adm.pending_seconds(), 0.5);
  adm.SubPending(10.0);  // over-credit must clamp, not go negative
  EXPECT_DOUBLE_EQ(adm.pending_seconds(), 0.0);
  adm.AddPending(-1.0);  // non-positive charges are ignored
  EXPECT_DOUBLE_EQ(adm.pending_seconds(), 0.0);
}

// ----------------------------------------------- placement-error histograms

TEST(AdmissionControllerTest, PlaceErrHistogramCellsMatchHandComputedErrors) {
  // ObserveRun must record |actual - placed| / actual * 100 into exactly
  // the (backend, size-class) cell of the job — values checked by hand
  // against the svc.place.err_pct contract.
  auto& reg = obs::Registry::Global();
  obs::Histogram* fpga_large = reg.GetHistogram(
      "svc.place.err_pct.fpga.large", "pct",
      "placement estimate error |run-est|/run*100");
  obs::Histogram* cpu_small = reg.GetHistogram(
      "svc.place.err_pct.cpu.small", "pct",
      "placement estimate error |run-est|/run*100");
  const obs::Histogram::Data fpga_before = fpga_large->Merged();
  const obs::Histogram::Data cpu_before = cpu_small->Merged();

  AdmissionController adm(EnabledConfig(), 2, 1);
  // |1.0 - 0.75| / 1.0 = 25%; |1.0 - 0.5| / 1.0 = 50%; |1.0 - 1.5| = 50%
  // (all exactly representable, so the uint cast cannot truncate).
  adm.ObserveRun(Backend::kFpga, 2e6, 1.0, 0.75, 1.0, false);
  adm.ObserveRun(Backend::kFpga, 2e6, 1.0, 0.5, 1.0, false);
  adm.ObserveRun(Backend::kFpga, 2e6, 1.0, 1.5, 1.0, false);
  // |2.0 - 1.0| / 2.0 = 50% into the CPU/small cell.
  adm.ObserveRun(Backend::kCpu, 1000.0, 1.0, 1.0, 2.0, false);
  // Degenerate inputs must not record: no placed estimate / no actual.
  adm.ObserveRun(Backend::kFpga, 2e6, 1.0, 0.0, 1.0, false);
  adm.ObserveRun(Backend::kFpga, 2e6, 1.0, 1.0, 0.0, false);

  const obs::Histogram::Data fpga_after = fpga_large->Merged();
  EXPECT_EQ(fpga_after.count - fpga_before.count, 3u);
  EXPECT_EQ(fpga_after.sum - fpga_before.sum, 25u + 50u + 50u);
  // Bucket placement: 25 -> bit_width 5, 50 -> bit_width 6.
  EXPECT_EQ(fpga_after.buckets[obs::Histogram::BucketOf(25)] -
                fpga_before.buckets[obs::Histogram::BucketOf(25)],
            1u);
  EXPECT_EQ(fpga_after.buckets[obs::Histogram::BucketOf(50)] -
                fpga_before.buckets[obs::Histogram::BucketOf(50)],
            2u);
  const obs::Histogram::Data cpu_after = cpu_small->Merged();
  EXPECT_EQ(cpu_after.count - cpu_before.count, 1u);
  EXPECT_EQ(cpu_after.sum - cpu_before.sum, 50u);
}

// -------------------------------------------------------- pressure signal

TEST(AdmissionControllerTest, HighCpuPressureRecommendsGrowthWithinRoom) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 2.0, 8.0};  // tightest SLO = 0.5 s
  AdmissionController adm(cfg, 2, 1);
  const auto p = adm.UpdatePressure(/*cpu_backlog=*/2.0, /*device=*/0.0,
                                    /*active=*/2, /*max=*/8, /*devices=*/1);
  // cpu pressure = 2.0 / (2 workers x 0.5 s) = 2.0.
  EXPECT_DOUBLE_EQ(p.value, 2.0);
  EXPECT_EQ(p.worker_delta, 2);  // ceil((2-1) x 2), room is 6
  EXPECT_EQ(p.device_delta, 0);
}

TEST(AdmissionControllerTest, GrowthRecommendationIsClampedToMaxWorkers) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 0.0, 0.0};
  AdmissionController adm(cfg, 2, 1);
  const auto p = adm.UpdatePressure(100.0, 0.0, 2, 3, 1);
  EXPECT_EQ(p.worker_delta, 1);  // wants far more, only 1 slot of room
}

TEST(AdmissionControllerTest, LowPressureRecommendsShrinkByOne) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {0.5, 0.0, 0.0};
  AdmissionController adm(cfg, 2, 1);
  const auto p = adm.UpdatePressure(0.1, 0.0, 4, 8, 1);
  EXPECT_LT(p.value, cfg.pressure_low);
  EXPECT_EQ(p.worker_delta, -1);
}

TEST(AdmissionControllerTest, HysteresisBandRecommendsNothing) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {1.0, 0.0, 0.0};
  AdmissionController adm(cfg, 2, 1);
  // pressure = 1.5 / (2 x 1.0) = 0.75: between low (0.5) and high (1.0).
  const auto p = adm.UpdatePressure(1.5, 0.0, 2, 8, 1);
  EXPECT_EQ(p.worker_delta, 0);
}

TEST(AdmissionControllerTest, DevicePressureUsesTheDeviceAxis) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {1.0, 0.0, 0.0};
  AdmissionController adm(cfg, 2, 2);
  const auto p = adm.UpdatePressure(0.0, 6.0, 2, 2, 2);
  // device pressure = 6 / (2 devices x 1 s) = 3.
  EXPECT_DOUBLE_EQ(p.value, 3.0);
  EXPECT_GT(p.device_delta, 0);
  // The idle CPU axis independently recommends shrinking the workers.
  EXPECT_EQ(p.worker_delta, -1);
}

TEST(AdmissionControllerTest, PendingWorkCountsTowardCpuPressure) {
  SloConfig cfg = EnabledConfig();
  cfg.class_slo_seconds = {1.0, 0.0, 0.0};
  AdmissionController adm(cfg, 2, 1);
  adm.AddPending(4.0);
  const auto p = adm.UpdatePressure(0.0, 0.0, 2, 8, 1);
  EXPECT_DOUBLE_EQ(p.value, 2.0);  // (0 + 4 pending) / (2 x 1 s)
}

// ------------------------------------------- scheduler: deterministic mode

SchedulerConfig DetConfig(uint64_t jobs) {
  SchedulerConfig config;
  config.deterministic = true;
  config.queue_capacity = jobs;
  config.num_workers = 2;
  config.fpga_devices = 1;
  config.sim_mode = SimMode::kAnalytical;
  config.sim_cache = true;
  return config;
}

// Submit `jobs` identical partition jobs with contiguous arrival_seq and
// the given virtual inter-arrival gap; returns the handles.
std::vector<JobHandle> SubmitDetStream(Scheduler* scheduler,
                                       const Relation<Tuple8>& rel,
                                       uint64_t jobs, double gap_seconds,
                                       JobClass cls = JobClass::kInteractive,
                                       double deadline = 0.0) {
  std::vector<JobHandle> handles;
  handles.reserve(jobs);
  for (uint64_t i = 0; i < jobs; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    spec.request.sim_mode = SimMode::kAnalytical;
    spec.request.sim_cache = true;
    JobOptions opts;
    opts.arrival_seq = i;
    opts.virtual_arrival_seconds = gap_seconds * static_cast<double>(i);
    opts.job_class = cls;
    opts.deadline_seconds = deadline;
    auto handle = scheduler->Submit(spec, opts);
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    handles.push_back(std::move(handle).ValueUnsafe());
  }
  return handles;
}

TEST(SchedulerAdmissionTest, DetInfeasibleDeadlineRejectsWithSloError) {
  auto rel = MakeRelation(1 << 15);
  SchedulerConfig config = DetConfig(4);
  config.slo.enabled = true;
  Scheduler scheduler(config);
  auto handles = SubmitDetStream(&scheduler, rel, 4, /*gap=*/1.0,
                                 JobClass::kBatch, /*deadline=*/1e-9);
  scheduler.Shutdown();
  for (auto& h : handles) {
    const JobOutcome& out = h.Wait();
    EXPECT_EQ(out.state, JobState::kRejected);
    EXPECT_TRUE(out.status.IsSloError()) << out.status.ToString();
    EXPECT_GT(out.admit_predicted_seconds, out.admit_budget_seconds);
  }
  EXPECT_EQ(scheduler.admission().rejected_deadline(), 4u);
}

TEST(SchedulerAdmissionTest, DetNoAdmittedJobEverMissesItsBudget) {
  // Overload: all jobs arrive at t=0 with a class SLO only a prefix can
  // meet. The controller must reject the infeasible tail — and every
  // admitted job's virtual latency must fit the budget exactly, because
  // the deterministic prediction IS the virtual latency.
  auto rel = MakeRelation(1 << 18);
  const uint64_t kJobs = 48;
  SchedulerConfig config = DetConfig(kJobs);
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.002, 0.0, 0.0};
  Scheduler scheduler(config);
  auto handles = SubmitDetStream(&scheduler, rel, kJobs, /*gap=*/0.0);
  scheduler.Shutdown();
  uint64_t admitted = 0, rejected = 0;
  for (auto& h : handles) {
    const JobOutcome& out = h.Wait();
    if (out.state == JobState::kRejected) {
      ++rejected;
      continue;
    }
    ASSERT_EQ(out.state, JobState::kCompleted) << out.status.ToString();
    ++admitted;
    ASSERT_GT(out.admit_budget_seconds, 0.0);
    const double virtual_latency =
        out.virtual_queue_seconds + out.virtual_run_seconds;
    EXPECT_LE(virtual_latency, out.admit_budget_seconds + 1e-12);
    EXPECT_NEAR(out.admit_predicted_seconds, virtual_latency, 1e-12);
  }
  EXPECT_GT(admitted, 0u);
  EXPECT_GT(rejected, 0u);  // the stream really was infeasible
  EXPECT_EQ(scheduler.admission().rejected(JobClass::kInteractive),
            rejected);
}

TEST(SchedulerAdmissionTest, DetZeroRejectsAtLowLoad) {
  auto rel = MakeRelation(1 << 14);
  const uint64_t kJobs = 32;
  SchedulerConfig config = DetConfig(kJobs);
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.5, 2.0, 8.0};
  Scheduler scheduler(config);
  // 10 ms apart: each job finds idle virtual clocks.
  auto handles = SubmitDetStream(&scheduler, rel, kJobs, /*gap=*/0.01);
  scheduler.Shutdown();
  for (auto& h : handles) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  EXPECT_EQ(scheduler.admission().rejected_slo(), 0u);
  EXPECT_EQ(scheduler.admission().rejected_deadline(), 0u);
  EXPECT_EQ(scheduler.admission().admitted(), kJobs);
}

TEST(SchedulerAdmissionTest, DetModeRunPopulatesPlaceErrHistograms) {
  // Deterministic replays still complete real runs, so the error
  // histograms must keep filling with admission enabled (they moved from
  // the scheduler into the controller; this pins the wiring).
  auto& reg = obs::Registry::Global();
  obs::Histogram* cells[3] = {
      reg.GetHistogram("svc.place.err_pct.cpu.medium", "pct", ""),
      reg.GetHistogram("svc.place.err_pct.fpga.medium", "pct", ""),
      reg.GetHistogram("svc.place.err_pct.hybrid.medium", "pct", ""),
  };
  uint64_t before = 0;
  for (auto* h : cells) before += h->Merged().count;

  auto rel = MakeRelation(1 << 17);  // medium size class
  SchedulerConfig config = DetConfig(8);
  config.slo.enabled = true;
  Scheduler scheduler(config);
  auto handles = SubmitDetStream(&scheduler, rel, 8, /*gap=*/0.01);
  scheduler.Shutdown();
  for (auto& h : handles) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  uint64_t after = 0;
  for (auto* h : cells) after += h->Merged().count;
  EXPECT_EQ(after - before, 8u);
}

uint64_t FoldOutcomes(const std::vector<JobHandle>& handles) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (size_t i = 0; i < handles.size(); ++i) {
    auto out = handles[i].TryGet();
    EXPECT_TRUE(out.has_value());
    if (!out.has_value() || out->state != JobState::kCompleted) continue;
    fold(i);
    fold(static_cast<uint64_t>(out->backend));
    fold(out->checksum);
  }
  return h;
}

TEST(SchedulerAdmissionTest, ReplayHashIsAdmissionInvariantWhenNothingRejected) {
  auto rel = MakeRelation(1 << 14);
  const uint64_t kJobs = 32;
  uint64_t hashes[2];
  for (int pass = 0; pass < 2; ++pass) {
    SchedulerConfig config = DetConfig(kJobs);
    config.slo.enabled = pass == 1;
    config.slo.class_slo_seconds = {30.0, 30.0, 30.0};  // loose: no rejects
    Scheduler scheduler(config);
    auto handles = SubmitDetStream(&scheduler, rel, kJobs, /*gap=*/0.001);
    scheduler.Shutdown();
    EXPECT_EQ(scheduler.admission().rejected_slo(), 0u);
    hashes[pass] = FoldOutcomes(handles);
  }
  EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(SchedulerAdmissionTest, ReplayHashStableAcrossClientCountsWithAdmission) {
  // Overloaded stream with admission on: the rejection set is part of the
  // replay and must be identical however many client threads submit.
  auto rel = MakeRelation(1 << 18);
  const uint64_t kJobs = 32;
  uint64_t hashes[2];
  uint64_t rejects[2];
  const size_t client_counts[2] = {1, 4};
  for (int pass = 0; pass < 2; ++pass) {
    SchedulerConfig config = DetConfig(kJobs);
    config.slo.enabled = true;
    config.slo.class_slo_seconds = {0.002, 0.0, 0.0};
    Scheduler scheduler(config);
    std::vector<JobHandle> handles(kJobs);
    std::vector<std::thread> clients;
    const size_t nclients = client_counts[pass];
    for (size_t c = 0; c < nclients; ++c) {
      clients.emplace_back([&, c] {
        for (uint64_t i = c; i < kJobs; i += nclients) {
          PartitionJobSpec spec;
          spec.input = &rel;
          spec.request.fanout = 512;
          spec.request.output_mode = OutputMode::kHist;
          spec.request.sim_mode = SimMode::kAnalytical;
          spec.request.sim_cache = true;
          JobOptions opts;
          opts.arrival_seq = i;
          opts.virtual_arrival_seconds = 0.0;
          opts.job_class = JobClass::kInteractive;
          auto handle = scheduler.Submit(spec, opts);
          ASSERT_TRUE(handle.ok());
          handles[i] = std::move(handle).ValueUnsafe();
        }
      });
    }
    for (auto& t : clients) t.join();
    scheduler.Shutdown();
    hashes[pass] = FoldOutcomes(handles);
    rejects[pass] = scheduler.admission().rejected_slo();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(rejects[0], rejects[1]);
  EXPECT_GT(rejects[0], 0u);
}

TEST(SchedulerAdmissionTest, RejectedJobsDoNotAdvanceTheVirtualClocks) {
  auto rel = MakeRelation(1 << 15);
  double makespans[2];
  for (int pass = 0; pass < 2; ++pass) {
    SchedulerConfig config = DetConfig(8);
    config.slo.enabled = true;
    Scheduler scheduler(config);
    // Two feasible jobs; pass 1 interleaves two infeasible-deadline jobs
    // that must be rejected without touching any clock.
    uint64_t seq = 0;
    std::vector<JobHandle> handles;
    auto submit = [&](double deadline) {
      PartitionJobSpec spec;
      spec.input = &rel;
      spec.request.fanout = 512;
      spec.request.output_mode = OutputMode::kHist;
      spec.request.sim_mode = SimMode::kAnalytical;
      spec.request.sim_cache = true;
      JobOptions opts;
      opts.arrival_seq = seq++;
      opts.virtual_arrival_seconds = 0.0;
      opts.deadline_seconds = deadline;
      auto handle = scheduler.Submit(spec, opts);
      ASSERT_TRUE(handle.ok());
      handles.push_back(std::move(handle).ValueUnsafe());
    };
    submit(0.0);
    if (pass == 1) submit(1e-9);
    submit(0.0);
    if (pass == 1) submit(1e-9);
    scheduler.Shutdown();
    makespans[pass] = scheduler.virtual_makespan_seconds();
  }
  EXPECT_DOUBLE_EQ(makespans[0], makespans[1]);
}

TEST(SchedulerAdmissionTest, DetModeRefusesSetActiveWorkers) {
  SchedulerConfig config = DetConfig(1);
  Scheduler scheduler(config);
  EXPECT_FALSE(scheduler.SetActiveWorkers(1));
  EXPECT_EQ(scheduler.active_workers(), config.num_workers);
  scheduler.Shutdown();
}

// ------------------------------------------------ scheduler: live mode

TEST(SchedulerAdmissionTest, LiveRejectionIsSynchronousAndTyped) {
  auto rel = MakeRelation(1 << 15);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 2;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {1e-12, 0.0, 0.0};  // nothing can fit
  Scheduler scheduler(config);
  PartitionJobSpec spec;
  spec.input = &rel;
  spec.request.fanout = 512;
  spec.request.output_mode = OutputMode::kHist;
  JobOptions opts;
  opts.job_class = JobClass::kInteractive;
  auto handle = scheduler.Submit(spec, opts);
  ASSERT_FALSE(handle.ok());
  EXPECT_TRUE(handle.status().IsSloError());
  EXPECT_FALSE(handle.status().IsCapacityError());
  // The job never occupied the queue: not submitted, not shed.
  EXPECT_EQ(scheduler.jobs_submitted(), 0u);
  EXPECT_EQ(scheduler.jobs_shed(), 0u);
  EXPECT_EQ(scheduler.admission().rejected(JobClass::kInteractive), 1u);
  // A batch job (no SLO) sails through.
  opts.job_class = JobClass::kBatch;
  auto ok_handle = scheduler.Submit(spec, opts);
  ASSERT_TRUE(ok_handle.ok()) << ok_handle.status().ToString();
  JobHandle admitted = std::move(ok_handle).ValueUnsafe();
  scheduler.Shutdown();
  EXPECT_EQ(admitted.Wait().state, JobState::kCompleted);
}

TEST(SchedulerAdmissionTest, LivePendingLedgerDrainsToZero) {
  auto rel = MakeRelation(1 << 13);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 2;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.0, 30.0, 0.0};
  Scheduler scheduler(config);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    auto handle = scheduler.Submit(spec, {});
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).ValueUnsafe());
  }
  for (auto& h : handles) h.Wait();
  scheduler.Shutdown();
  // Every admitted charge was credited when its job left the queue (up to
  // floating-point residue of the add/sub sequence).
  EXPECT_NEAR(scheduler.admission().pending_seconds(), 0.0, 1e-9);
}

TEST(SchedulerAdmissionTest, PendingChargeReleasedWhenQueueShedsTheJob) {
  auto rel = MakeRelation(1 << 13);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.start_paused = true;  // jobs pile up at the queue
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.0, 30.0, 0.0};
  Scheduler scheduler(config);
  uint64_t shed = 0;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    auto handle = scheduler.Submit(spec, {});
    if (handle.ok()) {
      handles.push_back(std::move(handle).ValueUnsafe());
    } else {
      ASSERT_TRUE(handle.status().IsCapacityError());
      ++shed;
    }
  }
  ASSERT_GT(shed, 0u);
  scheduler.Resume();
  for (auto& h : handles) h.Wait();
  scheduler.Shutdown();
  EXPECT_NEAR(scheduler.admission().pending_seconds(), 0.0, 1e-9);
}

TEST(SchedulerAdmissionTest, ParkedWorkersActivateViaSetActiveWorkers) {
  auto rel = MakeRelation(1 << 13);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 1;
  config.max_workers = 4;
  Scheduler scheduler(config);
  EXPECT_EQ(scheduler.active_workers(), 1u);
  EXPECT_TRUE(scheduler.SetActiveWorkers(4));
  EXPECT_EQ(scheduler.active_workers(), 4u);
  // Clamped at both ends.
  EXPECT_TRUE(scheduler.SetActiveWorkers(100));
  EXPECT_EQ(scheduler.active_workers(), 4u);
  EXPECT_TRUE(scheduler.SetActiveWorkers(0));
  EXPECT_EQ(scheduler.active_workers(), 1u);
  // Jobs complete with the enlarged active set.
  EXPECT_TRUE(scheduler.SetActiveWorkers(4));
  std::vector<JobHandle> handles;
  for (int i = 0; i < 12; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    auto handle = scheduler.Submit(spec, {});
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).ValueUnsafe());
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  scheduler.Shutdown();
}

TEST(SchedulerAdmissionTest, ShrunkenActiveSetStillDrainsEverything) {
  auto rel = MakeRelation(1 << 13);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 4;
  config.max_workers = 4;
  Scheduler scheduler(config);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 16; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    auto handle = scheduler.Submit(spec, {});
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).ValueUnsafe());
    if (i == 4) {
      EXPECT_TRUE(scheduler.SetActiveWorkers(1));
    }
  }
  for (auto& h : handles) {
    EXPECT_EQ(h.Wait().state, JobState::kCompleted);
  }
  scheduler.Shutdown();
}

TEST(SchedulerAdmissionTest, PressureSignalPublishesUnderLiveLoad) {
  auto rel = MakeRelation(1 << 13);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 1;
  config.max_workers = 4;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.0, 30.0, 0.0};
  Scheduler scheduler(config);
  const auto idle = scheduler.slo_pressure();
  EXPECT_GE(idle.value, 0.0);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 8; ++i) {
    PartitionJobSpec spec;
    spec.input = &rel;
    spec.request.fanout = 512;
    spec.request.output_mode = OutputMode::kHist;
    auto handle = scheduler.Submit(spec, {});
    ASSERT_TRUE(handle.ok());
    handles.push_back(std::move(handle).ValueUnsafe());
  }
  const auto loaded = scheduler.slo_pressure();
  EXPECT_GE(loaded.value, 0.0);  // signal computes while jobs are in flight
  for (auto& h : handles) h.Wait();
  scheduler.Shutdown();
}

// --------------------------------------------------------- race stress

TEST(SchedulerAdmissionStressTest, RacedSubmitCompleteAndReconfigure) {
  // TSan target: clients admit (and get rejected) concurrently while a
  // reconfigure thread flips the active worker count and polls the
  // pressure signal. Nothing may be lost, double-completed, or torn.
  auto rel = MakeRelation(1 << 12);
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 2;
  config.max_workers = 4;
  config.queue_capacity = 64;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.0, 30.0, 0.002};
  Scheduler scheduler(config);
  constexpr size_t kClients = 4;
  constexpr uint64_t kPerClient = 32;
  std::atomic<uint64_t> completed{0}, rejected{0}, shed{0};
  std::atomic<bool> stop{false};
  std::thread reconfig([&] {
    size_t n = 1;
    while (!stop.load(std::memory_order_acquire)) {
      scheduler.SetActiveWorkers(1 + (n++ % 4));
      (void)scheduler.slo_pressure();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<JobHandle> handles;
      for (uint64_t i = 0; i < kPerClient; ++i) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 256;
        spec.request.output_mode = OutputMode::kHist;
        JobOptions opts;
        opts.job_class =
            i % 3 == 0 ? JobClass::kBestEffort : JobClass::kBatch;
        auto handle = scheduler.Submit(spec, opts);
        if (!handle.ok()) {
          if (handle.status().IsSloError()) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else {
            ASSERT_TRUE(handle.status().IsCapacityError());
            shed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        handles.push_back(std::move(handle).ValueUnsafe());
      }
      for (auto& h : handles) {
        const JobOutcome& out = h.Wait();
        if (out.state == JobState::kCompleted) {
          completed.fetch_add(1, std::memory_order_relaxed);
        } else if (out.state == JobState::kRejected) {
          rejected.fetch_add(1, std::memory_order_relaxed);
        } else if (out.state == JobState::kShed) {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  reconfig.join();
  scheduler.Shutdown();
  EXPECT_EQ(completed.load() + rejected.load() + shed.load(),
            kClients * kPerClient);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_NEAR(scheduler.admission().pending_seconds(), 0.0, 1e-9);
}

}  // namespace
}  // namespace fpart::svc
