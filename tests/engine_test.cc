// Tests of the unified core API (core/engine.h): configuration plumbing,
// error propagation, determinism of the simulator.
#include <gtest/gtest.h>

#include "core/fpart.h"

namespace fpart {
namespace {

Relation<Tuple8> SmallRelation(size_t n = 20000, uint64_t seed = 5) {
  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, seed);
  EXPECT_TRUE(rel.ok());
  return std::move(*rel);
}

TEST(EngineTest, InvalidFanoutPropagates) {
  auto rel = SmallRelation(1000);
  PartitionRequest request;
  request.fanout = 1000;  // not a power of two
  request.engine = Engine::kCpu;
  EXPECT_FALSE(RunPartition(request, rel).ok());
  request.engine = Engine::kFpgaSim;
  EXPECT_FALSE(RunPartition(request, rel).ok());
}

TEST(EngineTest, PadOverflowSurfacesThroughApi) {
  auto rel = Relation<Tuple8>::Allocate(20000);
  ASSERT_TRUE(rel.ok());
  for (size_t i = 0; i < rel->size(); ++i) {
    (*rel)[i] = Tuple8{64, static_cast<uint32_t>(i)};  // one hot partition
  }
  PartitionRequest request;
  request.engine = Engine::kFpgaSim;
  request.fanout = 64;
  request.hash = HashMethod::kRadix;
  request.output_mode = OutputMode::kPad;
  auto report = RunPartition(request, *rel);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsPartitionOverflow());
}

TEST(EngineTest, SimulatorIsDeterministic) {
  auto rel = SmallRelation();
  PartitionRequest request;
  request.engine = Engine::kFpgaSim;
  request.fanout = 256;
  auto a = RunPartition(request, rel);
  auto b = RunPartition(request, rel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.cycles, b->stats.cycles);
  EXPECT_EQ(a->stats.output_lines, b->stats.output_lines);
  EXPECT_EQ(a->stats.backpressure_cycles, b->stats.backpressure_cycles);
  EXPECT_DOUBLE_EQ(a->seconds, b->seconds);
  for (size_t p = 0; p < a->output.num_partitions(); ++p) {
    ASSERT_EQ(a->output.part(p).num_tuples, b->output.part(p).num_tuples);
  }
}

TEST(EngineTest, RawWrapperLinkSelectable) {
  auto rel = SmallRelation();
  PartitionRequest request;
  request.engine = Engine::kFpgaSim;
  request.fanout = 256;
  request.link = LinkKind::kXeonFpga;
  auto qpi = RunPartition(request, rel);
  request.link = LinkKind::kRawWrapper;
  auto raw = RunPartition(request, rel);
  ASSERT_TRUE(qpi.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(raw->mtuples_per_sec, 2 * qpi->mtuples_per_sec);
}

TEST(EngineTest, InterferenceSlowsTheSimulator) {
  auto rel = SmallRelation(100000);
  FpgaPartitionerConfig config;
  config.fanout = 256;
  FpgaPartitioner<Tuple8> alone(config);
  auto alone_run = alone.Partition(rel.data(), rel.size());
  config.interference = Interference::kInterfered;
  FpgaPartitioner<Tuple8> interfered(config);
  auto interfered_run = interfered.Partition(rel.data(), rel.size());
  ASSERT_TRUE(alone_run.ok());
  ASSERT_TRUE(interfered_run.ok());
  double slowdown =
      alone_run->mtuples_per_sec / interfered_run->mtuples_per_sec;
  EXPECT_GT(slowdown, 1.3);
  EXPECT_LT(slowdown, 1.6);  // Figure 2: ~30% bandwidth loss
}

TEST(EngineTest, RangePartitioningThroughApi) {
  auto rel = SmallRelation(10000);
  std::vector<uint64_t> sample;
  for (size_t i = 0; i < rel.size(); i += 13) sample.push_back(rel[i].key);
  PartitionRequest request;
  request.engine = Engine::kFpgaSim;
  request.fanout = 16;
  request.hash = HashMethod::kRange;
  request.range_splitters = EquiDepthSplitters(sample, request.fanout);
  request.output_mode = OutputMode::kHist;
  auto report = RunPartition(request, rel);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->output.total_tuples(), rel.size());
}

TEST(EngineTest, CpuEngineHonoursThreadCount) {
  auto rel = SmallRelation(50000);
  PartitionRequest request;
  request.engine = Engine::kCpu;
  request.fanout = 128;
  request.num_threads = 3;
  auto report = RunPartition(request, rel);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.total_tuples(), rel.size());
}

TEST(EngineTest, NamesAndVersion) {
  EXPECT_STREQ(EngineName(Engine::kCpu), "cpu");
  EXPECT_STREQ(EngineName(Engine::kFpgaSim), "fpga-sim");
  EXPECT_NE(Version().find("fpart"), std::string::npos);
  EXPECT_STREQ(OutputModeName(OutputMode::kHist), "HIST");
  EXPECT_STREQ(LayoutModeName(LayoutMode::kVrid), "VRID");
}

TEST(GroupByFallbackTest, PadOverflowFallsBackToHist) {
  // Extremely skewed group keys: PAD overflows, the operator must recover.
  auto rel = Relation<Tuple8>::Allocate(30000);
  ASSERT_TRUE(rel.ok());
  Rng rng(3);
  for (size_t i = 0; i < rel->size(); ++i) {
    // 80% of rows in one group.
    uint32_t key = rng.Below(10) < 8 ? 42u : rng.Next32() & 0x7fffffu;
    (*rel)[i] = Tuple8{key, static_cast<uint32_t>(i % 1000)};
  }
  GroupByConfig config;
  config.engine = Engine::kFpgaSim;
  config.output_mode = OutputMode::kPad;
  config.pad_fraction = 0.2;
  config.fanout = 64;
  auto out = PartitionedGroupBy(config, *rel);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto reference = HashGroupBy(*rel);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(out->groups, reference->groups);
}

}  // namespace
}  // namespace fpart
