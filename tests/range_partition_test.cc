// Tests of the range-partitioning extension (comparator-tree mode, in the
// spirit of Wu et al. [41]): splitter computation, the ordering invariant,
// and CPU/FPGA engine equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/fpart.h"

namespace fpart {
namespace {

TEST(EquiDepthSplittersTest, SplitsUniformSampleEvenly) {
  std::vector<uint64_t> sample;
  for (uint64_t i = 0; i < 1000; ++i) sample.push_back(i);
  auto splitters = EquiDepthSplitters(sample, 4);
  ASSERT_EQ(splitters.size(), 3u);
  EXPECT_EQ(splitters[0], 250u);
  EXPECT_EQ(splitters[1], 500u);
  EXPECT_EQ(splitters[2], 750u);
}

TEST(EquiDepthSplittersTest, EdgeCases) {
  EXPECT_TRUE(EquiDepthSplitters({}, 8).empty());
  EXPECT_TRUE(EquiDepthSplitters({1, 2, 3}, 1).empty());
  auto s = EquiDepthSplitters({5, 5, 5, 5}, 4);
  EXPECT_EQ(s.size(), 3u);  // duplicates are legal (empty ranges)
}

TEST(RangePartitionFnTest, UpperBoundSemantics) {
  PartitionFn fn = PartitionFn::Range({10, 20, 30});
  EXPECT_EQ(fn.fanout(), 4u);
  EXPECT_EQ(fn(5u), 0u);
  EXPECT_EQ(fn(10u), 1u);  // keys equal to a splitter go right
  EXPECT_EQ(fn(15u), 1u);
  EXPECT_EQ(fn(25u), 2u);
  EXPECT_EQ(fn(30u), 3u);
  EXPECT_EQ(fn(1000000u), 3u);
  EXPECT_EQ(fn.Apply64(25), 2u);
}

TEST(RangePartitionFnTest, SortsUnsortedSplitters) {
  PartitionFn fn = PartitionFn::Range({30, 10, 20});
  EXPECT_EQ(fn(15u), 1u);
  EXPECT_EQ(fn.splitters(), (std::vector<uint64_t>{10, 20, 30}));
}

TEST(RangePartitionTest, CpuOutputIsGloballyOrdered) {
  // The defining property of range partitioning: concatenating partitions
  // in order yields key ranges that never overlap.
  const size_t n = 50000;
  auto rel = Relation<Tuple8>::Allocate(n);
  ASSERT_TRUE(rel.ok());
  Rng rng(3);
  std::vector<uint64_t> sample;
  for (size_t i = 0; i < n; ++i) {
    (*rel)[i] = Tuple8{rng.Next32() & 0x7fffffffu, uint32_t(i)};
    if (i % 97 == 0) sample.push_back((*rel)[i].key);
  }
  CpuPartitionerConfig config;
  config.fanout = 64;
  config.hash = HashMethod::kRange;
  config.range_splitters = EquiDepthSplitters(sample, config.fanout);
  auto run = CpuPartition(config, rel->data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.total_tuples(), n);
  uint64_t prev_max = 0;
  for (uint32_t p = 0; p < config.fanout; ++p) {
    const Tuple8* data = run->output.partition_data(p);
    uint64_t lo = std::numeric_limits<uint64_t>::max(), hi = 0;
    for (size_t i = 0; i < run->output.part(p).num_tuples; ++i) {
      lo = std::min<uint64_t>(lo, data[i].key);
      hi = std::max<uint64_t>(hi, data[i].key);
    }
    if (run->output.part(p).num_tuples == 0) continue;
    EXPECT_GE(lo, prev_max) << "partition " << p;
    prev_max = hi;
  }
}

TEST(RangePartitionTest, FpgaAndCpuEnginesAgree) {
  const size_t n = 20000;
  auto rel = Relation<Tuple8>::Allocate(n);
  ASSERT_TRUE(rel.ok());
  Rng rng(7);
  std::vector<uint64_t> sample;
  for (size_t i = 0; i < n; ++i) {
    (*rel)[i] = Tuple8{rng.Next32() & 0x7fffffffu, uint32_t(i)};
    if (i % 41 == 0) sample.push_back((*rel)[i].key);
  }
  PartitionRequest request;
  request.fanout = 32;
  request.hash = HashMethod::kRange;
  request.range_splitters = EquiDepthSplitters(sample, request.fanout);
  request.output_mode = OutputMode::kHist;

  request.engine = Engine::kCpu;
  auto cpu = RunPartition(request, *rel);
  ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();
  request.engine = Engine::kFpgaSim;
  auto fpga = RunPartition(request, *rel);
  ASSERT_TRUE(fpga.ok()) << fpga.status().ToString();

  for (uint32_t p = 0; p < request.fanout; ++p) {
    ASSERT_EQ(cpu->output.part(p).num_tuples, fpga->output.part(p).num_tuples)
        << p;
    std::vector<uint32_t> a, b;
    for (size_t i = 0; i < cpu->output.part(p).num_tuples; ++i) {
      a.push_back(cpu->output.partition_data(p)[i].key);
    }
    const Tuple8* fd = fpga->output.partition_data(p);
    for (size_t i = 0; i < fpga->output.partition_slots(p); ++i) {
      if (!IsDummy(fd[i])) b.push_back(fd[i].key);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << p;
  }
}

TEST(RangePartitionTest, EquiDepthBalancesSkewedKeysWhereRadixFails) {
  // Keys concentrated in a narrow band: radix over low bits still spreads,
  // but range partitioning with *uniform* splitters would collapse —
  // equi-depth splitters fix that. Compare max partition fill.
  const size_t n = 40000;
  auto rel = Relation<Tuple8>::Allocate(n);
  ASSERT_TRUE(rel.ok());
  Rng rng(11);
  std::vector<uint64_t> sample;
  for (size_t i = 0; i < n; ++i) {
    // 90% of keys in [0, 2^16), the rest anywhere.
    uint32_t key = rng.Below(10) < 9 ? rng.Next32() & 0xffffu : rng.Next32();
    (*rel)[i] = Tuple8{key, uint32_t(i)};
    if (i % 31 == 0) sample.push_back(key);
  }
  const uint32_t fanout = 64;
  // Equi-depth splitters.
  CpuPartitionerConfig config;
  config.fanout = fanout;
  config.hash = HashMethod::kRange;
  config.range_splitters = EquiDepthSplitters(sample, fanout);
  auto eq = CpuPartition(config, rel->data(), n);
  ASSERT_TRUE(eq.ok());
  // Uniform (equi-width) splitters over the 32-bit domain.
  std::vector<uint64_t> uniform;
  for (uint32_t p = 1; p < fanout; ++p) {
    uniform.push_back(static_cast<uint64_t>(p) << (32 - FanoutBits(fanout)));
  }
  config.range_splitters = uniform;
  auto uni = CpuPartition(config, rel->data(), n);
  ASSERT_TRUE(uni.ok());

  auto max_fill = [&](const CpuRunResult<Tuple8>& r) {
    uint64_t m = 0;
    for (uint64_t h : r.histogram) m = std::max(m, h);
    return m;
  };
  EXPECT_LT(max_fill(*eq), max_fill(*uni) / 4);
}

TEST(RangePartitionTest, RejectsWrongSplitterCount) {
  auto rel = Relation<Tuple8>::Allocate(64);
  ASSERT_TRUE(rel.ok());
  CpuPartitionerConfig cpu;
  cpu.fanout = 16;
  cpu.hash = HashMethod::kRange;
  cpu.range_splitters = {1, 2, 3};  // needs 15
  EXPECT_FALSE(CpuPartition(cpu, rel->data(), rel->size()).ok());

  FpgaPartitionerConfig fpga;
  fpga.fanout = 16;
  fpga.hash = HashMethod::kRange;
  fpga.range_splitters = {1, 2, 3};
  FpgaPartitioner<Tuple8> part(fpga);
  EXPECT_FALSE(part.Partition(rel->data(), rel->size()).ok());
}

TEST(RangePartitionTest, ComparatorTreeLatencyIsLogFanout) {
  FpgaPartitionerConfig config;
  config.hash = HashMethod::kRange;
  config.fanout = 8192;
  EXPECT_EQ(config.hash_latency(), 13);
  config.fanout = 2;
  EXPECT_EQ(config.hash_latency(), 1);
  config.hash = HashMethod::kMurmur;
  EXPECT_EQ(config.hash_latency(), 5);
}

}  // namespace
}  // namespace fpart
