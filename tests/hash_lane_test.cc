// Circuit-level unit tests of the hash-function lane (Section 4.1,
// Code 3): fixed latency, one-tuple-per-cycle throughput independent of
// hashing method, bubble handling, in-flight accounting.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fpga/hash_lane.h"

namespace fpart {
namespace {

TEST(HashLaneTest, DeliversAfterExactLatency) {
  PartitionFn fn(HashMethod::kMurmur, 64);
  Fifo<HashedTuple<Tuple8>> out(16);
  HashLane<Tuple8> lane(fn, 5, &out);
  lane.Tick(Tuple8{42, 7});
  for (int cycle = 1; cycle <= 4; ++cycle) {
    lane.Tick(std::nullopt);
    EXPECT_TRUE(out.empty()) << "cycle " << cycle;
  }
  lane.Tick(std::nullopt);  // 6th tick: the tuple has traversed 5 stages
  ASSERT_EQ(out.size(), 1u);
  auto ht = out.Pop();
  EXPECT_EQ(ht->tuple.key, 42u);
  EXPECT_EQ(ht->hash, fn(42u));
}

TEST(HashLaneTest, OneTuplePerCycleThroughput) {
  // A full pipeline emits one hashed tuple every cycle regardless of the
  // 5-stage latency — the "robust hashing for free" property.
  PartitionFn fn(HashMethod::kMurmur, 64);
  Fifo<HashedTuple<Tuple8>> out(256);
  HashLane<Tuple8> lane(fn, 5, &out);
  for (uint32_t i = 0; i < 100; ++i) {
    lane.Tick(Tuple8{i, i});
  }
  // After n cycles with latency L, exactly n - L tuples have emerged.
  EXPECT_EQ(out.size(), 100u - 5u);
}

TEST(HashLaneTest, PreservesOrderThroughBubbles) {
  PartitionFn fn(HashMethod::kRadix, 16);
  Fifo<HashedTuple<Tuple8>> out(64);
  HashLane<Tuple8> lane(fn, 3, &out);
  std::vector<uint32_t> sent;
  Rng rng(5);
  for (int cycle = 0; cycle < 200; ++cycle) {
    if (rng.Below(2) == 0) {
      uint32_t key = rng.Next32();
      sent.push_back(key);
      lane.Tick(Tuple8{key, 0});
    } else {
      lane.Tick(std::nullopt);
    }
    if (out.size() > 32) {
      while (auto ht = out.Pop()) {
        ASSERT_FALSE(sent.empty());
        // pops come in send order
      }
    }
  }
  for (int i = 0; i < 4; ++i) lane.Tick(std::nullopt);
  EXPECT_TRUE(lane.empty());
}

TEST(HashLaneTest, InFlightAccounting) {
  PartitionFn fn(HashMethod::kMurmur, 64);
  Fifo<HashedTuple<Tuple8>> out(16);
  HashLane<Tuple8> lane(fn, 5, &out);
  EXPECT_EQ(lane.in_flight(), 0u);
  lane.Tick(Tuple8{1, 1});
  lane.Tick(Tuple8{2, 2});
  lane.Tick(std::nullopt);
  EXPECT_EQ(lane.in_flight(), 2u);
  for (int i = 0; i < 5; ++i) lane.Tick(std::nullopt);
  EXPECT_EQ(lane.in_flight(), 0u);
  EXPECT_TRUE(lane.empty());
  EXPECT_EQ(out.size(), 2u);
}

TEST(HashLaneTest, RadixLaneHasShorterLatencyButSameThroughput) {
  PartitionFn radix(HashMethod::kRadix, 64);
  PartitionFn murmur(HashMethod::kMurmur, 64);
  Fifo<HashedTuple<Tuple8>> out_r(256), out_m(256);
  HashLane<Tuple8> lane_r(radix, 1, &out_r);
  HashLane<Tuple8> lane_m(murmur, 5, &out_m);
  for (uint32_t i = 0; i < 50; ++i) {
    lane_r.Tick(Tuple8{i, i});
    lane_m.Tick(Tuple8{i, i});
  }
  EXPECT_EQ(out_r.size(), 49u);  // latency 1
  EXPECT_EQ(out_m.size(), 45u);  // latency 5, same steady-state rate
}

TEST(HashLaneTest, HashMatchesPartitionFn64) {
  PartitionFn fn(HashMethod::kMurmur, 256);
  Fifo<HashedTuple<Tuple16>> out(16);
  HashLane<Tuple16> lane(fn, 5, &out);
  Tuple16 t{0x123456789abcdef0ull, 1};
  EXPECT_EQ(lane.Hash(t), fn.Apply64(t.key));
}

}  // namespace
}  // namespace fpart
