// Tests of the observability layer (src/obs/): metrics registry under
// concurrency, histogram shard merging, Chrome trace JSON well-formedness
// and the fpart.obs.v1 bench envelope.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace fpart::obs {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to assert that every
// document the obs layer emits is well-formed without a JSON dependency.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsValidJson(std::string_view text) {
  return JsonValidator(text).Valid();
}

TEST(JsonValidatorTest, SanityOnItself) {
  EXPECT_TRUE(IsValidJson(R"({"a": [1, -2.5e3, "x\n", true, null], "b": {}})"));
  EXPECT_FALSE(IsValidJson(R"({"a": 1,})"));
  EXPECT_FALSE(IsValidJson(R"({"a" 1})"));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson(R"("unterminated)"));
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, EscapesAndNesting) {
  std::string out;
  JsonWriter w(&out, /*indent=*/0);
  w.BeginObject();
  w.KV("str", std::string_view("quote\" slash\\ ctrl\x01\n"));
  w.KV("int", -5);
  w.KV("uint", uint64_t{18446744073709551615ull});
  w.KV("dbl", 1.5);
  w.KV("flag", true);
  w.Key("arr");
  w.BeginArray();
  w.Double(0.1);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_TRUE(IsValidJson(out)) << out;
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeZero) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(out, "[0,0]");
}

// ---------------------------------------------------------------------------
// Metrics

TEST(CounterTest, ExactUnderManyThreads) {
  Registry reg;
  Counter* c = reg.GetCounter("test.threads", "ops");
  constexpr int kThreads = 32;  // deliberately > kNumShards
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(CounterTest, FindOrCreateReturnsSameHandle) {
  Registry reg;
  Counter* a = reg.GetCounter("same.name", "ops");
  Counter* b = reg.GetCounter("same.name");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(CounterTest, TypeMismatchReturnsDummyNotCrash) {
  Registry reg;
  Counter* c = reg.GetCounter("typed.metric");
  c->Add(7);
  // Same name, wrong type: a dummy handle, and the real metric survives.
  Histogram* h = reg.GetHistogram("typed.metric");
  ASSERT_NE(h, nullptr);
  h->Record(1);  // must not crash
  Snapshot snap = reg.TakeSnapshot();
  const MetricValue* v = snap.Find("typed.metric");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->type, MetricType::kCounter);
  EXPECT_EQ(v->value, 7u);
}

TEST(GaugeTest, LastWriteWins) {
  Registry reg;
  Gauge* g = reg.GetGauge("test.gauge", "ratio");
  g->Set(0.25);
  g->Set(2.5);
  EXPECT_EQ(g->Value(), 2.5);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  // The tail clamps into the last bucket instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 63), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(HistogramTest, MergeAcrossThreads) {
  Registry reg;
  Histogram* h = reg.GetHistogram("test.hist", "us");
  constexpr int kThreads = 24;
  constexpr uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        h->Record(i + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram::Data d = h->Merged();
  EXPECT_EQ(d.count, kThreads * kPerThread);
  EXPECT_EQ(d.min, 1u);
  EXPECT_EQ(d.max, kPerThread + kThreads - 1);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 1; i <= kPerThread; ++i) expected_sum += i + t;
  }
  EXPECT_EQ(d.sum, expected_sum);
  uint64_t bucket_total = 0;
  for (uint64_t b : d.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, d.count);
  // The p100 upper bound must cover the max; p50 must not exceed it.
  EXPECT_GE(d.PercentileUpperBound(1.0), d.max);
  EXPECT_LE(d.PercentileUpperBound(0.5), d.PercentileUpperBound(1.0));
  EXPECT_NEAR(d.Mean(), static_cast<double>(d.sum) / d.count, 1e-9);
}

TEST(HistogramTest, EmptyMergeIsZero) {
  Registry reg;
  Histogram* h = reg.GetHistogram("test.empty");
  Histogram::Data d = h->Merged();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.min, 0u);
  EXPECT_EQ(d.max, 0u);
  EXPECT_EQ(d.Mean(), 0.0);
}

TEST(RegistryTest, ResetZeroesEverythingHandlesStayValid) {
  Registry reg;
  Counter* c = reg.GetCounter("r.c");
  Gauge* g = reg.GetGauge("r.g");
  Histogram* h = reg.GetHistogram("r.h");
  c->Add(5);
  g->Set(1.0);
  h->Record(42);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Merged().count, 0u);
  c->Add(2);
  EXPECT_EQ(c->Value(), 2u);
}

TEST(SnapshotTest, SortedNamesAndValidJson) {
  Registry reg;
  reg.GetCounter("z.last", "ops")->Add(1);
  reg.GetCounter("a.first", "ops")->Add(2);
  reg.GetHistogram("m.hist", "us")->Record(100);
  reg.GetGauge("m.gauge", "ratio")->Set(0.5);
  Snapshot snap = reg.TakeSnapshot();
  ASSERT_EQ(snap.metrics.size(), 4u);
  EXPECT_EQ(snap.metrics.front().name, "a.first");
  EXPECT_EQ(snap.metrics.back().name, "z.last");
  std::string json = snap.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  for (const char* key :
       {"\"a.first\"", "\"m.hist\"", "\"m.gauge\"", "\"type\"", "\"unit\"",
        "\"p50\"", "\"p99\"", "\"mean\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, ChromeTraceDocumentIsValidJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    TraceSpan span("unit.phase", "test");
  }
  AddSimRunTrace(/*cycles=*/1000, /*histogram_cycles=*/300,
                 /*flush_cycles=*/100, /*clock_hz=*/200e6);
  tracer.Disable();
  std::string doc = tracer.ToJson();
  EXPECT_TRUE(IsValidJson(doc)) << doc;
  for (const char* key : {"\"traceEvents\"", "\"unit.phase\"", "\"ph\"",
                          "\"pid\"", "\"sim.partition_pass\"",
                          "\"sim.histogram_pass\"", "\"sim.flush_drain\""}) {
    EXPECT_NE(doc.find(key), std::string::npos) << key << " missing: " << doc;
  }
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  tracer.Disable();
  size_t before = tracer.event_count();
  {
    TraceSpan span("ignored", "test");
  }
  AddSimRunTrace(10, 0, 0, 200e6);
  EXPECT_EQ(tracer.event_count(), before);
}

TEST(TracerTest, WriteFileRoundTrips) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    TraceSpan span("file.span", "test");
  }
  tracer.Disable();
  const std::string path =
      (std::filesystem::temp_directory_path() / "fpart_obs_test_trace.json")
          .string();
  ASSERT_TRUE(tracer.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_TRUE(IsValidJson(buffer.str())) << buffer.str();
  EXPECT_NE(buffer.str().find("file.span"), std::string::npos);
}

// ---------------------------------------------------------------------------
// BenchReport (the fpart.obs.v1 envelope)

TEST(BenchReportTest, EnvelopeHasDocumentedKeysInOrder) {
  Registry::Global().GetCounter("bench.test.counter", "ops")->Add(3);
  BenchReport report("unit_bench");
  report.ConfigStr("mode", "test");
  report.ConfigUInt("n", 42);
  report.ConfigDouble("scale", 0.5);
  report.Result("phase", {{"seconds", 1.25}, {"mtuples_per_sec", 33.0}});
  report.ResultDouble("speedup", 2.0);
  report.ResultUInt("matches", 7);
  std::string json = report.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // All five envelope sections present, in schema order.
  size_t schema = json.find("\"schema\": \"fpart.obs.v1\"");
  size_t benchmark = json.find("\"benchmark\": \"unit_bench\"");
  size_t config = json.find("\"config\"");
  size_t results = json.find("\"results\"");
  size_t metrics = json.find("\"metrics\"");
  ASSERT_NE(schema, std::string::npos) << json;
  ASSERT_NE(benchmark, std::string::npos) << json;
  ASSERT_NE(config, std::string::npos) << json;
  ASSERT_NE(results, std::string::npos) << json;
  ASSERT_NE(metrics, std::string::npos) << json;
  EXPECT_LT(schema, benchmark);
  EXPECT_LT(benchmark, config);
  EXPECT_LT(config, results);
  EXPECT_LT(results, metrics);
  // The registry snapshot rode along.
  EXPECT_NE(json.find("bench.test.counter"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Hardware perf counters (obs/perf_counters.h). These tests must pass both
// on PMU-equipped hosts and in CI containers where perf_event_open fails:
// supported means monotonic non-garbage readings, unsupported means a
// clean no-op that publishes nothing.

TEST(PerfCountersTest, ReadIsMonotonicOrAbsent) {
  PerfCounters& pc = PerfCounters::ForCurrentThread();
  HwSample a = pc.Read();
  if (!HwCountersSupported()) {
    EXPECT_FALSE(a.valid);  // absent-but-not-garbage
    EXPECT_EQ(a.cycles, 0u);
    EXPECT_EQ(a.instructions, 0u);
    EXPECT_EQ(a.llc_misses, 0u);
    EXPECT_EQ(a.dtlb_misses, 0u);
    return;
  }
  ASSERT_TRUE(a.valid);
  // Burn enough work that cycle/instruction counts must advance.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i * i;
  HwSample b = pc.Read();
  ASSERT_TRUE(b.valid);
  EXPECT_GE(b.cycles, a.cycles);
  EXPECT_GE(b.instructions, a.instructions);
  EXPECT_GE(b.llc_misses, a.llc_misses);
  EXPECT_GE(b.dtlb_misses, a.dtlb_misses);
  EXPECT_GT(b.cycles + b.instructions, a.cycles + a.instructions);
}

TEST(PerfCountersTest, PhaseScopeAccumulatesOrStaysSilent) {
  const char* kPhase = "obs_test_phase";
  Counter* cycles = HwPhaseCounter(kPhase, 0);
  ASSERT_NE(cycles, nullptr);
  const uint64_t before = cycles->Value();
  {
    HwPhaseScope scope(kPhase);
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 1'000'000; ++i) sink = sink + i;
  }
  const uint64_t after = cycles->Value();
  if (HwCountersSupported()) {
    EXPECT_GT(after, before);  // the work cost at least one cycle
  } else {
    EXPECT_EQ(after, before);  // no-op scope publishes nothing
  }
  EXPECT_GE(after, before);  // counters never run backwards either way
}

TEST(PerfCountersTest, PhaseCounterNamesFollowCatalogue) {
  // hw.<phase>.<event> with the documented four events, so the schema
  // checker's pattern and the bench columns stay in lockstep.
  ASSERT_EQ(kNumHwEvents, 4u);
  EXPECT_STREQ(kHwEventNames[0], "cycles");
  EXPECT_STREQ(kHwEventNames[1], "instructions");
  EXPECT_STREQ(kHwEventNames[2], "llc_misses");
  EXPECT_STREQ(kHwEventNames[3], "dtlb_misses");
  Registry::Global().GetCounter("hw.probe.marker", "x");  // registry alive
  Counter* c = HwPhaseCounter("histogram", 2);
  ASSERT_NE(c, nullptr);
  // Same (phase, event) always resolves to the same counter instance.
  EXPECT_EQ(c, HwPhaseCounter("histogram", 2));
}

}  // namespace
}  // namespace fpart::obs
