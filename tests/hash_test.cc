// Unit tests for src/hash: murmur finalizers, radix extraction, the
// PartitionFn family, CRC32-C.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hash/hash_function.h"
#include "hash/murmur.h"
#include "hash/radix.h"

namespace fpart {
namespace {

TEST(MurmurTest, KnownVectors32) {
  // fmix32 is a bijection with well-known fixed values.
  EXPECT_EQ(Murmur32(0u), 0u);  // 0 is murmur3 fmix32's fixed point
  EXPECT_NE(Murmur32(1u), 1u);
  EXPECT_NE(Murmur32(1u), Murmur32(2u));
}

TEST(MurmurTest, Deterministic) {
  for (uint32_t k : {1u, 2u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(Murmur32(k), Murmur32(k));
  }
  for (uint64_t k : {1ull, 42ull, ~0ull}) {
    EXPECT_EQ(Murmur64(k), Murmur64(k));
  }
}

TEST(MurmurTest, IsInjectiveOnSample) {
  // The finalizer is a bijection; consecutive inputs must not collide.
  std::set<uint32_t> seen32;
  for (uint32_t k = 0; k < 100000; ++k) seen32.insert(Murmur32(k));
  EXPECT_EQ(seen32.size(), 100000u);
  std::set<uint64_t> seen64;
  for (uint64_t k = 0; k < 100000; ++k) seen64.insert(Murmur64(k));
  EXPECT_EQ(seen64.size(), 100000u);
}

TEST(MurmurTest, AvalancheMixesLowBits) {
  // Consecutive keys should land in different low-bit buckets often.
  int same_bucket = 0;
  for (uint32_t k = 0; k < 10000; ++k) {
    if ((Murmur32(k) & 0xff) == (Murmur32(k + 1) & 0xff)) ++same_bucket;
  }
  // Random chance is ~1/256 ≈ 39 of 10000.
  EXPECT_LT(same_bucket, 120);
}

TEST(RadixTest, ExtractsLsbs) {
  EXPECT_EQ(RadixBits(0b101101, 3), 0b101u);
  EXPECT_EQ(RadixBits(0b101101, 0), 0u);
  EXPECT_EQ(RadixBits(0xffffffffffffffffull, 64), 0xffffffffu);
}

TEST(RadixTest, FanoutBits) {
  EXPECT_EQ(FanoutBits(1), 0);
  EXPECT_EQ(FanoutBits(2), 1);
  EXPECT_EQ(FanoutBits(8192), 13);
}

TEST(RadixTest, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(8192));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(8191));
}

TEST(Crc32Test, DeterministicAndSpreads) {
  EXPECT_EQ(Crc32c64(42), Crc32c64(42));
  std::set<uint32_t> seen;
  for (uint64_t k = 0; k < 10000; ++k) seen.insert(Crc32c64(k));
  EXPECT_GT(seen.size(), 9990u);  // CRC of distinct inputs rarely collides
}

class PartitionFnTest : public ::testing::TestWithParam<HashMethod> {};

TEST_P(PartitionFnTest, IndexAlwaysInRange) {
  PartitionFn fn(GetParam(), 64);
  for (uint32_t k = 0; k < 50000; ++k) {
    EXPECT_LT(fn(k * 2654435761u), 64u);
    EXPECT_LT(fn.Apply64(k * 0x9e3779b97f4a7c15ULL), 64u);
  }
}

TEST_P(PartitionFnTest, FanoutOneMapsEverythingToZero) {
  PartitionFn fn(GetParam(), 1);
  for (uint32_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(fn(k), 0u);
    EXPECT_EQ(fn.Apply64(k), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, PartitionFnTest,
                         ::testing::Values(HashMethod::kRadix,
                                           HashMethod::kMurmur,
                                           HashMethod::kMultiplicative,
                                           HashMethod::kCrc32),
                         [](const auto& info) {
                           return HashMethodName(info.param);
                         });

TEST(PartitionFnTest, RadixUsesLsbsDirectly) {
  PartitionFn fn(HashMethod::kRadix, 8192);
  EXPECT_EQ(fn(0x12345678u), 0x12345678u & 8191u);
  EXPECT_EQ(fn.Apply64(0x12345678u), 0x12345678ull & 8191u);
}

TEST(PartitionFnTest, ShiftSelectsHigherBits) {
  // Multi-pass: pass 1 on bits [3, 6) must see only those bits.
  PartitionFn fn(HashMethod::kRadix, 8, /*shift=*/3);
  EXPECT_EQ(fn(0b101010u), 0b101u);
  // Low bits do not influence the result.
  EXPECT_EQ(fn(0b101010u), fn(0b101111u));
}

TEST(PartitionFnTest, TwoPassDecompositionMatchesSinglePass) {
  // p == (p1 << low_bits) | p2 for every method (multi-pass invariant).
  for (HashMethod m : {HashMethod::kRadix, HashMethod::kMurmur,
                       HashMethod::kCrc32}) {
    PartitionFn full(m, 64);       // 6 bits
    PartitionFn high(m, 8, 3);     // top 3 of the 6
    PartitionFn low(m, 8, 0);      // bottom 3
    for (uint32_t k = 1; k < 4000; k += 7) {
      EXPECT_EQ(full(k), (high(k) << 3 | low(k)))
          << "method=" << HashMethodName(m) << " key=" << k;
    }
  }
}

TEST(PartitionFnTest, MurmurSpreadsGridKeysRadixDoesNot) {
  // The Section 3.2 motivation in miniature: grid-like keys (multiples of
  // 256) collapse under radix partitioning but spread under murmur.
  PartitionFn radix(HashMethod::kRadix, 256);
  PartitionFn murmur(HashMethod::kMurmur, 256);
  std::set<uint32_t> radix_parts, murmur_parts;
  for (uint32_t k = 0; k < 1000; ++k) {
    radix_parts.insert(radix(k << 8));
    murmur_parts.insert(murmur(k << 8));
  }
  EXPECT_EQ(radix_parts.size(), 1u);   // all land in partition 0
  EXPECT_GT(murmur_parts.size(), 200u);
}

TEST(HashMethodNameTest, AllNamed) {
  EXPECT_STREQ(HashMethodName(HashMethod::kRadix), "radix");
  EXPECT_STREQ(HashMethodName(HashMethod::kMurmur), "murmur");
  EXPECT_STREQ(HashMethodName(HashMethod::kMultiplicative), "multiplicative");
  EXPECT_STREQ(HashMethodName(HashMethod::kCrc32), "crc32");
}

}  // namespace
}  // namespace fpart
