// Tests for the join algorithms: bucket-chain table, CPU radix join,
// hybrid (FPGA-partitioned) join, fallback handling, and the
// non-partitioned baseline.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "cpu/partitioner.h"
#include "datagen/workloads.h"
#include "join/build_probe.h"
#include "join/hash_table.h"
#include "join/hybrid_join.h"
#include "join/no_partition_join.h"
#include "join/radix_join.h"

namespace fpart {
namespace {

// Ground truth by nested loop (small inputs only).
uint64_t NestedLoopMatches(const Relation<Tuple8>& r,
                           const Relation<Tuple8>& s) {
  std::unordered_map<uint32_t, int> counts;
  for (const auto& t : r) ++counts[t.key];
  uint64_t matches = 0;
  for (const auto& t : s) {
    auto it = counts.find(t.key);
    if (it != counts.end()) matches += it->second;
  }
  return matches;
}

JoinInput SmallWorkload(WorkloadId id, double scale, uint64_t seed = 7) {
  auto input = GenerateWorkload(GetWorkloadSpec(id, scale), seed);
  EXPECT_TRUE(input.ok());
  return std::move(*input);
}

TEST(BucketChainTableTest, FindsAllDuplicates) {
  std::vector<Tuple8> data = {{5, 0}, {9, 1}, {5, 2}, {7, 3}, {5, 4}};
  BucketChainTable<Tuple8> table;
  table.Reset(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) table.Insert(data.data(), i);
  int hits = 0;
  table.Probe(data.data(), 5u, [&](uint32_t i) {
    EXPECT_EQ(data[i].key, 5u);
    ++hits;
  });
  EXPECT_EQ(hits, 3);
  table.Probe(data.data(), 1234u, [&](uint32_t) { FAIL(); });
}

TEST(BucketChainTableTest, ResetClearsPreviousContent) {
  std::vector<Tuple8> data = {{1, 0}, {2, 1}};
  BucketChainTable<Tuple8> table;
  table.Reset(data.size());
  table.Insert(data.data(), 0);
  table.Reset(data.size());
  table.Probe(data.data(), 1u, [&](uint32_t) { FAIL(); });
}

TEST(JoinPartitionTest, SkipsDummies) {
  std::vector<Tuple8> r = {{5, 0}, MakeDummyTuple<Tuple8>(), {7, 2}};
  std::vector<Tuple8> s = {{7, 0}, MakeDummyTuple<Tuple8>(), {5, 1}, {6, 9}};
  BucketChainTable<Tuple8> table;
  uint64_t matches = 0, checksum = 0;
  JoinPartition(r.data(), r.size(), s.data(), s.size(), &table, &matches,
                &checksum);
  EXPECT_EQ(matches, 2u);
  EXPECT_EQ(checksum, 0u + 2u);  // payload ids of the matched R tuples
}

TEST(CpuRadixJoinTest, MatchesEqualSRelationSize) {
  JoinInput input = SmallWorkload(WorkloadId::kA, 1e-4);  // 12.8k ⋈ 12.8k
  CpuJoinConfig config;
  config.fanout = 64;
  config.num_threads = 2;
  auto result = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every S key references R, which is unique: |matches| == |S|.
  EXPECT_EQ(result->matches, input.s.size());
  EXPECT_EQ(result->matches, NestedLoopMatches(input.r, input.s));
  EXPECT_GT(result->mtuples_per_sec, 0.0);
  EXPECT_GT(result->partition_seconds, 0.0);
  EXPECT_GT(result->build_probe_seconds, 0.0);
}

TEST(CpuRadixJoinTest, AllWorkloadDistributions) {
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kC, WorkloadId::kD,
                        WorkloadId::kE}) {
    JoinInput input = SmallWorkload(id, 5e-5);
    CpuJoinConfig config;
    config.fanout = 32;
    config.hash = HashMethod::kMurmur;
    auto result = CpuRadixJoin(config, input.r, input.s);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->matches, input.s.size()) << input.spec.name;
  }
}

TEST(CpuRadixJoinTest, RadixAndHashPartitioningAgree) {
  JoinInput input = SmallWorkload(WorkloadId::kD, 5e-5);
  CpuJoinConfig config;
  config.fanout = 64;
  config.hash = HashMethod::kRadix;
  auto radix = CpuRadixJoin(config, input.r, input.s);
  config.hash = HashMethod::kMurmur;
  auto murmur = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(radix.ok());
  ASSERT_TRUE(murmur.ok());
  EXPECT_EQ(radix->matches, murmur->matches);
  EXPECT_EQ(radix->checksum, murmur->checksum);
}

struct HybridParam {
  OutputMode mode;
  LayoutMode layout;
};

class HybridJoinTest : public ::testing::TestWithParam<HybridParam> {};

TEST_P(HybridJoinTest, AllModesProduceCorrectJoin) {
  JoinInput input = SmallWorkload(WorkloadId::kA, 1e-4);
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.fpga.output_mode = GetParam().mode;
  config.fpga.layout = GetParam().layout;
  config.num_threads = 2;
  auto result = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, input.s.size());
  EXPECT_GT(result->partition_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HybridJoinTest,
    ::testing::Values(HybridParam{OutputMode::kHist, LayoutMode::kRid},
                      HybridParam{OutputMode::kHist, LayoutMode::kVrid},
                      HybridParam{OutputMode::kPad, LayoutMode::kRid},
                      HybridParam{OutputMode::kPad, LayoutMode::kVrid}),
    [](const auto& info) {
      return std::string(OutputModeName(info.param.mode)) + "_" +
             LayoutModeName(info.param.layout);
    });

TEST(HybridJoinTest, CoherencePenaltyIncreasesBuildProbeTime) {
  JoinInput input = SmallWorkload(WorkloadId::kA, 2e-4);
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.num_threads = 1;
  config.coherence_penalty = false;
  auto without = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(without.ok());
  // The penalty is deterministic given the build/probe split, so instead of
  // comparing noisy wall-clock numbers we check the scaling is applied.
  config.coherence_penalty = true;
  auto with = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->matches, without->matches);
  // Both runs join the same data; the penalized one reports scaled time.
  // (Ratios of independent runs fluctuate, so only assert a weak bound.)
  EXPECT_GT(with->build_probe_seconds, 0.0);
}

TEST(HybridJoinTest, SkewedPadOverflowFallsBackToHist) {
  // Zipf-skewed S (Section 5.4) with a tight PAD budget must overflow and
  // be retried in HIST mode by the fallback wrapper.
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 2e-4);
  spec.zipf = 1.0;
  auto input = GenerateWorkload(spec, 3);
  ASSERT_TRUE(input.ok());
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.fpga.output_mode = OutputMode::kPad;
  config.fpga.pad_fraction = 0.05;
  bool fell_back = false;
  auto result = HybridJoinWithFallback(config, input->r, input->s, &fell_back);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(fell_back);
  EXPECT_EQ(result->matches, input->s.size());
}

TEST(HybridJoinTest, OverlappedExecutionMatchesSequential) {
  // Overlapping S's partitioning with the build over R changes only host
  // wall clock; matches, checksum, and the simulated partition time are
  // deterministic and must be identical.
  JoinInput input = SmallWorkload(WorkloadId::kA, 2e-4);
  for (LayoutMode layout : {LayoutMode::kRid, LayoutMode::kVrid}) {
    HybridJoinConfig config;
    config.fpga.fanout = 64;
    config.fpga.output_mode = OutputMode::kPad;
    config.fpga.layout = layout;
    config.num_threads = 2;
    auto sequential = HybridJoin(config, input.r, input.s);
    config.overlap_partitioning = true;
    auto overlapped = HybridJoin(config, input.r, input.s);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    ASSERT_TRUE(overlapped.ok()) << overlapped.status().ToString();
    EXPECT_EQ(overlapped->matches, sequential->matches);
    EXPECT_EQ(overlapped->checksum, sequential->checksum);
    EXPECT_EQ(overlapped->partition_seconds, sequential->partition_seconds);
    EXPECT_EQ(overlapped->matches, input.s.size());
  }
}

TEST(HybridJoinTest, OverlappedExecutionWithSharedPool) {
  JoinInput input = SmallWorkload(WorkloadId::kB, 1e-4);
  ThreadPool pool(2);
  HybridJoinConfig config;
  config.fpga.fanout = 32;
  config.fpga.output_mode = OutputMode::kHist;
  config.num_threads = 2;
  config.pool = &pool;
  config.overlap_partitioning = true;
  auto result = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, input.s.size());
  // The pool stays usable for subsequent calls.
  auto again = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->checksum, result->checksum);
}

TEST(HybridJoinTest, OverlappedOverflowStillReportsError) {
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 2e-4);
  spec.zipf = 1.2;  // skew S so the PAD budget overflows during its pass
  auto input = GenerateWorkload(spec, 3);
  ASSERT_TRUE(input.ok());
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.fpga.output_mode = OutputMode::kPad;
  config.fpga.pad_fraction = 0.05;
  config.num_threads = 2;
  config.overlap_partitioning = true;
  auto result = HybridJoin(config, input->r, input->s);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPartitionOverflow())
      << result.status().ToString();
}

TEST(NoPartitionJoinTest, MatchesRadixJoin) {
  JoinInput input = SmallWorkload(WorkloadId::kC, 5e-5);
  auto np = NoPartitionJoin(2, input.r, input.s);
  ASSERT_TRUE(np.ok());
  CpuJoinConfig config;
  config.fanout = 32;
  auto radix = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(np->matches, radix->matches);
  EXPECT_EQ(np->checksum, radix->checksum);
}

TEST(NoPartitionJoinTest, SingleThreadWorks) {
  JoinInput input = SmallWorkload(WorkloadId::kA, 2e-5);
  auto np = NoPartitionJoin(1, input.r, input.s);
  ASSERT_TRUE(np.ok());
  EXPECT_EQ(np->matches, input.s.size());
}

TEST(ParallelBuildTablesTest, SkipListAvoidsBuildingUnprobedPartitions) {
  // R covers all 16 radix partitions; S only partitions 0..7, so an exact
  // S histogram lets the split-phase build skip the upper half of R's
  // tables — they would never be probed.
  constexpr uint32_t kFanout = 16;
  const size_t nr = 8192, ns = 4096;
  auto r = Relation<Tuple8>::Allocate(nr);
  auto s = Relation<Tuple8>::Allocate(ns);
  ASSERT_TRUE(r.ok() && s.ok());
  for (size_t i = 0; i < nr; ++i) (*r)[i] = {static_cast<uint32_t>(i), i};
  Rng rng(19);
  for (size_t j = 0; j < ns; ++j) {
    // A random R key whose low 4 bits (the radix digit) are < 8.
    uint32_t key = static_cast<uint32_t>(
        (rng.Next() % (nr / kFanout)) * kFanout + rng.Next() % 8);
    (*s)[j] = {key, j};
  }

  CpuPartitionerConfig pc;
  pc.fanout = kFanout;
  pc.hash = HashMethod::kRadix;
  auto pr = CpuPartition(pc, r->data(), r->size());
  auto ps = CpuPartition(pc, s->data(), s->size());
  ASSERT_TRUE(pr.ok() && ps.ok());
  for (uint32_t p = kFanout / 2; p < kFanout; ++p) {
    ASSERT_EQ(ps->histogram[p], 0u) << p;
  }

  const Tuple8* tag = nullptr;
  BuildProbeStats full_stats, skip_stats;
  auto full = ParallelBuildTables(pr->output, 1, nullptr, &full_stats, tag);
  auto skipped =
      ParallelBuildTables(pr->output, 1, nullptr, &skip_stats, tag,
                          kDefaultProbePrefetchDistance, &ps->histogram);
  for (uint32_t p = 0; p < kFanout; ++p) {
    EXPECT_GT(full[p].num_buckets(), 0u) << p;
    if (p < kFanout / 2) {
      EXPECT_GT(skipped[p].num_buckets(), 0u) << p;
    } else {
      EXPECT_EQ(skipped[p].num_buckets(), 0u) << "partition " << p
                                              << " should be skipped";
    }
  }

  // Probing the skip-list tables loses no matches.
  ParallelProbeTables(pr->output, ps->output, full, 1, nullptr, &full_stats);
  ParallelProbeTables(pr->output, ps->output, skipped, 1, nullptr,
                      &skip_stats);
  EXPECT_EQ(full_stats.matches, ns);
  EXPECT_EQ(skip_stats.matches, full_stats.matches);
  EXPECT_EQ(skip_stats.checksum, full_stats.checksum);
}

TEST(HybridJoinTest, OverlappedSkipListMatchesFullBuild) {
  // Overlapped hybrid join with a caller-provided exact S histogram (the
  // recurring-join case) must produce the same matches and checksum as
  // the full build, with S touching only a quarter of the partitions.
  constexpr uint32_t kFanout = 64;
  const size_t nr = 16384, ns = 8192;
  auto r = Relation<Tuple8>::Allocate(nr);
  auto s = Relation<Tuple8>::Allocate(ns);
  ASSERT_TRUE(r.ok() && s.ok());
  for (size_t i = 0; i < nr; ++i) (*r)[i] = {static_cast<uint32_t>(i), i};
  Rng rng(29);
  for (size_t j = 0; j < ns; ++j) {
    uint32_t key = static_cast<uint32_t>(
        (rng.Next() % (nr / kFanout)) * kFanout + rng.Next() % (kFanout / 4));
    (*s)[j] = {key, j};
  }

  HybridJoinConfig config;
  config.fpga.fanout = kFanout;
  config.fpga.hash = HashMethod::kRadix;
  config.fpga.output_mode = OutputMode::kHist;
  config.num_threads = 2;
  config.overlap_partitioning = true;
  auto full = HybridJoin(config, *r, *s);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->matches, ns);

  // The exact per-partition S counts, as a prior run would have recorded.
  FpgaPartitioner<Tuple8> part(config.fpga);
  auto s_run = part.Partition(s->data(), s->size());
  ASSERT_TRUE(s_run.ok()) << s_run.status().ToString();
  std::vector<uint64_t> s_hist(kFanout);
  size_t empty = 0;
  for (uint32_t p = 0; p < kFanout; ++p) {
    s_hist[p] = s_run->output.part(p).num_tuples;
    if (s_hist[p] == 0) ++empty;
  }
  ASSERT_GT(empty, 0u);  // the skip list must actually skip something

  config.s_histogram = &s_hist;
  auto skipped = HybridJoin(config, *r, *s);
  ASSERT_TRUE(skipped.ok()) << skipped.status().ToString();
  EXPECT_EQ(skipped->matches, full->matches);
  EXPECT_EQ(skipped->checksum, full->checksum);
}

TEST(JoinResultTest, ThroughputAccountsBothRelations) {
  JoinInput input = SmallWorkload(WorkloadId::kB, 1e-4);  // 1.7k ⋈ 26.8k
  CpuJoinConfig config;
  config.fanout = 16;
  auto result = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok());
  double expected =
      (input.r.size() + input.s.size()) / result->total_seconds / 1e6;
  EXPECT_NEAR(result->mtuples_per_sec, expected, expected * 1e-6);
}

}  // namespace
}  // namespace fpart
