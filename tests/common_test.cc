// Unit tests for src/common: Status/Result, AlignedBuffer, Rng,
// ThreadPool, env parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/aligned_buffer.h"
#include "common/failpoint.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/topology.h"

namespace fpart {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad fanout");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad fanout");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad fanout");
}

TEST(StatusTest, PartitionOverflowPredicate) {
  EXPECT_TRUE(Status::PartitionOverflow("p 12").IsPartitionOverflow());
  EXPECT_FALSE(Status::Internal("x").IsPartitionOverflow());
  EXPECT_FALSE(Status::OK().IsPartitionOverflow());
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_EQ(copy.code(), StatusCode::kIOError);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  Status moved = std::move(st);
  EXPECT_EQ(moved.message(), "disk");
  Status assigned;
  assigned = moved;
  EXPECT_EQ(assigned.message(), "disk");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::OutOfRange("too big");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(std::move(r).ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Inner(bool fail) {
  if (fail) return Status::CapacityError("inner");
  return 7;
}

Result<int> Outer(bool fail) {
  FPART_ASSIGN_OR_RETURN(int v, Inner(fail));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Outer(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  Result<int> err = Outer(true);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kCapacityError);
}

TEST(AlignedBufferTest, AllocationIsAlignedAndZeroed) {
  auto buf = AlignedBuffer::Allocate(1000);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf->data()) % kCacheLineSize, 0u);
  EXPECT_EQ(buf->size(), 1000u);
  for (size_t i = 0; i < buf->size(); ++i) EXPECT_EQ(buf->data()[i], 0);
}

TEST(AlignedBufferTest, ZeroSize) {
  auto buf = AlignedBuffer::Allocate(0);
  ASSERT_TRUE(buf.ok());
  EXPECT_TRUE(buf->empty());
}

TEST(AlignedBufferTest, RejectsNonPowerOfTwoAlignment) {
  auto buf = AlignedBuffer::Allocate(64, 48);
  EXPECT_FALSE(buf.ok());
  EXPECT_EQ(buf.status().code(), StatusCode::kInvalidArgument);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  auto buf = AlignedBuffer::Allocate(64);
  ASSERT_TRUE(buf.ok());
  uint8_t* ptr = buf->data();
  AlignedBuffer moved = std::move(*buf);
  EXPECT_EQ(moved.data(), ptr);
  EXPECT_EQ(buf->data(), nullptr);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, ReasonablyUniform32) {
  Rng rng(77);
  int buckets[16] = {0};
  const int kN = 160000;
  for (int i = 0; i < kN; ++i) ++buckets[rng.Next32() >> 28];
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(buckets[b], kN / 16, kN / 16 * 0.1);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  pool.ParallelFor(8, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSingleRunsInline) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.ParallelFor(1, [&](size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
}

TEST(ThreadPoolTest, SubmitExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(
      {
        try {
          pool.WaitIdle();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, OnlyFirstExceptionOfBatchPropagates) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&ran] {
      ran.fetch_add(1);
      throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // a throwing task never kills its worker
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(6,
                                [](size_t i) {
                                  if (i == 3) {
                                    throw std::runtime_error("worker boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The error was consumed; the next batch runs clean.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 10);
}

#if defined(__linux__)
TEST(ThreadPoolTest, WorkersAreNamed) {
  ThreadPool pool(2, "tp-name-test");
  std::string worker_name;
  pool.ParallelFor(2, [&](size_t i) {
    if (i == 0) return;  // single writer: only index 1 records its name
    char buf[16] = {};
    pthread_getname_np(pthread_self(), buf, sizeof(buf));
    worker_name = buf;
  });
  // "tp-name-test/<i>" clipped to the kernel's 15-char limit.
  EXPECT_EQ(worker_name.substr(0, 12), "tp-name-test");
}
#endif

TEST(ThreadPoolTest, NoneAffinityLeavesWorkersUnpinned) {
  ThreadPool pool(3, "tp-none", AffinityPolicy::kNone);
  EXPECT_EQ(pool.affinity(), AffinityPolicy::kNone);
  EXPECT_EQ(pool.pinned_workers(), 0u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(pool.worker_cpu(i), -1) << "worker " << i;
  }
}

TEST(ThreadPoolTest, PinMaskHonoredWhenSupported) {
  // Per-worker contract: worker_cpu(i) >= 0 only when the kernel accepted
  // the pin, and such a worker must actually run with exactly that
  // single-CPU mask. Rejected pins fall back cleanly to -1/unrestricted
  // (which is all that can be asserted on hosts without affinity support).
  ThreadPool pool(2, "tp-pin", AffinityPolicy::kCompact);
  EXPECT_EQ(pool.affinity(), AffinityPolicy::kCompact);
  EXPECT_LE(pool.pinned_workers(), 2u);
  std::mutex mu;
  bool mask_ok = true;
  pool.ParallelFor(4, [&](size_t) {
    const WorkerContext& ctx = CurrentWorkerContext();
#if defined(__linux__)
    if (ctx.cpu >= 0) {
      cpu_set_t set;
      CPU_ZERO(&set);
      const bool ok = sched_getaffinity(0, sizeof(set), &set) == 0 &&
                      CPU_COUNT(&set) == 1 &&
                      CPU_ISSET(static_cast<unsigned>(ctx.cpu), &set);
      std::lock_guard<std::mutex> lock(mu);
      mask_ok = mask_ok && ok;
    }
#else
    (void)ctx;
#endif
  });
  EXPECT_TRUE(mask_ok);
#if !defined(__linux__)
  EXPECT_EQ(pool.pinned_workers(), 0u);  // clean fallback: nothing pinned
#endif
}

TEST(ThreadPoolTest, WorkersPublishContext) {
  ThreadPool pool(2, "tp-ctx", AffinityPolicy::kCompact);
  std::mutex mu;
  bool ctx_ok = true;
  pool.ParallelFor(8, [&](size_t) {
    const WorkerContext& ctx = CurrentWorkerContext();
    const bool ok = ctx.worker >= 0 && ctx.worker < 2 &&
                    pool.worker_cpu(ctx.worker) == ctx.cpu &&
                    pool.worker_node(ctx.worker) == ctx.node &&
                    ctx.pool != nullptr &&
                    std::string(ctx.pool) == "tp-ctx";
    std::lock_guard<std::mutex> lock(mu);
    ctx_ok = ctx_ok && ok;
  });
  EXPECT_TRUE(ctx_ok);
}

TEST(ThreadPoolTest, NodeChunksCoverRangeExactlyOnce) {
  // n workers, n chunks: every element of [0, total) must be visited by
  // exactly one chunk, whichever workers end up claiming or stealing.
  ThreadPool pool(4, "tp-chunks", AffinityPolicy::kNone);
  const size_t total = 1003;  // deliberately not a multiple of 4
  std::vector<std::atomic<int>> hits(total);
  std::atomic<size_t> chunks{0};
  pool.ParallelForNodeChunks(total, [&](size_t, size_t begin, size_t end) {
    chunks.fetch_add(1);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 4u);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, NodeChunksRunEachChunkIdOnce) {
  ThreadPool pool(3, "tp-chunkid", AffinityPolicy::kCompact);
  std::mutex mu;
  std::set<size_t> seen;
  std::vector<std::pair<size_t, size_t>> ranges(3);
  pool.ParallelForNodeChunks(300, [&](size_t c, size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.insert(c).second) << "chunk " << c << " ran twice";
    if (c < ranges.size()) ranges[c] = {b, e};
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>(0, 100)));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>(100, 200)));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>(200, 300)));
}

TEST(ThreadPoolTest, NodeChunksSingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  size_t chunk = 99, begin = 99, end = 0;
  pool.ParallelForNodeChunks(42, [&](size_t c, size_t b, size_t e) {
    seen = std::this_thread::get_id();
    chunk = c;
    begin = b;
    end = e;
  });
  EXPECT_EQ(seen, caller);
  EXPECT_EQ(chunk, 0u);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, 42u);
}

TEST(ThreadPoolTest, NodeChunksZeroTotalStillCalledOnce) {
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  size_t end = 99;
  pool.ParallelForNodeChunks(0, [&](size_t, size_t, size_t e) {
    calls.fetch_add(1);
    end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(end, 0u);
}

TEST(StatusTest, SloErrorIsTypedAndDistinct) {
  Status slo = Status::SloError("predicted 2 s exceeds budget 1 s");
  EXPECT_FALSE(slo.ok());
  EXPECT_TRUE(slo.IsSloError());
  EXPECT_FALSE(slo.IsCapacityError());
  Status cap = Status::CapacityError("queue full");
  EXPECT_TRUE(cap.IsCapacityError());
  EXPECT_FALSE(cap.IsSloError());
  EXPECT_NE(slo.ToString().find("predicted"), std::string::npos);
}

TEST(FailpointTest, DisarmedRegistryNeverFires) {
  FailpointRegistry::Global().ClearAll();
  EXPECT_EQ(FailpointRegistry::Global().armed(), 0);
  EXPECT_FALSE(Failpoint("common.test.never_armed"));
  EXPECT_EQ(FailpointRegistry::Global().fired("common.test.never_armed"), 0u);
}

TEST(FailpointTest, ArmWithCountFiresExactlyThatManyTimes) {
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  reg.Arm("common.test.p", 3);
  EXPECT_EQ(reg.armed(), 1);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(Failpoint("common.test.p"));
  EXPECT_FALSE(Failpoint("common.test.p"));  // budget exhausted
  EXPECT_EQ(reg.fired("common.test.p"), 3u);
  EXPECT_EQ(reg.armed(), 0);
  reg.ClearAll();
}

TEST(FailpointTest, DisarmStopsFiringButKeepsTheTally) {
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  reg.Arm("common.test.q");  // unlimited
  EXPECT_TRUE(Failpoint("common.test.q"));
  EXPECT_TRUE(Failpoint("common.test.q"));
  reg.Disarm("common.test.q");
  EXPECT_FALSE(Failpoint("common.test.q"));
  EXPECT_EQ(reg.fired("common.test.q"), 2u);
  reg.ClearAll();
  EXPECT_EQ(reg.fired("common.test.q"), 0u);
}

TEST(FailpointTest, OnlyTheNamedPointFires) {
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  reg.Arm("common.test.armed", 1);
  EXPECT_FALSE(Failpoint("common.test.other"));
  EXPECT_TRUE(Failpoint("common.test.armed"));
  EXPECT_EQ(reg.fired("common.test.other"), 0u);
  reg.ClearAll();
}

TEST(FailpointTest, ArmFromSpecParsesNamesAndCounts) {
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  EXPECT_EQ(reg.ArmFromSpec("common.test.a:2,common.test.b"), 2u);
  EXPECT_TRUE(Failpoint("common.test.a"));
  EXPECT_TRUE(Failpoint("common.test.a"));
  EXPECT_FALSE(Failpoint("common.test.a"));  // count 2 consumed
  EXPECT_TRUE(Failpoint("common.test.b"));
  EXPECT_TRUE(Failpoint("common.test.b"));  // unlimited
  // Malformed entries are skipped without arming anything.
  EXPECT_EQ(reg.ArmFromSpec(""), 0u);
  EXPECT_EQ(reg.ArmFromSpec(",,"), 0u);
  reg.ClearAll();
}

TEST(EnvTest, ParsesAndDefaults) {
  ::setenv("FPART_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FPART_TEST_D", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(EnvDouble("FPART_TEST_MISSING", 1.5), 1.5);
  ::setenv("FPART_TEST_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("FPART_TEST_D", 1.0), 1.0);
  ::setenv("FPART_TEST_N", "42", 1);
  EXPECT_EQ(EnvSizeT("FPART_TEST_N", 7), 42u);
  EXPECT_EQ(EnvSizeT("FPART_TEST_MISSING", 7), 7u);
  ::unsetenv("FPART_TEST_D");
  ::unsetenv("FPART_TEST_N");
}

TEST(EnvTest, BenchScaleClamped) {
  ::setenv("FPART_SCALE", "1000", 1);
  EXPECT_LE(BenchScale(), 64.0);
  ::setenv("FPART_SCALE", "0.0001", 1);
  EXPECT_GE(BenchScale(), 1.0 / 64.0);
  ::unsetenv("FPART_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
}

}  // namespace
}  // namespace fpart
