// Tests of the sort-merge join baseline and its agreement with the radix
// hash join.
#include <gtest/gtest.h>

#include "datagen/workloads.h"
#include "join/radix_join.h"
#include "join/sort_merge_join.h"

namespace fpart {
namespace {

TEST(SortMergeJoinTest, MatchesRadixJoinOnEveryWorkload) {
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kC, WorkloadId::kD}) {
    auto input = GenerateWorkload(GetWorkloadSpec(id, 5e-5), 7);
    ASSERT_TRUE(input.ok());
    auto sm = SortMergeJoin(2, input->r, input->s);
    ASSERT_TRUE(sm.ok());
    CpuJoinConfig config;
    config.fanout = 32;
    config.hash = HashMethod::kMurmur;
    auto radix = CpuRadixJoin(config, input->r, input->s);
    ASSERT_TRUE(radix.ok());
    EXPECT_EQ(sm->matches, radix->matches) << input->spec.name;
    EXPECT_EQ(sm->checksum, radix->checksum) << input->spec.name;
    EXPECT_EQ(sm->matches, input->s.size());
  }
}

TEST(SortMergeJoinTest, CountsDuplicateCrossProducts) {
  // R has key 5 twice, S has key 5 three times → 6 matches.
  auto r = Relation<Tuple8>::Allocate(3);
  auto s = Relation<Tuple8>::Allocate(4);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  (*r)[0] = {5, 1};
  (*r)[1] = {9, 2};
  (*r)[2] = {5, 3};
  (*s)[0] = {5, 0};
  (*s)[1] = {5, 0};
  (*s)[2] = {7, 0};
  (*s)[3] = {5, 0};
  auto sm = SortMergeJoin(1, *r, *s);
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ(sm->matches, 6u);
  // checksum: (payload 1 + payload 3) × 3 S-tuples = 12.
  EXPECT_EQ(sm->checksum, 12u);
}

TEST(SortMergeJoinTest, DisjointRelationsProduceNoMatches) {
  auto r = Relation<Tuple8>::Allocate(100);
  auto s = Relation<Tuple8>::Allocate(100);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    (*r)[i] = {i * 2, i};        // even keys
    (*s)[i] = {i * 2 + 1, i};    // odd keys
  }
  auto sm = SortMergeJoin(2, *r, *s);
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ(sm->matches, 0u);
}

TEST(SortMergeJoinTest, ParallelAndSerialAgree) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 2e-4), 9);
  ASSERT_TRUE(input.ok());
  auto serial = SortMergeJoin(1, input->r, input->s);
  auto parallel = SortMergeJoin(4, input->r, input->s);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->matches, parallel->matches);
  EXPECT_EQ(serial->checksum, parallel->checksum);
}

TEST(SortMergeJoinTest, OddThreadCountMergesCorrectly) {
  // Exercises the leftover-run path of the pairwise merge tree.
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kC, 1e-4), 11);
  ASSERT_TRUE(input.ok());
  auto join = SortMergeJoin(3, input->r, input->s);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->matches, input->s.size());
}

}  // namespace
}  // namespace fpart
