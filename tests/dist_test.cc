// Tests of the distributed join (the Section 6 / Barthels [6,7] scenario).
#include <gtest/gtest.h>

#include "core/fpart.h"

namespace fpart {
namespace {

TEST(NetworkModelTest, ShuffleTimeIsMaxLinkLoad) {
  NetworkModel net;
  net.link_gbs = 1.0;  // 1 GB/s per direction
  net.message_latency_sec = 0.0;
  // Node 0 sends 2 GB to node 1; node 1 sends nothing.
  std::vector<std::vector<uint64_t>> flows = {
      {0, 2000000000ull}, {0, 0}};
  EXPECT_NEAR(net.ShuffleSeconds(flows), 2.0, 1e-9);
  // Balanced all-to-all: each of 4 nodes sends 1 GB to each other node →
  // 3 GB injected per node → 3 s.
  std::vector<std::vector<uint64_t>> balanced(
      4, std::vector<uint64_t>(4, 1000000000ull));
  EXPECT_NEAR(net.ShuffleSeconds(balanced), 3.0, 1e-9);
}

TEST(NetworkModelTest, LocalBytesAreFree) {
  NetworkModel net;
  net.message_latency_sec = 0.0;
  std::vector<std::vector<uint64_t>> flows = {{1ull << 40}};  // self only
  EXPECT_DOUBLE_EQ(net.ShuffleSeconds(flows), 0.0);
}

TEST(DistributedJoinTest, MatchCountIsExact) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 2e-4), 7);
  ASSERT_TRUE(input.ok());
  DistributedJoinConfig config;
  config.num_nodes = 4;
  config.local_fanout = 64;
  auto result = DistributedJoin(config, input->r, input->s);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->matches, input->s.size());
  EXPECT_GT(result->partition_seconds, 0.0);
  EXPECT_GT(result->shuffle_seconds, 0.0);
  EXPECT_GT(result->local_join_seconds, 0.0);
}

TEST(DistributedJoinTest, SingleNodeDegeneratesToLocalJoin) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kC, 1e-4), 9);
  ASSERT_TRUE(input.ok());
  DistributedJoinConfig config;
  config.num_nodes = 1;
  config.local_fanout = 64;
  auto result = DistributedJoin(config, input->r, input->s);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches, input->s.size());
  // No cross-node traffic with one node.
  EXPECT_DOUBLE_EQ(result->shuffle_seconds, 0.0);
}

TEST(DistributedJoinTest, NodeCountSweepsAgree) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 1e-4), 11);
  ASSERT_TRUE(input.ok());
  for (size_t nodes : {1, 2, 4, 8}) {
    DistributedJoinConfig config;
    config.num_nodes = nodes;
    config.local_fanout = 64;
    auto result = DistributedJoin(config, input->r, input->s);
    ASSERT_TRUE(result.ok()) << nodes;
    EXPECT_EQ(result->matches, input->s.size()) << nodes;
  }
}

TEST(DistributedJoinTest, RejectsNonPowerOfTwoNodes) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 2e-5), 13);
  ASSERT_TRUE(input.ok());
  DistributedJoinConfig config;
  config.num_nodes = 3;
  EXPECT_FALSE(DistributedJoin(config, input->r, input->s).ok());
}

TEST(DistributedJoinTest, FpgaPartitioningPhaseScalesDownWithNodes) {
  // Each node only streams 1/nodes of the data: the (simulated) partition
  // phase must shrink roughly linearly with the node count.
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 5e-4), 17);
  ASSERT_TRUE(input.ok());
  DistributedJoinConfig config;
  config.local_fanout = 64;
  config.num_nodes = 2;
  auto two = DistributedJoin(config, input->r, input->s);
  config.num_nodes = 8;
  auto eight = DistributedJoin(config, input->r, input->s);
  ASSERT_TRUE(two.ok());
  ASSERT_TRUE(eight.ok());
  EXPECT_NEAR(two->partition_seconds / eight->partition_seconds, 4.0, 0.5);
}

}  // namespace
}  // namespace fpart
