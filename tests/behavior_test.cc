// Behavioural assertions distilled from the paper's figures — small-scale,
// deterministic checks that the *shapes* the evaluation reports hold in
// this reproduction (the benches print them; these tests pin them).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/fpart.h"

namespace fpart {
namespace {

// --- Figure 3's mechanism: radix partitioning collapses grid keys.
TEST(FigureShapeTest, RadixCollapsesGridKeysMurmurDoesNot) {
  const size_t n = 200000;
  const uint32_t fanout = 1024;
  auto rel = GenerateRawRelation(n, KeyDistribution::kGrid, 7);
  ASSERT_TRUE(rel.ok());
  auto empty_count = [&](HashMethod m) {
    PartitionFn fn(m, fanout);
    std::vector<uint64_t> hist(fanout, 0);
    for (const auto& t : *rel) ++hist[fn(t.key)];
    return std::count(hist.begin(), hist.end(), 0u);
  };
  EXPECT_GE(empty_count(HashMethod::kRadix),
            static_cast<long>(fanout) / 2);  // half the space unused
  EXPECT_EQ(empty_count(HashMethod::kMurmur), 0);
}

// --- Figure 8: GB/s processed is width-invariant (bandwidth bound).
TEST(FigureShapeTest, BytesPerSecondFlatAcrossWidths) {
  auto run_gbs = [](auto tag) {
    using T = decltype(tag);
    const size_t n = (1 << 22) / sizeof(T) * 4;  // ~16 MB of tuples
    auto rel = Relation<T>::Allocate(n);
    EXPECT_TRUE(rel.ok());
    Rng rng(3);
    for (size_t i = 0; i < n; ++i) {
      T t{};
      TupleTraits<T>::SetKey(&t, rng.Next() & 0x7fffffffu);
      (*rel)[i] = t;
    }
    FpgaPartitionerConfig config;
    config.fanout = 1024;
    config.output_mode = OutputMode::kHist;
    FpgaPartitioner<T> part(config);
    auto run = part.Partition(rel->data(), n);
    EXPECT_TRUE(run.ok());
    return 3.0 * n * sizeof(T) / run->seconds / 1e9;  // r=2: 3B moved per B
  };
  double g8 = run_gbs(Tuple8{});
  double g16 = run_gbs(Tuple16{});
  double g64 = run_gbs(Tuple64{});
  EXPECT_NEAR(g16, g8, g8 * 0.05);
  EXPECT_NEAR(g64, g8, g8 * 0.05);
}

// --- Figure 9's ordering: PAD > HIST and VRID > RID end to end.
TEST(FigureShapeTest, ModeOrderingHolds) {
  const size_t n = 1 << 19;
  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, 11);
  ASSERT_TRUE(rel.ok());
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = (*rel)[i].key;
  auto rate = [&](OutputMode mode, LayoutMode layout) {
    FpgaPartitionerConfig config;
    config.fanout = 1024;
    config.output_mode = mode;
    config.layout = layout;
    FpgaPartitioner<Tuple8> part(config);
    auto run = layout == LayoutMode::kVrid
                   ? part.PartitionColumn(keys.data(), n)
                   : part.Partition(rel->data(), n);
    EXPECT_TRUE(run.ok());
    return run->mtuples_per_sec;
  };
  double hist_rid = rate(OutputMode::kHist, LayoutMode::kRid);
  double hist_vrid = rate(OutputMode::kHist, LayoutMode::kVrid);
  double pad_rid = rate(OutputMode::kPad, LayoutMode::kRid);
  double pad_vrid = rate(OutputMode::kPad, LayoutMode::kVrid);
  EXPECT_LT(hist_rid, hist_vrid);
  EXPECT_LT(hist_vrid, pad_vrid);
  EXPECT_LT(pad_rid, pad_vrid);
  EXPECT_LT(hist_rid, pad_rid);
}

// --- Figure 13's boundary: PAD survives z=0.25, fails z=0.5 (default pad).
TEST(FigureShapeTest, PadSkewBoundaryNearQuarter) {
  auto attempt = [](double z) {
    // 1.28M tuples: large enough that the z=0.25 hot key stays below the
    // padding slack (the paper's boundary is a large-N statement).
    WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 1e-2);
    spec.zipf = z;
    auto input = GenerateWorkload(spec, 7);
    EXPECT_TRUE(input.ok());
    FpgaPartitionerConfig config;
    config.fanout = 8192;
    config.output_mode = OutputMode::kPad;
    FpgaPartitioner<Tuple8> part(config);
    return part.Partition(input->s.data(), input->s.size()).ok();
  };
  EXPECT_TRUE(attempt(0.25));
  EXPECT_FALSE(attempt(0.75));
}

// --- QPI link: the adaptive rate tracks a changing mix in both directions.
TEST(QpiLinkAdaptiveTest, TracksMixSwitch) {
  QpiLink link = QpiLink::XeonFpga();
  // Phase 1: pure reads → rate near B(read_fraction=1)=6.5 GB/s.
  for (int i = 0; i < 20000; ++i) {
    link.Tick();
    link.TryRead();
  }
  double read_rate = link.current_rate_lines_per_cycle() * 64 * 200e6 / 1e9;
  EXPECT_NEAR(read_rate, 6.5, 0.1);
  // Phase 2: pure writes → rate near B(0)=4.6 GB/s.
  for (int i = 0; i < 20000; ++i) {
    link.Tick();
    link.TryWrite();
  }
  double write_rate = link.current_rate_lines_per_cycle() * 64 * 200e6 / 1e9;
  EXPECT_NEAR(write_rate, 4.6, 0.1);
}

// --- HIST/VRID histograms are exact too (only RID was covered elsewhere).
TEST(HistogramTest, VridHistogramIsExact) {
  const size_t n = 30000;
  std::vector<uint32_t> keys(n);
  Rng rng(13);
  for (auto& k : keys) k = rng.Next32() & 0x7fffffffu;
  FpgaPartitionerConfig config;
  config.fanout = 128;
  config.layout = LayoutMode::kVrid;
  config.output_mode = OutputMode::kHist;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.PartitionColumn(keys.data(), n);
  ASSERT_TRUE(run.ok());
  PartitionFn fn(config.hash, config.fanout);
  std::vector<uint64_t> expected(config.fanout, 0);
  for (uint32_t k : keys) ++expected[fn(k)];
  ASSERT_EQ(run->histogram.size(), expected.size());
  EXPECT_EQ(run->histogram, expected);
}

// --- Dummy padding overhead is bounded: ≤ K-1 dummies per (combiner,
// partition), i.e. ≤ fanout·K·(K-1) total.
TEST(PaddingTest, DummyOverheadIsBounded) {
  const size_t n = 100000;
  auto rel = GenerateUniqueRelation(n, KeyDistribution::kRandom, 17);
  ASSERT_TRUE(rel.ok());
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.output_mode = OutputMode::kPad;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel->data(), n);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(run->stats.dummy_tuples,
            static_cast<uint64_t>(config.fanout) * 8 * 7);
  EXPECT_GT(run->stats.dummy_tuples, 0u);  // partial lines always exist
}

// --- The engine's partition sizes agree across all three partitioners on
// every key distribution (cross-distribution sweep).
class DistributionSweepTest
    : public ::testing::TestWithParam<KeyDistribution> {};

TEST_P(DistributionSweepTest, EnginesAgreeOnHistograms) {
  auto rel = GenerateRawRelation(40000, GetParam(), 23);
  ASSERT_TRUE(rel.ok());
  CpuPartitionerConfig cpu;
  cpu.fanout = 256;
  cpu.hash = HashMethod::kMurmur;
  auto cpu_run = CpuPartition(cpu, rel->data(), rel->size());
  ASSERT_TRUE(cpu_run.ok());

  FpgaPartitionerConfig fpga;
  fpga.fanout = 256;
  fpga.hash = HashMethod::kMurmur;
  fpga.output_mode = OutputMode::kHist;
  FpgaPartitioner<Tuple8> part(fpga);
  auto fpga_run = part.Partition(rel->data(), rel->size());
  ASSERT_TRUE(fpga_run.ok());
  EXPECT_EQ(fpga_run->histogram, cpu_run->histogram);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionSweepTest,
                         ::testing::Values(KeyDistribution::kLinear,
                                           KeyDistribution::kRandom,
                                           KeyDistribution::kGrid,
                                           KeyDistribution::kReverseGrid),
                         [](const auto& info) {
                           std::string name = KeyDistributionName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace fpart
