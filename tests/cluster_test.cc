// Tests of the cluster layer (docs/distributed.md): the versioned shard
// map, the greedy hot-bucket rebalancer, ownership-epoch correctness
// under racing submit/migrate (run this binary under TSan — check.sh's
// tsan suite does), cluster-wide deterministic replay, and the
// load-imbalance property of migration on a static Zipf workload.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/fpart.h"

namespace fpart {
namespace {

using dist::Cluster;
using dist::ClusterConfig;
using dist::ClusterSubmission;
using dist::MigrationEvent;
using dist::PlanRebalance;
using dist::RebalanceMove;
using dist::ShardMap;
using dist::ShardRoute;

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (b * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Relation<Tuple8> SmallTable(size_t tuples, uint64_t seed) {
  auto rel = GenerateRawRelation(tuples, KeyDistribution::kRandom, seed);
  EXPECT_TRUE(rel.ok());
  return std::move(rel).ValueUnsafe();
}

// ---------------------------------------------------------------- ShardMap

TEST(ShardMapTest, InitialOwnershipIsRoundRobin) {
  ShardMap map(8, 3);
  EXPECT_EQ(map.epoch(), 0u);
  for (uint32_t b = 0; b < 8; ++b) {
    EXPECT_EQ(map.owner(b), b % 3);
    EXPECT_EQ(map.OwnerAt(b, 0), b % 3);
  }
}

TEST(ShardMapTest, RouteIsConsistentWithOwner) {
  ShardMap map(16, 4);
  for (uint64_t key = 0; key < 100; ++key) {
    const ShardRoute r = map.Route(key);
    EXPECT_EQ(r.bucket, ShardMap::BucketOf(key, 16));
    EXPECT_EQ(r.owner, map.owner(r.bucket));
    EXPECT_EQ(r.epoch, 0u);
  }
}

TEST(ShardMapTest, MigrateBumpsEpochAndLogsHistory) {
  ShardMap map(8, 2);
  EXPECT_EQ(map.Migrate(3, 0), 1u);  // bucket 3: node 1 -> node 0
  EXPECT_EQ(map.Migrate(3, 1), 2u);  // and back
  EXPECT_EQ(map.epoch(), 2u);
  EXPECT_EQ(map.owner(3), 1u);
  const std::vector<MigrationEvent> log = map.history();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].bucket, 3u);
  EXPECT_EQ(log[0].from, 1u);
  EXPECT_EQ(log[0].to, 0u);
  EXPECT_EQ(log[0].epoch, 1u);
  EXPECT_EQ(log[1].to, 1u);
}

TEST(ShardMapTest, OwnerAtReplaysTheLog) {
  ShardMap map(4, 2);
  map.Migrate(1, 0);  // epoch 1
  map.Migrate(2, 1);  // epoch 2 (2 already belongs to 0 -> moves to 1)
  map.Migrate(1, 1);  // epoch 3
  EXPECT_EQ(map.OwnerAt(1, 0), 1u);  // initial: 1 % 2
  EXPECT_EQ(map.OwnerAt(1, 1), 0u);
  EXPECT_EQ(map.OwnerAt(1, 2), 0u);  // unrelated migration in between
  EXPECT_EQ(map.OwnerAt(1, 3), 1u);
  EXPECT_EQ(map.OwnerAt(2, 1), 0u);
  EXPECT_EQ(map.OwnerAt(2, 2), 1u);
}

TEST(ShardMapTest, BucketOfSpreadsAdjacentKeys) {
  // Zipf ranks are small consecutive integers; the finalizer must not
  // alias them onto neighbouring buckets.
  const size_t buckets = 64;
  std::vector<uint32_t> seen;
  for (uint64_t key = 1; key <= 16; ++key) {
    seen.push_back(ShardMap::BucketOf(key, buckets));
  }
  size_t distinct = 0;
  std::vector<uint8_t> mark(buckets, 0);
  for (uint32_t b : seen) {
    if (mark[b] == 0) ++distinct;
    mark[b] = 1;
  }
  EXPECT_GE(distinct, 12u);  // 16 keys over 64 buckets: mostly distinct
}

// ----------------------------------------------------------- PlanRebalance

double MaxMinGap(const std::vector<double>& loads,
                 const std::vector<size_t>& owners, size_t nodes) {
  std::vector<double> node_load(nodes, 0.0);
  for (size_t b = 0; b < owners.size(); ++b) {
    node_load[owners[b]] += loads[b];
  }
  double hi = node_load[0], lo = node_load[0];
  for (double l : node_load) {
    hi = std::max(hi, l);
    lo = std::min(lo, l);
  }
  return hi - lo;
}

TEST(PlanRebalanceTest, MovesHotBucketOffTheOverloadedNode) {
  // Bucket 0 (node 0) carries more than the whole node-load gap — moving
  // it would just swap the hot spot — so bucket 2 is the hottest bucket
  // that fits under the gap.
  const std::vector<double> loads = {100.0, 40.0, 30.0, 1.0};
  const std::vector<size_t> owners = {0, 1, 0, 1};
  const std::vector<RebalanceMove> moves = PlanRebalance(loads, owners, 2, 4);
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(moves[0].bucket, 2u);  // hottest movable (100 >= gap, stays)
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[0].to, 1u);
}

TEST(PlanRebalanceTest, EveryMoveShrinksTheGap) {
  // Property over random skewed loads: applying the plan move-by-move
  // never increases the max-min node-load gap.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const size_t buckets = 32, nodes = 4;
    std::vector<double> loads(buckets);
    std::vector<size_t> owners(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      // Heavy-tailed bucket loads, random initial owners.
      const double u = rng.NextDouble();
      loads[b] = 1.0 / (0.001 + u * u);
      owners[b] = rng.Next() % nodes;
    }
    std::vector<size_t> current = owners;
    double gap = MaxMinGap(loads, current, nodes);
    const std::vector<RebalanceMove> moves =
        PlanRebalance(loads, owners, nodes, 16);
    for (const RebalanceMove& mv : moves) {
      EXPECT_EQ(current[mv.bucket], mv.from);
      current[mv.bucket] = mv.to;
      const double next = MaxMinGap(loads, current, nodes);
      EXPECT_LT(next, gap) << "seed " << seed;
      gap = next;
    }
  }
}

TEST(PlanRebalanceTest, BalancedLoadPlansNothing) {
  const std::vector<double> loads = {10.0, 10.0, 10.0, 10.0};
  const std::vector<size_t> owners = {0, 1, 0, 1};
  EXPECT_TRUE(PlanRebalance(loads, owners, 2, 8).empty());
}

TEST(PlanRebalanceTest, SingleNodeOrBadInputPlansNothing) {
  EXPECT_TRUE(PlanRebalance({5.0, 1.0}, {0, 0}, 1, 8).empty());
  EXPECT_TRUE(PlanRebalance({5.0}, {0, 0}, 2, 8).empty());  // size mismatch
}

// ----------------------------------------------------------------- Cluster

// Find a key the map currently routes to `owner` (exists for any owner
// with at least one bucket).
uint64_t KeyOwnedBy(const ShardMap& map, size_t owner) {
  for (uint64_t key = 0;; ++key) {
    if (map.Route(key).owner == owner) return key;
  }
}

TEST(ClusterTest, LocalAndRemoteSubmissionsComplete) {
  const Relation<Tuple8> table = SmallTable(2048, 3);
  ClusterConfig config;
  config.nodes = 2;
  config.shard_buckets = 8;
  config.node.num_workers = 1;
  config.node.policy = svc::PlacementPolicy::kCpuOnly;
  Cluster cluster(config);

  const uint64_t local_key = KeyOwnedBy(cluster.shard_map(), 0);
  const uint64_t remote_key = KeyOwnedBy(cluster.shard_map(), 1);
  svc::PartitionJobSpec spec;
  spec.input = &table;
  spec.request.fanout = 64;

  auto local = cluster.Submit(local_key, /*origin_node=*/0, spec);
  auto remote = cluster.Submit(remote_key, /*origin_node=*/0, spec);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_FALSE(local->remote);
  EXPECT_TRUE(remote->remote);
  EXPECT_DOUBLE_EQ(local->hop_seconds, 0.0);
  // Hop = rendezvous latency + bytes at link rate.
  EXPECT_NEAR(remote->hop_seconds,
              config.network.TransferSeconds(table.size() * sizeof(Tuple8)),
              1e-12);
  EXPECT_EQ(remote->route.owner, 1u);
  EXPECT_EQ(local->handle.Wait().state, svc::JobState::kCompleted);
  EXPECT_EQ(remote->handle.Wait().state, svc::JobState::kCompleted);
  cluster.Shutdown();
  EXPECT_EQ(cluster.remote_submitted(), 1u);
  EXPECT_EQ(cluster.remote_completed(), 1u);
  EXPECT_EQ(cluster.remote_bytes(), table.size() * sizeof(Tuple8));
  EXPECT_EQ(cluster.node_jobs(0) + cluster.node_jobs(1), 2u);
  for (uint32_t b = 0; b < config.shard_buckets; ++b) {
    EXPECT_EQ(cluster.inflight(b), 0u);  // all drained
  }
}

TEST(ClusterTest, OnCompleteChainsToTheCallersCallback) {
  const Relation<Tuple8> table = SmallTable(1024, 5);
  ClusterConfig config;
  config.nodes = 2;
  config.node.num_workers = 1;
  config.node.policy = svc::PlacementPolicy::kCpuOnly;
  Cluster cluster(config);

  std::atomic<int> fired{0};
  svc::JobOptions opts;
  opts.on_complete = [&](const svc::JobOutcome& out) {
    EXPECT_EQ(out.state, svc::JobState::kCompleted);
    fired.fetch_add(1);
  };
  svc::PartitionJobSpec spec;
  spec.input = &table;
  spec.request.fanout = 64;
  auto sub = cluster.Submit(7, 0, spec, opts);
  ASSERT_TRUE(sub.ok());
  sub->handle.Wait();
  cluster.Shutdown();
  EXPECT_EQ(fired.load(), 1);
}

TEST(ClusterTest, InvalidSubmissionsAreRejected) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  svc::PartitionJobSpec no_input;
  EXPECT_FALSE(cluster.Submit(1, 0, no_input).ok());
  const Relation<Tuple8> table = SmallTable(512, 9);
  svc::PartitionJobSpec spec;
  spec.input = &table;
  EXPECT_FALSE(cluster.Submit(1, /*origin_node=*/9, spec).ok());
  cluster.Shutdown();
  EXPECT_FALSE(cluster.Submit(1, 0, spec).ok());  // after shutdown
}

// The epoch-protocol audit under racing submit and migrate: client
// threads hammer a live-mode cluster with hot-keyed jobs while a
// rebalancer thread migrates buckets concurrently. Every stamped route
// must agree with the migration log, and every in-flight count must
// drain. Run under TSan to check the router/callback synchronization.
TEST(ClusterTest, RoutesStayEpochConsistentUnderRacingMigration) {
  const Relation<Tuple8> table = SmallTable(1024, 13);
  ClusterConfig config;
  config.nodes = 3;
  config.shard_buckets = 12;
  config.node.num_workers = 1;
  config.node.policy = svc::PlacementPolicy::kCpuOnly;
  config.node.queue_capacity = 1024;
  Cluster cluster(config);

  const size_t kClients = 3;
  const uint64_t kJobsPerClient = 60;
  std::vector<std::vector<ClusterSubmission>> subs(kClients);
  std::atomic<bool> stop{false};

  std::thread rebalancer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cluster.Rebalance();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ZipfSampler keys(64, 1.2, 1000 + c);  // hot keys: rebalancer has work
      for (uint64_t i = 0; i < kJobsPerClient; ++i) {
        svc::PartitionJobSpec spec;
        spec.input = &table;
        spec.request.fanout = 64;
        auto sub = cluster.Submit(keys.Next(), c % config.nodes, spec);
        ASSERT_TRUE(sub.ok()) << sub.status().ToString();
        subs[c].push_back(std::move(sub).ValueUnsafe());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  rebalancer.join();
  cluster.Shutdown();

  for (const auto& per_client : subs) {
    for (const ClusterSubmission& sub : per_client) {
      EXPECT_EQ(sub.handle.Wait().state, svc::JobState::kCompleted);
      // The job ran on the node that owned its bucket when it was routed.
      EXPECT_EQ(cluster.shard_map().OwnerAt(sub.route.bucket,
                                            sub.route.epoch),
                sub.route.owner);
    }
  }
  for (uint32_t b = 0; b < config.shard_buckets; ++b) {
    EXPECT_EQ(cluster.inflight(b), 0u);
  }
}

// One deterministic replay: `clients` threads submit `jobs` Zipf-keyed
// partition jobs with cluster-wide arrival sequences; returns the
// determinism hash over (i, route, backend, checksum).
uint64_t ReplayHash(size_t nodes, bool migration, size_t clients,
                    uint64_t jobs, const Relation<Tuple8>& table) {
  ClusterConfig config;
  config.nodes = nodes;
  config.shard_buckets = 16;
  config.migration = migration;
  config.rebalance_every = 32;
  config.node.deterministic = true;
  config.node.num_workers = 2;
  config.node.queue_capacity = jobs;
  Cluster cluster(config);

  std::vector<uint64_t> keys(jobs);
  {
    ZipfSampler zipf(256, 1.1, 77);
    for (uint64_t i = 0; i < jobs; ++i) keys[i] = zipf.Next();
  }
  std::vector<ClusterSubmission> subs(jobs);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint64_t i = c; i < jobs; i += clients) {
        svc::PartitionJobSpec spec;
        spec.input = &table;
        spec.request.fanout = 64;
        svc::JobOptions opts;
        opts.arrival_seq = i;
        opts.virtual_arrival_seconds = 1e-5 * static_cast<double>(i);
        auto sub = cluster.Submit(keys[i], i % nodes, spec, opts);
        ASSERT_TRUE(sub.ok()) << sub.status().ToString();
        subs[i] = std::move(sub).ValueUnsafe();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  cluster.Shutdown();

  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint64_t i = 0; i < jobs; ++i) {
    const svc::JobOutcome out = subs[i].handle.Wait();
    EXPECT_EQ(out.state, svc::JobState::kCompleted);
    hash = Fnv1a(hash, i);
    hash = Fnv1a(hash, subs[i].route.bucket);
    hash = Fnv1a(hash, subs[i].route.owner);
    hash = Fnv1a(hash, subs[i].route.epoch);
    hash = Fnv1a(hash, static_cast<uint64_t>(out.backend));
    hash = Fnv1a(hash, out.checksum);
  }
  return hash;
}

TEST(ClusterTest, DeterministicReplayIsStableAcrossNodeCounts) {
  const Relation<Tuple8> table = SmallTable(2048, 21);
  for (size_t nodes : {1, 2, 4}) {
    const uint64_t a = ReplayHash(nodes, /*migration=*/false, 2, 96, table);
    const uint64_t b = ReplayHash(nodes, /*migration=*/false, 3, 96, table);
    EXPECT_EQ(a, b) << "nodes=" << nodes;
  }
}

TEST(ClusterTest, DeterministicReplayIsStableWithMigrationOn) {
  // Rebalance points are count-driven, so replays that migrate buckets
  // mid-stream still hash identically.
  const Relation<Tuple8> table = SmallTable(2048, 22);
  const uint64_t a = ReplayHash(4, /*migration=*/true, 2, 96, table);
  const uint64_t b = ReplayHash(4, /*migration=*/true, 4, 96, table);
  EXPECT_EQ(a, b);
}

// Migration property on a static Zipf workload: after routing a skewed
// stream, one rebalance scan strictly shrinks the node-load imbalance,
// and repeating the stream with migration enabled never ends worse than
// migration off.
TEST(ClusterTest, RebalanceShrinksImbalanceOnStaticZipf) {
  const Relation<Tuple8> table = SmallTable(1024, 31);
  ClusterConfig config;
  config.nodes = 4;
  config.shard_buckets = 32;
  config.node.num_workers = 1;
  config.node.policy = svc::PlacementPolicy::kCpuOnly;
  config.node.queue_capacity = 1024;
  Cluster cluster(config);

  ZipfSampler zipf(128, 1.3, 55);
  std::vector<ClusterSubmission> subs;
  for (uint64_t i = 0; i < 200; ++i) {
    svc::PartitionJobSpec spec;
    spec.input = &table;
    spec.request.fanout = 64;
    auto sub = cluster.Submit(zipf.Next(), i % config.nodes, spec);
    ASSERT_TRUE(sub.ok());
    subs.push_back(std::move(sub).ValueUnsafe());
  }
  for (const auto& sub : subs) sub.handle.Wait();

  const double before = cluster.load_imbalance();
  const size_t moved = cluster.Rebalance();
  const double after = cluster.load_imbalance();
  EXPECT_GT(before, 1.05);  // Zipf(1.3) skews the static assignment
  EXPECT_GT(moved, 0u);
  EXPECT_LT(after, before);
  EXPECT_EQ(cluster.migrations(), moved);
  EXPECT_EQ(cluster.shard_map().epoch(), moved);  // one epoch per move
  cluster.Shutdown();
}

}  // namespace
}  // namespace fpart
