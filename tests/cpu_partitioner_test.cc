// Tests for the CPU software partitioners (Section 3): naive (Code 1),
// software-managed buffers (Code 2), parallel execution, non-temporal
// stores, and the Manegold-style multi-pass variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "cpu/multipass.h"
#include "cpu/partitioner.h"
#include "datagen/relation.h"
#include "datagen/workloads.h"

namespace fpart {
namespace {

template <typename T>
Relation<T> MakeRelation(size_t n, uint64_t seed) {
  auto rel = Relation<T>::Allocate(n);
  EXPECT_TRUE(rel.ok());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    T t{};
    TupleTraits<T>::SetKey(&t, rng.Next() & 0x7fffffffu);
    SetPayloadId(&t, i);
    (*rel)[i] = t;
  }
  return std::move(*rel);
}

// Verify output against a reference computation.
template <typename T>
void ExpectCorrect(const CpuRunResult<T>& run, const PartitionFn& fn,
                   const T* tuples, size_t n) {
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> expected(
      fn.fanout());
  for (size_t i = 0; i < n; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    expected[p].emplace_back(tuples[i].key, GetPayloadId(tuples[i]));
  }
  uint64_t total = 0;
  for (uint32_t p = 0; p < fn.fanout(); ++p) {
    std::sort(expected[p].begin(), expected[p].end());
    ASSERT_EQ(run.output.part(p).num_tuples, expected[p].size()) << p;
    ASSERT_EQ(run.histogram[p], expected[p].size()) << p;
    const T* data = run.output.partition_data(p);
    std::vector<std::pair<uint64_t, uint64_t>> actual;
    for (size_t i = 0; i < run.output.part(p).num_tuples; ++i) {
      actual.emplace_back(data[i].key, GetPayloadId(data[i]));
    }
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected[p]) << "partition " << p;
    total += expected[p].size();
  }
  EXPECT_EQ(total, n);
}

struct CpuParam {
  bool use_buffers;
  bool non_temporal;
  size_t threads;
  HashMethod hash;
};

class CpuSweepTest : public ::testing::TestWithParam<CpuParam> {};

TEST_P(CpuSweepTest, MatchesReference) {
  const CpuParam param = GetParam();
  CpuPartitionerConfig config;
  config.fanout = 128;
  config.hash = param.hash;
  config.num_threads = param.threads;
  config.use_buffers = param.use_buffers;
  config.non_temporal = param.non_temporal;
  auto rel = MakeRelation<Tuple8>(30000, 17);
  auto run = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(param.hash, config.fanout);
  ExpectCorrect(*run, fn, rel.data(), rel.size());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CpuSweepTest,
    ::testing::Values(CpuParam{false, false, 1, HashMethod::kRadix},
                      CpuParam{true, false, 1, HashMethod::kRadix},
                      CpuParam{true, true, 1, HashMethod::kRadix},
                      CpuParam{true, true, 1, HashMethod::kMurmur},
                      CpuParam{true, true, 4, HashMethod::kRadix},
                      CpuParam{true, true, 4, HashMethod::kMurmur},
                      CpuParam{false, false, 4, HashMethod::kMurmur},
                      CpuParam{true, true, 3, HashMethod::kCrc32}),
    [](const auto& info) {
      return std::string(info.param.use_buffers ? "swwc" : "naive") +
             (info.param.non_temporal ? "_nt" : "") + "_t" +
             std::to_string(info.param.threads) + "_" +
             HashMethodName(info.param.hash);
    });

template <typename T>
class CpuWidthTest : public ::testing::Test {};
using AllWidths = ::testing::Types<Tuple8, Tuple16, Tuple32, Tuple64>;
TYPED_TEST_SUITE(CpuWidthTest, AllWidths);

TYPED_TEST(CpuWidthTest, AllTupleWidths) {
  CpuPartitionerConfig config;
  config.fanout = 64;
  config.num_threads = 2;
  auto rel = MakeRelation<TypeParam>(8000, 29);
  auto run = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectCorrect(*run, fn, rel.data(), rel.size());
}

TEST(CpuPartitionerTest, EmptyInput) {
  CpuPartitionerConfig config;
  config.fanout = 16;
  auto run = CpuPartition<Tuple8>(config, nullptr, 0);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->output.total_tuples(), 0u);
}

TEST(CpuPartitionerTest, RejectsNonPowerOfTwoFanout) {
  CpuPartitionerConfig config;
  config.fanout = 77;
  auto rel = MakeRelation<Tuple8>(64, 3);
  EXPECT_FALSE(CpuPartition(config, rel.data(), rel.size()).ok());
}

TEST(CpuPartitionerTest, ThreadsProduceSamePartitionsAsSingle) {
  auto rel = MakeRelation<Tuple8>(50000, 41);
  CpuPartitionerConfig config;
  config.fanout = 256;
  config.num_threads = 1;
  auto single = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(single.ok());
  config.num_threads = 6;
  auto multi = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(multi.ok());
  for (uint32_t p = 0; p < config.fanout; ++p) {
    ASSERT_EQ(single->histogram[p], multi->histogram[p]);
    // Multisets per partition must agree (order may differ).
    std::vector<uint64_t> a, b;
    for (size_t i = 0; i < single->output.part(p).num_tuples; ++i) {
      a.push_back(single->output.partition_data(p)[i].key);
      b.push_back(multi->output.partition_data(p)[i].key);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << p;
  }
}

TEST(CpuPartitionerTest, SharedPoolIsReusable) {
  ThreadPool pool(4);
  CpuPartitionerConfig config;
  config.fanout = 64;
  config.num_threads = 4;
  config.pool = &pool;
  auto rel = MakeRelation<Tuple8>(10000, 47);
  for (int round = 0; round < 3; ++round) {
    auto run = CpuPartition(config, rel.data(), rel.size());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->output.total_tuples(), rel.size());
  }
}

TEST(CpuPartitionerTest, PartitionsAreCacheLineAligned) {
  CpuPartitionerConfig config;
  config.fanout = 32;
  auto rel = MakeRelation<Tuple8>(5000, 53);
  auto run = CpuPartition(config, rel.data(), rel.size());
  ASSERT_TRUE(run.ok());
  for (uint32_t p = 0; p < config.fanout; ++p) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(run->output.partition_data(p)) %
                  kCacheLineSize,
              0u);
  }
}

// --- Multi-pass partitioning.
class MultipassTest : public ::testing::TestWithParam<int> {};

TEST_P(MultipassTest, EquivalentToSinglePass) {
  const int pass1_bits = GetParam();
  auto rel = MakeRelation<Tuple8>(40000, 61);
  CpuPartitionerConfig config;
  config.fanout = 256;  // 8 bits total
  config.num_threads = 2;
  auto run = MultipassPartition(config, pass1_bits, rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectCorrect(*run, fn, rel.data(), rel.size());
}

INSTANTIATE_TEST_SUITE_P(Pass1Bits, MultipassTest, ::testing::Values(1, 3, 4,
                                                                     7, 8));

TEST(MultipassTest, MurmurHashingAlsoDecomposes) {
  auto rel = MakeRelation<Tuple8>(20000, 67);
  CpuPartitionerConfig config;
  config.fanout = 128;
  config.hash = HashMethod::kMurmur;
  auto run = MultipassPartition(config, 3, rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectCorrect(*run, fn, rel.data(), rel.size());
}

TEST(MultipassTest, RejectsInvalidBits) {
  auto rel = MakeRelation<Tuple8>(100, 3);
  CpuPartitionerConfig config;
  config.fanout = 16;
  EXPECT_FALSE(MultipassPartition(config, 0, rel.data(), rel.size()).ok());
  EXPECT_FALSE(MultipassPartition(config, 5, rel.data(), rel.size()).ok());
}

}  // namespace
}  // namespace fpart
