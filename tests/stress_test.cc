// Robustness and determinism stress tests: concurrency hammering on the
// thread pool, randomized-operation property checks on the simulation
// primitives, and golden values pinning cross-platform determinism of the
// generators.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/distribution.h"
#include "datagen/zipf.h"
#include "sim/bram.h"
#include "sim/fifo.h"

namespace fpart {
namespace {

TEST(ThreadPoolStressTest, ManyWavesOfTasks) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i + 1); });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(sum.load(), 50ull * 64 * 65 / 2);
}

TEST(ThreadPoolStressTest, ConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &count] {
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&count] { count.fetch_add(1); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPoolStressTest, NestedParallelForWaves) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> hits{0};
    pool.ParallelFor(8, [&hits](size_t) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 8);
  }
}

TEST(FifoPropertyTest, RandomOpsMatchReferenceDeque) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    Fifo<int> fifo(1 + rng.Below(16));
    std::deque<int> reference;
    int next = 0;
    for (int op = 0; op < 2000; ++op) {
      if (rng.Below(2) == 0) {
        bool pushed = fifo.Push(next);
        if (reference.size() < fifo.capacity()) {
          ASSERT_TRUE(pushed);
          reference.push_back(next);
        } else {
          ASSERT_FALSE(pushed);
        }
        ++next;
      } else {
        auto popped = fifo.Pop();
        if (reference.empty()) {
          ASSERT_FALSE(popped.has_value());
        } else {
          ASSERT_TRUE(popped.has_value());
          ASSERT_EQ(*popped, reference.front());
          reference.pop_front();
        }
      }
      ASSERT_EQ(fifo.size(), reference.size());
      ASSERT_EQ(fifo.empty(), reference.empty());
    }
  }
}

TEST(BramPropertyTest, DeliveriesAreOrderedAndLatencyExact) {
  // Random interleaving of reads, writes and idle cycles: every delivery
  // must arrive exactly `latency` ticks after its issue, in issue order,
  // with the value as of the issue cycle.
  Rng rng(7);
  for (int latency : {1, 2, 3}) {
    Bram<int> bram(32, latency);
    std::deque<std::pair<int, int>> expected;  // (due_tick, value)
    std::vector<int> shadow(32, 0);
    int tick = 0;
    for (int op = 0; op < 3000; ++op) {
      // Writes land immediately.
      if (rng.Below(3) == 0) {
        size_t addr = rng.Below(32);
        int value = static_cast<int>(rng.Below(1 << 20));
        bram.Write(addr, value);
        shadow[addr] = value;
      }
      // At most one read issue per cycle (hardware port limit).
      bool issued = rng.Below(2) == 0;
      size_t addr = rng.Below(32);
      if (issued) {
        bram.IssueRead(addr);
        expected.emplace_back(tick + latency, shadow[addr]);
      }
      bram.Tick();
      ++tick;
      if (!expected.empty() && expected.front().first <= tick) {
        ASSERT_TRUE(bram.read_ready()) << "tick " << tick;
        ASSERT_EQ(bram.read_data(), expected.front().second);
        expected.pop_front();
      } else {
        ASSERT_FALSE(bram.read_ready());
      }
    }
  }
}

// Golden values: the deterministic generators must produce identical
// streams on every platform/build (benchmark comparability).
TEST(GoldenTest, RngStream) {
  Rng rng(12345);
  EXPECT_EQ(rng.Next(), 13720838825685603483ull);
  EXPECT_EQ(rng.Next(), 2398916695208396998ull);
  rng = Rng(12345);
  uint64_t sum = 0;
  for (int i = 0; i < 1000; ++i) sum += rng.Next();
  EXPECT_EQ(sum, 16100590852412677571ull);
}

TEST(GoldenTest, GridSequenceChecksum) {
  KeyGenerator gen(KeyDistribution::kGrid);
  uint64_t sum = 0;
  for (int i = 0; i < 100000; ++i) sum += gen.Next();
  KeyGenerator gen2(KeyDistribution::kGrid);
  uint64_t sum2 = 0;
  for (int i = 0; i < 100000; ++i) sum2 += gen2.Next();
  EXPECT_EQ(sum, sum2);
  EXPECT_GT(sum, 0u);
}

TEST(GoldenTest, ZipfDeterministicAcrossInstances) {
  ZipfSampler a(100000, 1.0, 99), b(100000, 1.0, 99);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace fpart
