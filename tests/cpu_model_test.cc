// Tests of the calibrated Xeon baseline model (Figures 4, 10, 11 shapes).
#include <gtest/gtest.h>

#include "model/cpu_model.h"

namespace fpart {
namespace {

TEST(CpuModelTest, Figure4Anchors) {
  // Single-thread: radix ≈ 150, hash ≈ 75 Mtuples/s.
  EXPECT_NEAR(CpuCostModel::PartitionRateTuplesPerSec(1, HashMethod::kRadix),
              150e6, 1e3);
  EXPECT_NEAR(CpuCostModel::PartitionRateTuplesPerSec(1, HashMethod::kMurmur),
              75e6, 1e3);
  // 10 threads: both memory bound at ≈ 506.
  EXPECT_NEAR(CpuCostModel::PartitionRateTuplesPerSec(10, HashMethod::kRadix),
              506e6, 1e3);
  EXPECT_NEAR(
      CpuCostModel::PartitionRateTuplesPerSec(10, HashMethod::kMurmur),
      506e6, 1e3);
}

TEST(CpuModelTest, HashCatchesUpWithThreads) {
  // Figure 4's crossover: the hash/radix gap closes as threads increase.
  double gap1 =
      CpuCostModel::PartitionRateTuplesPerSec(1, HashMethod::kRadix) /
      CpuCostModel::PartitionRateTuplesPerSec(1, HashMethod::kMurmur);
  double gap10 =
      CpuCostModel::PartitionRateTuplesPerSec(10, HashMethod::kRadix) /
      CpuCostModel::PartitionRateTuplesPerSec(10, HashMethod::kMurmur);
  EXPECT_NEAR(gap1, 2.0, 0.01);
  EXPECT_NEAR(gap10, 1.0, 0.01);
}

TEST(CpuModelTest, ScalingIsMonotoneAndBounded) {
  double prev = 0;
  for (size_t t = 1; t <= 16; ++t) {
    double rate = CpuCostModel::PartitionRateTuplesPerSec(t,
                                                          HashMethod::kRadix);
    EXPECT_GE(rate, prev);
    EXPECT_LE(rate, CpuCostModel::kMemoryBoundRate);
    prev = rate;
  }
}

TEST(CpuModelTest, CachePenaltyShape) {
  // 8192 partitions of a 128e6-tuple relation: 125 KB blocks — no penalty.
  EXPECT_DOUBLE_EQ(CpuCostModel::CachePenalty(128000000, 8192), 1.0);
  // 256 partitions: 4 MB blocks — five doublings over the 128 KB budget.
  double p256 = CpuCostModel::CachePenalty(128000000, 256);
  EXPECT_GT(p256, 1.5);
  EXPECT_LT(p256, 1.8);
  // Monotone in block size.
  EXPECT_GT(CpuCostModel::CachePenalty(128000000, 256),
            CpuCostModel::CachePenalty(128000000, 1024));
}

TEST(CpuModelTest, Figure10bJoinTimeAnchor) {
  // 10-thread workload A at 8192 partitions: the paper's Figure 10b total
  // is ≈ 0.85 s (partitioning ≈ 0.5 s + build+probe ≈ 0.35 s).
  double seconds = CpuCostModel::JoinSeconds(128000000, 128000000, 8192, 10,
                                             HashMethod::kRadix);
  EXPECT_GT(seconds, 0.7);
  EXPECT_LT(seconds, 1.0);
}

TEST(CpuModelTest, BuildProbeThreadScaling) {
  double t1 = CpuCostModel::BuildProbeSeconds(256000000, 128000000, 8192, 1);
  double t10 =
      CpuCostModel::BuildProbeSeconds(256000000, 128000000, 8192, 10);
  EXPECT_GT(t1 / t10, 4.0);  // saturates at 5x (750/150)
  EXPECT_LT(t1 / t10, 5.5);
}

}  // namespace
}  // namespace fpart
