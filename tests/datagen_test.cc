// Unit tests for src/datagen: tuples, relations, key distributions, Zipf,
// Table 4 workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "datagen/distribution.h"
#include "datagen/partitioned_output.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"

namespace fpart {
namespace {

TEST(TupleTest, WidthsAndTuplesPerLine) {
  EXPECT_EQ(TupleTraits<Tuple8>::kTuplesPerCacheLine, 8);
  EXPECT_EQ(TupleTraits<Tuple16>::kTuplesPerCacheLine, 4);
  EXPECT_EQ(TupleTraits<Tuple32>::kTuplesPerCacheLine, 2);
  EXPECT_EQ(TupleTraits<Tuple64>::kTuplesPerCacheLine, 1);
}

TEST(TupleTest, DummyRoundTrip) {
  auto d8 = MakeDummyTuple<Tuple8>();
  auto d64 = MakeDummyTuple<Tuple64>();
  EXPECT_TRUE(IsDummy(d8));
  EXPECT_TRUE(IsDummy(d64));
  Tuple8 real{42, 0};
  EXPECT_FALSE(IsDummy(real));
}

TEST(TupleTest, PayloadIdAllWidths) {
  Tuple8 t8{};
  SetPayloadId(&t8, 123);
  EXPECT_EQ(GetPayloadId(t8), 123u);
  Tuple32 t32{};
  SetPayloadId(&t32, 1ull << 40);
  EXPECT_EQ(GetPayloadId(t32), 1ull << 40);
  Tuple64 t64{};
  SetPayloadId(&t64, 7);
  EXPECT_EQ(GetPayloadId(t64), 7u);
}

TEST(RelationTest, AllocateAndAccess) {
  auto rel = Relation<Tuple8>::Allocate(100);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(rel->size(), 100u);
  EXPECT_EQ(rel->size_bytes(), 800u);
  (*rel)[5] = Tuple8{17, 21};
  EXPECT_EQ((*rel)[5].key, 17u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(rel->data()) % kCacheLineSize, 0u);
}

TEST(ColumnRelationTest, SeparateArrays) {
  auto rel = ColumnRelation<uint32_t>::Allocate(64);
  ASSERT_TRUE(rel.ok());
  rel->keys()[3] = 99;
  rel->payloads()[3] = 7;
  EXPECT_EQ(rel->keys()[3], 99u);
  EXPECT_EQ(rel->payloads()[3], 7u);
}

TEST(DistributionTest, LinearIsSequentialFromOne) {
  KeyGenerator gen(KeyDistribution::kLinear);
  for (uint32_t i = 1; i <= 1000; ++i) EXPECT_EQ(gen.Next(), i);
}

TEST(DistributionTest, RandomIsSeededDeterministic) {
  KeyGenerator a(KeyDistribution::kRandom, 5);
  KeyGenerator b(KeyDistribution::kRandom, 5);
  KeyGenerator c(KeyDistribution::kRandom, 6);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint32_t ka = a.Next();
    EXPECT_EQ(ka, b.Next());
    any_diff |= (ka != c.Next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(DistributionTest, GridBytesStayIn1To128) {
  KeyGenerator gen(KeyDistribution::kGrid);
  for (int i = 0; i < 200000; ++i) {
    uint32_t k = gen.Next();
    for (int b = 0; b < 4; ++b) {
      uint8_t byte = (k >> (8 * b)) & 0xff;
      ASSERT_GE(byte, 1) << "key " << k;
      ASSERT_LE(byte, 128) << "key " << k;
    }
  }
}

TEST(DistributionTest, GridEnumerationStartsCorrectly) {
  // First keys: 0x01010101, 0x01010102, ..., then carry at 128.
  KeyGenerator gen(KeyDistribution::kGrid);
  EXPECT_EQ(gen.Next(), 0x01010101u);
  EXPECT_EQ(gen.Next(), 0x01010102u);
  for (int i = 0; i < 125; ++i) gen.Next();
  EXPECT_EQ(gen.Next(), 0x01010180u);  // byte reaches 128
  EXPECT_EQ(gen.Next(), 0x01010201u);  // carry: LSB resets to 1
}

TEST(DistributionTest, ReverseGridIncrementsMsbFirst) {
  KeyGenerator gen(KeyDistribution::kReverseGrid);
  EXPECT_EQ(gen.Next(), 0x01010101u);
  EXPECT_EQ(gen.Next(), 0x02010101u);
  EXPECT_EQ(gen.Next(), 0x03010101u);
}

TEST(DistributionTest, GridKeysAreUnique) {
  KeyGenerator gen(KeyDistribution::kGrid);
  std::unordered_set<uint32_t> seen;
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(seen.insert(gen.Next()).second);
}

TEST(DistributionTest, ReverseGridKeysAreUnique) {
  KeyGenerator gen(KeyDistribution::kReverseGrid);
  std::unordered_set<uint32_t> seen;
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(seen.insert(gen.Next()).second);
}

TEST(DistributionTest, Names) {
  EXPECT_STREQ(KeyDistributionName(KeyDistribution::kLinear), "linear");
  EXPECT_STREQ(KeyDistributionName(KeyDistribution::kReverseGrid), "rev-grid");
}

TEST(ZipfTest, UniformWhenZeroExponent) {
  ZipfSampler zipf(100, 0.0, 3);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  for (int r = 1; r <= 100; ++r) {
    EXPECT_NEAR(counts[r], 1000, 250) << "rank " << r;
  }
}

TEST(ZipfTest, RanksStayInRange) {
  for (double z : {0.25, 0.75, 1.0, 1.5}) {
    ZipfSampler zipf(1000, z, 11);
    for (int i = 0; i < 20000; ++i) {
      uint64_t r = zipf.Next();
      ASSERT_GE(r, 1u);
      ASSERT_LE(r, 1000u);
    }
  }
}

TEST(ZipfTest, FrequencyFollowsPowerLaw) {
  // With exponent z, count(rank 1)/count(rank 2) ≈ 2^z.
  ZipfSampler zipf(10000, 1.0, 17);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 400000; ++i) ++counts[zipf.Next()];
  double ratio12 = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio12, 2.0, 0.35);
  double ratio14 = static_cast<double>(counts[1]) / counts[4];
  EXPECT_NEAR(ratio14, 4.0, 0.8);
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  auto top_share = [](double z) {
    ZipfSampler zipf(100000, z, 23);
    int top = 0;
    const int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      if (zipf.Next() <= 10) ++top;
    }
    return static_cast<double>(top) / kDraws;
  };
  double s025 = top_share(0.25);
  double s100 = top_share(1.0);
  double s175 = top_share(1.75);
  EXPECT_LT(s025, s100);
  EXPECT_LT(s100, s175);
  EXPECT_GT(s175, 0.5);  // heavy skew: top-10 ranks dominate
}

TEST(FeistelTest, IsInjective) {
  std::unordered_set<uint32_t> seen;
  for (uint32_t i = 0; i < 200000; ++i) {
    EXPECT_TRUE(seen.insert(Feistel32(i, 99)).second) << i;
  }
}

TEST(FeistelTest, SeedChangesPermutation) {
  int diff = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    if (Feistel32(i, 1) != Feistel32(i, 2)) ++diff;
  }
  EXPECT_GT(diff, 990);
}

TEST(WorkloadTest, SpecsMatchTable4) {
  auto a = GetWorkloadSpec(WorkloadId::kA);
  EXPECT_EQ(a.num_r, 128000000u);
  EXPECT_EQ(a.num_s, 128000000u);
  EXPECT_EQ(a.dist, KeyDistribution::kLinear);
  auto b = GetWorkloadSpec(WorkloadId::kB);
  EXPECT_EQ(b.num_r, 16u << 20);
  EXPECT_EQ(b.num_s, 256u << 20);
  auto e = GetWorkloadSpec(WorkloadId::kE);
  EXPECT_EQ(e.dist, KeyDistribution::kReverseGrid);
}

TEST(WorkloadTest, ScaleShrinksSizes) {
  auto a = GetWorkloadSpec(WorkloadId::kA, 1.0 / 128);
  EXPECT_EQ(a.num_r, 1000000u);
}

TEST(WorkloadTest, UniqueRelationHasUniqueKeys) {
  for (KeyDistribution d :
       {KeyDistribution::kLinear, KeyDistribution::kRandom,
        KeyDistribution::kGrid, KeyDistribution::kReverseGrid}) {
    auto rel = GenerateUniqueRelation(50000, d, 3);
    ASSERT_TRUE(rel.ok());
    std::unordered_set<uint32_t> keys;
    for (const auto& t : *rel) {
      EXPECT_TRUE(keys.insert(t.key).second)
          << KeyDistributionName(d) << " key " << t.key;
      EXPECT_NE(t.key, static_cast<uint32_t>(kDummyKey));
    }
  }
}

TEST(WorkloadTest, LinearRelationIsShuffled) {
  auto rel = GenerateUniqueRelation(10000, KeyDistribution::kLinear, 3);
  ASSERT_TRUE(rel.ok());
  int in_place = 0;
  for (size_t i = 0; i < rel->size(); ++i) {
    if ((*rel)[i].key == i + 1) ++in_place;
  }
  EXPECT_LT(in_place, 100);  // a shuffled permutation has few fixed points
}

TEST(WorkloadTest, SKeysAllReferenceR) {
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kC, 1e-4);  // 12.8k tuples
  auto input = GenerateWorkload(spec, 5);
  ASSERT_TRUE(input.ok());
  std::unordered_set<uint32_t> r_keys;
  for (const auto& t : input->r) r_keys.insert(t.key);
  for (const auto& t : input->s) {
    ASSERT_TRUE(r_keys.count(t.key)) << t.key;
  }
}

TEST(WorkloadTest, ZipfWorkloadSkewsSKeys) {
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 1e-4);
  spec.zipf = 1.5;
  auto input = GenerateWorkload(spec, 5);
  ASSERT_TRUE(input.ok());
  std::map<uint32_t, int> counts;
  for (const auto& t : input->s) ++counts[t.key];
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Under heavy Zipf, one key dominates far beyond the uniform share of 1.
  EXPECT_GT(max_count, static_cast<int>(input->s.size()) / 20);
}

TEST(WorkloadTest, RejectsEmptyWorkload) {
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 1.0);
  spec.num_r = 0;
  EXPECT_FALSE(GenerateWorkload(spec).ok());
}

TEST(PartitionedOutputTest, LayoutIsContiguous) {
  auto out = PartitionedOutput<Tuple8>::Allocate({2, 0, 3});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_partitions(), 3u);
  EXPECT_EQ(out->part(0).base_cl, 0u);
  EXPECT_EQ(out->part(1).base_cl, 2u);
  EXPECT_EQ(out->part(2).base_cl, 2u);
  EXPECT_EQ(out->total_cls(), 5u);
}

TEST(PartitionedOutputTest, SlotsFollowWrittenLines) {
  auto out = PartitionedOutput<Tuple16>::Allocate({4});
  ASSERT_TRUE(out.ok());
  out->part(0).written_cls = 3;
  EXPECT_EQ(out->partition_slots(0), 12u);  // 3 lines × 4 tuples
}

}  // namespace
}  // namespace fpart
