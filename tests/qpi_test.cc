// Unit tests for the platform models: Figure 2 bandwidth curves, the QPI
// token-bucket link, the FPGA page table, the shared-memory pool, and the
// Table 1 coherence model.
#include <gtest/gtest.h>

#include <cstring>

#include "qpi/bandwidth_model.h"
#include "qpi/coherence.h"
#include "qpi/page_table.h"
#include "qpi/qpi_link.h"
#include "qpi/shared_memory.h"

namespace fpart {
namespace {

TEST(BandwidthModelTest, Section48LookupsReproduce) {
  // The calibration anchors of the cost model validation (Section 4.8).
  EXPECT_NEAR(QpiBandwidthForRatio(2.0), 7.05, 0.05);
  EXPECT_NEAR(QpiBandwidthForRatio(1.0), 6.97, 0.05);
  EXPECT_NEAR(QpiBandwidthForRatio(0.5), 5.94, 0.05);
}

TEST(BandwidthModelTest, CpuHasMoreBandwidthThanFpga) {
  // The paper: the FPGA has ~3x less memory bandwidth than the CPU.
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    EXPECT_GT(MemoryBandwidthGBs(MemoryAgent::kCpu, Interference::kAlone, f),
              MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone, f));
  }
  EXPECT_GT(MemoryBandwidthGBs(MemoryAgent::kCpu, Interference::kAlone, 1.0) /
                MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone,
                                   1.0),
            3.0);
}

TEST(BandwidthModelTest, InterferenceReducesBandwidth) {
  for (double f = 0.0; f <= 1.0; f += 0.25) {
    for (MemoryAgent agent : {MemoryAgent::kCpu, MemoryAgent::kFpga}) {
      EXPECT_LT(MemoryBandwidthGBs(agent, Interference::kInterfered, f),
                MemoryBandwidthGBs(agent, Interference::kAlone, f));
    }
  }
}

TEST(BandwidthModelTest, CpuBandwidthGrowsWithReadShare) {
  // Figure 2: the CPU curve rises monotonically toward pure sequential
  // reads.
  double prev = 0;
  for (double f = 0.0; f <= 1.001; f += 0.1) {
    double b = MemoryBandwidthGBs(MemoryAgent::kCpu, Interference::kAlone, f);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BandwidthModelTest, ClampsOutOfRangeFractions) {
  EXPECT_DOUBLE_EQ(
      MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone, -0.5),
      MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone, 0.0));
  EXPECT_DOUBLE_EQ(
      MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone, 2.0),
      MemoryBandwidthGBs(MemoryAgent::kFpga, Interference::kAlone, 1.0));
}

TEST(QpiLinkTest, FixedLinkGrantsAtConfiguredRate) {
  // 12.8 GB/s at 200 MHz = exactly 1 cache line per cycle.
  QpiLink link = QpiLink::Fixed(200e6, 12.8);
  int grants = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    link.Tick();
    if (link.TryWrite()) ++grants;
  }
  EXPECT_NEAR(grants, 1000, 5);
}

TEST(QpiLinkTest, ThrottlesBelowRate) {
  // 6.4 GB/s = 0.5 lines/cycle: about half the requests are granted.
  QpiLink link = QpiLink::Fixed(200e6, 6.4);
  int grants = 0;
  for (int cycle = 0; cycle < 10000; ++cycle) {
    link.Tick();
    if (link.TryRead()) ++grants;
  }
  EXPECT_NEAR(grants, 5000, 60);
}

TEST(QpiLinkTest, AccountsBytes) {
  QpiLink link = QpiLink::Fixed(200e6, 12.8);
  link.Tick();
  ASSERT_TRUE(link.TryRead());
  link.Tick();
  ASSERT_TRUE(link.TryWrite());
  EXPECT_EQ(link.reads_granted(), 1u);
  EXPECT_EQ(link.writes_granted(), 1u);
  EXPECT_EQ(link.bytes(), 128u);
}

TEST(QpiLinkTest, AdaptiveRateFollowsReadMix) {
  // A pure-read workload on the Xeon+FPGA curve should converge to the
  // read-heavy end of Figure 2 (~6.5 GB/s ⇒ ~0.51 lines/cycle).
  QpiLink link = QpiLink::XeonFpga();
  for (int cycle = 0; cycle < 50000; ++cycle) {
    link.Tick();
    link.TryRead();
  }
  double gbs = link.current_rate_lines_per_cycle() * 64 * 200e6 / 1e9;
  EXPECT_NEAR(gbs, 6.5, 0.1);
}

TEST(PageTableTest, MapAndTranslate) {
  PageTable pt(16);
  ASSERT_TRUE(pt.Map(0, 3).ok());
  ASSERT_TRUE(pt.Map(1, 5).ok());
  auto pa = pt.Translate(kPageSizeBytes + 100);
  ASSERT_TRUE(pa.ok());
  EXPECT_EQ(*pa, 5 * kPageSizeBytes + 100);
  EXPECT_EQ(pt.mapped_pages(), 2u);
}

TEST(PageTableTest, UnmappedAddressFails) {
  PageTable pt(16);
  ASSERT_TRUE(pt.Map(0, 3).ok());
  EXPECT_FALSE(pt.Translate(2 * kPageSizeBytes).ok());
}

TEST(PageTableTest, RejectsOutOfRangeVpn) {
  PageTable pt(4);
  EXPECT_FALSE(pt.Map(4, 0).ok());
}

TEST(PageTableTest, PipelinedTranslationTakesTwoCycles) {
  PageTable pt(16);
  ASSERT_TRUE(pt.Map(2, 9).ok());
  pt.IssueTranslate(2 * kPageSizeBytes + 64);
  pt.Tick();
  EXPECT_FALSE(pt.translation_ready());
  pt.Tick();
  ASSERT_TRUE(pt.translation_ready());
  EXPECT_EQ(pt.translated_addr(), 9 * kPageSizeBytes + 64);
}

TEST(SharedMemoryTest, FpgaAccessGoesThroughTranslation) {
  PageTable pt;
  auto pool = SharedMemoryPool::Allocate(2, &pt);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->num_pages(), 2u);
  EXPECT_EQ(pt.mapped_pages(), 2u);
  // Write via the FPGA path, then verify against a direct translation.
  uint64_t va = kPageSizeBytes + 4096;
  auto w = pool->FpgaWrite(va);
  ASSERT_TRUE(w.ok());
  std::memset(*w, 0xAB, 64);
  auto r = pool->FpgaRead(va);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0], 0xAB);
  // The model scatters physical pages, so identity translation would fail.
  auto pa = pt.Translate(va);
  ASSERT_TRUE(pa.ok());
  EXPECT_NE(*pa, va);
}

TEST(SharedMemoryTest, UnmappedFpgaAccessFails) {
  PageTable pt;
  auto pool = SharedMemoryPool::Allocate(1, &pt);
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE(pool->FpgaRead(5 * kPageSizeBytes).ok());
}

TEST(SharedMemoryTest, RejectsZeroPages) {
  PageTable pt;
  EXPECT_FALSE(SharedMemoryPool::Allocate(0, &pt).ok());
}

TEST(CoherenceTest, Table1Factors) {
  // CPU-written memory reads at full speed.
  EXPECT_DOUBLE_EQ(CoherenceModel::SequentialReadFactor(LastWriter::kCpu), 1.0);
  EXPECT_DOUBLE_EQ(CoherenceModel::RandomReadFactor(LastWriter::kCpu), 1.0);
  // FPGA-written memory pays the snoop penalty (Table 1 ratios).
  EXPECT_NEAR(CoherenceModel::SequentialReadFactor(LastWriter::kFpga),
              0.1533 / 0.1381, 1e-9);
  EXPECT_NEAR(CoherenceModel::RandomReadFactor(LastWriter::kFpga),
              2.4876 / 1.1537, 1e-9);
}

TEST(CoherenceTest, ProbePenaltyExceedsBuildPenalty) {
  // Build scans sequentially; probe chases chains randomly (Section 2.2).
  EXPECT_GT(CoherenceModel::ProbeFactor(LastWriter::kFpga),
            CoherenceModel::BuildFactor(LastWriter::kFpga));
  EXPECT_GT(CoherenceModel::BuildFactor(LastWriter::kFpga), 1.0);
}

}  // namespace
}  // namespace fpart
