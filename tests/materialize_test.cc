// Tests of the materializing join and VRID late materialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "core/fpart.h"
#include "join/materialize.h"

namespace fpart {
namespace {

// Partition both relations on the CPU and materialize the join.
MaterializedJoin RunMaterialized(const Relation<Tuple8>& r,
                                 const Relation<Tuple8>& s,
                                 size_t threads = 1) {
  CpuPartitionerConfig config;
  config.fanout = 32;
  config.hash = HashMethod::kMurmur;
  auto pr = CpuPartition(config, r.data(), r.size());
  auto ps = CpuPartition(config, s.data(), s.size());
  EXPECT_TRUE(pr.ok());
  EXPECT_TRUE(ps.ok());
  return MaterializeJoin(pr->output, ps->output, threads,
                         static_cast<const Tuple8*>(nullptr));
}

using RowSet = std::multiset<std::tuple<uint32_t, uint64_t, uint64_t>>;

RowSet ToSet(const std::vector<JoinedRow>& rows) {
  RowSet set;
  for (const auto& row : rows) {
    set.emplace(row.key, row.r_payload, row.s_payload);
  }
  return set;
}

RowSet OracleRows(const Relation<Tuple8>& r, const Relation<Tuple8>& s) {
  RowSet set;
  for (const auto& rt : r) {
    for (const auto& st : s) {
      if (rt.key == st.key) set.emplace(rt.key, rt.payload, st.payload);
    }
  }
  return set;
}

TEST(MaterializeJoinTest, ProducesExactRowSet) {
  auto r = Relation<Tuple8>::Allocate(200);
  auto s = Relation<Tuple8>::Allocate(300);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  Rng rng(3);
  for (auto& t : *r) t = Tuple8{uint32_t(1 + rng.Below(80)), rng.Next32()};
  for (auto& t : *s) t = Tuple8{uint32_t(1 + rng.Below(80)), rng.Next32()};
  MaterializedJoin join = RunMaterialized(*r, *s);
  EXPECT_EQ(ToSet(join.rows), OracleRows(*r, *s));
}

TEST(MaterializeJoinTest, ThreadsProduceSameRows) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 5e-5), 7);
  ASSERT_TRUE(input.ok());
  MaterializedJoin serial = RunMaterialized(input->r, input->s, 1);
  MaterializedJoin parallel = RunMaterialized(input->r, input->s, 4);
  EXPECT_EQ(serial.rows.size(), input->s.size());
  EXPECT_EQ(ToSet(serial.rows), ToSet(parallel.rows));
}

TEST(MaterializeJoinTest, EmptySideYieldsNoRows) {
  auto r = Relation<Tuple8>::Allocate(100);
  auto s = Relation<Tuple8>::Allocate(100);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    (*r)[i] = Tuple8{i + 1, i};
    (*s)[i] = Tuple8{i + 1000, i};  // disjoint
  }
  MaterializedJoin join = RunMaterialized(*r, *s);
  EXPECT_TRUE(join.rows.empty());
}

TEST(MaterializeJoinTest, VridLateMaterialization) {
  // Column-store flow: partition key columns in VRID mode on the FPGA,
  // join, then gather the real payloads through the VRIDs.
  const size_t n = 8192;
  std::vector<uint32_t> r_keys(n), s_keys(n);
  std::vector<uint32_t> r_payloads(n), s_payloads(n);
  Rng rng(9);
  for (size_t i = 0; i < n; ++i) {
    r_keys[i] = static_cast<uint32_t>(i + 1);
    r_payloads[i] = 1000000 + static_cast<uint32_t>(i);
    s_keys[i] = static_cast<uint32_t>(1 + rng.Below(n));
    s_payloads[i] = 2000000 + static_cast<uint32_t>(i);
  }
  // Shuffle R so VRIDs differ from keys.
  Rng shuffle_rng(11);
  for (size_t i = n; i > 1; --i) {
    size_t j = shuffle_rng.Below(i);
    std::swap(r_keys[i - 1], r_keys[j]);
    std::swap(r_payloads[i - 1], r_payloads[j]);
  }

  FpgaPartitionerConfig config;
  config.fanout = 32;
  config.layout = LayoutMode::kVrid;
  config.output_mode = OutputMode::kHist;
  FpgaPartitioner<Tuple8> part(config);
  auto pr = part.PartitionColumn(r_keys.data(), n);
  auto ps = part.PartitionColumn(s_keys.data(), n);
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE(ps.ok());

  MaterializedJoin join = MaterializeJoin(
      pr->output, ps->output, 2, static_cast<const Tuple8*>(nullptr));
  ASSERT_EQ(join.rows.size(), n);  // R keys unique, S ⊆ R

  GatherPayloads(r_payloads.data(), s_payloads.data(), &join);
  EXPECT_GE(join.gather_seconds, 0.0);
  // Every row's payloads must be the originals for its key.
  for (const auto& row : join.rows) {
    // r_payload belongs to the R tuple whose key == row.key.
    // Find it via the r arrays (keys unique).
    size_t idx = 0;
    for (; idx < n; ++idx) {
      if (r_keys[idx] == row.key) break;
    }
    ASSERT_LT(idx, n);
    EXPECT_EQ(row.r_payload, r_payloads[idx]);
    EXPECT_GE(row.s_payload, 2000000u);
  }
}

TEST(MaterializeJoinTest, RowsGroupedByPartitionOrder) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 2e-5), 13);
  ASSERT_TRUE(input.ok());
  CpuPartitionerConfig config;
  config.fanout = 16;
  config.hash = HashMethod::kRadix;
  auto pr = CpuPartition(config, input->r.data(), input->r.size());
  auto ps = CpuPartition(config, input->s.data(), input->s.size());
  ASSERT_TRUE(pr.ok());
  ASSERT_TRUE(ps.ok());
  MaterializedJoin join = MaterializeJoin(pr->output, ps->output, 1,
                                          static_cast<const Tuple8*>(nullptr));
  // With radix partitioning, partition index = key & 15; single-threaded
  // materialization emits rows in partition order.
  uint32_t prev_partition = 0;
  for (const auto& row : join.rows) {
    uint32_t p = row.key & 15;
    EXPECT_GE(p, prev_partition);
    prev_partition = p;
  }
}

}  // namespace
}  // namespace fpart
