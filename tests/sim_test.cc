// Unit tests for the cycle-simulation kernel: Fifo and Bram semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/bram.h"
#include "sim/fifo.h"
#include "sim/stats.h"

namespace fpart {
namespace {

TEST(FifoTest, FifoOrder) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.Push(1));
  EXPECT_TRUE(f.Push(2));
  EXPECT_TRUE(f.Push(3));
  EXPECT_EQ(*f.Pop(), 1);
  EXPECT_EQ(*f.Pop(), 2);
  EXPECT_EQ(*f.Pop(), 3);
  EXPECT_FALSE(f.Pop().has_value());
}

TEST(FifoTest, CapacityAndOverflowTracking) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.Push(1));
  EXPECT_TRUE(f.Push(2));
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.free_slots(), 0u);
  EXPECT_FALSE(f.overflowed());
  EXPECT_FALSE(f.Push(3));  // rejected
  EXPECT_TRUE(f.overflowed());
  EXPECT_EQ(f.size(), 2u);
}

TEST(FifoTest, MaxOccupancyHighWaterMark) {
  Fifo<int> f(8);
  f.Push(1);
  f.Push(2);
  f.Push(3);
  f.Pop();
  f.Pop();
  f.Push(4);
  EXPECT_EQ(f.max_occupancy(), 3u);
}

TEST(FifoTest, FrontPeeksWithoutPopping) {
  Fifo<int> f(2);
  f.Push(9);
  EXPECT_EQ(f.Front(), 9);
  EXPECT_EQ(f.size(), 1u);
}

TEST(BramTest, ReadDeliversAfterLatency) {
  Bram<int> bram(16, 2);
  bram.Write(3, 42);
  bram.IssueRead(3);
  bram.Tick();
  EXPECT_FALSE(bram.read_ready());  // age 1 < latency 2
  bram.Tick();
  ASSERT_TRUE(bram.read_ready());
  EXPECT_EQ(bram.read_data(), 42);
  bram.Tick();
  EXPECT_FALSE(bram.read_ready());  // one-shot delivery
}

TEST(BramTest, ReadCapturesOldData) {
  // The crux of the forwarding problem (Section 4.2): a read in flight does
  // not observe writes issued after it.
  Bram<int> bram(16, 2);
  bram.Write(5, 1);
  bram.IssueRead(5);
  bram.Write(5, 99);  // lands after the read captured its value
  bram.Tick();
  bram.Tick();
  ASSERT_TRUE(bram.read_ready());
  EXPECT_EQ(bram.read_data(), 1);
  EXPECT_EQ(bram.Peek(5), 99);
}

TEST(BramTest, WriteBeforeIssueIsVisible) {
  // ...whereas ordering Write before IssueRead within the same cycle makes
  // the write visible — used by the bank read after the closing tuple.
  Bram<int> bram(16, 1);
  bram.Write(7, 123);
  bram.IssueRead(7);
  bram.Tick();
  ASSERT_TRUE(bram.read_ready());
  EXPECT_EQ(bram.read_data(), 123);
}

TEST(BramTest, PipelinedBackToBackReads) {
  Bram<int> bram(8, 2);
  for (int i = 0; i < 8; ++i) bram.Write(i, 100 + i);
  // Issue one read per cycle; deliveries arrive one per cycle, in order,
  // each 2 cycles after its issue.
  std::vector<int> delivered;
  for (int cycle = 0; cycle < 12; ++cycle) {
    bram.Tick();
    if (bram.read_ready()) delivered.push_back(bram.read_data());
    if (cycle < 8) bram.IssueRead(cycle);
  }
  // Reads issued at cycles 0..7 (after their Tick) deliver at 2..9.
  ASSERT_EQ(delivered.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(delivered[i], 100 + i);
}

TEST(BramTest, CountsAccesses) {
  Bram<int> bram(4, 1);
  bram.Write(0, 1);
  bram.Write(1, 2);
  bram.IssueRead(0);
  EXPECT_EQ(bram.num_writes(), 2u);
  EXPECT_EQ(bram.num_reads(), 1u);
  EXPECT_EQ(bram.in_flight(), 1u);
}

TEST(BramTest, MinimumLatencyIsOne) {
  Bram<int> bram(4, 0);
  EXPECT_EQ(bram.latency(), 1);
}

TEST(CycleStatsTest, SecondsFromCycles) {
  CycleStats stats;
  stats.cycles = 200;
  EXPECT_DOUBLE_EQ(stats.Seconds(200e6), 1e-6);
}

TEST(CycleStatsTest, MergeAccumulates) {
  CycleStats a, b;
  a.cycles = 10;
  a.output_lines = 2;
  b.cycles = 5;
  b.dummy_tuples = 3;
  a.Merge(b);
  EXPECT_EQ(a.cycles, 15u);
  EXPECT_EQ(a.output_lines, 2u);
  EXPECT_EQ(a.dummy_tuples, 3u);
}

}  // namespace
}  // namespace fpart
