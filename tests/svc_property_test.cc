// Property tests of the svc scheduling invariants under randomized job
// streams: weighted-fair service shares (within the ±5% tolerance the
// service promises), starvation freedom under continuous high-priority
// load, intra-class earliest-deadline-first order, strict-arrival replay
// order, and full-stream completion against 1/2/4-device pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "datagen/workloads.h"
#include "svc/fpga_arbiter.h"
#include "svc/job_queue.h"
#include "svc/scheduler.h"

namespace fpart::svc {
namespace {

std::shared_ptr<JobRecord> MakeJob(uint64_t seq, JobClass cls, double cost,
                                   double deadline_key =
                                       std::numeric_limits<double>::infinity()) {
  auto rec = std::make_shared<JobRecord>();
  rec->seq = seq;
  rec->cls = cls;
  rec->wfq_cost = cost;
  rec->deadline_key = deadline_key;
  return rec;
}

// ------------------------------------------------------------- WFQ shares

// While every class stays backlogged, served cost per class must track the
// configured weights within ±5% — the service's headline fairness claim.
TEST(WfqPropertyTest, ContendedSharesTrackWeightsWithinTolerance) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9e37ULL);
    std::array<double, kNumJobClasses> weights;
    for (auto& w : weights) w = 1.0 + rng.NextDouble() * 9.0;

    const size_t kPerClass = 300;
    JobQueue queue(kPerClass * kNumJobClasses, /*strict_seq=*/false, weights);
    uint64_t seq = 0;
    for (size_t i = 0; i < kPerClass; ++i) {
      for (size_t c = 0; c < kNumJobClasses; ++c) {
        ASSERT_TRUE(queue
                        .Push(MakeJob(seq++, static_cast<JobClass>(c),
                                      1.0 + rng.NextDouble() * 99.0))
                        .ok());
      }
    }
    queue.Close();
    while (queue.Pop() != nullptr) {
    }

    double total_contended = 0.0, total_weight = 0.0;
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      total_contended += queue.contended_cost(static_cast<JobClass>(c));
      total_weight += weights[c];
    }
    ASSERT_GT(total_contended, 0.0);
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      const double share =
          queue.contended_cost(static_cast<JobClass>(c)) / total_contended;
      const double want = weights[c] / total_weight;
      EXPECT_NEAR(share, want, 0.05)
          << "seed " << seed << " class " << c << " weight " << weights[c];
    }
  }
}

// --------------------------------------------------------------- starvation

// A single best-effort job must dispatch within a bounded number of pops
// even when interactive jobs arrive continuously — the scenario a naive
// strict-priority queue (or a WFQ that re-stamps waiters against the
// moving virtual clock) starves forever.
TEST(WfqPropertyTest, BestEffortIsNotStarvedByContinuousInteractiveLoad) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0xbe57ULL);
    std::array<double, kNumJobClasses> weights = kDefaultClassWeights;
    weights[0] = 4.0 + rng.NextDouble() * 12.0;  // interactive
    weights[2] = 0.5 + rng.NextDouble();         // best-effort
    JobQueue queue(1024, /*strict_seq=*/false, weights);

    const double be_cost = 1.0 + rng.NextDouble() * 9.0;
    const double ia_cost = 1.0 + rng.NextDouble() * 9.0;
    uint64_t seq = 0;
    ASSERT_TRUE(
        queue.Push(MakeJob(seq++, JobClass::kBestEffort, be_cost)).ok());
    // WFQ bound: the best-effort head finishes at most (be_cost/w_be)
    // virtual units after its stamp, while each interactive pop advances
    // the clock by ia_cost/w_ia — plus one pop of slack for the tie rule.
    const size_t bound = static_cast<size_t>(std::ceil(
                             (be_cost / weights[2]) /
                             (ia_cost / weights[0]))) +
                         2;
    bool popped_best_effort = false;
    for (size_t i = 0; i < bound; ++i) {
      ASSERT_TRUE(
          queue.Push(MakeJob(seq++, JobClass::kInteractive, ia_cost)).ok());
      auto rec = queue.Pop();
      ASSERT_NE(rec, nullptr);
      if (rec->cls == JobClass::kBestEffort) {
        popped_best_effort = true;
        break;
      }
    }
    EXPECT_TRUE(popped_best_effort)
        << "seed " << seed << ": best-effort job starved past its WFQ bound ("
        << bound << " pops)";
  }
}

// ------------------------------------------------------ intra-class order

// Within one class, jobs dispatch earliest-deadline-first with FIFO among
// equal deadlines, no matter how the classes interleave overall.
TEST(WfqPropertyTest, IntraClassOrderIsDeadlineThenFifo) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0xdead1ULL);
    JobQueue queue(1024, /*strict_seq=*/false);
    const size_t kJobs = 240;
    for (uint64_t i = 0; i < kJobs; ++i) {
      // A third of the jobs carry no deadline (+inf key); deadlines repeat
      // across jobs so the FIFO tiebreak is exercised too.
      const double key = rng.NextDouble() < 0.33
                             ? std::numeric_limits<double>::infinity()
                             : 0.001 * static_cast<double>(rng.Below(20));
      queue.Push(MakeJob(i, static_cast<JobClass>(rng.Below(kNumJobClasses)),
                         1.0 + rng.NextDouble() * 49.0, key));
    }
    queue.Close();

    std::array<std::pair<double, uint64_t>, kNumJobClasses> last;
    last.fill({-1.0, 0});
    std::shared_ptr<JobRecord> rec;
    while ((rec = queue.Pop()) != nullptr) {
      const size_t c = static_cast<size_t>(rec->cls);
      const std::pair<double, uint64_t> key{rec->deadline_key, rec->seq};
      EXPECT_TRUE(last[c] < key)
          << "seed " << seed << " class " << c
          << ": deadline order violated at seq " << rec->seq;
      last[c] = key;
    }
  }
}

// ------------------------------------------------------ strict-seq replay

// Deterministic mode ignores classes and weights entirely: pops come back
// in exact arrival-sequence order however the pushes were interleaved.
TEST(WfqPropertyTest, StrictSeqReproducesArrivalOrder) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x5eedULL);
    const size_t kJobs = 200;
    JobQueue queue(kJobs, /*strict_seq=*/true);
    // Push a random permutation of the sequence numbers with random
    // classes and deadlines — none of which may affect the pop order.
    std::vector<uint64_t> order(kJobs);
    for (uint64_t i = 0; i < kJobs; ++i) order[i] = i;
    for (size_t i = kJobs - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Below(i + 1)]);
    }
    for (uint64_t s : order) {
      ASSERT_TRUE(
          queue
              .Push(MakeJob(s, static_cast<JobClass>(rng.Below(kNumJobClasses)),
                            1.0 + rng.NextDouble() * 99.0,
                            rng.NextDouble()))
              .ok());
    }
    queue.Close();
    for (uint64_t want = 0; want < kJobs; ++want) {
      auto rec = queue.Pop();
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->seq, want) << "seed " << seed;
    }
    EXPECT_EQ(queue.Pop(), nullptr);
  }
}

// ----------------------------------------------------- device-pool streams

// End-to-end randomized stream against 1/2/4-device pools: every job
// completes, the pool's grant accounting is consistent, and with several
// devices the grants actually spread beyond one device.
TEST(WfqPropertyTest, RandomStreamsCompleteAgainstAnyPoolSize) {
  auto rel = GenerateRawRelation(1 << 12, KeyDistribution::kRandom, 11);
  ASSERT_TRUE(rel.ok());
  for (size_t devices : {size_t{1}, size_t{2}, size_t{4}}) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      Rng rng(seed * 0xf00dULL + devices);
      SchedulerConfig config;
      config.fpga_devices = devices;
      config.num_workers = 4;
      config.queue_capacity = 256;
      Scheduler scheduler(config);

      std::vector<JobHandle> handles;
      for (int i = 0; i < 60; ++i) {
        PartitionJobSpec spec;
        spec.input = &*rel;
        spec.request.fanout = 64;
        spec.request.output_mode = OutputMode::kHist;
        JobOptions opts;
        opts.pinned = Backend::kFpga;  // keep the pool under pressure
        opts.job_class = static_cast<JobClass>(rng.Below(kNumJobClasses));
        if (rng.NextDouble() < 0.5) {
          opts.deadline_seconds = 0.001 + rng.NextDouble() * 0.02;
        }
        auto h = scheduler.Submit(spec, opts);
        ASSERT_TRUE(h.ok());
        handles.push_back(std::move(h).ValueUnsafe());
      }
      scheduler.Shutdown();

      for (const JobHandle& h : handles) {
        auto out = h.TryGet();
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->state, JobState::kCompleted) << out->status.ToString();
        EXPECT_EQ(out->backend, Backend::kFpga);
      }
      const DevicePool& pool = scheduler.device_pool();
      EXPECT_EQ(pool.grants(), handles.size());
      uint64_t sum = 0;
      size_t devices_used = 0;
      for (size_t i = 0; i < pool.num_devices(); ++i) {
        sum += pool.device_grants(i);
        devices_used += pool.device_grants(i) > 0 ? 1 : 0;
      }
      EXPECT_EQ(sum, pool.grants());
      if (devices > 1) {
        EXPECT_GE(devices_used, 2u)
            << devices << "-device pool never spread its grants";
      }
      EXPECT_NEAR(pool.total_backlog_seconds(), 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace fpart::svc
