// Property tests of the svc scheduling invariants under randomized job
// streams: weighted-fair service shares (within the ±5% tolerance the
// service promises), starvation freedom under continuous high-priority
// load, intra-class earliest-deadline-first order, strict-arrival replay
// order, and full-stream completion against 1/2/4-device pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>
#include <atomic>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "svc/admission.h"
#include "datagen/workloads.h"
#include "svc/fpga_arbiter.h"
#include "svc/job_queue.h"
#include "svc/scheduler.h"

namespace fpart::svc {
namespace {

std::shared_ptr<JobRecord> MakeJob(uint64_t seq, JobClass cls, double cost,
                                   double deadline_key =
                                       std::numeric_limits<double>::infinity()) {
  auto rec = std::make_shared<JobRecord>();
  rec->seq = seq;
  rec->cls = cls;
  rec->wfq_cost = cost;
  rec->deadline_key = deadline_key;
  return rec;
}

// ------------------------------------------------------------- WFQ shares

// While every class stays backlogged, served cost per class must track the
// configured weights within ±5% — the service's headline fairness claim.
TEST(WfqPropertyTest, ContendedSharesTrackWeightsWithinTolerance) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9e37ULL);
    std::array<double, kNumJobClasses> weights;
    for (auto& w : weights) w = 1.0 + rng.NextDouble() * 9.0;

    const size_t kPerClass = 300;
    JobQueue queue(kPerClass * kNumJobClasses, /*strict_seq=*/false, weights);
    uint64_t seq = 0;
    for (size_t i = 0; i < kPerClass; ++i) {
      for (size_t c = 0; c < kNumJobClasses; ++c) {
        ASSERT_TRUE(queue
                        .Push(MakeJob(seq++, static_cast<JobClass>(c),
                                      1.0 + rng.NextDouble() * 99.0))
                        .ok());
      }
    }
    queue.Close();
    while (queue.Pop() != nullptr) {
    }

    double total_contended = 0.0, total_weight = 0.0;
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      total_contended += queue.contended_cost(static_cast<JobClass>(c));
      total_weight += weights[c];
    }
    ASSERT_GT(total_contended, 0.0);
    for (size_t c = 0; c < kNumJobClasses; ++c) {
      const double share =
          queue.contended_cost(static_cast<JobClass>(c)) / total_contended;
      const double want = weights[c] / total_weight;
      EXPECT_NEAR(share, want, 0.05)
          << "seed " << seed << " class " << c << " weight " << weights[c];
    }
  }
}

// --------------------------------------------------------------- starvation

// A single best-effort job must dispatch within a bounded number of pops
// even when interactive jobs arrive continuously — the scenario a naive
// strict-priority queue (or a WFQ that re-stamps waiters against the
// moving virtual clock) starves forever.
TEST(WfqPropertyTest, BestEffortIsNotStarvedByContinuousInteractiveLoad) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0xbe57ULL);
    std::array<double, kNumJobClasses> weights = kDefaultClassWeights;
    weights[0] = 4.0 + rng.NextDouble() * 12.0;  // interactive
    weights[2] = 0.5 + rng.NextDouble();         // best-effort
    JobQueue queue(1024, /*strict_seq=*/false, weights);

    const double be_cost = 1.0 + rng.NextDouble() * 9.0;
    const double ia_cost = 1.0 + rng.NextDouble() * 9.0;
    uint64_t seq = 0;
    ASSERT_TRUE(
        queue.Push(MakeJob(seq++, JobClass::kBestEffort, be_cost)).ok());
    // WFQ bound: the best-effort head finishes at most (be_cost/w_be)
    // virtual units after its stamp, while each interactive pop advances
    // the clock by ia_cost/w_ia — plus one pop of slack for the tie rule.
    const size_t bound = static_cast<size_t>(std::ceil(
                             (be_cost / weights[2]) /
                             (ia_cost / weights[0]))) +
                         2;
    bool popped_best_effort = false;
    for (size_t i = 0; i < bound; ++i) {
      ASSERT_TRUE(
          queue.Push(MakeJob(seq++, JobClass::kInteractive, ia_cost)).ok());
      auto rec = queue.Pop();
      ASSERT_NE(rec, nullptr);
      if (rec->cls == JobClass::kBestEffort) {
        popped_best_effort = true;
        break;
      }
    }
    EXPECT_TRUE(popped_best_effort)
        << "seed " << seed << ": best-effort job starved past its WFQ bound ("
        << bound << " pops)";
  }
}

// ------------------------------------------------------ intra-class order

// Within one class, jobs dispatch earliest-deadline-first with FIFO among
// equal deadlines, no matter how the classes interleave overall.
TEST(WfqPropertyTest, IntraClassOrderIsDeadlineThenFifo) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0xdead1ULL);
    JobQueue queue(1024, /*strict_seq=*/false);
    const size_t kJobs = 240;
    for (uint64_t i = 0; i < kJobs; ++i) {
      // A third of the jobs carry no deadline (+inf key); deadlines repeat
      // across jobs so the FIFO tiebreak is exercised too.
      const double key = rng.NextDouble() < 0.33
                             ? std::numeric_limits<double>::infinity()
                             : 0.001 * static_cast<double>(rng.Below(20));
      queue.Push(MakeJob(i, static_cast<JobClass>(rng.Below(kNumJobClasses)),
                         1.0 + rng.NextDouble() * 49.0, key));
    }
    queue.Close();

    std::array<std::pair<double, uint64_t>, kNumJobClasses> last;
    last.fill({-1.0, 0});
    std::shared_ptr<JobRecord> rec;
    while ((rec = queue.Pop()) != nullptr) {
      const size_t c = static_cast<size_t>(rec->cls);
      const std::pair<double, uint64_t> key{rec->deadline_key, rec->seq};
      EXPECT_TRUE(last[c] < key)
          << "seed " << seed << " class " << c
          << ": deadline order violated at seq " << rec->seq;
      last[c] = key;
    }
  }
}

// ------------------------------------------------------ strict-seq replay

// Deterministic mode ignores classes and weights entirely: pops come back
// in exact arrival-sequence order however the pushes were interleaved.
TEST(WfqPropertyTest, StrictSeqReproducesArrivalOrder) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x5eedULL);
    const size_t kJobs = 200;
    JobQueue queue(kJobs, /*strict_seq=*/true);
    // Push a random permutation of the sequence numbers with random
    // classes and deadlines — none of which may affect the pop order.
    std::vector<uint64_t> order(kJobs);
    for (uint64_t i = 0; i < kJobs; ++i) order[i] = i;
    for (size_t i = kJobs - 1; i > 0; --i) {
      std::swap(order[i], order[rng.Below(i + 1)]);
    }
    for (uint64_t s : order) {
      ASSERT_TRUE(
          queue
              .Push(MakeJob(s, static_cast<JobClass>(rng.Below(kNumJobClasses)),
                            1.0 + rng.NextDouble() * 99.0,
                            rng.NextDouble()))
              .ok());
    }
    queue.Close();
    for (uint64_t want = 0; want < kJobs; ++want) {
      auto rec = queue.Pop();
      ASSERT_NE(rec, nullptr);
      EXPECT_EQ(rec->seq, want) << "seed " << seed;
    }
    EXPECT_EQ(queue.Pop(), nullptr);
  }
}

// ----------------------------------------------------- device-pool streams

// End-to-end randomized stream against 1/2/4-device pools: every job
// completes, the pool's grant accounting is consistent, and with several
// devices the grants actually spread beyond one device.
TEST(WfqPropertyTest, RandomStreamsCompleteAgainstAnyPoolSize) {
  auto rel = GenerateRawRelation(1 << 12, KeyDistribution::kRandom, 11);
  ASSERT_TRUE(rel.ok());
  for (size_t devices : {size_t{1}, size_t{2}, size_t{4}}) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      Rng rng(seed * 0xf00dULL + devices);
      SchedulerConfig config;
      config.fpga_devices = devices;
      config.num_workers = 4;
      config.queue_capacity = 256;
      Scheduler scheduler(config);

      std::vector<JobHandle> handles;
      for (int i = 0; i < 60; ++i) {
        PartitionJobSpec spec;
        spec.input = &*rel;
        spec.request.fanout = 64;
        spec.request.output_mode = OutputMode::kHist;
        JobOptions opts;
        opts.pinned = Backend::kFpga;  // keep the pool under pressure
        opts.job_class = static_cast<JobClass>(rng.Below(kNumJobClasses));
        if (rng.NextDouble() < 0.5) {
          opts.deadline_seconds = 0.001 + rng.NextDouble() * 0.02;
        }
        auto h = scheduler.Submit(spec, opts);
        ASSERT_TRUE(h.ok());
        handles.push_back(std::move(h).ValueUnsafe());
      }
      scheduler.Shutdown();

      for (const JobHandle& h : handles) {
        auto out = h.TryGet();
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->state, JobState::kCompleted) << out->status.ToString();
        EXPECT_EQ(out->backend, Backend::kFpga);
      }
      const DevicePool& pool = scheduler.device_pool();
      EXPECT_EQ(pool.grants(), handles.size());
      uint64_t sum = 0;
      size_t devices_used = 0;
      for (size_t i = 0; i < pool.num_devices(); ++i) {
        sum += pool.device_grants(i);
        devices_used += pool.device_grants(i) > 0 ? 1 : 0;
      }
      EXPECT_EQ(sum, pool.grants());
      if (devices > 1) {
        EXPECT_GE(devices_used, 2u)
            << devices << "-device pool never spread its grants";
      }
      EXPECT_NEAR(pool.total_backlog_seconds(), 0.0, 1e-9);
    }
  }
}


// ---------------------------------------------------- admission properties

// Shared driver: replay a randomized partition-job stream in deterministic
// mode with SLO admission on and return the outcomes.
struct AdmissionReplay {
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t hash = 0;  // FNV-1a over (i, backend, checksum) of completions
  double worst_slack = std::numeric_limits<double>::infinity();
};

AdmissionReplay RunAdmissionReplay(const Relation<Tuple8>& rel,
                                   uint64_t jobs, uint64_t seed,
                                   double slo_seconds, double mean_gap,
                                   size_t clients) {
  SchedulerConfig config;
  config.deterministic = true;
  config.queue_capacity = jobs;
  config.num_workers = 2;
  config.fpga_devices = 2;
  config.sim_mode = SimMode::kAnalytical;
  config.sim_cache = true;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {slo_seconds, slo_seconds * 4.0, 0.0};
  Scheduler scheduler(config);

  // Pre-compute the stream (shared by every client split) so the replay
  // is a pure function of (seed, jobs).
  Rng rng(seed);
  std::vector<double> arrivals(jobs);
  std::vector<JobClass> classes(jobs);
  double clock = 0.0;
  for (uint64_t i = 0; i < jobs; ++i) {
    clock += rng.NextDouble() * 2.0 * mean_gap;
    arrivals[i] = clock;
    classes[i] =
        rng.NextDouble() < 0.5 ? JobClass::kInteractive : JobClass::kBatch;
  }

  std::vector<JobHandle> handles(jobs);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (uint64_t i = c; i < jobs; i += clients) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 512;
        spec.request.output_mode = OutputMode::kHist;
        spec.request.sim_mode = SimMode::kAnalytical;
        spec.request.sim_cache = true;
        JobOptions opts;
        opts.arrival_seq = i;
        opts.virtual_arrival_seconds = arrivals[i];
        opts.job_class = classes[i];
        auto handle = scheduler.Submit(spec, opts);
        ASSERT_TRUE(handle.ok()) << handle.status().ToString();
        handles[i] = std::move(handle).ValueUnsafe();
      }
    });
  }
  for (auto& t : threads) t.join();
  scheduler.Shutdown();

  AdmissionReplay r;
  r.hash = 0xcbf29ce484222325ULL;
  auto fold = [&r](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      r.hash ^= (v >> (b * 8)) & 0xff;
      r.hash *= 0x100000001b3ULL;
    }
  };
  for (uint64_t i = 0; i < jobs; ++i) {
    auto out = handles[i].TryGet();
    EXPECT_TRUE(out.has_value());
    if (!out.has_value()) continue;
    if (out->state == JobState::kRejected) {
      ++r.rejected;
      continue;
    }
    EXPECT_EQ(out->state, JobState::kCompleted) << out->status.ToString();
    ++r.completed;
    fold(i);
    fold(static_cast<uint64_t>(out->backend));
    fold(out->checksum);
    if (out->admit_budget_seconds > 0.0) {
      const double latency =
          out->virtual_queue_seconds + out->virtual_run_seconds;
      r.worst_slack = std::min(
          r.worst_slack, out->admit_budget_seconds - latency);
    }
  }
  return r;
}

// The tentpole invariant: across randomized overloaded streams, no job the
// controller admitted ever finishes past the budget its prediction fit —
// the deterministic prediction is exact, so the slack is never negative.
TEST(AdmissionPropertyTest, AdmittedJobsNeverMissTheirBudget) {
  auto rel_r = GenerateRawRelation(1 << 17, KeyDistribution::kRandom, 11);
  ASSERT_TRUE(rel_r.ok());
  Relation<Tuple8> rel = std::move(rel_r).ValueUnsafe();
  uint64_t total_rejected = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    // Tight SLO + bursty arrivals: a real overload mix.
    AdmissionReplay r =
        RunAdmissionReplay(rel, /*jobs=*/40, seed,
                           /*slo=*/0.002, /*mean_gap=*/1e-4, /*clients=*/1);
    EXPECT_GT(r.completed, 0u) << "seed " << seed;
    EXPECT_GE(r.worst_slack, 0.0) << "seed " << seed;
    total_rejected += r.rejected;
  }
  EXPECT_GT(total_rejected, 0u);  // the streams really were infeasible
}

// At low load (arrivals far apart relative to the SLO) admission must be
// invisible: zero rejects, every job completes.
TEST(AdmissionPropertyTest, NoRejectsAtLowLoad) {
  auto rel_r = GenerateRawRelation(1 << 14, KeyDistribution::kRandom, 12);
  ASSERT_TRUE(rel_r.ok());
  Relation<Tuple8> rel = std::move(rel_r).ValueUnsafe();
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    AdmissionReplay r =
        RunAdmissionReplay(rel, /*jobs=*/24, seed,
                           /*slo=*/0.5, /*mean_gap=*/0.05, /*clients=*/1);
    EXPECT_EQ(r.rejected, 0u) << "seed " << seed;
    EXPECT_EQ(r.completed, 24u) << "seed " << seed;
  }
}

// The replay — including which jobs get rejected — is a pure function of
// the stream: submitting from 1, 2 or 4 racing clients must yield the
// identical completion hash and rejection count.
TEST(AdmissionPropertyTest, ReplayIsClientInterleavingInvariant) {
  auto rel_r = GenerateRawRelation(1 << 17, KeyDistribution::kRandom, 13);
  ASSERT_TRUE(rel_r.ok());
  Relation<Tuple8> rel = std::move(rel_r).ValueUnsafe();
  for (uint64_t seed = 21; seed <= 22; ++seed) {
    AdmissionReplay base =
        RunAdmissionReplay(rel, /*jobs=*/32, seed,
                           /*slo=*/0.002, /*mean_gap=*/1e-4, /*clients=*/1);
    for (size_t clients : {2u, 4u}) {
      AdmissionReplay r = RunAdmissionReplay(rel, 32, seed,
                                             0.002, 1e-4, clients);
      EXPECT_EQ(r.hash, base.hash)
          << "seed " << seed << " clients " << clients;
      EXPECT_EQ(r.rejected, base.rejected)
          << "seed " << seed << " clients " << clients;
    }
  }
}

// EWMA property: whatever constant mis-calibration factor the model has,
// and whatever smoothing factor is configured, the learned correction
// converges to the clamped true factor.
TEST(AdmissionPropertyTest, EwmaConvergesUnderRandomMiscalibration) {
  Rng rng(0xadA11);
  for (int trial = 0; trial < 12; ++trial) {
    SloConfig cfg;
    cfg.enabled = true;
    cfg.ewma_alpha = 0.05 + rng.NextDouble() * 0.9;
    AdmissionController adm(cfg, 2, 1);
    const double k = 0.1 + rng.NextDouble() * 6.0;  // may exceed the clamp
    const auto backend =
        static_cast<Backend>(trial % static_cast<int>(kNumBackends));
    const double demand = trial % 2 == 0 ? 1000.0 : 2e6;
    for (int i = 0; i < 400; ++i) {
      const double model = 0.5 + rng.NextDouble();  // varying job sizes
      adm.ObserveRun(backend, demand, model,
                     model * adm.correction(backend, SizeClassOf(demand)),
                     k * model, /*learn=*/true);
    }
    const double expect =
        std::clamp(k, cfg.correction_floor, cfg.correction_cap);
    EXPECT_NEAR(adm.correction(backend, SizeClassOf(demand)), expect, 0.02)
        << "trial " << trial << " k=" << k << " alpha=" << cfg.ewma_alpha;
  }
}

// TSan-raced stress: submissions, completions and active-worker
// reconfiguration all racing with admission enabled; every job must reach
// exactly one terminal state and the pending ledger must drain.
TEST(AdmissionPropertyTest, RacedSubmitRejectReconfigureStress) {
  auto rel_r = GenerateRawRelation(1 << 12, KeyDistribution::kRandom, 14);
  ASSERT_TRUE(rel_r.ok());
  Relation<Tuple8> rel = std::move(rel_r).ValueUnsafe();
  SchedulerConfig config;
  config.deterministic = false;
  config.num_workers = 2;
  config.max_workers = 4;
  config.queue_capacity = 32;
  config.slo.enabled = true;
  config.slo.class_slo_seconds = {0.001, 10.0, 0.0};
  Scheduler scheduler(config);
  std::atomic<uint64_t> terminal{0};
  std::atomic<bool> stop{false};
  std::thread reconfig([&] {
    size_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      scheduler.SetActiveWorkers(1 + (n++ % 4));
      (void)scheduler.slo_pressure();
      std::this_thread::yield();
    }
  });
  constexpr size_t kClients = 4;
  constexpr uint64_t kPerClient = 40;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(0x5eed + c);
      std::vector<JobHandle> handles;
      for (uint64_t i = 0; i < kPerClient; ++i) {
        PartitionJobSpec spec;
        spec.input = &rel;
        spec.request.fanout = 256;
        spec.request.output_mode = OutputMode::kHist;
        JobOptions opts;
        opts.job_class = rng.NextDouble() < 0.3 ? JobClass::kInteractive
                                                : JobClass::kBatch;
        auto handle = scheduler.Submit(spec, opts);
        if (!handle.ok()) {
          EXPECT_TRUE(handle.status().IsSloError() ||
                      handle.status().IsCapacityError())
              << handle.status().ToString();
          terminal.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        handles.push_back(std::move(handle).ValueUnsafe());
      }
      for (auto& h : handles) {
        h.Wait();
        terminal.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  reconfig.join();
  scheduler.Shutdown();
  EXPECT_EQ(terminal.load(), kClients * kPerClient);
  EXPECT_NEAR(scheduler.admission().pending_seconds(), 0.0, 1e-9);
}

}  // namespace
}  // namespace fpart::svc
