// Tests of the analytical simulation backend (SimMode::kAnalytical) and
// the sim-result memoization cache (src/fpga/sim_cache.h).
//
// The analytical engine replays the functional circuit (so outputs stay
// bit-identical to the reference and fast engines) but *predicts* the
// timing columns of CycleStats from the Section 4.8 cost model. The
// contract tested here:
//   (a) partition outputs, metadata, histograms and the functional
//       counters are byte-identical across all three SimModes, including
//       the PAD overflow abort;
//   (b) predicted cycles land within a stated tolerance of the fast
//       engine's exact count on the Figure 9 / Figure 10 configurations;
//   (c) a memoized run returns CycleStats and output bytes identical to
//       the cold run, also under concurrent access (TSan-clean).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compress/for_codec.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"
#include "datagen/zipf.h"
#include "fpga/partitioner.h"

namespace fpart {
namespace {

std::vector<uint32_t> MakeKeys(size_t n, uint64_t seed, bool zipf = false,
                               double z = 1.1) {
  std::vector<uint32_t> keys(n);
  if (!zipf) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(rng.Next()) & 0x7fffffffu;
    }
  } else {
    ZipfSampler sampler(1 << 20, z, seed);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<uint32_t>(sampler.Next()) & 0x7fffffffu;
    }
  }
  return keys;
}

std::vector<Tuple8> MakeTuples(const std::vector<uint32_t>& keys) {
  std::vector<Tuple8> tuples(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    tuples[i] = Tuple8{keys[i], static_cast<uint32_t>(i)};
  }
  return tuples;
}

Result<FpgaRunResult<Tuple8>> RunOne(FpgaPartitionerConfig config,
                                     SimMode mode, HazardPolicy hazard,
                                     const std::vector<Tuple8>& tuples,
                                     const std::vector<uint32_t>& keys,
                                     const CompressedColumn* column) {
  config.sim_mode = mode;
  config.publish_metrics = false;
  FpgaPartitioner<Tuple8> part(config);
  part.set_hazard_policy(hazard);
  switch (config.layout) {
    case LayoutMode::kVrid:
      return part.PartitionColumn(keys.data(), keys.size());
    case LayoutMode::kCompressed:
      return part.PartitionCompressed(*column);
    case LayoutMode::kRid:
      break;
  }
  return part.Partition(tuples.data(), tuples.size());
}

/// The functional half of the run must be identical: output bytes,
/// partition metadata, histogram, and the counters the analytical engine
/// replays exactly (lines moved, dummy padding, internal stalls). Timing
/// columns (cycles, stall split) are intentionally NOT compared here.
void ExpectFunctionallyIdentical(const Result<FpgaRunResult<Tuple8>>& exact,
                                 const Result<FpgaRunResult<Tuple8>>& ana,
                                 const std::string& label) {
  ASSERT_EQ(exact.ok(), ana.ok())
      << label << ": exact=" << exact.status().ToString()
      << " analytical=" << ana.status().ToString();
  if (!exact.ok()) {
    // Both aborted (PAD overflow): same code and message, including the
    // overflowing partition index.
    EXPECT_EQ(exact.status().ToString(), ana.status().ToString()) << label;
    return;
  }
  const FpgaRunResult<Tuple8>& a = *exact;
  const FpgaRunResult<Tuple8>& b = *ana;
  EXPECT_EQ(a.stats.input_lines, b.stats.input_lines) << label;
  EXPECT_EQ(a.stats.output_lines, b.stats.output_lines) << label;
  EXPECT_EQ(a.stats.read_lines, b.stats.read_lines) << label;
  EXPECT_EQ(a.stats.internal_stall_cycles, b.stats.internal_stall_cycles)
      << label;
  EXPECT_EQ(a.stats.dummy_tuples, b.stats.dummy_tuples) << label;
  EXPECT_EQ(a.histogram, b.histogram) << label;

  ASSERT_EQ(a.output.num_partitions(), b.output.num_partitions()) << label;
  ASSERT_EQ(a.output.total_cls(), b.output.total_cls()) << label;
  for (size_t p = 0; p < a.output.num_partitions(); ++p) {
    EXPECT_EQ(a.output.part(p).base_cl, b.output.part(p).base_cl) << label;
    EXPECT_EQ(a.output.part(p).capacity_cls, b.output.part(p).capacity_cls)
        << label;
    EXPECT_EQ(a.output.part(p).written_cls, b.output.part(p).written_cls)
        << label;
    EXPECT_EQ(a.output.part(p).num_tuples, b.output.part(p).num_tuples)
        << label;
  }
  EXPECT_EQ(0, std::memcmp(a.output.line(0), b.output.line(0),
                           a.output.total_cls() * kCacheLineSize))
      << label;
}

void RunThreeWay(FpgaPartitionerConfig config, HazardPolicy hazard, size_t n,
                 const std::string& label, uint64_t seed = 7,
                 bool zipf = false) {
  auto keys = MakeKeys(n, seed, zipf);
  auto tuples = MakeTuples(keys);
  CompressedColumn column;
  if (config.layout == LayoutMode::kCompressed) {
    auto compressed = CompressedColumn::Compress(keys.data(), keys.size());
    ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
    column = std::move(*compressed);
  }
  auto ref = RunOne(config, SimMode::kReference, hazard, tuples, keys, &column);
  auto fast = RunOne(config, SimMode::kFast, hazard, tuples, keys, &column);
  auto ana =
      RunOne(config, SimMode::kAnalytical, hazard, tuples, keys, &column);
  ExpectFunctionallyIdentical(ref, ana, label + " ref-vs-ana");
  ExpectFunctionallyIdentical(fast, ana, label + " fast-vs-ana");
  // Sanity: reference and fast still agree on the exact cycle count, so
  // the "exact" side of the comparison is itself trustworthy.
  if (ref.ok() && fast.ok()) {
    EXPECT_EQ(ref->stats.cycles, fast->stats.cycles) << label;
  }
}

// ---------------------------------------------------------------------------
// (a) Byte-identical outputs across all three modes.

TEST(SimAnalyticalTest, ThreeModeMatrix) {
  const LayoutMode layouts[] = {LayoutMode::kRid, LayoutMode::kVrid,
                                LayoutMode::kCompressed};
  const OutputMode modes[] = {OutputMode::kPad, OutputMode::kHist};
  const HazardPolicy hazards[] = {HazardPolicy::kForward,
                                  HazardPolicy::kStall};
  for (LayoutMode layout : layouts) {
    for (OutputMode mode : modes) {
      for (HazardPolicy hazard : hazards) {
        for (bool zipf : {false, true}) {
          FpgaPartitionerConfig config;
          config.fanout = 256;
          config.layout = layout;
          config.output_mode = mode;
          config.pad_fraction = 1.0;
          std::string label =
              std::string(LayoutModeName(layout)) + "/" +
              OutputModeName(mode) + "/" +
              (hazard == HazardPolicy::kForward ? "forward" : "stall") + "/" +
              (zipf ? "zipf" : "uniform");
          RunThreeWay(config, hazard, 6000, label, /*seed=*/7, zipf);
        }
      }
    }
  }
}

TEST(SimAnalyticalTest, ThrottledLinkAndInterference) {
  FpgaPartitionerConfig raw;
  raw.fanout = 512;
  raw.link = LinkKind::kRawWrapper;
  RunThreeWay(raw, HazardPolicy::kForward, 10000, "raw wrapper");
  FpgaPartitionerConfig interfered;
  interfered.fanout = 512;
  interfered.interference = Interference::kInterfered;
  RunThreeWay(interfered, HazardPolicy::kForward, 10000, "interfered");
}

TEST(SimAnalyticalTest, PadOverflowAbortsIdentically) {
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.pad_fraction = 0.01;
  auto keys = MakeKeys(20000, /*seed=*/3, /*zipf=*/true, /*z=*/1.4);
  auto tuples = MakeTuples(keys);
  auto fast = RunOne(config, SimMode::kFast, HazardPolicy::kForward, tuples,
                     keys, nullptr);
  auto ana = RunOne(config, SimMode::kAnalytical, HazardPolicy::kForward,
                    tuples, keys, nullptr);
  ASSERT_FALSE(fast.ok());
  ASSERT_TRUE(fast.status().IsPartitionOverflow());
  ExpectFunctionallyIdentical(fast, ana, "pad overflow");
}

// ---------------------------------------------------------------------------
// (b) Predicted cycles within tolerance of kFast on the figure configs.

// The stated prediction tolerance: a 432-config sweep (fanout × layout ×
// output mode × link × interference × distribution × hazard) measured a
// worst-case relative error of 6.2 %, mean 2 %.
constexpr double kCycleTolerance = 0.10;

void ExpectWithinTolerance(const FpgaPartitionerConfig& base, size_t n,
                           const std::string& label) {
  auto keys = MakeKeys(n, /*seed=*/11);
  auto tuples = MakeTuples(keys);
  auto fast = RunOne(base, SimMode::kFast, HazardPolicy::kForward, tuples,
                     keys, nullptr);
  auto ana = RunOne(base, SimMode::kAnalytical, HazardPolicy::kForward,
                    tuples, keys, nullptr);
  ASSERT_TRUE(fast.ok()) << label << ": " << fast.status().ToString();
  ASSERT_TRUE(ana.ok()) << label << ": " << ana.status().ToString();
  const double exact = static_cast<double>(fast->stats.cycles);
  const double predicted = static_cast<double>(ana->stats.cycles);
  ASSERT_GT(exact, 0) << label;
  const double err = (predicted - exact) / exact;
  EXPECT_LE(err, kCycleTolerance) << label << ": predicted=" << predicted
                                  << " exact=" << exact;
  EXPECT_GE(err, -kCycleTolerance) << label << ": predicted=" << predicted
                                   << " exact=" << exact;
}

TEST(SimAnalyticalTest, Fig9ConfigCycleTolerance) {
  // Figure 9: fanout 8192, the four mode combinations, plus the raw
  // wrapper link variants.
  for (OutputMode mode : {OutputMode::kPad, OutputMode::kHist}) {
    for (LayoutMode layout : {LayoutMode::kRid, LayoutMode::kVrid}) {
      FpgaPartitionerConfig config;
      config.fanout = 8192;
      config.output_mode = mode;
      config.layout = layout;
      ExpectWithinTolerance(config, 200000,
                            std::string("fig9 ") + OutputModeName(mode) +
                                "/" + LayoutModeName(layout));
    }
  }
  FpgaPartitionerConfig raw;
  raw.fanout = 8192;
  raw.link = LinkKind::kRawWrapper;
  ExpectWithinTolerance(raw, 200000, "fig9 raw wrapper");
}

TEST(SimAnalyticalTest, Fig10FanoutSweepCycleTolerance) {
  // Figure 10's partition-count sweep (the join's partitioning pass):
  // HIST/RID at fanouts 256 .. 8192.
  for (uint32_t fanout : {256u, 1024u, 4096u, 8192u}) {
    FpgaPartitionerConfig config;
    config.fanout = fanout;
    config.output_mode = OutputMode::kHist;
    ExpectWithinTolerance(config, 120000,
                          "fig10 fanout=" + std::to_string(fanout));
  }
}

TEST(SimAnalyticalTest, FullCrossCheckPasses) {
  // xcheck=1.0 re-runs every analytical run on kFast inside the
  // partitioner and fails the Status on divergence or excess error — a
  // passing run is the in-tree harness agreeing with (a) and (b).
  FpgaPartitionerConfig config;
  config.fanout = 2048;
  config.output_mode = OutputMode::kHist;
  config.sim_mode = SimMode::kAnalytical;
  config.xcheck = 1.0;
  config.publish_metrics = false;
  auto keys = MakeKeys(50000, /*seed=*/13);
  auto tuples = MakeTuples(keys);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(tuples.data(), tuples.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
}

// ---------------------------------------------------------------------------
// (c) Memoization: a cache hit is indistinguishable from the cold run.

void ExpectIdenticalRuns(const FpgaRunResult<Tuple8>& a,
                         const FpgaRunResult<Tuple8>& b,
                         const std::string& label) {
  EXPECT_EQ(a.stats.cycles, b.stats.cycles) << label;
  EXPECT_EQ(a.stats.histogram_cycles, b.stats.histogram_cycles) << label;
  EXPECT_EQ(a.stats.flush_cycles, b.stats.flush_cycles) << label;
  EXPECT_EQ(a.stats.read_stall_cycles, b.stats.read_stall_cycles) << label;
  EXPECT_EQ(a.stats.write_stall_cycles, b.stats.write_stall_cycles) << label;
  EXPECT_EQ(a.stats.backpressure_cycles, b.stats.backpressure_cycles)
      << label;
  EXPECT_EQ(a.stats.internal_stall_cycles, b.stats.internal_stall_cycles)
      << label;
  EXPECT_EQ(a.stats.input_lines, b.stats.input_lines) << label;
  EXPECT_EQ(a.stats.output_lines, b.stats.output_lines) << label;
  EXPECT_EQ(a.stats.read_lines, b.stats.read_lines) << label;
  EXPECT_EQ(a.stats.dummy_tuples, b.stats.dummy_tuples) << label;
  EXPECT_EQ(a.seconds, b.seconds) << label;
  EXPECT_EQ(a.mtuples_per_sec, b.mtuples_per_sec) << label;
  EXPECT_EQ(a.read_write_ratio, b.read_write_ratio) << label;
  EXPECT_EQ(a.histogram, b.histogram) << label;
  ASSERT_EQ(a.output.num_partitions(), b.output.num_partitions()) << label;
  ASSERT_EQ(a.output.total_cls(), b.output.total_cls()) << label;
  EXPECT_EQ(0, std::memcmp(a.output.line(0), b.output.line(0),
                           a.output.total_cls() * kCacheLineSize))
      << label;
}

TEST(SimAnalyticalTest, CacheHitMatchesColdRun) {
  FpgaPartitioner<Tuple8>::ResultCache().Clear();
  FpgaPartitionerConfig config;
  config.fanout = 512;
  config.output_mode = OutputMode::kHist;
  config.sim_mode = SimMode::kAnalytical;
  config.sim_cache = true;
  config.publish_metrics = false;
  auto keys = MakeKeys(30000, /*seed=*/21);
  auto tuples = MakeTuples(keys);

  FpgaPartitioner<Tuple8> part(config);
  auto cold = part.Partition(tuples.data(), tuples.size());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto hit = part.Partition(tuples.data(), tuples.size());
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ExpectIdenticalRuns(*cold, *hit, "cold vs hit");

  const SimCacheStats stats = FpgaPartitioner<Tuple8>::ResultCache().stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.entries, 1u);

  // A different input under the same config must miss and produce a
  // different digest (different bytes, different result).
  auto other_keys = MakeKeys(30000, /*seed=*/22);
  auto other = MakeTuples(other_keys);
  auto miss = part.Partition(other.data(), other.size());
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_NE(0, std::memcmp(cold->output.line(0), miss->output.line(0),
                           std::min(cold->output.total_cls(),
                                    miss->output.total_cls()) *
                               kCacheLineSize));
}

TEST(SimAnalyticalTest, CacheWorksForFastModeToo) {
  // The memoization layer is mode-agnostic (the mode is part of the key):
  // a kFast run with sim_cache also hits on the second run.
  FpgaPartitioner<Tuple8>::ResultCache().Clear();
  FpgaPartitionerConfig config;
  config.fanout = 128;
  config.sim_mode = SimMode::kFast;
  config.sim_cache = true;
  config.publish_metrics = false;
  auto keys = MakeKeys(20000, /*seed=*/31);
  auto tuples = MakeTuples(keys);
  FpgaPartitioner<Tuple8> part(config);
  auto cold = part.Partition(tuples.data(), tuples.size());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto hit = part.Partition(tuples.data(), tuples.size());
  ASSERT_TRUE(hit.ok()) << hit.status().ToString();
  ExpectIdenticalRuns(*cold, *hit, "fast cold vs hit");
}

TEST(SimAnalyticalTest, ConcurrentCacheAccessIsConsistent) {
  // Many threads race cold misses, inserts and hits on a small set of
  // (config, input) shapes; every returned run must equal the
  // single-threaded result for its shape. Run under TSan in CI.
  FpgaPartitioner<Tuple8>::ResultCache().Clear();
  constexpr int kShapes = 4;
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 6;

  std::vector<std::vector<Tuple8>> inputs;
  std::vector<FpgaRunResult<Tuple8>> expected;
  FpgaPartitionerConfig config;
  config.fanout = 256;
  config.output_mode = OutputMode::kHist;
  config.sim_mode = SimMode::kAnalytical;
  config.sim_cache = true;
  config.publish_metrics = false;
  for (int s = 0; s < kShapes; ++s) {
    inputs.push_back(MakeTuples(MakeKeys(8000 + 512 * s, /*seed=*/40 + s)));
    FpgaPartitionerConfig uncached = config;
    uncached.sim_cache = false;
    FpgaPartitioner<Tuple8> part(uncached);
    auto run = part.Partition(inputs[s].data(), inputs[s].size());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    expected.push_back(std::move(*run));
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        const int s = (t + r) % kShapes;
        FpgaPartitioner<Tuple8> part(config);
        auto run = part.Partition(inputs[s].data(), inputs[s].size());
        if (!run.ok() ||
            run->output.total_cls() != expected[s].output.total_cls() ||
            run->stats.cycles != expected[s].stats.cycles ||
            std::memcmp(run->output.line(0), expected[s].output.line(0),
                        expected[s].output.total_cls() * kCacheLineSize) !=
                0) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(0, failures[t]) << "thread " << t;
  }
  const SimCacheStats stats = FpgaPartitioner<Tuple8>::ResultCache().stats();
  EXPECT_EQ(stats.entries, static_cast<uint64_t>(kShapes));
  EXPECT_GE(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kRunsPerThread));
  FpgaPartitioner<Tuple8>::ResultCache().Clear();
}

}  // namespace
}  // namespace fpart
