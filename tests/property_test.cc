// Randomized end-to-end properties: for arbitrary configurations and key
// distributions, the FPGA circuit, the CPU single-pass partitioner and the
// CPU multi-pass partitioner all produce identical partition multisets and
// conserve every tuple; joins over them agree with a nested-loop oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/fpart.h"

namespace fpart {
namespace {

struct RandomConfig {
  uint64_t seed;
  uint32_t fanout;
  HashMethod hash;
  OutputMode mode;
  size_t n;
};

RandomConfig MakeConfig(uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  RandomConfig c;
  c.seed = seed;
  c.fanout = 1u << (1 + rng.Below(10));  // 2 .. 1024
  const HashMethod methods[] = {HashMethod::kRadix, HashMethod::kMurmur,
                                HashMethod::kMultiplicative,
                                HashMethod::kCrc32};
  c.hash = methods[rng.Below(4)];
  c.mode = rng.Below(2) == 0 ? OutputMode::kHist : OutputMode::kPad;
  c.n = 1000 + rng.Below(30000);
  return c;
}

Relation<Tuple8> MakeInput(const RandomConfig& c) {
  Rng rng(c.seed);
  auto rel = Relation<Tuple8>::Allocate(c.n);
  EXPECT_TRUE(rel.ok());
  // Mix uniform and mildly clustered keys.
  const bool clustered = rng.Below(2) == 0;
  for (size_t i = 0; i < c.n; ++i) {
    uint32_t key = clustered
                       ? static_cast<uint32_t>(rng.Below(997)) * 1009u
                       : rng.Next32() & 0x7fffffffu;
    (*rel)[i] = Tuple8{key, static_cast<uint32_t>(i)};
  }
  return std::move(*rel);
}

using PartitionKeyMultisets = std::vector<std::vector<uint64_t>>;

template <typename Output>
PartitionKeyMultisets Collect(const Output& out) {
  PartitionKeyMultisets parts(out.num_partitions());
  for (size_t p = 0; p < out.num_partitions(); ++p) {
    const Tuple8* data = out.partition_data(p);
    for (size_t i = 0; i < out.partition_slots(p); ++i) {
      if (!IsDummy(data[i])) {
        parts[p].push_back((static_cast<uint64_t>(data[i].key) << 32) |
                           data[i].payload);
      }
    }
    std::sort(parts[p].begin(), parts[p].end());
  }
  return parts;
}

class PartitionEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionEquivalenceTest, AllEnginesAgree) {
  const RandomConfig c = MakeConfig(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(c.seed) +
               " fanout=" + std::to_string(c.fanout) + " hash=" +
               HashMethodName(c.hash) + " mode=" + OutputModeName(c.mode) +
               " n=" + std::to_string(c.n));
  Relation<Tuple8> rel = MakeInput(c);

  // FPGA circuit. PAD with generous padding (clustered inputs are skewed).
  FpgaPartitionerConfig fpga_config;
  fpga_config.fanout = c.fanout;
  fpga_config.hash = c.hash;
  fpga_config.output_mode = c.mode;
  fpga_config.pad_fraction = 8.0;
  FpgaPartitioner<Tuple8> fpga(fpga_config);
  auto fpga_run = fpga.Partition(rel.data(), rel.size());
  if (!fpga_run.ok() && fpga_run.status().IsPartitionOverflow()) {
    // Legitimate under heavy clustering; retry in HIST mode (the fallback).
    fpga_config.output_mode = OutputMode::kHist;
    FpgaPartitioner<Tuple8> retry(fpga_config);
    fpga_run = retry.Partition(rel.data(), rel.size());
  }
  ASSERT_TRUE(fpga_run.ok()) << fpga_run.status().ToString();
  ASSERT_EQ(fpga_run->stats.internal_stall_cycles, 0u);

  // CPU single pass.
  CpuPartitionerConfig cpu_config;
  cpu_config.fanout = c.fanout;
  cpu_config.hash = c.hash;
  cpu_config.num_threads = 1 + (c.seed % 4);
  auto cpu_run = CpuPartition(cpu_config, rel.data(), rel.size());
  ASSERT_TRUE(cpu_run.ok());

  // CPU multi-pass (when the fanout has at least 2 bits).
  auto fpga_parts = Collect(fpga_run->output);
  auto cpu_parts = Collect(cpu_run->output);
  ASSERT_EQ(fpga_parts, cpu_parts);
  if (FanoutBits(c.fanout) >= 2) {
    auto multi_run = MultipassPartition(
        cpu_config, FanoutBits(c.fanout) / 2, rel.data(), rel.size());
    ASSERT_TRUE(multi_run.ok());
    ASSERT_EQ(Collect(multi_run->output), cpu_parts);
  }

  // Conservation: every tuple appears exactly once.
  uint64_t total = 0;
  for (const auto& p : fpga_parts) total += p.size();
  EXPECT_EQ(total, rel.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 25));

class JoinOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinOracleTest, AllJoinsMatchNestedLoop) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 31 + 5);
  const size_t nr = 500 + rng.Below(3000);
  const size_t ns = 500 + rng.Below(3000);
  auto r = Relation<Tuple8>::Allocate(nr);
  auto s = Relation<Tuple8>::Allocate(ns);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(s.ok());
  // Narrow key domain: plenty of duplicates on BOTH sides, so the joins
  // must handle m:n matches.
  const uint32_t domain = 200 + static_cast<uint32_t>(rng.Below(400));
  for (size_t i = 0; i < nr; ++i) {
    (*r)[i] = Tuple8{static_cast<uint32_t>(1 + rng.Below(domain)),
                     static_cast<uint32_t>(i)};
  }
  for (size_t j = 0; j < ns; ++j) {
    (*s)[j] = Tuple8{static_cast<uint32_t>(1 + rng.Below(domain)),
                     static_cast<uint32_t>(j)};
  }

  // Oracle.
  std::unordered_map<uint32_t, uint64_t> counts, payload_sums;
  for (const auto& t : *r) {
    ++counts[t.key];
    payload_sums[t.key] += t.payload;
  }
  uint64_t oracle_matches = 0, oracle_checksum = 0;
  for (const auto& t : *s) {
    auto it = counts.find(t.key);
    if (it != counts.end()) {
      oracle_matches += it->second;
      oracle_checksum += payload_sums[t.key];
    }
  }

  CpuJoinConfig cpu;
  cpu.fanout = 64;
  cpu.hash = HashMethod::kMurmur;
  auto radix = CpuRadixJoin(cpu, *r, *s);
  ASSERT_TRUE(radix.ok());
  EXPECT_EQ(radix->matches, oracle_matches);
  EXPECT_EQ(radix->checksum, oracle_checksum);

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 64;
  hybrid.fpga.pad_fraction = 8.0;
  auto hyb = HybridJoinWithFallback(hybrid, *r, *s);
  ASSERT_TRUE(hyb.ok()) << hyb.status().ToString();
  EXPECT_EQ(hyb->matches, oracle_matches);
  EXPECT_EQ(hyb->checksum, oracle_checksum);

  auto sm = SortMergeJoin(2, *r, *s);
  ASSERT_TRUE(sm.ok());
  EXPECT_EQ(sm->matches, oracle_matches);
  EXPECT_EQ(sm->checksum, oracle_checksum);

  auto np = NoPartitionJoin(2, *r, *s);
  ASSERT_TRUE(np.ok());
  EXPECT_EQ(np->matches, oracle_matches);
  EXPECT_EQ(np->checksum, oracle_checksum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinOracleTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace fpart
