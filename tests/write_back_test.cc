// Circuit-level unit tests of the write-back module (Section 4.3):
// round-robin draining, destination addressing, back-pressure accounting,
// and PAD overflow detection.
#include <gtest/gtest.h>

#include <vector>

#include "datagen/partitioned_output.h"
#include "fpga/write_back.h"
#include "qpi/qpi_link.h"

namespace fpart {
namespace {

CombinedLine<Tuple8> MakeLine(uint32_t partition, uint32_t tag) {
  CombinedLine<Tuple8> line;
  line.partition = partition;
  line.valid_count = 8;
  for (int b = 0; b < 8; ++b) {
    line.tuples[b] = Tuple8{tag, static_cast<uint32_t>(b)};
  }
  return line;
}

struct Rig {
  PartitionedOutput<Tuple8> out;
  std::vector<Fifo<CombinedLine<Tuple8>>> fifos;
  QpiLink link = QpiLink::Fixed(200e6, 12.8);  // 1 line/cycle
  CycleStats stats;

  explicit Rig(std::vector<uint32_t> caps, int num_fifos = 2)
      : fifos(num_fifos, Fifo<CombinedLine<Tuple8>>(8)) {
    auto o = PartitionedOutput<Tuple8>::Allocate(caps);
    EXPECT_TRUE(o.ok());
    out = std::move(*o);
  }

  std::vector<Fifo<CombinedLine<Tuple8>>*> inputs() {
    std::vector<Fifo<CombinedLine<Tuple8>>*> v;
    for (auto& f : fifos) v.push_back(&f);
    return v;
  }
};

TEST(WriteBackTest, WritesLineToPartitionBase) {
  Rig rig({4, 4});
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  rig.fifos[0].Push(MakeLine(1, 99));
  for (int i = 0; i < 4; ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  EXPECT_TRUE(wb.idle());
  EXPECT_EQ(rig.out.part(1).written_cls, 1u);
  EXPECT_EQ(rig.out.part(1).num_tuples, 8u);
  EXPECT_EQ(rig.out.partition_data(1)[0].key, 99u);
  EXPECT_EQ(rig.out.part(0).written_cls, 0u);
  EXPECT_EQ(rig.stats.output_lines, 1u);
}

TEST(WriteBackTest, RoundRobinAlternatesBetweenCombiners) {
  Rig rig({16});
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  for (int i = 0; i < 3; ++i) {
    rig.fifos[0].Push(MakeLine(0, 100 + i));
    rig.fifos[1].Push(MakeLine(0, 200 + i));
  }
  for (int i = 0; i < 16; ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  ASSERT_EQ(rig.out.part(0).written_cls, 6u);
  // Alternating sources: 100, 200, 101, 201, ...
  const Tuple8* data = rig.out.partition_data(0);
  EXPECT_EQ(data[0].key, 100u);
  EXPECT_EQ(data[8].key, 200u);
  EXPECT_EQ(data[16].key, 101u);
  EXPECT_EQ(data[24].key, 201u);
}

TEST(WriteBackTest, CountsValidTuplesNotSlots) {
  Rig rig({4});
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  CombinedLine<Tuple8> partial = MakeLine(0, 7);
  partial.valid_count = 3;
  for (int b = 3; b < 8; ++b) partial.tuples[b] = MakeDummyTuple<Tuple8>();
  rig.fifos[0].Push(partial);
  for (int i = 0; i < 4; ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  EXPECT_EQ(rig.out.part(0).num_tuples, 3u);
  EXPECT_EQ(rig.stats.dummy_tuples, 5u);
}

TEST(WriteBackTest, BackpressureWhenLinkIsSlow) {
  Rig rig({16});
  rig.link = QpiLink::Fixed(200e6, 1.28);  // 0.1 lines/cycle
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  for (int i = 0; i < 4; ++i) rig.fifos[0].Push(MakeLine(0, i));
  for (int i = 0; i < 100; ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  EXPECT_EQ(rig.out.part(0).written_cls, 4u);
  EXPECT_GT(rig.stats.backpressure_cycles, 20u);
}

TEST(WriteBackTest, DetectsPartitionOverflow) {
  Rig rig({1, 8});
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  rig.fifos[0].Push(MakeLine(0, 1));
  rig.fifos[0].Push(MakeLine(0, 2));  // second line cannot fit
  for (int i = 0; i < 8 && !wb.overflowed(); ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  EXPECT_TRUE(wb.overflowed());
  EXPECT_EQ(wb.overflow_partition(), 0u);
  // The first line landed; the second was rejected.
  EXPECT_EQ(rig.out.part(0).written_cls, 1u);
}

TEST(WriteBackTest, IdleWithEmptyInputs) {
  Rig rig({4});
  WriteBackModule<Tuple8> wb(&rig.out, rig.inputs());
  for (int i = 0; i < 10; ++i) {
    rig.link.Tick();
    wb.Tick(&rig.link, &rig.stats);
  }
  EXPECT_TRUE(wb.idle());
  EXPECT_EQ(rig.stats.output_lines, 0u);
  EXPECT_EQ(rig.stats.backpressure_cycles, 0u);
}

}  // namespace
}  // namespace fpart
