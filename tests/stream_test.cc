// Tests for the continuous-ingest streaming store (src/stream/): layout
// invariants of split/merge epoch flips (no lost or duplicated keys, ever),
// the hot-spot detector's anti-ping-pong damping, deterministic replay
// stability across thread counts, kRebalance jobs through the svc
// scheduler, the drifting-Zipf generator, and a TSan-raced
// ingest/read/repartition stress.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/rng.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "obs/metrics.h"
#include "stream/hotspot.h"
#include "stream/ingest.h"
#include "stream/repartition.h"
#include "svc/scheduler.h"

namespace fpart {
namespace {

using stream::HotspotConfig;
using stream::HotspotDetector;
using stream::ReadResult;
using stream::RebalanceAction;
using stream::RepartitionConfig;
using stream::RepartitionManager;
using stream::StreamStore;
using stream::StreamStoreConfig;

std::vector<Tuple8> MakeTuples(const std::vector<uint32_t>& keys) {
  std::vector<Tuple8> out;
  out.reserve(keys.size());
  uint32_t payload = 0;
  for (uint32_t k : keys) {
    Tuple8 t;
    t.key = k;
    t.payload = payload++;
    out.push_back(t);
  }
  return out;
}

uint64_t ExpectedChecksum(const std::vector<uint32_t>& keys) {
  uint64_t sum = 0;
  for (uint32_t k : keys) sum += StreamStore::KeyFingerprint(k);
  return sum;
}

void IngestAll(StreamStore* store, const std::vector<Tuple8>& tuples) {
  ASSERT_TRUE(store->Ingest(tuples.data(), tuples.size()).ok());
  ASSERT_TRUE(store->Flush().ok());
}

std::vector<uint32_t> RandomKeys(size_t n, uint64_t seed,
                                 uint32_t universe = 1 << 16) {
  Rng rng(seed);
  std::vector<uint32_t> keys(n);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Below(universe));
  return keys;
}

TEST(StreamStoreTest, IngestFlushRead) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  cfg.buffer_tuples = 64;
  StreamStore store(cfg);

  const std::vector<uint32_t> keys = RandomKeys(1000, 7);
  IngestAll(&store, MakeTuples(keys));

  EXPECT_EQ(store.total_tuples(), keys.size());
  EXPECT_EQ(store.ingested_tuples(), keys.size());
  EXPECT_EQ(store.buffered_tuples(), 0u);
  EXPECT_EQ(store.KeyChecksum(), ExpectedChecksum(keys));

  std::map<uint32_t, uint64_t> want;
  for (uint32_t k : keys) ++want[k];
  for (const auto& [k, n] : want) {
    const ReadResult r = store.Read(k);
    EXPECT_EQ(r.matches, n) << "key " << k;
    EXPECT_GE(r.scanned, r.matches);
  }
  EXPECT_EQ(store.Read(0xdeadbeefu).matches, 0u);
}

TEST(StreamStoreTest, RejectsDummyKeys) {
  StreamStore store(StreamStoreConfig{});
  Tuple8 t;
  t.key = static_cast<uint32_t>(kDummyKey);
  t.payload = 0;
  EXPECT_FALSE(store.Ingest(&t, 1).ok());
}

TEST(StreamStoreTest, SplitPreservesEveryKey) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  cfg.buffer_tuples = 128;
  StreamStore store(cfg);

  const std::vector<uint32_t> keys = RandomKeys(4000, 11);
  IngestAll(&store, MakeTuples(keys));
  const uint64_t checksum = store.KeyChecksum();
  ASSERT_EQ(store.epoch(), 0u);
  ASSERT_EQ(store.num_buckets(), 4u);

  auto staged = store.PrepareSplit(/*pattern=*/1, /*depth=*/2);
  ASSERT_TRUE(staged.ok()) << staged.status().message();
  ASSERT_TRUE(store.Commit(std::move(staged).ValueUnsafe()).ok());

  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.num_buckets(), 5u);
  EXPECT_EQ(store.global_depth(), 3u);  // directory doubled
  EXPECT_EQ(store.total_tuples(), keys.size());
  EXPECT_EQ(store.KeyChecksum(), checksum);

  std::map<uint32_t, uint64_t> want;
  for (uint32_t k : keys) ++want[k];
  for (const auto& [k, n] : want) {
    EXPECT_EQ(store.Read(k).matches, n) << "key " << k;
  }
  ASSERT_EQ(store.FlipLog().size(), 1u);
  EXPECT_TRUE(store.FlipLog()[0].split);
  EXPECT_EQ(store.FlipLog()[0].pattern, 1u);
}

TEST(StreamStoreTest, MergePreservesEveryKeyAndShrinksDirectory) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 3;
  cfg.min_depth = 2;
  cfg.buffer_tuples = 128;
  StreamStore store(cfg);

  const std::vector<uint32_t> keys = RandomKeys(3000, 13);
  IngestAll(&store, MakeTuples(keys));
  const uint64_t checksum = store.KeyChecksum();

  // Merge every buddy pair at depth 3: the directory shrinks to depth 2
  // once the last depth-3 bucket is gone.
  for (uint64_t parent = 0; parent < 4; ++parent) {
    auto staged = store.PrepareMerge(parent, /*child_depth=*/3);
    ASSERT_TRUE(staged.ok()) << staged.status().message();
    ASSERT_TRUE(store.Commit(std::move(staged).ValueUnsafe()).ok());
  }

  EXPECT_EQ(store.epoch(), 4u);
  EXPECT_EQ(store.num_buckets(), 4u);
  EXPECT_EQ(store.global_depth(), 2u);
  EXPECT_EQ(store.total_tuples(), keys.size());
  EXPECT_EQ(store.KeyChecksum(), checksum);

  std::map<uint32_t, uint64_t> want;
  for (uint32_t k : keys) ++want[k];
  for (const auto& [k, n] : want) {
    EXPECT_EQ(store.Read(k).matches, n) << "key " << k;
  }
}

TEST(StreamStoreTest, StaleCommitRejectedAndCounted) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  StreamStore store(cfg);
  IngestAll(&store, MakeTuples(RandomKeys(500, 17)));

  auto first = store.PrepareSplit(0, 2);
  auto second = store.PrepareSplit(0, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(store.Commit(std::move(first).ValueUnsafe()).ok());
  // The layout moved: the second rebuild's source bucket is gone.
  EXPECT_FALSE(store.Commit(std::move(second).ValueUnsafe()).ok());
  EXPECT_EQ(store.stale_commits(), 1u);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.total_tuples(), 500u);
}

TEST(StreamStoreTest, StaleCommitFailpointForcesTheStalePath) {
  // Fault injection: the forced-stale branch must behave exactly like a
  // real epoch race — typed error, counted, store layout untouched — and
  // the same staged rebuild pattern must succeed once the point disarms.
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();

  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  StreamStore store(cfg);
  IngestAll(&store, MakeTuples(RandomKeys(500, 29)));
  const uint64_t checksum = store.KeyChecksum();

  reg.Arm("stream.commit.stale", 1);
  auto staged = store.PrepareSplit(0, 2);
  ASSERT_TRUE(staged.ok());
  Status st = store.Commit(std::move(staged).ValueUnsafe());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(reg.fired("stream.commit.stale"), 1u);
  EXPECT_EQ(store.stale_commits(), 1u);
  // The rejected commit must not have flipped the layout or lost a key.
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.total_tuples(), 500u);
  EXPECT_EQ(store.KeyChecksum(), checksum);

  // Budget spent: a fresh prepare/commit cycle goes through.
  auto retry = store.PrepareSplit(0, 2);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(store.Commit(std::move(retry).ValueUnsafe()).ok());
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.KeyChecksum(), checksum);
  reg.ClearAll();
}

TEST(StreamStoreTest, IngestSurvivesForcedStaleCommits) {
  // Keep the failpoint armed across several cycles: every commit fails,
  // ingest keeps running, and after disarming the store repartitions
  // normally — the retry loop a production caller would run.
  auto& reg = FailpointRegistry::Global();
  reg.ClearAll();
  reg.Arm("stream.commit.stale", 3);

  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  StreamStore store(cfg);
  std::vector<uint32_t> all = RandomKeys(400, 31);
  IngestAll(&store, MakeTuples(all));
  for (int round = 0; round < 3; ++round) {
    auto staged = store.PrepareSplit(0, 2);
    ASSERT_TRUE(staged.ok());
    EXPECT_FALSE(store.Commit(std::move(staged).ValueUnsafe()).ok());
    const std::vector<uint32_t> more = RandomKeys(100, 100 + round);
    IngestAll(&store, MakeTuples(more));
    all.insert(all.end(), more.begin(), more.end());
  }
  EXPECT_EQ(store.stale_commits(), 3u);
  EXPECT_EQ(store.epoch(), 0u);
  auto staged = store.PrepareSplit(0, 2);
  ASSERT_TRUE(staged.ok());
  EXPECT_TRUE(store.Commit(std::move(staged).ValueUnsafe()).ok());
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.total_tuples(), all.size());
  EXPECT_EQ(store.KeyChecksum(), ExpectedChecksum(all));
  reg.ClearAll();
}

TEST(StreamStoreTest, CommitScattersTheDeltaIngestedAfterPrepare) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  cfg.buffer_tuples = 64;
  StreamStore store(cfg);

  const std::vector<uint32_t> before = RandomKeys(800, 19);
  IngestAll(&store, MakeTuples(before));

  auto staged = store.PrepareSplit(3, 2);
  ASSERT_TRUE(staged.ok());

  // Keys arriving between prepare and commit land in the old bucket and
  // must be carried across the flip by the delta scatter.
  const std::vector<uint32_t> delta = RandomKeys(800, 23);
  IngestAll(&store, MakeTuples(delta));
  ASSERT_TRUE(store.Commit(std::move(staged).ValueUnsafe()).ok());

  std::vector<uint32_t> all = before;
  all.insert(all.end(), delta.begin(), delta.end());
  EXPECT_EQ(store.total_tuples(), all.size());
  EXPECT_EQ(store.KeyChecksum(), ExpectedChecksum(all));
}

TEST(StreamStoreTest, SplitRespectsMaxDepth) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  cfg.max_depth = 2;
  StreamStore store(cfg);
  EXPECT_FALSE(store.PrepareSplit(0, 2).ok());
}

TEST(StreamStoreTest, MergeRespectsMinDepth) {
  StreamStoreConfig cfg;
  cfg.initial_depth = 2;
  cfg.min_depth = 2;
  StreamStore store(cfg);
  EXPECT_FALSE(store.PrepareMerge(0, 2).ok());
}

// -- Hot-spot detector ----------------------------------------------------

std::vector<StreamStore::BucketStat> FlatStats(size_t buckets,
                                               uint64_t tuples_each,
                                               uint32_t depth) {
  std::vector<StreamStore::BucketStat> stats(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    stats[i].pattern = i;
    stats[i].depth = depth;
    stats[i].tuples = tuples_each;
    stats[i].appended = tuples_each;
  }
  return stats;
}

TEST(HotspotDetectorTest, HysteresisSuppressesOscillation) {
  HotspotConfig cfg;
  cfg.hysteresis_ticks = 2;
  cfg.split_min_tuples = 64;
  HotspotDetector det(cfg);

  // Bucket 0 is hot on every *other* tick: the one-tick streak never
  // reaches the hysteresis bar, so nothing ever fires.
  for (int tick = 0; tick < 20; ++tick) {
    auto stats = FlatStats(4, 1000, 2);
    if (tick % 2 == 0) stats[0].tuples = 1 << 20;
    EXPECT_TRUE(det.Tick(stats).empty()) << "tick " << tick;
  }
  EXPECT_GT(det.suppressed_hysteresis(), 0u);
  EXPECT_EQ(det.split_decisions(), 0u);
  EXPECT_EQ(det.merge_decisions(), 0u);
}

TEST(HotspotDetectorTest, PersistentHotBucketSplitsExactlyOnceThenCoolsDown) {
  HotspotConfig cfg;
  cfg.hysteresis_ticks = 2;
  cfg.cooldown_ticks = 4;
  cfg.split_min_tuples = 64;
  HotspotDetector det(cfg);

  auto hot = FlatStats(4, 1000, 2);
  hot[0].tuples = 1 << 20;

  std::vector<int> fired_at;
  for (int tick = 0; tick < 12; ++tick) {
    const auto actions = det.Tick(hot);
    if (!actions.empty()) {
      ASSERT_EQ(actions.size(), 1u);
      EXPECT_TRUE(actions[0].split);
      EXPECT_EQ(actions[0].pattern, 0u);
      fired_at.push_back(tick);
    }
  }
  // First fire once the hysteresis streak is reached; refires (the stats
  // are frozen here, as if the split never applied) must be separated by
  // at least the cooldown — never back-to-back.
  ASSERT_FALSE(fired_at.empty());
  EXPECT_EQ(fired_at[0], cfg.hysteresis_ticks - 1);
  for (size_t i = 1; i < fired_at.size(); ++i) {
    EXPECT_GE(fired_at[i] - fired_at[i - 1], cfg.cooldown_ticks)
        << "ping-pong between fires " << i - 1 << " and " << i;
  }
  EXPECT_GT(det.suppressed_cooldown(), 0u);
}

TEST(HotspotDetectorTest, SplitChildrenAreNotMergeCandidates) {
  // The log2 band gap: a just-split bucket's children sit far above the
  // merge threshold, so applying the detector's own split never produces
  // a merge of the same range — the no-ping-pong property.
  HotspotConfig cfg;
  cfg.hysteresis_ticks = 1;
  cfg.cooldown_ticks = 0;  // even with damping off, the band gap holds
  cfg.split_min_tuples = 64;
  HotspotDetector det(cfg);

  auto stats = FlatStats(8, 4096, 3);
  stats[0].tuples = 1 << 16;
  for (int round = 0; round < 16; ++round) {
    const auto actions = det.Tick(stats);
    for (const RebalanceAction& act : actions) {
      ASSERT_TRUE(act.split)
          << "merge emitted for pattern " << act.pattern << " depth "
          << act.depth << " right after the range was split";
      // Apply the split: halve the bucket into its two children.
      for (auto& b : stats) {
        if (b.pattern == act.pattern && b.depth == act.depth) {
          StreamStore::BucketStat hi = b;
          b.depth++;
          b.tuples /= 2;
          b.appended /= 2;
          hi.depth = b.depth;
          hi.pattern |= uint64_t{1} << act.depth;
          hi.tuples = b.tuples;
          hi.appended = b.appended;
          stats.push_back(hi);
          break;
        }
      }
    }
  }
  EXPECT_GT(det.split_decisions(), 0u);
  EXPECT_EQ(det.merge_decisions(), 0u);
}

TEST(HotspotDetectorTest, ColdBuddiesMergeAndRespectMinDepth) {
  HotspotConfig cfg;
  cfg.hysteresis_ticks = 1;
  cfg.min_depth = 2;
  HotspotDetector det(cfg);

  // One huge bucket drags the mean up; the tiny depth-3 buddies qualify
  // for merging (the hot bucket itself may legitimately emit a split —
  // its pair (3,7) is not cold, so it is never merged).
  std::vector<StreamStore::BucketStat> stats = FlatStats(8, 4, 3);
  stats[7].tuples = 1 << 20;
  const auto actions = det.Tick(stats);
  ASSERT_FALSE(actions.empty());
  uint64_t merges = 0;
  for (const auto& act : actions) {
    if (act.split) {
      EXPECT_EQ(act.pattern, 7u);  // only the hot bucket splits
      continue;
    }
    ++merges;
    EXPECT_EQ(act.depth, 3u);
    EXPECT_LT(act.pattern, 4u);  // parent pattern at depth 2
    EXPECT_NE(act.pattern, 3u);  // the hot pair stays
  }
  EXPECT_GT(merges, 0u);

  // At min_depth, cold buckets must never emit merges.
  HotspotDetector det2(cfg);
  auto shallow = FlatStats(4, 4, 2);
  shallow[3].tuples = 1 << 20;
  for (const auto& act : det2.Tick(shallow)) EXPECT_TRUE(act.split);
}

// -- Deterministic replay --------------------------------------------------

// A miniature ext_stream: replay a fixed ingest stream through a
// deterministic scheduler + manager across `threads` clients and fold the
// observable outcome. Bit-equal results across thread counts is the
// replay guarantee the CI gate enforces on the full bench.
uint64_t ReplayFingerprint(size_t threads) {
  StreamStoreConfig scfg;
  scfg.initial_depth = 2;
  scfg.buffer_tuples = 128;
  StreamStore store(scfg);

  svc::SchedulerConfig sched_cfg;
  sched_cfg.num_workers = 2;
  sched_cfg.deterministic = true;
  sched_cfg.queue_capacity = 4096;
  svc::Scheduler scheduler(sched_cfg);

  RepartitionConfig mcfg;
  mcfg.deterministic = true;
  mcfg.tick_every_drains = 2;
  mcfg.flip_delay_ticks = 1;
  mcfg.detector.split_log2_delta = 1;
  mcfg.detector.split_min_tuples = 256;
  mcfg.detector.hysteresis_ticks = 2;
  RepartitionManager manager(&store, &scheduler, mcfg);

  // Skewed stream: one hot bucket emerges and is split mid-replay.
  ZipfSampler zipf(64, 1.3, 99);
  std::vector<std::vector<Tuple8>> batches(120);
  for (auto& b : batches) {
    std::vector<uint32_t> keys(64);
    for (auto& k : keys) k = static_cast<uint32_t>(zipf.Next());
    b = MakeTuples(keys);
  }

  stream::OpSequencer seq;
  // One OnDrain per completed drain, issued inside the sequenced region:
  // the cadence (and thus every tick and flip) is identical regardless of
  // which client thread happens to execute which op.
  uint64_t acked_drains = 0;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = c; i < batches.size(); i += threads) {
        seq.Enter(i);
        EXPECT_TRUE(store.Ingest(batches[i].data(), batches[i].size()).ok());
        for (const uint64_t drains = store.drains(); acked_drains < drains;
             ++acked_drains) {
          manager.OnDrain();
        }
        seq.Exit();
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_TRUE(store.Flush().ok());
  manager.Quiesce();
  scheduler.Shutdown();

  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& f : store.FlipLog()) {
    fold(f.epoch);
    fold(f.split ? 1 : 0);
    fold(f.pattern);
    fold(f.depth);
    fold(f.watermark);
  }
  fold(store.KeyChecksum());
  fold(store.total_tuples());
  fold(store.epoch());
  fold(store.global_depth());
  EXPECT_GT(store.epoch(), 0u) << "replay produced no flips to compare";
  return h;
}

TEST(StreamReplayTest, FingerprintStableAcrossThreadCounts) {
  const uint64_t h1 = ReplayFingerprint(1);
  const uint64_t h3 = ReplayFingerprint(3);
  EXPECT_EQ(h1, h3);
}

// -- kRebalance through the svc scheduler ---------------------------------

TEST(StreamSvcTest, RebalanceJobRunsOnCpuBackend) {
  svc::SchedulerConfig cfg;
  cfg.num_workers = 2;
  svc::Scheduler scheduler(cfg);

  std::atomic<bool> ran{false};
  svc::RebalanceJobSpec spec;
  spec.cost_tuples = 10000;
  spec.work = [&ran](const std::atomic<bool>*) -> Status {
    ran.store(true);
    return Status::OK();
  };
  auto handle = scheduler.Submit(spec);
  ASSERT_TRUE(handle.ok());
  const svc::JobOutcome& out = handle.ValueOrDie().Wait();
  EXPECT_EQ(out.state, svc::JobState::kCompleted);
  EXPECT_EQ(out.backend, svc::Backend::kCpu);
  EXPECT_TRUE(ran.load());
  scheduler.Shutdown();
}

TEST(StreamSvcTest, RebalanceJobRequiresWork) {
  svc::Scheduler scheduler(svc::SchedulerConfig{});
  EXPECT_FALSE(scheduler.Submit(svc::RebalanceJobSpec{}).ok());
  scheduler.Shutdown();
}

TEST(StreamSvcTest, PlacementErrorHistogramRecords) {
  obs::Histogram* hist = obs::Registry::Global().GetHistogram(
      "svc.place.err_pct.cpu.small", "pct",
      "abs(run-estimate)/run placement error");
  const uint64_t before = hist->Merged().count;

  auto rel = GenerateRawRelation(4096, KeyDistribution::kRandom, 5);
  ASSERT_TRUE(rel.ok());
  const Relation<Tuple8> input = std::move(rel).ValueUnsafe();

  svc::SchedulerConfig cfg;
  cfg.num_workers = 1;
  svc::Scheduler scheduler(cfg);
  svc::PartitionJobSpec spec;
  spec.input = &input;
  spec.request.fanout = 64;
  svc::JobOptions opts;
  opts.pinned = svc::Backend::kCpu;
  auto handle = scheduler.Submit(spec, opts);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle.ValueOrDie().Wait().state, svc::JobState::kCompleted);
  scheduler.Shutdown();

  EXPECT_GT(hist->Merged().count, before);
}

// -- Manager end to end ----------------------------------------------------

TEST(RepartitionManagerTest, SplitsHotBucketLive) {
  StreamStoreConfig scfg;
  scfg.initial_depth = 2;
  scfg.buffer_tuples = 256;
  StreamStore store(scfg);

  svc::SchedulerConfig sched_cfg;
  sched_cfg.num_workers = 2;
  svc::Scheduler scheduler(sched_cfg);

  RepartitionConfig mcfg;
  mcfg.tick_every_drains = 1;
  mcfg.detector.split_log2_delta = 1;
  mcfg.detector.split_min_tuples = 256;
  mcfg.detector.hysteresis_ticks = 1;
  RepartitionManager manager(&store, &scheduler, mcfg);

  // All keys identical: one bucket takes everything.
  std::vector<uint32_t> keys(6000, 12345);
  // Plus a sprinkle elsewhere so the mean stays low.
  for (uint32_t k = 0; k < 64; ++k) keys.push_back(k);
  const auto tuples = MakeTuples(keys);
  uint64_t acked = 0;
  for (size_t off = 0; off < tuples.size(); off += 200) {
    const size_t n = std::min<size_t>(200, tuples.size() - off);
    ASSERT_TRUE(store.Ingest(tuples.data() + off, n).ok());
    for (const uint64_t drains = store.drains(); acked < drains; ++acked) {
      manager.OnDrain();
    }
  }
  ASSERT_TRUE(store.Flush().ok());
  manager.Quiesce();
  scheduler.Shutdown();

  EXPECT_GT(manager.jobs_submitted(), 0u);
  EXPECT_GT(store.epoch(), 0u);
  EXPECT_EQ(store.total_tuples(), keys.size());
  EXPECT_EQ(store.KeyChecksum(), ExpectedChecksum(keys));
  EXPECT_EQ(store.Read(12345).matches, 6000u);
}

// -- Concurrency stress (the check.sh tsan target) -------------------------

TEST(StreamStressTest, RacedIngestReadRepartitionLosesNothing) {
  StreamStoreConfig scfg;
  scfg.initial_depth = 3;
  scfg.buffer_tuples = 256;
  StreamStore store(scfg);

  constexpr size_t kWriters = 2;
  constexpr size_t kBatches = 60;
  constexpr size_t kBatch = 128;

  std::vector<std::vector<Tuple8>> batches(kWriters * kBatches);
  std::vector<uint32_t> all_keys;
  for (size_t i = 0; i < batches.size(); ++i) {
    auto keys = RandomKeys(kBatch, 1000 + i, 1 << 12);
    batches[i] = MakeTuples(keys);
    all_keys.insert(all_keys.end(), keys.begin(), keys.end());
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> epoch_regressions{0};

  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t b = 0; b < kBatches; ++b) {
        const auto& batch = batches[w * kBatches + b];
        ASSERT_TRUE(store.Ingest(batch.data(), batch.size()).ok());
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(77 + r);
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ReadResult res =
            store.Read(static_cast<uint32_t>(rng.Below(1 << 12)));
        if (res.epoch < last_epoch) epoch_regressions.fetch_add(1);
        last_epoch = std::max(last_epoch, res.epoch);
      }
    });
  }
  threads.emplace_back([&] {
    // Repartitioner: alternately split the currently largest bucket and
    // merge the smallest buddy pair, racing the writers and readers.
    Rng rng(5);
    while (!done.load(std::memory_order_acquire)) {
      auto stats = store.Stats(/*reset_appended=*/false);
      if (stats.empty()) continue;
      const auto hot = std::max_element(
          stats.begin(), stats.end(),
          [](const auto& a, const auto& b) { return a.tuples < b.tuples; });
      if (rng.Below(2) == 0 && hot->depth < scfg.max_depth) {
        auto staged = store.PrepareSplit(hot->pattern, hot->depth);
        if (staged.ok()) {
          (void)store.Commit(std::move(staged).ValueUnsafe());
        }
      } else {
        for (const auto& s : stats) {
          if (s.depth > scfg.min_depth &&
              (s.pattern & (uint64_t{1} << (s.depth - 1))) == 0) {
            auto staged = store.PrepareMerge(
                s.pattern & ((uint64_t{1} << (s.depth - 1)) - 1), s.depth);
            if (staged.ok()) {
              (void)store.Commit(std::move(staged).ValueUnsafe());
              break;
            }
          }
        }
      }
    }
  });

  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  ASSERT_TRUE(store.Flush().ok());
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(epoch_regressions.load(), 0u);
  EXPECT_EQ(store.total_tuples(), all_keys.size());
  EXPECT_EQ(store.KeyChecksum(), ExpectedChecksum(all_keys));
}

// -- Drifting Zipf ---------------------------------------------------------

TEST(DriftingZipfTest, SameScheduleSameSequence) {
  ZipfDriftSchedule sched;
  sched.theta0 = 0.4;
  sched.theta1 = 1.3;
  sched.shift_start = 100;
  sched.shift_end = 400;
  sched.rotate_every = 250;
  sched.seed = 7;
  DriftingZipfSampler a(1000, sched);
  DriftingZipfSampler b(1000, sched);
  for (uint64_t t = 0; t < 600; ++t) {
    EXPECT_EQ(a.NextAt(t), b.NextAt(t)) << "t=" << t;
  }
}

TEST(DriftingZipfTest, ThetaRampIsMonotoneAndClamped) {
  ZipfDriftSchedule sched;
  sched.theta0 = 0.5;
  sched.theta1 = 1.2;
  sched.shift_start = 1000;
  sched.shift_end = 2000;
  DriftingZipfSampler s(100, sched);
  EXPECT_DOUBLE_EQ(s.ThetaAt(0), 0.5);
  EXPECT_DOUBLE_EQ(s.ThetaAt(999), 0.5);
  EXPECT_DOUBLE_EQ(s.ThetaAt(2000), 1.2);
  EXPECT_DOUBLE_EQ(s.ThetaAt(1u << 20), 1.2);
  double prev = 0.0;
  for (uint64_t t = 1000; t < 2000; t += 50) {
    const double th = s.ThetaAt(t);
    EXPECT_GE(th, prev);
    EXPECT_GE(th, 0.5);
    EXPECT_LE(th, 1.2);
    prev = th;
  }
  EXPECT_GT(prev, 0.5);
}

TEST(DriftingZipfTest, ShiftSharpensTheHotKey) {
  ZipfDriftSchedule sched;
  sched.theta0 = 0.1;
  sched.theta1 = 1.4;
  sched.shift_start = 2000;
  sched.shift_end = 2001;  // step
  sched.seed = 3;
  DriftingZipfSampler s(256, sched);

  auto top_share = [&](uint64_t t0, uint64_t n) {
    std::map<uint64_t, uint64_t> freq;
    for (uint64_t t = t0; t < t0 + n; ++t) ++freq[s.NextAt(t)];
    uint64_t best = 0;
    for (const auto& [k, c] : freq) best = std::max(best, c);
    return static_cast<double>(best) / static_cast<double>(n);
  };
  const double before = top_share(0, 2000);
  const double after = top_share(2001, 2000);
  EXPECT_GT(after, before * 2.0);
}

TEST(DriftingZipfTest, RotationMovesTheHotKey) {
  ZipfDriftSchedule sched;
  sched.theta0 = 1.5;
  sched.theta1 = 1.5;
  sched.rotate_every = 1000;
  sched.seed = 11;
  DriftingZipfSampler s(4096, sched);
  EXPECT_EQ(s.GenerationAt(999), 0u);
  EXPECT_EQ(s.GenerationAt(1000), 1u);

  auto mode_of = [&](uint64_t t0) {
    std::map<uint64_t, uint64_t> freq;
    for (uint64_t t = t0; t < t0 + 800; ++t) ++freq[s.NextAt(t)];
    uint64_t mode = 0, best = 0;
    for (const auto& [k, c] : freq) {
      if (c > best) {
        best = c;
        mode = k;
      }
    }
    return mode;
  };
  EXPECT_NE(mode_of(0), mode_of(1000));
}

TEST(DriftingZipfTest, NextUsesInternalClock) {
  ZipfDriftSchedule sched;
  sched.seed = 21;
  DriftingZipfSampler a(100, sched);
  DriftingZipfSampler b(100, sched);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Next(), b.NextAt(static_cast<uint64_t>(i)));
  }
}

TEST(OpSequencerTest, EnforcesGlobalOrderAcrossThreads) {
  stream::OpSequencer seq;
  constexpr uint64_t kOps = 500;
  constexpr size_t kThreads = 4;
  std::vector<uint64_t> order;
  order.reserve(kOps);
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kThreads; ++c) {
    threads.emplace_back([&, c] {
      for (uint64_t i = c; i < kOps; i += kThreads) {
        seq.Enter(i);
        order.push_back(i);  // safe: the sequencer serializes
        seq.Exit();
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), kOps);
  for (uint64_t i = 0; i < kOps; ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace fpart
