// Tests of the FPGA partitioner circuit (Section 4): functional
// equivalence with a reference partitioner across all modes, tuple widths
// and fan-outs; the no-internal-stall property; PAD overflow detection;
// VRID semantics; and throughput against the analytical model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "datagen/relation.h"
#include "datagen/tuple.h"
#include "datagen/workloads.h"
#include "datagen/zipf.h"
#include "fpga/partitioner.h"
#include "fpga/resource_model.h"
#include "model/cost_model.h"

namespace fpart {
namespace {

// Reference partition contents: multiset of (key, payload-id) per partition.
template <typename T>
std::vector<std::vector<std::pair<uint64_t, uint64_t>>> ReferencePartitions(
    const PartitionFn& fn, const T* tuples, size_t n) {
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> parts(fn.fanout());
  for (size_t i = 0; i < n; ++i) {
    uint32_t p;
    if constexpr (sizeof(tuples[i].key) == 4) {
      p = fn(tuples[i].key);
    } else {
      p = fn.Apply64(tuples[i].key);
    }
    parts[p].emplace_back(tuples[i].key, GetPayloadId(tuples[i]));
  }
  for (auto& part : parts) std::sort(part.begin(), part.end());
  return parts;
}

// Actual partition contents from the circuit's output, skipping dummies.
template <typename T>
std::vector<std::vector<std::pair<uint64_t, uint64_t>>> CollectPartitions(
    const PartitionedOutput<T>& out) {
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> parts(
      out.num_partitions());
  for (size_t p = 0; p < out.num_partitions(); ++p) {
    const T* data = out.partition_data(p);
    size_t real = 0;
    for (size_t i = 0; i < out.partition_slots(p); ++i) {
      if (IsDummy(data[i])) continue;
      parts[p].emplace_back(data[i].key, GetPayloadId(data[i]));
      ++real;
    }
    EXPECT_EQ(real, out.part(p).num_tuples) << "partition " << p;
    std::sort(parts[p].begin(), parts[p].end());
  }
  return parts;
}

template <typename T>
Relation<T> MakeRelation(size_t n, uint64_t seed) {
  auto rel = Relation<T>::Allocate(n);
  EXPECT_TRUE(rel.ok());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    T t{};
    TupleTraits<T>::SetKey(&t, rng.Next() & 0x7fffffffu);  // never dummy
    SetPayloadId(&t, i);
    (*rel)[i] = t;
  }
  return std::move(*rel);
}

template <typename T>
void ExpectEquivalent(const FpgaRunResult<T>& run, const PartitionFn& fn,
                      const T* tuples, size_t n) {
  auto expected = ReferencePartitions(fn, tuples, n);
  auto actual = CollectPartitions(run.output);
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t p = 0; p < expected.size(); ++p) {
    ASSERT_EQ(expected[p], actual[p]) << "partition " << p;
  }
  EXPECT_EQ(run.output.total_tuples(), n);
  EXPECT_EQ(run.stats.internal_stall_cycles, 0u);
}

// ---------------------------------------------------------------------------
// Parameterized functional sweep: (mode, hash, fanout).
struct SweepParam {
  OutputMode mode;
  HashMethod hash;
  uint32_t fanout;
};

class FpgaSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FpgaSweepTest, Tuple8MatchesReference) {
  const SweepParam param = GetParam();
  FpgaPartitionerConfig config;
  config.fanout = param.fanout;
  config.output_mode = param.mode;
  config.hash = param.hash;
  // Generous padding: at fanout 1024 a 20k-tuple input has only ~20 tuples
  // per partition, where natural imbalance exceeds the default 50 %.
  config.pad_fraction = 2.0;
  auto rel = MakeRelation<Tuple8>(20000, 42);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(param.hash, param.fanout);
  ExpectEquivalent(*run, fn, rel.data(), rel.size());
}

INSTANTIATE_TEST_SUITE_P(
    ModesHashesFanouts, FpgaSweepTest,
    ::testing::Values(
        SweepParam{OutputMode::kPad, HashMethod::kMurmur, 16},
        SweepParam{OutputMode::kPad, HashMethod::kMurmur, 64},
        SweepParam{OutputMode::kPad, HashMethod::kMurmur, 1024},
        SweepParam{OutputMode::kPad, HashMethod::kRadix, 64},
        SweepParam{OutputMode::kPad, HashMethod::kRadix, 1024},
        SweepParam{OutputMode::kHist, HashMethod::kMurmur, 16},
        SweepParam{OutputMode::kHist, HashMethod::kMurmur, 1024},
        SweepParam{OutputMode::kHist, HashMethod::kRadix, 64},
        SweepParam{OutputMode::kHist, HashMethod::kCrc32, 64},
        SweepParam{OutputMode::kPad, HashMethod::kMultiplicative, 64}),
    [](const auto& info) {
      return std::string(OutputModeName(info.param.mode)) + "_" +
             HashMethodName(info.param.hash) + "_" +
             std::to_string(info.param.fanout);
    });

// ---------------------------------------------------------------------------
// Every tuple width (Section 4.4).
template <typename T>
class FpgaWidthTest : public ::testing::Test {};
using AllWidths = ::testing::Types<Tuple8, Tuple16, Tuple32, Tuple64>;
TYPED_TEST_SUITE(FpgaWidthTest, AllWidths);

TYPED_TEST(FpgaWidthTest, PadRidMatchesReference) {
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.output_mode = OutputMode::kPad;
  auto rel = MakeRelation<TypeParam>(6000, 7);
  FpgaPartitioner<TypeParam> part(config);
  auto run = part.Partition(rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectEquivalent(*run, fn, rel.data(), rel.size());
}

TYPED_TEST(FpgaWidthTest, HistRidMatchesReference) {
  FpgaPartitionerConfig config;
  config.fanout = 32;
  config.output_mode = OutputMode::kHist;
  auto rel = MakeRelation<TypeParam>(4000, 11);
  FpgaPartitioner<TypeParam> part(config);
  auto run = part.Partition(rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectEquivalent(*run, fn, rel.data(), rel.size());
  // HIST histograms are exact.
  ASSERT_EQ(run->histogram.size(), config.fanout);
  auto expected = ReferencePartitions(fn, rel.data(), rel.size());
  for (uint32_t p = 0; p < config.fanout; ++p) {
    EXPECT_EQ(run->histogram[p], expected[p].size()) << p;
  }
}

// ---------------------------------------------------------------------------
// Edge cases.
TEST(FpgaPartitionerTest, EmptyInput) {
  FpgaPartitionerConfig config;
  config.fanout = 16;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(nullptr, 0);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.total_tuples(), 0u);
}

TEST(FpgaPartitionerTest, NonCacheLineMultipleInput) {
  FpgaPartitionerConfig config;
  config.fanout = 16;
  auto rel = MakeRelation<Tuple8>(1003, 3);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  PartitionFn fn(config.hash, config.fanout);
  ExpectEquivalent(*run, fn, rel.data(), rel.size());
}

TEST(FpgaPartitionerTest, FanoutOne) {
  FpgaPartitionerConfig config;
  config.fanout = 1;
  auto rel = MakeRelation<Tuple8>(500, 3);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), rel.size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.part(0).num_tuples, 500u);
}

TEST(FpgaPartitionerTest, RejectsNonPowerOfTwoFanout) {
  FpgaPartitionerConfig config;
  config.fanout = 100;
  auto rel = MakeRelation<Tuple8>(64, 3);
  FpgaPartitioner<Tuple8> part(config);
  EXPECT_FALSE(part.Partition(rel.data(), rel.size()).ok());
}

TEST(FpgaPartitionerTest, RejectsOversizedFanout) {
  FpgaPartitionerConfig config;
  config.fanout = 16384;  // beyond the BRAM budget
  auto rel = MakeRelation<Tuple8>(64, 3);
  FpgaPartitioner<Tuple8> part(config);
  EXPECT_FALSE(part.Partition(rel.data(), rel.size()).ok());
}

TEST(FpgaPartitionerTest, LayoutModeMismatchErrors) {
  FpgaPartitionerConfig config;
  config.layout = LayoutMode::kVrid;
  auto rel = MakeRelation<Tuple8>(64, 3);
  FpgaPartitioner<Tuple8> part(config);
  EXPECT_FALSE(part.Partition(rel.data(), rel.size()).ok());
  config.layout = LayoutMode::kRid;
  FpgaPartitioner<Tuple8> part2(config);
  std::vector<uint32_t> keys(64, 1);
  EXPECT_FALSE(part2.PartitionColumn(keys.data(), keys.size()).ok());
}

// ---------------------------------------------------------------------------
// Skew handling (Section 5.4).
TEST(FpgaPartitionerTest, PadOverflowsUnderHeavySkew) {
  FpgaPartitionerConfig config;
  config.fanout = 16;
  config.output_mode = OutputMode::kPad;
  config.hash = HashMethod::kRadix;
  config.pad_fraction = 0.5;
  auto rel = Relation<Tuple8>::Allocate(10000);
  ASSERT_TRUE(rel.ok());
  for (size_t i = 0; i < rel->size(); ++i) {
    (*rel)[i] = Tuple8{16, static_cast<uint32_t>(i)};  // all → partition 0
  }
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel->data(), rel->size());
  ASSERT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsPartitionOverflow())
      << run.status().ToString();
}

TEST(FpgaPartitionerTest, HistHandlesSameSkewPadCannot) {
  FpgaPartitionerConfig config;
  config.fanout = 16;
  config.output_mode = OutputMode::kHist;
  config.hash = HashMethod::kRadix;
  auto rel = Relation<Tuple8>::Allocate(10000);
  ASSERT_TRUE(rel.ok());
  for (size_t i = 0; i < rel->size(); ++i) {
    (*rel)[i] = Tuple8{16, static_cast<uint32_t>(i)};
  }
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel->data(), rel->size());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.part(0).num_tuples, 10000u);
  EXPECT_EQ(run->histogram[0], 10000u);
}

TEST(FpgaPartitionerTest, LargerPaddingToleratesMoreSkew) {
  auto make_skewed = [] {
    auto rel = Relation<Tuple8>::Allocate(8000);
    EXPECT_TRUE(rel.ok());
    ZipfSampler zipf(1 << 20, 0.5, 9);
    for (size_t i = 0; i < rel->size(); ++i) {
      (*rel)[i] = Tuple8{static_cast<uint32_t>(zipf.Next()),
                         static_cast<uint32_t>(i)};
    }
    return std::move(*rel);
  };
  Relation<Tuple8> rel = make_skewed();
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.hash = HashMethod::kMurmur;
  config.output_mode = OutputMode::kPad;
  config.pad_fraction = 0.05;
  FpgaPartitioner<Tuple8> tight(config);
  auto tight_run = tight.Partition(rel.data(), rel.size());
  config.pad_fraction = 8.0;
  FpgaPartitioner<Tuple8> loose(config);
  auto loose_run = loose.Partition(rel.data(), rel.size());
  ASSERT_TRUE(loose_run.ok()) << loose_run.status().ToString();
  // The tight padding may or may not survive this Zipf draw; the loose one
  // must. If tight failed, it must have failed with the overflow code.
  if (!tight_run.ok()) {
    EXPECT_TRUE(tight_run.status().IsPartitionOverflow());
  }
}

// ---------------------------------------------------------------------------
// VRID mode (Section 4.5): payloads are virtual record ids.
TEST(FpgaPartitionerTest, VridAppendsRecordIds) {
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.layout = LayoutMode::kVrid;
  config.output_mode = OutputMode::kPad;
  const size_t n = 10000;
  std::vector<uint32_t> keys(n);
  Rng rng(5);
  for (auto& k : keys) k = rng.Next32() & 0x7fffffffu;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.PartitionColumn(keys.data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->output.total_tuples(), n);
  // Every output tuple must be <keys[vrid], vrid>.
  PartitionFn fn(config.hash, config.fanout);
  size_t seen = 0;
  for (size_t p = 0; p < run->output.num_partitions(); ++p) {
    const Tuple8* data = run->output.partition_data(p);
    for (size_t i = 0; i < run->output.partition_slots(p); ++i) {
      if (IsDummy(data[i])) continue;
      ASSERT_LT(data[i].payload, n);
      EXPECT_EQ(data[i].key, keys[data[i].payload]);
      EXPECT_EQ(fn(data[i].key), p);
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

TEST(FpgaPartitionerTest, VridReadsHalfTheLines) {
  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.output_mode = OutputMode::kPad;
  const size_t n = 16384;
  auto rel = MakeRelation<Tuple8>(n, 13);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = rel[i].key;

  config.layout = LayoutMode::kRid;
  FpgaPartitioner<Tuple8> rid(config);
  auto rid_run = rid.Partition(rel.data(), n);
  ASSERT_TRUE(rid_run.ok());

  config.layout = LayoutMode::kVrid;
  FpgaPartitioner<Tuple8> vrid(config);
  auto vrid_run = vrid.PartitionColumn(keys.data(), n);
  ASSERT_TRUE(vrid_run.ok());

  EXPECT_EQ(rid_run->stats.read_lines, n / 8);
  EXPECT_EQ(vrid_run->stats.read_lines, n / 16);
  // Halving the read traffic raises end-to-end throughput (Section 4.7).
  EXPECT_GT(vrid_run->mtuples_per_sec, rid_run->mtuples_per_sec);
}

// ---------------------------------------------------------------------------
// The forwarding ablation: the stalling circuit is slower on
// same-partition runs but produces identical output.
TEST(FpgaPartitionerTest, StallPolicyCorrectButSlower) {
  FpgaPartitionerConfig config;
  config.fanout = 16;
  config.hash = HashMethod::kRadix;
  config.output_mode = OutputMode::kPad;
  config.link = LinkKind::kRawWrapper;  // expose the circuit, not the link
  auto rel = Relation<Tuple8>::Allocate(20000);
  ASSERT_TRUE(rel.ok());
  // Long same-partition runs: the worst case for a stalling pipeline.
  for (size_t i = 0; i < rel->size(); ++i) {
    (*rel)[i] = Tuple8{static_cast<uint32_t>((i / 64) % 16),
                       static_cast<uint32_t>(i)};
  }
  config.pad_fraction = 2.0;
  PartitionFn fn(config.hash, config.fanout);

  FpgaPartitioner<Tuple8> forward(config);
  auto fwd = forward.Partition(rel->data(), rel->size());
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  EXPECT_EQ(fwd->stats.internal_stall_cycles, 0u);

  FpgaPartitioner<Tuple8> stall(config);
  stall.set_hazard_policy(HazardPolicy::kStall);
  auto stl = stall.Partition(rel->data(), rel->size());
  ASSERT_TRUE(stl.ok()) << stl.status().ToString();
  EXPECT_GT(stl->stats.internal_stall_cycles, 0u);
  EXPECT_GT(stl->stats.cycles, fwd->stats.cycles);

  // Same functional result either way.
  auto a = CollectPartitions(fwd->output);
  auto b = CollectPartitions(stl->output);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Throughput: the simulated circuit reproduces the analytical model.
TEST(FpgaPartitionerTest, RawWrapperReachesCircuitRate) {
  // PAD/RID on the 25.6 GB/s wrapper: one cache line per cycle
  // ⇒ 1.6e9 tuples/s for 8 B tuples (Section 4.7).
  FpgaPartitionerConfig config;
  config.fanout = 256;
  config.output_mode = OutputMode::kPad;
  config.link = LinkKind::kRawWrapper;
  const size_t n = 1 << 21;
  auto rel = MakeRelation<Tuple8>(n, 21);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->mtuples_per_sec, 1450.0);
  EXPECT_LE(run->mtuples_per_sec, 1650.0);
}

TEST(FpgaPartitionerTest, HistHalvesRawThroughput) {
  FpgaPartitionerConfig config;
  config.fanout = 256;
  config.output_mode = OutputMode::kHist;
  config.link = LinkKind::kRawWrapper;
  const size_t n = 1 << 21;
  auto rel = MakeRelation<Tuple8>(n, 22);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->mtuples_per_sec, 720.0);
  EXPECT_LT(run->mtuples_per_sec, 830.0);
}

TEST(FpgaPartitionerTest, QpiBoundThroughputNearModel) {
  FpgaPartitionerConfig config;
  config.fanout = 1024;
  config.output_mode = OutputMode::kPad;
  config.link = LinkKind::kXeonFpga;
  const size_t n = 1 << 21;
  auto rel = MakeRelation<Tuple8>(n, 23);
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel.data(), n);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  FpgaCostModel model(8, config.fanout);
  double predicted = model.TotalRateTuplesPerSec(
      n, config.output_mode, config.layout, config.link);
  EXPECT_NEAR(run->mtuples_per_sec * 1e6, predicted, predicted * 0.12);
}

TEST(FpgaPartitionerTest, ObservedReadWriteRatioMatchesMode) {
  const size_t n = 1 << 20;
  auto rel = MakeRelation<Tuple8>(n, 31);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = rel[i].key;

  auto ratio = [&](OutputMode mode, LayoutMode layout) {
    FpgaPartitionerConfig config;
    config.fanout = 256;
    config.output_mode = mode;
    config.layout = layout;
    FpgaPartitioner<Tuple8> part(config);
    auto run = layout == LayoutMode::kVrid
                   ? part.PartitionColumn(keys.data(), n)
                   : part.Partition(rel.data(), n);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run->read_write_ratio;
  };
  // Section 4.8: r = 2 (HIST/RID), 1 (HIST/VRID, PAD/RID), 0.5 (PAD/VRID).
  EXPECT_NEAR(ratio(OutputMode::kHist, LayoutMode::kRid), 2.0, 0.1);
  EXPECT_NEAR(ratio(OutputMode::kHist, LayoutMode::kVrid), 1.0, 0.1);
  EXPECT_NEAR(ratio(OutputMode::kPad, LayoutMode::kRid), 1.0, 0.1);
  EXPECT_NEAR(ratio(OutputMode::kPad, LayoutMode::kVrid), 0.5, 0.1);
}

// ---------------------------------------------------------------------------
// Resource model (Table 2).
TEST(ResourceModelTest, ReproducesTable2) {
  struct Row {
    int width, logic, bram, dsp;
  };
  const Row table2[] = {
      {8, 37, 76, 14}, {16, 28, 42, 21}, {32, 27, 24, 11}, {64, 27, 15, 6}};
  for (const Row& row : table2) {
    ResourceUsage usage = EstimateResources(row.width, 8192);
    EXPECT_NEAR(usage.logic_pct, row.logic, 1.5) << "W=" << row.width;
    EXPECT_NEAR(usage.bram_pct, row.bram, 1.5) << "W=" << row.width;
    EXPECT_NEAR(usage.dsp_pct, row.dsp, 1.5) << "W=" << row.width;
  }
}

TEST(ResourceModelTest, BramScalesWithFanout) {
  EXPECT_LT(EstimateResources(8, 1024).bram_pct,
            EstimateResources(8, 8192).bram_pct);
}

}  // namespace
}  // namespace fpart
