// Parity tests pinning the batched SIMD hash kernels bit-exact against the
// scalar PartitionFn paths, over random and adversarial keys (0, ~0, the
// sign bit, the dummy sentinel). The dispatched ApplyBatch is compared on
// every host — on machines without AVX2 it exercises the scalar fallback
// and passes trivially; the raw AVX2 kernels are additionally pinned when
// the host supports them. FPART_SIMD=scalar forces the fallback on capable
// hosts (see scripts/check.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/cpu_features.h"
#include "common/rng.h"
#include "datagen/tuple.h"
#include "hash/hash_function.h"
#include "hash/simd_hash.h"

namespace fpart {
namespace {

std::vector<uint32_t> TestKeys32() {
  std::vector<uint32_t> keys = {
      0,          1,          2,          0x7fffffffU, 0x80000000U,
      0x80000001U, 0xfffffffeU, 0xffffffffU, 0xdeadbeefU,
      static_cast<uint32_t>(kDummyKey)};
  Rng rng(101);
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.Next32());
  return keys;
}

std::vector<uint64_t> TestKeys64() {
  std::vector<uint64_t> keys = {0,
                                1,
                                2,
                                0x7fffffffffffffffULL,
                                0x8000000000000000ULL,
                                0x8000000000000001ULL,
                                0xfffffffffffffffeULL,
                                ~uint64_t{0},
                                kDummyKey,
                                0x00000000ffffffffULL,
                                0xffffffff00000000ULL};
  Rng rng(103);
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.Next());
  return keys;
}

struct HashParam {
  HashMethod method;
  uint32_t fanout;
  int shift;
};

class SimdParityTest : public ::testing::TestWithParam<HashParam> {};

TEST_P(SimdParityTest, DispatchedBatch32MatchesScalar) {
  const HashParam param = GetParam();
  PartitionFn fn(param.method, param.fanout, param.shift);
  const auto keys = TestKeys32();
  std::vector<uint32_t> batch(keys.size(), ~uint32_t{0});
  fn.ApplyBatch(keys.data(), batch.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch[i], fn(keys[i])) << "key " << keys[i] << " at " << i;
    ASSERT_LT(batch[i], param.fanout);
  }
}

TEST_P(SimdParityTest, DispatchedBatch64MatchesScalar) {
  const HashParam param = GetParam();
  PartitionFn fn(param.method, param.fanout, param.shift);
  const auto keys = TestKeys64();
  std::vector<uint32_t> batch(keys.size(), ~uint32_t{0});
  fn.ApplyBatch64(keys.data(), batch.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch[i], fn.Apply64(keys[i])) << "key " << keys[i];
    ASSERT_LT(batch[i], param.fanout);
  }
}

#if defined(FPART_HAS_X86_SIMD_KERNELS)
// Pin the raw AVX2 kernels (bypassing dispatch) when the host has them, so
// the vector lanes are exercised even when FPART_SIMD forces the scalar
// fallback on the dispatched paths.
TEST_P(SimdParityTest, RawAvx2KernelsMatchScalar) {
  if (!SimdLevelAtLeast(DetectSimdLevel(), SimdLevel::kAvx2)) {
    GTEST_SKIP() << "host has no AVX2";
  }
  const HashParam param = GetParam();
  PartitionFn fn(param.method, param.fanout, param.shift);
  const int bits = fn.bits();
  const auto keys32 = TestKeys32();
  const auto keys64 = TestKeys64();
  std::vector<uint32_t> out32(keys32.size()), out64(keys64.size());
  switch (param.method) {
    case HashMethod::kRadix:
      simd::RadixBatch32Avx2(keys32.data(), out32.data(), keys32.size(), bits,
                             param.shift);
      simd::RadixBatch64Avx2(keys64.data(), out64.data(), keys64.size(), bits,
                             param.shift);
      break;
    case HashMethod::kMurmur:
      simd::MurmurBatch32Avx2(keys32.data(), out32.data(), keys32.size(),
                              bits, param.shift);
      simd::MurmurBatch64Avx2(keys64.data(), out64.data(), keys64.size(),
                              bits, param.shift);
      break;
    case HashMethod::kMultiplicative:
      simd::MultiplicativeBatch32Avx2(keys32.data(), out32.data(),
                                      keys32.size(), bits, param.shift);
      simd::MultiplicativeBatch64Avx2(keys64.data(), out64.data(),
                                      keys64.size(), bits, param.shift);
      break;
    case HashMethod::kCrc32:
      simd::Crc32Batch32Hw(keys32.data(), out32.data(), keys32.size(), bits,
                           param.shift);
      simd::Crc32Batch64Hw(keys64.data(), out64.data(), keys64.size(), bits,
                           param.shift);
      break;
    case HashMethod::kRange:
      GTEST_SKIP() << "range has no vector kernel";
  }
  for (size_t i = 0; i < keys32.size(); ++i) {
    ASSERT_EQ(out32[i], fn(keys32[i])) << "key " << keys32[i];
  }
  for (size_t i = 0; i < keys64.size(); ++i) {
    ASSERT_EQ(out64[i], fn.Apply64(keys64[i])) << "key " << keys64[i];
  }
}
// Same pinning for the raw AVX-512 kernels (CRC32-C is SSE4.2-only and
// already covered above).
TEST_P(SimdParityTest, RawAvx512KernelsMatchScalar) {
  if (!SimdLevelAtLeast(DetectSimdLevel(), SimdLevel::kAvx512)) {
    GTEST_SKIP() << "host has no AVX-512";
  }
  const HashParam param = GetParam();
  PartitionFn fn(param.method, param.fanout, param.shift);
  const int bits = fn.bits();
  const auto keys32 = TestKeys32();
  const auto keys64 = TestKeys64();
  std::vector<uint32_t> out32(keys32.size()), out64(keys64.size());
  switch (param.method) {
    case HashMethod::kRadix:
      simd::RadixBatch32Avx512(keys32.data(), out32.data(), keys32.size(),
                               bits, param.shift);
      simd::RadixBatch64Avx512(keys64.data(), out64.data(), keys64.size(),
                               bits, param.shift);
      break;
    case HashMethod::kMurmur:
      simd::MurmurBatch32Avx512(keys32.data(), out32.data(), keys32.size(),
                                bits, param.shift);
      simd::MurmurBatch64Avx512(keys64.data(), out64.data(), keys64.size(),
                                bits, param.shift);
      break;
    case HashMethod::kMultiplicative:
      simd::MultiplicativeBatch32Avx512(keys32.data(), out32.data(),
                                        keys32.size(), bits, param.shift);
      simd::MultiplicativeBatch64Avx512(keys64.data(), out64.data(),
                                        keys64.size(), bits, param.shift);
      break;
    case HashMethod::kCrc32:
    case HashMethod::kRange:
      GTEST_SKIP() << "no AVX-512 kernel for this method";
  }
  for (size_t i = 0; i < keys32.size(); ++i) {
    ASSERT_EQ(out32[i], fn(keys32[i])) << "key " << keys32[i];
  }
  for (size_t i = 0; i < keys64.size(); ++i) {
    ASSERT_EQ(out64[i], fn.Apply64(keys64[i])) << "key " << keys64[i];
  }
}

// The fused-path data-movement kernels: key extraction and index packing
// must be exact for every tail length.
TEST(SimdFusedKernelTest, GatherAndPackKernelsMatchScalar) {
  if (!SimdLevelAtLeast(DetectSimdLevel(), SimdLevel::kAvx2)) {
    GTEST_SKIP() << "host has no AVX2";
  }
  const bool avx512 = SimdLevelAtLeast(DetectSimdLevel(), SimdLevel::kAvx512);
  Rng rng(107);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{15},
                   size_t{31}, size_t{32}, size_t{33}, size_t{1000}}) {
    std::vector<Tuple8> t8(n);
    std::vector<Tuple16> t16(n);
    std::vector<uint32_t> pidx(n);
    for (size_t i = 0; i < n; ++i) {
      t8[i].key = rng.Next32();
      t16[i].key = rng.Next();
      pidx[i] = rng.Next32() & 0xffffU;
    }
    std::vector<uint32_t> k32(n + 1, 0xeeeeeeeeU);
    std::vector<uint64_t> k64(n + 1, 0xeeeeeeeeU);
    std::vector<uint16_t> i16(n + 1, 0xeeee);
    simd::GatherKeys32Stride8Avx2(t8.data(), k32.data(), n);
    simd::GatherKeys64Stride16Avx2(t16.data(), k64.data(), n);
    simd::PackIndex16Avx2(pidx.data(), i16.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(k32[i], t8[i].key) << "n=" << n << " i=" << i;
      ASSERT_EQ(k64[i], t16[i].key) << "n=" << n << " i=" << i;
      ASSERT_EQ(i16[i], static_cast<uint16_t>(pidx[i]));
    }
    ASSERT_EQ(k32[n], 0xeeeeeeeeU);
    ASSERT_EQ(i16[n], 0xeeee);
    if (avx512) {
      std::fill(k32.begin(), k32.end(), 0xeeeeeeeeU);
      std::fill(k64.begin(), k64.end(), 0xeeeeeeeeU);
      std::fill(i16.begin(), i16.end(), 0xeeee);
      simd::GatherKeys32Stride8Avx512(t8.data(), k32.data(), n);
      simd::GatherKeys64Stride16Avx512(t16.data(), k64.data(), n);
      simd::PackIndex16Avx512(pidx.data(), i16.data(), n);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(k32[i], t8[i].key) << "avx512 n=" << n << " i=" << i;
        ASSERT_EQ(k64[i], t16[i].key) << "avx512 n=" << n << " i=" << i;
        ASSERT_EQ(i16[i], static_cast<uint16_t>(pidx[i]));
      }
      ASSERT_EQ(k32[n], 0xeeeeeeeeU);
      ASSERT_EQ(i16[n], 0xeeee);
    }
  }
}
#endif  // FPART_HAS_X86_SIMD_KERNELS

INSTANTIATE_TEST_SUITE_P(
    MethodsAndFanouts, SimdParityTest,
    ::testing::Values(HashParam{HashMethod::kRadix, 64, 0},
                      HashParam{HashMethod::kRadix, 8192, 0},
                      HashParam{HashMethod::kRadix, 8192, 7},
                      HashParam{HashMethod::kMurmur, 64, 0},
                      HashParam{HashMethod::kMurmur, 8192, 0},
                      HashParam{HashMethod::kMurmur, 8192, 5},
                      HashParam{HashMethod::kMultiplicative, 8192, 0},
                      HashParam{HashMethod::kMultiplicative, 1024, 3},
                      HashParam{HashMethod::kCrc32, 8192, 0},
                      HashParam{HashMethod::kCrc32, 256, 4}),
    [](const auto& info) {
      return std::string(HashMethodName(info.param.method)) + "_f" +
             std::to_string(info.param.fanout) + "_s" +
             std::to_string(info.param.shift);
    });

TEST(SimdDispatchTest, RangeBatchMatchesScalarUpperBound) {
  PartitionFn fn = PartitionFn::Range({10, 20, 30, 40, 50, 60, 70});
  const auto keys = TestKeys64();
  std::vector<uint32_t> batch(keys.size());
  fn.ApplyBatch64(keys.data(), batch.data(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch[i], fn.Apply64(keys[i]));
  }
}

TEST(SimdDispatchTest, EmptyAndTailBatches) {
  PartitionFn fn(HashMethod::kMurmur, 8192);
  // n smaller than one vector, and n not a multiple of the lane count.
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{7}, size_t{9},
                   size_t{13}}) {
    std::vector<uint32_t> keys(n, 0xabcd1234U);
    std::vector<uint32_t> out(n + 1, 0xeeeeeeeeU);
    fn.ApplyBatch(keys.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], fn(keys[i]));
    ASSERT_EQ(out[n], 0xeeeeeeeeU) << "wrote past the batch";
  }
}

TEST(SimdDispatchTest, ActiveLevelNeverExceedsDetected) {
  ASSERT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectSimdLevel()));
}

}  // namespace
}  // namespace fpart
