// Circuit-level unit tests of the write combiner (Section 4.2, Code 4),
// driven cycle by cycle: hazard forwarding over 1 and 2 cycle distances,
// flush semantics, bank steering, the no-stall property, and randomized
// equivalence against a golden accumulator.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "fpga/write_combiner.h"

namespace fpart {
namespace {

// Drive a combiner with a fixed schedule of (cycle, hash) tuples; returns
// the emitted lines in order. Payload encodes the input sequence number.
struct Emitted {
  uint32_t partition;
  std::vector<uint32_t> payloads;  // real tuples only
};

template <typename T = Tuple8>
std::vector<Emitted> Drive(WriteCombiner<T>& comb,
                           const std::vector<std::optional<uint32_t>>& hashes,
                           uint32_t fanout, int drain_cycles = 64) {
  std::vector<Emitted> lines;
  auto pump_output = [&] {
    while (auto line = comb.output().Pop()) {
      Emitted e;
      e.partition = line->partition;
      for (int b = 0; b < line->kTuples; ++b) {
        if (!IsDummy(line->tuples[b])) {
          e.payloads.push_back(
              static_cast<uint32_t>(GetPayloadId(line->tuples[b])));
        }
      }
      lines.push_back(e);
    }
  };
  uint32_t seq = 0;
  for (const auto& h : hashes) {
    if (h.has_value()) {
      T t{};
      TupleTraits<T>::SetKey(&t, *h);  // key mirrors the partition
      SetPayloadId(&t, seq);
      comb.input().Push(HashedTuple<T>{*h, t});
      ++seq;
    }
    comb.Tick();
    pump_output();
  }
  for (int i = 0; i < drain_cycles; ++i) {
    comb.Tick();
    pump_output();
  }
  EXPECT_TRUE(comb.drained());
  for (uint32_t p = 0; p < fanout; ++p) {
    comb.FlushPartition(p);
    pump_output();
  }
  return lines;
}

TEST(WriteCombinerTest, EmitsFullLineAfterEightTuples) {
  WriteCombiner<Tuple8> comb(16, 16, 8);
  std::vector<std::optional<uint32_t>> input(8, 3u);
  auto lines = Drive(comb, input, 16);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].partition, 3u);
  EXPECT_EQ(lines[0].payloads, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6,
                                                      7}));
}

TEST(WriteCombinerTest, BackToBackSamePartitionUsesForwarding) {
  // 24 consecutive same-partition tuples: every fill-rate lookup after the
  // first two is a hazard; forwarding must keep the order intact.
  WriteCombiner<Tuple8> comb(4, 32, 16);
  std::vector<std::optional<uint32_t>> input(24, 1u);
  auto lines = Drive(comb, input, 4);
  ASSERT_EQ(lines.size(), 3u);
  for (int l = 0; l < 3; ++l) {
    ASSERT_EQ(lines[l].payloads.size(), 8u);
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(lines[l].payloads[b], static_cast<uint32_t>(l * 8 + b));
    }
  }
  EXPECT_EQ(comb.stall_cycles(), 0u);
}

TEST(WriteCombinerTest, HazardAtDistanceTwo) {
  // Pattern A B A B ...: the same-partition predecessor is 2 tuples away,
  // exercising the hash_2d forwarding path specifically.
  WriteCombiner<Tuple8> comb(4, 32, 16);
  std::vector<std::optional<uint32_t>> input;
  for (int i = 0; i < 16; ++i) input.push_back(i % 2 == 0 ? 0u : 1u);
  auto lines = Drive(comb, input, 4);
  ASSERT_EQ(lines.size(), 2u);
  // Partition 0 got even sequence numbers, partition 1 odd ones.
  for (const auto& line : lines) {
    ASSERT_EQ(line.payloads.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(line.payloads[i] % 2, line.partition);
      if (i > 0) EXPECT_EQ(line.payloads[i], line.payloads[i - 1] + 2);
    }
  }
}

TEST(WriteCombinerTest, BubblesBetweenSamePartitionTuples) {
  // Tuples separated by idle cycles: the BRAM value is current again and
  // forwarding must not fire incorrectly.
  WriteCombiner<Tuple8> comb(4, 32, 16);
  std::vector<std::optional<uint32_t>> input;
  for (int i = 0; i < 8; ++i) {
    input.push_back(2u);
    input.push_back(std::nullopt);
    input.push_back(std::nullopt);
    input.push_back(std::nullopt);
  }
  auto lines = Drive(comb, input, 4);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].payloads,
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(WriteCombinerTest, SingleBubbleGapExercisesMixedHazards) {
  // Tuple, bubble, tuple, bubble...: same-partition predecessors alternate
  // between forwarding (distance 2) and BRAM reads.
  WriteCombiner<Tuple8> comb(4, 32, 16);
  std::vector<std::optional<uint32_t>> input;
  for (int i = 0; i < 16; ++i) {
    input.push_back(3u);
    input.push_back(std::nullopt);
  }
  auto lines = Drive(comb, input, 4);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].payloads,
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(lines[1].payloads,
            (std::vector<uint32_t>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(WriteCombinerTest, FlushPadsPartialLinesWithDummies) {
  WriteCombiner<Tuple8> comb(8, 16, 8);
  std::vector<std::optional<uint32_t>> input(3, 5u);
  auto lines = Drive(comb, input, 8);
  ASSERT_EQ(lines.size(), 1u);  // flush line only
  EXPECT_EQ(lines[0].partition, 5u);
  EXPECT_EQ(lines[0].payloads, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(WriteCombinerTest, FlushReturnsDummyCountAndClearsFill) {
  WriteCombiner<Tuple8> comb(8, 16, 8);
  for (int i = 0; i < 3; ++i) {
    comb.input().Push(HashedTuple<Tuple8>{5, Tuple8{5, uint32_t(i)}});
  }
  for (int i = 0; i < 32; ++i) comb.Tick();
  EXPECT_EQ(comb.FlushPartition(4), -1);  // nothing pending there
  EXPECT_EQ(comb.FlushPartition(5), 5);   // 8 - 3 dummies
  EXPECT_EQ(comb.FlushPartition(5), -1);  // second flush finds it empty
}

TEST(WriteCombinerTest, SixtyFourByteTuplesPassThrough) {
  // K == 1: every tuple is a full cache line; no gathering needed.
  WriteCombiner<Tuple64> comb(8, 16, 8);
  std::vector<std::optional<uint32_t>> input = {1u, 2u, 1u, 7u};
  auto lines = Drive<Tuple64>(comb, input, 8);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].partition, 1u);
  EXPECT_EQ(lines[1].partition, 2u);
  EXPECT_EQ(lines[2].partition, 1u);
  EXPECT_EQ(lines[3].partition, 7u);
}

TEST(WriteCombinerTest, StallPolicyCountsHazardStalls) {
  WriteCombiner<Tuple8> comb(4, 64, 32, HazardPolicy::kStall);
  std::vector<std::optional<uint32_t>> input(16, 1u);
  auto lines = Drive(comb, input, 4, /*drain_cycles=*/128);
  EXPECT_GT(comb.stall_cycles(), 0u);
  // Output is still correct, just late.
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].payloads,
            (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

class WriteCombinerRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteCombinerRandomTest, MatchesGoldenAccumulator) {
  // Property: for any input pattern (random hashes, random bubbles), the
  // combiner emits exactly the input tuples, per partition in FIFO order,
  // with zero stalls and no FIFO overflow.
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const uint32_t fanout = 1u << (1 + rng.Below(6));  // 2..64
  WriteCombiner<Tuple8> comb(fanout, 32, 16);
  std::vector<std::optional<uint32_t>> input;
  std::map<uint32_t, std::vector<uint32_t>> golden;
  uint32_t seq = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.Below(100) < 70) {
      uint32_t h = static_cast<uint32_t>(rng.Below(fanout));
      input.push_back(h);
      golden[h].push_back(seq++);
    } else {
      input.push_back(std::nullopt);
    }
  }
  auto lines = Drive(comb, input, fanout, 128);
  EXPECT_EQ(comb.stall_cycles(), 0u);
  EXPECT_EQ(comb.lost_lines(), 0u);
  EXPECT_EQ(comb.alignment_errors(), 0u);
  std::map<uint32_t, std::vector<uint32_t>> actual;
  for (const auto& line : lines) {
    for (uint32_t payload : line.payloads) {
      actual[line.partition].push_back(payload);
    }
  }
  EXPECT_EQ(actual, golden) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteCombinerRandomTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace fpart
