// Cross-module integration tests: the unified core API, CPU-vs-FPGA
// partition equivalence, end-to-end hybrid pipelines on every workload,
// and the shared-memory addressing contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fpart.h"

namespace fpart {
namespace {

TEST(EngineApiTest, CpuAndFpgaProduceSamePartitionMultisets) {
  auto rel = GenerateUniqueRelation(30000, KeyDistribution::kRandom, 5);
  ASSERT_TRUE(rel.ok());

  PartitionRequest request;
  request.fanout = 128;
  request.hash = HashMethod::kMurmur;

  request.engine = Engine::kCpu;
  auto cpu = RunPartition(request, *rel);
  ASSERT_TRUE(cpu.ok()) << cpu.status().ToString();

  request.engine = Engine::kFpgaSim;
  request.output_mode = OutputMode::kHist;
  auto fpga = RunPartition(request, *rel);
  ASSERT_TRUE(fpga.ok()) << fpga.status().ToString();

  ASSERT_EQ(cpu->output.num_partitions(), fpga->output.num_partitions());
  for (size_t p = 0; p < cpu->output.num_partitions(); ++p) {
    ASSERT_EQ(cpu->output.part(p).num_tuples, fpga->output.part(p).num_tuples)
        << p;
    std::vector<uint32_t> a, b;
    const Tuple8* cd = cpu->output.partition_data(p);
    for (size_t i = 0; i < cpu->output.part(p).num_tuples; ++i) {
      a.push_back(cd[i].key);
    }
    const Tuple8* fd = fpga->output.partition_data(p);
    for (size_t i = 0; i < fpga->output.partition_slots(p); ++i) {
      if (!IsDummy(fd[i])) b.push_back(fd[i].key);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << "partition " << p;
  }
}

TEST(EngineApiTest, ReportsEngineAndTiming) {
  auto rel = GenerateUniqueRelation(4096, KeyDistribution::kLinear, 5);
  ASSERT_TRUE(rel.ok());
  PartitionRequest request;
  request.fanout = 16;
  request.engine = Engine::kFpgaSim;
  auto report = RunPartition(request, *rel);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->engine, Engine::kFpgaSim);
  EXPECT_GT(report->seconds, 0.0);
  EXPECT_GT(report->mtuples_per_sec, 0.0);
  EXPECT_GT(report->stats.cycles, 0u);
  EXPECT_STREQ(EngineName(report->engine), "fpga-sim");
  EXPECT_FALSE(Version().empty());
}

TEST(IntegrationTest, HybridAndCpuJoinAgreeOnEveryWorkload) {
  for (WorkloadId id : {WorkloadId::kA, WorkloadId::kB, WorkloadId::kC,
                        WorkloadId::kD, WorkloadId::kE}) {
    double scale = id == WorkloadId::kB ? 2e-4 : 5e-5;
    auto input = GenerateWorkload(GetWorkloadSpec(id, scale), 11);
    ASSERT_TRUE(input.ok());

    CpuJoinConfig cpu;
    cpu.fanout = 64;
    cpu.hash = HashMethod::kMurmur;
    cpu.num_threads = 2;
    auto cpu_result = CpuRadixJoin(cpu, input->r, input->s);
    ASSERT_TRUE(cpu_result.ok());

    HybridJoinConfig hybrid;
    hybrid.fpga.fanout = 64;
    hybrid.fpga.hash = HashMethod::kMurmur;
    hybrid.num_threads = 2;
    auto hybrid_result = HybridJoin(hybrid, input->r, input->s);
    ASSERT_TRUE(hybrid_result.ok());

    EXPECT_EQ(cpu_result->matches, hybrid_result->matches)
        << "workload " << input->spec.name;
    EXPECT_EQ(cpu_result->checksum, hybrid_result->checksum)
        << "workload " << input->spec.name;
    EXPECT_EQ(cpu_result->matches, input->s.size());
  }
}

TEST(IntegrationTest, VridHybridJoinEqualsRidHybridJoin) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, 1e-4), 13);
  ASSERT_TRUE(input.ok());
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.num_threads = 1;
  config.fpga.layout = LayoutMode::kRid;
  auto rid = HybridJoin(config, input->r, input->s);
  ASSERT_TRUE(rid.ok());
  config.fpga.layout = LayoutMode::kVrid;
  auto vrid = HybridJoin(config, input->r, input->s);
  ASSERT_TRUE(vrid.ok());
  EXPECT_EQ(rid->matches, vrid->matches);
}

TEST(IntegrationTest, FpgaPartitioningThroughSharedMemoryPages) {
  // End-to-end addressing contract: a relation staged in the 4 MB-page
  // shared pool, addressed through the page table, partitions correctly.
  PageTable page_table;
  auto pool = SharedMemoryPool::Allocate(4, &page_table);
  ASSERT_TRUE(pool.ok());
  const size_t n = 100000;
  // Host writes tuples into the shared virtual address space.
  for (size_t i = 0; i < n; ++i) {
    uint64_t va = i * sizeof(Tuple8);
    auto w = pool->FpgaWrite(va);  // same backing the host would use
    ASSERT_TRUE(w.ok());
    auto* t = reinterpret_cast<Tuple8*>(*w);
    t->key = static_cast<uint32_t>(i * 2654435761u) & 0x7fffffffu;
    t->payload = static_cast<uint32_t>(i);
  }
  // The AFU reads the relation through translation into a staging view.
  std::vector<Tuple8> staged(n);
  for (size_t i = 0; i < n; ++i) {
    auto r = pool->FpgaRead(i * sizeof(Tuple8));
    ASSERT_TRUE(r.ok());
    staged[i] = *reinterpret_cast<const Tuple8*>(*r);
  }
  FpgaPartitionerConfig config;
  config.fanout = 32;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(staged.data(), n);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->output.total_tuples(), n);
}

TEST(IntegrationTest, CpuFallbackAfterPadOverflowMatchesCpuJoin) {
  // The paper's PAD fallback alternative: give up on the FPGA and
  // partition on the CPU.
  WorkloadSpec spec = GetWorkloadSpec(WorkloadId::kA, 1e-4);
  spec.zipf = 1.25;
  auto input = GenerateWorkload(spec, 17);
  ASSERT_TRUE(input.ok());

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 64;
  hybrid.fpga.output_mode = OutputMode::kPad;
  hybrid.fpga.pad_fraction = 0.05;
  auto attempt = HybridJoin(hybrid, input->r, input->s);
  ASSERT_FALSE(attempt.ok());
  ASSERT_TRUE(attempt.status().IsPartitionOverflow());

  CpuJoinConfig cpu;
  cpu.fanout = 64;
  cpu.hash = HashMethod::kMurmur;
  auto fallback = CpuRadixJoin(cpu, input->r, input->s);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->matches, input->s.size());
}

}  // namespace
}  // namespace fpart
