// Consistency of the timing/throughput accounting across every API:
// totals equal the sum of their phases, rates invert the times, and the
// simulated clock arithmetic is exact.
#include <gtest/gtest.h>

#include "core/fpart.h"

namespace fpart {
namespace {

JoinInput SmallInput(double scale = 1e-4, uint64_t seed = 7) {
  auto input = GenerateWorkload(GetWorkloadSpec(WorkloadId::kA, scale), seed);
  EXPECT_TRUE(input.ok());
  return std::move(*input);
}

TEST(TimingTest, FpgaSecondsAreCyclesTimesClockPeriod) {
  auto rel = GenerateUniqueRelation(20000, KeyDistribution::kRandom, 3);
  ASSERT_TRUE(rel.ok());
  FpgaPartitionerConfig config;
  config.fanout = 64;
  FpgaPartitioner<Tuple8> part(config);
  auto run = part.Partition(rel->data(), rel->size());
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->seconds, run->stats.cycles * kFpgaClockPeriodSec);
  EXPECT_NEAR(run->mtuples_per_sec,
              rel->size() / run->seconds / 1e6, 1e-6);
}

TEST(TimingTest, JoinTotalsAreSumsOfPhases) {
  JoinInput input = SmallInput();
  CpuJoinConfig cpu;
  cpu.fanout = 64;
  auto cpu_result = CpuRadixJoin(cpu, input.r, input.s);
  ASSERT_TRUE(cpu_result.ok());
  EXPECT_NEAR(cpu_result->total_seconds,
              cpu_result->partition_seconds + cpu_result->build_probe_seconds,
              1e-12);

  HybridJoinConfig hybrid;
  hybrid.fpga.fanout = 64;
  auto hybrid_result = HybridJoin(hybrid, input.r, input.s);
  ASSERT_TRUE(hybrid_result.ok());
  EXPECT_NEAR(hybrid_result->total_seconds,
              hybrid_result->partition_seconds +
                  hybrid_result->build_probe_seconds,
              1e-12);
}

TEST(TimingTest, JoinThroughputInvertsTotal) {
  JoinInput input = SmallInput();
  CpuJoinConfig config;
  config.fanout = 32;
  auto result = CpuRadixJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok());
  double expected =
      (input.r.size() + input.s.size()) / result->total_seconds / 1e6;
  EXPECT_NEAR(result->mtuples_per_sec, expected, expected * 1e-9);
}

TEST(TimingTest, GroupByTotalsConsistent) {
  auto rel = GenerateUniqueRelation(20000, KeyDistribution::kRandom, 5);
  ASSERT_TRUE(rel.ok());
  GroupByConfig config;
  config.engine = Engine::kCpu;
  config.fanout = 64;
  auto out = PartitionedGroupBy(config, *rel);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->total_seconds,
              out->partition_seconds + out->aggregate_seconds, 1e-12);
}

TEST(TimingTest, DistributedTotalsConsistent) {
  JoinInput input = SmallInput(5e-5, 9);
  DistributedJoinConfig config;
  config.num_nodes = 2;
  config.local_fanout = 32;
  auto result = DistributedJoin(config, input.r, input.s);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->total_seconds,
              result->partition_seconds + result->shuffle_seconds +
                  result->local_join_seconds,
              1e-12);
}

TEST(TimingTest, HybridPenaltyScalesOnlyBuildProbe) {
  // With the penalty disabled, the hybrid's partition phase (simulated)
  // must be identical across runs; only build+probe is host-measured.
  JoinInput input = SmallInput(5e-5, 11);
  HybridJoinConfig config;
  config.fpga.fanout = 64;
  config.coherence_penalty = false;
  auto a = HybridJoin(config, input.r, input.s);
  auto b = HybridJoin(config, input.r, input.s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->partition_seconds, b->partition_seconds);
}

TEST(TimingTest, MaterializeJoinReportsGatherSeparately) {
  const size_t n = 4096;
  std::vector<uint32_t> keys(n), payloads(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(i + 1);
    payloads[i] = static_cast<uint32_t>(i * 2);
  }
  FpgaPartitionerConfig config;
  config.fanout = 16;
  config.layout = LayoutMode::kVrid;
  config.output_mode = OutputMode::kHist;
  FpgaPartitioner<Tuple8> part(config);
  auto pr = part.PartitionColumn(keys.data(), n);
  ASSERT_TRUE(pr.ok());
  MaterializedJoin join = MaterializeJoin(pr->output, pr->output, 1,
                                          static_cast<const Tuple8*>(nullptr));
  EXPECT_EQ(join.gather_seconds, 0.0);  // not gathered yet
  GatherPayloads(payloads.data(), payloads.data(), &join);
  EXPECT_GT(join.build_probe_seconds, 0.0);
  EXPECT_GE(join.gather_seconds, 0.0);
  EXPECT_EQ(join.rows.size(), n);  // self-join of unique keys
}

}  // namespace
}  // namespace fpart
