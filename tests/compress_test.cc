// Tests of the FOR codec and compressed-column partitioning (Section 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "compress/for_codec.h"
#include "fpga/partitioner.h"

namespace fpart {
namespace {

std::vector<uint32_t> ClusteredKeys(size_t n, uint64_t seed,
                                    uint32_t spread = 200) {
  // Keys wander slowly: small deltas, highly compressible — typical of
  // sorted or dictionary-encoded columns.
  std::vector<uint32_t> keys(n);
  Rng rng(seed);
  uint32_t value = 1000;
  for (size_t i = 0; i < n; ++i) {
    value += static_cast<uint32_t>(rng.Below(spread));
    keys[i] = value;
  }
  return keys;
}

TEST(ForCodecTest, RoundTripsClusteredKeys) {
  auto keys = ClusteredKeys(100000, 3);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->num_keys(), keys.size());
  EXPECT_EQ(column->DecompressAll(), keys);
}

TEST(ForCodecTest, RoundTripsRandomKeys) {
  std::vector<uint32_t> keys(50000);
  Rng rng(7);
  for (auto& k : keys) k = rng.Next32();
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->DecompressAll(), keys);
  // Incompressible data: ratio near (but not much below) 1 — a frame of
  // 14 32-bit deltas per 64 B line is the floor.
  EXPECT_GT(column->ratio(), 0.8);
}

TEST(ForCodecTest, CompressesClusteredKeysWell) {
  auto keys = ClusteredKeys(100000, 5, /*spread=*/200);  // 8-bit deltas
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  EXPECT_GT(column->ratio(), 2.0);
}

TEST(ForCodecTest, ConstantColumnCompressesMaximally) {
  std::vector<uint32_t> keys(12000, 42);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  // 120 keys per 64 B frame vs 16 uncompressed: ratio 7.5.
  EXPECT_NEAR(column->ratio(), 7.5, 0.1);
  EXPECT_EQ(column->DecompressAll(), keys);
}

TEST(ForCodecTest, EmptyColumn) {
  auto column = CompressedColumn::Compress(nullptr, 0);
  ASSERT_TRUE(column.ok());
  EXPECT_EQ(column->num_frames(), 0u);
  EXPECT_EQ(column->ratio(), 1.0);
  EXPECT_TRUE(column->DecompressAll().empty());
}

TEST(ForCodecTest, FrameOffsetsArePrefixCounts) {
  auto keys = ClusteredKeys(5000, 9);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  uint64_t expected = 0;
  uint32_t scratch[kMaxKeysPerFrame];
  for (size_t i = 0; i < column->num_frames(); ++i) {
    EXPECT_EQ(column->frame_offset(i), expected);
    expected += column->DecodeFrame(i, scratch);
  }
  EXPECT_EQ(expected, keys.size());
}

TEST(CompressedPartitionTest, MatchesVridPartitioning) {
  // Partitioning a compressed column must produce exactly the same
  // <key, vrid> tuples as partitioning the raw key column.
  auto keys = ClusteredKeys(30000, 11);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());

  FpgaPartitionerConfig config;
  config.fanout = 64;
  config.output_mode = OutputMode::kHist;

  config.layout = LayoutMode::kVrid;
  FpgaPartitioner<Tuple8> vrid(config);
  auto vrid_run = vrid.PartitionColumn(keys.data(), keys.size());
  ASSERT_TRUE(vrid_run.ok());

  config.layout = LayoutMode::kCompressed;
  FpgaPartitioner<Tuple8> compressed(config);
  auto comp_run = compressed.PartitionCompressed(*column);
  ASSERT_TRUE(comp_run.ok()) << comp_run.status().ToString();
  EXPECT_EQ(comp_run->stats.internal_stall_cycles, 0u);

  auto collect = [](const PartitionedOutput<Tuple8>& out, size_t p) {
    std::vector<std::pair<uint32_t, uint32_t>> v;
    const Tuple8* data = out.partition_data(p);
    for (size_t i = 0; i < out.partition_slots(p); ++i) {
      if (!IsDummy(data[i])) v.emplace_back(data[i].key, data[i].payload);
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  for (size_t p = 0; p < config.fanout; ++p) {
    ASSERT_EQ(collect(vrid_run->output, p), collect(comp_run->output, p))
        << "partition " << p;
  }
}

TEST(CompressedPartitionTest, ReadsShrinkByCompressionRatio) {
  auto keys = ClusteredKeys(100000, 13, /*spread=*/100);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  ASSERT_GT(column->ratio(), 2.0);

  FpgaPartitionerConfig config;
  config.fanout = 256;
  config.output_mode = OutputMode::kPad;
  config.pad_fraction = 2.0;

  config.layout = LayoutMode::kVrid;
  FpgaPartitioner<Tuple8> vrid(config);
  auto vrid_run = vrid.PartitionColumn(keys.data(), keys.size());
  ASSERT_TRUE(vrid_run.ok());

  config.layout = LayoutMode::kCompressed;
  FpgaPartitioner<Tuple8> compressed(config);
  auto comp_run = compressed.PartitionCompressed(*column);
  ASSERT_TRUE(comp_run.ok());

  EXPECT_EQ(comp_run->stats.read_lines, column->num_frames());
  EXPECT_LT(comp_run->stats.read_lines, vrid_run->stats.read_lines);
  // Fewer reads on the shared link: throughput can only improve.
  EXPECT_GE(comp_run->mtuples_per_sec, vrid_run->mtuples_per_sec * 0.98);
}

TEST(CompressedPartitionTest, LayoutMismatchErrors) {
  auto keys = ClusteredKeys(1000, 15);
  auto column = CompressedColumn::Compress(keys.data(), keys.size());
  ASSERT_TRUE(column.ok());
  FpgaPartitionerConfig config;
  config.fanout = 16;
  config.layout = LayoutMode::kRid;
  FpgaPartitioner<Tuple8> part(config);
  EXPECT_FALSE(part.PartitionCompressed(*column).ok());
}

}  // namespace
}  // namespace fpart
