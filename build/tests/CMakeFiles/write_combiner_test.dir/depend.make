# Empty dependencies file for write_combiner_test.
# This may be replaced when dependencies are built.
