file(REMOVE_RECURSE
  "CMakeFiles/write_combiner_test.dir/write_combiner_test.cc.o"
  "CMakeFiles/write_combiner_test.dir/write_combiner_test.cc.o.d"
  "write_combiner_test"
  "write_combiner_test.pdb"
  "write_combiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
