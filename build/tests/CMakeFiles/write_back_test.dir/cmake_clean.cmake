file(REMOVE_RECURSE
  "CMakeFiles/write_back_test.dir/write_back_test.cc.o"
  "CMakeFiles/write_back_test.dir/write_back_test.cc.o.d"
  "write_back_test"
  "write_back_test.pdb"
  "write_back_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_back_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
