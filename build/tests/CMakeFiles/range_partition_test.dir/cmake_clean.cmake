file(REMOVE_RECURSE
  "CMakeFiles/range_partition_test.dir/range_partition_test.cc.o"
  "CMakeFiles/range_partition_test.dir/range_partition_test.cc.o.d"
  "range_partition_test"
  "range_partition_test.pdb"
  "range_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
