# Empty dependencies file for range_partition_test.
# This may be replaced when dependencies are built.
