# Empty compiler generated dependencies file for hash_lane_test.
# This may be replaced when dependencies are built.
