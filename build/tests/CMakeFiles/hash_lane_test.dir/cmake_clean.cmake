file(REMOVE_RECURSE
  "CMakeFiles/hash_lane_test.dir/hash_lane_test.cc.o"
  "CMakeFiles/hash_lane_test.dir/hash_lane_test.cc.o.d"
  "hash_lane_test"
  "hash_lane_test.pdb"
  "hash_lane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_lane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
