# Empty compiler generated dependencies file for qpi_test.
# This may be replaced when dependencies are built.
