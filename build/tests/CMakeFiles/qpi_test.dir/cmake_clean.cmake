file(REMOVE_RECURSE
  "CMakeFiles/qpi_test.dir/qpi_test.cc.o"
  "CMakeFiles/qpi_test.dir/qpi_test.cc.o.d"
  "qpi_test"
  "qpi_test.pdb"
  "qpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
