file(REMOVE_RECURSE
  "CMakeFiles/fpga_partitioner_test.dir/fpga_partitioner_test.cc.o"
  "CMakeFiles/fpga_partitioner_test.dir/fpga_partitioner_test.cc.o.d"
  "fpga_partitioner_test"
  "fpga_partitioner_test.pdb"
  "fpga_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
