file(REMOVE_RECURSE
  "CMakeFiles/wide_tuple_test.dir/wide_tuple_test.cc.o"
  "CMakeFiles/wide_tuple_test.dir/wide_tuple_test.cc.o.d"
  "wide_tuple_test"
  "wide_tuple_test.pdb"
  "wide_tuple_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
