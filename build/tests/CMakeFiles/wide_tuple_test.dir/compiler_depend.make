# Empty compiler generated dependencies file for wide_tuple_test.
# This may be replaced when dependencies are built.
