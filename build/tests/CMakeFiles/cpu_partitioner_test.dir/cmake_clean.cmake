file(REMOVE_RECURSE
  "CMakeFiles/cpu_partitioner_test.dir/cpu_partitioner_test.cc.o"
  "CMakeFiles/cpu_partitioner_test.dir/cpu_partitioner_test.cc.o.d"
  "cpu_partitioner_test"
  "cpu_partitioner_test.pdb"
  "cpu_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
