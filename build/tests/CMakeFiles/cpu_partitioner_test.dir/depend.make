# Empty dependencies file for cpu_partitioner_test.
# This may be replaced when dependencies are built.
