# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/qpi_test[1]_include.cmake")
include("/root/repo/build/tests/hash_lane_test[1]_include.cmake")
include("/root/repo/build/tests/write_combiner_test[1]_include.cmake")
include("/root/repo/build/tests/write_back_test[1]_include.cmake")
include("/root/repo/build/tests/fpga_partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/range_partition_test[1]_include.cmake")
include("/root/repo/build/tests/join_test[1]_include.cmake")
include("/root/repo/build/tests/sort_merge_test[1]_include.cmake")
include("/root/repo/build/tests/materialize_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/wide_tuple_test[1]_include.cmake")
include("/root/repo/build/tests/behavior_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/groupby_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_model_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
