# Empty compiler generated dependencies file for fig04_cpu_partitioning.
# This may be replaced when dependencies are built.
