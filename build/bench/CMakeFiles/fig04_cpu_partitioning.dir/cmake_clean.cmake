file(REMOVE_RECURSE
  "CMakeFiles/fig04_cpu_partitioning.dir/fig04_cpu_partitioning.cc.o"
  "CMakeFiles/fig04_cpu_partitioning.dir/fig04_cpu_partitioning.cc.o.d"
  "fig04_cpu_partitioning"
  "fig04_cpu_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cpu_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
