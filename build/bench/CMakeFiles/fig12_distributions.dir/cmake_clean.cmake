file(REMOVE_RECURSE
  "CMakeFiles/fig12_distributions.dir/fig12_distributions.cc.o"
  "CMakeFiles/fig12_distributions.dir/fig12_distributions.cc.o.d"
  "fig12_distributions"
  "fig12_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
