file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_combiner.dir/ablation_write_combiner.cc.o"
  "CMakeFiles/ablation_write_combiner.dir/ablation_write_combiner.cc.o.d"
  "ablation_write_combiner"
  "ablation_write_combiner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_combiner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
