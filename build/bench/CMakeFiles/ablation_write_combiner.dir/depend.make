# Empty dependencies file for ablation_write_combiner.
# This may be replaced when dependencies are built.
