file(REMOVE_RECURSE
  "CMakeFiles/ext_future_platforms.dir/ext_future_platforms.cc.o"
  "CMakeFiles/ext_future_platforms.dir/ext_future_platforms.cc.o.d"
  "ext_future_platforms"
  "ext_future_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
