# Empty compiler generated dependencies file for ext_future_platforms.
# This may be replaced when dependencies are built.
