# Empty dependencies file for ext_join_algorithms.
# This may be replaced when dependencies are built.
