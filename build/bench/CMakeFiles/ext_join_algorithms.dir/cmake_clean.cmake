file(REMOVE_RECURSE
  "CMakeFiles/ext_join_algorithms.dir/ext_join_algorithms.cc.o"
  "CMakeFiles/ext_join_algorithms.dir/ext_join_algorithms.cc.o.d"
  "ext_join_algorithms"
  "ext_join_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_join_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
