file(REMOVE_RECURSE
  "CMakeFiles/fig10_partitions.dir/fig10_partitions.cc.o"
  "CMakeFiles/fig10_partitions.dir/fig10_partitions.cc.o.d"
  "fig10_partitions"
  "fig10_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
