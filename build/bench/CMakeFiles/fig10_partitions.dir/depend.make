# Empty dependencies file for fig10_partitions.
# This may be replaced when dependencies are built.
