file(REMOVE_RECURSE
  "CMakeFiles/tab02_resources.dir/tab02_resources.cc.o"
  "CMakeFiles/tab02_resources.dir/tab02_resources.cc.o.d"
  "tab02_resources"
  "tab02_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
