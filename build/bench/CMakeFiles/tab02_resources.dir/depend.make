# Empty dependencies file for tab02_resources.
# This may be replaced when dependencies are built.
