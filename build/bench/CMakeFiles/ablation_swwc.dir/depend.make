# Empty dependencies file for ablation_swwc.
# This may be replaced when dependencies are built.
