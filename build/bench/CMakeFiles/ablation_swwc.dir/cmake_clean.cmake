file(REMOVE_RECURSE
  "CMakeFiles/ablation_swwc.dir/ablation_swwc.cc.o"
  "CMakeFiles/ablation_swwc.dir/ablation_swwc.cc.o.d"
  "ablation_swwc"
  "ablation_swwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
