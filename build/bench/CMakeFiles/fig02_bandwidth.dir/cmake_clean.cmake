file(REMOVE_RECURSE
  "CMakeFiles/fig02_bandwidth.dir/fig02_bandwidth.cc.o"
  "CMakeFiles/fig02_bandwidth.dir/fig02_bandwidth.cc.o.d"
  "fig02_bandwidth"
  "fig02_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
