file(REMOVE_RECURSE
  "CMakeFiles/fig13_skew.dir/fig13_skew.cc.o"
  "CMakeFiles/fig13_skew.dir/fig13_skew.cc.o.d"
  "fig13_skew"
  "fig13_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
