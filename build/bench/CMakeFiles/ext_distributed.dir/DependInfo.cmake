
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_distributed.cc" "bench/CMakeFiles/ext_distributed.dir/ext_distributed.cc.o" "gcc" "bench/CMakeFiles/ext_distributed.dir/ext_distributed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fpart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/groupby/CMakeFiles/fpart_groupby.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fpart_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fpart_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fpart_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/qpi/CMakeFiles/fpart_qpi.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fpart_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fpart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
