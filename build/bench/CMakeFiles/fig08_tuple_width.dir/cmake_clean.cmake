file(REMOVE_RECURSE
  "CMakeFiles/fig08_tuple_width.dir/fig08_tuple_width.cc.o"
  "CMakeFiles/fig08_tuple_width.dir/fig08_tuple_width.cc.o.d"
  "fig08_tuple_width"
  "fig08_tuple_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tuple_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
