file(REMOVE_RECURSE
  "CMakeFiles/tab01_coherence.dir/tab01_coherence.cc.o"
  "CMakeFiles/tab01_coherence.dir/tab01_coherence.cc.o.d"
  "tab01_coherence"
  "tab01_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
