# Empty compiler generated dependencies file for tab01_coherence.
# This may be replaced when dependencies are built.
