# Empty dependencies file for ext_groupby.
# This may be replaced when dependencies are built.
