# Empty compiler generated dependencies file for fig09_modes.
# This may be replaced when dependencies are built.
