file(REMOVE_RECURSE
  "CMakeFiles/fig09_modes.dir/fig09_modes.cc.o"
  "CMakeFiles/fig09_modes.dir/fig09_modes.cc.o.d"
  "fig09_modes"
  "fig09_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
