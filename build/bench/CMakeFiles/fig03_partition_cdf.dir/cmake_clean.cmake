file(REMOVE_RECURSE
  "CMakeFiles/fig03_partition_cdf.dir/fig03_partition_cdf.cc.o"
  "CMakeFiles/fig03_partition_cdf.dir/fig03_partition_cdf.cc.o.d"
  "fig03_partition_cdf"
  "fig03_partition_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_partition_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
