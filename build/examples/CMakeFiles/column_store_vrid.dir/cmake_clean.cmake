file(REMOVE_RECURSE
  "CMakeFiles/column_store_vrid.dir/column_store_vrid.cpp.o"
  "CMakeFiles/column_store_vrid.dir/column_store_vrid.cpp.o.d"
  "column_store_vrid"
  "column_store_vrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_store_vrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
