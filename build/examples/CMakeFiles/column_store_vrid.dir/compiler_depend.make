# Empty compiler generated dependencies file for column_store_vrid.
# This may be replaced when dependencies are built.
