file(REMOVE_RECURSE
  "CMakeFiles/groupby_aggregation.dir/groupby_aggregation.cpp.o"
  "CMakeFiles/groupby_aggregation.dir/groupby_aggregation.cpp.o.d"
  "groupby_aggregation"
  "groupby_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupby_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
