# Empty compiler generated dependencies file for groupby_aggregation.
# This may be replaced when dependencies are built.
