# Empty dependencies file for hybrid_join_demo.
# This may be replaced when dependencies are built.
