file(REMOVE_RECURSE
  "CMakeFiles/hybrid_join_demo.dir/hybrid_join_demo.cpp.o"
  "CMakeFiles/hybrid_join_demo.dir/hybrid_join_demo.cpp.o.d"
  "hybrid_join_demo"
  "hybrid_join_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_join_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
