file(REMOVE_RECURSE
  "CMakeFiles/skew_handling.dir/skew_handling.cpp.o"
  "CMakeFiles/skew_handling.dir/skew_handling.cpp.o.d"
  "skew_handling"
  "skew_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
