# Empty dependencies file for skew_handling.
# This may be replaced when dependencies are built.
