# Empty dependencies file for fpart_cli.
# This may be replaced when dependencies are built.
