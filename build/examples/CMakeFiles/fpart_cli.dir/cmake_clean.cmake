file(REMOVE_RECURSE
  "CMakeFiles/fpart_cli.dir/fpart_cli.cpp.o"
  "CMakeFiles/fpart_cli.dir/fpart_cli.cpp.o.d"
  "fpart_cli"
  "fpart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
