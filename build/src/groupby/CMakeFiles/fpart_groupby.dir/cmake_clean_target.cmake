file(REMOVE_RECURSE
  "libfpart_groupby.a"
)
