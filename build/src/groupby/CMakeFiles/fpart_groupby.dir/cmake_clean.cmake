file(REMOVE_RECURSE
  "CMakeFiles/fpart_groupby.dir/group_by.cc.o"
  "CMakeFiles/fpart_groupby.dir/group_by.cc.o.d"
  "libfpart_groupby.a"
  "libfpart_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
