# Empty compiler generated dependencies file for fpart_groupby.
# This may be replaced when dependencies are built.
