file(REMOVE_RECURSE
  "libfpart_datagen.a"
)
