# Empty dependencies file for fpart_datagen.
# This may be replaced when dependencies are built.
