
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/distribution.cc" "src/datagen/CMakeFiles/fpart_datagen.dir/distribution.cc.o" "gcc" "src/datagen/CMakeFiles/fpart_datagen.dir/distribution.cc.o.d"
  "/root/repo/src/datagen/workloads.cc" "src/datagen/CMakeFiles/fpart_datagen.dir/workloads.cc.o" "gcc" "src/datagen/CMakeFiles/fpart_datagen.dir/workloads.cc.o.d"
  "/root/repo/src/datagen/zipf.cc" "src/datagen/CMakeFiles/fpart_datagen.dir/zipf.cc.o" "gcc" "src/datagen/CMakeFiles/fpart_datagen.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fpart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fpart_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
