file(REMOVE_RECURSE
  "CMakeFiles/fpart_datagen.dir/distribution.cc.o"
  "CMakeFiles/fpart_datagen.dir/distribution.cc.o.d"
  "CMakeFiles/fpart_datagen.dir/workloads.cc.o"
  "CMakeFiles/fpart_datagen.dir/workloads.cc.o.d"
  "CMakeFiles/fpart_datagen.dir/zipf.cc.o"
  "CMakeFiles/fpart_datagen.dir/zipf.cc.o.d"
  "libfpart_datagen.a"
  "libfpart_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
