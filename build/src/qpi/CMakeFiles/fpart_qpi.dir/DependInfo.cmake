
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpi/bandwidth_model.cc" "src/qpi/CMakeFiles/fpart_qpi.dir/bandwidth_model.cc.o" "gcc" "src/qpi/CMakeFiles/fpart_qpi.dir/bandwidth_model.cc.o.d"
  "/root/repo/src/qpi/page_table.cc" "src/qpi/CMakeFiles/fpart_qpi.dir/page_table.cc.o" "gcc" "src/qpi/CMakeFiles/fpart_qpi.dir/page_table.cc.o.d"
  "/root/repo/src/qpi/qpi_link.cc" "src/qpi/CMakeFiles/fpart_qpi.dir/qpi_link.cc.o" "gcc" "src/qpi/CMakeFiles/fpart_qpi.dir/qpi_link.cc.o.d"
  "/root/repo/src/qpi/shared_memory.cc" "src/qpi/CMakeFiles/fpart_qpi.dir/shared_memory.cc.o" "gcc" "src/qpi/CMakeFiles/fpart_qpi.dir/shared_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fpart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
