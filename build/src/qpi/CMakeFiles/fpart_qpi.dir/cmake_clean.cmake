file(REMOVE_RECURSE
  "CMakeFiles/fpart_qpi.dir/bandwidth_model.cc.o"
  "CMakeFiles/fpart_qpi.dir/bandwidth_model.cc.o.d"
  "CMakeFiles/fpart_qpi.dir/page_table.cc.o"
  "CMakeFiles/fpart_qpi.dir/page_table.cc.o.d"
  "CMakeFiles/fpart_qpi.dir/qpi_link.cc.o"
  "CMakeFiles/fpart_qpi.dir/qpi_link.cc.o.d"
  "CMakeFiles/fpart_qpi.dir/shared_memory.cc.o"
  "CMakeFiles/fpart_qpi.dir/shared_memory.cc.o.d"
  "libfpart_qpi.a"
  "libfpart_qpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_qpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
