file(REMOVE_RECURSE
  "libfpart_qpi.a"
)
