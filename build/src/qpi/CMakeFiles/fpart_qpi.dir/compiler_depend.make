# Empty compiler generated dependencies file for fpart_qpi.
# This may be replaced when dependencies are built.
