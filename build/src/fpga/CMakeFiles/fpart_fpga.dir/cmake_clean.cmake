file(REMOVE_RECURSE
  "CMakeFiles/fpart_fpga.dir/config.cc.o"
  "CMakeFiles/fpart_fpga.dir/config.cc.o.d"
  "CMakeFiles/fpart_fpga.dir/resource_model.cc.o"
  "CMakeFiles/fpart_fpga.dir/resource_model.cc.o.d"
  "libfpart_fpga.a"
  "libfpart_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
