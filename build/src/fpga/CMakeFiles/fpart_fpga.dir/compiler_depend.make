# Empty compiler generated dependencies file for fpart_fpga.
# This may be replaced when dependencies are built.
