file(REMOVE_RECURSE
  "libfpart_fpga.a"
)
