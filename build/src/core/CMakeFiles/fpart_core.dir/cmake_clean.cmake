file(REMOVE_RECURSE
  "CMakeFiles/fpart_core.dir/engine.cc.o"
  "CMakeFiles/fpart_core.dir/engine.cc.o.d"
  "libfpart_core.a"
  "libfpart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
