file(REMOVE_RECURSE
  "libfpart_core.a"
)
