file(REMOVE_RECURSE
  "libfpart_common.a"
)
