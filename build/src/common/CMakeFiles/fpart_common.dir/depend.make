# Empty dependencies file for fpart_common.
# This may be replaced when dependencies are built.
