file(REMOVE_RECURSE
  "CMakeFiles/fpart_common.dir/aligned_buffer.cc.o"
  "CMakeFiles/fpart_common.dir/aligned_buffer.cc.o.d"
  "CMakeFiles/fpart_common.dir/env.cc.o"
  "CMakeFiles/fpart_common.dir/env.cc.o.d"
  "CMakeFiles/fpart_common.dir/status.cc.o"
  "CMakeFiles/fpart_common.dir/status.cc.o.d"
  "CMakeFiles/fpart_common.dir/thread_pool.cc.o"
  "CMakeFiles/fpart_common.dir/thread_pool.cc.o.d"
  "libfpart_common.a"
  "libfpart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
