file(REMOVE_RECURSE
  "libfpart_hash.a"
)
