# Empty dependencies file for fpart_hash.
# This may be replaced when dependencies are built.
