file(REMOVE_RECURSE
  "CMakeFiles/fpart_hash.dir/hash_function.cc.o"
  "CMakeFiles/fpart_hash.dir/hash_function.cc.o.d"
  "libfpart_hash.a"
  "libfpart_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
