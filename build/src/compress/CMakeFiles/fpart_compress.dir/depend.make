# Empty dependencies file for fpart_compress.
# This may be replaced when dependencies are built.
