file(REMOVE_RECURSE
  "libfpart_compress.a"
)
