file(REMOVE_RECURSE
  "CMakeFiles/fpart_compress.dir/for_codec.cc.o"
  "CMakeFiles/fpart_compress.dir/for_codec.cc.o.d"
  "libfpart_compress.a"
  "libfpart_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpart_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
