// Murmur3 finalizers — the "robust" hash functions of the paper.
//
// The FPGA hash-function module (Code 3 in the paper) implements exactly the
// 32-bit murmur3 finalizer as a 5-stage pipeline. The 64-bit variant is the
// corresponding murmur3 fmix64, used for 8 B keys (Section 4.4).
#pragma once

#include <cstdint>

namespace fpart {

/// Murmur3 fmix32 finalizer (Appleby [2]); 5 pipelineable stages.
constexpr uint32_t Murmur32(uint32_t key) {
  key ^= key >> 16;
  key *= 0x85ebca6bU;
  key ^= key >> 13;
  key *= 0xc2b2ae35U;
  key ^= key >> 16;
  return key;
}

/// Murmur3 fmix64 finalizer, for 8 B keys.
constexpr uint64_t Murmur64(uint64_t key) {
  key ^= key >> 33;
  key *= 0xff51afd7ed558ccdULL;
  key ^= key >> 33;
  key *= 0xc4ceb9fe1a85ec53ULL;
  key ^= key >> 33;
  return key;
}

}  // namespace fpart
