// Radix-bit extraction — the cheap partitioning attribute of Section 3.1.
#pragma once

#include <cstdint>

namespace fpart {

/// Take the `bits` least significant bits of `key` (radix partitioning).
constexpr uint32_t RadixBits(uint64_t key, int bits) {
  if (bits >= 64) return static_cast<uint32_t>(key);
  return static_cast<uint32_t>(key & ((uint64_t{1} << bits) - 1));
}

/// Number of bits needed to address `fanout` partitions (fanout must be a
/// power of two; returns its log2).
constexpr int FanoutBits(uint32_t fanout) {
  int bits = 0;
  while ((uint32_t{1} << bits) < fanout) ++bits;
  return bits;
}

/// True iff x is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace fpart
