#include "hash/hash_function.h"

#include <array>

#include "common/cpu_features.h"
#include "hash/simd_hash.h"

namespace fpart {

const char* HashMethodName(HashMethod method) {
  switch (method) {
    case HashMethod::kRadix:
      return "radix";
    case HashMethod::kMurmur:
      return "murmur";
    case HashMethod::kMultiplicative:
      return "multiplicative";
    case HashMethod::kCrc32:
      return "crc32";
    case HashMethod::kRange:
      return "range";
  }
  return "unknown";
}

std::vector<uint64_t> EquiDepthSplitters(std::vector<uint64_t> sample,
                                         uint32_t fanout) {
  std::vector<uint64_t> splitters;
  if (fanout < 2 || sample.empty()) return splitters;
  std::sort(sample.begin(), sample.end());
  splitters.reserve(fanout - 1);
  for (uint32_t p = 1; p < fanout; ++p) {
    size_t idx = sample.size() * p / fanout;
    splitters.push_back(sample[idx]);
  }
  // Equal sample values can produce duplicate splitters; that is legal
  // (the duplicate ranges are simply empty).
  return splitters;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  // CRC32-C (Castagnoli), reflected polynomial 0x82f63b78.
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78U : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

void PartitionFn::ApplyBatch(const uint32_t* keys, uint32_t* out,
                             size_t n) const {
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  const SimdLevel level = ActiveSimdLevel();
  if (level == SimdLevel::kAvx512) {
    switch (method_) {
      case HashMethod::kRadix:
        simd::RadixBatch32Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMurmur:
        simd::MurmurBatch32Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMultiplicative:
        simd::MultiplicativeBatch32Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kCrc32:
        simd::Crc32Batch32Hw(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kRange:
        break;  // no vector kernel; fall through to the scalar loop
    }
  } else if (level == SimdLevel::kAvx2) {
    switch (method_) {
      case HashMethod::kRadix:
        simd::RadixBatch32Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMurmur:
        simd::MurmurBatch32Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMultiplicative:
        simd::MultiplicativeBatch32Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kCrc32:
        simd::Crc32Batch32Hw(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kRange:
        break;  // no vector kernel; fall through to the scalar loop
    }
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = (*this)(keys[i]);
}

void PartitionFn::ApplyBatch64(const uint64_t* keys, uint32_t* out,
                               size_t n) const {
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  const SimdLevel level = ActiveSimdLevel();
  if (level == SimdLevel::kAvx512) {
    switch (method_) {
      case HashMethod::kRadix:
        simd::RadixBatch64Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMurmur:
        simd::MurmurBatch64Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMultiplicative:
        simd::MultiplicativeBatch64Avx512(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kCrc32:
        simd::Crc32Batch64Hw(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kRange:
        break;  // no vector kernel; fall through to the scalar loop
    }
  } else if (level == SimdLevel::kAvx2) {
    switch (method_) {
      case HashMethod::kRadix:
        simd::RadixBatch64Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMurmur:
        simd::MurmurBatch64Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kMultiplicative:
        simd::MultiplicativeBatch64Avx2(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kCrc32:
        simd::Crc32Batch64Hw(keys, out, n, bits_, shift_);
        return;
      case HashMethod::kRange:
        break;  // no vector kernel; fall through to the scalar loop
    }
  }
#endif
  for (size_t i = 0; i < n; ++i) out[i] = Apply64(keys[i]);
}

uint32_t Crc32c64(uint64_t key) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xffffffffU;
  for (int i = 0; i < 8; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ (key >> (8 * i))) & 0xff];
  }
  return crc ^ 0xffffffffU;
}

}  // namespace fpart
