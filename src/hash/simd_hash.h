// Batched SIMD partition-index kernels — the vectorized twins of the
// scalar PartitionFn paths in hash_function.h (DESIGN.md "CPU fast
// paths").
//
// Every kernel is bit-exact with the scalar code: the parity tests in
// tests/simd_hash_test.cc pin this over random and adversarial keys. The
// kernels carry per-function `target("avx2")` attributes so this header
// compiles under the baseline ISA; callers must consult
// DetectSimdLevel()/ActiveSimdLevel() before entering them. The lane
// widths mirror the simulated circuit: 8 concurrent 32-bit hashes per
// step, like the FPGA's 8 hash lanes (Section 4.4 of the paper).
#pragma once

#include <cstddef>
#include <cstdint>

#include "hash/murmur.h"
#include "hash/radix.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FPART_HAS_X86_SIMD_KERNELS 1
#include <immintrin.h>
#endif

namespace fpart {
namespace simd {

/// True when this build carries the AVX2 kernel bodies at all (independent
/// of whether the running CPU can execute them).
constexpr bool HaveAvx2Kernels() {
#if defined(FPART_HAS_X86_SIMD_KERNELS)
  return true;
#else
  return false;
#endif
}

#if defined(FPART_HAS_X86_SIMD_KERNELS)

#define FPART_TARGET_AVX2 __attribute__((target("avx2")))
#define FPART_TARGET_CRC __attribute__((target("sse4.2")))

namespace detail {

/// Low 64 bits of a 4-wide 64x64 multiply against the broadcast constant
/// `c` (AVX2 has no _mm256_mullo_epi64; composed from 32-bit products).
FPART_TARGET_AVX2 inline __m256i MulLo64(__m256i a, uint64_t c) {
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(c));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo = _mm256_mul_epu32(a, b);        // a_lo * b_lo
  const __m256i m1 = _mm256_mul_epu32(a_hi, b);     // a_hi * b_lo
  const __m256i m2 = _mm256_mul_epu32(a, b_hi);     // a_lo * b_hi
  const __m256i cross = _mm256_add_epi64(m1, m2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// Murmur3 fmix32 over 8 lanes — identical stages to Murmur32().
FPART_TARGET_AVX2 inline __m256i Murmur32x8(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi32(k, 16));
  k = _mm256_mullo_epi32(k, _mm256_set1_epi32(0x85ebca6b));
  k = _mm256_xor_si256(k, _mm256_srli_epi32(k, 13));
  k = _mm256_mullo_epi32(k, _mm256_set1_epi32(0xc2b2ae35));
  k = _mm256_xor_si256(k, _mm256_srli_epi32(k, 16));
  return k;
}

/// Murmur3 fmix64 over 4 lanes — identical stages to Murmur64().
FPART_TARGET_AVX2 inline __m256i Murmur64x4(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, 0xff51afd7ed558ccdULL);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = MulLo64(k, 0xc4ceb9fe1a85ec53ULL);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

/// Shift 8x32 right by the (variable) scalar `s`, then mask to `bits`.
FPART_TARGET_AVX2 inline __m256i SliceBits32(__m256i v, int s, int bits) {
  v = _mm256_srl_epi32(v, _mm_cvtsi32_si128(s));
  const uint32_t mask =
      bits >= 32 ? ~uint32_t{0} : (uint32_t{1} << bits) - 1;
  return _mm256_and_si256(v, _mm256_set1_epi32(static_cast<int>(mask)));
}

/// Shift 4x64 right by `s`, mask to `bits`, and compact the four results
/// into the low 128 bits as 4x32 (partition indices always fit 32 bits).
FPART_TARGET_AVX2 inline __m128i SliceBits64(__m256i v, int s, int bits) {
  v = _mm256_srl_epi64(v, _mm_cvtsi32_si128(s));
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  v = _mm256_and_si256(v, _mm256_set1_epi64x(static_cast<long long>(mask)));
  const __m256i even =
      _mm256_permutevar8x32_epi32(v, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
  return _mm256_castsi256_si128(even);
}

}  // namespace detail

/// 8-wide radix slice of 32-bit keys: out[i] = (keys[i] >> shift) & mask.
FPART_TARGET_AVX2 inline void RadixBatch32Avx2(const uint32_t* keys,
                                               uint32_t* out, size_t n,
                                               int bits, int shift) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        detail::SliceBits32(k, shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(keys[i] >> shift, bits);
}

/// 4-wide radix slice of 64-bit keys.
FPART_TARGET_AVX2 inline void RadixBatch64Avx2(const uint64_t* keys,
                                               uint32_t* out, size_t n,
                                               int bits, int shift) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     detail::SliceBits64(k, shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(keys[i] >> shift, bits);
}

/// 8-wide murmur partition index of 32-bit keys.
FPART_TARGET_AVX2 inline void MurmurBatch32Avx2(const uint32_t* keys,
                                                uint32_t* out, size_t n,
                                                int bits, int shift) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        detail::SliceBits32(detail::Murmur32x8(k), shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(Murmur32(keys[i]) >> shift, bits);
}

/// 4-wide murmur partition index of 64-bit keys.
FPART_TARGET_AVX2 inline void MurmurBatch64Avx2(const uint64_t* keys,
                                                uint32_t* out, size_t n,
                                                int bits, int shift) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     detail::SliceBits64(detail::Murmur64x4(k), shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(Murmur64(keys[i]) >> shift, bits);
}

/// 8-wide multiplicative (Fibonacci) partition index of 32-bit keys.
/// Mirrors the scalar top-bits slice including its clamped shift.
FPART_TARGET_AVX2 inline void MultiplicativeBatch32Avx2(const uint32_t* keys,
                                                        uint32_t* out,
                                                        size_t n, int bits,
                                                        int shift) {
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int s = 32 - bits - shift > 0 ? 32 - bits - shift : 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    k = _mm256_mullo_epi32(k, _mm256_set1_epi32(static_cast<int>(2654435769U)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        detail::SliceBits32(k, s, bits));
  }
  for (; i < n; ++i) {
    out[i] = RadixBits((keys[i] * 2654435769U) >> s, bits);
  }
}

/// 4-wide multiplicative partition index of 64-bit keys.
FPART_TARGET_AVX2 inline void MultiplicativeBatch64Avx2(const uint64_t* keys,
                                                        uint32_t* out,
                                                        size_t n, int bits,
                                                        int shift) {
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int s = 64 - bits - shift > 0 ? 64 - bits - shift : 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    k = detail::MulLo64(k, 0x9e3779b97f4a7c15ULL);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     detail::SliceBits64(k, s, bits));
  }
  for (; i < n; ++i) {
    out[i] = RadixBits((keys[i] * 0x9e3779b97f4a7c15ULL) >> s, bits);
  }
}

/// Hardware CRC32-C (SSE4.2) of 64-bit keys; bit-exact with the software
/// table implementation in Crc32c64() — same Castagnoli polynomial, same
/// init/final inversion.
FPART_TARGET_CRC inline uint32_t Crc32c64Hw(uint64_t key) {
  return static_cast<uint32_t>(
             _mm_crc32_u64(0xffffffffULL, key)) ^
         0xffffffffU;
}

FPART_TARGET_CRC inline void Crc32Batch32Hw(const uint32_t* keys,
                                            uint32_t* out, size_t n,
                                            int bits, int shift) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = RadixBits(Crc32c64Hw(keys[i]) >> shift, bits);
  }
}

FPART_TARGET_CRC inline void Crc32Batch64Hw(const uint64_t* keys,
                                            uint32_t* out, size_t n,
                                            int bits, int shift) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = RadixBits(Crc32c64Hw(keys[i]) >> shift, bits);
  }
}

// --- Fused-partitioning helpers (DESIGN.md "CPU fast paths"). Not hash
// kernels: these vectorize the data movement around the batched hashing —
// key extraction from tuple arrays, index-scratch narrowing, and the
// write-combining line flush.

/// Extract the leading 4 B key of `n` consecutive 8 B tuples.
FPART_TARGET_AVX2 inline void GatherKeys32Stride8Avx2(const void* tuples,
                                                      uint32_t* keys,
                                                      size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  // Pull each 32 B load's four keys (even 32-bit lanes) into its low half.
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 8));
    __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i * 8 + 32));
    __m256i k0 = _mm256_permutevar8x32_epi32(v0, perm);
    __m256i k1 = _mm256_permutevar8x32_epi32(v1, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        _mm256_permute2x128_si256(k0, k1, 0x20));
  }
  for (; i < n; ++i) {
    keys[i] = *reinterpret_cast<const uint32_t*>(src + i * 8);
  }
}

/// Extract the leading 8 B key of `n` consecutive 16 B tuples.
FPART_TARGET_AVX2 inline void GatherKeys64Stride16Avx2(const void* tuples,
                                                       uint64_t* keys,
                                                       size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 16));
    __m256i v1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(src + i * 16 + 32));
    // unpacklo keeps each 128-bit lane's low quadword (the keys):
    // [k0 k2 | k1 k3]; the permute restores index order.
    __m256i k = _mm256_unpacklo_epi64(v0, v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        _mm256_permute4x64_epi64(k, 0xd8));
  }
  for (; i < n; ++i) {
    keys[i] = *reinterpret_cast<const uint64_t*>(src + i * 16);
  }
}

/// Narrow `n` partition indices (all < 2^16) to uint16_t, streaming whole
/// 32 B chunks past the cache when the destination is 32 B aligned — the
/// index scratch is written once and read back only after the prefix-sum
/// barrier, so caching it would only evict the histogram. Callers issue a
/// store fence when a chunk ends.
FPART_TARGET_AVX2 inline void PackIndex16Avx2(const uint32_t* pidx,
                                              uint16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pidx + i));
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pidx + i + 8));
    __m256i packed =
        _mm256_permute4x64_epi64(_mm256_packus_epi32(a, b), 0xd8);
    if ((reinterpret_cast<uintptr_t>(out + i) & 31) == 0) {
      _mm256_stream_si256(reinterpret_cast<__m256i*>(out + i), packed);
    } else {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
    }
  }
  for (; i < n; ++i) out[i] = static_cast<uint16_t>(pidx[i]);
}

/// Stream one 64 B cache line (two 32 B non-temporal stores) — half the
/// store instructions of the SSE2 16 B flush. `dst` must be 64 B aligned.
FPART_TARGET_AVX2 inline void StreamLine64Avx2(void* dst, const void* src) {
  const __m256i* s = reinterpret_cast<const __m256i*>(src);
  __m256i* d = reinterpret_cast<__m256i*>(dst);
  _mm256_stream_si256(d, _mm256_loadu_si256(s));
  _mm256_stream_si256(d + 1, _mm256_loadu_si256(s + 1));
}

// --- AVX-512 tier (F+BW+DQ; the dispatch level kAvx512). Same contracts
// and bit-exact semantics as the AVX2 kernels above, at twice the lane
// count, plus the three data-movement wins the 256-bit ISA lacks: native
// 64x64 multiply (vpmullq), one-instruction narrowing (vpmovqd/vpmovdw),
// and a whole cache line per store (_mm512_stream_si512).

#define FPART_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512bw,avx512dq")))

namespace detail {

/// Murmur3 fmix32 over 16 lanes — identical stages to Murmur32().
FPART_TARGET_AVX512 inline __m512i Murmur32x16(__m512i k) {
  k = _mm512_xor_si512(k, _mm512_srli_epi32(k, 16));
  k = _mm512_mullo_epi32(k, _mm512_set1_epi32(0x85ebca6b));
  k = _mm512_xor_si512(k, _mm512_srli_epi32(k, 13));
  k = _mm512_mullo_epi32(k, _mm512_set1_epi32(0xc2b2ae35));
  k = _mm512_xor_si512(k, _mm512_srli_epi32(k, 16));
  return k;
}

/// Murmur3 fmix64 over 8 lanes — identical stages to Murmur64().
FPART_TARGET_AVX512 inline __m512i Murmur64x8(__m512i k) {
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(
      k, _mm512_set1_epi64(static_cast<long long>(0xff51afd7ed558ccdULL)));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(
      k, _mm512_set1_epi64(static_cast<long long>(0xc4ceb9fe1a85ec53ULL)));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  return k;
}

/// Shift 16x32 right by the (variable) scalar `s`, then mask to `bits`.
FPART_TARGET_AVX512 inline __m512i SliceBits32x16(__m512i v, int s, int bits) {
  v = _mm512_srl_epi32(v, _mm_cvtsi32_si128(s));
  const uint32_t mask =
      bits >= 32 ? ~uint32_t{0} : (uint32_t{1} << bits) - 1;
  return _mm512_and_si512(v, _mm512_set1_epi32(static_cast<int>(mask)));
}

/// Shift 8x64 right by `s`, mask to `bits`, and narrow to 8x32 (vpmovqd).
FPART_TARGET_AVX512 inline __m256i SliceBits64x8(__m512i v, int s, int bits) {
  v = _mm512_srl_epi64(v, _mm_cvtsi32_si128(s));
  const uint64_t mask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  v = _mm512_and_si512(v, _mm512_set1_epi64(static_cast<long long>(mask)));
  return _mm512_cvtepi64_epi32(v);
}

}  // namespace detail

/// 16-wide radix slice of 32-bit keys.
FPART_TARGET_AVX512 inline void RadixBatch32Avx512(const uint32_t* keys,
                                                   uint32_t* out, size_t n,
                                                   int bits, int shift) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    _mm512_storeu_si512(out + i, detail::SliceBits32x16(k, shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(keys[i] >> shift, bits);
}

/// 8-wide radix slice of 64-bit keys.
FPART_TARGET_AVX512 inline void RadixBatch64Avx512(const uint64_t* keys,
                                                   uint32_t* out, size_t n,
                                                   int bits, int shift) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i k = _mm512_loadu_si512(keys + i);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        detail::SliceBits64x8(k, shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(keys[i] >> shift, bits);
}

/// 16-wide murmur partition index of 32-bit keys.
FPART_TARGET_AVX512 inline void MurmurBatch32Avx512(const uint32_t* keys,
                                                    uint32_t* out, size_t n,
                                                    int bits, int shift) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    _mm512_storeu_si512(
        out + i, detail::SliceBits32x16(detail::Murmur32x16(k), shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(Murmur32(keys[i]) >> shift, bits);
}

/// 8-wide murmur partition index of 64-bit keys.
FPART_TARGET_AVX512 inline void MurmurBatch64Avx512(const uint64_t* keys,
                                                    uint32_t* out, size_t n,
                                                    int bits, int shift) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i k = _mm512_loadu_si512(keys + i);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        detail::SliceBits64x8(detail::Murmur64x8(k), shift, bits));
  }
  for (; i < n; ++i) out[i] = RadixBits(Murmur64(keys[i]) >> shift, bits);
}

/// 16-wide multiplicative (Fibonacci) partition index of 32-bit keys.
FPART_TARGET_AVX512 inline void MultiplicativeBatch32Avx512(
    const uint32_t* keys, uint32_t* out, size_t n, int bits, int shift) {
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int s = 32 - bits - shift > 0 ? 32 - bits - shift : 0;
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512i k = _mm512_loadu_si512(keys + i);
    k = _mm512_mullo_epi32(k, _mm512_set1_epi32(static_cast<int>(2654435769U)));
    _mm512_storeu_si512(out + i, detail::SliceBits32x16(k, s, bits));
  }
  for (; i < n; ++i) {
    out[i] = RadixBits((keys[i] * 2654435769U) >> s, bits);
  }
}

/// 8-wide multiplicative partition index of 64-bit keys.
FPART_TARGET_AVX512 inline void MultiplicativeBatch64Avx512(
    const uint64_t* keys, uint32_t* out, size_t n, int bits, int shift) {
  if (bits == 0) {
    for (size_t i = 0; i < n; ++i) out[i] = 0;
    return;
  }
  const int s = 64 - bits - shift > 0 ? 64 - bits - shift : 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i k = _mm512_loadu_si512(keys + i);
    k = _mm512_mullo_epi64(
        k, _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        detail::SliceBits64x8(k, s, bits));
  }
  for (; i < n; ++i) {
    out[i] = RadixBits((keys[i] * 0x9e3779b97f4a7c15ULL) >> s, bits);
  }
}

/// Extract the leading 4 B key of `n` consecutive 8 B tuples: one 64 B
/// load covers 8 tuples and vpmovqd truncates each to its low 32 bits.
FPART_TARGET_AVX512 inline void GatherKeys32Stride8Avx512(const void* tuples,
                                                          uint32_t* keys,
                                                          size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i v = _mm512_loadu_si512(src + i * 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        _mm512_cvtepi64_epi32(v));
  }
  for (; i < n; ++i) {
    keys[i] = *reinterpret_cast<const uint32_t*>(src + i * 8);
  }
}

/// Extract the leading 8 B key of `n` consecutive 16 B tuples: two 64 B
/// loads cover 8 tuples and one vpermt2q picks out the even quadwords.
FPART_TARGET_AVX512 inline void GatherKeys64Stride16Avx512(const void* tuples,
                                                           uint64_t* keys,
                                                           size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(tuples);
  const __m512i pick =
      _mm512_setr_epi64(0, 2, 4, 6, 8 + 0, 8 + 2, 8 + 4, 8 + 6);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i v0 = _mm512_loadu_si512(src + i * 16);
    __m512i v1 = _mm512_loadu_si512(src + i * 16 + 64);
    _mm512_storeu_si512(keys + i, _mm512_permutex2var_epi64(v0, pick, v1));
  }
  for (; i < n; ++i) {
    keys[i] = *reinterpret_cast<const uint64_t*>(src + i * 16);
  }
}

/// Narrow `n` partition indices (all < 2^16) to uint16_t — vpmovdw pairs
/// feeding one 64 B non-temporal store when the destination is 64 B
/// aligned. Same no-cache rationale and fencing contract as the AVX2
/// variant above.
FPART_TARGET_AVX512 inline void PackIndex16Avx512(const uint32_t* pidx,
                                                  uint16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i lo = _mm512_cvtepi32_epi16(_mm512_loadu_si512(pidx + i));
    __m256i hi = _mm512_cvtepi32_epi16(_mm512_loadu_si512(pidx + i + 16));
    __m512i packed =
        _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
    if ((reinterpret_cast<uintptr_t>(out + i) & 63) == 0) {
      _mm512_stream_si512(reinterpret_cast<__m512i*>(out + i), packed);
    } else {
      _mm512_storeu_si512(out + i, packed);
    }
  }
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi32_epi16(_mm512_loadu_si512(pidx + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<uint16_t>(pidx[i]);
}

/// Stream one 64 B cache line with a single non-temporal store — the
/// whole write-combining flush in one instruction. `dst` must be 64 B
/// aligned.
FPART_TARGET_AVX512 inline void StreamLine64Avx512(void* dst,
                                                   const void* src) {
  _mm512_stream_si512(reinterpret_cast<__m512i*>(dst),
                      _mm512_loadu_si512(src));
}

#undef FPART_TARGET_AVX2
#undef FPART_TARGET_AVX512
#undef FPART_TARGET_CRC

#endif  // FPART_HAS_X86_SIMD_KERNELS

}  // namespace simd
}  // namespace fpart
