// The configurable partitioning-attribute function of Section 3.
//
// A partitioner maps a key to one of `fanout` partitions either by taking
// radix bits directly (cheap, distribution-sensitive) or by hashing first
// (robust; murmur3 in the paper, plus two extra methods from the Richter et
// al. robustness study for the extended experiments).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hash/murmur.h"
#include "hash/radix.h"

namespace fpart {

/// How the partitioning attribute is computed from a key (Section 3.1/3.2).
enum class HashMethod {
  /// N least-significant bits of the raw key.
  kRadix,
  /// Murmur3 finalizer, then N least-significant bits. Robust.
  kMurmur,
  /// Fibonacci/multiplicative hashing: key * 2^64/phi, top bits.
  kMultiplicative,
  /// CRC32-C (software Castagnoli), as studied in Richter et al. [29].
  kCrc32,
  /// Range partitioning over sorted splitters (Wu et al. [41]): partition
  /// p holds keys in [splitter[p-1], splitter[p]). On the FPGA this is a
  /// pipelined comparator tree of depth log2(fanout) — like hashing, it
  /// costs latency only, not throughput.
  kRange,
};

const char* HashMethodName(HashMethod method);

/// CRC32-C of a 64-bit value (bitwise software implementation; the FPGA
/// would implement this as an unrolled XOR tree at no throughput cost).
uint32_t Crc32c64(uint64_t key);

/// \brief Computes partition indices from keys.
///
/// `fanout` must be a power of two (the paper's partitioner always uses
/// power-of-two fan-outs so the partition index is a bit-slice).
class PartitionFn {
 public:
  /// \param shift  skip this many low bits of the (hashed) key before
  ///               slicing — used by multi-pass radix partitioning, where
  ///               pass 1 clusters on the high bits of the radix window.
  PartitionFn(HashMethod method, uint32_t fanout, int shift = 0)
      : method_(method),
        fanout_(fanout),
        bits_(FanoutBits(fanout)),
        shift_(shift) {}

  /// Range partitioner over `splitters` (sorted ascending; exactly
  /// fanout-1 entries). Key k maps to the number of splitters ≤ k.
  static PartitionFn Range(std::vector<uint64_t> splitters) {
    PartitionFn fn(HashMethod::kRange,
                   static_cast<uint32_t>(splitters.size() + 1));
    std::sort(splitters.begin(), splitters.end());
    fn.splitters_ =
        std::make_shared<const std::vector<uint64_t>>(std::move(splitters));
    return fn;
  }

  uint32_t fanout() const { return fanout_; }
  int bits() const { return bits_; }
  int shift() const { return shift_; }
  HashMethod method() const { return method_; }
  const std::vector<uint64_t>& splitters() const { return *splitters_; }

  /// Partition index of a 32-bit key.
  uint32_t operator()(uint32_t key) const {
    if (method_ == HashMethod::kRange) return RangeIndex(key);
    switch (method_) {
      case HashMethod::kRadix:
        return RadixBits(key >> shift_, bits_);
      case HashMethod::kMurmur:
        return RadixBits(Murmur32(key) >> shift_, bits_);
      case HashMethod::kMultiplicative:
        // Knuth multiplicative hashing: take the *top* bits of the product.
        return bits_ == 0 ? 0
                          : RadixBits((key * 2654435769U) >>
                                          (32 - bits_ - shift_ > 0
                                               ? 32 - bits_ - shift_
                                               : 0),
                                      bits_);
      case HashMethod::kCrc32:
        return RadixBits(Crc32c64(key) >> shift_, bits_);
      case HashMethod::kRange:
        break;  // handled above
    }
    return 0;
  }

  /// Partition indices of a whole batch of 32-bit keys: out[i] must equal
  /// (*this)(keys[i]) bit-for-bit. Dispatches to the AVX2 8-wide kernels
  /// of hash/simd_hash.h when the host supports them (and FPART_SIMD does
  /// not force the scalar fallback); otherwise runs the scalar loop.
  void ApplyBatch(const uint32_t* keys, uint32_t* out, size_t n) const;

  /// Batch variant of Apply64 (4-wide AVX2 kernels).
  void ApplyBatch64(const uint64_t* keys, uint32_t* out, size_t n) const;

  /// Partition index of a 64-bit key.
  uint32_t Apply64(uint64_t key) const {
    if (method_ == HashMethod::kRange) return RangeIndex(key);
    switch (method_) {
      case HashMethod::kRadix:
        return RadixBits(key >> shift_, bits_);
      case HashMethod::kMurmur:
        return RadixBits(Murmur64(key) >> shift_, bits_);
      case HashMethod::kMultiplicative:
        return bits_ == 0
                   ? 0
                   : RadixBits((key * 0x9e3779b97f4a7c15ULL) >>
                                   (64 - bits_ - shift_ > 0
                                        ? 64 - bits_ - shift_
                                        : 0),
                               bits_);
      case HashMethod::kCrc32:
        return RadixBits(Crc32c64(key) >> shift_, bits_);
      case HashMethod::kRange:
        break;  // handled above
    }
    return 0;
  }

 private:
  /// upper_bound over the splitter array — the software equivalent of the
  /// FPGA's comparator tree.
  uint32_t RangeIndex(uint64_t key) const {
    const auto& s = *splitters_;
    return static_cast<uint32_t>(
        std::upper_bound(s.begin(), s.end(), key) - s.begin());
  }

  HashMethod method_;
  uint32_t fanout_;
  int bits_;
  int shift_;
  /// kRange only; shared so PartitionFn stays cheap to copy.
  std::shared_ptr<const std::vector<uint64_t>> splitters_;
};

/// Equi-depth splitters from a key sample: fanout-1 values that split the
/// sampled distribution into equally sized ranges. `fanout` need not be a
/// power of two for CPU use, but the FPGA circuit requires one.
std::vector<uint64_t> EquiDepthSplitters(std::vector<uint64_t> sample,
                                         uint32_t fanout);

}  // namespace fpart
