// The hybrid CPU+FPGA join (Section 5): the FPGA partitions both relations
// through QPI while the CPU executes the in-cache build+probe phase.
//
// Partitioning time is the simulated circuit time (cycles × 5 ns); the
// build+probe phase runs for real on the host and its measured time is
// scaled by the Table 1 coherence penalty, because the partitions were
// last written by the FPGA socket (Section 2.2). The penalty can be
// disabled to model a future platform without the snooping anomaly.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/relation.h"
#include "fpga/partitioner.h"
#include "join/build_probe.h"
#include "join/radix_join.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qpi/coherence.h"

namespace fpart {

/// \brief Configuration of the hybrid join.
struct HybridJoinConfig {
  /// Circuit configuration (mode, layout, hash, fanout, link).
  FpgaPartitionerConfig fpga;
  /// Threads for the CPU build+probe phase (the paper's "N-threaded
  /// hybrid join" refers to this phase only).
  size_t num_threads = 1;
  /// Apply the Table 1 snoop penalty to build+probe (on for the
  /// Xeon+FPGA prototype, off for an idealized future platform).
  bool coherence_penalty = true;
  /// Shared worker pool for the build+probe phase. When null and
  /// num_threads > 1, the call constructs (and tears down) its own pool —
  /// benchmark loops should pass one pool and reuse it across calls.
  ThreadPool* pool = nullptr;
  /// Overlap S's (simulated) partitioning with the CPU build over R's
  /// partitions: on the real system the FPGA streams S while the CPU is
  /// already building. Simulated seconds are unaffected — only host wall
  /// clock shrinks — but build+probe runs as two phases (build all, then
  /// probe all) instead of the cache-friendlier per-partition interleave,
  /// so the paper-figure benchmarks keep it off.
  bool overlap_partitioning = false;
  /// Software-prefetch lookahead for the build+probe bucket accesses.
  uint32_t prefetch_distance = 16;
  /// Exact per-partition tuple counts of S, when the caller already knows
  /// them (a recurring join against the same S, or a prior HIST-mode run).
  /// Lets the overlapped build skip R partitions whose S side is empty —
  /// their tables would never be probed. Must be exact: a zero entry for a
  /// non-empty S partition silently drops its matches. Not owned.
  const std::vector<uint64_t>* s_histogram = nullptr;
};

namespace internal {

/// Partition one relation on the simulated FPGA, handling the VRID key
/// extraction (this models data that already lives as columns; the copy is
/// not part of the measurement).
template <typename T>
Result<FpgaRunResult<T>> HybridPartition(const FpgaPartitionerConfig& config,
                                         const Relation<T>& rel) {
  FpgaPartitioner<T> partitioner(config);
  if (config.layout == LayoutMode::kVrid) {
    using KeyType = typename FpgaPartitioner<T>::KeyType;
    std::vector<KeyType> keys(rel.size());
    for (size_t i = 0; i < rel.size(); ++i) keys[i] = rel[i].key;
    return partitioner.PartitionColumn(keys.data(), keys.size());
  }
  return partitioner.Partition(rel.data(), rel.size());
}

}  // namespace internal

/// Execute the hybrid join R ⋈ S. RID layout: the circuit reads the
/// materialized tuples; VRID: it reads only the key columns and appends
/// virtual record ids, which also serve as the join payload.
template <typename T>
Result<JoinResult> HybridJoin(const HybridJoinConfig& config,
                              const Relation<T>& r, const Relation<T>& s) {
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && config.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = own_pool.get();
  }

  FpgaRunResult<T> pr, ps;
  BuildProbeStats bp;
  if (config.overlap_partitioning) {
    // R must be partitioned before anything can be built over it.
    {
      obs::TraceSpan span("hybrid.partition_r", "join");
      FPART_ASSIGN_OR_RETURN(pr, internal::HybridPartition(config.fpga, r));
    }
    // S's partitioning simulation runs on a dedicated host thread while
    // the pool builds tables over R's partitions.
    Result<FpgaRunResult<T>> s_run = Status::Internal("S pass not run");
    std::thread s_sim([&] {
      obs::TraceSpan span("hybrid.partition_s", "join");
      s_run = internal::HybridPartition(config.fpga, s);
    });
    {
      obs::TraceSpan span("hybrid.build_probe", "join");
      auto tables = ParallelBuildTables(pr.output, config.num_threads, pool,
                                        &bp, static_cast<const T*>(nullptr),
                                        config.prefetch_distance,
                                        config.s_histogram);
      s_sim.join();
      FPART_ASSIGN_OR_RETURN(ps, std::move(s_run));
      ParallelProbeTables(pr.output, ps.output, tables, config.num_threads,
                          pool, &bp, config.prefetch_distance);
    }
  } else {
    {
      obs::TraceSpan span("hybrid.partition_r", "join");
      FPART_ASSIGN_OR_RETURN(pr, internal::HybridPartition(config.fpga, r));
    }
    {
      obs::TraceSpan span("hybrid.partition_s", "join");
      FPART_ASSIGN_OR_RETURN(ps, internal::HybridPartition(config.fpga, s));
    }
    obs::TraceSpan span("hybrid.build_probe", "join");
    bp = ParallelBuildProbe(pr.output, ps.output, config.num_threads, pool,
                            static_cast<const T*>(nullptr),
                            config.prefetch_distance);
  }

  double build_probe = bp.wall_seconds;
  if (config.coherence_penalty) {
    // Apportion the wall time into its build and probe shares using the
    // aggregated per-thread CPU times, then scale each share by its
    // Table 1 factor (build reads sequentially, probe randomly).
    double cpu_total = bp.build_cpu_seconds + bp.probe_cpu_seconds;
    if (cpu_total > 0) {
      double build_share = bp.build_cpu_seconds / cpu_total;
      double probe_share = bp.probe_cpu_seconds / cpu_total;
      double factor =
          build_share * CoherenceModel::BuildFactor(LastWriter::kFpga) +
          probe_share * CoherenceModel::ProbeFactor(LastWriter::kFpga);
      build_probe *= factor;
    }
  }

  auto& reg = obs::Registry::Global();
  reg.GetCounter("join.hybrid.runs", "runs", "hybrid joins completed")->Add();
  reg.GetCounter("join.matches", "tuples",
                 "join result tuples (radix + hybrid)")
      ->Add(bp.matches);

  JoinResult result;
  result.matches = bp.matches;
  result.checksum = bp.checksum;
  result.partition_seconds = pr.seconds + ps.seconds;
  result.build_probe_seconds = build_probe;
  result.total_seconds = result.partition_seconds + result.build_probe_seconds;
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

/// PAD-mode execution with the Section 5.4 fallback: if a partition
/// overflows, the join is retried with the HIST-mode circuit (the paper's
/// alternative fallback is the CPU partitioner).
template <typename T>
Result<JoinResult> HybridJoinWithFallback(const HybridJoinConfig& config,
                                          const Relation<T>& r,
                                          const Relation<T>& s,
                                          bool* fell_back = nullptr) {
  if (fell_back != nullptr) *fell_back = false;
  Result<JoinResult> first = HybridJoin(config, r, s);
  if (first.ok() || !first.status().IsPartitionOverflow()) return first;
  if (fell_back != nullptr) *fell_back = true;
  HybridJoinConfig retry = config;
  retry.fpga.output_mode = OutputMode::kHist;
  return HybridJoin(retry, r, s);
}

}  // namespace fpart
