// The hybrid CPU+FPGA join (Section 5): the FPGA partitions both relations
// through QPI while the CPU executes the in-cache build+probe phase.
//
// Partitioning time is the simulated circuit time (cycles × 5 ns); the
// build+probe phase runs for real on the host and its measured time is
// scaled by the Table 1 coherence penalty, because the partitions were
// last written by the FPGA socket (Section 2.2). The penalty can be
// disabled to model a future platform without the snooping anomaly.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/relation.h"
#include "fpga/partitioner.h"
#include "join/build_probe.h"
#include "join/radix_join.h"
#include "qpi/coherence.h"

namespace fpart {

/// \brief Configuration of the hybrid join.
struct HybridJoinConfig {
  /// Circuit configuration (mode, layout, hash, fanout, link).
  FpgaPartitionerConfig fpga;
  /// Threads for the CPU build+probe phase (the paper's "N-threaded
  /// hybrid join" refers to this phase only).
  size_t num_threads = 1;
  /// Apply the Table 1 snoop penalty to build+probe (on for the
  /// Xeon+FPGA prototype, off for an idealized future platform).
  bool coherence_penalty = true;
};

/// Execute the hybrid join R ⋈ S. RID layout: the circuit reads the
/// materialized tuples; VRID: it reads only the key columns and appends
/// virtual record ids, which also serve as the join payload.
template <typename T>
Result<JoinResult> HybridJoin(const HybridJoinConfig& config,
                              const Relation<T>& r, const Relation<T>& s) {
  FpgaPartitioner<T> partitioner(config.fpga);

  FpgaRunResult<T> pr, ps;
  if (config.fpga.layout == LayoutMode::kVrid) {
    // Column-store inputs: extract the key columns (this models data that
    // already lives as columns; the copy is not part of the measurement).
    using KeyType = typename FpgaPartitioner<T>::KeyType;
    std::vector<KeyType> r_keys(r.size()), s_keys(s.size());
    for (size_t i = 0; i < r.size(); ++i) r_keys[i] = r[i].key;
    for (size_t i = 0; i < s.size(); ++i) s_keys[i] = s[i].key;
    FPART_ASSIGN_OR_RETURN(pr,
                           partitioner.PartitionColumn(r_keys.data(),
                                                       r_keys.size()));
    FPART_ASSIGN_OR_RETURN(ps,
                           partitioner.PartitionColumn(s_keys.data(),
                                                       s_keys.size()));
  } else {
    FPART_ASSIGN_OR_RETURN(pr, partitioner.Partition(r.data(), r.size()));
    FPART_ASSIGN_OR_RETURN(ps, partitioner.Partition(s.data(), s.size()));
  }

  std::unique_ptr<ThreadPool> pool;
  if (config.num_threads > 1) {
    pool = std::make_unique<ThreadPool>(config.num_threads);
  }
  BuildProbeStats bp = ParallelBuildProbe(pr.output, ps.output,
                                          config.num_threads, pool.get(),
                                          static_cast<const T*>(nullptr));

  double build_probe = bp.wall_seconds;
  if (config.coherence_penalty) {
    // Apportion the wall time into its build and probe shares using the
    // aggregated per-thread CPU times, then scale each share by its
    // Table 1 factor (build reads sequentially, probe randomly).
    double cpu_total = bp.build_cpu_seconds + bp.probe_cpu_seconds;
    if (cpu_total > 0) {
      double build_share = bp.build_cpu_seconds / cpu_total;
      double probe_share = bp.probe_cpu_seconds / cpu_total;
      double factor =
          build_share * CoherenceModel::BuildFactor(LastWriter::kFpga) +
          probe_share * CoherenceModel::ProbeFactor(LastWriter::kFpga);
      build_probe *= factor;
    }
  }

  JoinResult result;
  result.matches = bp.matches;
  result.checksum = bp.checksum;
  result.partition_seconds = pr.seconds + ps.seconds;
  result.build_probe_seconds = build_probe;
  result.total_seconds = result.partition_seconds + result.build_probe_seconds;
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

/// PAD-mode execution with the Section 5.4 fallback: if a partition
/// overflows, the join is retried with the HIST-mode circuit (the paper's
/// alternative fallback is the CPU partitioner).
template <typename T>
Result<JoinResult> HybridJoinWithFallback(const HybridJoinConfig& config,
                                          const Relation<T>& r,
                                          const Relation<T>& s,
                                          bool* fell_back = nullptr) {
  if (fell_back != nullptr) *fell_back = false;
  Result<JoinResult> first = HybridJoin(config, r, s);
  if (first.ok() || !first.status().IsPartitionOverflow()) return first;
  if (fell_back != nullptr) *fell_back = true;
  HybridJoinConfig retry = config;
  retry.fpga.output_mode = OutputMode::kHist;
  return HybridJoin(retry, r, s);
}

}  // namespace fpart
