// The partitioned (radix) hash join of Section 3.3: partition both
// relations so every partition pair fits in cache, then build+probe each
// pair. This is the pure-CPU join the paper compares the hybrid against.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/thread_pool.h"
#include "cpu/partitioner.h"
#include "datagen/relation.h"
#include "join/build_probe.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpart {

/// \brief Configuration of the CPU radix join.
struct CpuJoinConfig {
  uint32_t fanout = 8192;
  /// Radix or robust (murmur) partitioning — Section 5.3 compares both.
  HashMethod hash = HashMethod::kRadix;
  size_t num_threads = 1;
  bool use_buffers = true;
  bool non_temporal = true;
  /// Fused single-hash SIMD partitioning path (see CpuPartitionerConfig).
  bool use_simd = true;
  /// Software-prefetch lookahead for the partitioning scatter and the
  /// build+probe bucket accesses (0 disables prefetching).
  uint32_t prefetch_distance = 16;
  /// Shared worker pool; when null and num_threads > 1 the call constructs
  /// its own (benchmark loops should pass one and reuse it).
  ThreadPool* pool = nullptr;
};

/// \brief Phase timings and result of one join execution.
struct JoinResult {
  uint64_t matches = 0;
  uint64_t checksum = 0;
  /// Partitioning time for both relations (CPU: measured wall; hybrid:
  /// simulated FPGA seconds).
  double partition_seconds = 0.0;
  /// Build+probe wall time (hybrid: scaled by the coherence penalty).
  double build_probe_seconds = 0.0;
  double total_seconds = 0.0;
  /// (|R| + |S|) / total_seconds, the throughput metric of Section 5.2.
  double mtuples_per_sec = 0.0;
};

/// Execute a partitioned hash join R ⋈ S entirely on the CPU.
template <typename T>
Result<JoinResult> CpuRadixJoin(const CpuJoinConfig& config,
                                const Relation<T>& r, const Relation<T>& s) {
  CpuPartitionerConfig pc;
  pc.fanout = config.fanout;
  pc.hash = config.hash;
  pc.num_threads = config.num_threads;
  pc.use_buffers = config.use_buffers;
  pc.non_temporal = config.non_temporal;
  pc.use_simd = config.use_simd;
  pc.prefetch_distance = config.prefetch_distance;

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && config.num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = own_pool.get();
  }
  pc.pool = pool;

  CpuRunResult<T> pr, ps;
  {
    obs::TraceSpan span("join.radix.partition_r", "join");
    FPART_ASSIGN_OR_RETURN(pr, CpuPartition(pc, r.data(), r.size()));
  }
  {
    obs::TraceSpan span("join.radix.partition_s", "join");
    FPART_ASSIGN_OR_RETURN(ps, CpuPartition(pc, s.data(), s.size()));
  }

  BuildProbeStats bp;
  {
    obs::TraceSpan span("join.radix.build_probe", "join");
    bp = ParallelBuildProbe(pr.output, ps.output, config.num_threads, pool,
                            static_cast<const T*>(nullptr),
                            config.prefetch_distance);
  }
  auto& reg = obs::Registry::Global();
  reg.GetCounter("join.radix.runs", "runs", "CPU radix joins completed")
      ->Add();
  reg.GetCounter("join.matches", "tuples",
                 "join result tuples (radix + hybrid)")
      ->Add(bp.matches);

  JoinResult result;
  result.matches = bp.matches;
  result.checksum = bp.checksum;
  result.partition_seconds = pr.seconds + ps.seconds;
  result.build_probe_seconds = bp.wall_seconds;
  result.total_seconds = result.partition_seconds + result.build_probe_seconds;
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

}  // namespace fpart
