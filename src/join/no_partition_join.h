// Non-partitioned (global hash table) join baseline.
//
// Schuh et al. [31] — the study motivating this paper — compare partitioned
// radix joins against non-partitioned hash joins; we include the latter so
// the repository can reproduce that comparison context (Section 7).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/relation.h"
#include "hash/murmur.h"
#include "join/radix_join.h"

namespace fpart {

/// Execute R ⋈ S with one shared chained hash table: parallel lock-free
/// build (CAS on bucket heads), parallel probe. No partitioning pass, but
/// every probe is a cache/TLB miss on large relations.
template <typename T>
Result<JoinResult> NoPartitionJoin(size_t num_threads, const Relation<T>& r,
                                   const Relation<T>& s,
                                   ThreadPool* shared_pool = nullptr) {
  num_threads = std::max<size_t>(1, num_threads);
  size_t num_buckets = 16;
  while (num_buckets < r.size()) num_buckets <<= 1;
  const uint32_t mask = static_cast<uint32_t>(num_buckets - 1);

  std::vector<std::atomic<int64_t>> buckets(num_buckets);
  for (auto& b : buckets) b.store(-1, std::memory_order_relaxed);
  std::vector<int64_t> next(r.size());

  auto bucket_of = [mask](uint64_t key) -> uint32_t {
    if constexpr (sizeof(decltype(T{}.key)) == 4) {
      return Murmur32(static_cast<uint32_t>(key)) & mask;
    } else {
      return static_cast<uint32_t>(Murmur64(key)) & mask;
    }
  };

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = shared_pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  const T* r_data = r.data();
  const T* s_data = s.data();

  Timer build_timer;
  auto build_worker = [&](size_t t) {
    size_t begin = r.size() * t / num_threads;
    size_t end = r.size() * (t + 1) / num_threads;
    for (size_t i = begin; i < end; ++i) {
      uint32_t b = bucket_of(r_data[i].key);
      int64_t head = buckets[b].load(std::memory_order_relaxed);
      do {
        next[i] = head;
      } while (!buckets[b].compare_exchange_weak(
          head, static_cast<int64_t>(i), std::memory_order_release,
          std::memory_order_relaxed));
    }
  };
  if (pool) {
    pool->ParallelFor(num_threads, build_worker);
  } else {
    build_worker(0);
  }
  double build_seconds = build_timer.Seconds();

  Timer probe_timer;
  std::vector<uint64_t> matches(num_threads, 0), sums(num_threads, 0);
  auto probe_worker = [&](size_t t) {
    size_t begin = s.size() * t / num_threads;
    size_t end = s.size() * (t + 1) / num_threads;
    uint64_t m = 0, sum = 0;
    for (size_t j = begin; j < end; ++j) {
      // The global table guarantees a miss per probe; keep a window of
      // bucket-head loads in flight (same lookahead as the radix probe).
      if (j + kDefaultProbePrefetchDistance < end) {
        PrefetchForRead(
            &buckets[bucket_of(s_data[j + kDefaultProbePrefetchDistance].key)]);
      }
      uint64_t key = s_data[j].key;
      for (int64_t i = buckets[bucket_of(key)].load(std::memory_order_acquire);
           i >= 0; i = next[i]) {
        if (r_data[i].key == static_cast<decltype(T{}.key)>(key)) {
          ++m;
          sum += GetPayloadId(r_data[i]);
        }
      }
    }
    matches[t] = m;
    sums[t] = sum;
  };
  if (pool) {
    pool->ParallelFor(num_threads, probe_worker);
  } else {
    probe_worker(0);
  }

  JoinResult result;
  result.partition_seconds = 0.0;
  result.build_probe_seconds = build_seconds + probe_timer.Seconds();
  result.total_seconds = result.build_probe_seconds;
  for (size_t t = 0; t < num_threads; ++t) {
    result.matches += matches[t];
    result.checksum += sums[t];
  }
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

}  // namespace fpart
