// Sort-merge equi-join baseline.
//
// The paper's motivation (Schuh et al. [31]) is that partitioned radix
// hash joins beat sort-based joins on large unskewed inputs; this baseline
// lets the repository reproduce that comparison context. Sorting is done
// with per-thread chunk sorts followed by pairwise merges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/relation.h"
#include "join/radix_join.h"

namespace fpart {
namespace internal {

/// Parallel sort of (key, payload-id) pairs: chunk sort + merge rounds.
inline void ParallelSortPairs(std::vector<std::pair<uint64_t, uint64_t>>* v,
                              size_t num_threads, ThreadPool* pool) {
  const size_t n = v->size();
  if (num_threads <= 1 || pool == nullptr || n < 4096) {
    std::sort(v->begin(), v->end());
    return;
  }
  std::vector<size_t> bounds;
  for (size_t t = 0; t <= num_threads; ++t) bounds.push_back(n * t / num_threads);
  pool->ParallelFor(num_threads, [&](size_t t) {
    std::sort(v->begin() + bounds[t], v->begin() + bounds[t + 1]);
  });
  // Pairwise merge rounds until a single sorted run remains.
  while (bounds.size() > 2) {
    std::vector<size_t> next;
    next.push_back(0);
    size_t pairs = (bounds.size() - 1) / 2;
    pool->ParallelFor(pairs, [&](size_t i) {
      std::inplace_merge(v->begin() + bounds[2 * i],
                         v->begin() + bounds[2 * i + 1],
                         v->begin() + bounds[2 * i + 2]);
    });
    for (size_t i = 2; i < bounds.size(); i += 2) next.push_back(bounds[i]);
    if ((bounds.size() - 1) % 2 == 1) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace internal

/// Execute R ⋈ S by sorting both relations on the key and merging.
template <typename T>
Result<JoinResult> SortMergeJoin(size_t num_threads, const Relation<T>& r,
                                 const Relation<T>& s,
                                 ThreadPool* shared_pool = nullptr) {
  num_threads = std::max<size_t>(1, num_threads);
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = shared_pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  std::vector<std::pair<uint64_t, uint64_t>> rs(r.size()), ss(s.size());
  for (size_t i = 0; i < r.size(); ++i) {
    rs[i] = {static_cast<uint64_t>(r[i].key), GetPayloadId(r[i])};
  }
  for (size_t i = 0; i < s.size(); ++i) {
    ss[i] = {static_cast<uint64_t>(s[i].key), GetPayloadId(s[i])};
  }

  Timer sort_timer;
  internal::ParallelSortPairs(&rs, num_threads, pool);
  internal::ParallelSortPairs(&ss, num_threads, pool);
  double sort_seconds = sort_timer.Seconds();

  // Merge: for each equal-key run, matches += |run_R| × |run_S|.
  Timer merge_timer;
  uint64_t matches = 0, checksum = 0;
  size_t i = 0, j = 0;
  while (i < rs.size() && j < ss.size()) {
    if (rs[i].first < ss[j].first) {
      ++i;
    } else if (rs[i].first > ss[j].first) {
      ++j;
    } else {
      const uint64_t key = rs[i].first;
      size_t ri = i, sj = j;
      uint64_t r_run_sum = 0;
      while (ri < rs.size() && rs[ri].first == key) {
        r_run_sum += rs[ri].second;
        ++ri;
      }
      while (sj < ss.size() && ss[sj].first == key) ++sj;
      matches += static_cast<uint64_t>(ri - i) * (sj - j);
      checksum += r_run_sum * (sj - j);
      i = ri;
      j = sj;
    }
  }

  JoinResult result;
  result.matches = matches;
  result.checksum = checksum;
  // The sort plays the role of the partitioning pass.
  result.partition_seconds = sort_seconds;
  result.build_probe_seconds = merge_timer.Seconds();
  result.total_seconds = sort_seconds + result.build_probe_seconds;
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

}  // namespace fpart
