// Materializing join execution: produce the actual joined rows instead of
// only counting matches. Covers the materialization cost the paper
// discusses for VRID mode (Section 5.2): after partitioning a column store
// by key, payloads are gathered through the virtual record ids.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/partitioned_output.h"
#include "join/build_probe.h"
#include "join/hash_table.h"

namespace fpart {

/// \brief One materialized join result row.
struct JoinedRow {
  uint32_t key = 0;
  /// Payload (or VRID) of the matching R tuple.
  uint64_t r_payload = 0;
  /// Payload (or VRID) of the probing S tuple.
  uint64_t s_payload = 0;

  bool operator==(const JoinedRow&) const = default;
};

/// \brief Result of a materializing join.
struct MaterializedJoin {
  /// All joined rows, grouped by partition (concatenated in partition
  /// order; rows within a partition follow probe order).
  std::vector<JoinedRow> rows;
  double build_probe_seconds = 0.0;
  /// Extra time spent gathering real payloads through VRIDs (0 when the
  /// inputs were materialized RID tuples already).
  double gather_seconds = 0.0;
};

/// Build+probe over matching partition pairs, emitting joined rows.
/// Thread-parallel across partitions; each thread fills a private buffer
/// and the buffers are concatenated in partition order afterwards.
template <typename RPart, typename SPart, typename T>
MaterializedJoin MaterializeJoin(const RPart& r, const SPart& s,
                                 size_t num_threads, const T* /*tag*/,
                                 ThreadPool* shared_pool = nullptr) {
  num_threads = num_threads == 0 ? 1 : num_threads;
  const size_t num_parts = r.num_partitions();
  std::vector<std::vector<JoinedRow>> per_thread(num_threads);

  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = shared_pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  Timer timer;
  auto worker = [&](size_t t) {
    BucketChainTable<T> table;
    std::vector<JoinedRow>& out = per_thread[t];
    size_t begin = num_parts * t / num_threads;
    size_t end = num_parts * (t + 1) / num_threads;
    for (size_t p = begin; p < end; ++p) {
      const T* r_data = r.partition_data(p);
      const T* s_data = s.partition_data(p);
      size_t r_slots = r.partition_slots(p);
      size_t s_slots = s.partition_slots(p);
      if (r_slots == 0 || s_slots == 0) continue;
      BuildPartitionTable(&table, r_data, r_slots);
      for (size_t j = 0; j < s_slots; ++j) {
        if (j + kDefaultProbePrefetchDistance < s_slots &&
            !IsDummy(s_data[j + kDefaultProbePrefetchDistance])) {
          table.PrefetchBucket(s_data[j + kDefaultProbePrefetchDistance].key);
        }
        if (IsDummy(s_data[j])) continue;
        table.Probe(r_data, s_data[j].key, [&](uint32_t i) {
          out.push_back(JoinedRow{static_cast<uint32_t>(s_data[j].key),
                                  GetPayloadId(r_data[i]),
                                  GetPayloadId(s_data[j])});
        });
      }
    }
  };
  if (pool) {
    pool->ParallelFor(num_threads, worker);
  } else {
    worker(0);
  }

  MaterializedJoin result;
  size_t total = 0;
  for (const auto& rows : per_thread) total += rows.size();
  result.rows.reserve(total);
  for (auto& rows : per_thread) {
    result.rows.insert(result.rows.end(), rows.begin(), rows.end());
  }
  result.build_probe_seconds = timer.Seconds();
  return result;
}

/// VRID late materialization (Section 5.2): replace the virtual record ids
/// in `rows` with the real payloads gathered from the original columns.
/// This is the "additional materialization cost" of VRID mode.
template <typename PayloadT>
void GatherPayloads(const PayloadT* r_payloads, const PayloadT* s_payloads,
                    MaterializedJoin* join) {
  Timer timer;
  for (JoinedRow& row : join->rows) {
    row.r_payload = static_cast<uint64_t>(r_payloads[row.r_payload]);
    row.s_payload = static_cast<uint64_t>(s_payloads[row.s_payload]);
  }
  join->gather_seconds = timer.Seconds();
}

}  // namespace fpart
