// The per-partition build+probe kernel of the radix join (Section 3.3) and
// its parallel driver.
//
// Both loops software-prefetch the bucket head `prefetch_distance` tuples
// ahead (Group-Prefetch style, Chen et al.): the bucket array of a
// cache-sized partition still costs an L1/L2 miss per random touch, and a
// rolling lookahead keeps several of those loads in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/partitioned_output.h"
#include "datagen/tuple.h"
#include "join/hash_table.h"

namespace fpart {

/// Default bucket-head prefetch lookahead of the build+probe loops.
inline constexpr uint32_t kDefaultProbePrefetchDistance = 16;

/// \brief Outcome of the build+probe phase.
struct BuildProbeStats {
  uint64_t matches = 0;
  /// Sum of matched R payloads — a join-correctness checksum.
  uint64_t checksum = 0;
  /// Wall-clock time of the parallel phase.
  double wall_seconds = 0.0;
  /// Aggregated per-thread CPU time spent building / probing. Used to
  /// apportion the coherence penalty (build is sequential-read bound,
  /// probe is random-read bound — Section 2.2).
  double build_cpu_seconds = 0.0;
  double probe_cpu_seconds = 0.0;
};

/// Build `table` over one R partition, prefetching bucket heads ahead of
/// the inserts. `r_slots` counts stored tuple slots including dummy
/// padding; dummies are skipped (Section 4.2).
template <typename T>
void BuildPartitionTable(BucketChainTable<T>* table, const T* r_data,
                         size_t r_slots,
                         uint32_t prefetch_distance =
                             kDefaultProbePrefetchDistance) {
  table->Reset(r_slots);
  const size_t dist = prefetch_distance;
  for (size_t i = 0; i < r_slots; ++i) {
    if (dist != 0 && i + dist < r_slots && !IsDummy(r_data[i + dist])) {
      table->PrefetchBucket(r_data[i + dist].key);
    }
    if (!IsDummy(r_data[i])) {
      table->Insert(r_data, static_cast<uint32_t>(i));
    }
  }
}

/// Probe `table` with every real tuple of the S partition, prefetching
/// bucket heads ahead; invokes `fn(r_index)` per match.
template <typename T, typename Fn>
void ProbePartitionTable(const BucketChainTable<T>& table, const T* r_data,
                         const T* s_data, size_t s_slots,
                         uint32_t prefetch_distance, Fn&& fn) {
  const size_t dist = prefetch_distance;
  for (size_t j = 0; j < s_slots; ++j) {
    if (dist != 0 && j + dist < s_slots && !IsDummy(s_data[j + dist])) {
      table.PrefetchBucket(s_data[j + dist].key);
    }
    if (IsDummy(s_data[j])) continue;
    table.Probe(r_data, s_data[j].key, fn);
  }
}

/// Build a table over one R partition and probe it with the matching S
/// partition.
template <typename T>
void JoinPartition(const T* r_data, size_t r_slots, const T* s_data,
                   size_t s_slots, BucketChainTable<T>* table,
                   uint64_t* matches, uint64_t* checksum,
                   uint32_t prefetch_distance =
                       kDefaultProbePrefetchDistance) {
  if (r_slots == 0 || s_slots == 0) return;
  BuildPartitionTable(table, r_data, r_slots, prefetch_distance);
  uint64_t m = 0, sum = 0;
  ProbePartitionTable(*table, r_data, s_data, s_slots, prefetch_distance,
                      [&](uint32_t i) {
                        ++m;
                        sum += GetPayloadId(r_data[i]);
                      });
  *matches += m;
  *checksum += sum;
}

/// \brief Parallel build+probe over matching partition pairs.
///
/// Partitions are distributed across threads in contiguous ranges; each
/// pair is processed build-then-probe so the table stays cache resident.
template <typename RPart, typename SPart, typename T>
BuildProbeStats ParallelBuildProbe(const RPart& r, const SPart& s,
                                   size_t num_threads, ThreadPool* pool,
                                   const T* /*tag*/,
                                   uint32_t prefetch_distance =
                                       kDefaultProbePrefetchDistance) {
  const size_t num_parts = r.num_partitions();
  BuildProbeStats stats;
  std::vector<uint64_t> matches(num_threads, 0);
  std::vector<uint64_t> checksums(num_threads, 0);
  std::vector<double> build_secs(num_threads, 0.0);
  std::vector<double> probe_secs(num_threads, 0.0);

  auto worker = [&](size_t t) {
    BucketChainTable<T> table;
    size_t begin = num_parts * t / num_threads;
    size_t end = num_parts * (t + 1) / num_threads;
    for (size_t p = begin; p < end; ++p) {
      const T* r_data = r.partition_data(p);
      const T* s_data = s.partition_data(p);
      size_t r_slots = r.partition_slots(p);
      size_t s_slots = s.partition_slots(p);
      if (r_slots == 0 || s_slots == 0) continue;
      // Build.
      Timer timer;
      BuildPartitionTable(&table, r_data, r_slots, prefetch_distance);
      build_secs[t] += timer.Seconds();
      // Probe.
      timer.Restart();
      uint64_t m = 0, sum = 0;
      ProbePartitionTable(table, r_data, s_data, s_slots, prefetch_distance,
                          [&](uint32_t i) {
                            ++m;
                            sum += GetPayloadId(r_data[i]);
                          });
      probe_secs[t] += timer.Seconds();
      matches[t] += m;
      checksums[t] += sum;
    }
  };

  Timer wall;
  if (num_threads <= 1 || pool == nullptr) {
    worker(0);
  } else {
    pool->ParallelFor(num_threads, worker);
  }
  stats.wall_seconds = wall.Seconds();
  for (size_t t = 0; t < num_threads; ++t) {
    stats.matches += matches[t];
    stats.checksum += checksums[t];
    stats.build_cpu_seconds += build_secs[t];
    stats.probe_cpu_seconds += probe_secs[t];
  }
  return stats;
}

/// \brief Split-phase build: one table per R partition.
///
/// Used by the overlapped hybrid join, which builds over R's partitions
/// while S is still being partitioned on another thread. Unlike the
/// interleaved ParallelBuildProbe, every non-empty R partition is built
/// (S's fill is not yet known) — unless the caller already knows S's
/// per-partition tuple counts and passes them as `s_hist`, in which case
/// R partitions whose matching S partition is empty are skipped (their
/// tables stay unbuilt; the probe never touches them). Adds the phase's
/// wall and per-thread CPU time to `stats`.
template <typename RPart, typename T>
std::vector<BucketChainTable<T>> ParallelBuildTables(
    const RPart& r, size_t num_threads, ThreadPool* pool,
    BuildProbeStats* stats, const T* /*tag*/,
    uint32_t prefetch_distance = kDefaultProbePrefetchDistance,
    const std::vector<uint64_t>* s_hist = nullptr) {
  const size_t num_parts = r.num_partitions();
  std::vector<BucketChainTable<T>> tables(num_parts);
  std::vector<double> build_secs(num_threads, 0.0);
  const bool have_skip = s_hist != nullptr && s_hist->size() == num_parts;

  auto worker = [&](size_t t) {
    Timer timer;
    size_t begin = num_parts * t / num_threads;
    size_t end = num_parts * (t + 1) / num_threads;
    for (size_t p = begin; p < end; ++p) {
      const T* r_data = r.partition_data(p);
      size_t r_slots = r.partition_slots(p);
      if (r_slots == 0) continue;
      if (have_skip && (*s_hist)[p] == 0) continue;
      BuildPartitionTable(&tables[p], r_data, r_slots, prefetch_distance);
    }
    build_secs[t] = timer.Seconds();
  };

  Timer wall;
  if (num_threads <= 1 || pool == nullptr) {
    worker(0);
  } else {
    pool->ParallelFor(num_threads, worker);
  }
  stats->wall_seconds += wall.Seconds();
  for (double s : build_secs) stats->build_cpu_seconds += s;
  return tables;
}

/// \brief Split-phase probe over pre-built per-partition tables.
template <typename RPart, typename SPart, typename T>
void ParallelProbeTables(const RPart& r, const SPart& s,
                         const std::vector<BucketChainTable<T>>& tables,
                         size_t num_threads, ThreadPool* pool,
                         BuildProbeStats* stats,
                         uint32_t prefetch_distance =
                             kDefaultProbePrefetchDistance) {
  const size_t num_parts = r.num_partitions();
  std::vector<uint64_t> matches(num_threads, 0);
  std::vector<uint64_t> checksums(num_threads, 0);
  std::vector<double> probe_secs(num_threads, 0.0);

  auto worker = [&](size_t t) {
    Timer timer;
    uint64_t m = 0, sum = 0;
    size_t begin = num_parts * t / num_threads;
    size_t end = num_parts * (t + 1) / num_threads;
    for (size_t p = begin; p < end; ++p) {
      const T* r_data = r.partition_data(p);
      const T* s_data = s.partition_data(p);
      size_t s_slots = s.partition_slots(p);
      if (r.partition_slots(p) == 0 || s_slots == 0) continue;
      if (tables[p].num_buckets() == 0) continue;  // skipped known-empty S
      ProbePartitionTable(tables[p], r_data, s_data, s_slots,
                          prefetch_distance, [&](uint32_t i) {
                            ++m;
                            sum += GetPayloadId(r_data[i]);
                          });
    }
    probe_secs[t] = timer.Seconds();
    matches[t] = m;
    checksums[t] = sum;
  };

  Timer wall;
  if (num_threads <= 1 || pool == nullptr) {
    worker(0);
  } else {
    pool->ParallelFor(num_threads, worker);
  }
  stats->wall_seconds += wall.Seconds();
  for (size_t t = 0; t < num_threads; ++t) {
    stats->matches += matches[t];
    stats->checksum += checksums[t];
    stats->probe_cpu_seconds += probe_secs[t];
  }
}

}  // namespace fpart
