// Bucket-chaining hash table for the in-cache build+probe phase of the
// radix join (Manegold et al. [21], Section 3.3 of the paper).
//
// The table does not copy tuples: buckets chain indices into the partition
// data itself. During the probe this means random accesses into the
// partition — exactly the access pattern that the coherence snooping of
// Section 2.2 penalizes when the partition was written by the FPGA.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "datagen/tuple.h"
#include "hash/murmur.h"
#include "hash/radix.h"

namespace fpart {

/// \brief Chained hash table over one cache-sized partition.
///
/// Reusable across partitions: Reset() re-buckets without reallocating, so
/// the per-thread scratch stays warm.
template <typename T>
class BucketChainTable {
 public:
  /// Prepare for a partition of `slots` tuple slots (including dummies).
  void Reset(size_t slots) {
    size_t want_buckets = 1;
    while (want_buckets < slots) want_buckets <<= 1;
    if (want_buckets < 16) want_buckets = 16;
    buckets_.assign(want_buckets, -1);
    next_.resize(slots);
    mask_ = static_cast<uint32_t>(want_buckets - 1);
  }

  /// Insert the tuple at index `i` of the partition (skip dummies upstream).
  void Insert(const T* data, uint32_t i) {
    uint32_t b = BucketOf(data[i].key);
    next_[i] = buckets_[b];
    buckets_[b] = static_cast<int32_t>(i);
  }

  /// Probe with `key`; invokes `fn(index)` for every chained candidate
  /// whose key matches.
  template <typename Fn>
  void Probe(const T* data, decltype(T{}.key) key, Fn&& fn) const {
    for (int32_t i = buckets_[BucketOf(key)]; i >= 0; i = next_[i]) {
      if (data[i].key == key) fn(static_cast<uint32_t>(i));
    }
  }

  /// Prefetch the bucket head a future probe/insert of `key` will touch
  /// (Group-Prefetch style: issue this G keys ahead of the access so the
  /// random bucket load is in flight by the time the chain walk starts).
  void PrefetchBucket(decltype(T{}.key) key) const {
    PrefetchForRead(&buckets_[BucketOf(key)]);
  }

  size_t num_buckets() const { return buckets_.size(); }

 private:
  /// Bucket index: an independent murmur slice, so it stays well
  /// distributed even though the partitioning already consumed the low
  /// key/hash bits.
  uint32_t BucketOf(uint64_t key) const {
    if constexpr (sizeof(decltype(T{}.key)) == 4) {
      return Murmur32(static_cast<uint32_t>(key) ^ 0x9e3779b9U) & mask_;
    } else {
      return static_cast<uint32_t>(Murmur64(key ^ 0x9e3779b97f4a7c15ULL)) &
             mask_;
    }
  }

  std::vector<int32_t> buckets_;
  std::vector<int32_t> next_;
  uint32_t mask_ = 0;
};

}  // namespace fpart
