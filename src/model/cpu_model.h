// Performance model of the paper's CPU baseline (10-core Xeon E5-2680 v2),
// calibrated to Figures 4, 10 and 11.
//
// The reproduction substitutes this model where the paper's experiment
// needs the 10-core Xeon itself: the host executing this repository may
// have any number of cores (possibly one), so the thread-scaling *shape*
// of the CPU lines is reported from this calibrated model, next to the
// host-measured numbers. Calibration anchors:
//   - Figure 4: single-thread radix partitioning ≈ 150 Mtuples/s,
//     single-thread hash (murmur) partitioning ≈ 75 Mtuples/s, both
//     saturating at ≈ 506 Mtuples/s by 10 threads (memory bound).
//   - Figure 10b: 10-thread build+probe of workload A (256e6 tuples)
//     ≈ 0.35 s at 8192 partitions; Figure 10a single-threaded ≈ 1.7 s.
//   - Figure 10a: build+probe slows when partitions exceed cache size
//     (×1.65 from 8192 → 256 partitions at 128e6 tuples).
#pragma once

#include <cstdint>

#include "hash/hash_function.h"

namespace fpart {

/// \brief Calibrated throughput/time model of the paper's CPU baseline.
class CpuCostModel {
 public:
  /// Partitioning throughput in tuples/s for `threads` threads
  /// (8 B tuples, software-managed buffers + non-temporal stores).
  static double PartitionRateTuplesPerSec(size_t threads, HashMethod method) {
    const double single = method == HashMethod::kRadix
                              ? kRadixSingleThreadRate
                              : kHashSingleThreadRate;
    const double rate = single * static_cast<double>(threads);
    return rate < kMemoryBoundRate ? rate : kMemoryBoundRate;
  }

  /// Time to partition n tuples (one relation).
  static double PartitionSeconds(uint64_t n, size_t threads,
                                 HashMethod method) {
    return static_cast<double>(n) / PartitionRateTuplesPerSec(threads, method);
  }

  /// Build+probe time for |R|+|S| = total_tuples over `num_partitions`
  /// partitions of `r_tuples` build tuples. Blocks that spill out of the
  /// last-level-cache share slow the phase down (Figure 10).
  static double BuildProbeSeconds(uint64_t total_tuples, uint64_t r_tuples,
                                  uint32_t num_partitions, size_t threads) {
    const double rate_unbounded =
        kBuildProbeSingleThreadRate * static_cast<double>(threads);
    const double rate = rate_unbounded < kBuildProbeBoundRate
                            ? rate_unbounded
                            : kBuildProbeBoundRate;
    return total_tuples / rate *
           CachePenalty(r_tuples, num_partitions);
  }

  /// Multiplier > 1 when a build partition no longer fits in cache.
  static double CachePenalty(uint64_t r_tuples, uint32_t num_partitions) {
    const double part_bytes =
        static_cast<double>(r_tuples) / num_partitions * 8.0;
    if (part_bytes <= kCacheFitBytes) return 1.0;
    double doublings = 0.0;
    double b = part_bytes;
    while (b > kCacheFitBytes) {
      b /= 2.0;
      doublings += 1.0;
    }
    return 1.0 + kCachePenaltyPerDoubling * doublings;
  }

  /// End-to-end radix-join time on the paper's CPU (both partitions plus
  /// build+probe), Figures 10–12.
  static double JoinSeconds(uint64_t r_tuples, uint64_t s_tuples,
                            uint32_t num_partitions, size_t threads,
                            HashMethod method) {
    return PartitionSeconds(r_tuples, threads, method) +
           PartitionSeconds(s_tuples, threads, method) +
           BuildProbeSeconds(r_tuples + s_tuples, r_tuples, num_partitions,
                             threads);
  }

  // Calibration constants (tuples/s and bytes).
  static constexpr double kRadixSingleThreadRate = 150e6;
  static constexpr double kHashSingleThreadRate = 75e6;
  static constexpr double kMemoryBoundRate = 506e6;
  static constexpr double kBuildProbeSingleThreadRate = 150e6;
  static constexpr double kBuildProbeBoundRate = 750e6;
  /// A partition is cache-resident up to ~128 KB (half the 256 KB L2,
  /// leaving room for the bucket arrays).
  static constexpr double kCacheFitBytes = 128.0 * 1024;
  static constexpr double kCachePenaltyPerDoubling = 0.13;
};

}  // namespace fpart
