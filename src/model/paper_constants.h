// Numbers reported in the paper, used by the benchmark harness to print
// paper-vs-measured comparisons (EXPERIMENTS.md). All partitioning
// throughputs are Million 8 B tuples/s at 8192 partitions.
#pragma once

namespace fpart {
namespace paper {

// --- Figure 9: partitioner mode comparison.
inline constexpr double kFig9Polychroniou32Cores = 1100;  // [27]
inline constexpr double kFig9WangFpga = 256;              // [37]
inline constexpr double kFig9HistRid = 299;
inline constexpr double kFig9HistVrid = 391;
inline constexpr double kFig9PadRid = 436;
inline constexpr double kFig9PadVrid = 514;
inline constexpr double kFig9Cpu10Cores = 506;
inline constexpr double kFig9RawHist = 799;
inline constexpr double kFig9RawPad = 1597;

// --- Section 4.8: model validation look-ups.
inline constexpr double kModelHistRid = 294;   // B(2)   = 7.05 GB/s
inline constexpr double kModelMidModes = 435;  // B(1)   = 6.97 GB/s
inline constexpr double kModelPadVrid = 495;   // B(0.5) = 5.94 GB/s

// --- Table 1: coherence micro-benchmark (seconds, 512 MB region).
inline constexpr double kTab1CpuWroteSeq = 0.1381;
inline constexpr double kTab1CpuWroteRand = 1.1537;
inline constexpr double kTab1FpgaWroteSeq = 0.1533;
inline constexpr double kTab1FpgaWroteRand = 2.4876;

// --- Table 2: resource usage (percent) per tuple width.
struct Tab2Row {
  int width;
  int logic_pct;
  int bram_pct;
  int dsp_pct;
};
inline constexpr Tab2Row kTab2[] = {
    {8, 37, 76, 14}, {16, 28, 42, 21}, {32, 27, 24, 11}, {64, 27, 15, 6}};

// --- Section 5.2: headline join throughputs (Million tuples/s, 10 threads,
// workload A, 8192 partitions).
inline constexpr double kHybridJoinVrid = 406;
inline constexpr double kCpuJoin = 436;

// --- Section 7 context.
inline constexpr double kRawPartitioningReported = 1597;
inline constexpr double kEndToEndPartitioningReported = 514;

}  // namespace paper
}  // namespace fpart
