// The analytical cost model of the FPGA partitioner (Section 4.6,
// equations 1–7, Table 3) and its Section 4.8 validation helpers.
#pragma once

#include <cstdint>

#include "common/macros.h"
#include "fpga/config.h"
#include "qpi/bandwidth_model.h"

namespace fpart {

/// \brief Closed-form performance model of the partitioner circuit.
class FpgaCostModel {
 public:
  /// \param tuple_width  W in bytes (8/16/32/64)
  /// \param fanout       number of partitions (enters the flush latency)
  FpgaCostModel(int tuple_width, uint32_t fanout)
      : width_(tuple_width), fanout_(fanout) {}

  /// fmode: HIST scans the data twice (Table 3).
  static double ModeFactor(OutputMode mode) {
    return mode == OutputMode::kHist ? 2.0 : 1.0;
  }

  /// Sequential-read to random-write byte ratio r of a configuration
  /// (Section 4.8: HIST/RID → 2, HIST/VRID and PAD/RID → 1,
  /// PAD/VRID → 0.5).
  static double ReadWriteRatio(OutputMode mode, LayoutMode layout) {
    double reads_per_write = 1.0;
    if (mode == OutputMode::kHist) reads_per_write *= 2.0;
    if (layout == LayoutMode::kVrid) reads_per_write *= 0.5;
    return reads_per_write;
  }

  /// B_FPGA (eq. 3): raw circuit rate in tuples/s — one cache line per
  /// clock cycle.
  double CircuitRateTuplesPerSec() const {
    return static_cast<double>(kCacheLineSize) / width_ * kFpgaClockHz;
  }

  /// L_FPGA (eq. 4): pipeline fill/flush latency in seconds.
  /// c_writecomb is the flush scan over every (combiner, partition)
  /// address (Table 3 lists 65540 for K=8, 8192 partitions).
  double LatencySeconds() const {
    const int k = kCacheLineSize / width_;
    const double c_hashing = 5;
    const double c_writecomb = static_cast<double>(k) * fanout_ + 4;
    const double c_fifos = 4;
    return (c_hashing + c_writecomb + c_fifos) * kFpgaClockPeriodSec;
  }

  /// P_FPGA (eq. 5): processing rate limited by the circuit itself.
  double ProcessRateTuplesPerSec(uint64_t n, OutputMode mode) const {
    double b = CircuitRateTuplesPerSec();
    return 1.0 /
           (ModeFactor(mode) * (1.0 / b + LatencySeconds() / n));
  }

  /// P_mem (eq. 6): rate limited by the link, for bandwidth B(r) GB/s.
  double MemRateTuplesPerSec(double r, double bandwidth_gbs) const {
    return bandwidth_gbs * 1e9 / (width_ * (r + 1.0));
  }

  /// P_total (eq. 7) for a given link.
  double TotalRateTuplesPerSec(uint64_t n, OutputMode mode, LayoutMode layout,
                               LinkKind link,
                               Interference interference =
                                   Interference::kAlone) const {
    const double r = ReadWriteRatio(mode, layout);
    const double bw = link == LinkKind::kRawWrapper
                          ? kRawWrapperBandwidthGBs
                          : QpiBandwidthForRatio(r, interference);
    const double p_process = ProcessRateTuplesPerSec(n, mode);
    const double p_mem = MemRateTuplesPerSec(r, bw);
    return p_process < p_mem ? p_process : p_mem;
  }

  /// Predicted wall time to partition n tuples.
  double PredictSeconds(uint64_t n, OutputMode mode, LayoutMode layout,
                        LinkKind link,
                        Interference interference =
                            Interference::kAlone) const {
    return n / TotalRateTuplesPerSec(n, mode, layout, link, interference);
  }

  /// Queue-aware service estimate for the svc scheduler: the FPGA is a
  /// single exclusive device, so a newly admitted job first waits out the
  /// backlog of already-placed device work (M/D/1-style, with the backlog
  /// tracked by the arbiter) and only then streams at P_total. The svc
  /// placement compares this end-to-end latency against the CPU path and
  /// falls back to the CPU when the device queueing delay dominates.
  double PredictLatencySeconds(uint64_t n, OutputMode mode, LayoutMode layout,
                               LinkKind link, double queue_backlog_seconds,
                               Interference interference =
                                   Interference::kAlone) const {
    return queue_backlog_seconds +
           PredictSeconds(n, mode, layout, link, interference);
  }

  /// Multi-FPGA generalization of PredictLatencySeconds: the job queues on
  /// the least-backlogged device of an N-device pool, so the effective
  /// queueing delay is the minimum of the per-device backlog clocks.
  /// `device_backlogs` may be null (empty pool: no queueing delay).
  double PredictPoolLatencySeconds(uint64_t n, OutputMode mode,
                                   LayoutMode layout, LinkKind link,
                                   const double* device_backlogs,
                                   size_t num_devices,
                                   Interference interference =
                                       Interference::kAlone) const {
    double backlog = 0.0;
    if (device_backlogs != nullptr && num_devices > 0) {
      backlog = device_backlogs[0];
      for (size_t i = 1; i < num_devices; ++i) {
        if (device_backlogs[i] < backlog) backlog = device_backlogs[i];
      }
    }
    return PredictLatencySeconds(n, mode, layout, link, backlog,
                                 interference);
  }

  int tuple_width() const { return width_; }
  uint32_t fanout() const { return fanout_; }

 private:
  int width_;
  uint32_t fanout_;
};

}  // namespace fpart
