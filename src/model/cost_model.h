// The analytical cost model of the FPGA partitioner (Section 4.6,
// equations 1–7, Table 3) and its Section 4.8 validation helpers.
#pragma once

#include <cstdint>

#include "common/macros.h"
#include "fpga/config.h"
#include "qpi/bandwidth_model.h"

namespace fpart {

/// \brief Closed-form performance model of the partitioner circuit.
class FpgaCostModel {
 public:
  /// \param tuple_width  W in bytes (8/16/32/64)
  /// \param fanout       number of partitions (enters the flush latency)
  FpgaCostModel(int tuple_width, uint32_t fanout)
      : width_(tuple_width), fanout_(fanout) {}

  /// fmode: HIST scans the data twice (Table 3).
  static double ModeFactor(OutputMode mode) {
    return mode == OutputMode::kHist ? 2.0 : 1.0;
  }

  /// Sequential-read to random-write byte ratio r of a configuration
  /// (Section 4.8: HIST/RID → 2, HIST/VRID and PAD/RID → 1,
  /// PAD/VRID → 0.5).
  static double ReadWriteRatio(OutputMode mode, LayoutMode layout) {
    double reads_per_write = 1.0;
    if (mode == OutputMode::kHist) reads_per_write *= 2.0;
    if (layout == LayoutMode::kVrid) reads_per_write *= 0.5;
    return reads_per_write;
  }

  /// B_FPGA (eq. 3): raw circuit rate in tuples/s — one cache line per
  /// clock cycle.
  double CircuitRateTuplesPerSec() const {
    return static_cast<double>(kCacheLineSize) / width_ * kFpgaClockHz;
  }

  /// L_FPGA (eq. 4): pipeline fill/flush latency in seconds.
  /// c_writecomb is the flush scan over every (combiner, partition)
  /// address (Table 3 lists 65540 for K=8, 8192 partitions).
  double LatencySeconds() const {
    const int k = kCacheLineSize / width_;
    const double c_hashing = 5;
    const double c_writecomb = static_cast<double>(k) * fanout_ + 4;
    const double c_fifos = 4;
    return (c_hashing + c_writecomb + c_fifos) * kFpgaClockPeriodSec;
  }

  /// P_FPGA (eq. 5): processing rate limited by the circuit itself.
  double ProcessRateTuplesPerSec(uint64_t n, OutputMode mode) const {
    double b = CircuitRateTuplesPerSec();
    return 1.0 /
           (ModeFactor(mode) * (1.0 / b + LatencySeconds() / n));
  }

  /// P_mem (eq. 6): rate limited by the link, for bandwidth B(r) GB/s.
  double MemRateTuplesPerSec(double r, double bandwidth_gbs) const {
    return bandwidth_gbs * 1e9 / (width_ * (r + 1.0));
  }

  /// P_total (eq. 7) for a given link.
  double TotalRateTuplesPerSec(uint64_t n, OutputMode mode, LayoutMode layout,
                               LinkKind link,
                               Interference interference =
                                   Interference::kAlone) const {
    const double r = ReadWriteRatio(mode, layout);
    const double bw = link == LinkKind::kRawWrapper
                          ? kRawWrapperBandwidthGBs
                          : QpiBandwidthForRatio(r, interference);
    const double p_process = ProcessRateTuplesPerSec(n, mode);
    const double p_mem = MemRateTuplesPerSec(r, bw);
    return p_process < p_mem ? p_process : p_mem;
  }

  /// Predicted wall time to partition n tuples.
  double PredictSeconds(uint64_t n, OutputMode mode, LayoutMode layout,
                        LinkKind link,
                        Interference interference =
                            Interference::kAlone) const {
    return n / TotalRateTuplesPerSec(n, mode, layout, link, interference);
  }

  /// Queue-aware service estimate for the svc scheduler: the FPGA is a
  /// single exclusive device, so a newly admitted job first waits out the
  /// backlog of already-placed device work (M/D/1-style, with the backlog
  /// tracked by the arbiter) and only then streams at P_total. The svc
  /// placement compares this end-to-end latency against the CPU path and
  /// falls back to the CPU when the device queueing delay dominates.
  double PredictLatencySeconds(uint64_t n, OutputMode mode, LayoutMode layout,
                               LinkKind link, double queue_backlog_seconds,
                               Interference interference =
                                   Interference::kAlone) const {
    return queue_backlog_seconds +
           PredictSeconds(n, mode, layout, link, interference);
  }

  /// Multi-FPGA generalization of PredictLatencySeconds: the job queues on
  /// the least-backlogged device of an N-device pool, so the effective
  /// queueing delay is the minimum of the per-device backlog clocks.
  /// `device_backlogs` may be null (empty pool: no queueing delay).
  double PredictPoolLatencySeconds(uint64_t n, OutputMode mode,
                                   LayoutMode layout, LinkKind link,
                                   const double* device_backlogs,
                                   size_t num_devices,
                                   Interference interference =
                                       Interference::kAlone) const {
    double backlog = 0.0;
    if (device_backlogs != nullptr && num_devices > 0) {
      backlog = device_backlogs[0];
      for (size_t i = 1; i < num_devices; ++i) {
        if (device_backlogs[i] < backlog) backlog = device_backlogs[i];
      }
    }
    return PredictLatencySeconds(n, mode, layout, link, backlog,
                                 interference);
  }

  /// \brief Cycle/stall prediction for one simulator pass (eq. 5–7 recast
  /// at cache-line granularity for SimMode::kAnalytical).
  struct PassPrediction {
    uint64_t cycles = 0;
    uint64_t read_stall_cycles = 0;
    uint64_t write_stall_cycles = 0;
  };

  /// Link grant rate in cache lines per cycle for a pass whose traffic has
  /// the given sequential-read byte share — the B(r) curve of Figure 2
  /// divided by the line size and the clock (eq. 6 in line/cycle units).
  static double PassLinesPerCycle(LinkKind link, Interference interference,
                                  double read_fraction) {
    const double gbs = link == LinkKind::kRawWrapper
                           ? kRawWrapperBandwidthGBs
                           : MemoryBandwidthGBs(MemoryAgent::kFpga,
                                                interference, read_fraction);
    return gbs * 1e9 / kCacheLineSize / kFpgaClockHz;
  }

  /// Predict one pass: the circuit needs `circuit_cycles` if the link never
  /// stalls; the link needs (reads + writes) / B(r) cycles to grant the
  /// pass's line traffic. The pass takes the larger of the two (eq. 7), and
  /// the difference is back-pressure, split across directions in proportion
  /// to their line counts.
  static PassPrediction PredictPassCycles(uint64_t circuit_cycles,
                                          uint64_t read_lines,
                                          uint64_t write_lines, LinkKind link,
                                          Interference interference) {
    PassPrediction p;
    const uint64_t demand = read_lines + write_lines;
    p.cycles = circuit_cycles;
    if (demand > 0) {
      const double rf = static_cast<double>(read_lines) /
                        static_cast<double>(demand);
      const double rate = PassLinesPerCycle(link, interference, rf);
      const uint64_t link_cycles =
          static_cast<uint64_t>(static_cast<double>(demand) / rate);
      if (link_cycles > p.cycles) p.cycles = link_cycles;
      const uint64_t stall = p.cycles - circuit_cycles;
      p.read_stall_cycles = static_cast<uint64_t>(
          static_cast<double>(stall) * rf + 0.5);
      p.write_stall_cycles = stall - p.read_stall_cycles;
    }
    return p;
  }

  int tuple_width() const { return width_; }
  uint32_t fanout() const { return fanout_; }

 private:
  int width_;
  uint32_t fanout_;
};

}  // namespace fpart
