#include "stream/repartition.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace fpart::stream {
namespace {

obs::Counter* JobsCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stream.rebalance.jobs", "jobs", "rebalance jobs submitted to svc");
  return c;
}

}  // namespace

RepartitionManager::RepartitionManager(StreamStore* store,
                                       svc::Scheduler* scheduler,
                                       RepartitionConfig config)
    : store_(store),
      scheduler_(scheduler),
      config_(std::move(config)),
      detector_(config_.detector) {
  if (config_.tick_every_drains == 0) config_.tick_every_drains = 1;
}

RepartitionManager::~RepartitionManager() { Quiesce(); }

uint64_t RepartitionManager::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detector_.ticks();
}

uint64_t RepartitionManager::jobs_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

uint64_t RepartitionManager::jobs_abandoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abandoned_;
}

void RepartitionManager::OnDrain() {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (++drain_count_ % config_.tick_every_drains != 0) return;
  TickLocked();
  if (config_.deterministic) CommitDueLocked(/*force=*/false);
}

void RepartitionManager::Quiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  CommitDueLocked(/*force=*/true);
}

void RepartitionManager::TickLocked() {
  const std::vector<RebalanceAction> actions =
      detector_.Tick(store_->Stats(/*reset_appended=*/true));
  for (const RebalanceAction& act : actions) {
    // One rebuild per (pattern, depth) in flight: a second decision for
    // the same bucket would only produce a stale commit.
    const bool in_flight =
        std::any_of(pending_.begin(), pending_.end(), [&](const Pending& p) {
          return p.action.pattern == act.pattern &&
                 p.action.depth == act.depth &&
                 p.action.split == act.split;
        });
    if (in_flight) continue;

    auto staged = std::make_shared<std::optional<StreamStore::Staged>>();
    StreamStore* store = store_;
    const bool commit_inline = !config_.deterministic;
    svc::RebalanceJobSpec spec;
    spec.cost_tuples = std::max<uint64_t>(1, act.tuples);
    spec.work = [store, act, staged,
                 commit_inline](const std::atomic<bool>* cancel) -> Status {
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        return Status::Cancelled("rebalance cancelled before prepare");
      }
      auto prep = act.split ? store->PrepareSplit(act.pattern, act.depth)
                            : store->PrepareMerge(act.pattern, act.depth);
      FPART_RETURN_NOT_OK(prep.status());
      if (commit_inline) {
        return store->Commit(std::move(prep).ValueUnsafe());
      }
      *staged = std::move(prep).ValueUnsafe();
      return Status::OK();
    };

    svc::JobOptions opts;
    opts.job_class = config_.job_class;
    if (config_.deterministic) {
      opts.arrival_seq = config_.next_arrival_seq ? config_.next_arrival_seq()
                                                  : own_seq_++;
      if (config_.virtual_now) {
        opts.virtual_arrival_seconds = config_.virtual_now();
      }
    }
    auto handle = scheduler_->Submit(spec, opts);
    if (!handle.ok()) continue;  // queue full / shutting down: drop, re-detect
    ++submitted_;
    JobsCounter()->Add();
    Pending p;
    p.action = act;
    p.handle = std::move(handle).ValueUnsafe();
    p.due_tick = detector_.ticks() + config_.flip_delay_ticks;
    p.staged = std::move(staged);
    pending_.push_back(std::move(p));
  }
}

void RepartitionManager::CommitDueLocked(bool force) {
  const uint64_t now = detector_.ticks();
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!force && it->due_tick > now) {
      ++it;
      continue;
    }
    const svc::JobOutcome& out = it->handle.Wait();
    bool committed = false;
    if (config_.deterministic) {
      if (out.state == svc::JobState::kCompleted && it->staged->has_value()) {
        committed = store_->Commit(std::move(**it->staged)).ok();
      }
    } else {
      committed = out.state == svc::JobState::kCompleted;
    }
    if (!committed) ++abandoned_;
    it = pending_.erase(it);
  }
}

}  // namespace fpart::stream
