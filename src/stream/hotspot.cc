#include "stream/hotspot.h"

#include <algorithm>

#include "obs/metrics.h"

namespace fpart::stream {
namespace {

struct HotspotMetrics {
  obs::Counter* ticks;
  obs::Counter* splits;
  obs::Counter* merges;
  obs::Counter* suppressed_hysteresis;
  obs::Counter* suppressed_cooldown;
};

HotspotMetrics& Metrics() {
  static HotspotMetrics m = [] {
    auto& reg = obs::Registry::Global();
    HotspotMetrics x;
    x.ticks = reg.GetCounter("stream.hotspot.ticks", "ticks",
                             "detector sampling ticks");
    x.splits = reg.GetCounter("stream.hotspot.split_decisions", "actions",
                              "split actions emitted");
    x.merges = reg.GetCounter("stream.hotspot.merge_decisions", "actions",
                              "merge actions emitted");
    x.suppressed_hysteresis =
        reg.GetCounter("stream.hotspot.suppressed_hysteresis", "conditions",
                       "hot/cold conditions below the hysteresis streak");
    x.suppressed_cooldown =
        reg.GetCounter("stream.hotspot.suppressed_cooldown", "conditions",
                       "hot/cold conditions muted by a flip cooldown");
    return x;
  }();
  return m;
}

}  // namespace

HotspotDetector::HotspotDetector(HotspotConfig config) : config_(config) {
  if (config_.hysteresis_ticks < 1) config_.hysteresis_ticks = 1;
  if (config_.cooldown_ticks < 0) config_.cooldown_ticks = 0;
  if (config_.max_actions_per_tick == 0) config_.max_actions_per_tick = 1;
}

std::vector<RebalanceAction> HotspotDetector::Tick(
    const std::vector<StreamStore::BucketStat>& buckets) {
  ++ticks_;
  Metrics().ticks->Add();
  std::vector<RebalanceAction> actions;
  if (buckets.empty()) return actions;

  uint64_t sum = 0;
  for (const auto& b : buckets) sum += b.tuples;
  const uint64_t mean = sum / buckets.size();
  const int mean_class = obs::Histogram::BucketOf(mean);

  for (auto& [key, streak] : state_) {
    if (streak.cooldown > 0) --streak.cooldown;
  }

  // -- Hot buckets -> split candidates ----------------------------------
  std::vector<RebalanceAction> split_cands;
  for (const auto& b : buckets) {
    Streak& s = state_[{b.pattern, b.depth}];
    const bool hot =
        b.depth < config_.max_depth && b.tuples >= config_.split_min_tuples &&
        obs::Histogram::BucketOf(b.tuples) >=
            mean_class + config_.split_log2_delta;
    if (!hot) {
      s.hot = 0;
      continue;
    }
    ++s.hot;
    if (s.cooldown > 0) {
      ++suppressed_cooldown_;
      Metrics().suppressed_cooldown->Add();
      continue;
    }
    if (s.hot < config_.hysteresis_ticks) {
      ++suppressed_hysteresis_;
      Metrics().suppressed_hysteresis->Add();
      continue;
    }
    RebalanceAction act;
    act.split = true;
    act.pattern = b.pattern;
    act.depth = b.depth;
    act.tuples = b.tuples;
    split_cands.push_back(act);
  }

  // -- Cold buddy pairs -> merge candidates -----------------------------
  // A pair is addressable only when both children exist at the same
  // depth; the lo child (buddy bit clear) speaks for the pair, and its
  // streak entry doubles as the pair's state (one flip cooldown then
  // covers both re-split and re-merge of the same pattern).
  std::map<Key, uint64_t> size_at;
  for (const auto& b : buckets) size_at[{b.pattern, b.depth}] = b.tuples;
  std::vector<RebalanceAction> merge_cands;
  for (const auto& b : buckets) {
    if (b.depth <= config_.min_depth) continue;
    const uint64_t bit = uint64_t{1} << (b.depth - 1);
    if (b.pattern & bit) continue;
    auto buddy = size_at.find({b.pattern | bit, b.depth});
    if (buddy == size_at.end()) continue;
    const uint64_t combined = b.tuples + buddy->second;
    Streak& s = state_[{b.pattern, b.depth}];
    const bool cold = obs::Histogram::BucketOf(combined) <=
                      mean_class - config_.merge_log2_delta;
    if (!cold) {
      s.cold = 0;
      continue;
    }
    ++s.cold;
    if (s.cooldown > 0) {
      ++suppressed_cooldown_;
      Metrics().suppressed_cooldown->Add();
      continue;
    }
    if (s.cold < config_.hysteresis_ticks) {
      ++suppressed_hysteresis_;
      Metrics().suppressed_hysteresis->Add();
      continue;
    }
    RebalanceAction act;
    act.split = false;
    act.pattern = b.pattern;
    act.depth = b.depth;
    act.tuples = combined;
    merge_cands.push_back(act);
  }

  // Hottest splits first, then coldest merges, capped per tick.
  std::sort(split_cands.begin(), split_cands.end(),
            [](const RebalanceAction& a, const RebalanceAction& b) {
              return a.tuples != b.tuples ? a.tuples > b.tuples
                                          : a.pattern < b.pattern;
            });
  std::sort(merge_cands.begin(), merge_cands.end(),
            [](const RebalanceAction& a, const RebalanceAction& b) {
              return a.tuples != b.tuples ? a.tuples < b.tuples
                                          : a.pattern < b.pattern;
            });
  for (const auto& act : split_cands) {
    if (actions.size() >= config_.max_actions_per_tick) break;
    actions.push_back(act);
  }
  for (const auto& act : merge_cands) {
    if (actions.size() >= config_.max_actions_per_tick) break;
    actions.push_back(act);
  }

  // Reset the acted streaks and arm cooldowns on every pattern the flip
  // will produce, so the new layout gets `cooldown_ticks` of grace.
  for (const auto& act : actions) {
    Streak& s = state_[{act.pattern, act.depth}];
    s.hot = 0;
    s.cold = 0;
    s.cooldown = config_.cooldown_ticks;
    if (act.split) {
      ++split_decisions_;
      Metrics().splits->Add();
      state_[{act.pattern, act.depth + 1}].cooldown = config_.cooldown_ticks;
      state_[{act.pattern | (uint64_t{1} << act.depth), act.depth + 1}]
          .cooldown = config_.cooldown_ticks;
    } else {
      ++merge_decisions_;
      Metrics().merges->Add();
      state_[{act.pattern, act.depth - 1}].cooldown = config_.cooldown_ticks;
      state_[{act.pattern | (uint64_t{1} << (act.depth - 1)), act.depth}]
          .cooldown = config_.cooldown_ticks;
    }
  }

  // Drop fully quiescent entries so the state map tracks the live layout
  // instead of growing with its history.
  for (auto it = state_.begin(); it != state_.end();) {
    const Streak& s = it->second;
    if (s.hot == 0 && s.cold == 0 && s.cooldown == 0) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
  return actions;
}

}  // namespace fpart::stream
