// Continuous-ingest partitioned store: the data plane of the streaming
// subsystem (docs/streaming.md).
//
// The paper partitions one batch, once, under one (static) skew. A
// service under continuous traffic sees neither: keys arrive forever and
// the hot set moves. StreamStore keeps the arriving tuples in an
// extendible-hashing layout — a directory of 2^global_depth slots over
// buckets with a local depth — chosen because it composes exactly with
// the repo's partitioner stack: with HashMethod::kMurmur the directory
// index at depth d is the low d bits of Murmur32(key), which is precisely
// the partition index RunPartition computes at fanout 2^d. An ingest
// drain is therefore *one partitioner run* (CPU SIMD path or the
// simulated FPGA circuit) whose output runs append straight into the
// matching buckets; splitting a hot bucket distinguishes one more hash
// bit and merging cold buddies un-distinguishes it.
//
// Concurrency model (three lock tiers, never taken upward):
//   directory shared_mutex  >  per-bucket mutex  >  ingest-buffer mutex
// Reads and drains take the directory lock shared; only an epoch flip
// (StreamStore::Commit) takes it exclusive, and the expensive part of a
// split/merge — snapshotting and scattering the bucket — runs *before*
// the flip under no directory lock at all, so reads keep serving the old
// layout until the flip ("incremental repartitioning"). The flip itself
// only re-scatters the delta appended since the snapshot and swaps
// directory slots: O(delta + directory), not O(bucket).
//
// Determinism: every mutation is driven by the op stream (no wall-clock
// reads), the drain watermark (`drains()`) stamps each flip, and the
// scatter is stable — the post-flip bucket contents are a pure function
// of the pre-flip tuple sequence and the hash, independent of *when* the
// snapshot was taken. bench/ext_stream.cc builds its replayable
// determinism hash on exactly these properties.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "datagen/tuple.h"
#include "hash/hash_function.h"

namespace fpart::stream {

/// \brief Construction knobs of the streaming store.
struct StreamStoreConfig {
  /// log2 of the initial bucket count (clamped into [min_depth, max_depth]).
  uint32_t initial_depth = 4;
  /// Directory ceiling: no bucket exceeds this local depth.
  uint32_t max_depth = 12;
  /// Merge floor: no bucket shrinks below this local depth (>= 1).
  uint32_t min_depth = 2;
  /// Key -> bucket function. Must be a bit-slicing method (kMurmur is the
  /// default everywhere in the repo); kRange is not supported.
  HashMethod hash = HashMethod::kMurmur;
  /// Backend of the ingest drains (the per-batch partitioner run).
  Engine drain_engine = Engine::kCpu;
  /// FPGA drains only: simulator backend + result memoization.
  SimMode sim_mode = SimMode::kAnalytical;
  bool sim_cache = true;
  /// Bounded ingest buffer: Ingest() stages tuples here and drains
  /// synchronously when the bound is reached (backpressure by design —
  /// the caller's thread pays for the drain).
  size_t buffer_tuples = 8192;
  /// CPU drains only: threads of the per-drain partitioner run.
  size_t drain_threads = 1;
};

/// \brief Outcome of a point read.
struct ReadResult {
  /// Tuples whose key matched.
  uint64_t matches = 0;
  /// Tuples scanned (= the bucket's size): the work a read had to do, and
  /// the skew signal the p99 read latencies of bench/ext_stream.cc track.
  uint64_t scanned = 0;
  /// Layout epoch the read was served under.
  uint64_t epoch = 0;
};

/// \brief The continuous-ingest partitioned store.
class StreamStore {
 public:
  /// One hash bucket. Exposed (rather than pimpl'd) because Staged
  /// rebuilds reference buckets across Prepare/Commit.
  struct Bucket {
    Bucket(uint64_t p, uint32_t d) : pattern(p), depth(d) {}
    /// Low `depth` bits of the hash all resident keys share.
    const uint64_t pattern;
    const uint32_t depth;
    mutable std::mutex mu;
    std::vector<Tuple8> tuples;      // guarded by mu
    uint64_t appended = 0;           // guarded by mu; Stats() can reset
  };

  /// \brief A prepared (but not yet visible) split or merge: the staged
  /// replacement buckets plus the snapshot watermarks Commit() uses to
  /// re-scatter only the delta. Movable, single-use.
  struct Staged {
    bool split = true;
    /// Split: pattern/depth of the bucket being split. Merge: pattern of
    /// the *parent* (low depth-1 bits) and the children's depth.
    uint64_t pattern = 0;
    uint32_t depth = 0;
    size_t snap_lo = 0;
    size_t snap_hi = 0;
    std::shared_ptr<Bucket> src_lo, src_hi;  // merge uses both
    std::shared_ptr<Bucket> out_lo, out_hi;  // split uses both
    /// Tuples the prepare phase scattered (the rebuild's measured cost).
    uint64_t moved_tuples = 0;
  };

  explicit StreamStore(StreamStoreConfig config);

  /// Stage tuples into the bounded buffer, draining synchronously each
  /// time the bound fills. Keys equal to kDummyKey are rejected (the
  /// partitioner uses them as padding sentinels).
  Status Ingest(const Tuple8* tuples, size_t n);
  /// Drain whatever is buffered (end of stream / before an audit).
  Status Flush();

  /// Point read: count matches of `key` under the current layout.
  ReadResult Read(uint32_t key) const;

  // -- Rebalance primitives (driven by stream/repartition.h) ------------

  /// Snapshot bucket (pattern, depth) and scatter it into two staged
  /// children at depth+1. Takes no exclusive lock; reads and ingest
  /// continue against the old bucket. Fails if the layout moved on.
  Result<Staged> PrepareSplit(uint64_t pattern, uint32_t depth);
  /// Snapshot the buddy buckets at `child_depth` whose parent is
  /// `parent_pattern` and concatenate them into one staged bucket at
  /// child_depth-1.
  Result<Staged> PrepareMerge(uint64_t parent_pattern, uint32_t child_depth);
  /// The epoch flip: under the exclusive directory lock, re-scatter the
  /// delta appended since the snapshot, swap the directory slots (growing
  /// or shrinking the directory as needed) and bump the epoch. Fails —
  /// and counts `stale` — if the layout changed since Prepare.
  Status Commit(Staged staged);

  // -- Introspection ----------------------------------------------------

  /// Per-bucket size/rate sample for the hot-spot detector.
  struct BucketStat {
    uint64_t pattern = 0;
    uint32_t depth = 0;
    uint64_t tuples = 0;
    /// Tuples appended since the last resetting Stats() call (the rate
    /// signal).
    uint64_t appended = 0;
  };
  std::vector<BucketStat> Stats(bool reset_appended);

  /// One epoch flip, for the replay hash and the audit trail.
  struct FlipLogEntry {
    uint64_t epoch = 0;
    bool split = true;
    uint64_t pattern = 0;
    uint32_t depth = 0;
    /// Ingest-drain watermark at the flip.
    uint64_t watermark = 0;
  };
  std::vector<FlipLogEntry> FlipLog() const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  uint32_t global_depth() const;
  size_t num_buckets() const;
  uint64_t total_tuples() const;
  /// Max distinct-bucket size over mean (1.0 = perfectly balanced).
  double imbalance() const;
  uint64_t ingested_tuples() const {
    return ingested_.load(std::memory_order_relaxed);
  }
  uint64_t drains() const { return drains_.load(std::memory_order_relaxed); }
  uint64_t buffered_tuples() const {
    return buffered_.load(std::memory_order_relaxed);
  }
  uint64_t stale_commits() const {
    return stale_.load(std::memory_order_relaxed);
  }

  /// Order-independent multiset fingerprint of one key's presence; the
  /// sum over all resident tuples is KeyChecksum(). Ingest-side code can
  /// accumulate the same sum to audit zero lost/duplicated keys.
  static uint64_t KeyFingerprint(uint32_t key) {
    return Murmur64(static_cast<uint64_t>(key) ^ 0x517cc1b727220a95ULL);
  }
  /// Full-scan commutative checksum over every resident tuple's key.
  uint64_t KeyChecksum() const;

  const StreamStoreConfig& config() const { return config_; }

 private:
  Status DrainLocked();  // requires buf_mu_
  /// Stable scatter of [t, t+n) into the two children of a bucket at
  /// `parent_depth` (bit `parent_depth` of the hash decides).
  void ScatterSplit(const Tuple8* t, size_t n, uint32_t parent_depth,
                    Bucket* lo, Bucket* hi) const;
  void PublishGauges();  // requires dir_mu_ (any mode)

  StreamStoreConfig config_;

  mutable std::shared_mutex dir_mu_;
  std::vector<std::shared_ptr<Bucket>> dir_;  // guarded by dir_mu_
  uint32_t global_depth_ = 0;                 // guarded by dir_mu_
  std::vector<FlipLogEntry> flip_log_;        // guarded by dir_mu_

  std::mutex buf_mu_;
  std::vector<Tuple8> buffer_;  // guarded by buf_mu_

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> resident_{0};
  std::atomic<uint64_t> ingested_{0};
  std::atomic<uint64_t> drains_{0};
  std::atomic<uint64_t> buffered_{0};
  std::atomic<uint64_t> stale_{0};
};

/// \brief Strict-order gate for deterministic replays: concurrent client
/// threads Enter(seq) before touching the store and Exit() after, so ops
/// apply in one global order no matter the thread count — the same
/// pattern dist/cluster.h uses for its strict-sequence router, packaged
/// for the stream benches/tests.
class OpSequencer {
 public:
  void Enter(uint64_t seq) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return next_ == seq; });
  }
  void Exit() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++next_;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t next_ = 0;
};

}  // namespace fpart::stream
