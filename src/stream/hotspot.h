// Online hot/cold partition detection for the streaming store.
//
// The detector classifies each bucket's size into the same log2 buckets
// the obs histograms use (obs::Histogram::BucketOf) and compares against
// the log2 class of the mean bucket size — an integer, branch-cheap
// criterion that is deterministic across replays:
//
//   split  bucket b:  log2(|b|) >= log2(mean) + split_log2_delta
//                     and |b| >= split_min_tuples
//   merge  buddies (lo,hi): log2(|lo|+|hi|) <= log2(mean) - merge_log2_delta
//
// With both deltas at the default 2, a freshly split bucket's children
// (each ~half of a >=4x-mean parent) sit at least four log2 classes above
// the merge criterion, so a split can never be immediately undone by a
// merge — the band gap is the first anti-ping-pong defence. The second is
// hysteresis: a condition must hold for `hysteresis_ticks` *consecutive*
// ticks before an action fires, so oscillating load that crosses a
// threshold for one tick does nothing. The third is a per-pattern
// cooldown after a flip, so even a persistent borderline signal cannot
// thrash one bucket. tests/stream_test.cc pins all three properties.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stream/ingest.h"

namespace fpart::stream {

/// \brief Detector thresholds and damping knobs.
struct HotspotConfig {
  /// log2 classes above the mean a bucket must reach to be "hot".
  int split_log2_delta = 2;
  /// log2 classes below the mean a buddy pair's combined size must stay
  /// under to be "cold".
  int merge_log2_delta = 2;
  /// Absolute floor: never split a bucket smaller than this (a skewed but
  /// tiny store needs no rebalancing).
  uint64_t split_min_tuples = 4096;
  /// Consecutive ticks a condition must hold before an action fires.
  int hysteresis_ticks = 2;
  /// Ticks a pattern (and the buckets a flip produced) is immune after an
  /// action was emitted for it.
  int cooldown_ticks = 4;
  /// Layout bounds (mirrors StreamStoreConfig; actions respect them).
  uint32_t max_depth = 12;
  uint32_t min_depth = 2;
  /// Cap on actions emitted per tick (hottest first).
  size_t max_actions_per_tick = 4;
};

/// \brief One decision: split the bucket (pattern, depth), or merge the
/// buddy children of parent `pattern` at child depth `depth`.
struct RebalanceAction {
  bool split = true;
  uint64_t pattern = 0;
  uint32_t depth = 0;
  /// Tuples involved at decision time (the rebalance job's WFQ cost).
  uint64_t tuples = 0;
};

/// \brief Per-bucket rate/size hot-spot detector. Not thread-safe; the
/// RepartitionManager serializes ticks.
class HotspotDetector {
 public:
  explicit HotspotDetector(HotspotConfig config);

  /// Feed one sampling tick (bucket stats from StreamStore::Stats) and
  /// collect the actions whose conditions have persisted long enough.
  std::vector<RebalanceAction> Tick(
      const std::vector<StreamStore::BucketStat>& buckets);

  uint64_t ticks() const { return ticks_; }
  uint64_t split_decisions() const { return split_decisions_; }
  uint64_t merge_decisions() const { return merge_decisions_; }
  /// Conditions seen but not yet persistent enough to act on.
  uint64_t suppressed_hysteresis() const { return suppressed_hysteresis_; }
  /// Conditions suppressed by a recent flip's cooldown.
  uint64_t suppressed_cooldown() const { return suppressed_cooldown_; }

  const HotspotConfig& config() const { return config_; }

 private:
  struct Streak {
    int hot = 0;
    int cold = 0;
    int cooldown = 0;
  };
  using Key = std::pair<uint64_t, uint32_t>;  // (pattern, depth)

  HotspotConfig config_;
  /// Ordered map: iteration order is canonical, keeping tick output
  /// replay-stable.
  std::map<Key, Streak> state_;
  uint64_t ticks_ = 0;
  uint64_t split_decisions_ = 0;
  uint64_t merge_decisions_ = 0;
  uint64_t suppressed_hysteresis_ = 0;
  uint64_t suppressed_cooldown_ = 0;
};

}  // namespace fpart::stream
