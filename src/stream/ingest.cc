#include "stream/ingest.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "common/failpoint.h"
#include "datagen/relation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpart::stream {
namespace {

struct StoreMetrics {
  obs::Counter* ingest_tuples;
  obs::Counter* ingest_batches;
  obs::Histogram* drain_us;
  obs::Gauge* buffered;
  obs::Counter* read_ops;
  obs::Counter* read_scanned;
  obs::Histogram* read_us;
  obs::Gauge* buckets;
  obs::Gauge* depth;
  obs::Gauge* tuples;
  obs::Gauge* epoch;
  obs::Gauge* imbalance;
  obs::Counter* splits;
  obs::Counter* merges;
  obs::Counter* stale;
  obs::Counter* moved_tuples;
  obs::Histogram* build_us;
  obs::Histogram* flip_us;
};

StoreMetrics& Metrics() {
  static StoreMetrics m = [] {
    auto& reg = obs::Registry::Global();
    StoreMetrics x;
    x.ingest_tuples = reg.GetCounter("stream.ingest.tuples", "tuples",
                                     "tuples accepted by Ingest()");
    x.ingest_batches = reg.GetCounter("stream.ingest.batches", "batches",
                                      "ingest-buffer drains (partitioner runs)");
    x.drain_us = reg.GetHistogram("stream.ingest.drain_us", "us",
                                  "wall time of one buffer drain");
    x.buffered = reg.GetGauge("stream.ingest.buffered", "tuples",
                              "tuples staged in the ingest buffer");
    x.read_ops = reg.GetCounter("stream.read.ops", "reads", "point reads");
    x.read_scanned = reg.GetCounter("stream.read.scan_tuples", "tuples",
                                    "tuples scanned by point reads");
    x.read_us = reg.GetHistogram("stream.read.us", "us",
                                 "wall time of one point read");
    x.buckets = reg.GetGauge("stream.store.buckets", "buckets",
                             "distinct hash buckets");
    x.depth = reg.GetGauge("stream.store.depth", "bits",
                           "directory global depth");
    x.tuples = reg.GetGauge("stream.store.tuples", "tuples",
                            "resident tuples");
    x.epoch = reg.GetGauge("stream.store.epoch", "epochs", "layout epoch");
    x.imbalance = reg.GetGauge("stream.store.imbalance", "ratio",
                               "max bucket size / mean bucket size");
    x.splits = reg.GetCounter("stream.rebalance.splits", "flips",
                              "committed bucket splits");
    x.merges = reg.GetCounter("stream.rebalance.merges", "flips",
                              "committed buddy merges");
    x.stale = reg.GetCounter("stream.rebalance.stale", "commits",
                             "prepare/commit attempts beaten by layout churn");
    x.moved_tuples = reg.GetCounter("stream.rebalance.moved_tuples", "tuples",
                                    "tuples scattered by rebuilds");
    x.build_us = reg.GetHistogram("stream.rebalance.build_us", "us",
                                  "prepare phase (snapshot+scatter) wall time");
    x.flip_us = reg.GetHistogram("stream.rebalance.flip_us", "us",
                                 "commit phase (delta+swap) wall time");
    return x;
  }();
  return m;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

StreamStore::StreamStore(StreamStoreConfig config) : config_(config) {
  if (config_.min_depth < 1) config_.min_depth = 1;
  if (config_.max_depth < config_.min_depth) {
    config_.max_depth = config_.min_depth;
  }
  config_.initial_depth = std::clamp(config_.initial_depth, config_.min_depth,
                                     config_.max_depth);
  if (config_.buffer_tuples == 0) config_.buffer_tuples = 1;
  global_depth_ = config_.initial_depth;
  const size_t n = size_t{1} << global_depth_;
  dir_.resize(n);
  for (size_t p = 0; p < n; ++p) {
    dir_[p] = std::make_shared<Bucket>(p, global_depth_);
  }
  PublishGauges();
}

uint32_t StreamStore::global_depth() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  return global_depth_;
}

size_t StreamStore::num_buckets() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  std::unordered_set<const Bucket*> distinct;
  for (const auto& b : dir_) distinct.insert(b.get());
  return distinct.size();
}

uint64_t StreamStore::total_tuples() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  uint64_t n = 0;
  std::unordered_set<const Bucket*> seen;
  for (const auto& b : dir_) {
    if (!seen.insert(b.get()).second) continue;
    std::lock_guard<std::mutex> lk(b->mu);
    n += b->tuples.size();
  }
  return n;
}

double StreamStore::imbalance() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  uint64_t max = 0, sum = 0, count = 0;
  std::unordered_set<const Bucket*> seen;
  for (const auto& b : dir_) {
    if (!seen.insert(b.get()).second) continue;
    std::lock_guard<std::mutex> lk(b->mu);
    const uint64_t n = b->tuples.size();
    max = std::max(max, n);
    sum += n;
    ++count;
  }
  if (sum == 0 || count == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(count) /
         static_cast<double>(sum);
}

uint64_t StreamStore::KeyChecksum() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  uint64_t sum = 0;
  std::unordered_set<const Bucket*> seen;
  for (const auto& b : dir_) {
    if (!seen.insert(b.get()).second) continue;
    std::lock_guard<std::mutex> lk(b->mu);
    for (const Tuple8& t : b->tuples) sum += KeyFingerprint(t.key);
  }
  return sum;
}

std::vector<StreamStore::FlipLogEntry> StreamStore::FlipLog() const {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  return flip_log_;
}

std::vector<StreamStore::BucketStat> StreamStore::Stats(bool reset_appended) {
  std::shared_lock<std::shared_mutex> lock(dir_mu_);
  std::vector<BucketStat> stats;
  std::unordered_set<const Bucket*> seen;
  for (const auto& b : dir_) {
    if (!seen.insert(b.get()).second) continue;
    std::lock_guard<std::mutex> lk(b->mu);
    BucketStat s;
    s.pattern = b->pattern;
    s.depth = b->depth;
    s.tuples = b->tuples.size();
    s.appended = b->appended;
    if (reset_appended) b->appended = 0;
    stats.push_back(s);
  }
  // Directory order is pointer-dedup order; sort by pattern so ticks see
  // a canonical (replay-stable) ordering.
  std::sort(stats.begin(), stats.end(),
            [](const BucketStat& a, const BucketStat& b) {
              return a.pattern < b.pattern ||
                     (a.pattern == b.pattern && a.depth < b.depth);
            });
  uint64_t max = 0, sum = 0;
  for (const BucketStat& s : stats) {
    max = std::max(max, s.tuples);
    sum += s.tuples;
  }
  if (sum > 0 && !stats.empty()) {
    Metrics().imbalance->Set(static_cast<double>(max) *
                             static_cast<double>(stats.size()) /
                             static_cast<double>(sum));
  }
  return stats;
}

Status StreamStore::Ingest(const Tuple8* tuples, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (IsDummy(tuples[i])) {
      return Status::InvalidArgument(
          "ingest of the dummy-key sentinel is not supported");
    }
  }
  std::unique_lock<std::mutex> lock(buf_mu_);
  size_t off = 0;
  while (off < n) {
    const size_t room = config_.buffer_tuples - buffer_.size();
    const size_t take = std::min(room, n - off);
    buffer_.insert(buffer_.end(), tuples + off, tuples + off + take);
    off += take;
    if (buffer_.size() >= config_.buffer_tuples) {
      FPART_RETURN_NOT_OK(DrainLocked());
    }
  }
  ingested_.fetch_add(n, std::memory_order_relaxed);
  buffered_.store(buffer_.size(), std::memory_order_relaxed);
  Metrics().ingest_tuples->Add(n);
  Metrics().buffered->Set(static_cast<double>(buffer_.size()));
  return Status::OK();
}

Status StreamStore::Flush() {
  std::unique_lock<std::mutex> lock(buf_mu_);
  FPART_RETURN_NOT_OK(DrainLocked());
  buffered_.store(0, std::memory_order_relaxed);
  Metrics().buffered->Set(0.0);
  return Status::OK();
}

Status StreamStore::DrainLocked() {
  if (buffer_.empty()) return Status::OK();
  const uint64_t t0 = NowUs();
  obs::TraceSpan span("stream.drain", "stream");
  std::vector<Tuple8> batch;
  batch.swap(buffer_);

  auto rel_result = Relation<Tuple8>::Allocate(batch.size());
  if (!rel_result.ok()) {
    buffer_ = std::move(batch);  // keep the tuples; the caller may retry
    return rel_result.status();
  }
  Relation<Tuple8> rel = std::move(rel_result).ValueUnsafe();
  std::memcpy(rel.data(), batch.data(), batch.size() * sizeof(Tuple8));

  // The drain *is* a partitioner run at the directory's fanout: with a
  // bit-slicing hash, output partition p lands in directory slot p.
  std::shared_lock<std::shared_mutex> dir_lock(dir_mu_);
  PartitionRequest req;
  req.engine = config_.drain_engine;
  req.fanout = 1u << global_depth_;
  req.hash = config_.hash;
  req.output_mode = OutputMode::kHist;  // exact sizes, no overflow risk
  req.sim_mode = config_.sim_mode;
  req.sim_cache = config_.sim_cache;
  req.num_threads = config_.drain_threads;
  auto run = RunPartition<Tuple8>(req, rel);
  if (!run.ok()) {
    buffer_ = std::move(batch);
    return run.status();
  }
  const auto& out = run.ValueOrDie().output;
  for (size_t p = 0; p < out.num_partitions(); ++p) {
    const uint64_t count = out.part(p).num_tuples;
    if (count == 0) continue;
    Bucket* b = dir_[p].get();
    const Tuple8* data = out.partition_data(p);
    const size_t slots = out.partition_slots(p);
    std::lock_guard<std::mutex> lk(b->mu);
    b->tuples.reserve(b->tuples.size() + count);
    for (size_t s = 0; s < slots; ++s) {
      if (!IsDummy(data[s])) b->tuples.push_back(data[s]);
    }
    b->appended += count;
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t resident =
      resident_.fetch_add(batch.size(), std::memory_order_relaxed) +
      batch.size();
  Metrics().ingest_batches->Add();
  Metrics().drain_us->Record(NowUs() - t0);
  Metrics().tuples->Set(static_cast<double>(resident));
  return Status::OK();
}

ReadResult StreamStore::Read(uint32_t key) const {
  const uint64_t t0 = NowUs();
  std::shared_ptr<Bucket> b;
  ReadResult r;
  {
    std::shared_lock<std::shared_mutex> lock(dir_mu_);
    const PartitionFn fn(config_.hash, 1u << global_depth_);
    b = dir_[fn(key)];
    r.epoch = epoch_.load(std::memory_order_relaxed);
  }
  // The directory lock is already released: a concurrent flip may retire
  // this bucket mid-scan, in which case the read serves the consistent
  // pre-flip state (the old bucket is immutable once unreferenced).
  std::lock_guard<std::mutex> lk(b->mu);
  r.scanned = b->tuples.size();
  for (const Tuple8& t : b->tuples) {
    if (t.key == key) ++r.matches;
  }
  auto& m = Metrics();
  m.read_ops->Add();
  m.read_scanned->Add(r.scanned);
  m.read_us->Record(NowUs() - t0);
  return r;
}

void StreamStore::ScatterSplit(const Tuple8* t, size_t n,
                               uint32_t parent_depth, Bucket* lo,
                               Bucket* hi) const {
  // Stable: relative order within each child matches the input order, so
  // snapshot-scatter + delta-scatter equals one scatter of the whole
  // sequence — the property that makes the flip timing-independent.
  const PartitionFn fn(config_.hash, 1u << (parent_depth + 1));
  for (size_t i = 0; i < n; ++i) {
    const uint32_t idx = fn(t[i].key);
    ((idx >> parent_depth) & 1u ? hi : lo)->tuples.push_back(t[i]);
  }
}

Result<StreamStore::Staged> StreamStore::PrepareSplit(uint64_t pattern,
                                                      uint32_t depth) {
  const uint64_t t0 = NowUs();
  Staged st;
  st.split = true;
  st.pattern = pattern;
  st.depth = depth;
  {
    std::shared_lock<std::shared_mutex> lock(dir_mu_);
    if (depth >= config_.max_depth) {
      return Status::InvalidArgument("split would exceed max_depth");
    }
    if (pattern >= dir_.size()) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale->Add();
      return Status::InvalidArgument("stale split: pattern out of range");
    }
    std::shared_ptr<Bucket> b = dir_[pattern];
    if (b->depth != depth || b->pattern != pattern) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale->Add();
      return Status::InvalidArgument("stale split: layout moved on");
    }
    st.src_lo = std::move(b);
  }
  std::vector<Tuple8> snap;
  {
    std::lock_guard<std::mutex> lk(st.src_lo->mu);
    snap = st.src_lo->tuples;  // short copy; appends resume right after
  }
  st.snap_lo = snap.size();
  st.out_lo = std::make_shared<Bucket>(pattern, depth + 1);
  st.out_hi =
      std::make_shared<Bucket>(pattern | (uint64_t{1} << depth), depth + 1);
  ScatterSplit(snap.data(), snap.size(), depth, st.out_lo.get(),
               st.out_hi.get());
  st.moved_tuples = snap.size();
  Metrics().build_us->Record(NowUs() - t0);
  return st;
}

Result<StreamStore::Staged> StreamStore::PrepareMerge(uint64_t parent_pattern,
                                                      uint32_t child_depth) {
  const uint64_t t0 = NowUs();
  if (child_depth == 0 || child_depth <= config_.min_depth) {
    return Status::InvalidArgument("merge would shrink below min_depth");
  }
  if (parent_pattern >= (uint64_t{1} << (child_depth - 1))) {
    return Status::InvalidArgument("parent pattern wider than child_depth-1");
  }
  Staged st;
  st.split = false;
  st.pattern = parent_pattern;
  st.depth = child_depth;
  const uint64_t hi_pattern =
      parent_pattern | (uint64_t{1} << (child_depth - 1));
  {
    std::shared_lock<std::shared_mutex> lock(dir_mu_);
    if (hi_pattern >= dir_.size()) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale->Add();
      return Status::InvalidArgument("stale merge: pattern out of range");
    }
    std::shared_ptr<Bucket> lo = dir_[parent_pattern];
    std::shared_ptr<Bucket> hi = dir_[hi_pattern];
    if (lo->depth != child_depth || lo->pattern != parent_pattern ||
        hi->depth != child_depth || hi->pattern != hi_pattern) {
      stale_.fetch_add(1, std::memory_order_relaxed);
      Metrics().stale->Add();
      return Status::InvalidArgument("stale merge: layout moved on");
    }
    st.src_lo = std::move(lo);
    st.src_hi = std::move(hi);
  }
  st.out_lo = std::make_shared<Bucket>(parent_pattern, child_depth - 1);
  {
    std::lock_guard<std::mutex> lk(st.src_lo->mu);
    st.out_lo->tuples = st.src_lo->tuples;
    st.snap_lo = st.src_lo->tuples.size();
  }
  {
    std::lock_guard<std::mutex> lk(st.src_hi->mu);
    st.out_lo->tuples.insert(st.out_lo->tuples.end(),
                             st.src_hi->tuples.begin(),
                             st.src_hi->tuples.end());
    st.snap_hi = st.src_hi->tuples.size();
  }
  st.moved_tuples = st.out_lo->tuples.size();
  Metrics().build_us->Record(NowUs() - t0);
  return st;
}

Status StreamStore::Commit(Staged staged) {
  const uint64_t t0 = NowUs();
  auto& m = Metrics();
  std::unique_lock<std::shared_mutex> lock(dir_mu_);
  const auto stale = [&](const char* what) {
    stale_.fetch_add(1, std::memory_order_relaxed);
    m.stale->Add();
    return Status::InvalidArgument(what);
  };
  if (Failpoint("stream.commit.stale")) {
    // Fault injection: take the stale-commit abort path as if the layout
    // had moved on, regardless of the real directory state.
    return stale("stale commit: failpoint stream.commit.stale");
  }

  if (staged.split) {
    if (staged.pattern >= dir_.size() ||
        dir_[staged.pattern] != staged.src_lo ||
        staged.src_lo->depth != staged.depth) {
      return stale("stale split commit: layout moved on");
    }
    if (staged.depth + 1 > global_depth_) {
      if (global_depth_ >= config_.max_depth) {
        return stale("stale split commit: directory at max_depth");
      }
      const size_t old = dir_.size();
      dir_.resize(old * 2);
      for (size_t j = old; j < dir_.size(); ++j) dir_[j] = dir_[j - old];
      ++global_depth_;
    }
    {
      // Only the delta appended since the snapshot is re-scattered here
      // under the exclusive lock — the incremental part of "incremental
      // repartitioning".
      std::lock_guard<std::mutex> lk(staged.src_lo->mu);
      const auto& src = staged.src_lo->tuples;
      ScatterSplit(src.data() + staged.snap_lo, src.size() - staged.snap_lo,
                   staged.depth, staged.out_lo.get(), staged.out_hi.get());
      staged.moved_tuples += src.size() - staged.snap_lo;
    }
    for (size_t j = 0; j < dir_.size(); ++j) {
      if (dir_[j] == staged.src_lo) {
        dir_[j] = ((j >> staged.depth) & 1u) ? staged.out_hi : staged.out_lo;
      }
    }
    m.splits->Add();
  } else {
    const uint64_t hi_pattern =
        staged.pattern | (uint64_t{1} << (staged.depth - 1));
    if (hi_pattern >= dir_.size() || dir_[staged.pattern] != staged.src_lo ||
        dir_[hi_pattern] != staged.src_hi ||
        staged.src_lo->depth != staged.depth ||
        staged.src_hi->depth != staged.depth) {
      return stale("stale merge commit: layout moved on");
    }
    {
      std::lock_guard<std::mutex> lk(staged.src_lo->mu);
      const auto& src = staged.src_lo->tuples;
      staged.out_lo->tuples.insert(staged.out_lo->tuples.end(),
                                   src.begin() + staged.snap_lo, src.end());
      staged.moved_tuples += src.size() - staged.snap_lo;
    }
    {
      std::lock_guard<std::mutex> lk(staged.src_hi->mu);
      const auto& src = staged.src_hi->tuples;
      staged.out_lo->tuples.insert(staged.out_lo->tuples.end(),
                                   src.begin() + staged.snap_hi, src.end());
      staged.moved_tuples += src.size() - staged.snap_hi;
    }
    for (size_t j = 0; j < dir_.size(); ++j) {
      if (dir_[j] == staged.src_lo || dir_[j] == staged.src_hi) {
        dir_[j] = staged.out_lo;
      }
    }
    // Shrink the directory while every bucket's local depth is below the
    // global depth (each slot then equals its buddy in the upper half).
    while (global_depth_ > config_.min_depth) {
      bool all_below = true;
      for (size_t j = 0; j < dir_.size() && all_below; ++j) {
        all_below = dir_[j]->depth < global_depth_;
      }
      if (!all_below) break;
      dir_.resize(dir_.size() / 2);
      --global_depth_;
    }
    m.merges->Add();
  }

  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  FlipLogEntry entry;
  entry.epoch = epoch;
  entry.split = staged.split;
  entry.pattern = staged.pattern;
  entry.depth = staged.depth;
  entry.watermark = drains_.load(std::memory_order_relaxed);
  flip_log_.push_back(entry);
  m.moved_tuples->Add(staged.moved_tuples);
  m.flip_us->Record(NowUs() - t0);
  PublishGauges();
  return Status::OK();
}

void StreamStore::PublishGauges() {
  auto& m = Metrics();
  std::unordered_set<const Bucket*> distinct;
  for (const auto& b : dir_) distinct.insert(b.get());
  m.buckets->Set(static_cast<double>(distinct.size()));
  m.depth->Set(static_cast<double>(global_depth_));
  m.epoch->Set(static_cast<double>(epoch_.load(std::memory_order_relaxed)));
}

}  // namespace fpart::stream
