// The control loop tying the streaming store to the svc scheduler: sample
// bucket stats on an ingest-drain cadence, ask the hot-spot detector for
// split/merge actions, and run each rebuild as a svc `kRebalance` job so
// the maintenance work competes through the same WFQ class machinery as
// foreground traffic (default kBestEffort — rebalancing yields to paying
// queries, by construction rather than by luck).
//
// Job lifecycle (one action):
//   Tick --emit--> Submit(RebalanceJobSpec)        [manager, drain cadence]
//     -> worker runs PrepareSplit/PrepareMerge     [svc worker thread]
//     -> live mode: worker commits immediately; the epoch flips as soon
//        as the rebuild is done.
//     -> deterministic mode: the staged rebuild parks in `pending_` and
//        the *manager* commits it at a tick barrier `flip_delay_ticks`
//        after the decision — a count-driven flip point that replays
//        bit-identically regardless of worker timing (the store's stable
//        scatter makes the flipped contents independent of when the
//        worker's snapshot ran).
//
// Stale rebuilds (the layout moved between decision and prepare/commit)
// fail their job with InvalidArgument and are counted, not retried: the
// next tick re-detects against the new layout if the condition persists.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "stream/hotspot.h"
#include "stream/ingest.h"
#include "svc/scheduler.h"

namespace fpart::stream {

/// \brief Manager knobs.
struct RepartitionConfig {
  HotspotConfig detector;
  /// Master switch: the bench's --repartition off A/B arm.
  bool enabled = true;
  /// Run one detector tick every this many OnDrain() calls.
  uint64_t tick_every_drains = 4;
  /// Deterministic mode: ticks between a decision and its epoch flip.
  uint64_t flip_delay_ticks = 1;
  /// WFQ class the rebalance jobs are charged to.
  svc::JobClass job_class = svc::JobClass::kBestEffort;
  /// Must match the scheduler's mode. Deterministic managers must be
  /// driven from a sequenced region (OpSequencer) — see ext_stream.
  bool deterministic = false;
  /// Deterministic mode, shared scheduler: the workload's contiguous
  /// arrival-sequence counter (called once per submitted job, inside the
  /// sequenced region). Null = the manager is the sole submitter and
  /// numbers jobs itself.
  std::function<uint64_t()> next_arrival_seq;
  /// Deterministic mode: the workload's virtual clock, stamped as each
  /// job's virtual arrival time. Null = 0.0.
  std::function<double()> virtual_now;
};

/// \brief Schedules split/merge rebuilds of a StreamStore through a svc
/// scheduler. Thread-safe; deterministic mode additionally requires all
/// OnDrain()/Quiesce() calls to be externally ordered (sequenced region).
class RepartitionManager {
 public:
  /// `store` and `scheduler` are borrowed and must outlive the manager;
  /// call Quiesce() (or destroy the manager) before shutting the
  /// scheduler down so staged rebuilds drain.
  RepartitionManager(StreamStore* store, svc::Scheduler* scheduler,
                     RepartitionConfig config);
  ~RepartitionManager();

  /// Ingest-side cadence hook: call once per completed store drain. Every
  /// `tick_every_drains`-th call samples the store, runs one detector
  /// tick, submits jobs for the emitted actions and (deterministic mode)
  /// commits staged rebuilds whose barrier has passed.
  void OnDrain();

  /// Wait out every in-flight job and (deterministic mode) commit every
  /// staged rebuild regardless of barrier. Idempotent.
  void Quiesce();

  uint64_t ticks() const;
  uint64_t jobs_submitted() const;
  /// Jobs that finished without producing a commit (stale layout or
  /// cancellation).
  uint64_t jobs_abandoned() const;

  const RepartitionConfig& config() const { return config_; }

 private:
  struct Pending {
    RebalanceAction action;
    svc::JobHandle handle;
    uint64_t due_tick = 0;
    /// Filled by the job's prepare phase (worker thread), consumed by the
    /// committing side; the shared_ptr itself is the synchronization-free
    /// handoff (Wait() on the handle orders the accesses).
    std::shared_ptr<std::optional<StreamStore::Staged>> staged;
  };

  void TickLocked();
  void CommitDueLocked(bool force);

  StreamStore* const store_;
  svc::Scheduler* const scheduler_;
  RepartitionConfig config_;

  mutable std::mutex mu_;
  HotspotDetector detector_;        // guarded by mu_
  std::vector<Pending> pending_;    // guarded by mu_
  uint64_t drain_count_ = 0;        // guarded by mu_
  uint64_t own_seq_ = 0;            // guarded by mu_
  uint64_t submitted_ = 0;          // guarded by mu_
  uint64_t abandoned_ = 0;          // guarded by mu_
};

}  // namespace fpart::stream
