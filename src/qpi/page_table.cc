#include "qpi/page_table.h"

#include <string>

namespace fpart {

Status PageTable::Map(uint64_t vpn, uint64_t physical_page) {
  if (vpn >= entries_.size()) {
    return Status::OutOfRange("virtual page " + std::to_string(vpn) +
                              " exceeds page-table capacity " +
                              std::to_string(entries_.size()));
  }
  if (!valid_[vpn]) {
    valid_[vpn] = true;
    ++mapped_;
  }
  entries_.Write(vpn, physical_page);
  return Status::OK();
}

Result<uint64_t> PageTable::Translate(uint64_t virtual_addr) const {
  uint64_t vpn = virtual_addr >> kPageShift;
  if (vpn >= entries_.size() || !valid_[vpn]) {
    return Status::OutOfRange("unmapped virtual address " +
                              std::to_string(virtual_addr));
  }
  return entries_.Peek(vpn) * kPageSizeBytes +
         (virtual_addr & (kPageSizeBytes - 1));
}

}  // namespace fpart
