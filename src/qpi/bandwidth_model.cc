#include "qpi/bandwidth_model.h"

#include <algorithm>
#include <array>

namespace fpart {
namespace {

// Anchor points at read fractions 0.0, 0.1, ..., 1.0. Values in GB/s.
// FPGA-alone anchors reproduce the Section 4.8 look-ups under linear
// interpolation; the remaining curves follow the shapes of Figure 2.
constexpr std::array<double, 11> kFpgaAlone = {
    4.6, 5.0, 5.4, 5.7, 6.4, 6.97, 7.03, 7.05, 6.9, 6.7, 6.5};
constexpr std::array<double, 11> kCpuAlone = {
    6.0, 8.0, 10.0, 12.0, 15.0, 18.0, 20.0, 22.0, 24.0, 26.0, 28.0};
// Concurrent access costs both agents a significant share (Section 2.1).
constexpr std::array<double, 11> kFpgaInterfered = {
    3.2, 3.5, 3.8, 4.0, 4.5, 4.9, 4.9, 4.9, 4.8, 4.7, 4.6};
constexpr std::array<double, 11> kCpuInterfered = {
    3.9, 5.2, 6.5, 7.8, 9.8, 11.7, 13.0, 14.3, 15.6, 16.9, 18.2};

double Interpolate(const std::array<double, 11>& anchors, double x) {
  x = std::clamp(x, 0.0, 1.0);
  double pos = x * 10.0;
  int lo = static_cast<int>(pos);
  if (lo >= 10) return anchors[10];
  double frac = pos - lo;
  return anchors[lo] + frac * (anchors[lo + 1] - anchors[lo]);
}

}  // namespace

double MemoryBandwidthGBs(MemoryAgent agent, Interference interference,
                          double read_fraction) {
  const bool alone = interference == Interference::kAlone;
  if (agent == MemoryAgent::kFpga) {
    return Interpolate(alone ? kFpgaAlone : kFpgaInterfered, read_fraction);
  }
  return Interpolate(alone ? kCpuAlone : kCpuInterfered, read_fraction);
}

double QpiBandwidthForRatio(double r, Interference interference) {
  double read_fraction = r / (r + 1.0);
  return MemoryBandwidthGBs(MemoryAgent::kFpga, interference, read_fraction);
}

}  // namespace fpart
