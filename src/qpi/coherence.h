// Cache-coherence snoop penalty model (Section 2.2, Table 1).
//
// On the Xeon+FPGA prototype, cache lines last written by the FPGA are
// marked in the CPU socket's snoop filter as owned by the FPGA socket.
// Subsequent CPU reads snoop the FPGA's tiny 128 KB cache, almost always
// miss, and pay the round trip. Measured effect (Table 1, 512 MB region):
//
//                    CPU reads sequentially   CPU reads randomly
//   CPU wrote last        0.1381 s                 1.1537 s
//   FPGA wrote last       0.1533 s                 2.4876 s
//
// i.e. a 1.11x penalty on sequential reads and a 2.16x penalty on random
// reads. The hybrid join's build+probe phase reads FPGA-written partitions,
// so its measured CPU time is scaled by these factors.
#pragma once

namespace fpart {

/// Which socket last wrote a memory region.
enum class LastWriter { kCpu, kFpga };

/// \brief Multiplicative read-latency penalties from Table 1.
struct CoherenceModel {
  /// Table 1 baseline timings (seconds, 512 MB, single-threaded).
  static constexpr double kCpuWroteSeqRead = 0.1381;
  static constexpr double kCpuWroteRandRead = 1.1537;
  static constexpr double kFpgaWroteSeqRead = 0.1533;
  static constexpr double kFpgaWroteRandRead = 2.4876;

  /// Penalty on sequential CPU reads of a region last written by `writer`.
  static double SequentialReadFactor(LastWriter writer) {
    return writer == LastWriter::kFpga ? kFpgaWroteSeqRead / kCpuWroteSeqRead
                                       : 1.0;
  }

  /// Penalty on random CPU reads of a region last written by `writer`.
  static double RandomReadFactor(LastWriter writer) {
    return writer == LastWriter::kFpga ? kFpgaWroteRandRead / kCpuWroteRandRead
                                       : 1.0;
  }

  /// Penalty applied to the *build* phase after partitioning by `writer`:
  /// the build relation's partitions are scanned sequentially (Section 2.2).
  static double BuildFactor(LastWriter writer) {
    return SequentialReadFactor(writer);
  }

  /// Penalty applied to the *probe* phase: S partitions are scanned
  /// sequentially while the bucket-chained build data is accessed randomly
  /// with no prefetching. Both R and S partitions were written by `writer`;
  /// the blend weights the two access patterns equally by bytes touched.
  static double ProbeFactor(LastWriter writer) {
    return 0.5 * SequentialReadFactor(writer) +
           0.5 * RandomReadFactor(writer);
  }
};

}  // namespace fpart
