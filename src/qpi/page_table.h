// The FPGA-side virtual-memory page table of Section 2.1.
//
// The standard Intel QPI end-point accepts only physical addresses, so the
// AFU translates its virtual addresses with a BRAM-resident page table over
// 4 MB pages. Translation takes 2 clock cycles but is pipelined, sustaining
// one translation per cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sim/bram.h"

namespace fpart {

/// 4 MB pages, as handed out by the Intel-provided allocation API.
inline constexpr uint64_t kPageSizeBytes = 4ull << 20;
inline constexpr int kPageShift = 22;
/// Pipelined translation latency in FPGA cycles.
inline constexpr int kPageTableLatencyCycles = 2;

/// \brief BRAM-backed VA→PA map for the FPGA's fixed-size address space.
class PageTable {
 public:
  /// \param max_pages  capacity; sized so the whole 96 GB could be mapped.
  explicit PageTable(size_t max_pages = 24576)
      : entries_(max_pages, kPageTableLatencyCycles),
        valid_(max_pages, false) {}

  size_t max_pages() const { return entries_.size(); }
  size_t mapped_pages() const { return mapped_; }

  /// Populate the entry for virtual page `vpn` (done at start-up, when the
  /// software transmits the physical addresses of its 4 MB pages).
  Status Map(uint64_t vpn, uint64_t physical_page);

  /// Immediate (functional) translation of a virtual byte address.
  Result<uint64_t> Translate(uint64_t virtual_addr) const;

  /// Clocked interface used by the cycle simulator: issue one translation
  /// per cycle, result after kPageTableLatencyCycles ticks.
  void IssueTranslate(uint64_t virtual_addr) {
    pending_offset_ = virtual_addr & (kPageSizeBytes - 1);
    entries_.IssueRead(virtual_addr >> kPageShift);
  }
  void Tick() { entries_.Tick(); }
  bool translation_ready() const { return entries_.read_ready(); }
  uint64_t translated_addr() const {
    return entries_.read_data() * kPageSizeBytes + pending_offset_;
  }

 private:
  Bram<uint64_t> entries_;
  std::vector<bool> valid_;
  size_t mapped_ = 0;
  uint64_t pending_offset_ = 0;
};

}  // namespace fpart
