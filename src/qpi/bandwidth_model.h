// Memory-bandwidth model of the Xeon+FPGA platform, calibrated to Figure 2
// of the paper and to the Section 4.8 look-ups:
//   B(r=2)   = 7.05 GB/s   (read fraction 2/3)
//   B(r=1)   = 6.97 GB/s   (read fraction 1/2)
//   B(r=0.5) = 5.94 GB/s   (read fraction 1/3)
// The curves are piecewise-linear in the sequential-read fraction of the
// total traffic (the x-axis of Figure 2).
#pragma once

#include <cstdint>

namespace fpart {

/// Which agent is issuing the memory traffic.
enum class MemoryAgent { kCpu, kFpga };

/// Whether the other socket is hammering memory at the same time
/// (the "interfered" series of Figure 2).
enum class Interference { kAlone, kInterfered };

/// \brief Figure 2: achievable memory throughput (GB/s, combined read +
/// write) as a function of the sequential-read share of the traffic.
///
/// \param read_fraction  bytes read sequentially / total bytes, in [0, 1].
double MemoryBandwidthGBs(MemoryAgent agent, Interference interference,
                          double read_fraction);

/// Convenience: bandwidth for a read-to-write byte ratio r (Section 4.6,
/// B(r)); read_fraction = r / (r + 1).
double QpiBandwidthForRatio(double r,
                            Interference interference = Interference::kAlone);

/// The raw-FPGA wrapper of Section 4.7 emulates a link with 25.6 GB/s
/// combined read+write bandwidth.
inline constexpr double kRawWrapperBandwidthGBs = 25.6;

/// FPGA clock of the Stratix V design.
inline constexpr double kFpgaClockHz = 200e6;
/// FPGA clock period (Table 3).
inline constexpr double kFpgaClockPeriodSec = 1.0 / kFpgaClockHz;

}  // namespace fpart
