// Model of the CPU/FPGA shared-memory pool of Section 2.1.
//
// The software allocates 4 MB pages through the platform API, transmits
// their physical addresses to the FPGA (populating its page table), and
// addresses the pool through a page-pointer array on the CPU side. Here the
// "physical" backing is one aligned host allocation; the value of the model
// is that every FPGA access in the simulator goes through a genuine VA→PA
// translation, so the tests exercise the same addressing contract as the
// hardware.
#pragma once

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "qpi/page_table.h"

namespace fpart {

/// \brief Pool of 4 MB pages shared between the host and the simulated AFU.
class SharedMemoryPool {
 public:
  /// Allocate `num_pages` 4 MB pages and populate `page_table` with their
  /// (model) physical page numbers.
  static Result<SharedMemoryPool> Allocate(size_t num_pages,
                                           PageTable* page_table);

  size_t num_pages() const { return num_pages_; }
  uint64_t size_bytes() const { return num_pages_ * kPageSizeBytes; }

  /// Host-side view of the virtual address space (contiguous in the model).
  uint8_t* host_data() { return backing_.data(); }
  const uint8_t* host_data() const { return backing_.data(); }

  /// FPGA-side access: translate through the page table, then touch the
  /// backing store at the physical address.
  Result<const uint8_t*> FpgaRead(uint64_t virtual_addr) const;
  Result<uint8_t*> FpgaWrite(uint64_t virtual_addr);

 private:
  AlignedBuffer backing_;
  const PageTable* page_table_ = nullptr;
  size_t num_pages_ = 0;
  // The model scatters pages in "physical" space with a fixed stride to
  // catch identity-translation bugs: physical page = vpn * kStride + base.
  static constexpr uint64_t kPhysicalBasePage = 3;
  static constexpr uint64_t kPhysicalStride = 2;

  friend class SharedMemoryTestPeer;
};

}  // namespace fpart
