#include "qpi/shared_memory.h"

#include <string>

namespace fpart {

Result<SharedMemoryPool> SharedMemoryPool::Allocate(size_t num_pages,
                                                    PageTable* page_table) {
  if (num_pages == 0) {
    return Status::InvalidArgument("need at least one 4 MB page");
  }
  SharedMemoryPool pool;
  // Backing store spans the scattered physical pages.
  uint64_t max_ppn = kPhysicalBasePage + (num_pages - 1) * kPhysicalStride;
  FPART_ASSIGN_OR_RETURN(
      pool.backing_, AlignedBuffer::Allocate((max_ppn + 1) * kPageSizeBytes));
  pool.num_pages_ = num_pages;
  pool.page_table_ = page_table;
  for (size_t vpn = 0; vpn < num_pages; ++vpn) {
    FPART_RETURN_NOT_OK(
        page_table->Map(vpn, kPhysicalBasePage + vpn * kPhysicalStride));
  }
  return pool;
}

Result<const uint8_t*> SharedMemoryPool::FpgaRead(
    uint64_t virtual_addr) const {
  FPART_ASSIGN_OR_RETURN(uint64_t pa, page_table_->Translate(virtual_addr));
  if (pa >= backing_.size()) {
    return Status::OutOfRange("physical address " + std::to_string(pa) +
                              " outside backing store");
  }
  return backing_.data() + pa;
}

Result<uint8_t*> SharedMemoryPool::FpgaWrite(uint64_t virtual_addr) {
  FPART_ASSIGN_OR_RETURN(uint64_t pa, page_table_->Translate(virtual_addr));
  if (pa >= backing_.size()) {
    return Status::OutOfRange("physical address " + std::to_string(pa) +
                              " outside backing store");
  }
  return backing_.data() + pa;
}

}  // namespace fpart
