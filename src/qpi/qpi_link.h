// Token-bucket model of the QPI end-point's bandwidth throttling.
//
// The AFU issues 64 B cache-line read and write requests; the link grants
// them at a rate determined by the Figure 2 bandwidth curve for the
// currently observed read/write mix. Requests that find no token are the
// source of the back-pressure the paper describes in Section 4.3.
#pragma once

#include <cstdint>
#include <functional>

#include "common/macros.h"
#include "qpi/bandwidth_model.h"

namespace fpart {

/// \brief Cycle-granular bandwidth throttle for cache-line transfers.
class QpiLink {
 public:
  /// Curve mapping the read fraction of traffic to GB/s.
  using BandwidthCurve = std::function<double(double read_fraction)>;

  /// \param clock_hz  the consumer's clock (tokens are per clock cycle)
  /// \param curve     bandwidth as a function of read mix
  QpiLink(double clock_hz, BandwidthCurve curve);

  /// Fixed-bandwidth link (e.g. the 25.6 GB/s raw wrapper of Section 4.7).
  static QpiLink Fixed(double clock_hz, double gbs);

  /// QPI link of the Xeon+FPGA platform, following the Figure 2 curve.
  static QpiLink XeonFpga(double clock_hz = kFpgaClockHz,
                          Interference interference = Interference::kAlone);

  /// Advance one clock cycle: accrue tokens, periodically re-estimate the
  /// achievable bandwidth from the observed read/write mix. Called once
  /// per simulated cycle, so these three stay header-inline.
  void Tick() {
    tokens_ = tokens_ + rate_ < kMaxBurstTokens ? tokens_ + rate_
                                                : kMaxBurstTokens;
    if (++cycles_in_window_ >= kWindowCycles) Recalibrate();
  }

  /// Try to issue one cache-line read this cycle.
  bool TryRead() {
    if (!Consume()) return false;
    ++reads_granted_;
    ++window_reads_;
    return true;
  }
  /// Try to issue one cache-line write this cycle.
  bool TryWrite() {
    if (!Consume()) return false;
    ++writes_granted_;
    ++window_writes_;
    return true;
  }

  uint64_t reads_granted() const { return reads_granted_; }
  uint64_t writes_granted() const { return writes_granted_; }
  /// Total bytes transferred so far.
  uint64_t bytes() const {
    return (reads_granted_ + writes_granted_) * kCacheLineSize;
  }
  double current_rate_lines_per_cycle() const { return rate_; }

 private:
  bool Consume() {
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  void Recalibrate();

  double clock_hz_;
  BandwidthCurve curve_;
  double tokens_ = 0.0;
  double rate_ = 0.0;  // cache lines per cycle
  uint64_t reads_granted_ = 0;
  uint64_t writes_granted_ = 0;
  // Sliding recalibration window.
  uint64_t window_reads_ = 0;
  uint64_t window_writes_ = 0;
  uint64_t cycles_in_window_ = 0;
  static constexpr uint64_t kWindowCycles = 4096;
  static constexpr double kMaxBurstTokens = 4.0;
};

}  // namespace fpart
