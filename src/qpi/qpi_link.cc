#include "qpi/qpi_link.h"

#include <algorithm>

namespace fpart {

QpiLink::QpiLink(double clock_hz, BandwidthCurve curve)
    : clock_hz_(clock_hz), curve_(std::move(curve)) {
  // Start from a balanced-mix estimate; recalibrated as traffic flows.
  rate_ = curve_(0.5) * 1e9 / kCacheLineSize / clock_hz_;
}

QpiLink QpiLink::Fixed(double clock_hz, double gbs) {
  return QpiLink(clock_hz, [gbs](double) { return gbs; });
}

QpiLink QpiLink::XeonFpga(double clock_hz, Interference interference) {
  return QpiLink(clock_hz, [interference](double read_fraction) {
    return MemoryBandwidthGBs(MemoryAgent::kFpga, interference, read_fraction);
  });
}

void QpiLink::Recalibrate() {
  uint64_t total = window_reads_ + window_writes_;
  if (total > 0) {
    double read_fraction =
        static_cast<double>(window_reads_) / static_cast<double>(total);
    rate_ = curve_(read_fraction) * 1e9 / kCacheLineSize / clock_hz_;
  }
  window_reads_ = 0;
  window_writes_ = 0;
  cycles_in_window_ = 0;
}

}  // namespace fpart
