#include "groupby/group_by.h"

#include <algorithm>

namespace fpart {

Result<GroupByOutput> PartitionedGroupBy(const GroupByConfig& config,
                                         const Relation<Tuple8>& relation) {
  PartitionRequest request;
  request.engine = config.engine;
  request.fanout = config.fanout;
  request.hash = config.hash;
  request.output_mode = config.output_mode;
  request.pad_fraction = config.pad_fraction;
  request.num_threads = config.num_threads;
  Result<PartitionReport<Tuple8>> attempt = RunPartition(request, relation);
  if (!attempt.ok() && attempt.status().IsPartitionOverflow()) {
    // Skewed group keys overflowed a PAD partition; fall back to the
    // two-pass HIST circuit, which handles any skew (Section 5.4).
    request.output_mode = OutputMode::kHist;
    attempt = RunPartition(request, relation);
  }
  if (!attempt.ok()) return attempt.status();
  PartitionReport<Tuple8> partitioned = std::move(*attempt);

  const size_t num_threads = std::max<size_t>(1, config.num_threads);
  std::unique_ptr<ThreadPool> own_pool;
  ThreadPool* pool = config.pool;
  if (pool == nullptr && num_threads > 1) {
    own_pool = std::make_unique<ThreadPool>(num_threads);
    pool = own_pool.get();
  }

  const size_t num_parts = partitioned.output.num_partitions();
  std::vector<std::vector<GroupResult>> per_thread(num_threads);

  Timer agg_timer;
  auto worker = [&](size_t t) {
    size_t begin = num_parts * t / num_threads;
    size_t end = num_parts * (t + 1) / num_threads;
    for (size_t p = begin; p < end; ++p) {
      internal::AggregatePartition(partitioned.output.partition_data(p),
                                   partitioned.output.partition_slots(p),
                                   &per_thread[t]);
    }
  };
  if (pool) {
    pool->ParallelFor(num_threads, worker);
  } else {
    worker(0);
  }
  double aggregate_seconds = agg_timer.Seconds();
  if (config.engine == Engine::kFpgaSim && config.coherence_penalty) {
    // The aggregation scans FPGA-written partitions sequentially.
    aggregate_seconds *= CoherenceModel::SequentialReadFactor(
        LastWriter::kFpga);
  }

  GroupByOutput output;
  for (auto& part : per_thread) {
    output.groups.insert(output.groups.end(), part.begin(), part.end());
  }
  // Group keys never straddle partitions, so the concatenation already has
  // one entry per distinct key; only ordering remains.
  std::sort(output.groups.begin(), output.groups.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.key < b.key;
            });
  output.partition_seconds = partitioned.seconds;
  output.aggregate_seconds = aggregate_seconds;
  output.total_seconds = output.partition_seconds + aggregate_seconds;
  return output;
}

Result<GroupByOutput> HashGroupBy(const Relation<Tuple8>& relation) {
  Timer timer;
  std::unordered_map<uint32_t, GroupResult> table;
  table.reserve(relation.size() / 4 + 16);
  for (const auto& t : relation) {
    auto [it, inserted] = table.try_emplace(
        t.key, GroupResult{t.key, 1, t.payload, t.payload, t.payload});
    if (!inserted) {
      GroupResult& g = it->second;
      ++g.count;
      g.sum += t.payload;
      g.min = std::min(g.min, t.payload);
      g.max = std::max(g.max, t.payload);
    }
  }
  GroupByOutput output;
  output.groups.reserve(table.size());
  for (auto& [key, group] : table) output.groups.push_back(group);
  std::sort(output.groups.begin(), output.groups.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.key < b.key;
            });
  output.aggregate_seconds = timer.Seconds();
  output.total_seconds = output.aggregate_seconds;
  return output;
}

}  // namespace fpart
