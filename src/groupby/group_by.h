// Hardware-conscious partitioned GROUP BY aggregation.
//
// Section 6 of the paper points out that the FPGA partitioner applies
// beyond joins, citing the FPGA-accelerated group-by of Absalyamov et
// al. [1]: partition the input on the group key so each partition's group
// set fits in cache, then aggregate each partition independently. This
// module implements that operator on both engines (CPU partitioner or the
// simulated FPGA circuit) plus a single-pass hash-aggregation baseline.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/relation.h"
#include "hash/murmur.h"
#include "qpi/coherence.h"

namespace fpart {

/// \brief Aggregates of one group (key = the tuple key; value = payload).
struct GroupResult {
  uint32_t key = 0;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint32_t min = std::numeric_limits<uint32_t>::max();
  uint32_t max = 0;

  bool operator==(const GroupResult&) const = default;
};

/// \brief Configuration of the partitioned group-by.
struct GroupByConfig {
  /// Partitioning engine: CPU baseline or the simulated FPGA circuit.
  Engine engine = Engine::kFpgaSim;
  uint32_t fanout = 1024;
  HashMethod hash = HashMethod::kMurmur;
  OutputMode output_mode = OutputMode::kHist;
  /// PAD-mode padding. Group keys cluster tuples, so partitioned
  /// aggregation needs more slack than a join input would.
  double pad_fraction = 1.0;
  size_t num_threads = 1;
  /// Apply the Table 1 snoop penalty to the aggregation phase after FPGA
  /// partitioning (sequential scan of FPGA-written partitions).
  bool coherence_penalty = true;
  /// Shared worker pool; when null and num_threads > 1 the call constructs
  /// its own.
  ThreadPool* pool = nullptr;
};

/// \brief Result of a group-by execution.
struct GroupByOutput {
  /// One entry per distinct key, sorted by key.
  std::vector<GroupResult> groups;
  /// Partitioning time (measured on CPU, simulated on FPGA).
  double partition_seconds = 0.0;
  /// Aggregation time (measured; penalty-scaled after FPGA partitioning).
  double aggregate_seconds = 0.0;
  double total_seconds = 0.0;
};

namespace internal {

/// Aggregate one partition with a small open-addressing table; appends the
/// partition's groups to `out` (unsorted).
template <typename T>
void AggregatePartition(const T* data, size_t slots,
                        std::vector<GroupResult>* out) {
  if (slots == 0) return;
  size_t cap = 16;
  while (cap < slots * 2) cap <<= 1;
  std::vector<int32_t> table(cap, -1);
  std::vector<GroupResult> groups;
  groups.reserve(slots / 4 + 4);
  const uint32_t mask = static_cast<uint32_t>(cap - 1);
  for (size_t i = 0; i < slots; ++i) {
    if (IsDummy(data[i])) continue;
    const uint32_t key = static_cast<uint32_t>(data[i].key);
    const uint32_t value = static_cast<uint32_t>(GetPayloadId(data[i]));
    uint32_t slot = Murmur32(key) & mask;
    for (;;) {
      int32_t g = table[slot];
      if (g < 0) {
        table[slot] = static_cast<int32_t>(groups.size());
        groups.push_back(GroupResult{key, 1, value, value, value});
        break;
      }
      if (groups[g].key == key) {
        ++groups[g].count;
        groups[g].sum += value;
        if (value < groups[g].min) groups[g].min = value;
        if (value > groups[g].max) groups[g].max = value;
        break;
      }
      slot = (slot + 1) & mask;
    }
  }
  out->insert(out->end(), groups.begin(), groups.end());
}

}  // namespace internal

/// Partitioned group-by over a row-store relation: keys are group keys,
/// payloads are the aggregated values.
Result<GroupByOutput> PartitionedGroupBy(const GroupByConfig& config,
                                         const Relation<Tuple8>& relation);

/// Single-pass hash aggregation baseline (no partitioning): one big table,
/// cache-unfriendly for large group counts.
Result<GroupByOutput> HashGroupBy(const Relation<Tuple8>& relation);

}  // namespace fpart
