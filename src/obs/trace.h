// Phase/span tracer emitting Chrome trace_event JSON (load the output in
// chrome://tracing or https://ui.perfetto.dev).
//
// Two timelines share one file:
//  * Host spans (`TraceSpan`) are wall-clock "X" (complete) events on
//    pid 1, one tid per host thread, timestamps in microseconds since
//    `Enable()`.
//  * Simulator runs (`AddSimRunTrace`) are *simulated-time* events —
//    cycles x 5 ns at the 200 MHz clock — and each run gets its own trace
//    process (pid 100+n) so runs don't overlap even though every run's
//    simulated clock starts at zero.
//
// When the tracer is disabled (the default), a TraceSpan costs one relaxed
// atomic load; span recording is phase-granular (partition passes, join
// phases), so tracing never touches a per-tuple loop. Enable with
// `--trace=out.json` on the bench binaries (see obs::TraceSession) or
// programmatically via Enable() + WriteFile().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace fpart::obs {

/// Trace process ids: one for the host, one per simulated run.
inline constexpr int kHostTracePid = 1;
inline constexpr int kSimTracePidBase = 100;

/// Small stable integer id of the calling thread (trace `tid`).
inline int CurrentTraceTid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// \brief Collects trace events; thread-safe; process-wide singleton.
class Tracer {
 public:
  static Tracer& Global();

  /// Start recording (clears previously buffered events, restarts the
  /// host-time epoch).
  void Enable();
  /// Stop recording (buffered events are kept until Enable or WriteFile).
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds of host wall time since Enable().
  double NowUs() const;

  /// Append one complete ("ph":"X") event. `args`, when non-empty, is a
  /// pre-rendered JSON object emitted verbatim as the event's "args" (used
  /// for worker/node/cpu attribution). No-op while disabled.
  void CompleteEvent(std::string name, const char* category, double ts_us,
                     double dur_us, int pid, int tid, std::string args = "");
  /// Append a process_name metadata event. No-op while disabled.
  void NameProcess(int pid, std::string name);
  /// Append a thread_name metadata event (labels `tid` on pid's timeline).
  /// No-op while disabled.
  void NameThread(int pid, int tid, std::string name);

  /// Incremented by every Enable(): lets per-thread caches (the once-per-
  /// epoch thread_name emission in TraceSpan) detect a new recording.
  uint64_t epoch_id() const {
    return epoch_id_.load(std::memory_order_relaxed);
  }

  /// Reserve a fresh pid for one simulated run's timeline.
  int NextSimPid() {
    return kSimTracePidBase +
           sim_runs_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Render every buffered event as a Chrome trace_event JSON document to
  /// `path`. The buffer is left intact (a later write sees the same runs).
  Status WriteFile(const std::string& path) const;
  /// The document itself, for tests.
  std::string ToJson() const;

  size_t event_count() const;

 private:
  struct Event {
    std::string name;
    const char* category;  // static string; for 'M' events: metadata kind
    char phase;            // 'X' or 'M'
    double ts_us;
    double dur_us;
    int pid;
    int tid;
    std::string args;  // pre-rendered JSON object, "" = none
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> epoch_id_{0};
  std::atomic<int> sim_runs_{0};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// \brief RAII host-timeline span: records one complete event covering the
/// scope's lifetime on the current thread. Near-free when tracing is off.
///
/// Spans emitted from a pool worker (ThreadPool publishes a WorkerContext)
/// carry `{"worker":i,"node":n,"cpu":c}` args and, once per recording
/// epoch, a thread_name metadata event naming the worker's timeline — so
/// per-core partitioning phases are attributable in the trace viewer.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "host")
      : name_(name),
        category_(category),
        armed_(Tracer::Global().enabled()),
        start_us_(armed_ ? Tracer::Global().NowUs() : 0.0) {}

  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool armed_;
  double start_us_;
};

/// Emit the per-pass spans of one simulated partitioning run on its own
/// trace process. Timestamps are simulated time (cycles / clock_hz).
/// `histogram_cycles` is the HIST pass-1 + prefix-sum share (0 in PAD
/// mode) and `flush_cycles` the flush+drain epilogue; the partition pass
/// covers the remainder. No-op while the tracer is disabled.
void AddSimRunTrace(uint64_t cycles, uint64_t histogram_cycles,
                    uint64_t flush_cycles, double clock_hz);

}  // namespace fpart::obs
