#include "obs/perf_counters.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fpart::obs {
namespace {

#if defined(__linux__)

int PerfEventOpen(perf_event_attr* attr) {
  return static_cast<int>(syscall(SYS_perf_event_open, attr, /*pid=*/0,
                                  /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

// Attr of event `i` (index into kHwEventNames).
perf_event_attr EventAttr(size_t i) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.disabled = 0;
  // Count user space only: works under perf_event_paranoid=2 (the common
  // container default) and matches what the phase loops actually execute.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  switch (i) {
    case 0:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case 1:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case 2:
      // "cache misses" on PERF_TYPE_HARDWARE is last-level cache misses.
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CACHE_MISSES;
      break;
    case 3:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_DTLB |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
  }
  return attr;
}

// One-shot probe: can this process open the cycles event at all?
bool ProbeSupported() {
  perf_event_attr attr = EventAttr(0);
  const int fd = PerfEventOpen(&attr);
  if (fd < 0) return false;
  close(fd);
  return true;
}

#endif  // __linux__

// Cached pointers to the four `hw.<phase>.<event>` registry counters of
// each phase. Phases are a handful of fixed strings, so a tiny mutexed
// map hit once per scope (not per tuple) is fine.
struct PhaseCounters {
  Counter* c[kNumHwEvents] = {};
};

const PhaseCounters& CountersForPhase(const char* phase) {
  static std::mutex mu;
  static std::map<std::string, PhaseCounters>* cache =
      new std::map<std::string, PhaseCounters>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(phase);
  if (it != cache->end()) return it->second;
  PhaseCounters pc;
  static const char* const kUnits[kNumHwEvents] = {"cycles", "instructions",
                                                   "misses", "misses"};
  static const char* const kHelp[kNumHwEvents] = {
      "user-space CPU cycles in this phase",
      "user-space instructions retired in this phase",
      "last-level cache misses in this phase",
      "dTLB load misses in this phase"};
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    const std::string name =
        std::string("hw.") + phase + "." + kHwEventNames[i];
    pc.c[i] = Registry::Global().GetCounter(name, kUnits[i], kHelp[i]);
  }
  return cache->emplace(phase, pc).first->second;
}

}  // namespace

Counter* HwPhaseCounter(const char* phase, size_t event) {
  return CountersForPhase(phase).c[event];
}

bool HwCountersSupported() {
#if defined(__linux__)
  static const bool supported = [] {
    const char* v = std::getenv("FPART_HW_COUNTERS");
    if (v != nullptr && std::strcmp(v, "0") == 0) return false;
    return ProbeSupported();
  }();
  return supported;
#else
  return false;
#endif
}

PerfCounters::~PerfCounters() {
#if defined(__linux__)
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#endif
}

void PerfCounters::Open() {
  opened_ = true;
#if defined(__linux__)
  if (!HwCountersSupported()) return;
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    perf_event_attr attr = EventAttr(i);
    fds_[i] = PerfEventOpen(&attr);
    if (fds_[i] >= 0) ok_ = true;
  }
#endif
}

HwSample PerfCounters::Read() {
  if (!opened_) Open();
  HwSample sample;
  if (!ok_) return sample;
#if defined(__linux__)
  uint64_t* const fields[kNumHwEvents] = {&sample.cycles, &sample.instructions,
                                          &sample.llc_misses,
                                          &sample.dtlb_misses};
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    if (fds_[i] < 0) continue;
    uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
      *fields[i] = value;
      sample.valid = true;
    }
  }
#endif
  return sample;
}

PerfCounters& PerfCounters::ForCurrentThread() {
  thread_local PerfCounters counters;
  return counters;
}

HwPhaseScope::HwPhaseScope(const char* phase) : phase_(phase) {
  if (!HwCountersSupported()) return;
  begin_ = PerfCounters::ForCurrentThread().Read();
}

HwPhaseScope::~HwPhaseScope() {
  if (!HwCountersSupported()) return;
  const HwSample end = PerfCounters::ForCurrentThread().Read();
  if (!begin_.valid || !end.valid) return;
  const PhaseCounters& pc = CountersForPhase(phase_);
  const uint64_t deltas[kNumHwEvents] = {
      end.cycles - begin_.cycles, end.instructions - begin_.instructions,
      end.llc_misses - begin_.llc_misses,
      end.dtlb_misses - begin_.dtlb_misses};
  for (size_t i = 0; i < kNumHwEvents; ++i) {
    if (deltas[i] != 0) pc.c[i]->Add(deltas[i]);
  }
}

}  // namespace fpart::obs
