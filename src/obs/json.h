// Minimal streaming JSON writer used by the observability exports (metric
// snapshots, bench reports, Chrome trace files). Handles escaping, comma
// placement and indentation; no DOM, no allocation beyond the output
// string. Not a general-purpose serializer — just enough for the
// `fpart.obs.v1` schema documented in docs/observability.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace fpart::obs {

/// \brief Append-only JSON builder with correct escaping and commas.
class JsonWriter {
 public:
  /// \param out     destination (appended to, not cleared)
  /// \param indent  spaces per nesting level; 0 emits compact one-line JSON
  explicit JsonWriter(std::string* out, int indent = 2)
      : out_(out), indent_(indent) {}

  void BeginObject() {
    Prefix();
    out_->push_back('{');
    stack_.push_back({/*array=*/false, /*count=*/0});
  }
  void EndObject() { End('}'); }
  void BeginArray() {
    Prefix();
    out_->push_back('[');
    stack_.push_back({/*array=*/true, /*count=*/0});
  }
  void EndArray() { End(']'); }

  /// Object member key; must be followed by exactly one value.
  void Key(std::string_view key) {
    Prefix();
    WriteEscaped(key);
    out_->append(indent_ > 0 ? ": " : ":");
    pending_value_ = true;
  }

  void String(std::string_view v) {
    Prefix();
    WriteEscaped(v);
  }
  void UInt(uint64_t v) {
    Prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out_->append(buf);
  }
  void Int(int64_t v) {
    Prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_->append(buf);
  }
  /// Non-finite doubles (which JSON cannot represent) are emitted as 0.
  void Double(double v) {
    Prefix();
    if (!std::isfinite(v)) v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_->append(buf);
  }
  void Bool(bool v) {
    Prefix();
    out_->append(v ? "true" : "false");
  }
  void Null() {
    Prefix();
    out_->append("null");
  }

  /// Raw pre-rendered JSON (e.g. a nested document) as one value.
  void Raw(std::string_view json) {
    Prefix();
    out_->append(json);
  }

  // Key+value conveniences.
  void KV(std::string_view k, std::string_view v) { Key(k), String(v); }
  void KV(std::string_view k, const char* v) { Key(k), String(v); }
  void KV(std::string_view k, uint64_t v) { Key(k), UInt(v); }
  void KV(std::string_view k, int v) { Key(k), Int(v); }
  void KV(std::string_view k, double v) { Key(k), Double(v); }
  void KV(std::string_view k, bool v) { Key(k), Bool(v); }

 private:
  struct Frame {
    bool array;
    size_t count;
  };

  /// Emit the separator/newline/indent owed before the next token.
  void Prefix() {
    if (pending_value_) {
      // Value directly after its key: no comma, no newline.
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) return;
    Frame& top = stack_.back();
    if (top.count++ > 0) out_->push_back(',');
    NewlineIndent(stack_.size());
  }

  void End(char close) {
    const bool had_members = !stack_.empty() && stack_.back().count > 0;
    stack_.pop_back();
    if (had_members) NewlineIndent(stack_.size());
    out_->push_back(close);
  }

  void NewlineIndent(size_t depth) {
    if (indent_ <= 0) return;
    out_->push_back('\n');
    out_->append(depth * static_cast<size_t>(indent_), ' ');
  }

  void WriteEscaped(std::string_view s) {
    out_->push_back('"');
    for (unsigned char c : s) {
      switch (c) {
        case '"': out_->append("\\\""); break;
        case '\\': out_->append("\\\\"); break;
        case '\n': out_->append("\\n"); break;
        case '\r': out_->append("\\r"); break;
        case '\t': out_->append("\\t"); break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_->append(buf);
          } else {
            out_->push_back(static_cast<char>(c));
          }
      }
    }
    out_->push_back('"');
  }

  std::string* out_;
  int indent_;
  std::vector<Frame> stack_;
  bool pending_value_ = false;
};

}  // namespace fpart::obs
