// The canonical bench JSON document (`fpart.obs.v1`) and the `--trace`
// command-line session shared by every bench binary.
//
// Every `--json` mode in bench/ emits exactly this envelope (schema
// documented in docs/observability.md):
//
//   {
//     "schema":    "fpart.obs.v1",
//     "benchmark": "<binary name>",
//     "config":    { knob -> value },
//     "results":   { measurement -> {"seconds": ..., ...} | number },
//     "metrics":   obs::Snapshot::ToJson() of the global registry
//   }
//
// scripts/bench_cpu.sh and bench_sim.sh concatenate these documents into
// BENCH_cpu.json / BENCH_sim.json; scripts/bench_to_csv.py flattens them.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fpart::obs {

/// \brief Builder for one fpart.obs.v1 bench document.
class BenchReport {
 public:
  explicit BenchReport(std::string_view benchmark);

  // `config` members (insertion order preserved).
  void ConfigStr(std::string_view key, std::string_view value);
  void ConfigUInt(std::string_view key, uint64_t value);
  void ConfigDouble(std::string_view key, double value);

  /// One nested `results` object of double-valued fields.
  void Result(std::string_view name,
              std::initializer_list<std::pair<std::string_view, double>>
                  fields);
  /// Same, from a dynamically built field list (hw.* counter columns).
  void Result(std::string_view name,
              const std::vector<std::pair<std::string, double>>& fields);
  /// One scalar `results` member (e.g. "speedup").
  void ResultDouble(std::string_view name, double value);
  void ResultUInt(std::string_view name, uint64_t value);

  /// Render the document; the `metrics` section is a fresh snapshot of
  /// Registry::Global() taken at call time.
  std::string ToJson() const;
  /// ToJson() to stdout with a trailing newline.
  void Print() const;

 private:
  struct Field {
    std::string key;
    std::string rendered;  // pre-rendered JSON value
  };

  std::string benchmark_;
  std::vector<Field> config_;
  std::vector<Field> results_;
};

/// \brief Scoped `--trace=PATH` handling for bench main()s.
///
/// Scans argv for `--trace=PATH` (or `--trace PATH`) and removes the flag
/// so downstream argument parsers (google-benchmark) never see it; the
/// FPART_TRACE environment variable is an equivalent spelling. When a path
/// is present the global Tracer is enabled for the program's lifetime and
/// the destructor writes the trace file (works with early `return` from
/// main) and prints the path to stderr.
class TraceSession {
 public:
  TraceSession(int* argc, char** argv);
  ~TraceSession();

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace fpart::obs
