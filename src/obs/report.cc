#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpart::obs {

BenchReport::BenchReport(std::string_view benchmark)
    : benchmark_(benchmark) {}

namespace {

std::string RenderString(std::string_view v) {
  std::string out;
  JsonWriter w(&out, 0);
  w.String(v);
  return out;
}

std::string RenderUInt(uint64_t v) {
  std::string out;
  JsonWriter w(&out, 0);
  w.UInt(v);
  return out;
}

std::string RenderDouble(double v) {
  std::string out;
  JsonWriter w(&out, 0);
  w.Double(v);
  return out;
}

}  // namespace

void BenchReport::ConfigStr(std::string_view key, std::string_view value) {
  config_.push_back({std::string(key), RenderString(value)});
}

void BenchReport::ConfigUInt(std::string_view key, uint64_t value) {
  config_.push_back({std::string(key), RenderUInt(value)});
}

void BenchReport::ConfigDouble(std::string_view key, double value) {
  config_.push_back({std::string(key), RenderDouble(value)});
}

void BenchReport::Result(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, double>> fields) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  for (const auto& [key, value] : fields) w.KV(key, value);
  w.EndObject();
  results_.push_back({std::string(name), std::move(out)});
}

void BenchReport::Result(
    std::string_view name,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string out;
  JsonWriter w(&out, 0);
  w.BeginObject();
  for (const auto& [key, value] : fields) w.KV(key, value);
  w.EndObject();
  results_.push_back({std::string(name), std::move(out)});
}

void BenchReport::ResultDouble(std::string_view name, double value) {
  results_.push_back({std::string(name), RenderDouble(value)});
}

void BenchReport::ResultUInt(std::string_view name, uint64_t value) {
  results_.push_back({std::string(name), RenderUInt(value)});
}

std::string BenchReport::ToJson() const {
  std::string out;
  JsonWriter w(&out, 2);
  w.BeginObject();
  w.KV("schema", "fpart.obs.v1");
  w.KV("benchmark", benchmark_);
  w.Key("config");
  w.BeginObject();
  for (const Field& f : config_) {
    w.Key(f.key);
    w.Raw(f.rendered);
  }
  w.EndObject();
  w.Key("results");
  w.BeginObject();
  for (const Field& f : results_) {
    w.Key(f.key);
    w.Raw(f.rendered);
  }
  w.EndObject();
  w.Key("metrics");
  w.Raw(Registry::Global().TakeSnapshot().ToJson(/*indent=*/0));
  w.EndObject();
  return out;
}

void BenchReport::Print() const {
  const std::string json = ToJson();
  std::fwrite(json.data(), 1, json.size(), stdout);
  std::fputc('\n', stdout);
}

TraceSession::TraceSession(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      path_ = argv[i] + 8;
      continue;
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < *argc) {
      path_ = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  *argc = out;
  if (path_.empty()) {
    const char* env = std::getenv("FPART_TRACE");
    if (env != nullptr && env[0] != '\0') path_ = env;
  }
  if (!path_.empty()) Tracer::Global().Enable();
}

TraceSession::~TraceSession() {
  if (path_.empty()) return;
  Status s = Tracer::Global().WriteFile(path_);
  if (s.ok()) {
    std::fprintf(stderr, "trace written to %s (%zu events)\n", path_.c_str(),
                 Tracer::Global().event_count());
  } else {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
  }
}

}  // namespace fpart::obs
