// Hardware performance-counter sampling via perf_event_open.
//
// The paper's CPU partitioning analysis (Section 5) attributes the
// throughput cliffs to LLC and dTLB misses; this module makes those
// visible next to the phase timings. Each worker thread lazily opens a
// small fixed event group (cycles, instructions, LLC misses, dTLB read
// misses) on itself (pid=0, cpu=-1, exclude_kernel), reads deltas around
// a phase via HwPhaseScope, and accumulates them into the sharded metrics
// registry as `hw.<phase>.<event>` counters. Benches snapshot those
// counters around a run and report the deltas in `fpart.obs.v1` JSON.
//
// Graceful degradation is a hard requirement: CI containers and VMs
// without a PMU return ENOENT/EPERM from perf_event_open. The first
// failed probe (or FPART_HW_COUNTERS=0) disables the whole module for
// the process — every scope then costs two branch-predicted checks and
// publishes nothing, so `hw.*` keys are simply absent from the output.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/macros.h"

namespace fpart::obs {

/// One reading of the per-thread event group. Events that failed to open
/// individually read as 0; `valid` is false when no event opened at all
/// (the sample must then be ignored, not treated as zero work).
struct HwSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t dtlb_misses = 0;
  bool valid = false;
};

/// The four events, in the order bench columns use them.
inline constexpr const char* kHwEventNames[] = {
    "cycles", "instructions", "llc_misses", "dtlb_misses"};
inline constexpr size_t kNumHwEvents = 4;

class Counter;

/// The `hw.<phase>.<kHwEventNames[event]>` registry counter (created on
/// first use; same instance HwPhaseScope accumulates into). Benches
/// snapshot these around a run to report per-run deltas.
Counter* HwPhaseCounter(const char* phase, size_t event);

/// Whether hardware counters are usable in this process: false when
/// FPART_HW_COUNTERS=0, on non-Linux builds, or once a probe open has
/// failed (no PMU, perf_event_paranoid, seccomp). Cached after the first
/// call; cheap to call from hot paths.
bool HwCountersSupported();

/// \brief Per-thread handle on the perf event group.
///
/// Opened lazily on first Read() from the calling thread; each thread
/// uses its own fds (perf events with pid=0 count the opening thread
/// only, which is exactly what per-worker phase attribution needs).
class PerfCounters {
 public:
  PerfCounters() = default;
  ~PerfCounters();
  FPART_DISALLOW_COPY_AND_ASSIGN(PerfCounters);

  /// Current cumulative counts for this thread. sample.valid == false
  /// when counters are unsupported; values are monotonic across calls.
  HwSample Read();

  /// The calling thread's lazily-constructed instance.
  static PerfCounters& ForCurrentThread();

 private:
  void Open();

  int fds_[kNumHwEvents] = {-1, -1, -1, -1};
  bool opened_ = false;  // Open() attempted (regardless of outcome)
  bool ok_ = false;      // at least one event is live
};

/// \brief RAII scope that charges the enclosed work's hardware-counter
/// deltas to `hw.<phase>.<event>` registry counters.
///
/// Intended to wrap the per-worker chunk bodies of the partition phases:
///
///   pool->ParallelFor(t, [&](size_t w) {
///     obs::HwPhaseScope hw("histogram");
///     ...histogram chunk...
///   });
///
/// `phase` must outlive the scope and should come from a small fixed set
/// ("histogram", "scatter", ...): each distinct phase creates four
/// registry counters on first use. No-op when HwCountersSupported() is
/// false.
class HwPhaseScope {
 public:
  explicit HwPhaseScope(const char* phase);
  ~HwPhaseScope();
  FPART_DISALLOW_COPY_AND_ASSIGN(HwPhaseScope);

 private:
  const char* phase_;
  HwSample begin_;
};

}  // namespace fpart::obs
