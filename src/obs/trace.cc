#include "obs/trace.h"

#include <cstdio>

#include "common/topology.h"
#include "obs/json.h"

namespace fpart::obs {

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  sim_runs_.store(0, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  epoch_id_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  events_.push_back(
      Event{"host", "process_name", 'M', 0.0, 0.0, kHostTracePid, 0, ""});
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::CompleteEvent(std::string name, const char* category,
                           double ts_us, double dur_us, int pid, int tid,
                           std::string args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::move(name), category, 'X', ts_us, dur_us, pid,
                          tid, std::move(args)});
}

void Tracer::NameProcess(int pid, std::string name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{std::move(name), "process_name", 'M', 0.0, 0.0, pid, 0, ""});
}

void Tracer::NameThread(int pid, int tid, std::string name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      Event{std::move(name), "thread_name", 'M', 0.0, 0.0, pid, tid, ""});
}

std::string Tracer::ToJson() const {
  std::string out;
  JsonWriter w(&out, 1);
  std::lock_guard<std::mutex> lock(mu_);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const Event& e : events_) {
    w.BeginObject();
    if (e.phase == 'M') {
      w.KV("name", e.category);  // "process_name" or "thread_name"
      w.KV("ph", "M");
      w.KV("pid", e.pid);
      w.KV("tid", e.tid);
      w.Key("args");
      w.BeginObject();
      w.KV("name", e.name);
      w.EndObject();
    } else {
      w.KV("name", e.name);
      w.KV("cat", e.category);
      w.KV("ph", "X");
      w.KV("ts", e.ts_us);
      w.KV("dur", e.dur_us);
      w.KV("pid", e.pid);
      w.KV("tid", e.tid);
      if (!e.args.empty()) {
        w.Key("args");
        w.Raw(e.args);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.KV("displayTimeUnit", "ms");
  w.EndObject();
  return out;
}

Status Tracer::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  Tracer& t = Tracer::Global();
  const double end_us = t.NowUs();
  const int tid = CurrentTraceTid();
  const WorkerContext& ctx = CurrentWorkerContext();
  std::string args;
  if (ctx.worker >= 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "{\"worker\":%d,\"node\":%d,\"cpu\":%d}",
                  ctx.worker, ctx.node, ctx.cpu);
    args = buf;
    // Label this worker's timeline once per recording: "<pool>/<idx> nN".
    thread_local uint64_t named_epoch = 0;
    const uint64_t epoch = t.epoch_id();
    if (named_epoch != epoch) {
      named_epoch = epoch;
      std::snprintf(buf, sizeof(buf), "%s/%d n%d",
                    ctx.pool != nullptr ? ctx.pool : "worker", ctx.worker,
                    ctx.node);
      t.NameThread(kHostTracePid, tid, buf);
    }
  }
  t.CompleteEvent(name_, category_, start_us_, end_us - start_us_,
                  kHostTracePid, tid, std::move(args));
}

void AddSimRunTrace(uint64_t cycles, uint64_t histogram_cycles,
                    uint64_t flush_cycles, double clock_hz) {
  Tracer& t = Tracer::Global();
  if (!t.enabled() || clock_hz <= 0) return;
  const int pid = t.NextSimPid();
  t.NameProcess(pid, "fpga-sim run " +
                         std::to_string(pid - kSimTracePidBase));
  const double us_per_cycle = 1e6 / clock_hz;
  const uint64_t hist = histogram_cycles < cycles ? histogram_cycles : cycles;
  const uint64_t flush =
      flush_cycles < cycles - hist ? flush_cycles : cycles - hist;
  const uint64_t stream = cycles - hist - flush;
  double ts = 0.0;
  if (hist > 0) {
    t.CompleteEvent("sim.histogram_pass", "sim", ts, hist * us_per_cycle,
                    pid, 1);
    ts += hist * us_per_cycle;
  }
  t.CompleteEvent("sim.partition_pass", "sim", ts, stream * us_per_cycle,
                  pid, 1);
  ts += stream * us_per_cycle;
  if (flush > 0) {
    t.CompleteEvent("sim.flush_drain", "sim", ts, flush * us_per_cycle, pid,
                    1);
  }
}

}  // namespace fpart::obs
