// Process-wide metrics registry: named counters, gauges and histograms.
//
// Hot-path design (docs/observability.md): every metric is sharded across
// kNumShards cache-line-aligned cells and each thread is pinned to one
// shard, so an update is a single relaxed atomic on a line no other active
// thread touches — lock-free and, for <= kNumShards concurrent threads,
// contention-free. Reads merge the shards on demand (`merge-on-snapshot`);
// nothing on the update path ever takes a lock or issues a fence.
//
// Metric handles are created once under the registry mutex and live for
// the registry's lifetime, so callers cache the pointer:
//
//   static obs::Counter* const runs =
//       obs::Registry::Global().GetCounter("cpu.partition.runs", "runs",
//                                          "CpuPartition invocations");
//   runs->Add();
//
// Instrumentation is deliberately phase-granular (per run / per pass), not
// per-tuple: the partitioning hot loops are never touched, which is how
// the < 2 % overhead bound of docs/observability.md is met.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"

namespace fpart::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Number of update shards per metric. Threads beyond this share shards
/// (still correct — the cells are atomic — just no longer contention-free).
inline constexpr size_t kNumShards = 16;

/// Stable shard slot of the calling thread.
inline size_t ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return idx;
}

namespace internal {

inline void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void MergeMin(uint64_t* a, uint64_t v) {
  if (v < *a) *a = v;
}
inline void MergeMax(uint64_t* a, uint64_t v) {
  if (v > *a) *a = v;
}

}  // namespace internal

/// \brief Monotonic sharded counter.
class Counter {
 public:
  void Add(uint64_t v = 1) {
    cells_[ShardIndex()].v.fetch_add(v, std::memory_order_relaxed);
  }

  /// Merged value across all shards.
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter() = default;
  FPART_DISALLOW_COPY_AND_ASSIGN(Counter);

  struct alignas(kCacheLineSize) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kNumShards];
};

/// \brief Last-write-wins double value (rare writes; a single atomic).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { Set(0.0); }

 private:
  friend class Registry;
  Gauge() = default;
  FPART_DISALLOW_COPY_AND_ASSIGN(Gauge);

  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// \brief Sharded log2-bucketed histogram of non-negative integer samples.
///
/// Bucket 0 counts the value 0; bucket b >= 1 counts [2^(b-1), 2^b - 1].
/// Percentiles derived from the buckets are therefore upper bounds with at
/// most 2x resolution — good enough for the latency distributions this
/// repo records (exact count/sum/min/max are tracked alongside).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t v) {
    Shard& s = shards_[ShardIndex()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    internal::AtomicMin(s.min, v);
    internal::AtomicMax(s.max, v);
    s.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Values >= 2^62 share the final bucket (bit_width would be 63 or 64).
  static int BucketOf(uint64_t v) {
    return v == 0 ? 0
                  : std::min(static_cast<int>(std::bit_width(v)),
                             kBuckets - 1);
  }

  /// \brief Shard-merged view of the distribution.
  struct Data {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t buckets[kBuckets] = {};

    double Mean() const {
      return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                       : 0.0;
    }
    /// Upper bound of the bucket holding the p-quantile (p in [0, 1]).
    uint64_t PercentileUpperBound(double p) const;
  };

  Data Merged() const {
    Data d;
    d.min = UINT64_MAX;
    for (const Shard& s : shards_) {
      d.count += s.count.load(std::memory_order_relaxed);
      d.sum += s.sum.load(std::memory_order_relaxed);
      internal::MergeMin(&d.min, s.min.load(std::memory_order_relaxed));
      internal::MergeMax(&d.max, s.max.load(std::memory_order_relaxed));
      for (int b = 0; b < kBuckets; ++b) {
        d.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (d.count == 0) d.min = 0;
    return d;
  }

  void Reset() {
    for (Shard& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.min.store(UINT64_MAX, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  friend class Registry;
  Histogram() = default;
  FPART_DISALLOW_COPY_AND_ASSIGN(Histogram);

  struct alignas(kCacheLineSize) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> min{UINT64_MAX};
    std::atomic<uint64_t> max{0};
    std::atomic<uint64_t> buckets[kBuckets]{};
  };
  Shard shards_[kNumShards];
};

/// \brief One metric's merged value in a snapshot.
struct MetricValue {
  std::string name;
  std::string unit;
  MetricType type = MetricType::kCounter;
  uint64_t value = 0;        // counter
  double gauge = 0.0;        // gauge
  Histogram::Data hist;      // histogram
};

/// \brief Point-in-time merged view of every registered metric.
///
/// `ToJson` renders the canonical `metrics` object of the fpart.obs.v1
/// schema: `{ "<name>": {"type": ..., "unit": ..., <values>}, ... }`,
/// sorted by metric name (see docs/observability.md).
struct Snapshot {
  std::vector<MetricValue> metrics;

  std::string ToJson(int indent = 2) const;
  /// Append the metrics object to an in-progress document.
  void WriteJson(class JsonWriter* w) const;

  /// Lookup by name; nullptr when absent.
  const MetricValue* Find(std::string_view name) const;
};

class JsonWriter;

/// \brief Owner of all metric handles; name -> handle, created on demand.
class Registry {
 public:
  /// The process-wide registry every fpart module reports into.
  static Registry& Global();

  Registry() = default;
  ~Registry() = default;

  /// Find-or-create. The unit/help of the first registration win. If the
  /// name already exists with a *different* type, a process-wide dummy
  /// metric (not part of any snapshot) is returned instead — misuse never
  /// crashes a measurement run.
  Counter* GetCounter(std::string_view name, std::string_view unit = "",
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view unit = "",
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view unit = "",
                          std::string_view help = "");

  /// Merge every metric's shards into a point-in-time snapshot.
  Snapshot TakeSnapshot() const;

  /// Zero every registered metric (handles stay valid).
  void Reset();

 private:
  FPART_DISALLOW_COPY_AND_ASSIGN(Registry);

  struct Entry {
    std::string name;
    std::string unit;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view unit,
                      std::string_view help, MetricType type);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace fpart::obs
