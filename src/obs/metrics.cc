#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace fpart::obs {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

uint64_t Histogram::Data::PercentileUpperBound(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(p * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      // Bucket 0 holds only the value 0; bucket b >= 1 tops out at 2^b - 1.
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      const uint64_t upper = (uint64_t{1} << b) - 1;
      return upper < max ? upper : max;
    }
  }
  return max;
}

Registry& Registry::Global() {
  static Registry* const registry = new Registry();
  return *registry;
}

Registry::Entry* Registry::FindOrCreate(std::string_view name,
                                        std::string_view unit,
                                        std::string_view help,
                                        MetricType type) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->name == name) return e->type == type ? e.get() : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->unit = std::string(unit);
  entry->help = std::string(help);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter.reset(new Counter());
      break;
    case MetricType::kGauge:
      entry->gauge.reset(new Gauge());
      break;
    case MetricType::kHistogram:
      entry->histogram.reset(new Histogram());
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* Registry::GetCounter(std::string_view name, std::string_view unit,
                              std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kCounter);
  if (e != nullptr) return e->counter.get();
  static Counter* const dummy = new Counter();
  return dummy;
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view unit,
                          std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kGauge);
  if (e != nullptr) return e->gauge.get();
  static Gauge* const dummy = new Gauge();
  return dummy;
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view unit,
                                  std::string_view help) {
  Entry* e = FindOrCreate(name, unit, help, MetricType::kHistogram);
  if (e != nullptr) return e->histogram.get();
  static Histogram* const dummy = new Histogram();
  return dummy;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricValue v;
    v.name = e->name;
    v.unit = e->unit;
    v.type = e->type;
    switch (e->type) {
      case MetricType::kCounter:
        v.value = e->counter->Value();
        break;
      case MetricType::kGauge:
        v.gauge = e->gauge->Value();
        break;
      case MetricType::kHistogram:
        v.hist = e->histogram->Merged();
        break;
    }
    snapshot.metrics.push_back(std::move(v));
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter: e->counter->Reset(); break;
      case MetricType::kGauge: e->gauge->Reset(); break;
      case MetricType::kHistogram: e->histogram->Reset(); break;
    }
  }
}

void Snapshot::WriteJson(JsonWriter* w) const {
  w->BeginObject();
  for (const MetricValue& m : metrics) {
    w->Key(m.name);
    w->BeginObject();
    w->KV("type", MetricTypeName(m.type));
    w->KV("unit", m.unit);
    switch (m.type) {
      case MetricType::kCounter:
        w->KV("value", m.value);
        break;
      case MetricType::kGauge:
        w->KV("value", m.gauge);
        break;
      case MetricType::kHistogram:
        w->KV("count", m.hist.count);
        w->KV("sum", m.hist.sum);
        w->KV("min", m.hist.min);
        w->KV("max", m.hist.max);
        w->KV("mean", m.hist.Mean());
        w->KV("p50", m.hist.PercentileUpperBound(0.50));
        w->KV("p99", m.hist.PercentileUpperBound(0.99));
        break;
    }
    w->EndObject();
  }
  w->EndObject();
}

std::string Snapshot::ToJson(int indent) const {
  std::string out;
  JsonWriter w(&out, indent);
  WriteJson(&w);
  return out;
}

const MetricValue* Snapshot::Find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace fpart::obs
