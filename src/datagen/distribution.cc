#include "datagen/distribution.h"

namespace fpart {

const char* KeyDistributionName(KeyDistribution dist) {
  switch (dist) {
    case KeyDistribution::kLinear:
      return "linear";
    case KeyDistribution::kRandom:
      return "random";
    case KeyDistribution::kGrid:
      return "grid";
    case KeyDistribution::kReverseGrid:
      return "rev-grid";
  }
  return "unknown";
}

KeyGenerator::KeyGenerator(KeyDistribution dist, uint64_t seed)
    : dist_(dist), rng_(seed) {}

uint32_t KeyGenerator::Next() {
  switch (dist_) {
    case KeyDistribution::kLinear:
      return static_cast<uint32_t>(++index_);
    case KeyDistribution::kRandom:
      return rng_.Next32();
    case KeyDistribution::kGrid:
      return NextGrid();
    case KeyDistribution::kReverseGrid:
      return NextReverseGrid();
  }
  return 0;
}

void KeyGenerator::Fill(uint32_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = Next();
}

namespace {

uint32_t PackDigits(const uint8_t d[4]) {
  // digits_[0] is the least significant byte.
  return static_cast<uint32_t>(d[0]) | (static_cast<uint32_t>(d[1]) << 8) |
         (static_cast<uint32_t>(d[2]) << 16) |
         (static_cast<uint32_t>(d[3]) << 24);
}

}  // namespace

uint32_t KeyGenerator::NextGrid() {
  if (first_) {
    first_ = false;
    return PackDigits(digits_);
  }
  // Increment the least significant digit; on reaching 128 reset to 1 and
  // carry into the next digit (Section 3.2).
  for (int i = 0; i < 4; ++i) {
    if (digits_[i] < 128) {
      ++digits_[i];
      break;
    }
    digits_[i] = 1;
  }
  return PackDigits(digits_);
}

uint32_t KeyGenerator::NextReverseGrid() {
  if (first_) {
    first_ = false;
    return PackDigits(digits_);
  }
  // Same enumeration, but the most significant byte is incremented first.
  for (int i = 3; i >= 0; --i) {
    if (digits_[i] < 128) {
      ++digits_[i];
      break;
    }
    digits_[i] = 1;
  }
  return PackDigits(digits_);
}

}  // namespace fpart
