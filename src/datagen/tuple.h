// Tuple layouts supported by the partitioner (Section 4.4): 8, 16, 32 and
// 64 byte tuples, each <key, payload>. A 64 B cache line therefore holds
// 8, 4, 2 or 1 tuples respectively.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/macros.h"

namespace fpart {

/// The paper's default tuple: <4 B key, 4 B payload> (Section 4, [4,31]).
struct Tuple8 {
  uint32_t key;
  uint32_t payload;

  bool operator==(const Tuple8&) const = default;
};
static_assert(sizeof(Tuple8) == 8);

/// 16 B tuple: <8 B key, 8 B payload>.
struct Tuple16 {
  uint64_t key;
  uint64_t payload;

  bool operator==(const Tuple16&) const = default;
};
static_assert(sizeof(Tuple16) == 16);

/// 32 B tuple: <8 B key, 24 B payload>.
struct Tuple32 {
  uint64_t key;
  uint64_t payload[3];

  bool operator==(const Tuple32&) const = default;
};
static_assert(sizeof(Tuple32) == 32);

/// 64 B tuple: <8 B key, 56 B payload> — exactly one cache line.
struct Tuple64 {
  uint64_t key;
  uint64_t payload[7];

  bool operator==(const Tuple64&) const = default;
};
static_assert(sizeof(Tuple64) == 64);

/// Compile-time helpers shared by the partitioners and the circuit model.
template <typename T>
struct TupleTraits {
  static constexpr int kWidth = sizeof(T);
  static constexpr int kTuplesPerCacheLine = kCacheLineSize / kWidth;
  static_assert(kCacheLineSize % kWidth == 0,
                "tuple width must divide the cache-line size");

  static uint64_t Key(const T& t) { return t.key; }
  static void SetKey(T* t, uint64_t key) {
    t->key = static_cast<decltype(t->key)>(key);
  }
};

/// Sentinel key used to pad partially-filled cache lines when the write
/// combiner flushes (Section 4.2). Downstream operators skip tuples whose
/// key equals the sentinel.
inline constexpr uint64_t kDummyKey = ~uint64_t{0};

template <typename T>
T MakeDummyTuple() {
  T t{};
  TupleTraits<T>::SetKey(&t, kDummyKey);
  return t;
}

template <typename T>
bool IsDummy(const T& t) {
  // Compare in the tuple's native key width: a 4 B key stores the low 32
  // bits of the sentinel.
  return t.key == static_cast<decltype(t.key)>(kDummyKey);
}

/// Store an identifier (e.g. the virtual record id of VRID mode) in a
/// tuple's payload, regardless of the payload's shape.
template <typename T>
void SetPayloadId(T* t, uint64_t id) {
  if constexpr (std::is_array_v<decltype(T::payload)>) {
    t->payload[0] = id;
  } else {
    t->payload = static_cast<decltype(t->payload)>(id);
  }
}

/// Read back an identifier stored with SetPayloadId.
template <typename T>
uint64_t GetPayloadId(const T& t) {
  if constexpr (std::is_array_v<decltype(T::payload)>) {
    return t.payload[0];
  } else {
    return t.payload;
  }
}

}  // namespace fpart
