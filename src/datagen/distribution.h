// The four key distributions of Section 3.2 (following Richter et al. [29]):
// Linear, Random, Grid and Reverse Grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace fpart {

/// Key distribution for generating the build-relation key universe.
enum class KeyDistribution {
  /// Unique keys in [1, N].
  kLinear,
  /// Pseudo-random keys over the full 32-bit range (may repeat).
  kRandom,
  /// Base-128 counter, each byte in [1,128], least significant byte first.
  kGrid,
  /// Same as kGrid but incrementing starts at the most significant byte.
  kReverseGrid,
};

const char* KeyDistributionName(KeyDistribution dist);

/// \brief Streaming generator of 32-bit keys for one distribution.
///
/// Deterministic given (distribution, seed); the i-th key produced is a
/// pure function of i for the enumerated distributions.
class KeyGenerator {
 public:
  KeyGenerator(KeyDistribution dist, uint64_t seed = 1);

  /// Produce the next key in the sequence.
  uint32_t Next();

  /// Fill `out[0..n)` with the next n keys.
  void Fill(uint32_t* out, size_t n);

 private:
  uint32_t NextGrid();
  uint32_t NextReverseGrid();

  KeyDistribution dist_;
  Rng rng_;
  uint64_t index_ = 0;
  // Grid state: four base-128 digits, values 1..128.
  uint8_t digits_[4] = {1, 1, 1, 1};
  bool first_ = true;
};

/// Fisher–Yates shuffle with the deterministic fpart RNG.
template <typename T>
void Shuffle(T* data, size_t n, Rng* rng) {
  for (size_t i = n; i > 1; --i) {
    size_t j = rng->Below(i);
    std::swap(data[i - 1], data[j]);
  }
}

}  // namespace fpart
