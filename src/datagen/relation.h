// Relation storage: cache-line aligned arrays of tuples (row store / RID
// layout) and split key/payload arrays (column store / VRID layout,
// Section 4.5).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "datagen/tuple.h"

namespace fpart {

/// \brief A row-store relation: contiguous, cache-line aligned tuples.
///
/// On multi-node hosts the backing pages are interleaved across all NUMA
/// nodes: a relation is read by workers on every node, so interleaving
/// spreads the read bandwidth instead of hammering the node the (serial)
/// generator thread happened to run on. No-op on single-node hosts.
template <typename T>
class Relation {
 public:
  Relation() = default;

  static Result<Relation<T>> Allocate(size_t num_tuples) {
    Relation<T> rel;
    AlignedBuffer::AllocateOptions opts;
    opts.placement = NumaPlacement::kInterleave;
    FPART_ASSIGN_OR_RETURN(
        rel.buffer_,
        AlignedBuffer::AllocateWith(num_tuples * sizeof(T), opts));
    rel.size_ = num_tuples;
    return rel;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t size_bytes() const { return size_ * sizeof(T); }

  T* data() { return buffer_.template mutable_data_as<T>(); }
  const T* data() const { return buffer_.template data_as<T>(); }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  AlignedBuffer buffer_;
  size_t size_ = 0;
};

/// \brief A column-store relation: keys and payloads in separate arrays,
/// associated only by position. This is the input layout of the VRID mode.
template <typename KeyT, typename PayloadT = KeyT>
class ColumnRelation {
 public:
  ColumnRelation() = default;

  static Result<ColumnRelation> Allocate(size_t num_tuples) {
    ColumnRelation rel;
    AlignedBuffer::AllocateOptions opts;
    opts.placement = NumaPlacement::kInterleave;
    FPART_ASSIGN_OR_RETURN(
        rel.keys_,
        AlignedBuffer::AllocateWith(num_tuples * sizeof(KeyT), opts));
    FPART_ASSIGN_OR_RETURN(
        rel.payloads_,
        AlignedBuffer::AllocateWith(num_tuples * sizeof(PayloadT), opts));
    rel.size_ = num_tuples;
    return rel;
  }

  size_t size() const { return size_; }

  KeyT* keys() { return keys_.template mutable_data_as<KeyT>(); }
  const KeyT* keys() const { return keys_.template data_as<KeyT>(); }
  PayloadT* payloads() { return payloads_.template mutable_data_as<PayloadT>(); }
  const PayloadT* payloads() const {
    return payloads_.template data_as<PayloadT>();
  }

 private:
  AlignedBuffer keys_;
  AlignedBuffer payloads_;
  size_t size_ = 0;
};

}  // namespace fpart
