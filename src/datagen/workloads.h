// The join workloads of Table 4 (Section 5) and the relation generators
// behind them.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "datagen/distribution.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"

namespace fpart {

/// Identifier of a Table 4 workload.
enum class WorkloadId { kA, kB, kC, kD, kE };

/// \brief One row of Table 4: relation sizes, key distribution, skew.
struct WorkloadSpec {
  WorkloadId id;
  const char* name;
  size_t num_r;  ///< #Tuples in the build relation R
  size_t num_s;  ///< #Tuples in the probe relation S
  KeyDistribution dist;
  /// Zipf factor applied to S's foreign-key draws (0 = uniform). The base
  /// Table 4 workloads are unskewed; Figure 13 sets this on workload A.
  double zipf = 0.0;
};

/// The Table 4 workload, at scale 1.0 == the paper's sizes
/// (A: 128e6 ⋈ 128e6 linear; B: 16·2^20 ⋈ 256·2^20 linear;
///  C/D/E: 128e6 ⋈ 128e6 random/grid/reverse-grid).
WorkloadSpec GetWorkloadSpec(WorkloadId id, double scale = 1.0);

/// \brief A generated equi-join input: R with unique keys, S whose keys all
/// reference R (so the expected match count is exactly |S|).
struct JoinInput {
  Relation<Tuple8> r;
  Relation<Tuple8> s;
  WorkloadSpec spec;
};

/// Generate a Table 4 workload. Deterministic given (spec, seed).
///
/// R payloads hold the tuple's original index; S payloads hold the key again
/// so that join results are verifiable (match payload invariant).
Result<JoinInput> GenerateWorkload(const WorkloadSpec& spec, uint64_t seed = 7);

/// Generate a relation of `n` tuples with *unique* keys drawn from `dist`.
/// For kRandom, uniqueness is obtained with a 32-bit Feistel bijection of
/// the index space, which preserves the full-range uniform character.
Result<Relation<Tuple8>> GenerateUniqueRelation(size_t n, KeyDistribution dist,
                                                uint64_t seed = 7);

/// Generate a relation of `n` (possibly repeating) keys from `dist`, for the
/// partitioning-only experiments (Figures 3 and 4).
Result<Relation<Tuple8>> GenerateRawRelation(size_t n, KeyDistribution dist,
                                             uint64_t seed = 7);

/// Random 32-bit bijection (4-round Feistel over 16-bit halves). Used to
/// produce unique-but-uniform key universes.
uint32_t Feistel32(uint32_t x, uint64_t seed);

}  // namespace fpart
