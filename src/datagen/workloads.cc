#include "datagen/workloads.h"

#include <algorithm>
#include <cmath>

#include "datagen/zipf.h"
#include "hash/murmur.h"

namespace fpart {

WorkloadSpec GetWorkloadSpec(WorkloadId id, double scale) {
  auto scaled = [scale](double n) {
    return static_cast<size_t>(std::llround(n * scale));
  };
  switch (id) {
    case WorkloadId::kA:
      return {id, "A", scaled(128e6), scaled(128e6), KeyDistribution::kLinear};
    case WorkloadId::kB:
      return {id, "B", scaled(16.0 * (1 << 20)), scaled(256.0 * (1 << 20)),
              KeyDistribution::kLinear};
    case WorkloadId::kC:
      return {id, "C", scaled(128e6), scaled(128e6), KeyDistribution::kRandom};
    case WorkloadId::kD:
      return {id, "D", scaled(128e6), scaled(128e6), KeyDistribution::kGrid};
    case WorkloadId::kE:
      return {id, "E", scaled(128e6), scaled(128e6),
              KeyDistribution::kReverseGrid};
  }
  return {id, "?", 0, 0, KeyDistribution::kLinear};
}

uint32_t Feistel32(uint32_t x, uint64_t seed) {
  uint16_t left = static_cast<uint16_t>(x >> 16);
  uint16_t right = static_cast<uint16_t>(x);
  for (int round = 0; round < 4; ++round) {
    uint32_t f = Murmur32(static_cast<uint32_t>(right) ^
                          static_cast<uint32_t>(seed >> (16 * (round & 3))) ^
                          (0x9e37u * round));
    uint16_t next_right = static_cast<uint16_t>(left ^ (f & 0xffff));
    left = right;
    right = next_right;
  }
  return (static_cast<uint32_t>(left) << 16) | right;
}

Result<Relation<Tuple8>> GenerateUniqueRelation(size_t n, KeyDistribution dist,
                                                uint64_t seed) {
  FPART_ASSIGN_OR_RETURN(Relation<Tuple8> rel, Relation<Tuple8>::Allocate(n));
  Tuple8* data = rel.data();
  if (dist == KeyDistribution::kRandom) {
    // A Feistel bijection of [0, 2^32) keeps keys unique while looking
    // uniform over the full 32-bit range.
    for (size_t i = 0; i < n; ++i) {
      data[i].key = Feistel32(static_cast<uint32_t>(i + 1), seed);
      data[i].payload = static_cast<uint32_t>(i);
    }
    return rel;
  }
  // The enumerated distributions produce unique keys by construction.
  KeyGenerator gen(dist, seed);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = gen.Next();
    data[i].payload = static_cast<uint32_t>(i);
  }
  if (dist == KeyDistribution::kLinear) {
    // The paper's linear relations are key-unique but not sorted in memory;
    // shuffle so that partitioning actually scatters.
    Rng rng(seed ^ 0xabcdef);
    Shuffle(data, n, &rng);
  }
  return rel;
}

Result<Relation<Tuple8>> GenerateRawRelation(size_t n, KeyDistribution dist,
                                             uint64_t seed) {
  FPART_ASSIGN_OR_RETURN(Relation<Tuple8> rel, Relation<Tuple8>::Allocate(n));
  KeyGenerator gen(dist, seed);
  Tuple8* data = rel.data();
  for (size_t i = 0; i < n; ++i) {
    data[i].key = gen.Next();
    data[i].payload = static_cast<uint32_t>(i);
  }
  return rel;
}

Result<JoinInput> GenerateWorkload(const WorkloadSpec& spec, uint64_t seed) {
  if (spec.num_r == 0 || spec.num_s == 0) {
    return Status::InvalidArgument("workload relations must be non-empty");
  }
  JoinInput input;
  input.spec = spec;
  FPART_ASSIGN_OR_RETURN(input.r,
                         GenerateUniqueRelation(spec.num_r, spec.dist, seed));
  FPART_ASSIGN_OR_RETURN(input.s, Relation<Tuple8>::Allocate(spec.num_s));

  const Tuple8* r = input.r.data();
  Tuple8* s = input.s.data();
  Rng rng(seed ^ 0x5eed5);
  if (spec.zipf > 0.0) {
    // Figure 13: S draws R ranks following Zipf(z). Rank-to-tuple mapping is
    // randomized by R's own layout, so hot keys land in arbitrary partitions.
    ZipfSampler zipf(spec.num_r, spec.zipf, seed ^ 0x21bf);
    for (size_t i = 0; i < spec.num_s; ++i) {
      s[i].key = r[zipf.Next() - 1].key;
      s[i].payload = s[i].key;
    }
  } else {
    for (size_t i = 0; i < spec.num_s; ++i) {
      s[i].key = r[rng.Below(spec.num_r)].key;
      s[i].payload = s[i].key;
    }
  }
  return input;
}

}  // namespace fpart
