// Storage for a partitioned relation, shared by the CPU and FPGA
// partitioners.
//
// Partitions are stored back to back in one cache-line aligned buffer at
// cache-line granularity. Because the FPGA's write combiner flushes
// partially filled cache lines padded with dummy keys (Section 4.2), a
// partition's storage extent can be larger than its tuple count; consumers
// skip tuples with the dummy key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "datagen/tuple.h"

namespace fpart {

/// \brief Placement and fill metadata of one partition.
struct PartitionInfo {
  /// First cache line of this partition within the output buffer.
  uint64_t base_cl = 0;
  /// Cache lines reserved for this partition.
  uint32_t capacity_cls = 0;
  /// Cache lines actually written.
  uint32_t written_cls = 0;
  /// Real (non-dummy) tuples in this partition.
  uint64_t num_tuples = 0;
};

/// \brief A partitioned relation: contiguous cache-line-granular partitions
/// plus per-partition metadata.
template <typename T>
class PartitionedOutput {
 public:
  PartitionedOutput() = default;

  /// Allocate storage given per-partition capacities (in cache lines).
  static Result<PartitionedOutput<T>> Allocate(
      const std::vector<uint32_t>& capacity_cls) {
    PartitionedOutput<T> out;
    out.parts_.resize(capacity_cls.size());
    uint64_t total_cls = 0;
    for (size_t p = 0; p < capacity_cls.size(); ++p) {
      out.parts_[p].base_cl = total_cls;
      out.parts_[p].capacity_cls = capacity_cls[p];
      total_cls += capacity_cls[p];
    }
    FPART_ASSIGN_OR_RETURN(out.buffer_,
                           AlignedBuffer::Allocate(total_cls * kCacheLineSize));
    out.total_cls_ = total_cls;
    return out;
  }

  /// Deep copy (the buffer is move-only, so copying must be explicit).
  /// Used by the simulation-result cache to hand out private copies of a
  /// memoized run's output.
  Result<PartitionedOutput<T>> Clone() const {
    PartitionedOutput<T> out;
    out.parts_ = parts_;
    out.total_cls_ = total_cls_;
    FPART_ASSIGN_OR_RETURN(
        out.buffer_, AlignedBuffer::Allocate(total_cls_ * kCacheLineSize));
    if (total_cls_ > 0) {
      std::memcpy(out.buffer_.data(), buffer_.data(),
                  total_cls_ * kCacheLineSize);
    }
    return out;
  }

  size_t num_partitions() const { return parts_.size(); }
  uint64_t total_cls() const { return total_cls_; }

  PartitionInfo& part(size_t p) { return parts_[p]; }
  const PartitionInfo& part(size_t p) const { return parts_[p]; }

  uint8_t* line(uint64_t cl) { return buffer_.data() + cl * kCacheLineSize; }
  const uint8_t* line(uint64_t cl) const {
    return buffer_.data() + cl * kCacheLineSize;
  }

  /// Tuples of partition p, *including* any dummy padding; use
  /// PartitionInfo::num_tuples / IsDummy() to skip padding.
  const T* partition_data(size_t p) const {
    return reinterpret_cast<const T*>(line(parts_[p].base_cl));
  }
  T* partition_data(size_t p) {
    return reinterpret_cast<T*>(line(parts_[p].base_cl));
  }

  /// Stored tuple slots of partition p (== written cache lines × K).
  size_t partition_slots(size_t p) const {
    return static_cast<size_t>(parts_[p].written_cls) *
           TupleTraits<T>::kTuplesPerCacheLine;
  }

  /// Sum of real tuples across all partitions.
  uint64_t total_tuples() const {
    uint64_t n = 0;
    for (const auto& part : parts_) n += part.num_tuples;
    return n;
  }

 private:
  AlignedBuffer buffer_;
  std::vector<PartitionInfo> parts_;
  uint64_t total_cls_ = 0;
};

}  // namespace fpart
