#include "datagen/zipf.h"

#include <cmath>

namespace fpart {

ZipfSampler::ZipfSampler(uint64_t n, double z, uint64_t seed)
    : n_(n == 0 ? 1 : n), z_(z), rng_(seed) {
  Reshape(z);
}

void ZipfSampler::Reshape(double z) {
  z_ = z;
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - Hinv(H(2.5) - std::pow(2.0, -z_));
}

// H is the antiderivative of x^-z (the continuous majorant of the Zipf pmf).
double ZipfSampler::H(double x) const {
  if (z_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - z_) - 1.0) / (1.0 - z_);
}

double ZipfSampler::Hinv(double x) const {
  if (z_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - z_), 1.0 / (1.0 - z_));
}

uint64_t ZipfSampler::Next() {
  if (z_ <= 0.0) {
    // Uniform: rejection-inversion is undefined at z == 0; sample directly.
    return 1 + rng_.Below(n_);
  }
  for (;;) {
    double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    double x = Hinv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -z_)) {
      return k;
    }
  }
}

namespace {

// SplitMix64 finalizer: the per-generation rotation offset derivation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The ramp is quantized into this many equal theta steps so the sampler
// re-derives its rejection-inversion constants O(steps) times per shift,
// not once per sample. Endpoints are exact: frac==0 -> theta0 and any
// t >= shift_end -> theta1.
constexpr int kThetaSteps = 64;

}  // namespace

DriftingZipfSampler::DriftingZipfSampler(uint64_t n,
                                         const ZipfDriftSchedule& schedule)
    : n_(n == 0 ? 1 : n),
      sched_(schedule),
      current_theta_(schedule.theta0),
      zipf_(n_, schedule.theta0, schedule.seed) {}

double DriftingZipfSampler::ThetaAt(uint64_t t) const {
  if (t < sched_.shift_start || sched_.shift_end <= sched_.shift_start) {
    return t >= sched_.shift_start ? sched_.theta1 : sched_.theta0;
  }
  if (t >= sched_.shift_end) return sched_.theta1;
  const double frac =
      static_cast<double>(t - sched_.shift_start) /
      static_cast<double>(sched_.shift_end - sched_.shift_start);
  const double step =
      std::floor(frac * kThetaSteps) / static_cast<double>(kThetaSteps);
  return sched_.theta0 + (sched_.theta1 - sched_.theta0) * step;
}

uint64_t DriftingZipfSampler::GenerationAt(uint64_t t) const {
  return sched_.rotate_every == 0 ? 0 : t / sched_.rotate_every;
}

uint64_t DriftingZipfSampler::NextAt(uint64_t t) {
  const double theta = ThetaAt(t);
  if (theta != current_theta_) {
    zipf_.Reshape(theta);
    current_theta_ = theta;
  }
  const uint64_t rank = zipf_.Next();  // [1, n], 1 most frequent
  const uint64_t offset = Mix64(sched_.seed ^ GenerationAt(t)) % n_;
  return (rank - 1 + offset) % n_;
}

}  // namespace fpart
