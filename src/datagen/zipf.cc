#include "datagen/zipf.h"

#include <cmath>

namespace fpart {

ZipfSampler::ZipfSampler(uint64_t n, double z, uint64_t seed)
    : n_(n == 0 ? 1 : n), z_(z), rng_(seed) {
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - Hinv(H(2.5) - std::pow(2.0, -z_));
}

// H is the antiderivative of x^-z (the continuous majorant of the Zipf pmf).
double ZipfSampler::H(double x) const {
  if (z_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - z_) - 1.0) / (1.0 - z_);
}

double ZipfSampler::Hinv(double x) const {
  if (z_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - z_), 1.0 / (1.0 - z_));
}

uint64_t ZipfSampler::Next() {
  if (z_ <= 0.0) {
    // Uniform: rejection-inversion is undefined at z == 0; sample directly.
    return 1 + rng_.Below(n_);
  }
  for (;;) {
    double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    double x = Hinv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -z_)) {
      return k;
    }
  }
}

}  // namespace fpart
