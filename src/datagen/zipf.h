// Zipf-distributed sampling for the skew experiment (Section 5.4,
// Figure 13): relation S draws its foreign keys from R's key universe
// following a Zipf law with configurable factor z.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace fpart {

/// \brief O(1)-per-sample Zipf(z) generator over ranks [1, n].
///
/// Uses Hörmann's rejection-inversion method ("Rejection-inversion to
/// generate variates from monotone discrete distributions", 1996), which
/// needs no O(n) table and therefore scales to the paper's 128e6-tuple
/// universes.
class ZipfSampler {
 public:
  /// \param n       number of distinct ranks
  /// \param z       Zipf exponent (z == 0 degenerates to uniform)
  /// \param seed    RNG seed
  ZipfSampler(uint64_t n, double z, uint64_t seed = 42);

  /// Draw one rank in [1, n]; rank 1 is the most frequent.
  uint64_t Next();

  /// Re-derive the rejection-inversion constants for a new exponent while
  /// keeping the RNG stream — the primitive the drifting sampler below
  /// ramps the skew with, without perturbing determinism.
  void Reshape(double z);

  uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  double H(double x) const;
  double Hinv(double x) const;

  uint64_t n_;
  double z_;
  Rng rng_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_x1_;
  double h_n_;
  double s_;
};

/// \brief Schedule of a time-varying ("drifting") Zipf workload.
///
/// Two independent drifts, both seedable and replayable:
///  * the exponent ramps piecewise-linearly theta0 -> theta1 over the
///    sample-index window [shift_start, shift_end) — before the window the
///    skew is theta0, after it theta1;
///  * the *identity* of the hot keys rotates every `rotate_every` samples
///    (0 = never): generation g applies a SplitMix64(seed, g)-derived
///    offset to the rank->key mapping, so yesterday's head key becomes
///    cold even when the exponent alone is steady.
struct ZipfDriftSchedule {
  double theta0 = 0.5;
  double theta1 = 1.2;
  uint64_t shift_start = 0;
  uint64_t shift_end = 0;
  uint64_t rotate_every = 0;
  uint64_t seed = 42;
};

/// \brief Drifting-Zipf key generator over the key universe [0, n).
///
/// Time is a sample index, not wall clock, so a replay with the same
/// schedule and seed regenerates the identical key stream. `NextAt(t)`
/// lets several streams (e.g. the ingest writers and the read-side key
/// picker of bench/ext_stream.cc) share one logical clock so their hot
/// sets stay aligned while each keeps its own RNG.
class DriftingZipfSampler {
 public:
  DriftingZipfSampler(uint64_t n, const ZipfDriftSchedule& schedule);

  /// Key in [0, n) at the sampler's own clock, which then advances.
  uint64_t Next() { return NextAt(clock_++); }
  /// Key in [0, n) at external time `t`; advances only the RNG.
  uint64_t NextAt(uint64_t t);

  /// The (step-quantized) exponent in effect at sample index t.
  double ThetaAt(uint64_t t) const;
  /// Rotation generation at sample index t (0 when rotation is off).
  uint64_t GenerationAt(uint64_t t) const;

  uint64_t n() const { return n_; }
  const ZipfDriftSchedule& schedule() const { return sched_; }

 private:
  uint64_t n_;
  ZipfDriftSchedule sched_;
  uint64_t clock_ = 0;
  double current_theta_;
  ZipfSampler zipf_;
};

}  // namespace fpart
