// Zipf-distributed sampling for the skew experiment (Section 5.4,
// Figure 13): relation S draws its foreign keys from R's key universe
// following a Zipf law with configurable factor z.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace fpart {

/// \brief O(1)-per-sample Zipf(z) generator over ranks [1, n].
///
/// Uses Hörmann's rejection-inversion method ("Rejection-inversion to
/// generate variates from monotone discrete distributions", 1996), which
/// needs no O(n) table and therefore scales to the paper's 128e6-tuple
/// universes.
class ZipfSampler {
 public:
  /// \param n       number of distinct ranks
  /// \param z       Zipf exponent (z == 0 degenerates to uniform)
  /// \param seed    RNG seed
  ZipfSampler(uint64_t n, double z, uint64_t seed = 42);

  /// Draw one rank in [1, n]; rank 1 is the most frequent.
  uint64_t Next();

  uint64_t n() const { return n_; }
  double z() const { return z_; }

 private:
  double H(double x) const;
  double Hinv(double x) const;

  uint64_t n_;
  double z_;
  Rng rng_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace fpart
