#include "core/engine.h"

namespace fpart {

const char* EngineName(Engine engine) {
  return engine == Engine::kCpu ? "cpu" : "fpga-sim";
}

std::string Version() { return "fpart 1.0.0 (SIGMOD'17 reproduction)"; }

}  // namespace fpart
