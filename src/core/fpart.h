// Umbrella header: the full public API of the fpart library.
//
//   #include "core/fpart.h"
//
// brings in relation storage and workload generation, the CPU and FPGA
// partitioners, the radix / hybrid / non-partitioned joins, the QPI
// platform models, and the analytical cost model.
#pragma once

#include "common/env.h"            // bench scaling knobs
#include "common/status.h"         // Status / Result
#include "compress/for_codec.h"    // FOR bit-packed key columns (Section 6)
#include "core/engine.h"           // unified partitioning API
#include "cpu/multipass.h"         // Manegold-style multi-pass partitioning
#include "cpu/partitioner.h"       // software baselines (Code 1 / Code 2)
#include "datagen/distribution.h"  // key distributions (Section 3.2)
#include "datagen/partitioned_output.h"
#include "datagen/relation.h"
#include "datagen/tuple.h"
#include "datagen/workloads.h"     // Table 4 workloads
#include "datagen/zipf.h"          // skew generator (Section 5.4)
#include "dist/cluster.h"          // sharded multi-node service federation
#include "dist/distributed_join.h" // RDMA-distributed join (Section 6)
#include "dist/network.h"
#include "dist/shard_map.h"        // versioned bucket -> owner routing
#include "fpga/partitioner.h"      // the FPGA circuit simulator (Section 4)
#include "fpga/resource_model.h"   // Table 2
#include "groupby/group_by.h"      // partitioned aggregation (Section 6)
#include "hash/hash_function.h"    // murmur / radix partitioning attributes
#include "join/hybrid_join.h"      // CPU+FPGA hybrid join (Section 5)
#include "join/materialize.h"      // joined-row materialization
#include "join/no_partition_join.h"
#include "join/radix_join.h"       // pure-CPU radix join (Section 3.3)
#include "join/sort_merge_join.h"  // sort-based baseline ([31] context)
#include "model/cost_model.h"      // analytical model (Section 4.6)
#include "model/cpu_model.h"       // calibrated Xeon baseline model
#include "model/paper_constants.h" // the paper's reported numbers
#include "qpi/bandwidth_model.h"   // Figure 2
#include "qpi/coherence.h"         // Table 1
#include "qpi/page_table.h"        // FPGA-side VA→PA translation
#include "qpi/qpi_link.h"          // token-bucket link model
#include "qpi/shared_memory.h"     // 4 MB-page shared pool
