// Unified partitioning entry point: one request type dispatching to the
// CPU baseline or the simulated FPGA circuit. This is the API the examples
// and benches use; the lower-level modules remain available for callers
// that need circuit-level control.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cpu/partitioner.h"
#include "datagen/partitioned_output.h"
#include "datagen/relation.h"
#include "fpga/config.h"
#include "fpga/partitioner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpart {

/// Which device executes the partitioning.
enum class Engine {
  /// Host CPU, Balkesen-style software write-combining partitioner.
  kCpu,
  /// Cycle-level simulation of the paper's FPGA circuit.
  kFpgaSim,
};

const char* EngineName(Engine engine);

/// \brief Device-independent partitioning request.
struct PartitionRequest {
  Engine engine = Engine::kFpgaSim;
  uint32_t fanout = 8192;
  HashMethod hash = HashMethod::kMurmur;
  /// kRange only: fanout-1 sorted splitters (see EquiDepthSplitters).
  std::vector<uint64_t> range_splitters;
  /// FPGA only (the CPU baseline always builds a histogram — it needs it
  /// for synchronization-free parallel scatter, Section 4.7).
  OutputMode output_mode = OutputMode::kPad;
  LayoutMode layout = LayoutMode::kRid;
  LinkKind link = LinkKind::kXeonFpga;
  double pad_fraction = 0.5;
  /// FPGA only: model concurrent CPU traffic on the link (Figure 2). The
  /// svc scheduler sets this per run when host workers are busy.
  Interference interference = Interference::kAlone;
  /// FPGA only: host-side execution engine of the cycle simulator (the
  /// batched fast path, the per-module reference loop, or the analytical
  /// backend; identical output bytes either way — kAnalytical predicts
  /// its timing counters from the cost model).
  SimMode sim_mode = SimMode::kFast;
  /// FPGA only: memoize full run results keyed by config+input digest
  /// (FpgaPartitionerConfig::sim_cache).
  bool sim_cache = false;
  /// FPGA only, kAnalytical: fraction of runs re-executed on kFast to
  /// cross-check outputs and predicted cycles
  /// (FpgaPartitionerConfig::xcheck).
  double xcheck = 0.0;
  /// CPU only.
  size_t num_threads = 1;
  bool use_buffers = true;
  bool non_temporal = true;
  /// CPU only: shared worker pool (a private one is created when null and
  /// num_threads > 1).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation token, plumbed into whichever backend runs
  /// the request (svc jobs point this at their per-job flag). Checked at
  /// phase/pass boundaries; a cancelled run returns Status::Cancelled.
  /// Not owned; may be null.
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief Device-independent partitioning outcome.
template <typename T>
struct PartitionReport {
  PartitionedOutput<T> output;
  /// CPU: measured wall time; FPGA: simulated circuit time.
  double seconds = 0.0;
  double mtuples_per_sec = 0.0;
  Engine engine = Engine::kCpu;
  /// FPGA only: cycle-level counters.
  CycleStats stats;
};

/// Partition a row-store relation with the requested engine.
template <typename T>
Result<PartitionReport<T>> RunPartition(const PartitionRequest& request,
                                        const Relation<T>& relation) {
  obs::TraceSpan span("engine.partition", "engine");
  obs::Registry::Global()
      .GetCounter("engine.partition_requests", "requests",
                  "RunPartition calls (either engine)")
      ->Add();
  PartitionReport<T> report;
  report.engine = request.engine;
  if (request.engine == Engine::kCpu) {
    CpuPartitionerConfig config;
    config.fanout = request.fanout;
    config.hash = request.hash;
    config.range_splitters = request.range_splitters;
    config.num_threads = request.num_threads;
    config.use_buffers = request.use_buffers;
    config.non_temporal = request.non_temporal;
    config.pool = request.pool;
    config.cancel = request.cancel;
    FPART_ASSIGN_OR_RETURN(
        CpuRunResult<T> r,
        CpuPartition(config, relation.data(), relation.size()));
    report.output = std::move(r.output);
    report.seconds = r.seconds;
    report.mtuples_per_sec = r.mtuples_per_sec;
    return report;
  }
  FpgaPartitionerConfig config;
  config.fanout = request.fanout;
  config.hash = request.hash;
  config.range_splitters = request.range_splitters;
  config.output_mode = request.output_mode;
  config.layout = LayoutMode::kRid;
  config.link = request.link;
  config.pad_fraction = request.pad_fraction;
  config.interference = request.interference;
  config.sim_mode = request.sim_mode;
  config.sim_cache = request.sim_cache;
  config.xcheck = request.xcheck;
  config.cancel = request.cancel;
  FpgaPartitioner<T> partitioner(config);
  FPART_ASSIGN_OR_RETURN(FpgaRunResult<T> r,
                         partitioner.Partition(relation.data(),
                                               relation.size()));
  report.output = std::move(r.output);
  report.seconds = r.seconds;
  report.mtuples_per_sec = r.mtuples_per_sec;
  report.stats = r.stats;
  return report;
}

/// Library version string.
std::string Version();

}  // namespace fpart
