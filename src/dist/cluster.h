// The cluster layer: a federation of N partitioning-service nodes behind
// one shard-mapped submission API (docs/distributed.md).
//
// Each node is a full svc runtime — its own Scheduler with its own worker
// threads, admission queue and simulated FPGA DevicePool — and the nodes
// are joined by the simulated RDMA fabric of dist/network.h. A submission
// names a shard key and an origin node; the versioned ShardMap routes it
// to the bucket's owner. A remote submission (owner != origin) is charged
// one network hop (rendezvous latency + input bytes at link rate) before
// it joins the owner's queue, where it competes with local traffic under
// the same weighted-fair-queueing discipline — there is no remote fast
// path and no remote penalty box.
//
// Hot-bucket migration: the router accumulates per-bucket load (the same
// tuple cost the WFQ charges), and a rebalance scan — every
// `rebalance_every` routed jobs, or on demand — greedily hands the most
// loaded node's hottest movable buckets to the least loaded node through
// ShardMap::Migrate. Ownership changes are epoch-versioned: in-flight
// jobs drain on the owner that admitted them (the old epoch), only future
// arrivals see the new owner. See ShardMap for the audit invariant.
//
// Determinism: with per-node deterministic schedulers and caller-assigned
// contiguous global arrival sequences, the router processes submissions
// strictly in sequence order (blocking out-of-order callers exactly like
// the strict-seq JobQueue blocks its dispatcher). Routing, load
// accounting, rebalance points and per-node sequence assignment are then
// pure functions of the job stream, so a fixed seed replays bit-for-bit
// across the whole cluster — one cluster-wide determinism hash
// (bench/ext_cluster.cc) — no matter how client threads interleave.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "dist/network.h"
#include "dist/shard_map.h"
#include "svc/scheduler.h"

namespace fpart::dist {

/// \brief Cluster construction knobs.
struct ClusterConfig {
  /// Node count (0 is clamped to 1).
  size_t nodes = 2;
  /// Logical shard buckets routed over the nodes (0 is clamped to 1).
  /// More buckets = finer migration granularity; 64 is plenty for the
  /// bench's node counts.
  size_t shard_buckets = 64;
  /// Per-node scheduler template. Every node gets an identical copy with
  /// the thread-name prefix suffixed by its node index ("svc0", "svc1",
  /// ... under the default name); `deterministic` here selects the
  /// cluster-wide replay mode described in the file comment.
  svc::SchedulerConfig node;
  /// The fabric remote submissions pay one hop on.
  NetworkModel network;
  /// Enable hot-bucket migration.
  bool migration = false;
  /// Rebalance scan cadence in routed jobs (0 = only explicit
  /// Rebalance() calls). Count-driven, so replays hit the same points.
  uint64_t rebalance_every = 0;
  /// Max buckets handed over per scan (the "top-K hottest" knob).
  size_t rebalance_top_k = 4;
};

/// \brief What Submit returns: the node-level completion handle plus the
/// routing decision that was stamped for this job.
struct ClusterSubmission {
  svc::JobHandle handle;
  ShardRoute route;
  size_t origin = 0;
  bool remote = false;
  /// Simulated network hop (0 for local submissions). In deterministic
  /// mode this has already been added to the job's virtual arrival time.
  double hop_seconds = 0.0;
};

/// \brief N svc runtimes behind one shard-routed submission API.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  FPART_DISALLOW_COPY_AND_ASSIGN(Cluster);

  /// Route a partition job by shard key from `origin_node`. In
  /// deterministic mode `opts.arrival_seq` must be the cluster-wide
  /// contiguous sequence (0..N-1 across all submitters); the per-node
  /// sequence the owner's scheduler needs is assigned by the router.
  Result<ClusterSubmission> Submit(uint64_t shard_key, size_t origin_node,
                                   const svc::PartitionJobSpec& spec,
                                   const svc::JobOptions& opts = {});
  /// Route an equi-join job (same semantics; cost/bytes are |R| + |S|).
  Result<ClusterSubmission> Submit(uint64_t shard_key, size_t origin_node,
                                   const svc::JoinJobSpec& spec,
                                   const svc::JobOptions& opts = {});

  /// One explicit rebalance scan (PlanRebalance over the accumulated
  /// bucket loads); returns the number of buckets migrated. The
  /// count-driven cadence (`rebalance_every`) calls the same scan.
  size_t Rebalance();

  /// Release all nodes' start_paused dispatchers.
  void Resume();

  /// Stop admissions on every node, drain all in-flight jobs, join all
  /// threads. Idempotent; also called by the destructor.
  void Shutdown();

  const ShardMap& shard_map() const { return map_; }
  svc::Scheduler& node(size_t i) { return *nodes_[i]; }
  size_t num_nodes() const { return nodes_.size(); }
  const ClusterConfig& config() const { return config_; }

  /// Deterministic mode: the cluster's virtual-clock makespan — the max
  /// over the nodes' makespans, i.e. when the last node's model clock
  /// finishes the replayed stream. Meaningful after Shutdown().
  double virtual_makespan_seconds() const;
  double node_virtual_makespan_seconds(size_t i) const {
    return nodes_[i]->virtual_makespan_seconds();
  }

  /// Jobs routed to node i (local + remote), and the remote share of them.
  uint64_t node_jobs(size_t i) const;
  uint64_t node_remote_jobs(size_t i) const;
  /// Cluster-wide remote accounting.
  uint64_t remote_submitted() const;
  uint64_t remote_completed() const {
    return remote_completed_.load(std::memory_order_relaxed);
  }
  uint64_t remote_bytes() const;

  /// Migration accounting.
  uint64_t migrations() const;  ///< buckets handed over so far
  uint64_t rebalances() const;  ///< rebalance scans run so far
  /// Jobs routed to `bucket` that have not reached a terminal state yet —
  /// the population that drains under the pre-migration epoch.
  uint64_t inflight(uint32_t bucket) const {
    return inflight_[bucket].load(std::memory_order_relaxed);
  }

  /// Load accounting (router-side cumulative tuple cost).
  double bucket_load(uint32_t bucket) const;
  /// Node load under the *current* ownership — what the next rebalance
  /// scan balances.
  double node_load(size_t node) const;
  /// Max node load / mean node load (1.0 = perfectly balanced).
  double load_imbalance() const;

 private:
  template <typename Spec>
  Result<ClusterSubmission> SubmitImpl(uint64_t shard_key, size_t origin,
                                       const Spec& spec,
                                       svc::JobOptions opts, uint64_t tuples);
  /// One scan; route_mu_ held.
  size_t RebalanceLocked();
  std::vector<double> NodeLoadsLocked() const;

  ClusterConfig config_;
  ShardMap map_;

  mutable std::mutex route_mu_;
  std::condition_variable route_cv_;
  bool shutdown_ = false;
  /// Deterministic mode: the next cluster-wide arrival_seq to route.
  uint64_t next_route_seq_ = 0;
  uint64_t routed_ = 0;
  /// Per-node contiguous sequence counters handed to the schedulers.
  std::vector<uint64_t> node_next_seq_;
  std::vector<uint64_t> node_jobs_;
  std::vector<uint64_t> node_remote_jobs_;
  std::vector<double> bucket_load_;
  uint64_t remote_submitted_ = 0;
  uint64_t remote_bytes_ = 0;
  uint64_t rebalances_ = 0;
  uint64_t migrations_ = 0;

  /// Touched by completion callbacks on node worker threads.
  std::atomic<uint64_t> remote_completed_{0};
  std::vector<std::atomic<uint64_t>> inflight_;

  /// Last: destroyed first, which joins every thread that can still run a
  /// completion callback into the members above.
  std::vector<std::unique_ptr<svc::Scheduler>> nodes_;
};

}  // namespace fpart::dist
