// Network model for the distributed-join future-work use case (Section 6:
// "have the FPGA partitioner directly connected to the network to
// distribute the data across machines using RDMA", Barthels et al. [6,7]).
//
// Models a full-duplex RDMA fabric: every node has an injection and a
// reception link of fixed bandwidth; an all-to-all shuffle completes when
// the most loaded link finishes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace fpart {

/// \brief Per-node full-duplex link fabric.
struct NetworkModel {
  /// Per-direction link bandwidth. Default: FDR InfiniBand, the fabric of
  /// the rack-scale join study [6].
  double link_gbs = 6.8;
  /// Fixed per-message latency (rendezvous setup etc.).
  double message_latency_sec = 3e-6;

  /// Time for one point-to-point transfer of `bytes` between two distinct
  /// nodes: rendezvous latency plus the payload at link rate. This is the
  /// per-job "hop" the cluster layer (dist/cluster.h) charges a remote
  /// submission before it joins the owner node's queue; transfers to self
  /// are free (local memory) and must not be routed through here.
  double TransferSeconds(uint64_t bytes) const {
    return message_latency_sec + static_cast<double>(bytes) / (link_gbs * 1e9);
  }

  /// Time for an all-to-all shuffle where `bytes_out[i][j]` flows from
  /// node i to node j (bytes to self are free — local memory).
  double ShuffleSeconds(
      const std::vector<std::vector<uint64_t>>& bytes_out) const {
    const size_t nodes = bytes_out.size();
    double worst = 0.0;
    for (size_t i = 0; i < nodes; ++i) {
      uint64_t injected = 0, received = 0;
      for (size_t j = 0; j < nodes; ++j) {
        if (i != j) injected += bytes_out[i][j];
        if (i != j) received += bytes_out[j][i];
      }
      double inject_time = injected / (link_gbs * 1e9);
      double receive_time = received / (link_gbs * 1e9);
      worst = std::max({worst, inject_time, receive_time});
    }
    return worst + message_latency_sec * (nodes > 1 ? nodes - 1 : 0);
  }
};

}  // namespace fpart
