// Distributed radix join across a cluster, with FPGA-accelerated
// partitioning on every node — the Section 6 future-work scenario
// (Barthels et al. [6,7] executed the same plan with CPU partitioning).
//
// Plan (per relation): each node holds an equal horizontal slice; the
// node's partitioner splits its slice by the *global* key hash into one
// bucket per node (fan-out = #nodes), the buckets are shuffled all-to-all
// over the RDMA fabric, and each node then joins its received fragments
// with a local radix join. Partitioning time is simulated circuit time,
// the shuffle comes from the network model, and the local joins run for
// real on the host (the cluster's parallelism is the max over nodes).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/relation.h"
#include "dist/network.h"
#include "fpga/partitioner.h"
#include "join/radix_join.h"
#include "model/cost_model.h"

namespace fpart {

/// \brief Configuration of the distributed hybrid join.
struct DistributedJoinConfig {
  size_t num_nodes = 4;
  /// Node-internal fan-out of the local join after the shuffle.
  uint32_t local_fanout = 1024;
  /// Threads per node for the local build+probe.
  size_t threads_per_node = 1;
  /// Partitioning engine on each node.
  Engine engine = Engine::kFpgaSim;
  HashMethod hash = HashMethod::kMurmur;
  NetworkModel network;
};

/// \brief Phase timing of the distributed join (parallel-time semantics:
/// each phase is the max over nodes).
struct DistributedJoinResult {
  uint64_t matches = 0;
  double partition_seconds = 0.0;  ///< node-local split by destination
  double shuffle_seconds = 0.0;    ///< all-to-all over the fabric
  double local_join_seconds = 0.0; ///< radix join of received fragments
  double total_seconds = 0.0;
  double mtuples_per_sec = 0.0;
};

namespace internal {

/// Split one node's slice into per-destination-node relations.
/// Returns the destination relations and accumulates per-node byte flows.
template <typename T>
Result<std::vector<std::vector<T>>> SplitByNode(
    const PartitionFn& fn, const T* slice, size_t n, size_t num_nodes) {
  std::vector<std::vector<T>> out(num_nodes);
  for (auto& v : out) v.reserve(n / num_nodes + 16);
  for (size_t i = 0; i < n; ++i) {
    uint32_t node;
    if constexpr (sizeof(slice[i].key) == 4) {
      node = fn(slice[i].key);
    } else {
      node = fn.Apply64(slice[i].key);
    }
    out[node].push_back(slice[i]);
  }
  return out;
}

}  // namespace internal

/// Execute R ⋈ S across `config.num_nodes` nodes. The relations are split
/// horizontally (as they would be stored); the result is the global match
/// count plus parallel-time phase breakdown.
template <typename T>
Result<DistributedJoinResult> DistributedJoin(
    const DistributedJoinConfig& config, const Relation<T>& r,
    const Relation<T>& s) {
  const size_t nodes = std::max<size_t>(1, config.num_nodes);
  if (!IsPowerOfTwo(nodes)) {
    return Status::InvalidArgument(
        "node count must be a power of two (hash destination = key bits)");
  }
  const PartitionFn node_fn(config.hash, static_cast<uint32_t>(nodes));

  DistributedJoinResult result;

  // --- Phase 1 on every node: split the local slice by destination node.
  // With the FPGA engine the split time is the simulated circuit time at
  // fan-out `nodes`; each node runs concurrently, so the phase costs the
  // max over nodes — with equal slices, the first node is representative.
  auto slice_bounds = [&](const Relation<T>& rel, size_t node) {
    size_t begin = rel.size() * node / nodes;
    size_t end = rel.size() * (node + 1) / nodes;
    return std::make_pair(begin, end - begin);
  };

  std::vector<std::vector<std::vector<T>>> r_split(nodes), s_split(nodes);
  double worst_split = 0.0;
  for (size_t node = 0; node < nodes; ++node) {
    auto [r_begin, r_count] = slice_bounds(r, node);
    auto [s_begin, s_count] = slice_bounds(s, node);
    FPART_ASSIGN_OR_RETURN(
        r_split[node], internal::SplitByNode(node_fn, r.data() + r_begin,
                                             r_count, nodes));
    FPART_ASSIGN_OR_RETURN(
        s_split[node], internal::SplitByNode(node_fn, s.data() + s_begin,
                                             s_count, nodes));
    if (config.engine == Engine::kFpgaSim) {
      // The node's circuit streams its slice once per relation, writing
      // node buckets (PAD mode, fan-out = nodes ≤ 8192).
      FpgaCostModel model(sizeof(T), static_cast<uint32_t>(nodes));
      double seconds =
          model.PredictSeconds(r_count, OutputMode::kPad, LayoutMode::kRid,
                               LinkKind::kXeonFpga) +
          model.PredictSeconds(s_count, OutputMode::kPad, LayoutMode::kRid,
                               LinkKind::kXeonFpga);
      worst_split = std::max(worst_split, seconds);
    }
  }
  if (config.engine == Engine::kCpu) {
    // Measure one representative node split for real.
    auto [r_begin, r_count] = slice_bounds(r, 0);
    Timer timer;
    auto measured =
        internal::SplitByNode(node_fn, r.data() + r_begin, r_count, nodes);
    (void)measured;
    worst_split = timer.Seconds() *
                  (static_cast<double>(r.size() + s.size()) /
                   std::max<size_t>(1, r_count));
  }
  result.partition_seconds = worst_split;

  // --- Phase 2: all-to-all shuffle.
  std::vector<std::vector<uint64_t>> flows(nodes,
                                           std::vector<uint64_t>(nodes, 0));
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t j = 0; j < nodes; ++j) {
      flows[i][j] = (r_split[i][j].size() + s_split[i][j].size()) * sizeof(T);
    }
  }
  result.shuffle_seconds = config.network.ShuffleSeconds(flows);

  // --- Phase 3: every node joins its received fragments. Parallel time =
  // max over nodes; the fragments are joined for real, sequentially.
  CpuJoinConfig local;
  local.fanout = config.local_fanout;
  local.hash = config.hash;
  local.num_threads = config.threads_per_node;
  double worst_join = 0.0;
  for (size_t node = 0; node < nodes; ++node) {
    size_t r_total = 0, s_total = 0;
    for (size_t i = 0; i < nodes; ++i) {
      r_total += r_split[i][node].size();
      s_total += s_split[i][node].size();
    }
    FPART_ASSIGN_OR_RETURN(Relation<T> r_local,
                           Relation<T>::Allocate(r_total));
    FPART_ASSIGN_OR_RETURN(Relation<T> s_local,
                           Relation<T>::Allocate(s_total));
    size_t rp = 0, sp = 0;
    for (size_t i = 0; i < nodes; ++i) {
      for (const T& t : r_split[i][node]) r_local[rp++] = t;
      for (const T& t : s_split[i][node]) s_local[sp++] = t;
    }
    if (r_total == 0 || s_total == 0) continue;
    FPART_ASSIGN_OR_RETURN(JoinResult local_result,
                           CpuRadixJoin(local, r_local, s_local));
    result.matches += local_result.matches;
    worst_join = std::max(worst_join, local_result.total_seconds);
  }
  result.local_join_seconds = worst_join;

  result.total_seconds = result.partition_seconds + result.shuffle_seconds +
                         result.local_join_seconds;
  result.mtuples_per_sec =
      result.total_seconds > 0
          ? (r.size() + s.size()) / result.total_seconds / 1e6
          : 0.0;
  return result;
}

}  // namespace fpart
