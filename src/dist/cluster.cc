#include "dist/cluster.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fpart::dist {

namespace {

// Registered once; cached pointers thereafter (obs/metrics.h contract).
// Registry metrics are process-global, so with several Cluster instances
// (or several nodes — svc.* metrics!) they aggregate across all of them;
// per-node and per-bucket breakdowns live on the Cluster accessors.
struct ClusterMetrics {
  obs::Counter* lookups;
  obs::Counter* migrations;
  obs::Counter* rebalances;
  obs::Gauge* epoch;
  obs::Gauge* imbalance;
  obs::Counter* remote_submitted;
  obs::Counter* remote_completed;
  obs::Counter* remote_bytes;
  obs::Histogram* remote_hop_us;
};

ClusterMetrics& Metrics() {
  static ClusterMetrics m = [] {
    auto& reg = obs::Registry::Global();
    ClusterMetrics x;
    x.lookups = reg.GetCounter("shard.lookups", "lookups",
                               "shard-map routing decisions");
    x.migrations = reg.GetCounter("shard.migrations", "buckets",
                                  "bucket ownership handovers applied");
    x.rebalances = reg.GetCounter("shard.rebalances", "scans",
                                  "rebalance scans run (explicit + cadence)");
    x.epoch = reg.GetGauge("shard.epoch", "epoch",
                           "current shard-map ownership epoch");
    x.imbalance =
        reg.GetGauge("shard.imbalance", "ratio",
                     "max/mean node load at the last rebalance scan");
    x.remote_submitted =
        reg.GetCounter("svc.remote.submitted", "jobs",
                       "jobs routed to a node other than their origin");
    x.remote_completed = reg.GetCounter(
        "svc.remote.completed", "jobs", "remote jobs finished successfully");
    x.remote_bytes =
        reg.GetCounter("svc.remote.bytes", "bytes",
                       "input bytes shipped over the fabric for remote jobs");
    x.remote_hop_us = reg.GetHistogram(
        "svc.remote.hop_us", "us",
        "simulated network hop charged per remote submission");
    return x;
  }();
  return m;
}

ClusterConfig Normalize(ClusterConfig c) {
  if (c.nodes == 0) c.nodes = 1;
  if (c.shard_buckets == 0) c.shard_buckets = 1;
  return c;
}

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(Normalize(std::move(config))),
      map_(config_.shard_buckets, config_.nodes),
      node_next_seq_(config_.nodes, 0),
      node_jobs_(config_.nodes, 0),
      node_remote_jobs_(config_.nodes, 0),
      bucket_load_(config_.shard_buckets, 0.0),
      inflight_(config_.shard_buckets) {
  Metrics().epoch->Set(0.0);
  nodes_.reserve(config_.nodes);
  for (size_t i = 0; i < config_.nodes; ++i) {
    svc::SchedulerConfig nc = config_.node;
    nc.name = config_.node.name + std::to_string(i);
    nodes_.push_back(std::make_unique<svc::Scheduler>(std::move(nc)));
  }
}

Cluster::~Cluster() { Shutdown(); }

Result<ClusterSubmission> Cluster::Submit(uint64_t shard_key,
                                          size_t origin_node,
                                          const svc::PartitionJobSpec& spec,
                                          const svc::JobOptions& opts) {
  if (spec.input == nullptr) {
    return Status::InvalidArgument("partition job needs an input relation");
  }
  return SubmitImpl(shard_key, origin_node, spec, opts, spec.input->size());
}

Result<ClusterSubmission> Cluster::Submit(uint64_t shard_key,
                                          size_t origin_node,
                                          const svc::JoinJobSpec& spec,
                                          const svc::JobOptions& opts) {
  if (spec.r == nullptr || spec.s == nullptr) {
    return Status::InvalidArgument("join job needs both input relations");
  }
  return SubmitImpl(shard_key, origin_node, spec, opts,
                    spec.r->size() + spec.s->size());
}

template <typename Spec>
Result<ClusterSubmission> Cluster::SubmitImpl(uint64_t shard_key,
                                              size_t origin, const Spec& spec,
                                              svc::JobOptions opts,
                                              uint64_t tuples) {
  if (origin >= nodes_.size()) {
    return Status::InvalidArgument("origin node " + std::to_string(origin) +
                                   " out of range (cluster has " +
                                   std::to_string(nodes_.size()) + " nodes)");
  }
  const bool det = config_.node.deterministic;
  if (det && opts.arrival_seq == svc::kAutoArrivalSeq) {
    return Status::InvalidArgument(
        "deterministic cluster submissions need a caller-assigned "
        "cluster-wide arrival_seq");
  }

  obs::TraceSpan span("shard.route", "dist");
  std::unique_lock<std::mutex> lock(route_mu_);
  if (det) {
    // Serialize routing in global arrival order: the whole route -> load
    // account -> (maybe) rebalance -> per-node seq -> admit pipeline runs
    // for seq k before seq k+1, so every step is a pure function of the
    // job stream — the cluster-wide counterpart of the strict-seq queue.
    route_cv_.wait(lock, [&] {
      return shutdown_ || opts.arrival_seq == next_route_seq_;
    });
  }
  if (shutdown_) {
    return Status::InvalidArgument("cluster is shut down");
  }

  const ShardRoute route = map_.Route(shard_key);
  Metrics().lookups->Add();
  bucket_load_[route.bucket] += static_cast<double>(tuples);
  node_jobs_[route.owner]++;

  const bool remote = route.owner != origin;
  const uint64_t bytes = tuples * sizeof(Tuple8);
  double hop = 0.0;
  if (remote) {
    hop = config_.network.TransferSeconds(bytes);
    node_remote_jobs_[route.owner]++;
    remote_submitted_++;
    remote_bytes_ += bytes;
    Metrics().remote_submitted->Add();
    Metrics().remote_bytes->Add(bytes);
    Metrics().remote_hop_us->Record(static_cast<uint64_t>(hop * 1e6));
  }
  if (det) {
    // The owner's scheduler needs its own contiguous numbering; the hop
    // lands on the virtual clock, where the replay can measure it.
    opts.arrival_seq = node_next_seq_[route.owner]++;
    opts.virtual_arrival_seconds += hop;
  }

  inflight_[route.bucket].fetch_add(1, std::memory_order_relaxed);
  opts.on_complete = [this, bucket = route.bucket, remote,
                      user_cb = std::move(opts.on_complete)](
                         const svc::JobOutcome& out) {
    inflight_[bucket].fetch_sub(1, std::memory_order_relaxed);
    if (remote && out.state == svc::JobState::kCompleted) {
      remote_completed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().remote_completed->Add();
    }
    if (user_cb) user_cb(out);
  };

  ++routed_;
  if (config_.migration && config_.rebalance_every > 0 &&
      routed_ % config_.rebalance_every == 0) {
    RebalanceLocked();
  }

  ClusterSubmission sub;
  sub.route = route;
  sub.origin = origin;
  sub.remote = remote;
  sub.hop_seconds = hop;

  Result<svc::JobHandle> admitted = [&]() -> Result<svc::JobHandle> {
    if (det) {
      // Admission happens under the router lock too: whether seq k is
      // shed by a full queue must not depend on how far seq k+1's thread
      // got.
      Result<svc::JobHandle> r = nodes_[route.owner]->Submit(spec, opts);
      ++next_route_seq_;
      route_cv_.notify_all();
      lock.unlock();
      return r;
    }
    lock.unlock();
    return nodes_[route.owner]->Submit(spec, opts);
  }();

  if (!admitted.ok()) {
    // A shed job (CapacityError) completed as kShed and already fired
    // on_complete; any other rejection never reached the record — undo
    // the in-flight account ourselves.
    if (!admitted.status().IsCapacityError()) {
      inflight_[route.bucket].fetch_sub(1, std::memory_order_relaxed);
    }
    return admitted.status();
  }
  sub.handle = std::move(admitted).ValueUnsafe();
  return sub;
}

size_t Cluster::Rebalance() {
  std::lock_guard<std::mutex> lock(route_mu_);
  return RebalanceLocked();
}

size_t Cluster::RebalanceLocked() {
  obs::TraceSpan span("shard.rebalance", "dist");
  const std::vector<RebalanceMove> moves = PlanRebalance(
      bucket_load_, map_.owners(), nodes_.size(), config_.rebalance_top_k);
  for (const RebalanceMove& mv : moves) {
    map_.Migrate(mv.bucket, mv.to);
  }
  migrations_ += moves.size();
  ++rebalances_;
  Metrics().migrations->Add(moves.size());
  Metrics().rebalances->Add();
  Metrics().epoch->Set(static_cast<double>(map_.epoch()));

  const std::vector<double> loads = NodeLoadsLocked();
  double total = 0.0, worst = 0.0;
  for (double l : loads) {
    total += l;
    if (l > worst) worst = l;
  }
  Metrics().imbalance->Set(total > 0.0
                               ? worst * static_cast<double>(loads.size()) /
                                     total
                               : 1.0);
  return moves.size();
}

std::vector<double> Cluster::NodeLoadsLocked() const {
  const std::vector<size_t> owners = map_.owners();
  std::vector<double> loads(nodes_.size(), 0.0);
  for (size_t b = 0; b < owners.size(); ++b) {
    loads[owners[b]] += bucket_load_[b];
  }
  return loads;
}

void Cluster::Resume() {
  for (auto& n : nodes_) n->Resume();
}

void Cluster::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(route_mu_);
    shutdown_ = true;
  }
  route_cv_.notify_all();
  for (auto& n : nodes_) n->Shutdown();
}

double Cluster::virtual_makespan_seconds() const {
  double worst = 0.0;
  for (const auto& n : nodes_) {
    worst = std::max(worst, n->virtual_makespan_seconds());
  }
  return worst;
}

uint64_t Cluster::node_jobs(size_t i) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return node_jobs_[i];
}

uint64_t Cluster::node_remote_jobs(size_t i) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return node_remote_jobs_[i];
}

uint64_t Cluster::remote_submitted() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return remote_submitted_;
}

uint64_t Cluster::remote_bytes() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return remote_bytes_;
}

uint64_t Cluster::migrations() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return migrations_;
}

uint64_t Cluster::rebalances() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return rebalances_;
}

double Cluster::bucket_load(uint32_t bucket) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return bucket_load_[bucket];
}

double Cluster::node_load(size_t node) const {
  std::lock_guard<std::mutex> lock(route_mu_);
  return NodeLoadsLocked()[node];
}

double Cluster::load_imbalance() const {
  std::lock_guard<std::mutex> lock(route_mu_);
  const std::vector<double> loads = NodeLoadsLocked();
  double total = 0.0, worst = 0.0;
  for (double l : loads) {
    total += l;
    if (l > worst) worst = l;
  }
  if (total <= 0.0) return 1.0;
  return worst * static_cast<double>(loads.size()) / total;
}

}  // namespace fpart::dist
