// Versioned shard map of the cluster layer (docs/distributed.md): the
// routing table that federates N partitioning-service nodes.
//
// The key space is hashed into a fixed set of logical buckets; each bucket
// has exactly one owner node. Ownership is *versioned*: every migration
// bumps a monotonically increasing epoch and appends to a migration log,
// so "who owned bucket b when job j was routed" is always answerable —
// that is the invariant the epoch protocol rests on (a job runs on the
// node that owned its bucket at routing time; migrations never chase
// in-flight work, they only redirect future arrivals). The style follows
// the logical-partitioning `bucket_owner` map of the rdma-dm-sim exemplar
// (SNIPPETS.md snippet 1), with the owner rotation made load-driven and
// auditable instead of blind top-K round-robin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/macros.h"

namespace fpart::dist {

/// \brief One routing decision: which bucket the key hashed to, who owned
/// it, and under which ownership epoch. Stamped on every submission; the
/// triple is what replays and the racing-migration tests audit.
struct ShardRoute {
  uint32_t bucket = 0;
  size_t owner = 0;
  uint64_t epoch = 0;
};

/// \brief One ownership change. `epoch` is the epoch the move *created*
/// (the first epoch at which `to` owns the bucket).
struct MigrationEvent {
  uint64_t epoch = 0;
  uint32_t bucket = 0;
  size_t from = 0;
  size_t to = 0;
};

/// \brief Thread-safe versioned bucket → owner map.
///
/// Initial ownership is round-robin (`bucket % nodes`), epoch 0. All
/// mutation goes through Migrate, which is the only epoch-advancing
/// operation — Route and Migrate serialize on one mutex, so a returned
/// ShardRoute is always internally consistent (owner == OwnerAt(bucket,
/// epoch)), even while another thread migrates concurrently.
class ShardMap {
 public:
  ShardMap(size_t num_buckets, size_t num_nodes)
      : num_nodes_(num_nodes == 0 ? 1 : num_nodes),
        owner_(num_buckets == 0 ? 1 : num_buckets) {
    for (size_t b = 0; b < owner_.size(); ++b) owner_[b] = b_init(b);
  }

  FPART_DISALLOW_COPY_AND_ASSIGN(ShardMap);

  /// Key → bucket. A SplitMix64-style finalizer, so adjacent keys (Zipf
  /// ranks) spread across buckets instead of aliasing onto neighbours;
  /// pure and stateless — identical on every node and every replay.
  static uint32_t BucketOf(uint64_t key, size_t num_buckets) {
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<uint32_t>(z % num_buckets);
  }

  /// Route a key under the current epoch.
  ShardRoute Route(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mu_);
    ShardRoute r;
    r.bucket = BucketOf(key, owner_.size());
    r.owner = owner_[r.bucket];
    r.epoch = epoch_;
    return r;
  }

  /// Move `bucket` to node `to`; returns the new epoch. A move to the
  /// current owner still bumps the epoch (the log records it), keeping
  /// "one migration == one epoch" unconditionally true.
  uint64_t Migrate(uint32_t bucket, size_t to) {
    std::lock_guard<std::mutex> lock(mu_);
    MigrationEvent ev;
    ev.bucket = bucket;
    ev.from = owner_[bucket];
    ev.to = to % num_nodes_;
    ev.epoch = ++epoch_;
    owner_[bucket] = ev.to;
    log_.push_back(ev);
    return ev.epoch;
  }

  /// Who owned `bucket` as of `epoch` (0 = initial assignment). Replays
  /// the migration log — the audit primitive behind the epoch-correctness
  /// tests: a job stamped (bucket, epoch, owner) must satisfy
  /// owner == OwnerAt(bucket, epoch).
  size_t OwnerAt(uint32_t bucket, uint64_t epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t owner = b_init(bucket);
    for (const MigrationEvent& ev : log_) {
      if (ev.epoch > epoch) break;  // log is epoch-ordered by construction
      if (ev.bucket == bucket) owner = ev.to;
    }
    return owner;
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

  size_t owner(uint32_t bucket) const {
    std::lock_guard<std::mutex> lock(mu_);
    return owner_[bucket];
  }

  size_t num_buckets() const { return owner_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Snapshot of the current owner of every bucket.
  std::vector<size_t> owners() const {
    std::lock_guard<std::mutex> lock(mu_);
    return owner_;
  }

  /// Full migration history (epoch-ordered).
  std::vector<MigrationEvent> history() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_;
  }

 private:
  size_t b_init(size_t bucket) const { return bucket % num_nodes_; }

  const size_t num_nodes_;
  mutable std::mutex mu_;
  std::vector<size_t> owner_;
  uint64_t epoch_ = 0;
  std::vector<MigrationEvent> log_;
};

/// \brief One rebalancing move proposed by PlanRebalance.
struct RebalanceMove {
  uint32_t bucket = 0;
  size_t from = 0;
  size_t to = 0;
};

/// Greedy hot-bucket rebalancing plan: repeatedly take the most loaded
/// node's hottest bucket whose load is strictly below the gap to the least
/// loaded node and hand it over. Each applied move strictly shrinks the
/// max-min node-load gap, so post-migration imbalance on a static workload
/// is monotonically non-increasing (tests/cluster_test.cc proves this as a
/// property over random Zipf loads). Pure function of its inputs — ties
/// break to the lowest node / bucket index — which keeps the deterministic
/// replay deterministic when the cluster rebalances mid-stream.
///
/// \param bucket_loads  accumulated load (tuples routed) per bucket
/// \param owners        current owner per bucket (same length)
/// \param num_nodes     cluster size
/// \param max_moves     cap on moves per plan (the "top-K hottest" knob)
inline std::vector<RebalanceMove> PlanRebalance(
    const std::vector<double>& bucket_loads, std::vector<size_t> owners,
    size_t num_nodes, size_t max_moves) {
  std::vector<RebalanceMove> moves;
  if (num_nodes < 2 || bucket_loads.size() != owners.size()) return moves;
  std::vector<double> node_load(num_nodes, 0.0);
  for (size_t b = 0; b < owners.size(); ++b) {
    node_load[owners[b] % num_nodes] += bucket_loads[b];
  }
  for (size_t k = 0; k < max_moves; ++k) {
    size_t hi = 0, lo = 0;
    for (size_t n = 1; n < num_nodes; ++n) {
      if (node_load[n] > node_load[hi]) hi = n;
      if (node_load[n] < node_load[lo]) lo = n;
    }
    const double gap = node_load[hi] - node_load[lo];
    if (gap <= 0.0) break;
    // Hottest bucket on the overloaded node that still fits in the gap
    // (moving it cannot make the receiver the new worst case).
    bool found = false;
    uint32_t best = 0;
    for (size_t b = 0; b < owners.size(); ++b) {
      if (owners[b] % num_nodes != hi) continue;
      if (bucket_loads[b] <= 0.0 || bucket_loads[b] >= gap) continue;
      if (!found || bucket_loads[b] > bucket_loads[best]) {
        best = static_cast<uint32_t>(b);
        found = true;
      }
    }
    if (!found) break;  // nothing movable without overshooting
    moves.push_back({best, hi, lo});
    owners[best] = lo;
    node_load[hi] -= bucket_loads[best];
    node_load[lo] += bucket_loads[best];
  }
  return moves;
}

}  // namespace fpart::dist
