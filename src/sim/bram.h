// Block-RAM model with pipelined, fixed-latency reads.
//
// Altera BRAMs deliver read data a fixed number of cycles after the read is
// issued, but accept one new read per cycle (fully pipelined). Read data is
// captured at issue time ("old data" semantics): writes occurring in the
// same or later cycles are not reflected in an in-flight read — which is
// exactly why the paper's write combiner needs forwarding registers for the
// fill-rate BRAM (Section 4.2, Code 4). When a module needs its own
// same-cycle write to be visible (the 8-bank data read after the 8th tuple,
// Section 4.2), it performs the Write before IssueRead within its cycle
// function.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/macros.h"

namespace fpart {

/// \brief Fixed-latency, pipelined synchronous RAM.
template <typename T>
class Bram {
 public:
  /// \param size     number of addressable entries
  /// \param latency  cycles between IssueRead and data delivery (>= 1)
  explicit Bram(size_t size, int latency = 1)
      : data_(size), latency_(latency < 1 ? 1 : latency) {}

  size_t size() const { return data_.size(); }
  int latency() const { return latency_; }

  /// Combinational write: lands at the current cycle's clock edge.
  void Write(size_t addr, const T& value) {
    data_[addr] = value;
    ++num_writes_;
  }

  /// Begin a pipelined read of `addr`; the value (as of this call) becomes
  /// available via read_data() after `latency` Tick()s.
  void IssueRead(size_t addr) {
    in_flight_.push_back(Pending{data_[addr], 0});
    ++num_reads_;
  }

  /// Advance one clock cycle: age in-flight reads, deliver at most one.
  void Tick() {
    read_ready_ = false;
    for (auto& p : in_flight_) ++p.age;
    if (!in_flight_.empty() && in_flight_.front().age >= latency_) {
      delivered_ = in_flight_.front().value;
      in_flight_.pop_front();
      read_ready_ = true;
    }
  }

  /// True if a read completed in the cycle of the last Tick().
  bool read_ready() const { return read_ready_; }
  /// Data of the read that completed (valid when read_ready()).
  const T& read_data() const { return delivered_; }

  /// Direct (non-clocked) access for testing and flush bookkeeping.
  const T& Peek(size_t addr) const { return data_[addr]; }

  size_t num_reads() const { return num_reads_; }
  size_t num_writes() const { return num_writes_; }
  size_t in_flight() const { return in_flight_.size(); }

 private:
  struct Pending {
    T value;
    int age;
  };

  std::vector<T> data_;
  int latency_;
  std::deque<Pending> in_flight_;
  T delivered_{};
  bool read_ready_ = false;
  size_t num_reads_ = 0;
  size_t num_writes_ = 0;
};

}  // namespace fpart
