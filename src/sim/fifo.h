// Hardware FIFO model for the cycle-level circuit simulator.
//
// The partitioner circuit (Figure 5 of the paper) chains its modules with
// FIFOs; back-pressure is realized by producers checking free_slots()
// before pushing (Section 4.3: read requests are issued only when the
// first-stage FIFOs have room, so no FIFO ever overflows).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "common/macros.h"

namespace fpart {

/// \brief Bounded FIFO with occupancy accounting.
///
/// Unlike a real FIFO this one reports an overflow instead of dropping
/// data — the circuit is designed so that overflow is impossible, and the
/// tests assert `overflowed()` stays false under adversarial inputs.
template <typename T>
class Fifo {
 public:
  explicit Fifo(size_t capacity) : capacity_(capacity) {}

  /// Push a value; returns false (and records an overflow) if full.
  bool Push(T value) {
    if (queue_.size() >= capacity_) {
      overflowed_ = true;
      return false;
    }
    queue_.push_back(std::move(value));
    if (queue_.size() > max_occupancy_) max_occupancy_ = queue_.size();
    return true;
  }

  /// Pop the oldest value, or nullopt when empty.
  std::optional<T> Pop() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  const T& Front() const { return queue_.front(); }

  bool empty() const { return queue_.empty(); }
  bool full() const { return queue_.size() >= capacity_; }
  size_t size() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }
  size_t free_slots() const { return capacity_ - queue_.size(); }

  /// True if any Push was ever rejected. The no-stall property of the
  /// circuit implies this must never become true.
  bool overflowed() const { return overflowed_; }
  size_t max_occupancy() const { return max_occupancy_; }

 private:
  size_t capacity_;
  std::deque<T> queue_;
  bool overflowed_ = false;
  size_t max_occupancy_ = 0;
};

}  // namespace fpart
